// Coherence-invariant suite for the line-grain MSI/MESI model.
//
// Four layers, mirroring DESIGN.md §15:
//
//  * CoherenceFuzz -- randomized seeded access streams driven directly
//    into CoherenceModel and checked after *every* access against an
//    independent flat-memory version oracle (a write is globally
//    visible the moment it completes; SWMR means no observer can ever
//    read a stale version), plus the structural audit() and an
//    MSI-vs-MESI differential on one stream (identical values, sharer
//    sets and miss classification; MESI may only *reduce* upgrades).
//
//  * CoherenceInvariants -- directed state-machine walks: protocol
//    transitions, inclusion/eviction behaviour (dirty evictions write
//    back, evicted lines leave the directory sharer set), and
//    flush_page semantics (drops copies, preserves values, forces cold
//    misses).
//
//  * CoherenceGolden -- an end-to-end golden grid (FS x {ft, rr} x
//    {base, upmlib} x {msi, mesi}) whose trace digests and
//    per-iteration invalidation vectors are pinned in
//    tests/golden/coherence_digests.txt and required byte-identical
//    across --jobs counts, plus a coherence-off cell byte-compared
//    against the pre-existing page-grain golden (the model off is
//    indistinguishable from a build without it).
//
//  * CoherenceAnalyzer -- the analysis.false-sharing rule scored
//    against simulation ground truth: predicted (page, line) pairs
//    must match the traced invalidation ping-pong set exactly on FS
//    (precision = recall = 1), and the padded twin FSP must be clean
//    and quiet.
//
// Regenerate the golden grid after an intentional change with:
//
//   REPRO_UPDATE_GOLDEN=1 ./build/tests/test_coherence
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "repro/coherence/config.hpp"
#include "repro/coherence/model.hpp"
#include "repro/common/env.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/memsys/config.hpp"
#include "repro/trace/ground_truth.hpp"
#include "repro/trace/metrics.hpp"

namespace repro::coherence {
namespace {

using LineState = CoherenceModel::LineState;

/// Four processors, tiny caches (2 sets x 2 ways = 4 lines per proc)
/// so a handful of lines already forces capacity evictions and
/// writebacks.
memsys::MachineConfig fuzz_machine() {
  memsys::MachineConfig machine;
  machine.num_nodes = 4;
  machine.procs_per_node = 1;
  return machine;
}

CoherenceConfig fuzz_config(Policy policy) {
  CoherenceConfig config;
  config.policy = policy;
  config.sets = 2;
  config.ways = 2;
  return config;
}

/// The independent flat-memory oracle: the version every observer must
/// see for a line. Replicates the model's contract -- each written
/// line is stamped from one monotone counter, in line order within an
/// access -- without sharing any model state.
struct VersionOracle {
  std::map<std::uint64_t, std::uint64_t> versions;
  std::uint64_t counter = 0;

  void write(std::uint64_t line) { versions[line] = ++counter; }
  [[nodiscard]] std::uint64_t read(std::uint64_t line) const {
    const auto it = versions.find(line);
    return it == versions.end() ? 0 : it->second;
  }
};

struct FuzzOp {
  std::uint32_t proc = 0;
  std::uint64_t page = 0;
  std::uint32_t line_begin = 0;
  std::uint32_t lines = 1;
  bool write = false;
  bool flush = false;  ///< flush_page(page) instead of an access
};

/// Deterministic stream over 2 pages x 8 line positions: 16-ish hot
/// lines against 4-line caches, so hits, cold misses, capacity
/// evictions, upgrades, invalidations and dirty fetches all occur.
std::vector<FuzzOp> fuzz_stream(std::uint64_t seed, std::size_t n,
                                bool with_flushes) {
  std::mt19937_64 rng(seed);
  std::vector<FuzzOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FuzzOp op;
    op.proc = static_cast<std::uint32_t>(rng() % 4);
    op.page = rng() % 2;
    op.line_begin = static_cast<std::uint32_t>(rng() % 8);
    op.lines = 1 + static_cast<std::uint32_t>(rng() % 4);
    op.write = (rng() % 2) == 1;
    op.flush = with_flushes && (rng() % 97) == 0;
    ops.push_back(op);
  }
  return ops;
}

/// Applies one op to a model and the oracle (oracle optional so the
/// differential test can drive two models off one oracle update).
void apply(CoherenceModel& model, const FuzzOp& op, VersionOracle* oracle) {
  if (op.flush) {
    model.flush_page(VPage(op.page));
    return;
  }
  memsys::LineAccess access;
  access.proc = ProcId(op.proc);
  access.page = VPage(op.page);
  access.line_begin = op.line_begin;
  access.lines = op.lines;
  access.write = op.write;
  const memsys::LineOutcome out = model.on_access(0, access);
  ASSERT_EQ(out.hit_lines + out.miss_lines, op.lines);
  if (oracle == nullptr) {
    return;
  }
  for (std::uint32_t k = 0; k < op.lines; ++k) {
    const auto index = (op.line_begin + k) % model.lines_per_page();
    const std::uint64_t line = model.line_id(VPage(op.page), index);
    if (op.write) {
      oracle->write(line);
    }
    // The accessor observes the globally latest version, write or
    // read: SWMR guarantees no stale copy can have survived.
    EXPECT_EQ(model.probe_version(ProcId(op.proc), line), oracle->read(line))
        << (op.write ? "write" : "read") << " by proc " << op.proc
        << " of line " << line;
  }
}

TEST(CoherenceFuzz, RandomStreamMatchesFlatMemoryOracle) {
  for (const Policy policy : {Policy::kMsi, Policy::kMesi}) {
    CoherenceModel model(fuzz_machine(), fuzz_config(policy));
    VersionOracle oracle;
    std::uint64_t touched = 0;
    const std::vector<FuzzOp> ops =
        fuzz_stream(/*seed=*/0xC0FFEE + static_cast<int>(policy),
                    /*n=*/20000, /*with_flushes=*/true);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      apply(model, ops[i], &oracle);
      if (!ops[i].flush) {
        touched += ops[i].lines;
      }
      if (i % 512 == 0) {
        ASSERT_NO_THROW(model.audit()) << "op " << i;
      }
    }
    ASSERT_NO_THROW(model.audit());

    // Accounting: every touched line is exactly one of hit / cold /
    // capacity / coherence.
    const CoherenceStats totals = model.total_stats();
    EXPECT_EQ(totals.hit_lines + totals.miss_lines(), touched);
    EXPECT_GT(totals.cold_miss_lines, 0u);
    EXPECT_GT(totals.capacity_miss_lines, 0u);
    EXPECT_GT(totals.coherence_miss_lines, 0u);
    EXPECT_GT(totals.writebacks, 0u);
    EXPECT_EQ(totals.invalidations_sent, totals.invalidations_received);
  }
}

TEST(CoherenceFuzz, MsiMesiDifferentialOnOneStream) {
  const memsys::MachineConfig machine = fuzz_machine();
  CoherenceModel msi(machine, fuzz_config(Policy::kMsi));
  CoherenceModel mesi(machine, fuzz_config(Policy::kMesi));
  // No flushes: flush_page is value-preserving but state-dropping, so
  // including it would only mask protocol divergence.
  const std::vector<FuzzOp> ops =
      fuzz_stream(/*seed=*/0x5EED, /*n=*/20000, /*with_flushes=*/false);
  VersionOracle oracle;
  for (const FuzzOp& op : ops) {
    apply(msi, op, &oracle);
    apply(mesi, op, nullptr);
    // Both protocols observe identical values at every step.
    for (std::uint32_t k = 0; k < op.lines; ++k) {
      const auto index = (op.line_begin + k) % msi.lines_per_page();
      const std::uint64_t line = msi.line_id(VPage(op.page), index);
      ASSERT_EQ(msi.probe_version(ProcId(op.proc), line),
                mesi.probe_version(ProcId(op.proc), line))
          << "line " << line;
    }
  }
  ASSERT_NO_THROW(msi.audit());
  ASSERT_NO_THROW(mesi.audit());

  // Identical sharer sets and final values everywhere; states may
  // differ only where MESI holds Exclusive and MSI holds Shared.
  for (std::uint64_t page = 0; page < 2; ++page) {
    for (std::uint32_t index = 0; index < 12; ++index) {
      const std::uint64_t line = msi.line_id(VPage(page), index);
      EXPECT_EQ(msi.sharers_of(line), mesi.sharers_of(line));
      for (std::uint32_t p = 0; p < 4; ++p) {
        EXPECT_EQ(msi.probe_version(ProcId(p), line),
                  mesi.probe_version(ProcId(p), line));
        const LineState ms = msi.state_of(ProcId(p), line);
        const LineState es = mesi.state_of(ProcId(p), line);
        if (es == LineState::kExclusive) {
          EXPECT_EQ(ms, LineState::kShared);
        } else {
          EXPECT_EQ(ms, es);
        }
      }
    }
  }

  // MESI differs from MSI in exactly one observable: Exclusive write
  // hits upgrade silently, so it may only *reduce* upgrade traffic.
  // Misses, invalidations, writebacks and dirty fetches are identical.
  for (std::uint32_t p = 0; p < 4; ++p) {
    const CoherenceStats& a = msi.stats(ProcId(p));
    const CoherenceStats& b = mesi.stats(ProcId(p));
    EXPECT_EQ(a.hit_lines, b.hit_lines) << "proc " << p;
    EXPECT_EQ(a.cold_miss_lines, b.cold_miss_lines) << "proc " << p;
    EXPECT_EQ(a.capacity_miss_lines, b.capacity_miss_lines) << "proc " << p;
    EXPECT_EQ(a.coherence_miss_lines, b.coherence_miss_lines)
        << "proc " << p;
    EXPECT_EQ(a.invalidations_sent, b.invalidations_sent) << "proc " << p;
    EXPECT_EQ(a.writebacks, b.writebacks) << "proc " << p;
    EXPECT_EQ(a.dirty_fetches, b.dirty_fetches) << "proc " << p;
    EXPECT_LE(b.upgrades, a.upgrades) << "proc " << p;
  }
  EXPECT_LT(mesi.total_stats().upgrades, msi.total_stats().upgrades);
}

TEST(CoherenceInvariants, ProtocolStateTransitions) {
  const memsys::MachineConfig machine = fuzz_machine();
  for (const Policy policy : {Policy::kMsi, Policy::kMesi}) {
    CoherenceModel model(machine, fuzz_config(policy));
    const std::uint64_t line = model.line_id(VPage(0), 3);
    const auto touch = [&](std::uint32_t proc, bool write) {
      FuzzOp op;
      op.proc = proc;
      op.page = 0;
      op.line_begin = 3;
      op.write = write;
      apply(model, op, nullptr);
    };

    // Cold read: MESI fills Exclusive (sole copy), MSI Shared.
    touch(0, /*write=*/false);
    EXPECT_EQ(model.state_of(ProcId(0), line),
              policy == Policy::kMesi ? LineState::kExclusive
                                      : LineState::kShared);
    EXPECT_EQ(model.stats(ProcId(0)).cold_miss_lines, 1u);

    // Second reader: both drop to Shared.
    touch(1, /*write=*/false);
    EXPECT_EQ(model.state_of(ProcId(0), line), LineState::kShared);
    EXPECT_EQ(model.state_of(ProcId(1), line), LineState::kShared);
    EXPECT_EQ(model.sharers_of(line), (std::vector<std::uint32_t>{0, 1}));

    // Writer upgrades: SWMR -- the other copy dies first.
    touch(0, /*write=*/true);
    EXPECT_EQ(model.state_of(ProcId(0), line), LineState::kModified);
    EXPECT_EQ(model.state_of(ProcId(1), line), LineState::kInvalid);
    EXPECT_EQ(model.sharers_of(line), (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(model.stats(ProcId(0)).upgrades, 1u);
    EXPECT_EQ(model.stats(ProcId(0)).invalidations_sent, 1u);
    EXPECT_EQ(model.stats(ProcId(1)).invalidations_received, 1u);

    // The invalidated reader returns: a *coherence* miss served by the
    // dirty owner (intervention), both settle in Shared.
    touch(1, /*write=*/false);
    EXPECT_EQ(model.stats(ProcId(1)).coherence_miss_lines, 1u);
    EXPECT_EQ(model.stats(ProcId(1)).dirty_fetches, 1u);
    EXPECT_EQ(model.state_of(ProcId(0), line), LineState::kShared);
    EXPECT_EQ(model.state_of(ProcId(1), line), LineState::kShared);
    EXPECT_EQ(model.probe_version(ProcId(1), line),
              model.probe_version(ProcId(0), line));

    // Ping-pong back: now the *first* writer takes the coherence miss.
    touch(1, /*write=*/true);
    touch(0, /*write=*/false);
    EXPECT_EQ(model.stats(ProcId(0)).coherence_miss_lines, 1u);
    ASSERT_NO_THROW(model.audit());
  }
}

TEST(CoherenceInvariants, DirtyEvictionWritesBackAndLeavesDirectory) {
  memsys::MachineConfig machine = fuzz_machine();
  CoherenceConfig config = fuzz_config(Policy::kMsi);
  config.sets = 1;  // every line contends for the same 2 ways
  CoherenceModel model(machine, config);
  const auto write_line = [&](std::uint32_t proc, std::uint32_t index) {
    FuzzOp op;
    op.proc = proc;
    op.line_begin = index;
    op.write = true;
    apply(model, op, nullptr);
  };

  write_line(0, 0);
  write_line(0, 1);
  const std::uint64_t first = model.line_id(VPage(0), 0);
  EXPECT_EQ(model.state_of(ProcId(0), first), LineState::kModified);

  // Third distinct line evicts the LRU dirty victim: one writeback,
  // the victim leaves both the cache and the directory sharer set...
  write_line(0, 2);
  EXPECT_EQ(model.stats(ProcId(0)).writebacks, 1u);
  EXPECT_EQ(model.state_of(ProcId(0), first), LineState::kInvalid);
  EXPECT_TRUE(model.sharers_of(first).empty());

  // ...but its value survives in memory: a later reader (capacity
  // miss for the evictor, cold for a stranger) sees the written
  // version, not zero.
  const std::uint64_t evicted_version = model.probe_version(ProcId(0), first);
  EXPECT_GT(evicted_version, 0u);
  FuzzOp read;
  read.proc = 1;
  read.line_begin = 0;
  apply(model, read, nullptr);
  EXPECT_EQ(model.probe_version(ProcId(1), first), evicted_version);
  EXPECT_EQ(model.stats(ProcId(1)).cold_miss_lines, 1u);

  // The evictor re-reads its own evicted line: a capacity miss (it
  // has been here before and was never invalidated).
  read.proc = 0;
  apply(model, read, nullptr);
  EXPECT_EQ(model.stats(ProcId(0)).capacity_miss_lines, 1u);
  ASSERT_NO_THROW(model.audit());
}

TEST(CoherenceInvariants, FlushDropsCopiesButPreservesValues) {
  CoherenceModel model(fuzz_machine(), fuzz_config(Policy::kMesi));
  FuzzOp op;
  op.proc = 2;
  op.line_begin = 5;
  op.lines = 3;
  op.write = true;
  apply(model, op, nullptr);
  const std::uint64_t line = model.line_id(VPage(0), 6);
  EXPECT_EQ(model.state_of(ProcId(2), line), LineState::kModified);
  const std::uint64_t version = model.probe_version(ProcId(2), line);

  model.flush_page(VPage(0));
  EXPECT_EQ(model.state_of(ProcId(2), line), LineState::kInvalid);
  EXPECT_TRUE(model.sharers_of(line).empty());
  EXPECT_EQ(model.probe_version(ProcId(2), line), version);

  // Re-touch is a *cold* miss again (flush forgets access history,
  // matching the page-grain flush semantics).
  const std::uint64_t cold_before = model.stats(ProcId(2)).cold_miss_lines;
  op.lines = 1;
  op.line_begin = 6;
  op.write = false;
  apply(model, op, nullptr);
  EXPECT_EQ(model.stats(ProcId(2)).cold_miss_lines, cold_before + 1);
  ASSERT_NO_THROW(model.audit());
}

}  // namespace
}  // namespace repro::coherence

namespace repro::harness {
namespace {

constexpr const char* kCoherenceGoldenFile =
    GOLDEN_DIR "/coherence_digests.txt";
constexpr const char* kPageGrainGoldenFile = GOLDEN_DIR "/trace_digests.txt";

/// The golden coherence grid: the false-sharing workload under both
/// protocols, two placements, base vs UPMlib (8 cells).
std::vector<RunConfig> coherence_grid() {
  std::vector<RunConfig> configs;
  for (const std::string policy : {"msi", "mesi"}) {
    for (const std::string placement : {"ft", "rr"}) {
      for (const bool upmlib : {false, true}) {
        RunConfig config;
        config.benchmark = "FS";
        config.placement = placement;
        config.coherence = policy;
        config.iterations = 4;
        config.trace = true;
        if (upmlib) {
          config.upm_mode = nas::UpmMode::kDistribution;
        }
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

std::string key_of(const RunResult& result) {
  return result.benchmark + " " + result.label;
}

/// Line invalidations per timed iteration (the coherence analogue of
/// the page-grain suite's migration vector).
std::vector<std::uint64_t> invalidation_vector(const RunResult& result) {
  std::vector<std::uint64_t> out;
  for (const trace::IterationMetrics& m : result.iteration_metrics) {
    if (m.iteration >= 1) {
      out.push_back(m.line_invalidations);
    }
  }
  return out;
}

std::string render_vector(const std::vector<std::uint64_t>& v) {
  if (v.empty()) {
    return "-";
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i];
  }
  return os.str();
}

struct GoldenEntry {
  std::string digest;
  std::string invalidations;
};

std::map<std::string, GoldenEntry> load_goldens(const char* path) {
  std::map<std::string, GoldenEntry> goldens;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string benchmark;
    std::string label;
    GoldenEntry entry;
    fields >> benchmark >> label >> entry.digest >> entry.invalidations;
    goldens[benchmark + " " + label] = entry;
  }
  return goldens;
}

void write_goldens(const std::vector<RunResult>& results) {
  std::ofstream out(kCoherenceGoldenFile);
  ASSERT_TRUE(out.good()) << "cannot write " << kCoherenceGoldenFile;
  out << "# Golden coherence-grid digests (FNV-1a 64 of the canonical "
         "dump)\n"
         "# for FS x {ft, rr} x {base, upmlib} x {msi, mesi},\n"
         "# iterations=4.\n"
         "#\n"
         "# Regenerate: REPRO_UPDATE_GOLDEN=1 ./build/tests/"
         "test_coherence\n"
         "#\n"
         "# benchmark label digest line_invalidations_per_iteration\n";
  for (const RunResult& r : results) {
    out << key_of(r) << ' ' << r.trace_digest << ' '
        << render_vector(invalidation_vector(r)) << '\n';
  }
}

// One TEST on purpose (same shape as the page-grain golden suite):
// the grid runs twice and every assertion reuses those results.
TEST(CoherenceGolden, GridStableAcrossJobsAndMatchesCheckedInGoldens) {
  const std::vector<RunConfig> configs = coherence_grid();
  const std::vector<RunResult> parallel = run_experiments(configs, 4);
  const std::vector<RunResult> serial = run_experiments(configs, 1);
  ASSERT_EQ(parallel.size(), configs.size());
  ASSERT_EQ(serial.size(), configs.size());

  // Acceptance gate: byte-identical digests and invalidation vectors
  // between --jobs=1 and --jobs=4.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(serial[i].trace_digest.size(), 16u) << key_of(serial[i]);
    EXPECT_EQ(parallel[i].trace_digest, serial[i].trace_digest)
        << key_of(serial[i]) << ": digest depends on the job count";
    EXPECT_EQ(invalidation_vector(parallel[i]),
              invalidation_vector(serial[i]))
        << key_of(serial[i]);
    EXPECT_TRUE(serial[i].coherence_enabled) << key_of(serial[i]);
    // The grid exists to exercise the protocol: every FS cell must
    // ping-pong.
    EXPECT_GT(serial[i].coherence_totals.invalidations_sent, 0u)
        << key_of(serial[i]);
  }

  if (Env::global().get_bool("REPRO_UPDATE_GOLDEN", false)) {
    write_goldens(serial);
    std::cout << "[  UPDATED ] " << kCoherenceGoldenFile << " ("
              << serial.size() << " entries)\n";
    return;
  }

  const std::map<std::string, GoldenEntry> goldens =
      load_goldens(kCoherenceGoldenFile);
  ASSERT_FALSE(goldens.empty())
      << "no goldens at " << kCoherenceGoldenFile
      << "; generate them with REPRO_UPDATE_GOLDEN=1";
  ASSERT_EQ(goldens.size(), configs.size())
      << "golden file entry count does not match the grid; regenerate "
         "with REPRO_UPDATE_GOLDEN=1";
  for (const RunResult& r : serial) {
    const auto it = goldens.find(key_of(r));
    ASSERT_NE(it, goldens.end()) << "no golden entry for " << key_of(r);
    EXPECT_EQ(r.trace_digest, it->second.digest)
        << key_of(r)
        << ": canonical trace changed; if intentional, regenerate with "
           "REPRO_UPDATE_GOLDEN=1 and review the diff";
    EXPECT_EQ(render_vector(invalidation_vector(r)),
              it->second.invalidations)
        << key_of(r) << ": per-iteration invalidation counts changed";
  }
}

// The off switch really is off: a run with RunConfig::coherence empty
// must be byte-identical to the pre-coherence simulator, pinned by the
// page-grain golden file this PR did not regenerate.
TEST(CoherenceGolden, DisabledModelMatchesPageGrainGoldenByte) {
  RunConfig config;
  config.benchmark = "BT";
  config.placement = "ft";
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  config.trace = true;
  const RunResult result = run_benchmark(config);
  EXPECT_FALSE(result.coherence_enabled);
  EXPECT_EQ(result.coherence_totals.miss_lines(), 0u);

  const std::map<std::string, GoldenEntry> goldens =
      load_goldens(kPageGrainGoldenFile);
  const auto it = goldens.find("BT ft-base");
  ASSERT_NE(it, goldens.end())
      << "page-grain golden file lost its BT ft-base entry";
  EXPECT_EQ(result.trace_digest, it->second.digest)
      << "a disabled coherence model changed the page-grain timeline";
}

/// Predicted false-sharing locations: the (page, line) set of every
/// analysis.false-sharing diagnostic in the run.
std::set<std::pair<std::uint64_t, std::uint32_t>> predicted_lines(
    const RunResult& result) {
  std::set<std::pair<std::uint64_t, std::uint32_t>> out;
  for (const analysis::Diagnostic& d : result.diagnostics) {
    if (d.rule != "analysis.false-sharing") {
      continue;
    }
    EXPECT_TRUE(d.page.has_value()) << d.message;
    EXPECT_TRUE(d.line.has_value()) << d.message;
    if (d.page.has_value() && d.line.has_value()) {
      out.emplace(d.page->value(), *d.line);
    }
  }
  return out;
}

/// Traced ground truth: the (page, line) set that actually
/// ping-ponged (>= 2 distinct invalidating writers).
std::set<std::pair<std::uint64_t, std::uint32_t>> traced_lines(
    const RunResult& result) {
  std::set<std::pair<std::uint64_t, std::uint32_t>> out;
  const trace::CoherenceGroundTruth truth =
      trace::extract_coherence_ground_truth(*result.trace);
  for (const trace::LinePingPong& line : truth.ping_pong_lines()) {
    out.emplace(line.page, line.line);
  }
  return out;
}

RunConfig analyzer_config(const std::string& benchmark) {
  RunConfig config;
  config.benchmark = benchmark;
  config.placement = "ft";
  config.coherence = "msi";
  config.iterations = 4;
  config.trace = true;
  config.analyze = true;
  return config;
}

// analysis.false-sharing scored against simulation ground truth on
// the workload built to trip it: every predicted line ping-ponged
// (precision 1.0) and every ping-ponged line was predicted (recall
// 1.0).
TEST(CoherenceAnalyzer, PredictionsMatchTracedPingPongExactly) {
  const RunResult result = run_benchmark(analyzer_config("FS"));
  const auto predicted = predicted_lines(result);
  const auto traced = traced_lines(result);
  ASSERT_FALSE(predicted.empty()) << "analyzer missed the FS flag lines";
  ASSERT_FALSE(traced.empty()) << "FS produced no invalidation ping-pong";

  std::size_t true_positives = 0;
  for (const auto& line : predicted) {
    if (traced.count(line) != 0) {
      ++true_positives;
    } else {
      ADD_FAILURE() << "predicted line never ping-ponged: page "
                    << line.first << " line " << line.second;
    }
  }
  const double precision = static_cast<double>(true_positives) /
                           static_cast<double>(predicted.size());
  const double recall = static_cast<double>(true_positives) /
                        static_cast<double>(traced.size());
  EXPECT_EQ(precision, 1.0);
  EXPECT_EQ(recall, 1.0);
  EXPECT_EQ(predicted, traced);

  // FS's 16 threads at 4 fields per line share exactly 4 flag lines.
  EXPECT_EQ(predicted.size(), 4u);
}

// The padded twin: same access counts, one field per line -- the
// analyzer must stay silent and the simulation quiet.
TEST(CoherenceAnalyzer, PaddedTwinIsCleanAndQuiet) {
  const RunResult result = run_benchmark(analyzer_config("FSP"));
  EXPECT_TRUE(predicted_lines(result).empty())
      << "false positive on the padded twin";
  EXPECT_TRUE(traced_lines(result).empty());
  EXPECT_EQ(result.coherence_totals.invalidations_sent, 0u);
  EXPECT_EQ(result.coherence_totals.coherence_miss_lines, 0u);
}

}  // namespace
}  // namespace repro::harness
