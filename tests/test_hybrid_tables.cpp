// Sparse/dense hybrid page-structure equivalence.
//
// Every page-grain bookkeeping structure has two backends (see
// memsys::TableBackend): the dense arrays the paper-scale machine uses
// and the open-addressed sparse indexes the 128/512-node sweeps use.
// The contract is behavioural equivalence -- identical operation
// sequences must produce identical digests, iteration orders and
// observable outcomes regardless of backend. The suite drives each
// structure pair directly, then replays the whole 30-cell golden grid
// under both backends and compares trace digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "repro/common/flat_map.hpp"
#include "repro/common/hash.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/memsys/directory.hpp"
#include "repro/memsys/page_cache.hpp"
#include "repro/vm/counters.hpp"
#include "repro/vm/page_table.hpp"

namespace repro {
namespace {

/// Deterministic pseudo-random stream (splitmix-style) for op fuzzing.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    return avalanche64(state);
  }
};

TEST(FlatMap, InsertFindEraseAndIterationOverManyKeys) {
  FlatMap<std::uint64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);

  // Enough keys to force several growth rehashes (starts at 16 slots).
  constexpr std::uint64_t kKeys = 4096;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    map[k * 3] = k;
  }
  EXPECT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t* v = map.find(k * 3);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
    EXPECT_EQ(map.find(k * 3 + 1), nullptr);
  }

  // Erase every other key; backward-shift deletion must keep the rest
  // reachable.
  for (std::uint64_t k = 0; k < kKeys; k += 2) {
    EXPECT_TRUE(map.erase(k * 3));
    EXPECT_FALSE(map.erase(k * 3));
  }
  EXPECT_EQ(map.size(), kKeys / 2);
  std::set<std::uint64_t> visited;
  map.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    EXPECT_EQ(key, value * 3);
    visited.insert(key);
  });
  EXPECT_EQ(visited.size(), kKeys / 2);
  for (std::uint64_t k = 1; k < kKeys; k += 2) {
    ASSERT_NE(map.find(k * 3), nullptr) << k;
  }

  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);
}

TEST(FlatMap, CollidingKeysSurviveBackwardShiftErase) {
  // Keys chosen to land in a small table; erasing the home slot of a
  // displaced key must shift it back rather than orphan it.
  FlatMap<int> map;
  for (std::uint64_t k = 0; k < 64; ++k) {
    map[k << 32] = static_cast<int>(k);
  }
  for (std::uint64_t k = 0; k < 64; k += 3) {
    ASSERT_TRUE(map.erase(k << 32));
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    const int* v = map.find(k << 32);
    if (k % 3 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr) << k;
      EXPECT_EQ(*v, static_cast<int>(k));
    }
  }
}

TEST(HybridPageTable, BackendsAgreeOnDigestEntriesAndCounts) {
  vm::PageTable dense(/*sparse=*/false);
  vm::PageTable sparse(/*sparse=*/true);
  ASSERT_FALSE(dense.sparse());
  ASSERT_TRUE(sparse.sparse());

  Rng rng{12345};
  std::vector<std::uint64_t> mapped;
  for (std::uint32_t step = 0; step < 2000; ++step) {
    const std::uint64_t roll = rng.next();
    for (vm::PageTable* table : {&dense, &sparse}) {
      if (mapped.size() < 64 || (roll % 5) < 3) {
        const std::uint64_t page = roll % 4096;
        if (!table->is_mapped(VPage(page))) {
          table->map(VPage(page), FrameId(roll % 997));
          if (table == &dense) {
            mapped.push_back(page);
          }
        } else {
          table->note_mapper(VPage(page),
                             ProcId(static_cast<std::uint32_t>(roll % 96)));
          if ((roll % 7) == 0) {
            table->mark_dirty(VPage(page));
          }
        }
      } else {
        const std::uint64_t page = mapped[roll % mapped.size()];
        if (table->is_mapped(VPage(page))) {
          if ((roll % 3) == 0) {
            // Migrations require the replica set collapsed first.
            static_cast<void>(table->take_replicas(VPage(page)));
            static_cast<void>(table->remap(VPage(page), FrameId(roll % 991)));
          } else if ((roll % 3) == 1) {
            table->add_replica(VPage(page), FrameId(roll % 983));
          } else {
            static_cast<void>(table->take_replicas(VPage(page)));
            static_cast<void>(table->unmap(VPage(page)));
          }
        }
      }
    }
    if ((step % 251) == 0) {
      ASSERT_EQ(dense.digest(), sparse.digest()) << "step " << step;
    }
  }
  EXPECT_EQ(dense.digest(), sparse.digest());
  EXPECT_EQ(dense.mapped_pages(), sparse.mapped_pages());

  const auto dense_entries = dense.entries();
  const auto sparse_entries = sparse.entries();
  ASSERT_EQ(dense_entries.size(), sparse_entries.size());
  for (std::size_t i = 0; i < dense_entries.size(); ++i) {
    EXPECT_EQ(dense_entries[i].first, sparse_entries[i].first);
    EXPECT_EQ(dense_entries[i].second.frame, sparse_entries[i].second.frame);
    EXPECT_EQ(dense.mapper_count(dense_entries[i].first),
              sparse.mapper_count(sparse_entries[i].first));
  }
}

TEST(HybridPageTable, WideMapperSetsCountPastSixtyFourProcs) {
  vm::PageTable table(/*sparse=*/true);
  table.map(VPage(9), FrameId(1));
  for (std::uint32_t proc = 0; proc < 200; proc += 2) {
    table.note_mapper(VPage(9), ProcId(proc));
  }
  EXPECT_EQ(table.mapper_count(VPage(9)), 100u);
  // A remap (migration) must clear the whole wide set.
  static_cast<void>(table.remap(VPage(9), FrameId(2)));
  EXPECT_EQ(table.mapper_count(VPage(9)), 0u);
}

TEST(HybridDirectory, BackendsAgreeUnderRandomCoherenceTraffic) {
  constexpr std::size_t kProcs = 96;  // two sharer words per entry
  memsys::Directory dense(kProcs, /*sparse=*/false);
  memsys::Directory sparse(kProcs, /*sparse=*/true);

  Rng rng{777};
  for (std::uint32_t step = 0; step < 5000; ++step) {
    const std::uint64_t roll = rng.next();
    const ProcId proc(static_cast<std::uint32_t>(roll % kProcs));
    const VPage page((roll >> 8) % 512);
    const std::uint64_t op = (roll >> 32) % 4;
    unsigned dense_inv = 0;
    unsigned sparse_inv = 0;
    if (op == 0) {
      dense_inv = dense.on_write(proc, page).invalidations();
      sparse_inv = sparse.on_write(proc, page).invalidations();
    } else if (op == 3) {
      dense.on_evict(proc, page);
      sparse.on_evict(proc, page);
    } else {
      dense_inv = dense.on_read(proc, page).invalidations();
      sparse_inv = sparse.on_read(proc, page).invalidations();
    }
    ASSERT_EQ(dense_inv, sparse_inv) << "step " << step;
    if ((step % 509) == 0) {
      ASSERT_EQ(dense.digest(), sparse.digest()) << "step " << step;
      ASSERT_EQ(dense.tracked_pages(), sparse.tracked_pages());
    }
  }
  EXPECT_EQ(dense.digest(), sparse.digest());
  EXPECT_EQ(dense.tracked_pages(), sparse.tracked_pages());
}

TEST(HybridDirectory, WriteInvalidatesSharersBeyondWordZero) {
  constexpr std::size_t kProcs = 130;
  for (const bool sparse : {false, true}) {
    memsys::Directory directory(kProcs, sparse);
    for (std::uint32_t proc = 0; proc < kProcs; proc += 13) {
      static_cast<void>(directory.on_read(ProcId(proc), VPage(3)));
    }
    // Readers at procs 0, 13, ..., 117 (ten of them); the writer (65)
    // is one of them, so nine other copies must be invalidated.
    const auto outcome = directory.on_write(ProcId(65), VPage(3));
    EXPECT_EQ(outcome.invalidations(), 9u) << "sparse=" << sparse;
    EXPECT_FALSE(outcome.invalidate_high.empty());
    EXPECT_TRUE(directory.is_exclusive(ProcId(65), VPage(3)));
  }
}

TEST(HybridPageCache, BackendsAgreeOnLruBehaviourAndDigest) {
  memsys::PageCache dense(64, /*sparse=*/false);
  memsys::PageCache sparse(64, /*sparse=*/true);

  Rng rng{4242};
  for (std::uint32_t step = 0; step < 5000; ++step) {
    const std::uint64_t roll = rng.next();
    const VPage page(roll % 300);
    if ((roll >> 16) % 8 == 0) {
      EXPECT_EQ(dense.invalidate(page), sparse.invalidate(page));
    } else {
      const auto a = dense.touch(page);
      const auto b = sparse.touch(page);
      ASSERT_EQ(a.hit, b.hit) << "step " << step;
      ASSERT_EQ(a.evicted.has_value(), b.evicted.has_value());
      if (a.evicted.has_value()) {
        ASSERT_EQ(*a.evicted, *b.evicted);
      }
    }
    ASSERT_EQ(dense.size(), sparse.size());
    if (dense.size() > 0) {
      ASSERT_EQ(dense.lru_page(), sparse.lru_page());
    }
  }
  StateHash dense_hash;
  StateHash sparse_hash;
  dense.digest(dense_hash);
  sparse.digest(sparse_hash);
  EXPECT_EQ(dense_hash.value(), sparse_hash.value());

  dense.clear();
  sparse.clear();
  EXPECT_EQ(dense.size(), 0u);
  EXPECT_EQ(sparse.size(), 0u);
  EXPECT_FALSE(sparse.contains(VPage(1)));
}

TEST(HybridRefCounters, BackendsAgreeOnReadsArgmaxAndDigest) {
  constexpr std::size_t kFrames = 2048;
  constexpr std::size_t kNodes = 32;
  vm::RefCounters dense(kFrames, kNodes, /*counter_bits=*/11,
                        /*sparse=*/false);
  vm::RefCounters sparse(kFrames, kNodes, /*counter_bits=*/11,
                         /*sparse=*/true);

  Rng rng{99};
  for (std::uint32_t step = 0; step < 4000; ++step) {
    const std::uint64_t roll = rng.next();
    const FrameId frame(roll % kFrames);
    const NodeId node(static_cast<std::uint32_t>((roll >> 16) % kNodes));
    if ((roll >> 40) % 16 == 0) {
      dense.reset(frame);
      sparse.reset(frame);
    } else {
      const auto n = static_cast<std::uint32_t>((roll >> 24) % 600);
      dense.increment(frame, node, n);
      sparse.increment(frame, node, n);
    }
    if ((step % 997) == 0) {
      ASSERT_EQ(dense.digest(), sparse.digest()) << "step " << step;
    }
  }
  EXPECT_EQ(dense.digest(), sparse.digest());
  for (std::uint64_t f = 0; f < kFrames; f += 7) {
    EXPECT_EQ(dense.argmax_node(FrameId(f)), sparse.argmax_node(FrameId(f)));
    EXPECT_EQ(dense.read(FrameId(f), NodeId(3)),
              sparse.read(FrameId(f), NodeId(3)));
  }
  // An untouched frame reads as zeros in both backends.
  dense.reset_all();
  sparse.reset_all();
  EXPECT_EQ(dense.digest(), sparse.digest());
}

// The satellite acceptance gate: the full 30-cell golden grid (every
// benchmark x {ft, rr, wc} x {base, upmlib}) produces byte-identical
// trace digests with the dense and the sparse backends.
TEST(HybridTables, GoldenGridTraceDigestsAreBackendIndependent) {
  std::vector<harness::RunConfig> dense_configs;
  for (const std::string& benchmark : nas::workload_names()) {
    for (const std::string placement : {"ft", "rr", "wc"}) {
      for (const bool upmlib : {false, true}) {
        harness::RunConfig config;
        config.benchmark = benchmark;
        config.placement = placement;
        config.iterations = 3;
        config.workload.size_scale = 0.25;
        config.trace = true;
        config.machine.table_backend = memsys::TableBackend::kDense;
        if (upmlib) {
          config.upm_mode = nas::UpmMode::kDistribution;
        }
        dense_configs.push_back(std::move(config));
      }
    }
  }
  std::vector<harness::RunConfig> sparse_configs = dense_configs;
  for (harness::RunConfig& config : sparse_configs) {
    config.machine.table_backend = memsys::TableBackend::kSparse;
  }
  const std::vector<harness::RunResult> dense =
      harness::run_experiments(dense_configs, 4);
  const std::vector<harness::RunResult> sparse =
      harness::run_experiments(sparse_configs, 4);
  ASSERT_EQ(dense.size(), sparse.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i].trace_digest.size(), 16u);
    EXPECT_EQ(dense[i].trace_digest, sparse[i].trace_digest)
        << dense[i].benchmark << " " << dense[i].label
        << ": sparse backend diverged from dense";
  }
}

}  // namespace
}  // namespace repro
