// VM tests: reference counters (11-bit saturation), physical frame
// pools with best-effort redirection, page table + mapper tracking,
// placement policies and the address space.
#include <gtest/gtest.h>

#include <map>

#include "repro/common/assert.hpp"
#include "repro/topology/topology.hpp"
#include "repro/vm/address_space.hpp"
#include "repro/vm/counters.hpp"
#include "repro/vm/page_table.hpp"
#include "repro/vm/physical_memory.hpp"
#include "repro/vm/placement.hpp"

namespace repro::vm {
namespace {

TEST(RefCounters, IncrementAndRead) {
  RefCounters counters(8, 4, 11);
  counters.increment(FrameId(3), NodeId(1), 10);
  counters.increment(FrameId(3), NodeId(1), 5);
  EXPECT_EQ(counters.read(FrameId(3), NodeId(1)), 15u);
  EXPECT_EQ(counters.read(FrameId(3), NodeId(0)), 0u);
  EXPECT_EQ(counters.read(FrameId(3)).size(), 4u);
}

TEST(RefCounters, ElevenBitSaturation) {
  // The Origin2000 counters are 11 bits wide; they must clamp at 2047
  // and never wrap (wrapping would invert migration decisions).
  RefCounters counters(2, 2, 11);
  EXPECT_EQ(counters.max_value(), 2047u);
  counters.increment(FrameId(0), NodeId(0), 2000);
  counters.increment(FrameId(0), NodeId(0), 2000);
  EXPECT_EQ(counters.read(FrameId(0), NodeId(0)), 2047u);
  counters.increment(FrameId(0), NodeId(0), 1);
  EXPECT_EQ(counters.read(FrameId(0), NodeId(0)), 2047u);
}

TEST(RefCounters, ArgmaxAndReset) {
  RefCounters counters(4, 4, 11);
  counters.increment(FrameId(1), NodeId(2), 100);
  counters.increment(FrameId(1), NodeId(3), 50);
  EXPECT_EQ(counters.argmax_node(FrameId(1)), NodeId(2));
  counters.reset(FrameId(1));
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(counters.read(FrameId(1), NodeId(n)), 0u);
  }
  // Ties resolve to the lowest node id.
  EXPECT_EQ(counters.argmax_node(FrameId(0)), NodeId(0));
}

TEST(RefCounters, BoundsChecked) {
  RefCounters counters(2, 2, 11);
  EXPECT_THROW(counters.increment(FrameId(2), NodeId(0), 1),
               ContractViolation);
  EXPECT_THROW(counters.read(FrameId(0), NodeId(2)), ContractViolation);
}

TEST(PhysicalMemory, StrictAllocationWithinNode) {
  const topo::FatHypercube topology(4);
  PhysicalMemory phys(4, 2, topology);
  EXPECT_EQ(phys.total_free(), 8u);
  const auto f = phys.allocate_strict(NodeId(1));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(phys.node_of(*f), NodeId(1));
  EXPECT_EQ(phys.free_frames(NodeId(1)), 1u);
}

TEST(PhysicalMemory, StrictFailsWhenFull) {
  const topo::FatHypercube topology(4);
  PhysicalMemory phys(4, 1, topology);
  ASSERT_TRUE(phys.allocate_strict(NodeId(0)).has_value());
  EXPECT_FALSE(phys.allocate_strict(NodeId(0)).has_value());
}

TEST(PhysicalMemory, BestEffortRedirectsToNearestNode) {
  // IRIX's resource constraint: a full target node redirects the
  // allocation to the physically closest node with space.
  const topo::FatHypercube topology(4);
  PhysicalMemory phys(4, 1, topology);
  ASSERT_TRUE(phys.allocate_strict(NodeId(0)).has_value());
  const auto f = phys.allocate(NodeId(0));
  ASSERT_TRUE(f.has_value());
  // Node 1 shares node 0's router: one hop, the closest alternative.
  EXPECT_EQ(phys.node_of(*f), NodeId(1));
}

TEST(PhysicalMemory, ExhaustionReturnsNullopt) {
  const topo::FatHypercube topology(2);
  PhysicalMemory phys(2, 1, topology);
  ASSERT_TRUE(phys.allocate(NodeId(0)).has_value());
  ASSERT_TRUE(phys.allocate(NodeId(0)).has_value());
  EXPECT_FALSE(phys.allocate(NodeId(0)).has_value());
}

TEST(PhysicalMemory, FreeAndReuse) {
  const topo::FatHypercube topology(2);
  PhysicalMemory phys(2, 1, topology);
  const auto f = phys.allocate_strict(NodeId(0));
  phys.free(*f);
  EXPECT_EQ(phys.free_frames(NodeId(0)), 1u);
  EXPECT_THROW(phys.free(*f), ContractViolation);  // double free
  const auto again = phys.allocate_strict(NodeId(0));
  EXPECT_EQ(*again, *f);
}

TEST(PageTable, MapRemapUnmap) {
  PageTable table;
  table.map(VPage(5), FrameId(9));
  EXPECT_TRUE(table.is_mapped(VPage(5)));
  EXPECT_EQ(table.lookup(VPage(5)), FrameId(9));
  EXPECT_THROW(table.map(VPage(5), FrameId(1)), ContractViolation);

  const FrameId old = table.remap(VPage(5), FrameId(2));
  EXPECT_EQ(old, FrameId(9));
  EXPECT_EQ(table.entry(VPage(5)).migrations, 1u);

  EXPECT_EQ(table.unmap(VPage(5)), FrameId(2));
  EXPECT_FALSE(table.is_mapped(VPage(5)));
  EXPECT_THROW(table.unmap(VPage(5)), ContractViolation);
}

TEST(PageTable, MapperTrackingAndShootdownReset) {
  PageTable table;
  table.map(VPage(1), FrameId(1));
  table.note_mapper(VPage(1), ProcId(0));
  table.note_mapper(VPage(1), ProcId(3));
  table.note_mapper(VPage(1), ProcId(3));  // idempotent
  EXPECT_EQ(table.mapper_count(VPage(1)), 2u);
  // Migration (remap) clears the mappings: that is the TLB shootdown.
  table.remap(VPage(1), FrameId(2));
  EXPECT_EQ(table.mapper_count(VPage(1)), 0u);
}

TEST(Placement, FirstTouchUsesTouchersNode) {
  FirstTouchPlacement ft(4, 2);  // 2 procs per node
  EXPECT_EQ(ft.place(VPage(0), ProcId(0)), NodeId(0));
  EXPECT_EQ(ft.place(VPage(1), ProcId(1)), NodeId(0));
  EXPECT_EQ(ft.place(VPage(2), ProcId(7)), NodeId(3));
  EXPECT_EQ(ft.name(), "ft");
}

TEST(Placement, RoundRobinIsPageCyclic) {
  RoundRobinPlacement rr(4);
  for (std::uint64_t p = 0; p < 16; ++p) {
    EXPECT_EQ(rr.place(VPage(p), ProcId(0)).value(), p % 4);
  }
}

class RandomPlacementBalance : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomPlacementBalance, BalancedAndDeterministic) {
  // The paper: "a simple random generator is sufficient to produce a
  // fairly balanced distribution of pages" for resident sets of a few
  // thousand pages.
  const std::uint64_t seed = GetParam();
  RandomPlacement rand(16, seed);
  std::map<std::uint32_t, int> counts;
  constexpr int kPages = 4096;
  for (int p = 0; p < kPages; ++p) {
    counts[rand.place(VPage(static_cast<std::uint64_t>(p)), ProcId(0))
               .value()]++;
  }
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, kPages / 16, kPages / 16 * 0.35);
  }
  // reset() restores the exact sequence.
  RandomPlacement rand2(16, seed);
  rand.reset();
  for (int p = 0; p < 64; ++p) {
    EXPECT_EQ(rand.place(VPage(0), ProcId(0)),
              rand2.place(VPage(0), ProcId(0)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlacementBalance,
                         ::testing::Values(1, 42, 12345, 99999));

TEST(Placement, WorstCasePinsEverythingToOneNode) {
  FixedNodePlacement wc(NodeId(0));
  for (std::uint64_t p = 0; p < 100; ++p) {
    EXPECT_EQ(wc.place(VPage(p), ProcId(static_cast<std::uint32_t>(p % 16))),
              NodeId(0));
  }
}

TEST(Placement, FactoryMatchesPaperNames) {
  for (const char* name : {"ft", "rr", "rand", "wc"}) {
    EXPECT_EQ(make_placement(name, 16, 1, 0)->name(), name);
  }
  EXPECT_THROW(make_placement("optimal", 16, 1, 0), ContractViolation);
}

TEST(AddressSpace, AllocatesWithGuardPages) {
  AddressSpace space(16 * kKiB);
  const PageRange a = space.allocate_pages("a", 10);
  const PageRange b = space.allocate_pages("b", 5);
  // A guard page precedes every allocation (page 0 is the null guard).
  EXPECT_EQ(a.first.value(), 1u);
  EXPECT_EQ(b.first.value(), a.end().value() + 1);
  EXPECT_EQ(space.total_pages(), 1 + 10 + 1 + 5u);
}

TEST(AddressSpace, ByteAllocationRoundsUp) {
  AddressSpace space(16 * kKiB);
  const PageRange r = space.allocate("x", 16 * kKiB + 1);
  EXPECT_EQ(r.count, 2u);
}

TEST(AddressSpace, LookupAndDuplicates) {
  AddressSpace space(4096);
  space.allocate_pages("arr", 3);
  EXPECT_TRUE(space.has("arr"));
  EXPECT_EQ(space.range("arr").count, 3u);
  EXPECT_THROW(space.allocate_pages("arr", 1), ContractViolation);
  EXPECT_THROW(space.range("missing"), ContractViolation);
}

TEST(PageRange, ContainsAndIndex) {
  const PageRange r{VPage(10), 5};
  EXPECT_TRUE(r.contains(VPage(10)));
  EXPECT_TRUE(r.contains(VPage(14)));
  EXPECT_FALSE(r.contains(VPage(15)));
  EXPECT_EQ(r.page(2), VPage(12));
  EXPECT_THROW(r.page(5), ContractViolation);
}

}  // namespace
}  // namespace repro::vm
