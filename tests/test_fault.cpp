// Fault-injection subsystem tests: determinism of the draw streams,
// schedule gating, per-class semantics, graceful degradation of the
// migration engines, and the harness resilience layer (watchdog,
// failure aggregation, checkpoint/resume, atomic writes).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/fault/injector.hpp"
#include "repro/fault/plan.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/harness/checkpoint.hpp"
#include "repro/harness/json.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/trace/sink.hpp"

namespace repro::harness {
namespace {

using fault::FaultClass;
using fault::FaultInjector;
using fault::FaultPlan;

std::string temp_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("repro_fault_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

RunConfig small_config(const std::string& placement, bool upmlib) {
  RunConfig config;
  config.benchmark = "CG";
  config.placement = placement;
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  if (upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  return config;
}

FaultPlan uniform_plan(double rate, std::uint64_t seed = 99) {
  FaultPlan plan;
  plan.seed = seed;
  plan.set_rate(rate);
  return plan;
}

// --- plan ------------------------------------------------------------------

TEST(FaultPlan, DefaultIsEmptyAndValid) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.max_rate(), 0.0);
  plan.validate();
}

TEST(FaultPlan, SetRateMakesPlanNonEmpty) {
  FaultPlan plan = uniform_plan(0.25);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.max_rate(), 0.25);
  plan.validate();
}

TEST(FaultPlan, ValidateRejectsBadValues) {
  FaultPlan plan;
  plan.counter_rate = 1.5;
  EXPECT_THROW(plan.validate(), ContractViolation);
  plan = FaultPlan{};
  plan.busy_pin_attempts = 0;
  EXPECT_THROW(plan.validate(), ContractViolation);
  plan = FaultPlan{};
  plan.counter_scale_percent = 101;
  EXPECT_THROW(plan.validate(), ContractViolation);
  plan = FaultPlan{};
  plan.active_from_iteration = 5;
  plan.active_until_iteration = 4;
  EXPECT_THROW(plan.validate(), ContractViolation);
}

TEST(FaultPlan, FromEnvReadsSeedAndRates) {
  ScopedEnv seed("REPRO_FAULT_SEED", "42");
  ScopedEnv rate("REPRO_FAULT_RATE", "0.125");
  ScopedEnv busy("REPRO_FAULT_BUSY_RATE", "0.5");
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.counter_rate, 0.125);
  EXPECT_EQ(plan.slowdown_rate, 0.125);
  EXPECT_EQ(plan.preemption_rate, 0.125);
  EXPECT_EQ(plan.migration_busy_rate, 0.5);  // per-class override wins
}

// --- injector draw streams -------------------------------------------------

TEST(FaultInjector, SameSeedSameConsultationsSameStream) {
  const FaultPlan plan = uniform_plan(0.3);
  FaultInjector a(plan);
  FaultInjector b(plan);
  a.set_iteration(1);
  b.set_iteration(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.migration_busy(VPage(7)), b.migration_busy(VPage(7)));
    const auto ma = a.on_miss(NodeId(3), 16, 1000);
    const auto mb = b.on_miss(NodeId(3), 16, 1000);
    EXPECT_EQ(ma.extra_ns, mb.extra_ns);
    const auto ra = a.on_region(16, 5000);
    const auto rb = b.on_region(16, 5000);
    EXPECT_EQ(ra.fired, rb.fired);
    EXPECT_EQ(ra.thread, rb.thread);
  }
  EXPECT_EQ(a.stats().injected_total(), b.stats().injected_total());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_GT(a.stats().injected_total(), 0u);
}

TEST(FaultInjector, DifferentSeedsProduceDifferentStreams) {
  FaultInjector a(uniform_plan(0.5, 1));
  FaultInjector b(uniform_plan(0.5, 2));
  a.set_iteration(1);
  b.set_iteration(1);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.on_region(16, 0).fired != b.on_region(16, 0).fired;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, ScheduleGatesEveryClass) {
  FaultPlan plan = uniform_plan(1.0);
  plan.active_from_iteration = 2;
  plan.active_until_iteration = 3;
  FaultInjector inj(plan);
  for (const std::uint32_t iteration : {0u, 1u, 4u, 100u}) {
    inj.set_iteration(iteration);
    EXPECT_FALSE(inj.migration_busy(VPage(1))) << iteration;
    EXPECT_EQ(inj.on_miss(NodeId(0), 8, 0).extra_ns, 0u) << iteration;
    EXPECT_FALSE(inj.on_region(4, 0).fired) << iteration;
  }
  EXPECT_EQ(inj.stats().injected_total(), 0u);
  for (const std::uint32_t iteration : {2u, 3u}) {
    inj.set_iteration(iteration);
    EXPECT_TRUE(inj.migration_busy(VPage(100 + iteration))) << iteration;
    EXPECT_GT(inj.on_miss(NodeId(0), 8, 0).extra_ns, 0u) << iteration;
    EXPECT_TRUE(inj.on_region(4, 0).fired) << iteration;
  }
}

TEST(FaultInjector, CounterCorruptionScalesOrZeroes) {
  const std::vector<std::uint32_t> counts = {100, 7, 0, 33};
  FaultPlan plan;
  plan.counter_rate = 1.0;
  plan.counter_scale_percent = 0;  // zero them outright
  FaultInjector zero(plan);
  zero.set_iteration(1);
  const auto zeroed =
      zero.filter_counters(VPage(1), std::span<const std::uint32_t>(counts));
  ASSERT_EQ(zeroed.size(), counts.size());
  for (const std::uint32_t c : zeroed) {
    EXPECT_EQ(c, 0u);
  }
  plan.counter_scale_percent = 50;
  FaultInjector half(plan);
  half.set_iteration(1);
  const auto halved =
      half.filter_counters(VPage(1), std::span<const std::uint32_t>(counts));
  ASSERT_EQ(halved.size(), counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(halved[i], counts[i] / 2);
  }
  EXPECT_EQ(zero.stats().counter_corruptions, 1u);
}

TEST(FaultInjector, CounterReadsPassThroughAtRateZero) {
  const std::vector<std::uint32_t> counts = {9, 9, 9};
  FaultPlan plan;
  plan.migration_busy_rate = 1.0;  // non-empty plan, counter class off
  FaultInjector inj(plan);
  inj.set_iteration(1);
  const auto out =
      inj.filter_counters(VPage(1), std::span<const std::uint32_t>(counts));
  EXPECT_EQ(out.data(), counts.data());  // untouched, not copied
  EXPECT_EQ(inj.stats().counter_corruptions, 0u);
}

TEST(FaultInjector, BusyPinRejectsWithoutDrawingUntilDecayed) {
  FaultPlan plan;
  plan.migration_busy_rate = 1.0;
  plan.busy_pin_attempts = 3;
  FaultInjector inj(plan);
  trace::TraceSink sink;
  const std::uint16_t lane = sink.register_lane("fault");
  inj.set_trace(&sink, lane);
  inj.set_iteration(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(inj.migration_busy(VPage(5)));
  }
  // Call 1 draws and pins (b=0); calls 2-3 are rejected by the active
  // pin without a draw (b=1); the pin then decays and call 4 draws
  // afresh (b=0).
  const std::vector<trace::TraceEvent>& events = sink.lane_events(lane);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].b, 0u);
  EXPECT_EQ(events[1].b, 1u);
  EXPECT_EQ(events[2].b, 1u);
  EXPECT_EQ(events[3].b, 0u);
  EXPECT_EQ(inj.stats().busy_rejections, 4u);
}

TEST(FaultInjector, DigestAperiodicWhileActiveStableWhenExhausted) {
  FaultPlan plan = uniform_plan(0.5);
  plan.active_until_iteration = 3;
  FaultInjector inj(plan);
  inj.set_iteration(1);
  const std::uint64_t d1 = inj.digest();
  inj.set_iteration(2);
  const std::uint64_t d2 = inj.digest();
  EXPECT_NE(d1, d2);  // iteration mixed in while faults can fire
  inj.set_iteration(4);
  const std::uint64_t d4 = inj.digest();
  inj.set_iteration(5);
  EXPECT_EQ(d4, inj.digest());  // schedule exhausted: digest settles
}

// --- machine-level determinism --------------------------------------------

std::vector<RunConfig> faulted_matrix(double rate) {
  std::vector<RunConfig> configs;
  for (const std::string placement : {"ft", "rr", "wc"}) {
    for (const bool upmlib : {false, true}) {
      RunConfig config = small_config(placement, upmlib);
      config.trace = true;
      config.fault = uniform_plan(rate);
      if (rate > 0.0) {
        config.upm.hysteresis_passes = 2;
      }
      configs.push_back(std::move(config));
    }
  }
  return configs;
}

TEST(FaultDeterminism, FixedSeedByteIdenticalAcrossJobs) {
  const std::vector<RunConfig> configs = faulted_matrix(0.02);
  const std::vector<RunResult> serial = run_experiments(configs, 1);
  const std::vector<RunResult> parallel = run_experiments(configs, 4);
  EXPECT_EQ(results_to_json(serial), results_to_json(parallel));
  std::uint64_t injected = 0;
  for (const RunResult& r : serial) {
    injected += r.fault_stats.injected_total();
  }
  EXPECT_GT(injected, 0u) << "matrix injected nothing; rate too low";
}

TEST(FaultDeterminism, ZeroRatePlanIsByteIdenticalToNoPlan) {
  // An all-zero plan must not even attach an injector: the run is the
  // byte-identical no-fault-subsystem run, golden digests included.
  RunConfig plain = small_config("rr", /*upmlib=*/true);
  plain.trace = true;
  RunConfig zero = plain;
  zero.fault.seed = 0xdeadbeef;  // differs, but all rates are 0
  ASSERT_TRUE(zero.fault.empty());
  const RunResult a = run_benchmark(plain);
  const RunResult b = run_benchmark(zero);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(results_to_json({a}), results_to_json({b}));
}

TEST(FaultDeterminism, FaultsActuallyPerturbTheRun) {
  RunConfig plain = small_config("rr", /*upmlib=*/true);
  plain.trace = true;
  RunConfig faulted = plain;
  faulted.fault = uniform_plan(0.05);
  const RunResult a = run_benchmark(plain);
  const RunResult b = run_benchmark(faulted);
  EXPECT_GT(b.fault_stats.injected_total(), 0u);
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

TEST(FaultDeterminism, EnvOverridesReachTheHarness) {
  RunConfig config = small_config("rr", /*upmlib=*/false);
  config.trace = true;
  RunConfig explicit_plan = config;
  explicit_plan.fault = uniform_plan(0.05, FaultPlan{}.seed);
  const RunResult via_config = run_benchmark(explicit_plan);
  RunResult via_env;
  {
    ScopedEnv rate("REPRO_FAULT_RATE", "0.05");
    via_env = run_benchmark(config);  // config itself carries no plan
  }
  EXPECT_GT(via_env.fault_stats.injected_total(), 0u);
  EXPECT_EQ(via_env.trace_digest, via_config.trace_digest);
  // And the checkpoint identity follows the env, so a stale result
  // cannot be resumed into an env-overridden rerun.
  std::uint64_t env_identity = 0;
  {
    ScopedEnv rate("REPRO_FAULT_RATE", "0.05");
    env_identity = config_identity(config);
  }
  EXPECT_EQ(env_identity, config_identity(explicit_plan));
  EXPECT_NE(env_identity, config_identity(config));
}

// --- graceful degradation --------------------------------------------------

TEST(Degradation, UpmlibRetriesThenGivesUpWhenEveryMoveIsBusy) {
  RunConfig baseline = small_config("rr", /*upmlib=*/true);
  const RunResult before = run_benchmark(baseline);
  ASSERT_GT(before.upm_stats.distribution_migrations, 0u)
      << "config never migrates; the busy fault would be vacuous";

  RunConfig busy = baseline;
  busy.fault.migration_busy_rate = 1.0;
  busy.fault.busy_pin_attempts = 1;  // every attempt redraws, all BUSY
  const RunResult after = run_benchmark(busy);
  EXPECT_EQ(after.upm_stats.distribution_migrations, 0u);
  EXPECT_GT(after.upm_stats.busy_retries, 0u);
  EXPECT_GT(after.upm_stats.give_ups, 0u);
  EXPECT_GT(after.kernel_stats.busy_migrations, 0u);
  // Bounded: with every attempt BUSY, each request performs exactly
  // busy_retry_limit - 1 retries before giving up.
  EXPECT_EQ(after.upm_stats.busy_retries,
            after.upm_stats.give_ups * (busy.upm.busy_retry_limit - 1));
}

TEST(Degradation, DaemonDefersBusyMigrations) {
  RunConfig baseline = small_config("rr", /*upmlib=*/false);
  baseline.kernel_migration = true;
  const RunResult before = run_benchmark(baseline);
  if (before.daemon_stats.migrations == 0) {
    GTEST_SKIP() << "daemon never migrates in this configuration";
  }
  RunConfig busy = baseline;
  busy.fault.migration_busy_rate = 1.0;
  const RunResult after = run_benchmark(busy);
  EXPECT_EQ(after.daemon_stats.migrations, 0u);
  EXPECT_GT(after.daemon_stats.deferred_busy, 0u);
  EXPECT_EQ(after.daemon_stats.deferred_busy,
            after.kernel_stats.busy_migrations);
}

// --- watchdog / sweep resilience -------------------------------------------

RunConfig endless_config() {
  // Enough full simulated iterations that the 1 ms wall-clock budget is
  // guaranteed to be exceeded at some iteration boundary.
  RunConfig config = small_config("rr", /*upmlib=*/false);
  config.iterations = 5000;
  config.no_fast_forward = true;
  config.cell_timeout_ms = 1;
  return config;
}

TEST(Watchdog, CellTimeoutThrows) {
  EXPECT_THROW((void)run_benchmark(endless_config()), CellTimeoutError);
}

TEST(Watchdog, SweepReportsTimeoutWithoutAbortingOrRetrying) {
  std::vector<RunConfig> configs = {endless_config(),
                                    small_config("ft", false)};
  SweepOptions options;
  options.jobs = 2;
  options.cell_retries = 2;  // must NOT apply to the timeout
  const SweepOutcome outcome = run_sweep(configs, options);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 0u);
  EXPECT_TRUE(outcome.failures[0].timeout);
  EXPECT_EQ(outcome.stats.watchdog_fires, 1u);
  EXPECT_EQ(outcome.stats.cells_retried, 0u);
  EXPECT_EQ(outcome.stats.cells_ok, 1u);
  EXPECT_EQ(outcome.results[1].label, configs[1].label());
}

TEST(Watchdog, SweepDefaultTimeoutAppliesToCellsWithoutOne) {
  RunConfig config = endless_config();
  config.cell_timeout_ms = 0;  // inherit the sweep default
  SweepOptions options;
  options.jobs = 1;
  options.cell_timeout_ms = 1;
  const SweepOutcome outcome = run_sweep({config}, options);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_TRUE(outcome.failures[0].timeout);
}

// --- checkpoint / resume ---------------------------------------------------

TEST(Checkpoint, RoundTripReproducesJsonRow) {
  const std::string dir = temp_dir("roundtrip");
  RunConfig config = small_config("rr", /*upmlib=*/true);
  config.trace = true;
  config.fault = uniform_plan(0.02);
  config.upm.hysteresis_passes = 2;
  const RunResult original = run_benchmark(config);
  save_checkpoint(dir, config, original);
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(dir, config, &loaded));
  EXPECT_EQ(results_to_json({original}), results_to_json({loaded}));
}

TEST(Checkpoint, IdentityMismatchRefusesStaleResult) {
  const std::string dir = temp_dir("identity");
  RunConfig config = small_config("ft", false);
  const RunResult result = run_benchmark(config);
  save_checkpoint(dir, config, result);
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(dir, config, &loaded));

  RunConfig changed = config;
  changed.iterations = 4;
  EXPECT_FALSE(load_checkpoint(dir, changed, &loaded));
  changed = config;
  changed.fault = uniform_plan(0.5);
  EXPECT_FALSE(load_checkpoint(dir, changed, &loaded));
  changed = config;
  changed.upm.hysteresis_passes = 2;
  EXPECT_FALSE(load_checkpoint(dir, changed, &loaded));
  // Host-side supervision knobs do NOT change the identity.
  changed = config;
  changed.cell_timeout_ms = 12345;
  EXPECT_TRUE(load_checkpoint(dir, changed, &loaded));
}

TEST(Checkpoint, SweepResumesCompletedCells) {
  const std::string dir = temp_dir("resume");
  std::vector<RunConfig> configs;
  for (const std::string placement : {"ft", "rr"}) {
    RunConfig config = small_config(placement, /*upmlib=*/true);
    config.trace = true;
    configs.push_back(std::move(config));
  }
  SweepOptions options;
  options.jobs = 2;
  options.checkpoint_dir = dir;
  const SweepOutcome first = run_sweep(configs, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.stats.cells_resumed, 0u);
  const SweepOutcome second = run_sweep(configs, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.stats.cells_resumed, configs.size());
  EXPECT_EQ(results_to_json(first.results), results_to_json(second.results));
}

TEST(FailureClasses, NamesAndExitCodesAreStable) {
  EXPECT_STREQ(failure_class_name(FailureClass::kFault), "fault");
  EXPECT_STREQ(failure_class_name(FailureClass::kTimeout), "timeout");
  EXPECT_STREQ(failure_class_name(FailureClass::kRetryExhausted),
               "retry-exhausted");
  EXPECT_STREQ(failure_class_name(FailureClass::kCrash), "crash");
  EXPECT_EQ(failure_exit_code(FailureClass::kFault), 3);
  EXPECT_EQ(failure_exit_code(FailureClass::kTimeout), 4);
  EXPECT_EQ(failure_exit_code(FailureClass::kRetryExhausted), 5);
  EXPECT_EQ(failure_exit_code(FailureClass::kCrash), 6);
}

TEST(FailureClasses, TimeoutFailureIsClassifiedAndNamedInExitCode) {
  SweepOptions options;
  options.jobs = 1;
  const SweepOutcome outcome = run_sweep({endless_config()}, options);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].cls, FailureClass::kTimeout);
  EXPECT_TRUE(outcome.failures[0].timeout);  // kept in sync
  EXPECT_EQ(outcome.exit_code(), failure_exit_code(FailureClass::kTimeout));
}

TEST(FailureClasses, RetryBudgetDistinguishesFaultFromExhaustion) {
  // kernel_migration + upmlib is rejected deterministically by
  // run_benchmark: with no retry budget that is a plain kFault, with
  // one it becomes kRetryExhausted (the budget was spent).
  RunConfig broken = small_config("ft", /*upmlib=*/true);
  broken.kernel_migration = true;
  SweepOptions options;
  options.jobs = 1;
  SweepOutcome outcome = run_sweep({broken}, options);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].cls, FailureClass::kFault);
  EXPECT_EQ(outcome.exit_code(), failure_exit_code(FailureClass::kFault));

  options.cell_retries = 1;
  outcome = run_sweep({broken}, options);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].cls, FailureClass::kRetryExhausted);
  EXPECT_EQ(outcome.exit_code(),
            failure_exit_code(FailureClass::kRetryExhausted));
  EXPECT_EQ(outcome.stats.cells_retried, 1u);
}

TEST(FailureClasses, ExitCodeReportsTheMostSevereClass) {
  SweepOutcome outcome;
  EXPECT_EQ(outcome.exit_code(), 0);
  CellFailure fault;
  fault.cls = FailureClass::kFault;
  CellFailure timeout;
  timeout.cls = FailureClass::kTimeout;
  outcome.failures = {fault, timeout};
  EXPECT_EQ(outcome.exit_code(), failure_exit_code(FailureClass::kTimeout));
}

TEST(Watchdog, EnvTimeoutIsStrictlyParsed) {
  Env::global().set("REPRO_CELL_TIMEOUT_MS", "250");
  EXPECT_EQ(effective_cell_timeout_ms(0), 250u);
  // An explicit request wins over the environment.
  EXPECT_EQ(effective_cell_timeout_ms(7), 7u);
  // Malformed or out-of-range values fail loudly -- a silently ignored
  // watchdog is worse than a crash.
  Env::global().set("REPRO_CELL_TIMEOUT_MS", "soon");
  EXPECT_THROW((void)effective_cell_timeout_ms(0), ContractViolation);
  Env::global().set("REPRO_CELL_TIMEOUT_MS", "-5");
  EXPECT_THROW((void)effective_cell_timeout_ms(0), ContractViolation);
  Env::global().unset("REPRO_CELL_TIMEOUT_MS");
  EXPECT_EQ(effective_cell_timeout_ms(0), 0u);
}

TEST(Checkpoint, SweepIdentityGuardRefusesForeignCells) {
  const std::string dir = temp_dir("sweep_guard");
  RunConfig config = small_config("ft", false);
  const std::vector<RunConfig> sweep_a = {config, small_config("rr", false)};
  const std::vector<RunConfig> sweep_b = {config};
  const std::uint64_t id_a = sweep_identity(sweep_a);
  const std::uint64_t id_b = sweep_identity(sweep_b);
  ASSERT_NE(id_a, id_b);
  ASSERT_NE(id_a, 0u);

  const RunResult result = run_benchmark(config);
  save_checkpoint(dir, config, result, id_a);
  RunResult loaded;
  // Same sweep: resumes. No expectation (0): resumes.
  EXPECT_TRUE(load_checkpoint(dir, config, &loaded, id_a));
  EXPECT_TRUE(load_checkpoint(dir, config, &loaded));
  // A *different* sweep must refuse loudly, not silently recompute or
  // silently resume a stale cell.
  EXPECT_THROW((void)load_checkpoint(dir, config, &loaded, id_b),
               CheckpointMismatchError);
}

TEST(Checkpoint, SweepRefusesCheckpointDirOfDifferentSweep) {
  const std::string dir = temp_dir("sweep_refuse");
  std::vector<RunConfig> sweep_a = {small_config("ft", false),
                                    small_config("rr", false)};
  SweepOptions options;
  options.jobs = 1;
  options.checkpoint_dir = dir;
  ASSERT_TRUE(run_sweep(sweep_a, options).ok());
  // Same first cell, different sweep: its saved checkpoint belongs to
  // sweep A and must not resume under sweep B.
  const std::vector<RunConfig> sweep_b = {sweep_a[0],
                                          small_config("wc", false)};
  const SweepOutcome outcome = run_sweep(sweep_b, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.failures[0].index, 0u);
  EXPECT_NE(outcome.failures[0].message.find("sweep"), std::string::npos);
}

TEST(Checkpoint, TruncationAtEveryByteIsRejectedNeverMisread) {
  const std::string dir = temp_dir("torn_checkpoint");
  RunConfig config = small_config("ft", false);
  config.trace = true;
  const RunResult result = run_benchmark(config);
  save_checkpoint(dir, config, result);
  const std::string path = checkpoint_path(dir, config);
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    content = os.str();
  }
  ASSERT_FALSE(content.empty());
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(dir, config, &loaded));
  for (std::size_t cut = 0; cut < content.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content.substr(0, cut);
    }
    EXPECT_FALSE(load_checkpoint(dir, config, &loaded))
        << "checkpoint truncated at byte " << cut << " was accepted";
  }
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const std::string dir = temp_dir("truncated");
  RunConfig config = small_config("ft", false);
  const RunResult result = run_benchmark(config);
  save_checkpoint(dir, config, result);
  const std::string path = checkpoint_path(dir, config);
  std::string content;
  {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    content = os.str();
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  RunResult loaded;
  EXPECT_FALSE(load_checkpoint(dir, config, &loaded));
}

// --- atomic writes ---------------------------------------------------------

TEST(AtomicFile, WritesCreatesDirectoriesAndReplaces) {
  const std::string dir = temp_dir("atomic");
  const std::string path = dir + "/nested/deeper/out.json";
  atomic_write_file(path, "first");
  {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "first");
  }
  atomic_write_file(path, "second, longer content");
  {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "second, longer content");
  }
  // No temporary litter left behind next to the target.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicFile, JsonWriterLandsCompleteFile) {
  const std::string dir = temp_dir("json");
  RunConfig config = small_config("ft", false);
  const RunResult result = run_benchmark(config);
  const std::string path = dir + "/BENCH_test.json";
  write_results_json(path, "fault_test", {result});
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"fault_injected_total\""), std::string::npos);
  EXPECT_NE(content.find("\"fault_rate\""), std::string::npos);
  EXPECT_EQ(content.back(), '\n');
}

}  // namespace
}  // namespace repro::harness
