// OS-layer tests: kernel page faults and placement, the migration
// primitive (costs, redirection, counter reset), the FLASH/IRIX-style
// migration daemon's windowed policy, and the user-level MMCI.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/memsys/config.hpp"
#include "repro/os/daemon.hpp"
#include "repro/os/kernel.hpp"
#include "repro/os/mmci.hpp"
#include "repro/topology/topology.hpp"
#include "repro/vm/placement.hpp"

namespace repro::os {
namespace {

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 16;
  return config;
}

memsys::HomeInfo touch(Kernel& kernel, ProcId proc, VPage page,
                       std::uint32_t lines = 1, Ns now = 0) {
  const auto home = kernel.resolve(proc, page, false);
  kernel.on_miss(proc, page, home, lines, now);
  return home;
}

TEST(Kernel, FirstTouchFaultPlacesOnTouchersNode) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  const auto home = kernel.resolve(ProcId(2), VPage(7), false);
  EXPECT_EQ(home.node, NodeId(2));
  EXPECT_EQ(kernel.home_of(VPage(7)), NodeId(2));
  EXPECT_EQ(kernel.stats().page_faults, 1u);
  // Second resolve is not a fault.
  kernel.resolve(ProcId(0), VPage(7), false);
  EXPECT_EQ(kernel.stats().page_faults, 1u);
}

TEST(Kernel, PolicySwitchTakesEffect) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  kernel.set_policy(std::make_unique<vm::FixedNodePlacement>(NodeId(3)));
  const auto home = kernel.resolve(ProcId(0), VPage(1), false);
  EXPECT_EQ(home.node, NodeId(3));
}

TEST(Kernel, MissesFeedHardwareCounters) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  touch(kernel, ProcId(1), VPage(0), 40);
  touch(kernel, ProcId(3), VPage(0), 7);
  const auto counts = kernel.read_counters(VPage(0));
  EXPECT_EQ(counts[1], 40u);
  EXPECT_EQ(counts[3], 7u);
  kernel.reset_counters(VPage(0));
  EXPECT_EQ(kernel.read_counters(VPage(0))[1], 0u);
}

TEST(Kernel, MigrationMovesPageAndResetsCounters) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  touch(kernel, ProcId(0), VPage(9), 100);
  const auto result = kernel.migrate_page(VPage(9), NodeId(2));
  EXPECT_TRUE(result.migrated);
  EXPECT_EQ(result.actual, NodeId(2));
  EXPECT_GT(result.cost, 0u);
  EXPECT_EQ(kernel.home_of(VPage(9)), NodeId(2));
  // Counters belong to the physical frame; the new frame starts clean.
  EXPECT_EQ(kernel.read_counters(VPage(9))[0], 0u);
  EXPECT_EQ(kernel.stats().migrations, 1u);
}

TEST(Kernel, MigrationToCurrentHomeIsANoOp) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  touch(kernel, ProcId(1), VPage(4));
  const auto result = kernel.migrate_page(VPage(4), NodeId(1));
  EXPECT_FALSE(result.migrated);
  EXPECT_EQ(result.cost, 0u);
}

TEST(Kernel, MigrationCostGrowsWithMappers) {
  // TLB coherence: every processor with a live mapping takes a
  // shootdown interrupt.
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  touch(kernel, ProcId(0), VPage(1));
  const Ns one_mapper = kernel.migration_cost_for(VPage(1));
  touch(kernel, ProcId(2), VPage(1));
  touch(kernel, ProcId(3), VPage(1));
  const Ns three_mappers = kernel.migration_cost_for(VPage(1));
  EXPECT_EQ(three_mappers - one_mapper,
            static_cast<Ns>(2 * config.tlb_shootdown_ns));
  // A migration resets the mappings (the shootdown happened).
  kernel.migrate_page(VPage(1), NodeId(3));
  EXPECT_LT(kernel.migration_cost_for(VPage(1)), one_mapper + 1);
}

TEST(Kernel, MigrationRedirectsWhenTargetFull) {
  auto config = small_config();
  config.frames_per_node = 2;
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  // Fill node 2 completely.
  kernel.set_policy(std::make_unique<vm::FixedNodePlacement>(NodeId(2)));
  touch(kernel, ProcId(0), VPage(100));
  touch(kernel, ProcId(0), VPage(101));
  // Migrate a node-0 page toward the full node 2: best effort lands on
  // node 3 (2's router partner).
  kernel.set_policy(std::make_unique<vm::FixedNodePlacement>(NodeId(0)));
  touch(kernel, ProcId(0), VPage(0));
  const auto result = kernel.migrate_page(VPage(0), NodeId(2));
  EXPECT_TRUE(result.migrated);
  EXPECT_NE(result.actual, NodeId(2));  // target was full
  EXPECT_NE(result.actual, NodeId(0));  // source is excluded
  EXPECT_EQ(kernel.stats().redirected_migrations, 1u);
}

TEST(Kernel, MigrationRejectedWhenOnlySourceHasSpace) {
  auto config = small_config();
  config.num_nodes = 2;
  config.frames_per_node = 2;
  const topo::FatHypercube topology(2);
  Kernel kernel(config, topology);
  // Fill node 1; node 0 has the page plus a free frame.
  kernel.set_policy(std::make_unique<vm::FixedNodePlacement>(NodeId(1)));
  touch(kernel, ProcId(0), VPage(10));
  touch(kernel, ProcId(0), VPage(11));
  kernel.set_policy(std::make_unique<vm::FixedNodePlacement>(NodeId(0)));
  touch(kernel, ProcId(0), VPage(0));
  const auto result = kernel.migrate_page(VPage(0), NodeId(1));
  EXPECT_FALSE(result.migrated);
  EXPECT_EQ(kernel.stats().rejected_migrations, 1u);
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(0));
}

// --- daemon ----------------------------------------------------------------

DaemonConfig fast_daemon() {
  DaemonConfig config;
  config.threshold = 10;
  config.window_ns = 1'000'000'000;  // effectively no aging
  config.page_cooloff_ns = 0;
  config.global_min_interval_ns = 0;
  config.max_migrations_per_page = 100;
  return config;
}

TEST(Daemon, FirstMissOpensWindowWithoutMigrating) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  kernel.set_daemon(std::make_unique<KernelMigrationDaemon>(fast_daemon()));
  touch(kernel, ProcId(1), VPage(0), 100, 0);
  EXPECT_EQ(kernel.daemon()->stats().window_resets, 1u);
  EXPECT_EQ(kernel.daemon()->stats().migrations, 0u);
}

TEST(Daemon, ThresholdCrossingTriggersMigration) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  kernel.set_daemon(std::make_unique<KernelMigrationDaemon>(fast_daemon()));
  // Page homes on node 0; its first touch opens the counting window
  // (and is erased by the reset), then proc 1 hammers.
  touch(kernel, ProcId(0), VPage(0), 1, 0);    // window opens (reset)
  touch(kernel, ProcId(1), VPage(0), 5, 10);   // count 5, below threshold
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(0));
  touch(kernel, ProcId(1), VPage(0), 6, 20);   // count 11 > 10: migrate
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(1));
  EXPECT_EQ(kernel.daemon()->stats().migrations, 1u);
  EXPECT_GE(kernel.daemon()->stats().interrupts, 1u);
}

TEST(Daemon, WindowExpiryResetsCounters) {
  // A page whose remote traffic is modest *per window* never trips the
  // threshold, however long it keeps coming: this is what makes the
  // kernel engine blind to cold misplaced pages (unlike UPMlib).
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  auto daemon_config = fast_daemon();
  daemon_config.window_ns = 100;
  Kernel kernel(config, topology);
  kernel.set_daemon(
      std::make_unique<KernelMigrationDaemon>(daemon_config));
  touch(kernel, ProcId(0), VPage(0), 1, 0);
  for (Ns t = 200; t < 20'000; t += 200) {
    // 8 remote lines per 200 ns, each arrival past the window: the
    // window resets every time and the count never accumulates.
    touch(kernel, ProcId(1), VPage(0), 8, t);
  }
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(0));
  EXPECT_EQ(kernel.daemon()->stats().migrations, 0u);
  EXPECT_GT(kernel.daemon()->stats().window_resets, 10u);
}

TEST(Daemon, LocalAccessesNeverTrigger) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  kernel.set_daemon(std::make_unique<KernelMigrationDaemon>(fast_daemon()));
  for (int i = 0; i < 50; ++i) {
    touch(kernel, ProcId(0), VPage(0), 100, static_cast<Ns>(i));
  }
  EXPECT_EQ(kernel.daemon()->stats().migrations, 0u);
}

TEST(Daemon, FreezeAfterMaxMigrations) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  auto daemon_config = fast_daemon();
  daemon_config.max_migrations_per_page = 1;
  Kernel kernel(config, topology);
  kernel.set_daemon(
      std::make_unique<KernelMigrationDaemon>(daemon_config));
  touch(kernel, ProcId(0), VPage(0), 1, 0);
  touch(kernel, ProcId(1), VPage(0), 5, 1);
  touch(kernel, ProcId(1), VPage(0), 20, 2);
  touch(kernel, ProcId(1), VPage(0), 20, 3);  // migrates, then frozen
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(1));
  // Now proc 2 hammers: the frozen page must stay put.
  for (int i = 0; i < 20; ++i) {
    touch(kernel, ProcId(2), VPage(0), 50, static_cast<Ns>(10 + i));
  }
  EXPECT_EQ(kernel.home_of(VPage(0)), NodeId(1));
  EXPECT_GT(kernel.daemon()->stats().suppressed_frozen, 0u);
}

TEST(Daemon, GlobalIntervalThrottles) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  auto daemon_config = fast_daemon();
  daemon_config.global_min_interval_ns = 1'000'000;
  Kernel kernel(config, topology);
  kernel.set_daemon(
      std::make_unique<KernelMigrationDaemon>(daemon_config));
  // Two pages both hammered remotely at nearly the same time: only the
  // first migration goes through.
  touch(kernel, ProcId(0), VPage(0), 1, 0);
  touch(kernel, ProcId(0), VPage(1), 1, 0);
  touch(kernel, ProcId(1), VPage(0), 5, 1);
  touch(kernel, ProcId(1), VPage(1), 5, 1);
  touch(kernel, ProcId(1), VPage(0), 20, 2);
  touch(kernel, ProcId(1), VPage(0), 20, 3);
  touch(kernel, ProcId(1), VPage(1), 20, 4);
  touch(kernel, ProcId(1), VPage(1), 20, 5);
  EXPECT_EQ(kernel.daemon()->stats().migrations, 1u);
  EXPECT_GT(kernel.daemon()->stats().suppressed_global, 0u);
}

// --- MMCI -------------------------------------------------------------------

TEST(Mmci, MldNamespace) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  MemoryControlInterface mmci(kernel);
  const auto mlds = mmci.create_mld_per_node();
  ASSERT_EQ(mlds.size(), 4u);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(mmci.mld_node(mlds[n]), NodeId(n));
  }
  EXPECT_THROW(mmci.mld_node(MldHandle(99)), ContractViolation);
}

TEST(Mmci, UserLevelMigrationRoundTrip) {
  const auto config = small_config();
  const topo::FatHypercube topology(4);
  Kernel kernel(config, topology);
  MemoryControlInterface mmci(kernel);
  const auto mlds = mmci.create_mld_per_node();

  touch(kernel, ProcId(0), VPage(3), 64);
  EXPECT_TRUE(mmci.is_mapped(VPage(3)));
  EXPECT_EQ(mmci.home_of(VPage(3)), NodeId(0));
  EXPECT_EQ(mmci.read_counters(VPage(3))[0], 64u);

  const auto outcome = mmci.migrate(VPage(3), mlds[2]);
  EXPECT_TRUE(outcome.migrated);
  EXPECT_EQ(outcome.actual, NodeId(2));
  EXPECT_GT(outcome.cost, 0u);
  EXPECT_EQ(mmci.home_of(VPage(3)), NodeId(2));

  mmci.reset_counters(VPage(3));
  EXPECT_EQ(mmci.read_counters(VPage(3))[0], 0u);
  EXPECT_EQ(mmci.node_of_proc(ProcId(3)), NodeId(3));
  EXPECT_EQ(mmci.num_nodes(), 4u);
}

}  // namespace
}  // namespace repro::os
