// OpenMP-runtime tests: loop schedules (coverage/disjointness
// properties), the fork/join runtime, region records and the Machine
// assembly.
#include <gtest/gtest.h>

#include <vector>

#include "repro/common/assert.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::omp {
namespace {

struct ScheduleCase {
  std::size_t threads;
  std::uint64_t n;
};

class SchedulePartition : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(SchedulePartition, StaticBlocksCoverDisjointly) {
  const auto [threads, n] = GetParam();
  std::vector<int> covered(n, 0);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const ChunkRange block = static_block(ThreadId(t), threads, n);
    EXPECT_LE(block.begin, block.end);
    for (std::uint64_t i = block.begin; i < block.end; ++i) {
      covered[i]++;
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(covered[i], 1) << "iteration " << i;
  }
}

TEST_P(SchedulePartition, StaticBlockSizesDifferByAtMostOne) {
  const auto [threads, n] = GetParam();
  std::uint64_t min_size = n + 1;
  std::uint64_t max_size = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto size = static_block(ThreadId(t), threads, n).size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST_P(SchedulePartition, OwnerOfInvertsStaticBlocks) {
  const auto [threads, n] = GetParam();
  const Schedule sched = Schedule::make_static();
  for (std::uint32_t t = 0; t < threads; ++t) {
    const ChunkRange block = static_block(ThreadId(t), threads, n);
    for (std::uint64_t i = block.begin; i < block.end; ++i) {
      EXPECT_EQ(sched.owner_of(i, threads, n), ThreadId(t));
    }
  }
}

TEST_P(SchedulePartition, ChunkedSchedulesCoverDisjointly) {
  const auto [threads, n] = GetParam();
  for (const std::uint64_t chunk : {1ull, 3ull, 16ull}) {
    const Schedule sched = Schedule::make_static_chunk(chunk);
    std::vector<int> covered(n, 0);
    for (std::uint32_t t = 0; t < threads; ++t) {
      for (const ChunkRange& c :
           sched.chunks_for(ThreadId(t), threads, n)) {
        EXPECT_LE(c.size(), chunk);
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          covered[i]++;
          EXPECT_EQ(sched.owner_of(i, threads, n), ThreadId(t));
        }
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(covered[i], 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulePartition,
    ::testing::Values(ScheduleCase{1, 10}, ScheduleCase{4, 64},
                      ScheduleCase{16, 128}, ScheduleCase{16, 100},
                      ScheduleCase{16, 7},  // fewer items than threads
                      ScheduleCase{3, 1}, ScheduleCase{5, 0}));

TEST(Schedule, EmptyIterationSpace) {
  const Schedule sched = Schedule::make_static();
  EXPECT_TRUE(sched.chunks_for(ThreadId(0), 4, 0).empty());
}

TEST(Schedule, DynamicIsRoundRobinChunks) {
  const Schedule sched = Schedule::make_dynamic(2);
  const auto chunks = sched.chunks_for(ThreadId(1), 2, 10);
  // Chunks 1 and 3 of five: [2,4) and [6,8).
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], (ChunkRange{2, 4}));
  EXPECT_EQ(chunks[1], (ChunkRange{6, 8}));
}

TEST(Schedule, RejectsZeroChunk) {
  EXPECT_THROW(Schedule::make_static_chunk(0), ContractViolation);
  EXPECT_THROW(Schedule::make_dynamic(0), ContractViolation);
}

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 128;
  return config;
}

TEST(Machine, CreateWiresEverything) {
  auto machine = Machine::create(small_config());
  EXPECT_EQ(machine->config().num_nodes, 4u);
  EXPECT_EQ(machine->runtime().num_threads(), 4u);
  EXPECT_EQ(machine->topology().num_nodes(), 4u);
  EXPECT_EQ(machine->address_space().total_pages(), 0u);
  // Placement selection is live: wc pins pages to node 0.
  machine->set_placement("wc");
  machine->memory().access(0, {ProcId(3), VPage(42), 1, false});
  EXPECT_EQ(machine->kernel().home_of(VPage(42)), NodeId(0));
}

TEST(Runtime, RunAdvancesClockAndRecords) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  sim::RegionBuilder region = rt.make_region();
  region.compute(ThreadId(0), 500);
  region.compute(ThreadId(1), 300);
  const auto result = rt.run("phase-a", std::move(region));
  EXPECT_EQ(result.duration(), 500u);
  EXPECT_EQ(rt.now(), 500u);
  ASSERT_EQ(rt.records().size(), 1u);
  EXPECT_EQ(rt.records()[0].name, "phase-a");
  EXPECT_EQ(rt.records()[0].duration(), 500u);
}

TEST(Runtime, SequentialAdvanceAndTotals) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  for (int i = 0; i < 3; ++i) {
    sim::RegionBuilder region = rt.make_region();
    region.compute(ThreadId(0), 100);
    rt.run("loop", std::move(region));
    rt.advance(50);  // sequential section between regions
  }
  EXPECT_EQ(rt.total_time("loop"), 300u);
  EXPECT_EQ(rt.now(), 450u);
  rt.clear_records();
  EXPECT_TRUE(rt.records().empty());
}

TEST(Runtime, ParallelForEmitsAssignedChunks) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  std::vector<std::uint64_t> items_seen(4, 0);
  rt.parallel_for("pf", 64, Schedule::make_static(),
                  [&](ThreadId t, ChunkRange chunk,
                      sim::RegionBuilder& region) {
                    items_seen[t.value()] += chunk.size();
                    region.compute(t, chunk.size() * 10);
                  });
  for (const auto n : items_seen) {
    EXPECT_EQ(n, 16u);
  }
  // Balanced static schedule: region duration equals one thread's work.
  EXPECT_EQ(rt.records().back().duration(), 160u);
  EXPECT_DOUBLE_EQ(rt.records().back().imbalance, 1.0);
}

TEST(Runtime, ParallelReduceChargesCombineTree) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  const auto result = rt.parallel_reduce(
      "dot", 16, Schedule::make_static(),
      [](ThreadId t, ChunkRange chunk, sim::RegionBuilder& region) {
        region.compute(t, chunk.size() * 10);
      });
  // 4 iterations of work per thread (40 ns) + 2 combine levels for a
  // 4-thread team (2 x 200 ns).
  EXPECT_EQ(result.end, 40u + 400u);
  EXPECT_EQ(rt.now(), 440u);
}

TEST(Runtime, SectionsAssignRoundRobin) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  std::vector<std::uint32_t> assigned;
  std::vector<Runtime::SectionBody> bodies;
  for (int s = 0; s < 6; ++s) {
    bodies.push_back([&assigned, s](ThreadId t, sim::RegionBuilder& region) {
      assigned.push_back(t.value());
      region.compute(t, static_cast<Ns>(100 * (s + 1)));
    });
  }
  const auto result = rt.sections("six-sections", bodies);
  // Six sections over four threads: 0,1,2,3,0,1.
  EXPECT_EQ(assigned, (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1}));
  // Thread 1 carries sections 2 and 6: 200 + 600 ns.
  EXPECT_EQ(result.thread_end[1] - result.start, 800u);
  EXPECT_EQ(result.duration(), 800u);  // the join waits for the slowest
}

TEST(Runtime, SectionsRejectEmptyList) {
  auto machine = Machine::create(small_config());
  EXPECT_THROW(machine->runtime().sections("none", {}), ContractViolation);
}

TEST(Runtime, RegionsRunAtIncreasingTimes) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  sim::RegionBuilder first = rt.make_region();
  first.compute(ThreadId(0), 100);
  rt.run("a", std::move(first));
  sim::RegionBuilder second = rt.make_region();
  second.compute(ThreadId(0), 100);
  const auto r = rt.run("b", std::move(second));
  EXPECT_EQ(r.start, 100u);
  EXPECT_EQ(r.end, 200u);
}

}  // namespace
}  // namespace repro::omp
