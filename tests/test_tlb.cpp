// TLB-model tests: refill charging, capacity behaviour and migration
// shootdown of live translations. The TLB is disabled by default (the
// calibrated latency ladder already includes translation); these tests
// enable it explicitly.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/omp/machine.hpp"

namespace repro::memsys {
namespace {

MachineConfig tlb_config(std::size_t entries) {
  MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 1024;
  config.tlb_entries = entries;
  config.tlb_refill_ns = 1000.0;
  return config;
}

TEST(Tlb, DisabledByDefault) {
  const MachineConfig config;
  EXPECT_EQ(config.tlb_entries, 0u);
  auto machine = omp::Machine::create(config);
  machine->memory().access(0, {ProcId(0), VPage(1), 1, false});
  EXPECT_EQ(machine->memory().total_stats().tlb_misses, 0u);
}

TEST(Tlb, RefillChargedOnFirstTouchOnly) {
  auto machine = omp::Machine::create(tlb_config(8));
  MemorySystem& memory = machine->memory();
  const auto first = memory.access(0, {ProcId(0), VPage(1), 1, false});
  const auto second = memory.access(0, {ProcId(0), VPage(1), 1, false});
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, 1u);
  // Both were the same kind of access except the TLB refill and the
  // cache state; the refill is 1000 ns.
  EXPECT_GT(first.elapsed, second.elapsed + 900);
}

TEST(Tlb, CapacityEvictionCausesRepeatMisses) {
  auto machine = omp::Machine::create(tlb_config(4));
  MemorySystem& memory = machine->memory();
  // Cycle through 5 pages twice: with 4 entries and LRU, every access
  // TLB-misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t p = 0; p < 5; ++p) {
      memory.access(0, {ProcId(0), VPage(p), 1, false});
    }
  }
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, 10u);
}

TEST(Tlb, WorkingSetWithinCapacityHitsAfterWarmup) {
  auto machine = omp::Machine::create(tlb_config(8));
  MemorySystem& memory = machine->memory();
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      memory.access(0, {ProcId(0), VPage(p), 1, false});
    }
  }
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, 8u);  // warmup only
}

TEST(Tlb, MigrationShootsDownLiveTranslations) {
  auto machine = omp::Machine::create(tlb_config(8));
  MemorySystem& memory = machine->memory();
  // Two processors map the page.
  memory.access(0, {ProcId(0), VPage(1), 1, false});
  memory.access(0, {ProcId(2), VPage(1), 1, false});
  EXPECT_EQ(memory.total_stats().tlb_misses, 2u);

  machine->kernel().migrate_page(VPage(1), NodeId(3));

  // Both must re-fault their translations after the shootdown.
  memory.access(0, {ProcId(0), VPage(1), 1, false});
  memory.access(0, {ProcId(2), VPage(1), 1, false});
  EXPECT_EQ(memory.total_stats().tlb_misses, 4u);
}

TEST(Tlb, ReplicaCollapseAlsoShootsDown) {
  auto machine = omp::Machine::create(tlb_config(8));
  MemorySystem& memory = machine->memory();
  memory.access(0, {ProcId(0), VPage(1), 1, false});
  ASSERT_TRUE(
      machine->kernel().replicate_page(VPage(1), NodeId(2)).replicated);
  memory.access(0, {ProcId(2), VPage(1), 1, false});
  const auto misses_before = memory.total_stats().tlb_misses;

  machine->kernel().collapse_replicas(VPage(1));
  memory.access(0, {ProcId(2), VPage(1), 1, false});
  EXPECT_EQ(memory.total_stats().tlb_misses, misses_before + 1);
}

TEST(Tlb, PerProcessorIsolation) {
  auto machine = omp::Machine::create(tlb_config(8));
  MemorySystem& memory = machine->memory();
  memory.access(0, {ProcId(0), VPage(1), 1, false});
  memory.access(0, {ProcId(1), VPage(1), 1, false});
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, 1u);
  EXPECT_EQ(memory.stats(ProcId(1)).tlb_misses, 1u);
}

}  // namespace
}  // namespace repro::memsys
