// Memory-system tests: latency ladder, page-grain cache, coherence
// directory, memory queues and the combined access engine.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/memsys/backend.hpp"
#include "repro/memsys/config.hpp"
#include "repro/memsys/directory.hpp"
#include "repro/memsys/latency.hpp"
#include "repro/memsys/mem_queue.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/memsys/page_cache.hpp"
#include "repro/topology/topology.hpp"

namespace repro::memsys {
namespace {

MachineConfig small_config() {
  MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 64;
  config.l2_size = 4 * config.page_size;  // 4-page caches
  return config;
}

/// Backend that homes page p on node (p % nodes) and counts misses.
class FixedBackend final : public MemoryBackend {
 public:
  explicit FixedBackend(std::size_t nodes) : nodes_(nodes) {}

  HomeInfo resolve(ProcId, VPage page, bool) override {
    return {NodeId(static_cast<std::uint32_t>(page.value() % nodes_)),
            FrameId(page.value())};
  }
  Ns on_miss(ProcId, VPage page, const HomeInfo&, std::uint32_t lines,
             Ns) override {
    miss_lines += lines;
    last_page = page;
    return penalty;
  }

  std::size_t nodes_;
  std::uint64_t miss_lines = 0;
  VPage last_page;
  Ns penalty = 0;
};

TEST(Config, DefaultsAreThePapersMachine) {
  const MachineConfig config;
  EXPECT_EQ(config.num_nodes, 16u);
  EXPECT_EQ(config.page_size, 16 * kKiB);
  EXPECT_EQ(config.lines_per_page(), 128u);
  EXPECT_EQ(config.cache_capacity_pages(), 256u);
  EXPECT_EQ(config.counter_max(), 2047u);  // 11-bit counters
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, ValidationCatchesNonsense) {
  MachineConfig config;
  config.num_nodes = 1;
  EXPECT_THROW(config.validate(), ContractViolation);
  config = MachineConfig{};
  config.page_size = 3000;  // not a power of two
  EXPECT_THROW(config.validate(), ContractViolation);
  config = MachineConfig{};
  config.mem_latency_ns = {100.0, 50.0};  // decreasing ladder
  EXPECT_THROW(config.validate(), ContractViolation);
  config = MachineConfig{};
  config.num_nodes = 128;  // > 64 procs: legal now (multi-word masks),
  EXPECT_NO_THROW(config.validate());
  EXPECT_TRUE(config.sparse_tables());  // and auto-selects sparse tables
  config.num_nodes = 131072;  // but the sanity ceiling still exists
  EXPECT_THROW(config.validate(), ContractViolation);
}

TEST(Latency, ReproducesTable1) {
  const MachineConfig config;
  const topo::FatHypercube topology(16);
  const LatencyModel model(config, topology);
  EXPECT_DOUBLE_EQ(model.latency_for_hops(0), 329.0);
  EXPECT_DOUBLE_EQ(model.latency_for_hops(1), 564.0);
  EXPECT_DOUBLE_EQ(model.latency_for_hops(2), 759.0);
  EXPECT_DOUBLE_EQ(model.latency_for_hops(3), 862.0);
  // Extrapolation beyond the measured ladder.
  EXPECT_DOUBLE_EQ(model.latency_for_hops(5), 862.0 + 2 * 150.0);
  // The paper's headline architectural ratio: between 2:1 and 3:1.
  EXPECT_GT(model.worst_remote_to_local_ratio(), 2.0);
  EXPECT_LT(model.worst_remote_to_local_ratio(), 3.0);
}

TEST(Latency, MemoryLatencyUsesHops) {
  const MachineConfig config;
  const topo::FatHypercube topology(16);
  const LatencyModel model(config, topology);
  EXPECT_DOUBLE_EQ(model.memory_latency(NodeId(0), NodeId(0)), 329.0);
  EXPECT_DOUBLE_EQ(model.memory_latency(NodeId(0), NodeId(1)), 564.0);
}

TEST(PageCache, HitAndMiss) {
  PageCache cache(2);
  EXPECT_FALSE(cache.touch(VPage(1)).hit);
  EXPECT_TRUE(cache.touch(VPage(1)).hit);
  EXPECT_TRUE(cache.contains(VPage(1)));
  EXPECT_FALSE(cache.contains(VPage(2)));
}

TEST(PageCache, LruEviction) {
  PageCache cache(2);
  cache.touch(VPage(1));
  cache.touch(VPage(2));
  cache.touch(VPage(1));  // 2 is now LRU
  EXPECT_EQ(cache.lru_page(), VPage(2));
  const auto r = cache.touch(VPage(3));
  EXPECT_FALSE(r.hit);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, VPage(2));
  EXPECT_TRUE(cache.contains(VPage(1)));
}

TEST(PageCache, InvalidateAndClear) {
  PageCache cache(4);
  cache.touch(VPage(1));
  EXPECT_TRUE(cache.invalidate(VPage(1)));
  EXPECT_FALSE(cache.invalidate(VPage(1)));
  cache.touch(VPage(2));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

class PageCacheSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageCacheSweep, CyclicSweepLargerThanCapacityAlwaysMisses) {
  // The workload models rely on this LRU property: a cyclic sweep over
  // capacity+1 pages misses on every access after warmup.
  const std::size_t capacity = GetParam();
  PageCache cache(capacity);
  const std::size_t footprint = capacity + 1;
  for (std::size_t i = 0; i < footprint; ++i) {
    cache.touch(VPage(i));
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < footprint; ++i) {
      EXPECT_FALSE(cache.touch(VPage(i)).hit);
    }
  }
}

TEST_P(PageCacheSweep, SweepWithinCapacityAlwaysHits) {
  const std::size_t capacity = GetParam();
  PageCache cache(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    cache.touch(VPage(i));
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    EXPECT_TRUE(cache.touch(VPage(i)).hit);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, PageCacheSweep,
                         ::testing::Values(1, 2, 16, 256));

TEST(Directory, WriteInvalidatesSharers) {
  Directory dir(4);
  dir.on_read(ProcId(0), VPage(9));
  dir.on_read(ProcId(1), VPage(9));
  const auto out = dir.on_write(ProcId(2), VPage(9));
  EXPECT_EQ(out.invalidate_mask, 0b011u);
  EXPECT_EQ(out.invalidations(), 2u);
  EXPECT_TRUE(dir.is_exclusive(ProcId(2), VPage(9)));
}

TEST(Directory, ReadDowngradesExclusive) {
  Directory dir(4);
  dir.on_write(ProcId(0), VPage(1));
  EXPECT_TRUE(dir.is_exclusive(ProcId(0), VPage(1)));
  dir.on_read(ProcId(1), VPage(1));
  EXPECT_FALSE(dir.is_exclusive(ProcId(0), VPage(1)));
  EXPECT_EQ(dir.sharers(VPage(1)), 0b011u);
}

TEST(Directory, SelfWriteDoesNotInvalidateSelf) {
  Directory dir(4);
  dir.on_read(ProcId(3), VPage(5));
  const auto out = dir.on_write(ProcId(3), VPage(5));
  EXPECT_EQ(out.invalidate_mask, 0u);
}

TEST(Directory, EvictRemovesSharerAndGarbageCollects) {
  Directory dir(4);
  dir.on_read(ProcId(0), VPage(2));
  dir.on_read(ProcId(1), VPage(2));
  EXPECT_EQ(dir.tracked_pages(), 1u);
  dir.on_evict(ProcId(0), VPage(2));
  EXPECT_EQ(dir.sharers(VPage(2)), 0b010u);
  dir.on_evict(ProcId(1), VPage(2));
  EXPECT_EQ(dir.tracked_pages(), 0u);
  // Evicting an untracked page is a no-op.
  EXPECT_NO_THROW(dir.on_evict(ProcId(1), VPage(2)));
}

TEST(MemQueue, NoWaitWhenIdle) {
  MemQueue queue(100.0);
  const auto s = queue.serve(1000, 10);
  EXPECT_EQ(s.wait, 0u);
  EXPECT_EQ(queue.busy_until(), 2000u);
  EXPECT_EQ(queue.lines_served(), 10u);
}

TEST(MemQueue, BackToBackArrivalsWait) {
  MemQueue queue(100.0);
  queue.serve(0, 10);  // busy until 1000
  const auto s = queue.serve(400, 10);
  EXPECT_EQ(s.wait, 600u);
  EXPECT_EQ(queue.busy_until(), 2000u);
  EXPECT_EQ(queue.total_wait(), 600u);
}

TEST(MemQueue, FractionalOccupancyAccumulates) {
  MemQueue queue(0.5);  // half a nanosecond per line
  queue.serve(0, 1);
  queue.serve(0, 1);
  // Two half-ns services must amount to one whole nanosecond.
  EXPECT_EQ(queue.busy_until(), 1u);
}

TEST(MemQueue, ResetClearsState) {
  MemQueue queue(100.0);
  queue.serve(0, 10);
  queue.reset();
  EXPECT_EQ(queue.busy_until(), 0u);
  EXPECT_EQ(queue.lines_served(), 0u);
}

TEST(MemorySystem, MissThenHitAccounting) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  const auto miss =
      memory.access(0, {ProcId(0), VPage(0), 8, false});
  EXPECT_EQ(miss.misses, 8u);
  EXPECT_FALSE(miss.remote);  // page 0 homes on node 0
  const auto hit = memory.access(miss.elapsed,
                                 {ProcId(0), VPage(0), 8, false});
  EXPECT_EQ(hit.misses, 0u);
  EXPECT_LT(hit.elapsed, miss.elapsed);
  EXPECT_EQ(memory.stats(ProcId(0)).hit_lines, 8u);
  EXPECT_EQ(memory.stats(ProcId(0)).local_miss_lines, 8u);
  EXPECT_EQ(backend.miss_lines, 8u);
}

TEST(MemorySystem, RemoteCostsMoreThanLocal) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  const auto local = memory.access(0, {ProcId(0), VPage(0), 16, false});
  const auto remote = memory.access(0, {ProcId(0), VPage(2), 16, false});
  EXPECT_TRUE(remote.remote);
  EXPECT_GT(remote.elapsed, local.elapsed);
  EXPECT_GT(memory.stats(ProcId(0)).remote_fraction(), 0.4);
}

TEST(MemorySystem, StreamHidesMostRemoteLatency) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  const auto blocking =
      memory.access(0, {ProcId(0), VPage(2), 64, false, false});
  memory.flush_all();
  const auto streamed =
      memory.access(0, {ProcId(0), VPage(2), 64, false, true});
  EXPECT_EQ(streamed.misses, 64u);
  EXPECT_LT(streamed.elapsed, blocking.elapsed);
  // But a remote stream is still slower than a local one.
  memory.flush_all();
  const auto local_stream =
      memory.access(0, {ProcId(0), VPage(0), 64, false, true});
  EXPECT_GT(streamed.elapsed, local_stream.elapsed);
}

TEST(MemorySystem, WriteSharingInvalidatesAndReMisses) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  memory.access(0, {ProcId(0), VPage(7), 4, false});
  memory.access(0, {ProcId(1), VPage(7), 4, false});
  // Proc 2 writes: both cached copies die; writers pay invalidations.
  const auto w = memory.access(0, {ProcId(2), VPage(7), 4, true});
  EXPECT_EQ(w.invalidations, 2u);
  // Proc 0 must miss again.
  const auto again = memory.access(0, {ProcId(0), VPage(7), 4, false});
  EXPECT_EQ(again.misses, 4u);
}

TEST(MemorySystem, BackendPenaltyIsCharged) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  const auto base = memory.access(0, {ProcId(0), VPage(0), 1, false});
  memory.flush_all();
  memory.reset_stats();  // also drains the memory-module queues
  backend.penalty = 1'000'000;
  const auto with_penalty =
      memory.access(0, {ProcId(0), VPage(0), 1, false});
  EXPECT_EQ(with_penalty.elapsed, base.elapsed + 1'000'000);
}

TEST(MemorySystem, QueueContentionSerializes) {
  // Many processors hammering one node must see growing waits; the
  // paper's worst-case placement effect.
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(1);  // everything homes on node 0
  MemorySystem memory(config, topology, backend);

  Ns total_wait = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    // All arrive at time 0 with big batches.
    const auto r = memory.access(
        0, {ProcId(p), VPage(100 + p), 128, false});
    total_wait += r.queue_wait;
  }
  EXPECT_GT(total_wait, 0u);
  EXPECT_EQ(memory.queue(NodeId(0)).lines_served(), 4u * 128u);
}

TEST(MemorySystem, FlushPageForcesColdMiss) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  memory.access(0, {ProcId(0), VPage(3), 4, false});
  memory.flush_page(VPage(3));
  const auto r = memory.access(0, {ProcId(0), VPage(3), 4, false});
  EXPECT_EQ(r.misses, 4u);
}

TEST(MemorySystem, RejectsOutOfRangeRequests) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);
  EXPECT_THROW(memory.access(0, {ProcId(99), VPage(0), 1, false}),
               ContractViolation);
  EXPECT_THROW(memory.access(0, {ProcId(0), VPage(0), 0, false}),
               ContractViolation);
  EXPECT_THROW(
      memory.access(0, {ProcId(0), VPage(0),
                        config.lines_per_page() + 1, false}),
      ContractViolation);
}

TEST(MemorySystem, FlushTlbsDropsTranslationsButKeepsCacheData) {
  MachineConfig config = small_config();
  config.tlb_entries = 8;
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  memory.access(0, {ProcId(0), VPage(0), 4, false});
  const std::uint64_t warm_tlb_misses = memory.stats(ProcId(0)).tlb_misses;
  EXPECT_EQ(warm_tlb_misses, 1u);

  // Warm re-access: no refill, no cache miss.
  const auto warm = memory.access(0, {ProcId(0), VPage(0), 4, false});
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, warm_tlb_misses);

  // flush_tlbs drops translations only: the next access pays a refill
  // but still hits in the (physical, untouched) cache.
  memory.flush_tlbs();
  const auto refilled = memory.access(0, {ProcId(0), VPage(0), 4, false});
  EXPECT_EQ(refilled.misses, 0u);
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, warm_tlb_misses + 1);
  EXPECT_GT(refilled.elapsed, warm.elapsed);
}

TEST(MemorySystem, FlushAllLeavesMachineFullyColdIncludingTlbs) {
  MachineConfig config = small_config();
  config.tlb_entries = 8;
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);

  memory.access(0, {ProcId(0), VPage(0), 4, false});
  memory.flush_all();
  // Both the cache line fill AND the TLB refill must be repaid.
  const auto cold = memory.access(0, {ProcId(0), VPage(0), 4, false});
  EXPECT_EQ(cold.misses, 4u);
  EXPECT_EQ(memory.stats(ProcId(0)).tlb_misses, 2u);
}

TEST(MemorySystem, TotalStatsAggregate) {
  const MachineConfig config = small_config();
  const topo::FatHypercube topology(4);
  FixedBackend backend(4);
  MemorySystem memory(config, topology, backend);
  memory.access(0, {ProcId(0), VPage(0), 4, false});
  memory.access(0, {ProcId(1), VPage(2), 4, false});
  const ProcStats total = memory.total_stats();
  EXPECT_EQ(total.miss_lines(), 8u);
  memory.reset_stats();
  EXPECT_EQ(memory.total_stats().miss_lines(), 0u);
}

}  // namespace
}  // namespace repro::memsys
