// Determinism tests for the compiled-program / batched-engine / parallel
// scheduler pipeline:
//  * the batched engine must execute the exact per-op schedule of a
//    naive one-op-at-a-time discrete-event loop (same clocks, same
//    memory-system statistics);
//  * a compiled RegionProgram reused across iterations must behave
//    identically to regenerating + recompiling the region each time;
//  * run_experiments with a parallel job count must produce results
//    byte-identical to the serial jobs=1 mode.
#include <gtest/gtest.h>

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/harness/json.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/omp/machine.hpp"
#include "repro/sim/engine.hpp"
#include "repro/sim/program.hpp"

namespace repro::harness {
namespace {

std::unique_ptr<omp::Machine> make_machine() {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("ft");
  return machine;
}

/// A region with cross-thread contention (many threads hitting the same
/// pages), private streaming writes and pure-compute gaps: every code
/// path whose order the batched engine must preserve.
sim::RegionBuilder contended_region(omp::Machine& machine,
                                    const vm::PageRange& shared,
                                    const vm::PageRange& priv) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lines = machine.config().lines_per_page();
  sim::RegionBuilder region = rt.make_region();
  for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
    region.compute(ThreadId(t), 40 + 13 * t);  // stagger the start
    for (std::uint64_t p = 0; p < shared.count; ++p) {
      region.access(ThreadId(t), shared.page(p), lines / 2,
                    /*write=*/(p + t) % 3 == 0, 50);
    }
    const std::uint64_t chunk = priv.count / rt.num_threads();
    for (std::uint64_t p = t * chunk; p < (t + 1) * chunk; ++p) {
      region.access(ThreadId(t), priv.page(p), lines, /*write=*/true,
                    lines * 10, /*stream=*/true);
    }
  }
  return region;
}

/// One-op-at-a-time reference engine: the discrete-event loop the
/// batched engine replaced, kept here as the semantics oracle.
std::vector<Ns> reference_run(memsys::MemorySystem& memory,
                              const std::vector<sim::ThreadProgram>& programs) {
  struct Pending {
    Ns clock;
    std::uint32_t thread;
    bool operator>(const Pending& o) const {
      return clock != o.clock ? clock > o.clock : thread > o.thread;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  std::vector<std::size_t> cursor(programs.size(), 0);
  std::vector<Ns> end(programs.size(), 0);
  for (std::uint32_t t = 0; t < programs.size(); ++t) {
    if (!programs[t].empty()) {
      queue.push({0, t});
    }
  }
  while (!queue.empty()) {
    const Pending cur = queue.top();
    queue.pop();
    const sim::Op& op = programs[cur.thread][cursor[cur.thread]++];
    Ns clock = cur.clock;
    if (op.kind == sim::Op::Kind::kAccess) {
      const auto r = memory.access(
          clock, {ProcId(cur.thread), op.page, op.lines, op.write, op.stream});
      clock += r.elapsed + op.compute;
    } else {
      clock += op.compute;
    }
    if (cursor[cur.thread] < programs[cur.thread].size()) {
      queue.push({clock, cur.thread});
    } else {
      end[cur.thread] = clock;
    }
  }
  return end;
}

void expect_same_stats(const memsys::ProcStats& a,
                       const memsys::ProcStats& b) {
  EXPECT_EQ(a.hit_lines, b.hit_lines);
  EXPECT_EQ(a.local_miss_lines, b.local_miss_lines);
  EXPECT_EQ(a.remote_miss_lines, b.remote_miss_lines);
  EXPECT_EQ(a.queue_wait, b.queue_wait);
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent);
}

TEST(BatchedEngine, MatchesPerOpReference) {
  auto batched = make_machine();
  auto reference = make_machine();

  const auto allocate = [](omp::Machine& m) {
    return std::pair{m.address_space().allocate("shared", 64 * kKiB),
                     m.address_space().allocate("priv", 2 * kMiB)};
  };
  const auto [shared_a, priv_a] = allocate(*batched);
  const auto [shared_b, priv_b] = allocate(*reference);

  sim::RegionBuilder region_a = contended_region(*batched, shared_a, priv_a);
  sim::RegionBuilder region_b =
      contended_region(*reference, shared_b, priv_b);
  const std::vector<sim::ThreadProgram> programs = std::move(region_b).take();

  sim::Engine engine(batched->memory());
  const sim::RegionResult result =
      engine.run(0, sim::RegionProgram::compile(std::move(region_a)));
  const std::vector<Ns> expected_end =
      reference_run(reference->memory(), programs);

  ASSERT_EQ(result.thread_end.size(), expected_end.size());
  for (std::size_t t = 0; t < expected_end.size(); ++t) {
    EXPECT_EQ(result.thread_end[t], expected_end[t]) << "thread " << t;
  }
  expect_same_stats(batched->memory().total_stats(),
                    reference->memory().total_stats());
}

TEST(RegionProgram, CompileRoundTripsOps) {
  sim::RegionBuilder region(3);
  region.access(ThreadId(0), VPage(7), 4, /*write=*/true, 100);
  region.compute(ThreadId(0), 55);
  region.access(ThreadId(2), VPage(9), 8, /*write=*/false, 0,
                /*stream=*/true);
  const std::vector<sim::ThreadProgram> programs =
      std::move(region).take();
  const sim::RegionProgram program(programs);

  EXPECT_EQ(program.num_threads(), 3u);
  EXPECT_EQ(program.size(), 3u);
  EXPECT_EQ(program.thread_end(0) - program.thread_begin(0), 2u);
  EXPECT_EQ(program.thread_end(1) - program.thread_begin(1), 0u);
  EXPECT_EQ(program.thread_end(2) - program.thread_begin(2), 1u);

  const std::uint32_t first = program.thread_begin(0);
  EXPECT_TRUE(program.is_access(first));
  EXPECT_TRUE(program.is_write(first));
  EXPECT_FALSE(program.is_stream(first));
  EXPECT_EQ(program.page(first), VPage(7));
  EXPECT_EQ(program.lines(first), 4u);
  EXPECT_EQ(program.compute(first), 100u);
  EXPECT_FALSE(program.is_access(first + 1));
  EXPECT_EQ(program.compute(first + 1), 55u);

  const std::uint32_t last = program.thread_begin(2);
  EXPECT_TRUE(program.is_stream(last));
  const sim::Op op = program.op(last);
  EXPECT_EQ(op.kind, sim::Op::Kind::kAccess);
  EXPECT_EQ(op.page, VPage(9));
  EXPECT_EQ(op.lines, 8u);
  EXPECT_FALSE(op.write);
  EXPECT_TRUE(op.stream);
}

TEST(RegionProgram, ReuseMatchesPerIterationRegeneration) {
  auto reused = make_machine();
  auto regenerated = make_machine();
  const auto allocate = [](omp::Machine& m) {
    return std::pair{m.address_space().allocate("shared", 64 * kKiB),
                     m.address_space().allocate("priv", 2 * kMiB)};
  };
  const auto [shared_a, priv_a] = allocate(*reused);
  const auto [shared_b, priv_b] = allocate(*regenerated);

  const sim::RegionProgram program = sim::RegionProgram::compile(
      contended_region(*reused, shared_a, priv_a));
  constexpr int kIterations = 4;
  for (int i = 0; i < kIterations; ++i) {
    reused->runtime().run("phase", program);
    regenerated->runtime().run(
        "phase", contended_region(*regenerated, shared_b, priv_b));
  }

  EXPECT_EQ(reused->runtime().now(), regenerated->runtime().now());
  expect_same_stats(reused->memory().total_stats(),
                    regenerated->memory().total_stats());
}

std::vector<RunConfig> small_matrix(std::uint64_t seed) {
  std::vector<RunConfig> configs;
  for (const std::string placement : {"ft", "rr", "rand", "wc"}) {
    RunConfig config;
    config.benchmark = "CG";
    config.placement = placement;
    config.iterations = 2;
    config.workload.size_scale = 0.25;
    config.seed = seed;
    configs.push_back(std::move(config));
  }
  return configs;
}

TEST(Scheduler, EffectiveJobsResolution) {
  EXPECT_EQ(effective_jobs(3), 3u);
  EXPECT_EQ(effective_jobs(1), 1u);
  {
    ScopedEnv jobs("REPRO_JOBS", "5");
    EXPECT_EQ(effective_jobs(0), 5u);
    EXPECT_EQ(effective_jobs(2), 2u);  // explicit request wins
  }
  EXPECT_GE(effective_jobs(0), 1u);
}

TEST(Scheduler, ParallelOutputByteIdenticalToSerial) {
  for (const std::uint64_t seed : {std::uint64_t{12345}, std::uint64_t{7}}) {
    const std::vector<RunConfig> configs = small_matrix(seed);
    const std::vector<RunResult> serial = run_experiments(configs, 1);
    const std::vector<RunResult> parallel = run_experiments(configs, 4);
    EXPECT_EQ(results_to_json(serial), results_to_json(parallel))
        << "seed " << seed;
  }
}

TEST(Scheduler, TraceDigestIdenticalAcrossJobsAndSeeds) {
  // The canonical trace is ordered by (simulated time, lane, seq), so
  // its digest must not depend on which host worker ran a cell -- for
  // any RNG seed, including ones that drive the "rand" placement.
  for (const std::uint64_t seed :
       {std::uint64_t{12345}, std::uint64_t{7}, std::uint64_t{999}}) {
    std::vector<RunConfig> configs = small_matrix(seed);
    for (RunConfig& config : configs) {
      config.trace = true;
    }
    const std::vector<RunResult> serial = run_experiments(configs, 1);
    const std::vector<RunResult> parallel = run_experiments(configs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].trace_digest.size(), 16u)
          << serial[i].label << " seed " << seed;
      EXPECT_EQ(serial[i].trace_digest, parallel[i].trace_digest)
          << serial[i].label << " seed " << seed;
    }
  }
}

TEST(Scheduler, ResultsComeBackInInputOrder) {
  const std::vector<RunConfig> configs = small_matrix(12345);
  const std::vector<RunResult> results = run_experiments(configs, 4);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(results[i].label, configs[i].label());
  }
}

TEST(Scheduler, AggregatesCellFailuresIntoSweepError) {
  std::vector<RunConfig> configs = small_matrix(12345);
  configs[1].kernel_migration = true;  // + upm below: invalid combination
  configs[1].upm_mode = nas::UpmMode::kDistribution;
  EXPECT_THROW(run_experiments(configs, 4), SweepError);
  try {
    (void)run_experiments(configs, 1);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].index, 1u);
    EXPECT_EQ(e.failures()[0].label, configs[1].label());
    EXPECT_FALSE(e.failures()[0].timeout);
    EXPECT_NE(std::string(e.what()).find(configs[1].label()),
              std::string::npos);
  }
}

TEST(Scheduler, SweepErrorListsEveryFailedCell) {
  std::vector<RunConfig> configs = small_matrix(12345);
  ASSERT_GE(configs.size(), 3u);
  for (const std::size_t bad : {std::size_t{0}, std::size_t{2}}) {
    configs[bad].kernel_migration = true;
    configs[bad].upm_mode = nas::UpmMode::kDistribution;
  }
  try {
    (void)run_experiments(configs, 4);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 0u);
    EXPECT_EQ(e.failures()[1].index, 2u);
  }
}

TEST(Scheduler, RunSweepDoesNotThrowAndRunsRemainingCells) {
  std::vector<RunConfig> configs = small_matrix(12345);
  configs[1].kernel_migration = true;
  configs[1].upm_mode = nas::UpmMode::kDistribution;
  SweepOptions options;
  options.jobs = 2;
  const SweepOutcome outcome = run_sweep(configs, options);
  EXPECT_FALSE(outcome.ok());
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.stats.cells_total, configs.size());
  EXPECT_EQ(outcome.stats.cells_failed, 1u);
  EXPECT_EQ(outcome.stats.cells_ok, configs.size() - 1);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (i == 1) {
      EXPECT_TRUE(outcome.results[i].label.empty());
    } else {
      EXPECT_EQ(outcome.results[i].label, configs[i].label());
    }
  }
}

}  // namespace
}  // namespace repro::harness
