// Workload-model tests: structure of the five NAS models, cold-start
// placement behaviour, the phase-change access patterns, and the
// factory.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/nas/adi.hpp"
#include "repro/nas/cg.hpp"
#include "repro/nas/ft.hpp"
#include "repro/nas/mg.hpp"
#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {
namespace {

memsys::MachineConfig test_machine() {
  memsys::MachineConfig config;  // full 16-node machine: the models
  return config;                 // assume 16 threads
}

WorkloadParams tiny() {
  WorkloadParams params;
  params.size_scale = 0.25;  // keep tests fast
  return params;
}

TEST(Factory, PaperBenchmarksInOrder) {
  EXPECT_EQ(workload_names(),
            (std::vector<std::string>{"BT", "SP", "CG", "MG", "FT"}));
  for (const auto& name : workload_names()) {
    EXPECT_EQ(make_workload(name, tiny())->name(), name);
  }
  EXPECT_THROW(make_workload("LU", tiny()), ContractViolation);
}

TEST(Factory, PaperIterationCounts) {
  EXPECT_EQ(make_workload("BT")->default_iterations(), 200u);
  EXPECT_EQ(make_workload("SP")->default_iterations(), 400u);
  EXPECT_EQ(make_workload("CG")->default_iterations(), 400u);
  EXPECT_EQ(make_workload("MG")->default_iterations(), 4u);
  EXPECT_EQ(make_workload("FT")->default_iterations(), 6u);
}

TEST(Factory, OnlyAdiSolversSupportRecordReplay) {
  EXPECT_TRUE(make_workload("BT")->supports_record_replay());
  EXPECT_TRUE(make_workload("SP")->supports_record_replay());
  EXPECT_FALSE(make_workload("CG")->supports_record_replay());
  EXPECT_FALSE(make_workload("MG")->supports_record_replay());
  EXPECT_FALSE(make_workload("FT")->supports_record_replay());
}

TEST(PlaneArray, PageIndexing) {
  vm::AddressSpace space(16 * kKiB);
  const PlaneArray a = alloc_plane_array(space, "grid", 4, 3);
  EXPECT_EQ(a.total_pages(), 12u);
  EXPECT_EQ(a.page_at(0, 0), a.range.first);
  EXPECT_EQ(a.page_at(1, 0).value(), a.range.first.value() + 3);
  EXPECT_EQ(a.page_at(3, 2).value(), a.range.first.value() + 11);
  EXPECT_THROW(a.page_at(4, 0), ContractViolation);
  EXPECT_THROW(a.page_at(0, 3), ContractViolation);
  EXPECT_EQ(a.lines_per_plane(128), 384u);
}

TEST(Emit, SweepColumnsSplitsPartialPages) {
  vm::AddressSpace space(16 * kKiB);
  const PlaneArray a = alloc_plane_array(space, "grid", 2, 4);
  sim::RegionBuilder region(1);
  const Emit e{region, ThreadId(0), 128};
  // Lines [64, 320): half of page 0, all of page 1, half of page 2.
  e.sweep_columns(a, 64, 320, /*write=*/true, 0.0);
  const auto& prog = region.program(ThreadId(0));
  ASSERT_EQ(prog.size(), 6u);  // three pages per plane, two planes
  EXPECT_EQ(prog[0].lines, 64u);
  EXPECT_EQ(prog[1].lines, 128u);
  EXPECT_EQ(prog[2].lines, 64u);
  EXPECT_EQ(prog[0].page, a.page_at(0, 0));
  EXPECT_EQ(prog[3].page, a.page_at(1, 0));
}

TEST(Emit, SweepPlanesWithLineOverride) {
  vm::AddressSpace space(16 * kKiB);
  const PlaneArray a = alloc_plane_array(space, "grid", 2, 2);
  sim::RegionBuilder region(1);
  const Emit e{region, ThreadId(0), 128};
  e.sweep_planes(a, 0, 2, false, 0.0, false, /*lines=*/48);
  for (const auto& op : region.program(ThreadId(0))) {
    EXPECT_EQ(op.lines, 48u);
  }
}

TEST(Emit, FaultPagesTouchesOneWriteLineEach) {
  vm::AddressSpace space(16 * kKiB);
  const auto range = space.allocate_pages("init", 6);
  sim::RegionBuilder region(1);
  const Emit e{region, ThreadId(0), 128};
  e.fault_pages(range, 1, 4);
  const auto& prog = region.program(ThreadId(0));
  ASSERT_EQ(prog.size(), 3u);
  for (const auto& op : prog) {
    EXPECT_EQ(op.lines, 1u);
    EXPECT_TRUE(op.write);
  }
  EXPECT_EQ(prog[0].page, range.page(1));
  EXPECT_THROW(e.fault_pages(range, 4, 7), ContractViolation);
}

TEST(Emit, GatherTouchesEveryPage) {
  vm::AddressSpace space(16 * kKiB);
  const auto range = space.allocate_pages("vec", 5);
  sim::RegionBuilder region(1);
  const Emit e{region, ThreadId(0), 128};
  e.gather(range, 32, false, 0.0);
  EXPECT_EQ(region.program(ThreadId(0)).size(), 5u);
}

struct WorkloadFixture {
  std::unique_ptr<omp::Machine> machine =
      omp::Machine::create(test_machine());
  std::unique_ptr<Workload> workload;

  explicit WorkloadFixture(const std::string& name,
                           WorkloadParams params = tiny()) {
    workload = make_workload(name, params);
    workload->setup(*machine);
  }
};

TEST(ColdStart, EstablishesOwnerLocalPlacementForAdi) {
  WorkloadFixture f("BT");
  auto* adi = dynamic_cast<AdiSolverWorkload*>(f.workload.get());
  ASSERT_NE(adi, nullptr);
  f.workload->cold_start(*f.machine);

  // rhs has no serial init: after cold start every rhs page must live
  // on its plane owner's node (first touch in compute_rhs).
  const PlaneArray& rhs = adi->rhs();
  const std::size_t threads = f.machine->runtime().num_threads();
  for (std::uint64_t plane = 0; plane < rhs.planes; ++plane) {
    const auto owner =
        omp::static_block(ThreadId(0), threads, rhs.planes);
    (void)owner;
    for (std::uint64_t i = 0; i < rhs.pages_per_plane; ++i) {
      const NodeId home = f.machine->kernel().home_of(rhs.page_at(plane, i));
      // Find the plane's owner thread.
      std::uint32_t owner_thread = 0;
      for (std::uint32_t t = 0; t < threads; ++t) {
        const auto block = omp::static_block(ThreadId(t), threads,
                                             rhs.planes);
        if (plane >= block.begin && plane < block.end) {
          owner_thread = t;
          break;
        }
      }
      EXPECT_EQ(home.value(), owner_thread)
          << "plane " << plane << " page " << i;
    }
  }
}

TEST(ColdStart, SerialInitMisplacesForcingPagesOnMaster) {
  WorkloadFixture f("BT");
  auto* adi = dynamic_cast<AdiSolverWorkload*>(f.workload.get());
  f.workload->cold_start(*f.machine);
  // A sizeable fraction of forcing lives on node 0 although its plane
  // owners are elsewhere: the serial-init misplacement UPMlib fixes.
  const PlaneArray& forcing = adi->forcing();
  std::uint64_t on_master = 0;
  for (std::uint64_t p = 0; p < forcing.range.count; ++p) {
    if (f.machine->kernel().home_of(forcing.range.page(p)) == NodeId(0)) {
      ++on_master;
    }
  }
  EXPECT_GT(on_master, forcing.range.count / 3);
}

TEST(Adi, ZSolvePhaseFlipsDominantAccessor) {
  // Run one iteration, reset counters, run another: for a plane in the
  // middle of the grid, the per-iteration counters must show both the
  // k-owner (x/y phases) and the j-owner (z phase) as accessors.
  WorkloadFixture f("BT");
  auto* adi = dynamic_cast<AdiSolverWorkload*>(f.workload.get());
  f.workload->cold_start(*f.machine);

  // Reset counters on a middle rhs page, then run one iteration.
  const PlaneArray& rhs = adi->rhs();
  const std::uint64_t plane = rhs.planes / 2;
  for (std::uint64_t i = 0; i < rhs.pages_per_plane; ++i) {
    f.machine->kernel().reset_counters(rhs.page_at(plane, i));
  }
  f.workload->iteration(*f.machine, IterationContext{}, 1);

  // Page (plane, 0) is in the first j-slice: thread 0 accesses it in
  // z_solve, the plane owner in the other phases.
  const auto counts =
      f.machine->kernel().read_counters(rhs.page_at(plane, 0));
  const std::size_t threads = f.machine->runtime().num_threads();
  std::uint32_t k_owner = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto block = omp::static_block(ThreadId(t), threads, rhs.planes);
    if (plane >= block.begin && plane < block.end) {
      k_owner = t;
    }
  }
  ASSERT_NE(k_owner, 0u) << "test requires a middle plane";
  EXPECT_GT(counts[k_owner], 0u);  // x/y/add accesses
  EXPECT_GT(counts[0], 0u);        // z accesses from the j-slice owner
  // The k-owner dominates the whole-iteration trace (why the
  // distribution pass keeps the page put and record-replay is needed).
  EXPECT_GT(counts[k_owner], counts[0]);
}

TEST(Cg, ColdStartIsFirstTouchOptimal) {
  // The paper: CG gains nothing from UPMlib under first touch. After
  // cold start, running an iteration must produce counters whose
  // dominant node is already the home for every A page.
  WorkloadFixture f("CG");
  auto* cg = dynamic_cast<CgWorkload*>(f.workload.get());
  f.workload->cold_start(*f.machine);
  f.workload->iteration(*f.machine, IterationContext{}, 1);
  const auto& a = cg->a();
  for (std::uint64_t p = 0; p < a.count; p += 97) {
    const auto counts = f.machine->kernel().read_counters(a.page(p));
    const NodeId home = f.machine->kernel().home_of(a.page(p));
    std::uint32_t best = 0;
    for (std::uint32_t n = 1; n < counts.size(); ++n) {
      if (counts[n] > counts[best]) {
        best = n;
      }
    }
    EXPECT_EQ(NodeId(best), home) << "A page " << p;
  }
}

TEST(Mg, LevelsShrinkGeometrically) {
  WorkloadFixture f("MG", WorkloadParams{});
  auto* mg = dynamic_cast<MgWorkload*>(f.workload.get());
  ASSERT_EQ(mg->levels(), 5u);
  for (std::size_t l = 1; l < mg->levels(); ++l) {
    EXPECT_LT(mg->u_level(l).total_pages(),
              mg->u_level(l - 1).total_pages());
    EXPECT_EQ(mg->u_level(l).planes, mg->u_level(l - 1).planes / 2);
  }
}

TEST(Mg, IterationTouchesEveryLevel) {
  WorkloadFixture f("MG", WorkloadParams{});
  auto* mg = dynamic_cast<MgWorkload*>(f.workload.get());
  f.workload->cold_start(*f.machine);
  for (std::size_t l = 0; l < mg->levels(); ++l) {
    EXPECT_TRUE(
        f.machine->kernel().is_mapped(mg->u_level(l).range.first));
    EXPECT_TRUE(
        f.machine->kernel().is_mapped(mg->r_level(l).range.first));
  }
}

TEST(Ft, ColumnSlicesAreNotPageAligned) {
  WorkloadFixture f("FT", WorkloadParams{});
  auto* ft = dynamic_cast<FtWorkload*>(f.workload.get());
  // pages_per_plane not divisible by 16 threads: the false-sharing
  // geometry the paper blames for the kernel engine's FT harm.
  EXPECT_NE(ft->u1().pages_per_plane % 16, 0u);
}

TEST(Ft, TransposeSharesBoundaryPagesBetweenThreads) {
  WorkloadFixture f("FT", WorkloadParams{});
  auto* ft = dynamic_cast<FtWorkload*>(f.workload.get());
  f.workload->cold_start(*f.machine);
  // Reset one plane's u1 counters, run an iteration, and verify some
  // page is written by two different nodes (page-level false sharing).
  const PlaneArray& u1 = ft->u1();
  for (std::uint64_t i = 0; i < u1.pages_per_plane; ++i) {
    f.machine->kernel().reset_counters(u1.page_at(0, i));
  }
  f.workload->iteration(*f.machine, IterationContext{}, 1);
  bool found_shared = false;
  for (std::uint64_t i = 0; i < u1.pages_per_plane && !found_shared; ++i) {
    const auto counts = f.machine->kernel().read_counters(u1.page_at(0, i));
    int nodes_with_traffic = 0;
    for (const auto c : counts) {
      nodes_with_traffic += c > 0 ? 1 : 0;
    }
    found_shared = nodes_with_traffic >= 2;
  }
  EXPECT_TRUE(found_shared);
}

TEST(Workloads, HotPageCountsAreSubstantial) {
  // The paper notes resident sets of "a few thousand pages"; at full
  // scale every model must be in that regime.
  for (const auto& name : workload_names()) {
    WorkloadFixture f(name, WorkloadParams{});
    EXPECT_GT(f.workload->hot_page_count(), 2000u) << name;
    EXPECT_LT(f.workload->hot_page_count(), 40000u) << name;
  }
}

TEST(Factory, ProblemClassPresets) {
  EXPECT_DOUBLE_EQ(params_for_class('W').size_scale, 0.5);
  EXPECT_DOUBLE_EQ(params_for_class('A').size_scale, 1.0);
  EXPECT_DOUBLE_EQ(params_for_class('b').size_scale, 2.0);
  EXPECT_THROW(params_for_class('C'), ContractViolation);
  // Classes scale footprints.
  WorkloadFixture small("BT", params_for_class('W'));
  WorkloadFixture large("BT", params_for_class('A'));
  EXPECT_LT(small.workload->hot_page_count(),
            large.workload->hot_page_count());
}

TEST(Workloads, ComputeScaleMultipliesRegions) {
  WorkloadParams params = tiny();
  WorkloadFixture base("BT", params);
  base.workload->cold_start(*base.machine);
  base.machine->runtime().clear_records();
  base.workload->iteration(*base.machine, IterationContext{}, 1);
  const std::size_t base_regions = base.machine->runtime().records().size();

  params.compute_scale = 4;
  WorkloadFixture scaled("BT", params);
  scaled.workload->cold_start(*scaled.machine);
  scaled.machine->runtime().clear_records();
  scaled.workload->iteration(*scaled.machine, IterationContext{}, 1);
  EXPECT_EQ(scaled.machine->runtime().records().size(), 4 * base_regions);
}

}  // namespace
}  // namespace repro::nas
