// Static placement advisor: unit tests for the dataflow building
// blocks (access matrices, the abstract migrate_memory interpreter,
// the phase capture) plus end-to-end checks that the advisor's
// predictions agree with the simulator on a real cell, that its output
// is byte-deterministic, and that the SARIF/ground-truth plumbing
// round-trips.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "repro/analysis/advisor.hpp"
#include "repro/analysis/capture.hpp"
#include "repro/analysis/diagnostic.hpp"
#include "repro/analysis/sarif.hpp"
#include "repro/harness/advise.hpp"
#include "repro/harness/run.hpp"
#include "repro/omp/machine.hpp"
#include "repro/trace/ground_truth.hpp"

namespace repro::analysis {
namespace {

// ---- AccessMatrix ---------------------------------------------------------

TEST(AccessMatrix, AccumulatesAndSums) {
  AccessMatrix m(4, 3);
  m.add(0, 1, 10);
  m.add(0, 1, 5);
  m.add(0, 2, 7);
  EXPECT_EQ(m.at(0, 1), 15u);
  EXPECT_EQ(m.at(0, 0), 0u);
  EXPECT_EQ(m.page_total(0), 22u);
  EXPECT_EQ(m.page_total(3), 0u);
}

TEST(AccessMatrix, DominantNodeLowestWinsTies) {
  AccessMatrix m(2, 4);
  m.add(0, 3, 9);
  m.add(0, 1, 9);
  ASSERT_TRUE(m.dominant_node(0).has_value());
  EXPECT_EQ(*m.dominant_node(0), 1u);
  EXPECT_FALSE(m.dominant_node(1).has_value());
}

TEST(AccessMatrix, PlusEqualsAddsCellwise) {
  AccessMatrix a(2, 2);
  AccessMatrix b(2, 2);
  a.add(1, 0, 3);
  b.add(1, 0, 4);
  b.add(0, 1, 2);
  a += b;
  EXPECT_EQ(a.at(1, 0), 7u);
  EXPECT_EQ(a.at(0, 1), 2u);
}

// ---- predict_migrations ---------------------------------------------------

AdvisorConfig tiny_config() {
  AdvisorConfig config;
  config.iterations = 4;
  config.max_passes = 4;
  return config;
}

TEST(PredictMigrations, RatioMustExceedThreshold) {
  // lacc 10 / racc 20: exactly 2.0 -- the engine requires strictly
  // greater, so the page stays. 21 remote lines tips it over.
  AccessMatrix at_threshold(1, 2);
  at_threshold.add(0, 0, 10);
  at_threshold.add(0, 1, 20);
  const std::vector<std::uint64_t> pages = {0};
  const std::vector<std::int32_t> home = {0};
  auto stay = predict_migrations(
      tiny_config(), pages, home,
      [&](std::uint32_t) -> const AccessMatrix& { return at_threshold; });
  EXPECT_TRUE(stay.migrated_pages.empty());
  EXPECT_EQ(stay.final_home[0], 0);

  AccessMatrix over(1, 2);
  over.add(0, 0, 10);
  over.add(0, 1, 21);
  auto move = predict_migrations(
      tiny_config(), pages, home,
      [&](std::uint32_t) -> const AccessMatrix& { return over; });
  ASSERT_EQ(move.migrated_pages.size(), 1u);
  EXPECT_EQ(move.migrated_targets[0], 1);
  EXPECT_EQ(move.final_home[0], 1);
}

TEST(PredictMigrations, ZeroLocalCountsAsOne) {
  // lacc 0, racc 3: ratio 3/1 > 2 migrates even though the naive
  // division would be undefined.
  AccessMatrix counts(1, 2);
  counts.add(0, 1, 3);
  const std::vector<std::uint64_t> pages = {0};
  const std::vector<std::int32_t> home = {0};
  auto out = predict_migrations(
      tiny_config(), pages, home,
      [&](std::uint32_t) -> const AccessMatrix& { return counts; });
  ASSERT_EQ(out.migrated_pages.size(), 1u);
  EXPECT_EQ(out.final_home[0], 1);
}

TEST(PredictMigrations, TiedRemoteNodesKeepTheLowest) {
  AccessMatrix counts(1, 4);
  counts.add(0, 3, 9);
  counts.add(0, 2, 9);
  const std::vector<std::uint64_t> pages = {0};
  const std::vector<std::int32_t> home = {0};
  auto out = predict_migrations(
      tiny_config(), pages, home,
      [&](std::uint32_t) -> const AccessMatrix& { return counts; });
  ASSERT_EQ(out.migrated_pages.size(), 1u);
  EXPECT_EQ(out.migrated_targets[0], 2);
}

TEST(PredictMigrations, SteadyMatrixConvergesInOnePass) {
  // A constant counter image can only trigger each page once: after the
  // move the former remote node is local, the ratio inverts, and the
  // next pass migrates nothing -- the engine deactivates.
  AccessMatrix counts(3, 2);
  for (std::uint64_t page = 0; page < 3; ++page) {
    counts.add(page, 0, 1);
    counts.add(page, 1, 100);
  }
  const std::vector<std::uint64_t> pages = {0, 1, 2};
  const std::vector<std::int32_t> home = {0, 0, 0};
  auto out = predict_migrations(
      tiny_config(), pages, home,
      [&](std::uint32_t) -> const AccessMatrix& { return counts; });
  EXPECT_EQ(out.migrated_pages.size(), 3u);
  ASSERT_EQ(out.migrations_per_pass.size(), 2u);
  EXPECT_EQ(out.migrations_per_pass[0], 3u);
  EXPECT_EQ(out.migrations_per_pass[1], 0u);
  EXPECT_TRUE(out.frozen_pages.empty());
}

TEST(PredictMigrations, BouncingPageIsFrozen) {
  // Alternating counter images: node 1 dominates on odd passes, node 0
  // on even ones. The second migration would return the page to its
  // prior home one invocation later -- the bounce criterion freezes it.
  AccessMatrix odd(1, 2);
  odd.add(0, 1, 100);
  odd.add(0, 0, 1);
  AccessMatrix even(1, 2);
  even.add(0, 0, 100);
  even.add(0, 1, 1);
  const std::vector<std::uint64_t> pages = {0};
  const std::vector<std::int32_t> home = {0};
  auto config = tiny_config();
  auto out = predict_migrations(
      config, pages, home,
      [&](std::uint32_t pass) -> const AccessMatrix& {
        return pass % 2 == 1 ? odd : even;
      });
  ASSERT_EQ(out.frozen_pages.size(), 1u);
  EXPECT_EQ(out.frozen_pages[0], 0u);
  // Frozen after the first move: the page stays on node 1.
  EXPECT_EQ(out.final_home[0], 1);

  config.freeze_bouncing_pages = false;
  auto bounce = predict_migrations(
      config, pages, home,
      [&](std::uint32_t pass) -> const AccessMatrix& {
        return pass % 2 == 1 ? odd : even;
      });
  EXPECT_TRUE(bounce.frozen_pages.empty());
  // Without the freeze it ping-pongs every pass up to max_passes.
  EXPECT_EQ(bounce.migrations_per_pass.size(), config.max_passes);
}

// ---- PhaseRecorder / dry-run capture --------------------------------------

TEST(PhaseCapture, DryRunCapturesTemporariesWithoutSimulating) {
  auto machine = omp::Machine::create({});
  machine->set_placement("ft", 1);
  omp::Runtime& rt = machine->runtime();
  const Ns before = rt.now();

  CapturedProgram captured;
  {
    PhaseRecorder recorder(rt);
    // A temporary region, master-only: dies at the end of run(); the
    // capture must have copied it.
    sim::RegionBuilder init = rt.make_region();
    init.access(ThreadId(0), VPage(7), 4, /*write=*/true);
    rt.run("init", std::move(init));

    recorder.begin_timed();
    sim::RegionBuilder sweep = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      sweep.access(ThreadId(t), VPage(100 + t), 8, /*write=*/false);
    }
    rt.run("sweep", std::move(sweep));
    captured = recorder.take();
  }
  finalize_page_bound(captured);

  // Dry run: no simulated time elapsed, and the runtime is restored.
  EXPECT_EQ(rt.now(), before);
  EXPECT_FALSE(rt.dry_run());

  ASSERT_EQ(captured.phases.size(), 2u);
  EXPECT_EQ(captured.phases[0].name, "init");
  EXPECT_FALSE(captured.phases[0].timed);
  EXPECT_EQ(captured.phases[0].pages.at(0), 7u);
  EXPECT_NE(captured.phases[0].is_write.at(0), 0);
  EXPECT_EQ(captured.phases[1].name, "sweep");
  EXPECT_TRUE(captured.phases[1].timed);
  EXPECT_EQ(captured.phases[1].num_threads(), rt.num_threads());
  EXPECT_EQ(captured.page_bound, 100u + rt.num_threads());
}

// ---- End-to-end: advisor vs simulator -------------------------------------

harness::RunConfig golden_cell(const std::string& benchmark) {
  harness::RunConfig config;
  config.benchmark = benchmark;
  config.placement = "ft";
  config.upm_mode = nas::UpmMode::kDistribution;
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  config.trace = true;
  return config;
}

TEST(AdvisorEndToEnd, PredictsTheFtUpmlibCellOfBT) {
  const harness::RunConfig config = golden_cell("BT");
  const AdvisorReport report = harness::advise_benchmark(config);
  const harness::RunResult actual = harness::run_benchmark(config);
  const trace::PlacementGroundTruth truth =
      trace::extract_ground_truth(*actual.trace);

  const PlacementPrediction* cell = nullptr;
  for (const PlacementPrediction& c : report.cells) {
    if (c.label == "ft-upmlib") {
      cell = &c;
    }
  }
  ASSERT_NE(cell, nullptr);

  // Acceptance bar: migration precision and recall at least 0.8. The
  // abstract interpreter actually reproduces the engine's decision
  // exactly on this cell, so assert the sharper property and keep the
  // 0.8 bound as the documented floor.
  EXPECT_EQ(cell->migrated_pages, truth.migrated_pages);
  ASSERT_GE(truth.migrated_pages.size(), 1u);
  for (std::size_t i = 0; i < truth.migrated_pages.size(); ++i) {
    EXPECT_EQ(cell->migrated_targets[i], truth.post_migration_home[i])
        << "page " << truth.migrated_pages[i];
    EXPECT_EQ(cell->initial_home[truth.migrated_pages[i]],
              truth.pre_migration_home[i])
        << "page " << truth.migrated_pages[i];
  }
  EXPECT_TRUE(cell->frozen_pages.empty());
  EXPECT_TRUE(truth.frozen_pages.empty());

  // All predicted migrations land in iteration 1, like the trace.
  std::vector<std::uint64_t> predicted_vec = cell->migrations_per_iteration;
  std::vector<std::uint64_t> actual_vec = truth.migrations_per_iteration;
  predicted_vec.resize(3, 0);
  actual_vec.resize(3, 0);
  EXPECT_EQ(predicted_vec, actual_vec);

  // The verdict diagnostics carry the rule family.
  bool saw_cold_home = false;
  bool saw_needs_migration = false;
  for (const Diagnostic& diag : report.diagnostics) {
    saw_cold_home = saw_cold_home || diag.rule == "advisor.cold-home";
    saw_needs_migration =
        saw_needs_migration || diag.rule == "advisor.needs-migration";
  }
  EXPECT_TRUE(saw_cold_home);
  EXPECT_TRUE(saw_needs_migration);
}

TEST(AdvisorEndToEnd, ReportIsByteDeterministic) {
  harness::RunConfig config;
  config.benchmark = "CG";
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  const AdvisorReport first = harness::advise_benchmark(config);
  const AdvisorReport second = harness::advise_benchmark(config);
  EXPECT_EQ(harness::advisor_report_to_json(first),
            harness::advisor_report_to_json(second));
  EXPECT_EQ(diagnostics_to_sarif("advisor", "1.0", first.diagnostics),
            diagnostics_to_sarif("advisor", "1.0", second.diagnostics));
}

TEST(AdvisorEndToEnd, RandomPlacementIsRejected) {
  harness::RunConfig config;
  config.benchmark = "CG";
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  const CapturedProgram captured = harness::capture_benchmark(config);
  AdvisorConfig acfg;
  Advisor advisor(acfg, AdvisorView::from_config(config.machine));
  const LocalityDataflow flow = advisor.analyze(captured);
  EXPECT_THROW(advisor.predict(flow, captured.hot_ranges, "rand", false),
               std::exception);
}

// ---- Ground-truth extraction ----------------------------------------------

TEST(GroundTruth, ExtractsMigrationsFreezesAndIterations) {
  trace::TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  // emit() stamps iteration from the sink's context, not the event.
  sink.set_iteration(1);

  trace::TraceEvent begin;
  begin.kind = trace::EventKind::kIterationBegin;
  begin.iteration = 1;
  begin.time = 100;
  sink.emit(lane, begin);

  trace::TraceEvent mig;
  mig.kind = trace::EventKind::kPageMigration;
  mig.page = 42;
  mig.src = 0;
  mig.dst = 3;
  mig.iteration = 1;
  mig.time = 150;
  sink.emit(lane, mig);
  // The same page moves again later: post_migration_home tracks the
  // final destination, pre_migration_home the original source.
  mig.src = 3;
  mig.dst = 5;
  mig.time = 160;
  sink.emit(lane, mig);

  trace::TraceEvent freeze;
  freeze.kind = trace::EventKind::kPageFreeze;
  freeze.page = 7;
  freeze.node = 2;
  freeze.a = 0;  // bounce freeze, not give-up
  freeze.iteration = 1;
  freeze.time = 170;
  sink.emit(lane, freeze);

  trace::TraceEvent end;
  end.kind = trace::EventKind::kIterationEnd;
  end.iteration = 1;
  end.time = 300;
  end.a = 25;  // remote miss lines
  end.b = 75;  // local miss lines
  sink.emit(lane, end);

  const trace::PlacementGroundTruth truth =
      trace::extract_ground_truth(sink);
  ASSERT_EQ(truth.migrations.size(), 2u);
  ASSERT_EQ(truth.migrated_pages.size(), 1u);
  EXPECT_EQ(truth.migrated_pages[0], 42u);
  EXPECT_EQ(truth.pre_migration_home[0], 0);
  EXPECT_EQ(truth.post_migration_home[0], 5);
  ASSERT_EQ(truth.frozen_pages.size(), 1u);
  EXPECT_EQ(truth.frozen_pages[0], 7u);
  EXPECT_FALSE(truth.freezes[0].give_up);
  ASSERT_EQ(truth.migrations_per_iteration.size(), 1u);
  EXPECT_EQ(truth.migrations_per_iteration[0], 2u);
  ASSERT_EQ(truth.iteration_durations.size(), 1u);
  EXPECT_EQ(truth.iteration_durations[0], 200u);
  EXPECT_DOUBLE_EQ(truth.last_remote_fraction(), 0.25);
}

// ---- SARIF ----------------------------------------------------------------

TEST(Sarif, EscapesAndStructuresFindings) {
  Diagnostic diag;
  diag.severity = Severity::kError;
  diag.rule = "advisor.cold-home";
  diag.region = "phase \"with\\quotes\"";
  diag.page = VPage(42);
  diag.message = "line1\nline2";
  diag.hint = "fix it";
  const std::string doc =
      diagnostics_to_sarif("repro", "1.0", std::vector<Diagnostic>{diag});
  EXPECT_NE(doc.find("\"ruleId\": \"advisor.cold-home\""), std::string::npos);
  EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(doc.find("phase \\\"with\\\\quotes\\\""), std::string::npos);
  EXPECT_NE(doc.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_EQ(doc.find('\n', doc.size() - 2), doc.size() - 1);
}

// ---- Severity parsing and canonical order ---------------------------------

TEST(DiagnosticHelpers, ParseSeverityRoundTrips) {
  EXPECT_EQ(parse_severity("note"), Severity::kNote);
  EXPECT_EQ(parse_severity("warning"), Severity::kWarning);
  EXPECT_EQ(parse_severity("error"), Severity::kError);
  EXPECT_FALSE(parse_severity("fatal").has_value());
  EXPECT_FALSE(parse_severity("").has_value());
}

TEST(DiagnosticHelpers, AnyAtOrAbove) {
  Diagnostic note;
  note.severity = Severity::kNote;
  Diagnostic warning;
  warning.severity = Severity::kWarning;
  const std::vector<Diagnostic> diags = {note, warning};
  EXPECT_TRUE(any_at_or_above(diags, Severity::kNote));
  EXPECT_TRUE(any_at_or_above(diags, Severity::kWarning));
  EXPECT_FALSE(any_at_or_above(diags, Severity::kError));
  EXPECT_FALSE(any_at_or_above({}, Severity::kNote));
}

TEST(DiagnosticHelpers, CanonicalSortIsOrderInsensitive) {
  auto make = [](const char* region, const char* rule, std::uint64_t page) {
    Diagnostic d;
    d.region = region;
    d.rule = rule;
    d.page = VPage(page);
    return d;
  };
  std::vector<Diagnostic> a = {make("z", "r1", 5), make("a", "r2", 9),
                               make("a", "r2", 3), make("a", "r1", 3)};
  std::vector<Diagnostic> b = {a[2], a[0], a[3], a[1]};
  canonical_sort(a);
  canonical_sort(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region, b[i].region) << i;
    EXPECT_EQ(a[i].rule, b[i].rule) << i;
    EXPECT_EQ(a[i].page, b[i].page) << i;
  }
  EXPECT_EQ(a[0].region, "a");
  EXPECT_EQ(a[0].rule, "r1");
  EXPECT_EQ(a[1].rule, "r2");
  EXPECT_EQ(a[1].page, VPage(3));
  EXPECT_EQ(a[2].page, VPage(9));
  EXPECT_EQ(a[3].region, "z");
}

}  // namespace
}  // namespace repro::analysis
