// Page-replication tests (the paper's Section 1.2 extension: read-only
// pages can be replicated in multiple nodes). Covers the kernel
// primitive, the coherence collapse on writes, the memory-system read
// path and the UPMlib replication policy.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::os {
namespace {

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 16;
  return config;
}

struct Fixture {
  Fixture() : machine(omp::Machine::create(small_config())) {}

  /// A cache-missing access (flush first).
  memsys::MemorySystem::AccessResult miss(ProcId proc, VPage page,
                                          bool write = false,
                                          std::uint32_t lines = 8) {
    machine->memory().flush_page(page);
    const auto r =
        machine->memory().access(now, {proc, page, lines, write});
    now += 100'000;
    return r;
  }

  std::unique_ptr<omp::Machine> machine;
  Ns now = 0;
};

TEST(Replication, KernelCreatesAndServesNearestCopy) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  f.miss(ProcId(0), VPage(1));  // home on node 0
  const auto res = kernel.replicate_page(VPage(1), NodeId(3));
  EXPECT_TRUE(res.replicated);
  EXPECT_GT(res.cost, 0u);
  EXPECT_EQ(kernel.replica_count(VPage(1)), 1u);
  EXPECT_EQ(kernel.stats().replications, 1u);

  // A read from proc 3 is now served locally.
  const auto read = f.miss(ProcId(3), VPage(1), false);
  EXPECT_FALSE(read.remote);
  // The primary home is unchanged.
  EXPECT_EQ(kernel.home_of(VPage(1)), NodeId(0));
  // Reads from the home node keep using the primary.
  const auto home_read = f.miss(ProcId(0), VPage(1), false);
  EXPECT_FALSE(home_read.remote);
}

TEST(Replication, DeclinesDuplicatesAndHomeNode) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  f.miss(ProcId(0), VPage(1));
  EXPECT_FALSE(kernel.replicate_page(VPage(1), NodeId(0)).replicated);
  ASSERT_TRUE(kernel.replicate_page(VPage(1), NodeId(2)).replicated);
  EXPECT_FALSE(kernel.replicate_page(VPage(1), NodeId(2)).replicated);
  EXPECT_EQ(kernel.replica_count(VPage(1)), 1u);
}

TEST(Replication, DeclinesWhenTargetNodeFull) {
  auto config = small_config();
  config.frames_per_node = 1;
  auto machine = omp::Machine::create(config);
  machine->memory().access(0, {ProcId(0), VPage(1), 1, true});   // node 0
  machine->memory().access(0, {ProcId(1), VPage(2), 1, true});   // node 1
  EXPECT_FALSE(
      machine->kernel().replicate_page(VPage(1), NodeId(1)).replicated);
}

TEST(Replication, WriteMissCollapsesReplicas) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  f.miss(ProcId(0), VPage(1));
  ASSERT_TRUE(kernel.replicate_page(VPage(1), NodeId(2)).replicated);
  ASSERT_TRUE(kernel.replicate_page(VPage(1), NodeId(3)).replicated);
  const std::size_t free_before =
      f.machine->kernel().physical_memory().total_free();

  // A write (cache-missing) collapses both replicas and frees frames.
  f.miss(ProcId(1), VPage(1), /*write=*/true);
  EXPECT_EQ(kernel.replica_count(VPage(1)), 0u);
  EXPECT_EQ(kernel.stats().replica_collapses, 1u);
  EXPECT_EQ(kernel.physical_memory().total_free(), free_before + 2);
  EXPECT_TRUE(kernel.is_dirty(VPage(1)));
}

TEST(Replication, WriteHitAlsoCollapses) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  // Proc 1 caches the page with a read, then writes it (a cache hit).
  f.miss(ProcId(0), VPage(1));
  f.miss(ProcId(1), VPage(1));
  ASSERT_TRUE(kernel.replicate_page(VPage(1), NodeId(2)).replicated);
  const auto r = f.machine->memory().access(
      f.now, {ProcId(1), VPage(1), 8, /*write=*/true});
  EXPECT_EQ(r.misses, 0u);  // it was a hit...
  EXPECT_EQ(kernel.replica_count(VPage(1)), 0u);  // ...but coherent
}

TEST(Replication, MigrationCollapsesFirst) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  f.miss(ProcId(0), VPage(1));
  ASSERT_TRUE(kernel.replicate_page(VPage(1), NodeId(2)).replicated);
  const auto res = kernel.migrate_page(VPage(1), NodeId(3));
  EXPECT_TRUE(res.migrated);
  EXPECT_EQ(kernel.replica_count(VPage(1)), 0u);
  EXPECT_EQ(kernel.home_of(VPage(1)), NodeId(3));
}

TEST(Replication, DirtyTrackingFollowsWritesAndClears) {
  Fixture f;
  Kernel& kernel = f.machine->kernel();
  f.miss(ProcId(0), VPage(1), /*write=*/false);
  EXPECT_FALSE(kernel.is_dirty(VPage(1)));
  f.miss(ProcId(0), VPage(1), /*write=*/true);
  EXPECT_TRUE(kernel.is_dirty(VPage(1)));
  kernel.clear_dirty(VPage(1));
  EXPECT_FALSE(kernel.is_dirty(VPage(1)));
}

TEST(Replication, UpmlibReplicatesCleanMultiReaderPages) {
  Fixture f;
  const auto range =
      f.machine->address_space().allocate_pages("shared", 4);
  upm::UpmConfig config;
  config.enable_replication = true;
  config.replication_min_nodes = 3;
  config.replication_min_count = 8;
  upm::Upmlib upmlib(f.machine->mmci(), f.machine->runtime(), config);
  upmlib.memrefcnt(range);

  // Page 0: written once (home node 0) then read by everyone.
  f.miss(ProcId(0), range.page(0), true);
  upmlib.reset_hot_counters();  // clean slate (clears the dirty bit)
  for (std::uint32_t p = 1; p < 4; ++p) {
    f.miss(ProcId(p), range.page(0), false);
  }
  // Page 1: read-write by a single remote node -> migration, not
  // replication.
  f.miss(ProcId(0), range.page(1), false);
  f.miss(ProcId(2), range.page(1), true, 8);
  f.miss(ProcId(2), range.page(1), true, 8);
  f.miss(ProcId(2), range.page(1), true, 8);

  upmlib.migrate_memory();
  EXPECT_EQ(upmlib.stats().replications, 3u);
  EXPECT_EQ(f.machine->kernel().replica_count(range.page(0)), 3u);
  EXPECT_GT(upmlib.stats().replication_cost, 0u);
  // The dirty read-write page migrated instead.
  EXPECT_EQ(f.machine->kernel().replica_count(range.page(1)), 0u);
  EXPECT_EQ(f.machine->kernel().home_of(range.page(1)), NodeId(2));
}

TEST(Replication, UpmlibSkipsDirtyPages) {
  Fixture f;
  const auto range =
      f.machine->address_space().allocate_pages("shared", 1);
  upm::UpmConfig config;
  config.enable_replication = true;
  config.replication_min_nodes = 2;
  config.replication_min_count = 4;
  upm::Upmlib upmlib(f.machine->mmci(), f.machine->runtime(), config);
  upmlib.memrefcnt(range);

  f.miss(ProcId(0), range.page(0), true);  // dirty
  for (std::uint32_t p = 1; p < 4; ++p) {
    f.miss(ProcId(p), range.page(0), false);
  }
  upmlib.migrate_memory();
  EXPECT_EQ(upmlib.stats().replications, 0u);
}

TEST(Replication, ReplicatedReadsSpeedUpSharedData) {
  // End-to-end: four nodes repeatedly reading one node's page run
  // faster once the page is replicated everywhere.
  Fixture f;
  f.miss(ProcId(0), VPage(1), false, 8);
  const auto measure = [&] {
    Ns total = 0;
    for (std::uint32_t p = 0; p < 4; ++p) {
      total += f.miss(ProcId(p), VPage(1), false, 8).elapsed;
    }
    return total;
  };
  const Ns before = measure();
  for (std::uint32_t n = 1; n < 4; ++n) {
    ASSERT_TRUE(
        f.machine->kernel().replicate_page(VPage(1), NodeId(n)).replicated);
  }
  const Ns after = measure();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace repro::os
