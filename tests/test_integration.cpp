// Integration tests: end-to-end properties of the reproduced system,
// phrased as the paper's qualitative claims on scaled-down runs.
#include <gtest/gtest.h>

#include "repro/common/stats.hpp"
#include "repro/harness/run.hpp"
#include "repro/nas/workload.hpp"

namespace repro::harness {
namespace {

RunConfig small(const std::string& benchmark, const std::string& placement,
                std::uint32_t iterations = 6) {
  RunConfig config;
  config.benchmark = benchmark;
  config.placement = placement;
  config.iterations = iterations;
  return config;
}

TEST(PaperClaims, WorstCaseIsMuchSlowerThanFirstTouch) {
  for (const auto& name : nas::workload_names()) {
    const auto ft = run_benchmark(small(name, "ft"));
    const auto wc = run_benchmark(small(name, "wc"));
    EXPECT_GT(wc.total, ft.total + ft.total / 5) << name;
  }
}

TEST(PaperClaims, BalancedPlacementsAreBetweenFtAndWc) {
  for (const auto& name : {"CG", "FT"}) {
    const auto ft = run_benchmark(small(name, "ft"));
    const auto rr = run_benchmark(small(name, "rr"));
    const auto rand = run_benchmark(small(name, "rand"));
    const auto wc = run_benchmark(small(name, "wc"));
    EXPECT_GT(rr.total, ft.total) << name;
    EXPECT_LT(rr.total, wc.total) << name;
    EXPECT_GT(rand.total, ft.total) << name;
    EXPECT_LT(rand.total, wc.total) << name;
  }
}

TEST(PaperClaims, RemoteFractionMatchesPlacementTheory) {
  // Worst case on n nodes leaves (n-1)/n of misses remote (93.75% at
  // 16 nodes, as the paper computes); first touch far less.
  const auto ft = run_benchmark(small("SP", "ft"));
  const auto wc = run_benchmark(small("SP", "wc"));
  EXPECT_LT(ft.memory_totals.remote_fraction(), 0.45);
  EXPECT_NEAR(wc.memory_totals.remote_fraction(), 0.9375, 0.02);
}

TEST(PaperClaims, KernelDaemonPartiallyRecoversWorstCase) {
  RunConfig config = small("SP", "wc", 10);
  const auto wc = run_benchmark(config);
  config.kernel_migration = true;
  const auto wc_mig = run_benchmark(config);
  const auto ft = run_benchmark(small("SP", "ft", 10));
  EXPECT_LT(wc_mig.total, wc.total);        // it helps...
  EXPECT_GT(wc_mig.total, ft.total);        // ...but does not close the gap
  EXPECT_GT(wc_mig.daemon_stats.migrations, 100u);
}

TEST(PaperClaims, KernelDaemonIsNearNeutralUnderFirstTouch) {
  RunConfig config = small("CG", "ft", 10);
  const auto ft = run_benchmark(config);
  config.kernel_migration = true;
  const auto ft_mig = run_benchmark(config);
  const double delta = repro::slowdown(ft_mig.seconds(), ft.seconds());
  EXPECT_LT(std::abs(delta), 0.05);
}

TEST(PaperClaims, UpmlibApproachesFirstTouchSteadyState) {
  // Under round-robin placement, the steady-state iterations with
  // UPMlib must come within a few percent of first-touch's (Fig. 4).
  for (const auto& name : {"BT", "CG"}) {
    RunConfig config = small(name, "rr", 8);
    config.upm_mode = nas::UpmMode::kDistribution;
    const auto rr_upm = run_benchmark(config);
    const auto ft = run_benchmark(small(name, "ft", 8));
    const Ns upm_steady = rr_upm.mean_iteration_last(0.5);
    const Ns ft_steady = ft.mean_iteration_last(0.5);
    const double delta = repro::slowdown(static_cast<double>(upm_steady),
                                  static_cast<double>(ft_steady));
    EXPECT_LT(delta, 0.05) << name;
  }
}

TEST(PaperClaims, UpmlibFixesRemoteFraction) {
  RunConfig config = small("SP", "rand", 8);
  const auto rand = run_benchmark(config);
  config.upm_mode = nas::UpmMode::kDistribution;
  const auto rand_upm = run_benchmark(config);
  EXPECT_GT(rand.memory_totals.remote_fraction(), 0.9);
  EXPECT_LT(rand_upm.memory_totals.remote_fraction(), 0.5);
}

TEST(PaperClaims, UpmlibSelfDeactivatesEarly) {
  // Table 2: the overwhelming majority of migrations happen after the
  // first iteration; activity dies out quickly.
  for (const auto& name : {"SP", "CG", "FT"}) {
    RunConfig config = small(name, "rand", 8);
    config.upm_mode = nas::UpmMode::kDistribution;
    const auto result = run_benchmark(config);
    EXPECT_GT(result.upm_stats.first_invocation_fraction(), 0.75) << name;
    // Invocations stop well before the run ends (self-deactivation).
    EXPECT_LT(result.upm_stats.migrations_per_invocation.size(), 6u)
        << name;
  }
}

TEST(PaperClaims, SteadyStateSlowdownIsSmallWithUpmlib) {
  // Table 2: slowdown in the last 75% of iterations under non-optimal
  // placements with UPMlib is a few percent at most.
  RunConfig config = small("SP", "rr", 8);
  config.upm_mode = nas::UpmMode::kDistribution;
  const auto rr_upm = run_benchmark(config);
  const auto ft = run_benchmark(small("SP", "ft", 8));
  const double late = repro::slowdown(
      static_cast<double>(rr_upm.mean_iteration_last(0.75)),
      static_cast<double>(ft.mean_iteration_last(0.75)));
  EXPECT_LT(late, 0.04);
}

TEST(PaperClaims, RecordReplayTracksDistributionWithBoundedOverhead) {
  // Record--replay = distribution + per-iteration replay/undo around
  // z_solve. In our model the uncapped distribution pass already captures
  // most of the phase-flip benefit, so the paper-faithful n=20 replay
  // adds only its (visible, bounded) overhead: recrep must stay within
  // 1% of distribution-only, with symmetric replay/undo activity.
  RunConfig config = small("BT", "ft", 6);
  config.upm_mode = nas::UpmMode::kDistribution;
  const auto dist = run_benchmark(config);
  config.upm_mode = nas::UpmMode::kRecordReplay;
  config.upm.max_critical_pages = 20;
  const auto recrep = run_benchmark(config);
  EXPECT_LT(recrep.seconds(), dist.seconds() * 1.01);
  EXPECT_GT(recrep.upm_stats.replay_migrations, 0u);
  EXPECT_EQ(recrep.upm_stats.replay_migrations,
            recrep.upm_stats.undo_migrations);
  EXPECT_GT(recrep.upm_stats.recrep_cost, 0u);
  // The replay lists target pages whose dominant accessor flips at the
  // z phase, at most n per transition.
  EXPECT_LE(recrep.upm_stats.replay_migrations,
            20u * recrep.iteration_times.size());
}

TEST(PaperClaims, RecordReplaySpeedsIsolatedPhaseChange) {
  // The mechanism's genuine win case: a phase change the distribution
  // pass cannot act on because the whole-iteration trace keeps the home
  // dominant (the paper's Fig. 3 situation). Build it directly: pages
  // read 3x by their owner each iteration and written once by another
  // node in a "transposed" phase.
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("ft");
  const auto grid =
      machine->address_space().allocate_pages("grid", 16 * 40);
  upm::UpmConfig upm_config;
  upm_config.max_critical_pages = 0;  // no cap: cover every thread
  upm::Upmlib upmlib(machine->mmci(), machine->runtime(), upm_config);
  upmlib.memrefcnt(grid);
  omp::Runtime& rt = machine->runtime();
  const std::uint32_t lines = machine->config().lines_per_page();

  const auto row_phase = [&] {
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < 16; ++t) {
      for (int rep = 0; rep < 3; ++rep) {
        for (std::uint64_t p = 0; p < 40; ++p) {
          region.access(ThreadId(t), grid.page(t * 40 + p), lines, true);
        }
      }
      // Evict between phases so every access misses.
      for (std::uint64_t p = 0; p < 300; ++p) {
        region.access(ThreadId(t), VPage(100000 + t * 1000 + p), lines,
                      false);
      }
    }
    rt.run("rows", std::move(region));
  };
  const auto column_phase = [&] {
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < 16; ++t) {
      const std::uint32_t victim = (t + 1) % 16;
      for (std::uint64_t p = 0; p < 40; ++p) {
        region.access(ThreadId(t), grid.page(victim * 40 + p), lines,
                      true);
      }
      for (std::uint64_t p = 0; p < 300; ++p) {
        region.access(ThreadId(t), VPage(200000 + t * 1000 + p), lines,
                      false);
      }
    }
    rt.run("columns", std::move(region));
  };

  // Cold start + Fig. 3 protocol.
  row_phase();
  column_phase();
  upmlib.reset_hot_counters();
  Ns column_no_replay = 0;
  Ns column_with_replay = 0;
  for (std::uint32_t step = 1; step <= 6; ++step) {
    row_phase();
    if (step == 2) {
      upmlib.record();
    } else if (step > 2) {
      upmlib.replay();
    }
    const Ns before = rt.now();
    column_phase();
    const Ns column_time = rt.now() - before;
    if (step == 1) {
      upmlib.migrate_memory();
    } else if (step == 2) {
      upmlib.record();
      upmlib.compare_counters();
    } else {
      upmlib.undo();
    }
    if (step == 2) {
      column_no_replay = column_time;
    } else if (step == 6) {
      column_with_replay = column_time;
    }
  }
  // The whole-iteration trace keeps the rows owner dominant (3:1), so
  // the distribution pass left the pages put...
  EXPECT_EQ(upmlib.stats().distribution_migrations, 0u);
  // ...but the replayed per-phase migrations make the column phase
  // clearly faster.
  EXPECT_GT(upmlib.stats().replay_migrations, 0u);
  EXPECT_LT(static_cast<double>(column_with_replay),
            static_cast<double>(column_no_replay) * 0.95);
}

TEST(PaperClaims, RecordReplayRestoresPlacementEachIteration) {
  // After undo(), the placement equals the post-distribution placement:
  // run with record-replay and verify the distribution steady state is
  // identical to distribution-only mode at the end of the run.
  RunConfig config = small("SP", "ft", 6);
  config.upm_mode = nas::UpmMode::kRecordReplay;
  config.upm.max_critical_pages = 20;
  const auto a = run_benchmark(config);
  const auto b = run_benchmark(config);
  EXPECT_EQ(a.total, b.total);  // fully deterministic
}

TEST(PaperClaims, SyntheticScalingAmortizesRecrepOverhead) {
  // Fig. 6: scaling each phase's computation makes the record-replay
  // overhead relatively smaller.
  RunConfig config = small("BT", "ft", 5);
  config.upm_mode = nas::UpmMode::kRecordReplay;
  config.upm.max_critical_pages = 20;
  const auto scale1 = run_benchmark(config);
  config.compute_scale = 4;
  const auto scale4 = run_benchmark(config);
  const double ovh1 = static_cast<double>(scale1.upm_stats.recrep_cost) /
                      static_cast<double>(scale1.total);
  const double ovh4 = static_cast<double>(scale4.upm_stats.recrep_cost) /
                      static_cast<double>(scale4.total);
  EXPECT_LT(ovh4, ovh1);
}

TEST(Determinism, IdenticalConfigsProduceIdenticalHistories) {
  RunConfig config = small("MG", "rand", 4);
  config.kernel_migration = true;
  const auto a = run_benchmark(config);
  const auto b = run_benchmark(config);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.daemon_stats.migrations, b.daemon_stats.migrations);
  EXPECT_EQ(a.memory_totals.remote_miss_lines,
            b.memory_totals.remote_miss_lines);
}

TEST(Scaling, LargerDiameterPunishesBadPlacementHarder) {
  // A machine with a bigger network diameter (ring vs fat hypercube)
  // makes balanced-but-remote placement more expensive, supporting the
  // paper's closing discussion about larger systems.
  const auto slowdown_on = [](const std::string& topology) {
    RunConfig rr = small("CG", "rr", 4);
    rr.machine.topology = topology;
    RunConfig ft = small("CG", "ft", 4);
    ft.machine.topology = topology;
    return repro::slowdown(run_benchmark(rr).seconds(),
                           run_benchmark(ft).seconds());
  };
  EXPECT_GT(slowdown_on("ring"), slowdown_on("fat-hypercube"));
}

}  // namespace
}  // namespace repro::harness
