// Sweep-service tests: the RSVC frame protocol (round trips and every
// rejection path), cell-spec wire format, the crash-safe result cache
// (including a torn-tail fuzz that truncates the journal at every byte
// boundary), and end-to-end daemon runs over a real Unix-domain socket
// -- cold/warm cache equivalence against a direct in-process run_sweep,
// bounded admission (kBusy), in-request deduplication, restart
// recovery, worker signal hygiene across fork, a torn-frame worker
// that must never block the poll loop, and a chaos suite that injects
// worker aborts, hangs, garbled and torn reply frames while asserting
// every cell still gets a typed answer and every completed digest
// stays byte-identical.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/fault/service.hpp"
#include "repro/harness/checkpoint.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/service/cellspec.hpp"
#include "repro/service/client.hpp"
#include "repro/service/daemon.hpp"
#include "repro/service/protocol.hpp"
#include "repro/service/result_cache.hpp"
#include "repro/service/worker.hpp"

namespace repro::service {
namespace {

std::string temp_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("repro_service_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// A pair of connected stream sockets for protocol tests.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    REPRO_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    close_a();
    close_b();
  }
  void close_a() {
    if (a >= 0) {
      ::close(a);
      a = -1;
    }
  }
  void close_b() {
    if (b >= 0) {
      ::close(b);
      b = -1;
    }
  }
};

void write_raw(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    REPRO_REQUIRE(n > 0);
    off += static_cast<std::size_t>(n);
  }
}

std::string header_bytes(FrameHeader header) {
  std::string out(sizeof(FrameHeader), '\0');
  std::memcpy(out.data(), &header, sizeof(FrameHeader));
  return out;
}

// --- protocol --------------------------------------------------------------

TEST(Protocol, FrameRoundTripOverSocket) {
  SocketPair pair;
  const std::string binary("spec \0 with NUL and \xff bytes", 27);
  write_frame(pair.a, FrameType::kCellTask, binary);
  write_frame(pair.a, FrameType::kSweepDone, "");
  Frame frame;
  ASSERT_EQ(read_frame(pair.b, &frame), ReadResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kCellTask);
  EXPECT_EQ(frame.payload, binary);
  ASSERT_EQ(read_frame(pair.b, &frame), ReadResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kSweepDone);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Protocol, OrderlyEofAtFrameBoundary) {
  SocketPair pair;
  write_frame(pair.a, FrameType::kBusy, "");
  pair.close_a();
  Frame frame;
  ASSERT_EQ(read_frame(pair.b, &frame), ReadResult::kFrame);
  EXPECT_EQ(read_frame(pair.b, &frame), ReadResult::kEof);
}

TEST(Protocol, EofMidFrameThrows) {
  {
    SocketPair pair;
    write_raw(pair.a, std::string(10, 'x'));  // partial header
    pair.close_a();
    Frame frame;
    EXPECT_THROW(read_frame(pair.b, &frame), ProtocolError);
  }
  {
    SocketPair pair;
    FrameHeader header;
    header.type = static_cast<std::uint32_t>(FrameType::kCellReply);
    header.payload_bytes = 100;
    header.payload_digest = frame_digest("irrelevant");
    write_raw(pair.a, header_bytes(header) + "only twenty bytes...");
    pair.close_a();
    Frame frame;
    EXPECT_THROW(read_frame(pair.b, &frame), ProtocolError);
  }
}

TEST(Protocol, RejectsBadMagicVersionSizeAndDigest) {
  const auto expect_rejected = [](FrameHeader header,
                                  const std::string& payload) {
    SocketPair pair;
    write_raw(pair.a, header_bytes(header) + payload);
    pair.close_a();
    Frame frame;
    EXPECT_THROW(read_frame(pair.b, &frame), ProtocolError);
  };
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(FrameType::kCellReply);
  header.payload_bytes = 2;
  header.payload_digest = frame_digest("ok");

  FrameHeader bad = header;
  bad.magic = 0x12345678;
  expect_rejected(bad, "ok");
  bad = header;
  bad.version = kProtocolVersion + 1;
  expect_rejected(bad, "ok");
  bad = header;
  bad.payload_bytes = kMaxFramePayload + 1;
  expect_rejected(bad, "ok");
  bad = header;
  bad.payload_digest ^= 1;
  expect_rejected(bad, "ok");
}

TEST(Protocol, GarbledFrameTripsTheDigestFence) {
  {
    SocketPair pair;
    write_garbled_frame(pair.a, FrameType::kCellReply, "a healthy payload");
    Frame frame;
    EXPECT_THROW(read_frame(pair.b, &frame), ProtocolError);
  }
  {
    SocketPair pair;
    write_garbled_frame(pair.a, FrameType::kCellReply, "");
    pair.close_a();
    Frame frame;
    EXPECT_THROW(read_frame(pair.b, &frame), ProtocolError);
  }
}

TEST(Protocol, TryExtractFrameNeedsCompleteBytes) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(FrameType::kSweepRequest);
  header.payload_bytes = 5;
  header.payload_digest = frame_digest("hello");
  const std::string wire = header_bytes(header) + "hello";

  std::string buffer;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.push_back(wire[i]);
    EXPECT_FALSE(try_extract_frame(&buffer, &frame));
  }
  buffer.push_back(wire.back());
  ASSERT_TRUE(try_extract_frame(&buffer, &frame));
  EXPECT_EQ(frame.type, FrameType::kSweepRequest);
  EXPECT_EQ(frame.payload, "hello");
  EXPECT_TRUE(buffer.empty());

  // Two frames back to back extract in order.
  buffer = wire + wire;
  ASSERT_TRUE(try_extract_frame(&buffer, &frame));
  ASSERT_TRUE(try_extract_frame(&buffer, &frame));
  EXPECT_FALSE(try_extract_frame(&buffer, &frame));

  // A garbled prefix poisons the buffer.
  buffer = std::string(64, 'Z');
  EXPECT_THROW(try_extract_frame(&buffer, &frame), ProtocolError);
}

TEST(Protocol, TornFramePrefixNeverCompletes) {
  SocketPair pair;
  const std::string payload = "torn frame payload bytes";
  write_torn_frame_prefix(pair.a, FrameType::kCellReply, payload);
  pair.close_a();
  // The receiver sees a strict prefix: incremental extraction reports
  // "need more bytes" (never a frame, never an exception) and the
  // stream then ends inside the frame.
  std::string buffer;
  char buf[256];
  ssize_t n = 0;
  while ((n = ::read(pair.b, buf, sizeof(buf))) > 0) {
    buffer.append(buf, static_cast<std::size_t>(n));
  }
  ASSERT_EQ(n, 0);
  EXPECT_LT(buffer.size(), sizeof(FrameHeader) + payload.size());
  Frame frame;
  EXPECT_FALSE(try_extract_frame(&buffer, &frame));
  EXPECT_FALSE(buffer.empty());

  // An empty payload tears inside the header itself.
  SocketPair empty_pair;
  write_torn_frame_prefix(empty_pair.a, FrameType::kCellReply, "");
  empty_pair.close_a();
  buffer.clear();
  while ((n = ::read(empty_pair.b, buf, sizeof(buf))) > 0) {
    buffer.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_LT(buffer.size(), sizeof(FrameHeader));
  EXPECT_FALSE(try_extract_frame(&buffer, &frame));
}

// --- cell specs ------------------------------------------------------------

TEST(CellSpec, FormatParseRoundTrip) {
  CellSpec spec;
  spec.benchmark = "BT";
  spec.placement = "rr";
  spec.kernel_migration = false;
  spec.upm = "recrep";
  spec.iterations = 7;
  spec.compute_scale = 4;
  spec.size_scale = 0.125;
  spec.seed = 999;
  spec.fault_rate = 0.25;
  spec.fault_seed = 42;

  CellSpec parsed;
  std::string error;
  ASSERT_TRUE(CellSpec::parse(spec.format(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.format(), spec.format());
  EXPECT_EQ(parsed.identity(), spec.identity());

  // All-defaults round trips too.
  const CellSpec defaults;
  ASSERT_TRUE(CellSpec::parse(defaults.format(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.identity(), defaults.identity());
}

TEST(CellSpec, ParseRejectsGarbage) {
  CellSpec parsed;
  std::string error;
  EXPECT_FALSE(CellSpec::parse("benchmark=CG nonsense_key=1", &parsed,
                               &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(CellSpec::parse("iterations=abc", &parsed, &error));
  EXPECT_FALSE(CellSpec::parse("size_scale=half", &parsed, &error));
  EXPECT_FALSE(CellSpec::parse("benchmark", &parsed, &error));
}

TEST(CellSpec, IdentityAgreesWithConfigIdentityAndTracingIsOn) {
  CellSpec spec;
  spec.benchmark = "CG";
  spec.placement = "wc";
  spec.upm = "dist";
  spec.iterations = 3;
  spec.size_scale = 0.25;
  const harness::RunConfig config = spec.to_config();
  EXPECT_TRUE(config.trace);  // digests are the correctness currency
  EXPECT_EQ(spec.identity(), harness::config_identity(config));
  EXPECT_NE(spec.identity(), 0u);
}

TEST(SweepRequest, EncodeDecodeRoundTripAndEmptyRejected) {
  SweepRequest request;
  for (const std::string placement : {"ft", "rr"}) {
    CellSpec spec;
    spec.placement = placement;
    spec.iterations = 2;
    request.cells.push_back(std::move(spec));
  }
  SweepRequest decoded;
  std::string error;
  ASSERT_TRUE(SweepRequest::decode(request.encode(), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.cells.size(), 2u);
  EXPECT_EQ(decoded.cells[0].identity(), request.cells[0].identity());
  EXPECT_EQ(decoded.cells[1].identity(), request.cells[1].identity());

  EXPECT_FALSE(SweepRequest::decode("", &decoded, &error));
  EXPECT_FALSE(SweepRequest::decode("placement=ft\ngarbage=1\n", &decoded,
                                    &error));
}

// --- service faults --------------------------------------------------------

TEST(ServiceFaults, DecisionIsPureAndVariesAcrossAttempts) {
  fault::ServiceFaultPlan plan;
  plan.set_rate(0.5);
  plan.validate();
  const std::uint64_t identity = 0x1234abcd5678ef01ull;
  // Pure: the same arguments always answer the same.
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    const bool first = service_fault_fires(
        plan, fault::ServiceFaultClass::kWorkerAbort, identity, attempt);
    const bool again = service_fault_fires(
        plan, fault::ServiceFaultClass::kWorkerAbort, identity, attempt);
    EXPECT_EQ(first, again);
  }
  // A retried dispatch sees an independent draw: at rate 0.5 over 64
  // attempts both outcomes must appear (P(miss) = 2^-63).
  bool saw_fire = false;
  bool saw_skip = false;
  for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
    if (service_fault_fires(plan, fault::ServiceFaultClass::kWorkerHang,
                            identity, attempt)) {
      saw_fire = true;
    } else {
      saw_skip = true;
    }
  }
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_skip);

  fault::ServiceFaultPlan bad;
  bad.abort_rate = 1.5;
  EXPECT_THROW(bad.validate(), ContractViolation);

  fault::ServiceFaultPlan bad_torn;
  bad_torn.torn_rate = -0.5;
  EXPECT_THROW(bad_torn.validate(), ContractViolation);
}

// --- worker processes ------------------------------------------------------

TEST(Worker, ForkedWorkerDiesOnSigtermDespiteDaemonHandlers) {
  // The daemon installs SIGTERM/SIGINT handlers that write() to its
  // wake pipe. A forked worker inherits them but closes the pipe fds;
  // unless the child resets the disposition, a signal to the process
  // group hits a closed (or worse, reused) descriptor. The worker must
  // instead die with the default action.
  const std::string dir = temp_dir("worker_signals");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  SweepDaemon daemon(config);  // never run(): only the handlers matter
  install_signal_handlers(&daemon);

  const WorkerHandle handle = spawn_worker(fault::ServiceFaultPlan{}, nullptr);
  ASSERT_EQ(::kill(handle.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(handle.pid, &status, 0), handle.pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
  ::close(handle.fd);

  // Restore the default dispositions so later fixtures in this binary
  // start from a clean slate.
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(SIGTERM, &dfl, nullptr);
  ::sigaction(SIGINT, &dfl, nullptr);
}

// --- result cache ----------------------------------------------------------

TEST(ResultCache, MemoryOnlyLruEviction) {
  CacheConfig config;
  config.capacity = 2;
  ResultCache cache(config);
  cache.insert(1, "one");
  cache.insert(2, "two");
  ASSERT_TRUE(cache.lookup(1).has_value());  // refresh 1; 2 is now LRU
  cache.insert(3, "three");
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, DuplicateInsertDemandsIdenticalBytes) {
  CacheConfig config;
  ResultCache cache(config);
  cache.insert(7, "payload");
  cache.insert(7, "payload");  // byte-identical: recency refresh only
  EXPECT_EQ(cache.size(), 1u);
  // Different bytes for the same identity = the deterministic
  // simulator contradicted itself. Loud failure, not silent update.
  EXPECT_THROW(cache.insert(7, "different"), ContractViolation);
}

TEST(ResultCache, PersistsAcrossReopenViaJournal) {
  const std::string dir = temp_dir("journal");
  CacheConfig config;
  config.dir = dir;
  config.snapshot_every = 0;  // journal only
  {
    ResultCache cache(config);
    cache.insert(10, "ten");
    cache.insert(11, "eleven");
  }
  ResultCache reopened(config);
  EXPECT_EQ(reopened.stats().recovered_entries, 2u);
  EXPECT_EQ(reopened.lookup(10).value_or(""), "ten");
  EXPECT_EQ(reopened.lookup(11).value_or(""), "eleven");
}

TEST(ResultCache, SnapshotTruncatesJournalAndStillRecovers) {
  const std::string dir = temp_dir("snapshot");
  CacheConfig config;
  config.dir = dir;
  config.snapshot_every = 2;
  {
    ResultCache cache(config);
    cache.insert(1, "one");
    cache.insert(2, "two");  // triggers the snapshot + truncation
    EXPECT_EQ(cache.stats().snapshots, 1u);
    EXPECT_EQ(read_file(cache.journal_path()), "");
    cache.insert(3, "three");  // lands in the fresh journal
    EXPECT_NE(read_file(cache.journal_path()), "");
  }
  ResultCache reopened(config);
  EXPECT_EQ(reopened.stats().recovered_entries, 3u);
  EXPECT_EQ(reopened.lookup(1).value_or(""), "one");
  EXPECT_EQ(reopened.lookup(3).value_or(""), "three");
}

TEST(ResultCache, JournalTornTailFuzzEveryByteBoundary) {
  // Three acknowledged entries, then the journal is truncated at every
  // byte boundary. Recovery must keep exactly the entries that are
  // fully contained in the surviving prefix -- an acknowledged entry
  // before the tear is never lost, a torn one is never half-read.
  const std::vector<std::pair<std::uint64_t, std::string>> entries = {
      {100, "first payload"},
      {200, std::string("second\nwith\nnewlines\n\0and NUL", 29)},
      {300, "third"},
  };
  std::string full;
  std::vector<std::size_t> boundaries;  // journal size after each entry
  for (const auto& [identity, payload] : entries) {
    full += encode_journal_entry(identity, payload);
    boundaries.push_back(full.size());
  }

  const std::string dir = temp_dir("torn");
  CacheConfig config;
  config.dir = dir;
  config.snapshot_every = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    write_file(dir + "/journal.log", full.substr(0, cut));
    ResultCache cache(config);
    std::size_t expected = 0;
    while (expected < boundaries.size() && boundaries[expected] <= cut) {
      ++expected;
    }
    ASSERT_EQ(cache.stats().recovered_entries, expected)
        << "journal truncated at byte " << cut;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(cache.lookup(entries[i].first).value_or("<missing>"),
                entries[i].second);
    }
    const bool at_boundary =
        cut == 0 || (expected > 0 && boundaries[expected - 1] == cut);
    if (at_boundary) {
      EXPECT_EQ(cache.stats().dropped_torn_bytes, 0u);
    } else {
      EXPECT_GT(cache.stats().dropped_torn_bytes, 0u);
    }
  }
}

// --- end-to-end daemon -----------------------------------------------------

/// The canonical 6-cell CG grid ({ft,rr,wc} x {off,dist}) at the tiny
/// regression size; matches tests/golden/trace_digests.txt CG rows.
SweepRequest six_cell_grid() {
  SweepRequest request;
  for (const std::string placement : {"ft", "rr", "wc"}) {
    for (const std::string upm : {"off", "dist"}) {
      CellSpec spec;
      spec.benchmark = "CG";
      spec.placement = placement;
      spec.upm = upm;
      spec.iterations = 3;
      spec.size_scale = 0.25;
      request.cells.push_back(std::move(spec));
    }
  }
  return request;
}

/// Runs the same grid in-process through run_sweep: the ground truth
/// the service must be byte-compatible with.
std::vector<harness::RunResult> direct_results(const SweepRequest& request) {
  std::vector<harness::RunConfig> configs;
  configs.reserve(request.cells.size());
  for (const CellSpec& spec : request.cells) {
    configs.push_back(spec.to_config());
  }
  harness::SweepOptions options;
  options.jobs = 2;
  const harness::SweepOutcome outcome = harness::run_sweep(configs, options);
  REPRO_REQUIRE(outcome.ok());
  return outcome.results;
}

/// Daemon running on its own thread for the duration of a test.
class DaemonFixture {
 public:
  explicit DaemonFixture(DaemonConfig config)
      : daemon_(std::move(config)),
        thread_([this] { daemon_.run(); }) {}

  ~DaemonFixture() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      daemon_.request_shutdown();
      thread_.join();
    }
  }

  SweepDaemon& daemon() { return daemon_; }

 private:
  SweepDaemon daemon_;
  std::thread thread_;
};

TEST(SweepService, ColdThenWarmMatchesDirectRunSweep) {
  const std::string dir = temp_dir("cold_warm");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 3;
  config.cache.dir = dir + "/cache";
  const SweepRequest request = six_cell_grid();
  const std::vector<harness::RunResult> direct = direct_results(request);

  DaemonFixture fixture(std::move(config));
  SweepClient client(dir + "/sweepd.sock");

  const SweepReply cold = client.submit(request);
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(cold.cache_hits, 0u);
  const SweepReply warm = client.submit(request);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.cache_hits, request.cells.size());

  ASSERT_EQ(cold.cells.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    // The correctness currency: service bytes == in-process bytes,
    // and the cached answer == the computed one.
    EXPECT_EQ(cold.cells[i].result.trace_digest, direct[i].trace_digest)
        << "cell " << i << " diverged from the direct run_sweep";
    EXPECT_EQ(warm.cells[i].result.trace_digest, direct[i].trace_digest);
    EXPECT_FALSE(cold.cells[i].cached);
    EXPECT_TRUE(warm.cells[i].cached);
  }
  fixture.stop();
  const ServiceStats& stats = fixture.daemon().stats();
  EXPECT_EQ(stats.requests_admitted, 2u);
  EXPECT_EQ(stats.cells_planned, request.cells.size());
  EXPECT_EQ(stats.cache_hits, request.cells.size());
  EXPECT_EQ(stats.cells_completed, request.cells.size());
  EXPECT_EQ(stats.cells_failed, 0u);
}

TEST(SweepService, BusyShedBeyondMaxPendingRequests) {
  const std::string dir = temp_dir("busy");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 1;
  config.max_pending_requests = 1;
  config.max_attempts = 1;
  config.cell_deadline_ms = 200;
  config.straggler_duplication = false;
  config.faults.hang_rate = 1.0;  // every dispatch wedges its worker
  DaemonFixture fixture(std::move(config));

  SweepClient client(dir + "/sweepd.sock");
  SweepReply slow_reply;
  std::thread slow([&] { slow_reply = client.submit(six_cell_grid()); });
  // While the first request burns its per-cell deadlines on the single
  // worker, a second request must be shed with an explicit kBusy.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  SweepClient second(dir + "/sweepd.sock");
  const SweepReply shed = second.submit(six_cell_grid());
  EXPECT_TRUE(shed.busy);
  EXPECT_EQ(shed.exit_code(), 2);
  slow.join();

  // The slow request itself: every cell answered with a typed timeout.
  ASSERT_EQ(slow_reply.cells.size(), 6u);
  for (const CellOutcome& cell : slow_reply.cells) {
    EXPECT_TRUE(cell.answered);
    EXPECT_FALSE(cell.ok);
    EXPECT_EQ(cell.cls, harness::FailureClass::kTimeout);
  }
  EXPECT_EQ(slow_reply.exit_code(),
            harness::failure_exit_code(harness::FailureClass::kTimeout));
  fixture.stop();
  EXPECT_GE(fixture.daemon().stats().worker_deadline_kills, 6u);
  EXPECT_EQ(fixture.daemon().stats().requests_shed_busy, 1u);
}

TEST(SweepService, DedupComputesRepeatedCellOnce) {
  const std::string dir = temp_dir("dedup");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 2;
  DaemonFixture fixture(std::move(config));

  // The same cell three times in one request: planned once, fanned out
  // to every index.
  SweepRequest request;
  CellSpec spec;
  spec.benchmark = "CG";
  spec.iterations = 2;
  spec.size_scale = 0.25;
  request.cells = {spec, spec, spec};

  SweepClient client(dir + "/sweepd.sock");
  const SweepReply reply = client.submit(request);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.cells[0].result.trace_digest,
            reply.cells[1].result.trace_digest);
  EXPECT_EQ(reply.cells[0].result.trace_digest,
            reply.cells[2].result.trace_digest);
  fixture.stop();
  EXPECT_EQ(fixture.daemon().stats().cells_planned, 1u);
  EXPECT_EQ(fixture.daemon().stats().dedup_joins, 2u);
  EXPECT_EQ(fixture.daemon().stats().cells_completed, 1u);
}

TEST(SweepService, GarbageBytesGetATypedErrorAndAClosedConnection) {
  const std::string dir = temp_dir("garbage");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 1;
  DaemonFixture fixture(std::move(config));

  // Wait for the socket, then speak garbage at it.
  SweepClient probe(dir + "/sweepd.sock");
  const SweepReply empty_probe = probe.submit(SweepRequest{});
  EXPECT_FALSE(empty_probe.error.empty());  // empty request is rejected

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, (dir + "/sweepd.sock").c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  write_raw(fd, std::string(64, 'Z'));
  Frame frame;
  ASSERT_EQ(read_frame(fd, &frame), ReadResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_NE(frame.payload.find("garbled"), std::string::npos);
  EXPECT_EQ(read_frame(fd, &frame), ReadResult::kEof);
  ::close(fd);
  fixture.stop();
  EXPECT_GE(fixture.daemon().stats().protocol_errors, 1u);
}

TEST(SweepService, CacheSurvivesDaemonRestart) {
  const std::string dir = temp_dir("restart");
  const SweepRequest request = six_cell_grid();
  std::vector<std::string> first_digests;
  {
    DaemonConfig config;
    config.socket_path = dir + "/sweepd.sock";
    config.workers = 3;
    config.cache.dir = dir + "/cache";
    DaemonFixture fixture(std::move(config));
    SweepClient client(dir + "/sweepd.sock");
    const SweepReply cold = client.submit(request);
    ASSERT_TRUE(cold.ok()) << cold.error;
    for (const CellOutcome& cell : cold.cells) {
      first_digests.push_back(cell.result.trace_digest);
    }
  }  // graceful drain: snapshot flushed, workers reaped, socket gone
  EXPECT_FALSE(std::filesystem::exists(dir + "/sweepd.sock"));
  {
    DaemonConfig config;
    config.socket_path = dir + "/sweepd.sock";
    config.workers = 3;
    config.cache.dir = dir + "/cache";
    DaemonFixture fixture(std::move(config));
    SweepClient client(dir + "/sweepd.sock");
    const SweepReply warm = client.submit(request);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.cache_hits, request.cells.size());
    for (std::size_t i = 0; i < warm.cells.size(); ++i) {
      EXPECT_TRUE(warm.cells[i].cached);
      EXPECT_EQ(warm.cells[i].result.trace_digest, first_digests[i]);
    }
    fixture.stop();
    EXPECT_EQ(fixture.daemon().stats().cells_planned, 0u);
  }
}

TEST(SweepService, TornFrameWorkerNeverBlocksTheDaemon) {
  // Every dispatch tears its reply mid-frame and wedges. The daemon
  // must (a) keep serving other connections while the partial frames
  // sit buffered -- a blocking read on a worker socket would freeze the
  // whole poll loop, including the deadline checks that reclaim the
  // wedged workers -- and (b) eventually answer every cell with a typed
  // timeout after the attempt budget is spent.
  const std::string dir = temp_dir("torn");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 2;
  config.cell_deadline_ms = 300;
  config.max_attempts = 2;
  config.backoff_base_ms = 1;
  config.straggler_duplication = false;
  config.faults.torn_rate = 1.0;
  DaemonFixture fixture(std::move(config));

  SweepRequest request;
  for (const std::string placement : {"ft", "rr"}) {
    CellSpec spec;
    spec.benchmark = "CG";
    spec.placement = placement;
    spec.iterations = 2;
    spec.size_scale = 0.25;
    request.cells.push_back(std::move(spec));
  }
  SweepClient client(dir + "/sweepd.sock");
  SweepReply torn_reply;
  std::thread slow([&] { torn_reply = client.submit(request); });
  // While both workers are wedged mid-frame, the daemon must still
  // answer a new connection promptly (here: reject an empty request).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  SweepClient probe(dir + "/sweepd.sock");
  const SweepReply probe_reply = probe.submit(SweepRequest{});
  EXPECT_FALSE(probe_reply.error.empty());
  slow.join();

  ASSERT_EQ(torn_reply.cells.size(), request.cells.size());
  for (const CellOutcome& cell : torn_reply.cells) {
    EXPECT_TRUE(cell.answered);
    EXPECT_FALSE(cell.ok);
    EXPECT_EQ(cell.cls, harness::FailureClass::kTimeout);
  }
  fixture.stop();
  const ServiceStats& stats = fixture.daemon().stats();
  // Two cells x two attempts, each reclaimed only by the deadline kill.
  EXPECT_GE(stats.worker_deadline_kills, 4u);
  EXPECT_EQ(stats.cells_completed, 0u);
  EXPECT_EQ(stats.cells_failed, request.cells.size());
}

TEST(SweepService, ChaosSuiteAnswersEveryCellAndPreservesDigests) {
  const SweepRequest request = six_cell_grid();
  const std::vector<harness::RunResult> direct = direct_results(request);

  const std::string dir = temp_dir("chaos");
  DaemonConfig config;
  config.socket_path = dir + "/sweepd.sock";
  config.workers = 3;
  config.cell_deadline_ms = 2000;
  config.max_attempts = 8;
  config.backoff_base_ms = 1;
  config.faults.abort_rate = 0.3;
  config.faults.hang_rate = 0.2;
  config.faults.garble_rate = 0.3;
  config.faults.torn_rate = 0.2;
  DaemonFixture fixture(std::move(config));

  SweepClient client(dir + "/sweepd.sock");
  const SweepReply reply = client.submit(request);
  EXPECT_FALSE(reply.busy);
  EXPECT_TRUE(reply.error.empty()) << reply.error;
  ASSERT_EQ(reply.cells.size(), request.cells.size());
  std::size_t completed = 0;
  for (std::size_t i = 0; i < reply.cells.size(); ++i) {
    const CellOutcome& cell = reply.cells[i];
    // The contract under chaos: every cell gets an answer -- either
    // the correct bytes or a typed failure. Never silence.
    ASSERT_TRUE(cell.answered) << "cell " << i << " got no answer";
    if (cell.ok) {
      ++completed;
      EXPECT_EQ(cell.result.trace_digest, direct[i].trace_digest)
          << "chaos recovery changed the bytes of cell " << i;
    } else {
      EXPECT_FALSE(cell.message.empty());
      EXPECT_NE(harness::failure_exit_code(cell.cls), 0);
    }
  }
  fixture.stop();

  const ServiceStats& stats = fixture.daemon().stats();
  // The fault rates guarantee the recovery machinery actually ran.
  EXPECT_GT(stats.worker_crashes + stats.garbled_frames +
                stats.worker_deadline_kills,
            0u);
  EXPECT_EQ(stats.cells_completed, completed);
  EXPECT_EQ(stats.cells_completed + stats.cells_failed,
            request.cells.size());
  // Every forked worker was reaped: no zombie children survive the
  // daemon (ECHILD = this process has no children at all).
  int status = 0;
  EXPECT_EQ(::waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

}  // namespace
}  // namespace repro::service
