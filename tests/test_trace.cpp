// Trace subsystem tests: sink ordering and canonicalization, the two
// exporters, the digest, the derived metrics registry, and the
// zero-perturbation guarantee when tracing is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "repro/harness/run.hpp"
#include "repro/trace/event.hpp"
#include "repro/trace/export.hpp"
#include "repro/trace/metrics.hpp"
#include "repro/trace/sink.hpp"

namespace repro::trace {
namespace {

TraceEvent at(Ns time, EventKind kind) {
  TraceEvent ev;
  ev.time = time;
  ev.kind = kind;
  return ev;
}

TEST(TraceSink, LaneRegistrationAssignsSequentialIds) {
  TraceSink sink;
  EXPECT_EQ(sink.register_lane("runtime"), 0);
  EXPECT_EQ(sink.register_lane("kernel"), 1);
  EXPECT_EQ(sink.register_lane("upmlib"), 2);
  EXPECT_EQ(sink.num_lanes(), 3u);
  EXPECT_EQ(sink.lane_name(1), "kernel");
  EXPECT_TRUE(sink.empty());
}

TEST(TraceSink, PhaseInterningReservesZeroAndDeduplicates) {
  TraceSink sink;
  EXPECT_EQ(sink.phase_name(0), "");
  const std::uint32_t a = sink.intern_phase("x_solve");
  const std::uint32_t b = sink.intern_phase("y_solve");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(sink.intern_phase("x_solve"), a);
  EXPECT_EQ(sink.num_phases(), 3u);
  EXPECT_EQ(sink.phase_name(a), "x_solve");
}

TEST(TraceSink, EmitStampsContextAndPerLaneSeq) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  sink.set_iteration(7);
  sink.set_phase(sink.intern_phase("z_solve"));
  sink.emit(lane, at(100, EventKind::kPageMigration));
  sink.emit(lane, at(200, EventKind::kPageMigration));
  const std::vector<TraceEvent>& events = sink.lane_events(lane);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[0].lane, lane);
  EXPECT_EQ(events[0].iteration, 7u);
  EXPECT_EQ(events[0].phase, 1u);
}

TEST(TraceSink, EmitNowUsesSinkClock) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  sink.set_now(12345);
  sink.emit_now(lane, at(0, EventKind::kDaemonScan));
  EXPECT_EQ(sink.lane_events(lane)[0].time, 12345u);
}

TEST(TraceSink, CanonicalOrderSortsByTimeThenLaneThenSeq) {
  TraceSink sink;
  const std::uint16_t l0 = sink.register_lane("first");
  const std::uint16_t l1 = sink.register_lane("second");
  // Emitted "out of order" on purpose: lane 1 gets its events first
  // (as a later-scheduled host thread would), and times interleave.
  sink.emit(l1, at(50, EventKind::kRegionBegin));
  sink.emit(l1, at(50, EventKind::kRegionEnd));
  sink.emit(l1, at(10, EventKind::kBarrierWait));
  sink.emit(l0, at(50, EventKind::kPageMigration));
  sink.emit(l0, at(5, EventKind::kQueueSample));
  const std::vector<TraceEvent> events = sink.canonical_events();
  ASSERT_EQ(events.size(), 5u);
  // (5, l0), (10, l1), then the time-50 tie broken by lane, then by
  // per-lane seq within lane 1.
  EXPECT_EQ(events[0].kind, EventKind::kQueueSample);
  EXPECT_EQ(events[1].kind, EventKind::kBarrierWait);
  EXPECT_EQ(events[2].kind, EventKind::kPageMigration);
  EXPECT_EQ(events[3].kind, EventKind::kRegionBegin);
  EXPECT_EQ(events[4].kind, EventKind::kRegionEnd);
  EXPECT_LT(events[3].seq, events[4].seq);
}

TEST(TraceSink, HostEmissionOrderDoesNotChangeCanonicalOrder) {
  // The same simulated events appended in two different host orders
  // (serial vs "work-stolen") must canonicalize identically. This is
  // the property the --jobs determinism suite leans on.
  const auto build = [](bool swap_host_order) {
    auto sink = std::make_unique<TraceSink>();
    const std::uint16_t a = sink->register_lane("a");
    const std::uint16_t b = sink->register_lane("b");
    if (swap_host_order) {
      sink->emit(b, at(20, EventKind::kRegionEnd));
      sink->emit(a, at(10, EventKind::kRegionBegin));
      sink->emit(a, at(20, EventKind::kPageMigration));
    } else {
      sink->emit(a, at(10, EventKind::kRegionBegin));
      sink->emit(a, at(20, EventKind::kPageMigration));
      sink->emit(b, at(20, EventKind::kRegionEnd));
    }
    return sink;
  };
  const auto serial = build(false);
  const auto stolen = build(true);
  EXPECT_EQ(canonical_dump(*serial), canonical_dump(*stolen));
  EXPECT_EQ(digest(*serial), digest(*stolen));
}

TEST(TraceSink, ClearDropsEventsButKeepsLanesAndPhases) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  const std::uint32_t phase = sink.intern_phase("cold");
  sink.emit(lane, at(1, EventKind::kRegionBegin));
  ASSERT_EQ(sink.size(), 1u);
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.num_lanes(), 1u);
  EXPECT_EQ(sink.phase_name(phase), "cold");
}

TEST(EventKindNames, StableLowercaseIdentifiers) {
  EXPECT_STREQ(event_kind_name(EventKind::kRegionBegin), "region_begin");
  EXPECT_STREQ(event_kind_name(EventKind::kPageMigration),
               "page_migration");
  EXPECT_STREQ(event_kind_name(EventKind::kUpmCall), "upm_call");
  EXPECT_STREQ(event_kind_name(EventKind::kIterationEnd), "iteration_end");
}

TEST(CanonicalDump, RendersHeaderTablesAndEventLines) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("kernel");
  sink.set_phase(sink.intern_phase("z_solve"));
  sink.set_iteration(2);
  TraceEvent ev = at(1500, EventKind::kPageMigration);
  ev.page = 42;
  ev.src = 0;
  ev.dst = 3;
  ev.cost = 25000;
  sink.emit(lane, ev);

  const std::string dump = canonical_dump(sink);
  EXPECT_EQ(dump,
            "# repro-trace v1\n"
            "lane 0 kernel\n"
            "phase 1 z_solve\n"
            "1500 page_migration lane=0 seq=0 it=2 ph=1 node=-1 src=0 "
            "dst=3 page=42 a=0 b=0 cost=25000\n");
}

TEST(CanonicalDump, RoundTripsThroughWriteCanonical) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  sink.emit(lane, at(7, EventKind::kQueueSample));
  std::ostringstream os;
  write_canonical(os, sink);
  EXPECT_EQ(os.str(), canonical_dump(sink));
}

TEST(Digest, MatchesFnv1aReferenceValues) {
  // FNV-1a 64 reference vectors (offset basis, and the published "a").
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Digest, SixteenHexDigitsStableAndSensitive) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("test");
  sink.emit(lane, at(10, EventKind::kPageMigration));
  const std::string d1 = digest(sink);
  EXPECT_EQ(d1.size(), 16u);
  EXPECT_EQ(d1.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(digest(sink), d1);  // stable across calls

  TraceSink other;
  const std::uint16_t olane = other.register_lane("test");
  TraceEvent ev = at(10, EventKind::kPageMigration);
  ev.page = 1;  // one payload field differs
  other.emit(olane, ev);
  EXPECT_NE(digest(other), d1);
}

TEST(ChromeTrace, EmitsRegionBarrierCounterAndInstantEvents) {
  TraceSink sink;
  const std::uint16_t lane = sink.register_lane("runtime");
  sink.set_phase(sink.intern_phase("conj_grad"));
  sink.emit(lane, at(1000, EventKind::kRegionBegin));
  TraceEvent wait = at(5000, EventKind::kBarrierWait);
  wait.node = 2;
  wait.a = 3000;
  sink.emit(lane, wait);
  TraceEvent idle = at(5000, EventKind::kBarrierWait);
  idle.node = 3;
  idle.a = 0;  // zero-length waits are dropped from the viewer
  sink.emit(lane, idle);
  TraceEvent queue = at(5000, EventKind::kQueueSample);
  queue.node = 1;
  queue.a = 250;
  sink.emit(lane, queue);
  sink.emit(lane, at(5000, EventKind::kRegionEnd));
  TraceEvent mig = at(6000, EventKind::kPageMigration);
  mig.page = 9;
  sink.emit(lane, mig);

  std::ostringstream os;
  write_chrome_trace(os, sink);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"conj_grad\""), std::string::npos);
  // Barrier slice: starts at end - wait = 2000 ns = 2 us, tid = node+1.
  EXPECT_NE(json.find("\"ph\": \"X\", \"pid\": 0, \"tid\": 3, "
                      "\"ts\": 2, \"dur\": 3"),
            std::string::npos);
  EXPECT_EQ(json.find("\"tid\": 4"), std::string::npos);  // idle dropped
  EXPECT_NE(json.find("\"queue_backlog_node1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"page_migration\""), std::string::npos);
  // Crude well-formedness: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Percentile95, NearestRank) {
  EXPECT_EQ(percentile95({}), 0u);
  EXPECT_EQ(percentile95({42}), 42u);
  // n = 20: rank = ceil(0.95 * 20) = 19 -> second largest.
  std::vector<Ns> twenty;
  for (Ns i = 1; i <= 20; ++i) {
    twenty.push_back(i * 10);
  }
  EXPECT_EQ(percentile95(twenty), 190u);
  // Order must not matter (the function sorts its copy).
  EXPECT_EQ(percentile95({30, 10, 20}), 30u);
}

TEST(MetricsRegistry, DerivesPerIterationRowsFromHandBuiltStream) {
  TraceSink sink;
  const std::uint16_t kernel = sink.register_lane("kernel");
  const std::uint16_t upm = sink.register_lane("upmlib");
  const std::uint16_t harness = sink.register_lane("harness");

  sink.set_iteration(1);
  TraceEvent mig = at(100, EventKind::kPageMigration);
  mig.cost = 25000;
  sink.emit(kernel, mig);
  sink.emit(kernel, mig);
  TraceEvent rep = at(150, EventKind::kPageReplication);
  sink.emit(kernel, rep);
  TraceEvent freeze = at(160, EventKind::kPageFreeze);
  sink.emit(upm, freeze);
  TraceEvent call = at(200, EventKind::kUpmCall);
  call.b = 2;  // migrations performed by the call
  call.cost = 60000;
  sink.emit(upm, call);
  TraceEvent wait = at(210, EventKind::kBarrierWait);
  wait.a = 500;
  sink.emit(kernel, wait);
  sink.emit(kernel, wait);
  for (const Ns backlog : {Ns{100}, Ns{200}, Ns{300}}) {
    TraceEvent sample = at(220, EventKind::kQueueSample);
    sample.a = backlog;
    sink.emit(kernel, sample);
  }
  TraceEvent end = at(250, EventKind::kIterationEnd);
  end.a = 30;  // remote miss lines
  end.b = 70;  // local miss lines
  sink.emit(harness, end);

  sink.set_iteration(2);
  TraceEvent scan = at(300, EventKind::kDaemonScan);
  scan.a = static_cast<std::uint64_t>(DaemonDecision::kMigrated);
  sink.emit(kernel, scan);
  TraceEvent suppressed = at(310, EventKind::kDaemonScan);
  suppressed.a =
      static_cast<std::uint64_t>(DaemonDecision::kSuppressedFrozen);
  sink.emit(kernel, suppressed);
  TraceEvent end2 = at(350, EventKind::kIterationEnd);
  end2.a = 10;
  end2.b = 90;
  sink.emit(harness, end2);

  const MetricsRegistry registry(sink);
  ASSERT_EQ(registry.per_iteration().size(), 2u);
  const IterationMetrics& it1 = registry.per_iteration()[0];
  EXPECT_EQ(it1.iteration, 1u);
  EXPECT_EQ(it1.migrations, 2u);
  EXPECT_EQ(it1.migration_cost, 50000u);
  EXPECT_EQ(it1.upm_migrations, 2u);
  EXPECT_EQ(it1.daemon_migrations, 0u);
  EXPECT_EQ(it1.replications, 1u);
  EXPECT_EQ(it1.freezes, 1u);
  EXPECT_EQ(it1.barrier_wait, 1000u);
  EXPECT_EQ(it1.queue_backlog_p95, 300u);
  EXPECT_EQ(it1.remote_miss_lines, 30u);
  EXPECT_EQ(it1.local_miss_lines, 70u);
  EXPECT_DOUBLE_EQ(it1.remote_ratio(), 0.3);

  const IterationMetrics& it2 = registry.per_iteration()[1];
  EXPECT_EQ(it2.iteration, 2u);
  EXPECT_EQ(it2.migrations, 0u);
  // Only the kMigrated decision counts; suppressions do not.
  EXPECT_EQ(it2.daemon_migrations, 1u);
  EXPECT_EQ(it2.queue_backlog_p95, 0u);
  EXPECT_DOUBLE_EQ(it2.remote_ratio(), 0.1);

  const IterationMetrics totals = registry.totals();
  EXPECT_EQ(totals.migrations, 2u);
  EXPECT_EQ(totals.daemon_migrations, 1u);
  EXPECT_EQ(totals.remote_miss_lines, 40u);
  EXPECT_EQ(totals.local_miss_lines, 160u);

  EXPECT_EQ(registry.migrations_per_timed_iteration(),
            (std::vector<std::uint64_t>{2, 0}));
}

TEST(MetricsRegistry, EmptyTraceYieldsNoRows) {
  TraceSink sink;
  sink.register_lane("test");
  const MetricsRegistry registry(sink);
  EXPECT_TRUE(registry.per_iteration().empty());
  EXPECT_TRUE(registry.migrations_per_timed_iteration().empty());
  EXPECT_EQ(registry.totals().migrations, 0u);
  EXPECT_DOUBLE_EQ(registry.totals().remote_ratio(), 0.0);
}

harness::RunConfig tiny_config(const std::string& benchmark) {
  harness::RunConfig config;
  config.benchmark = benchmark;
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  return config;
}

TEST(TracingOff, NoSinkNoDigestNoMetrics) {
  const harness::RunResult result = run_benchmark(tiny_config("CG"));
  EXPECT_EQ(result.trace, nullptr);
  EXPECT_TRUE(result.trace_digest.empty());
  EXPECT_TRUE(result.iteration_metrics.empty());
}

TEST(TracingOn, DoesNotPerturbTheSimulation) {
  // Tracing must be pure observation: the simulated timeline with the
  // sink attached is bit-identical to the untraced run.
  harness::RunConfig config = tiny_config("CG");
  config.upm_mode = nas::UpmMode::kDistribution;
  const harness::RunResult off = run_benchmark(config);
  config.trace = true;
  const harness::RunResult on = run_benchmark(config);
  EXPECT_EQ(off.total, on.total);
  EXPECT_EQ(off.iteration_times, on.iteration_times);
  EXPECT_EQ(off.memory_totals.remote_miss_lines,
            on.memory_totals.remote_miss_lines);
  ASSERT_NE(on.trace, nullptr);
  EXPECT_FALSE(on.trace->empty());
  EXPECT_EQ(on.trace_digest.size(), 16u);
  EXPECT_FALSE(on.iteration_metrics.empty());
}

TEST(TracingOn, DigestIdenticalAcrossConsecutiveRuns) {
  harness::RunConfig config = tiny_config("BT");
  config.trace = true;
  const harness::RunResult a = run_benchmark(config);
  const harness::RunResult b = run_benchmark(config);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_EQ(canonical_dump(*a.trace), canonical_dump(*b.trace));
}

TEST(TracingOn, IterationMetricsCoverTimedIterations) {
  harness::RunConfig config = tiny_config("MG");
  config.trace = true;
  const harness::RunResult result = run_benchmark(config);
  ASSERT_FALSE(result.iteration_metrics.empty());
  // The cold start is cleared, so the first row is timed iteration 1.
  EXPECT_GE(result.iteration_metrics.front().iteration, 1u);
  EXPECT_EQ(result.iteration_metrics.back().iteration, 2u);
  std::uint64_t miss_lines = 0;
  for (const IterationMetrics& m : result.iteration_metrics) {
    miss_lines += m.remote_miss_lines + m.local_miss_lines;
  }
  EXPECT_GT(miss_lines, 0u);
}

}  // namespace
}  // namespace repro::trace
