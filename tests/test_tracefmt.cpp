// Trace-format and replay-frontend tests: RTRC encode/decode round
// trips (including a randomized RegionProgram fuzz), corruption
// rejection, the SPSC ring buffer, pipelined-vs-serial replay
// equivalence, and the harness-level replay path (dry dump == live
// dump, golden-cell byte identity, error cases).
//
// Suite naming matters for CI: TraceFmt, RingBuffer and PipelineReplay
// also run under the TSan leg (they exercise the producer/consumer
// pair); ReplayGolden and ReplayHarness are plain-leg only.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/common/ring_buffer.hpp"
#include "repro/common/rng.hpp"
#include "repro/harness/run.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/sim/engine.hpp"
#include "repro/sim/program.hpp"
#include "repro/sim/region.hpp"
#include "repro/sim/trace_recorder.hpp"
#include "repro/sim/trace_replayer.hpp"
#include "repro/topology/topology.hpp"
#include "repro/tracefmt/reader.hpp"
#include "repro/tracefmt/writer.hpp"
#include "repro/trace/metrics.hpp"

namespace repro {
namespace {

using sim::RegionBuilder;
using sim::RegionProgram;
using sim::ReplayItem;
using sim::TraceRecorder;
using sim::TraceReplayer;

/// Unique-per-test temp path, removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& stem)
      : path(std::string(::testing::TempDir()) + stem) {}
  ~TempFile() { std::remove(path.c_str()); }
};

tracefmt::TraceMeta small_meta(std::uint32_t num_threads = 4) {
  tracefmt::TraceMeta meta;
  meta.benchmark = "XX";
  meta.source_label = "ft-base";
  meta.num_procs = num_threads;
  meta.num_threads = num_threads;
  meta.iterations = 1;
  meta.page_size = 16384;
  meta.allocations.push_back(tracefmt::TraceAllocation{"a", 0, 512});
  meta.hot_ranges.push_back(tracefmt::TraceRange{16, 32});
  return meta;
}

/// A deterministic pseudo-random compiled region: accesses (some
/// positioned, some streamed, negative page deltas guaranteed by
/// jumping between two distant bases) plus pure-compute ops.
RegionProgram random_program(Rng& rng, std::uint32_t num_threads) {
  RegionBuilder builder(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    const std::uint64_t ops = 1 + rng.next_below(40);
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t kind = rng.next_below(4);
      const VPage page(rng.next_below(2) == 0 ? rng.next_below(64)
                                              : 100000 + rng.next_below(64));
      const auto lines = static_cast<std::uint32_t>(1 + rng.next_below(8));
      const bool write = rng.next_below(2) == 0;
      const Ns compute = static_cast<Ns>(rng.next_below(500));
      if (kind == 0) {
        builder.compute(ThreadId(t), compute + 1);
      } else if (kind == 1) {
        builder.access_at(ThreadId(t), page,
                          static_cast<std::uint32_t>(rng.next_below(8)),
                          lines, write, compute);
      } else {
        builder.access(ThreadId(t), page, lines, write, compute,
                       /*stream=*/kind == 3);
      }
    }
  }
  return RegionProgram::compile(std::move(builder));
}

void expect_columns_equal(const RegionProgram& a, const RegionProgram& b) {
  const RegionProgram::ColumnView ca = a.columns();
  const RegionProgram::ColumnView cb = b.columns();
  ASSERT_EQ(ca.num_threads, cb.num_threads);
  ASSERT_EQ(ca.size, cb.size);
  EXPECT_EQ(ca.max_access_lines, cb.max_access_lines);
  EXPECT_EQ(ca.max_line_begin, cb.max_line_begin);
  for (std::uint32_t t = 0; t <= ca.num_threads; ++t) {
    ASSERT_EQ(ca.offsets[t], cb.offsets[t]) << "offset " << t;
  }
  for (std::uint32_t i = 0; i < ca.size; ++i) {
    EXPECT_EQ(ca.pages[i], cb.pages[i]) << "op " << i;
    EXPECT_EQ(ca.compute[i], cb.compute[i]) << "op " << i;
    EXPECT_EQ(ca.lines[i], cb.lines[i]) << "op " << i;
    EXPECT_EQ(ca.line_begin[i], cb.line_begin[i]) << "op " << i;
    EXPECT_EQ(ca.flags[i], cb.flags[i]) << "op " << i;
  }
}

/// Records `programs` (one region each, identity binding) into `path`.
tracefmt::WriterStats record_programs(
    const std::string& path, const tracefmt::TraceMeta& meta,
    const std::vector<const RegionProgram*>& programs,
    std::size_t chunk_target_bytes = 256 * 1024) {
  tracefmt::TraceWriter writer(path, meta, chunk_target_bytes);
  writer.cold_begin();
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const RegionProgram::ColumnView view = programs[i]->columns();
    tracefmt::RegionColumns columns;
    columns.pages = view.pages;
    columns.compute = view.compute;
    columns.lines = view.lines;
    columns.line_begin = view.line_begin;
    columns.flags = view.flags;
    columns.offsets = view.offsets;
    columns.num_threads = view.num_threads;
    columns.size = view.size;
    columns.max_access_lines = view.max_access_lines;
    columns.max_line_begin = view.max_line_begin;
    writer.region("region_" + std::to_string(i % 3), {}, columns);
    writer.advance(static_cast<Ns>(17 + i));
  }
  return writer.finish();
}

/// Replays every kRegion item of `path` back as programs.
std::vector<RegionProgram> replayed_programs(const std::string& path,
                                             bool pipeline = false) {
  TraceReplayer::Options options;
  options.pipeline = pipeline;
  TraceReplayer replayer(path, options);
  std::vector<RegionProgram> out;
  ReplayItem item;
  while (replayer.next(item)) {
    if (item.kind == ReplayItem::Kind::kRegion) {
      out.push_back(std::move(item.program));
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// TraceFmt: encoding primitives and file-level round trips.

TEST(TraceFmt, VarintAndZigzagRoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0,   1,    127,        128,
                                  300, 1u << 21, 1ull << 63, UINT64_MAX};
  for (const std::uint64_t v : values) {
    tracefmt::put_varint(buf, v);
  }
  const std::int64_t svalues[] = {0, -1, 1, -64, 64, -99, INT64_MIN,
                                  INT64_MAX};
  for (const std::int64_t v : svalues) {
    tracefmt::put_svarint(buf, v);
  }
  tracefmt::Cursor c{buf.data(), buf.size(), 0};
  for (const std::uint64_t v : values) {
    EXPECT_EQ(c.varint(), v);
  }
  for (const std::int64_t v : svalues) {
    EXPECT_EQ(c.svarint(), v);
  }
  EXPECT_TRUE(c.done());
}

TEST(TraceFmt, CursorRejectsTruncationAndOverlongVarints) {
  std::vector<std::uint8_t> buf;
  tracefmt::put_varint(buf, 1u << 20);
  tracefmt::Cursor truncated{buf.data(), buf.size() - 1, 0};
  EXPECT_THROW(truncated.varint(), tracefmt::TraceError);
  const std::vector<std::uint8_t> overlong(11, 0x80);
  tracefmt::Cursor c{overlong.data(), overlong.size(), 0};
  EXPECT_THROW(c.varint(), tracefmt::TraceError);
}

TEST(TraceFmt, WriterReaderRoundTripPreservesEverything) {
  Rng rng(7);
  const RegionProgram program = random_program(rng, 4);
  TempFile file("roundtrip.rtrc");
  const tracefmt::TraceMeta meta = small_meta();
  const tracefmt::WriterStats stats =
      record_programs(file.path, meta, {&program});
  EXPECT_EQ(stats.regions, 1u);
  EXPECT_GT(stats.bytes, 0u);

  tracefmt::TraceReader reader(file.path);
  EXPECT_EQ(reader.meta().benchmark, meta.benchmark);
  EXPECT_EQ(reader.meta().source_label, meta.source_label);
  EXPECT_EQ(reader.meta().num_procs, meta.num_procs);
  EXPECT_EQ(reader.meta().page_size, meta.page_size);
  ASSERT_EQ(reader.meta().allocations.size(), 1u);
  EXPECT_EQ(reader.meta().allocations[0].name, "a");
  EXPECT_EQ(reader.meta().allocations[0].pages, 512u);
  ASSERT_EQ(reader.meta().hot_ranges.size(), 1u);
  EXPECT_EQ(reader.meta().hot_ranges[0].first_page, 16u);
  // op_count tallies simulated region ops; markers/advances carry none.
  EXPECT_EQ(reader.total_ops(), program.size());
  EXPECT_EQ(reader.name(0), "region_0");

  const std::vector<RegionProgram> back = replayed_programs(file.path);
  ASSERT_EQ(back.size(), 1u);
  expect_columns_equal(program, back[0]);
}

TEST(TraceFmt, FuzzRandomProgramsRoundTripExactly) {
  Rng rng(20260808);
  for (int round = 0; round < 25; ++round) {
    const auto num_threads = static_cast<std::uint32_t>(
        1 + rng.next_below(8));
    std::vector<RegionProgram> programs;
    const std::uint64_t count = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      programs.push_back(random_program(rng, num_threads));
    }
    std::vector<const RegionProgram*> ptrs;
    for (const RegionProgram& p : programs) {
      ptrs.push_back(&p);
    }
    TempFile file("fuzz.rtrc");
    // Tiny chunk target: multi-chunk files and per-record delta-baseline
    // resets are exercised by construction.
    record_programs(file.path, small_meta(num_threads), ptrs,
                    /*chunk_target_bytes=*/round % 2 == 0 ? 128 : 256 * 1024);
    const std::vector<RegionProgram> back = replayed_programs(file.path);
    ASSERT_EQ(back.size(), programs.size()) << "round " << round;
    for (std::size_t i = 0; i < back.size(); ++i) {
      expect_columns_equal(programs[i], back[i]);
    }
  }
}

/// Minimal deterministic backend: pages home round-robin by number.
class HomeByPage final : public memsys::MemoryBackend {
 public:
  explicit HomeByPage(std::size_t nodes) : nodes_(nodes) {}
  memsys::HomeInfo resolve(ProcId, VPage page, bool) override {
    return {NodeId(static_cast<std::uint32_t>(page.value() % nodes_)),
            FrameId(page.value())};
  }
  Ns on_miss(ProcId, VPage, const memsys::HomeInfo&, std::uint32_t,
             Ns) override {
    return 0;
  }

 private:
  std::size_t nodes_;
};

TEST(TraceFmt, FuzzReplayedProgramSimulatesIdentically) {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 4096;
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    const RegionProgram program = random_program(rng, 4);
    TempFile file("fuzz_sim.rtrc");
    record_programs(file.path, small_meta(), {&program});
    std::vector<RegionProgram> back = replayed_programs(file.path);
    ASSERT_EQ(back.size(), 1u);

    // Same machine, same start time: the replayed program must produce
    // bit-identical timing and per-processor statistics.
    topo::FatHypercube topo_a(4);
    HomeByPage backend_a(4);
    memsys::MemorySystem mem_a(config, topo_a, backend_a);
    sim::Engine engine_a(mem_a);
    const sim::RegionResult ra = engine_a.run(1000, program);
    topo::FatHypercube topo_b(4);
    HomeByPage backend_b(4);
    memsys::MemorySystem mem_b(config, topo_b, backend_b);
    sim::Engine engine_b(mem_b);
    const sim::RegionResult rb = engine_b.run(1000, back[0]);
    EXPECT_EQ(ra.end, rb.end) << "round " << round;
    const memsys::ProcStats sa = mem_a.total_stats();
    const memsys::ProcStats sb = mem_b.total_stats();
    EXPECT_EQ(sa.hit_lines, sb.hit_lines);
    EXPECT_EQ(sa.local_miss_lines, sb.local_miss_lines);
    EXPECT_EQ(sa.remote_miss_lines, sb.remote_miss_lines);
    EXPECT_EQ(sa.queue_wait, sb.queue_wait);
  }
}

TEST(TraceFmt, MultiChunkFilesSupportRandomChunkAccess) {
  Rng rng(3);
  std::vector<RegionProgram> programs;
  for (int i = 0; i < 12; ++i) {
    programs.push_back(random_program(rng, 3));
  }
  std::vector<const RegionProgram*> ptrs;
  for (const RegionProgram& p : programs) {
    ptrs.push_back(&p);
  }
  TempFile file("chunks.rtrc");
  const tracefmt::WriterStats stats = record_programs(
      file.path, small_meta(3), ptrs, /*chunk_target_bytes=*/64);
  EXPECT_GT(stats.chunks, 4u);

  tracefmt::TraceReader reader(file.path);
  ASSERT_EQ(reader.num_chunks(), stats.chunks);
  // Decode chunks backwards: each chunk is independently decodable.
  std::uint64_t records = 0;
  std::uint64_t ops = 0;
  std::vector<tracefmt::Record> out;
  for (std::size_t i = reader.num_chunks(); i > 0; --i) {
    reader.decode_chunk(i - 1, out);
    records += out.size();
    EXPECT_EQ(out.size(), reader.chunk(i - 1).record_count);
    for (const tracefmt::Record& r : out) {
      if (r.kind == tracefmt::RecordKind::kRegion) {
        ops += r.region.size();
      }
    }
  }
  EXPECT_EQ(records, stats.records);
  EXPECT_EQ(ops, stats.ops);
  EXPECT_EQ(reader.total_records(), stats.records);
  EXPECT_EQ(reader.total_ops(), stats.ops);
}

TEST(TraceFmt, StreamReaderDecodesPipesWithoutTheFooter) {
  Rng rng(11);
  std::vector<RegionProgram> programs;
  for (int i = 0; i < 6; ++i) {
    programs.push_back(random_program(rng, 2));
  }
  std::vector<const RegionProgram*> ptrs;
  for (const RegionProgram& p : programs) {
    ptrs.push_back(&p);
  }
  TempFile file("stream.rtrc");
  const tracefmt::WriterStats stats =
      record_programs(file.path, small_meta(2), ptrs,
                      /*chunk_target_bytes=*/128);

  std::ifstream in(file.path, std::ios::binary);
  ASSERT_TRUE(in.good());
  tracefmt::StreamReader stream(in);
  EXPECT_EQ(stream.meta().benchmark, "XX");
  std::uint64_t records = 0;
  std::vector<tracefmt::Record> out;
  bool saw_region_name = false;
  while (stream.next_chunk(out)) {
    records += out.size();
    for (const tracefmt::Record& r : out) {
      if (r.kind == tracefmt::RecordKind::kRegion) {
        saw_region_name =
            saw_region_name || stream.name(r.region.name_id) == "region_0";
      }
    }
  }
  EXPECT_EQ(records, stats.records);
  EXPECT_TRUE(saw_region_name);
}

TEST(TraceFmt, RejectsTruncationCorruptionAndBadMagic) {
  Rng rng(5);
  const RegionProgram program = random_program(rng, 4);
  TempFile file("corrupt.rtrc");
  record_programs(file.path, small_meta(), {&program});

  std::ifstream in(file.path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const auto write_variant = [&](const std::vector<char>& data) {
    std::ofstream out(file.path + ".v", std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  TempFile variant("corrupt.rtrc.v");

  // Truncated at every structurally interesting prefix length.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, std::size_t{40},
        bytes.size() / 2, bytes.size() - 1}) {
    write_variant(std::vector<char>(bytes.begin(),
                                    bytes.begin() +
                                        static_cast<std::ptrdiff_t>(keep)));
    EXPECT_THROW(tracefmt::TraceReader reader(variant.path),
                 tracefmt::TraceError)
        << "keep=" << keep;
  }

  // Flip one payload byte: the chunk digest check must reject it.
  {
    std::vector<char> flipped = bytes;
    flipped[sizeof(tracefmt::FileHeader) + 60] ^= 0x40;
    write_variant(flipped);
    tracefmt::TraceReader reader(variant.path);
    std::vector<tracefmt::Record> out;
    EXPECT_THROW(reader.decode_chunk(0, out), tracefmt::TraceError);
  }

  // Break the file magic.
  {
    std::vector<char> bad = bytes;
    bad[0] = 'X';
    write_variant(bad);
    EXPECT_THROW(tracefmt::TraceReader reader(variant.path),
                 tracefmt::TraceError);
  }
}

// ---------------------------------------------------------------------
// RingBuffer: the SPSC primitive under the pipelined replayer.

TEST(RingBuffer, SingleThreadPushPopPreservesOrderAndCapacity) {
  RingBuffer<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  int v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(ring.try_push(item)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(RingBuffer, MoveOnlyItemsMoveThroughWholeOnSuccess) {
  RingBuffer<std::unique_ptr<int>> ring(2);
  auto a = std::make_unique<int>(7);
  ASSERT_TRUE(ring.try_push(a));
  EXPECT_EQ(a, nullptr);  // consumed
  auto b = std::make_unique<int>(8);
  auto c = std::make_unique<int>(9);
  ASSERT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_NE(c, nullptr);  // failed push leaves the item intact
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(RingBuffer, TwoThreadStressDeliversEveryItemInOrder) {
  constexpr int kItems = 200000;
  RingBuffer<int> ring(64);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) {
      int item = i;
      while (!ring.try_push(item)) {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int v = -1;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  int leftover = -1;
  EXPECT_FALSE(ring.try_pop(leftover));
}

// ---------------------------------------------------------------------
// PipelineReplay: producer-thread decode vs serial decode.

TEST(PipelineReplay, PipelinedItemStreamIsIdenticalToSerial) {
  Rng rng(13);
  std::vector<RegionProgram> programs;
  for (int i = 0; i < 10; ++i) {
    programs.push_back(random_program(rng, 4));
  }
  std::vector<const RegionProgram*> ptrs;
  for (const RegionProgram& p : programs) {
    ptrs.push_back(&p);
  }
  TempFile file("pipeline.rtrc");
  record_programs(file.path, small_meta(), ptrs,
                  /*chunk_target_bytes=*/256);

  TraceReplayer serial(file.path);
  TraceReplayer::Options options;
  options.pipeline = true;
  options.ring_capacity = 4;  // tiny: force producer/consumer handoff
  TraceReplayer pipelined(file.path, options);

  ReplayItem a;
  ReplayItem b;
  std::size_t items = 0;
  for (;;) {
    const bool more_a = serial.next(a);
    const bool more_b = pipelined.next(b);
    ASSERT_EQ(more_a, more_b) << "stream lengths diverge at item " << items;
    if (!more_a) {
      break;
    }
    ++items;
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    EXPECT_EQ(a.step, b.step);
    EXPECT_EQ(a.ns, b.ns);
    EXPECT_EQ(a.name_id, b.name_id);
    EXPECT_EQ(a.binding, b.binding);
    if (a.kind == ReplayItem::Kind::kRegion) {
      expect_columns_equal(a.program, b.program);
    }
  }
  EXPECT_EQ(items, 21u);  // cold marker + 10 regions + 10 advances
}

TEST(PipelineReplay, ProducerDecodeErrorRethrownAtNext) {
  Rng rng(17);
  const RegionProgram program = random_program(rng, 4);
  TempFile file("pipeline_err.rtrc");
  record_programs(file.path, small_meta(), {&program});
  // Corrupt the chunk payload but keep header/footer/table intact: the
  // reader constructs fine, the producer's decode_chunk throws.
  {
    std::fstream f(file.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(sizeof(tracefmt::FileHeader)) + 70);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x20);
    f.write(&b, 1);
  }
  TraceReplayer::Options options;
  options.pipeline = true;
  TraceReplayer replayer(file.path, options);
  ReplayItem item;
  EXPECT_THROW(
      {
        while (replayer.next(item)) {
        }
      },
      tracefmt::TraceError);
}

TEST(PipelineReplay, DestructionWithUnconsumedItemsDoesNotHang) {
  Rng rng(19);
  std::vector<RegionProgram> programs;
  for (int i = 0; i < 20; ++i) {
    programs.push_back(random_program(rng, 4));
  }
  std::vector<const RegionProgram*> ptrs;
  for (const RegionProgram& p : programs) {
    ptrs.push_back(&p);
  }
  TempFile file("pipeline_drop.rtrc");
  record_programs(file.path, small_meta(), ptrs, 256);
  TraceReplayer::Options options;
  options.pipeline = true;
  options.ring_capacity = 2;  // producer will block mid-trace
  {
    TraceReplayer replayer(file.path, options);
    ReplayItem item;
    ASSERT_TRUE(replayer.next(item));  // consume one, abandon the rest
  }
  SUCCEED();
}

// ---------------------------------------------------------------------
// ReplayHarness: the harness-level dump/replay path and its contracts.

harness::RunConfig tiny_config(const std::string& placement, bool upmlib) {
  harness::RunConfig config;
  config.benchmark = "CG";
  config.placement = placement;
  config.iterations = 3;
  config.workload.size_scale = 0.25;
  if (upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  return config;
}

TEST(ReplayHarness, ConflictingFrontendConfigsRejected) {
  TempFile file("conflict.rtrc");
  {
    harness::RunConfig config = tiny_config("rr", false);
    config.trace_out = file.path;
    config.replay = file.path;
    EXPECT_THROW(harness::run_benchmark(config), ContractViolation);
  }
  {
    harness::RunConfig config = tiny_config("rr", false);
    config.pipeline = true;  // pipeline without replay
    EXPECT_THROW(harness::run_benchmark(config), ContractViolation);
  }
  {
    harness::RunConfig config = tiny_config("rr", false);
    config.benchmark = "BT";
    config.upm_mode = nas::UpmMode::kRecordReplay;
    config.trace_out = file.path;
    EXPECT_THROW(harness::run_benchmark(config), ContractViolation);
    EXPECT_THROW(harness::dump_trace(config, file.path), ContractViolation);
  }
}

TEST(ReplayHarness, DryDumpIsByteIdenticalToLiveDump) {
  TempFile dry("dry.rtrc");
  TempFile live("live.rtrc");
  const harness::TraceDumpStats stats =
      harness::dump_trace(tiny_config("rr", false), dry.path);
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(stats.ops, 0u);
  EXPECT_GT(stats.regions, 0u);
  EXPECT_EQ(stats.iterations, 3u);

  harness::RunConfig config = tiny_config("rr", false);
  config.trace_out = live.path;
  (void)harness::run_benchmark(config);

  std::ifstream a(dry.path, std::ios::binary);
  std::ifstream b(live.path, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(stats.bytes, bytes_a.size());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(ReplayHarness, ReplayOnMismatchedMachineRejected) {
  TempFile file("mismatch.rtrc");
  (void)harness::dump_trace(tiny_config("rr", false), file.path);
  harness::RunConfig config = tiny_config("rr", false);
  config.replay = file.path;
  config.machine.num_nodes = 8;  // trace was dumped for 16
  EXPECT_THROW(harness::run_benchmark(config), ContractViolation);
}

TEST(ReplayHarness, ReplayResultCarriesTheTraceBenchmarkName) {
  TempFile file("name.rtrc");
  (void)harness::dump_trace(tiny_config("rr", false), file.path);
  harness::RunConfig config = tiny_config("wc", true);
  config.benchmark = "ignored";
  config.replay = file.path;
  const harness::RunResult result = harness::run_benchmark(config);
  EXPECT_EQ(result.benchmark, "CG");
  EXPECT_EQ(result.label, "wc-upmlib");
  EXPECT_EQ(result.iteration_times.size(), 3u);
}

// ---------------------------------------------------------------------
// ReplayGolden: every golden cell replays byte-identically.

std::vector<std::uint64_t> migration_vector(const harness::RunResult& r) {
  std::vector<std::uint64_t> out;
  for (const trace::IterationMetrics& m : r.iteration_metrics) {
    if (m.iteration >= 1) {
      out.push_back(m.migrations);
    }
  }
  return out;
}

// One TEST on purpose (mirrors GoldenTrace): the full 30-cell matrix
// runs once directly and once through trace replay, reusing one dry
// dump per benchmark, and every cell must agree on digest and
// migration vector.
TEST(ReplayGolden, EveryGoldenCellReplaysByteIdentically) {
  std::vector<TempFile> dumps;
  // TempFile removes its path on destruction, so reallocation-driven
  // copies must never happen.
  dumps.reserve(nas::workload_names().size());
  std::vector<harness::RunConfig> direct;
  std::vector<harness::RunConfig> replayed;
  for (const auto& benchmark : nas::workload_names()) {
    harness::RunConfig dump_config = tiny_config("ft", false);
    dump_config.benchmark = benchmark;
    dumps.emplace_back("golden_" + benchmark + ".rtrc");
    (void)harness::dump_trace(dump_config, dumps.back().path);
    for (const std::string placement : {"ft", "rr", "wc"}) {
      for (const bool upmlib : {false, true}) {
        harness::RunConfig config = tiny_config(placement, upmlib);
        config.benchmark = benchmark;
        config.trace = true;
        direct.push_back(config);
        config.replay = dumps.back().path;
        replayed.push_back(config);
      }
    }
  }
  const std::vector<harness::RunResult> direct_results =
      harness::run_experiments(direct, 4);
  const std::vector<harness::RunResult> replay_results =
      harness::run_experiments(replayed, 4);
  ASSERT_EQ(direct_results.size(), replay_results.size());
  for (std::size_t i = 0; i < direct_results.size(); ++i) {
    const std::string key =
        direct_results[i].benchmark + " " + direct_results[i].label;
    ASSERT_EQ(direct_results[i].trace_digest.size(), 16u) << key;
    EXPECT_EQ(replay_results[i].trace_digest,
              direct_results[i].trace_digest)
        << key << ": replay diverges from direct simulation";
    EXPECT_EQ(migration_vector(replay_results[i]),
              migration_vector(direct_results[i]))
        << key;
    EXPECT_EQ(replay_results[i].benchmark, direct_results[i].benchmark)
        << key;
  }
}

}  // namespace
}  // namespace repro
