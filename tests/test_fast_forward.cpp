// A/B validation of the steady-state fast-forward (see
// repro::harness::FastForward): every observable of run_benchmark --
// simulated times, per-iteration vector, region records, all statistic
// blocks, the canonical trace dump and its digest -- must be
// byte-identical whether the timed iterations were simulated in full
// or synthesized by replay. The suite also pins when the fast-forward
// must NOT engage: the kernel daemon's per-page windows hold absolute
// times, so an active-daemon run never revisits a digest.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "repro/harness/json.hpp"
#include "repro/harness/run.hpp"
#include "repro/trace/export.hpp"

namespace repro::harness {
namespace {

RunConfig cell(const std::string& benchmark, const std::string& placement,
               nas::UpmMode mode) {
  RunConfig config;
  config.benchmark = benchmark;
  config.placement = placement;
  config.upm_mode = mode;
  config.iterations = 12;
  config.workload.size_scale = 0.25;
  config.trace = true;
  return config;
}

std::string canonical_dump(const RunResult& result) {
  std::ostringstream os;
  trace::write_canonical(os, *result.trace);
  return os.str();
}

/// Everything results_to_json covers, with the one intentional
/// difference (simulated vs replayed iteration split) normalized away.
std::string comparable_json(const RunResult& result) {
  RunResult copy = result;
  copy.iterations_simulated = 0;
  copy.iterations_replayed = 0;
  return results_to_json({copy});
}

void expect_identical(const RunConfig& config) {
  RunConfig full = config;
  full.no_fast_forward = true;
  const RunResult replayed = run_benchmark(config);
  const RunResult simulated = run_benchmark(full);
  SCOPED_TRACE(config.benchmark + " " + config.label());

  EXPECT_EQ(simulated.iterations_replayed, 0u);
  EXPECT_EQ(replayed.iterations_simulated + replayed.iterations_replayed,
            config.iterations);

  EXPECT_EQ(replayed.total, simulated.total);
  EXPECT_EQ(replayed.iteration_times, simulated.iteration_times);
  EXPECT_EQ(comparable_json(replayed), comparable_json(simulated));
  EXPECT_EQ(replayed.trace_digest, simulated.trace_digest);
  EXPECT_EQ(canonical_dump(replayed), canonical_dump(simulated));

  ASSERT_EQ(replayed.records.size(), simulated.records.size());
  for (std::size_t i = 0; i < simulated.records.size(); ++i) {
    EXPECT_EQ(replayed.records[i].name, simulated.records[i].name);
    EXPECT_EQ(replayed.records[i].start, simulated.records[i].start);
    EXPECT_EQ(replayed.records[i].end, simulated.records[i].end);
    EXPECT_EQ(replayed.records[i].imbalance, simulated.records[i].imbalance);
  }
}

class FastForwardIdentical
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FastForwardIdentical, BaseCellsReplayAndMatch) {
  for (const std::string benchmark : {"CG", "BT"}) {
    const RunConfig config =
        cell(benchmark, GetParam(), nas::UpmMode::kOff);
    const RunResult result = run_benchmark(config);
    SCOPED_TRACE(benchmark + " " + config.label());
    // No migration engine: the machine state is periodic almost
    // immediately, so most of the run must be synthesized.
    EXPECT_GT(result.iterations_replayed, 0u);
    expect_identical(config);
  }
}

TEST_P(FastForwardIdentical, UpmlibCellsMatch) {
  for (const std::string benchmark : {"CG", "BT"}) {
    expect_identical(
        cell(benchmark, GetParam(), nas::UpmMode::kDistribution));
  }
}

TEST_P(FastForwardIdentical, RecordReplayCellsMatch) {
  // BT only: CG has no record-replay instrumentation. Recorded-replay
  // cells migrate (and undo) every iteration, so the entry gate's
  // zero-migration requirement keeps the fast-forward out -- identity
  // must still hold, trivially.
  expect_identical(cell("BT", GetParam(), nas::UpmMode::kRecordReplay));
}

INSTANTIATE_TEST_SUITE_P(Placements, FastForwardIdentical,
                         ::testing::Values("ft", "rr", "wc"));

TEST(FastForwardGate, ActiveKernelDaemonNeverReplays) {
  RunConfig config = cell("CG", "rr", nas::UpmMode::kOff);
  config.kernel_migration = true;
  const RunResult result = run_benchmark(config);
  // The daemon's per-page reference windows carry absolute open times,
  // so its digest never repeats while it is installed: every iteration
  // must be simulated.
  EXPECT_EQ(result.iterations_replayed, 0u);
  EXPECT_EQ(result.iterations_simulated, config.iterations);
  expect_identical(config);
}

TEST(FastForwardGate, OptOutFlagSimulatesEverything) {
  RunConfig config = cell("CG", "ft", nas::UpmMode::kOff);
  config.no_fast_forward = true;
  const RunResult result = run_benchmark(config);
  EXPECT_EQ(result.iterations_replayed, 0u);
  EXPECT_EQ(result.iterations_simulated, config.iterations);
}

TEST(FastForwardGate, ReplayedSplitIsReportedInJson) {
  const RunConfig config = cell("CG", "rr", nas::UpmMode::kOff);
  const RunResult result = run_benchmark(config);
  ASSERT_GT(result.iterations_replayed, 0u);
  const std::string json = results_to_json({result});
  EXPECT_NE(json.find("\"iterations_simulated\": " +
                      std::to_string(result.iterations_simulated)),
            std::string::npos);
  EXPECT_NE(json.find("\"iterations_replayed\": " +
                      std::to_string(result.iterations_replayed)),
            std::string::npos);
}

}  // namespace
}  // namespace repro::harness
