// Simulation-engine tests: op/program construction and the
// discrete-event interleaving semantics (virtual-time ordering, join
// barrier, contention causality, determinism).
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/sim/engine.hpp"
#include "repro/sim/region.hpp"
#include "repro/topology/topology.hpp"

namespace repro::sim {
namespace {

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 256;
  return config;
}

class HomeByPage final : public memsys::MemoryBackend {
 public:
  explicit HomeByPage(std::size_t nodes) : nodes_(nodes) {}
  memsys::HomeInfo resolve(ProcId, VPage page, bool) override {
    return {NodeId(static_cast<std::uint32_t>(page.value() % nodes_)),
            FrameId(page.value())};
  }
  Ns on_miss(ProcId, VPage, const memsys::HomeInfo&, std::uint32_t,
             Ns) override {
    return 0;
  }

 private:
  std::size_t nodes_;
};

struct Fixture {
  memsys::MachineConfig config = small_config();
  topo::FatHypercube topology{4};
  HomeByPage backend{4};
  memsys::MemorySystem memory{config, topology, backend};
  Engine engine{memory};
};

TEST(Op, Builders) {
  const Op a = Op::access(VPage(3), 16, true, 100, true);
  EXPECT_EQ(a.kind, Op::Kind::kAccess);
  EXPECT_EQ(a.page, VPage(3));
  EXPECT_EQ(a.lines, 16u);
  EXPECT_TRUE(a.write);
  EXPECT_TRUE(a.stream);
  EXPECT_EQ(a.compute, 100u);
  EXPECT_THROW(Op::access(VPage(0), 0, false), ContractViolation);

  const Op c = Op::compute_for(500);
  EXPECT_EQ(c.kind, Op::Kind::kCompute);
  EXPECT_EQ(c.compute, 500u);
}

TEST(RegionBuilder, BuildsPerThreadPrograms) {
  RegionBuilder region(2);
  region.access(ThreadId(0), VPage(1), 4, false);
  region.compute(ThreadId(1), 100);
  region.compute(ThreadId(1), 0);  // zero-duration compute is dropped
  region.access_pages(ThreadId(1), VPage(10), 3, 8, true);
  EXPECT_EQ(region.program(ThreadId(0)).size(), 1u);
  EXPECT_EQ(region.program(ThreadId(1)).size(), 4u);
  EXPECT_EQ(region.total_ops(), 5u);
  EXPECT_THROW(region.access(ThreadId(2), VPage(0), 1, false),
               ContractViolation);
}

TEST(Engine, ComputeOnlyTimingIsExact) {
  Fixture f;
  RegionBuilder region(2);
  region.compute(ThreadId(0), 100);
  region.compute(ThreadId(0), 50);
  region.compute(ThreadId(1), 70);
  const RegionResult r = f.engine.run(1000, std::move(region).take());
  EXPECT_EQ(r.start, 1000u);
  EXPECT_EQ(r.thread_end[0], 1150u);
  EXPECT_EQ(r.thread_end[1], 1070u);
  EXPECT_EQ(r.end, 1150u);  // join barrier = max
  EXPECT_EQ(r.duration(), 150u);
  EXPECT_EQ(f.engine.ops_executed(), 3u);
}

TEST(Engine, EmptyProgramsFinishImmediately) {
  Fixture f;
  RegionBuilder region(3);
  region.compute(ThreadId(1), 42);
  const RegionResult r = f.engine.run(10, std::move(region).take());
  EXPECT_EQ(r.thread_end[0], 10u);
  EXPECT_EQ(r.thread_end[1], 52u);
  EXPECT_EQ(r.end, 52u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Fixture f;
    RegionBuilder region(4);
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (std::uint64_t p = 0; p < 32; ++p) {
        region.access(ThreadId(t), VPage(t * 100 + p), 32, p % 2 == 0);
      }
    }
    return f.engine.run(0, std::move(region).take()).end;
  };
  const Ns first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
}

TEST(Engine, ContentionSerializesSingleNode) {
  // Four threads hammering pages on one node take much longer than the
  // same four threads hitting four different nodes.
  const auto run_with_homes = [](bool same_node) {
    Fixture f;
    RegionBuilder region(4);
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (std::uint64_t p = 0; p < 16; ++p) {
        // Page id selects the home node (page % 4).
        const std::uint64_t page =
            same_node ? (t * 64 + p) * 4 : (t * 64 + p) * 4 + t;
        region.access(ThreadId(t), VPage(page), 128, false);
      }
    }
    return f.engine.run(0, std::move(region).take()).duration();
  };
  const Ns contended = run_with_homes(true);
  const Ns spread = run_with_homes(false);
  EXPECT_GT(contended, spread + spread / 4);
}

TEST(Engine, AccessComputeIsAddedAfterAccess) {
  Fixture f;
  RegionBuilder region(1);
  region.access(ThreadId(0), VPage(0), 1, false, /*compute=*/10'000);
  const RegionResult r = f.engine.run(0, std::move(region).take());
  // local miss latency (329) + compute 10000, within rounding.
  EXPECT_NEAR(static_cast<double>(r.duration()), 10'329.0, 2.0);
}

TEST(Engine, ThreadsInterleaveByVirtualTime) {
  // Thread 1 computes 1us first; thread 0 issues two accesses to the
  // same node meanwhile. If interleaving were naive (thread order per
  // op), thread 1's later access would not see the queue busy; with
  // virtual-time ordering it must wait behind thread 0's second batch.
  Fixture f;
  RegionBuilder region(2);
  region.access(ThreadId(0), VPage(0), 128, false);
  region.access(ThreadId(0), VPage(4), 128, false);
  region.compute(ThreadId(1), 100);
  region.access(ThreadId(1), VPage(8), 128, false);
  const RegionResult r = f.engine.run(0, std::move(region).take());
  const memsys::ProcStats& st1 = f.memory.stats(ProcId(1));
  EXPECT_GT(st1.queue_wait, 0u);
  EXPECT_GT(r.thread_end[1], 100u + 128u * 329u);
}

TEST(Engine, RejectsMoreProgramsThanProcessors) {
  Fixture f;
  std::vector<ThreadProgram> programs(5);
  EXPECT_THROW(f.engine.run(0, programs), ContractViolation);
}

TEST(RegionResult, ImbalanceMetric) {
  RegionResult r;
  r.start = 0;
  r.thread_end = {100, 100, 100, 100};
  r.end = 100;
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
  r.thread_end = {100, 50, 50, 0};
  EXPECT_DOUBLE_EQ(r.imbalance(), 2.0);
}

}  // namespace
}  // namespace repro::sim
