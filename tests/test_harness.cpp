// Harness tests: run configuration labels, the experiment driver and
// the figure plumbing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/json.hpp"
#include "repro/harness/run.hpp"

namespace repro::harness {
namespace {

RunConfig tiny_config(const std::string& benchmark) {
  RunConfig config;
  config.benchmark = benchmark;
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  return config;
}

TEST(RunConfig, PaperStyleLabels) {
  RunConfig config;
  config.placement = "rr";
  EXPECT_EQ(config.label(), "rr-base");
  config.kernel_migration = true;
  EXPECT_EQ(config.label(), "rr-IRIXmig");
  config.kernel_migration = false;
  config.upm_mode = nas::UpmMode::kDistribution;
  EXPECT_EQ(config.label(), "rr-upmlib");
  config.upm_mode = nas::UpmMode::kRecordReplay;
  config.placement = "ft";
  EXPECT_EQ(config.label(), "ft-recrep");
}

TEST(RunBenchmark, SmokeEveryBenchmark) {
  for (const auto& name : nas::workload_names()) {
    const RunResult result = run_benchmark(tiny_config(name));
    EXPECT_EQ(result.benchmark, name);
    EXPECT_GT(result.total, 0u) << name;
    EXPECT_EQ(result.iteration_times.size(), 2u);
    EXPECT_FALSE(result.records.empty());
  }
}

TEST(RunBenchmark, RejectsKernelMigrationPlusUpmlib) {
  RunConfig config = tiny_config("BT");
  config.kernel_migration = true;
  config.upm_mode = nas::UpmMode::kDistribution;
  EXPECT_THROW(run_benchmark(config), ContractViolation);
}

TEST(RunBenchmark, RejectsRecordReplayWithoutSupport) {
  RunConfig config = tiny_config("CG");
  config.upm_mode = nas::UpmMode::kRecordReplay;
  EXPECT_THROW(run_benchmark(config), ContractViolation);
}

TEST(RunBenchmark, DeterministicAcrossRuns) {
  const RunResult a = run_benchmark(tiny_config("CG"));
  const RunResult b = run_benchmark(tiny_config("CG"));
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.iteration_times, b.iteration_times);
}

TEST(RunBenchmark, SeedChangesRandomPlacement) {
  RunConfig config = tiny_config("CG");
  config.placement = "rand";
  const RunResult a = run_benchmark(config);
  config.seed = 999;
  const RunResult b = run_benchmark(config);
  EXPECT_NE(a.total, b.total);
}

TEST(RunResult, MeanIterationLastFraction) {
  RunResult result;
  result.iteration_times = {100, 10, 10, 10};
  EXPECT_EQ(result.mean_iteration_last(0.75), 10u);
  EXPECT_EQ(result.mean_iteration_last(1.0), 32u);  // (130)/4
  EXPECT_THROW(result.mean_iteration_last(0.0), ContractViolation);
  EXPECT_EQ(RunResult{}.mean_iteration_last(0.5), 0u);
}

TEST(RunResult, PhaseTimeMatchesBySuffix) {
  RunResult result;
  result.records = {{"BT.z_solve", 0, 100, 1.0},
                    {"BT.x_solve", 100, 250, 1.0},
                    {"BT.z_solve", 250, 300, 1.0}};
  EXPECT_EQ(result.phase_time("z_solve"), 150u);
  EXPECT_EQ(result.phase_time("x_solve"), 150u);
  EXPECT_EQ(result.phase_time("nothing"), 0u);
}

TEST(Figures, EffectiveIterationsHonoursFastMode) {
  FigureOptions options;
  {
    ScopedEnv fast("REPRO_FAST", "1");
    EXPECT_EQ(effective_iterations("BT", options), 20u);
    EXPECT_EQ(effective_iterations("SP", options), 40u);
    EXPECT_EQ(effective_iterations("CG", options), 40u);
    EXPECT_EQ(effective_iterations("MG", options), 0u);  // paper default
  }
  {
    ScopedEnv slow("REPRO_FAST", "0");
    EXPECT_EQ(effective_iterations("BT", options), 0u);
  }
  options.iterations_override = 7;
  ScopedEnv fast("REPRO_FAST", "1");
  EXPECT_EQ(effective_iterations("BT", options), 7u);
}

TEST(Figures, ResultsTableAndFindResult) {
  RunResult a;
  a.label = "ft-base";
  a.total = kNsPerSec;
  RunResult b;
  b.label = "wc-base";
  b.total = 2 * kNsPerSec;
  const std::vector<RunResult> results = {a, b};
  EXPECT_EQ(&find_result(results, "wc-base"), &results[1]);
  EXPECT_THROW(find_result(results, "missing"), ContractViolation);

  const TextTable table = results_table(results);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("+100.0%"), std::string::npos);

  std::ostringstream chart;
  print_figure(chart, "demo", results);
  EXPECT_NE(chart.str().find("ft-base"), std::string::npos);
}

TEST(Figures, AppendCsvWritesHeaderOnceAndRows) {
  const std::string path = ::testing::TempDir() + "/repro_results.csv";
  std::filesystem::remove(path);
  RunResult base;
  base.label = "ft-base";
  base.total = kNsPerSec;
  RunResult slow;
  slow.label = "wc-base";
  slow.total = 2 * kNsPerSec;
  append_csv(path, "BT", {base, slow});
  append_csv(path, "SP", {base, slow});
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);  // header + 2x2 rows
  EXPECT_NE(lines[0].find("benchmark,scheme"), std::string::npos);
  EXPECT_NE(lines[1].find("BT,ft-base,1"), std::string::npos);
  EXPECT_NE(lines[4].find("SP,wc-base,2"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Json, WriteResultsJsonCreatesMissingDirectories) {
  const std::string root = ::testing::TempDir() + "/repro_json_nested";
  std::filesystem::remove_all(root);
  RunResult result;
  result.label = "ft-base";
  result.total = kNsPerSec;
  const std::string path = root + "/sub/BENCH_t.json";
  write_results_json(path, "BT", {result});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"bench\": \"BT\""), std::string::npos);
  std::filesystem::remove_all(root);
}

/// Parses an argv-style list through a Cli wired like the bench
/// binaries (jobs >= 1, iterations >= 1, a flag, strings, a double).
struct CliFixture {
  bool fast = false;
  std::string benchmark;
  std::string trace_dir;
  std::size_t jobs = 0;
  std::uint32_t iterations = 0;
  double scale = 1.0;
  Cli cli{"fixture"};

  CliFixture() {
    cli.add_flag("fast", &fast, "trim");
    cli.add_string("benchmark", &benchmark, "name");
    cli.add_string("trace", &trace_dir, "dir");
    cli.add_uint("jobs", &jobs, "workers", /*min=*/1);
    cli.add_uint("iterations", &iterations, "count", /*min=*/1);
    cli.add_double("scale", &scale, "multiplier");
  }

  Cli::Status parse(std::vector<const char*> args) {
    args.insert(args.begin(), "fixture");
    return cli.parse(static_cast<int>(args.size()), args.data());
  }
};

TEST(Cli, ParsesWellFormedArguments) {
  CliFixture f;
  ASSERT_EQ(f.parse({"--fast", "--benchmark=CG", "--jobs=4",
                     "--iterations=25", "--scale=0.5", "--trace=/tmp/t"}),
            Cli::Status::kOk);
  EXPECT_TRUE(f.fast);
  EXPECT_EQ(f.benchmark, "CG");
  EXPECT_EQ(f.jobs, 4u);
  EXPECT_EQ(f.iterations, 25u);
  EXPECT_DOUBLE_EQ(f.scale, 0.5);
  EXPECT_EQ(f.trace_dir, "/tmp/t");
}

TEST(Cli, RejectsZeroJobs) {
  CliFixture f;
  EXPECT_EQ(f.parse({"--jobs=0"}), Cli::Status::kError);
  EXPECT_NE(f.cli.error().find("below the minimum"), std::string::npos);
  EXPECT_EQ(f.jobs, 0u);  // target untouched on error
}

TEST(Cli, RejectsNegativeAndMalformedNumbers) {
  for (const char* arg :
       {"--jobs=-3", "--jobs=+3", "--jobs=", "--jobs=four",
        "--jobs=3x", "--jobs= 3", "--jobs=3.5",
        "--jobs=99999999999999999999999"}) {
    CliFixture f;
    EXPECT_EQ(f.parse({arg}), Cli::Status::kError) << arg;
    EXPECT_FALSE(f.cli.error().empty()) << arg;
    EXPECT_EQ(f.jobs, 0u) << arg;
  }
}

TEST(Cli, RejectsValuesAboveTheTargetTypeRange) {
  // iterations is uint32: 2^32 parses as a uint64 but must not wrap.
  CliFixture f;
  EXPECT_EQ(f.parse({"--iterations=4294967296"}), Cli::Status::kError);
  EXPECT_NE(f.cli.error().find("out of range"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlagsAndPositionals) {
  {
    CliFixture f;
    EXPECT_EQ(f.parse({"--frobnicate=1"}), Cli::Status::kError);
    EXPECT_NE(f.cli.error().find("unknown flag"), std::string::npos);
  }
  {
    CliFixture f;
    EXPECT_EQ(f.parse({"CG"}), Cli::Status::kError);
    EXPECT_NE(f.cli.error().find("positional"), std::string::npos);
  }
}

TEST(Cli, RejectsMissingValueAndValueOnFlag) {
  {
    CliFixture f;
    EXPECT_EQ(f.parse({"--jobs"}), Cli::Status::kError);
    EXPECT_NE(f.cli.error().find("needs a value"), std::string::npos);
  }
  {
    CliFixture f;
    EXPECT_EQ(f.parse({"--fast=1"}), Cli::Status::kError);
    EXPECT_NE(f.cli.error().find("takes no value"), std::string::npos);
  }
}

TEST(Cli, RejectsNonPositiveDoubles) {
  for (const char* arg : {"--scale=0", "--scale=-0.5", "--scale=nope"}) {
    CliFixture f;
    EXPECT_EQ(f.parse(std::vector<const char*>{arg}), Cli::Status::kError)
        << arg;
    EXPECT_DOUBLE_EQ(f.scale, 1.0) << arg;
  }
}

TEST(Cli, HelpShortCircuitsAndUsageListsEveryOption) {
  CliFixture f;
  EXPECT_EQ(f.parse({"--help"}), Cli::Status::kHelp);
  EXPECT_EQ(f.parse({"-h"}), Cli::Status::kHelp);
  const std::string usage = f.cli.usage();
  for (const char* name :
       {"--fast", "--benchmark", "--trace", "--jobs", "--iterations",
        "--scale"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
  EXPECT_NE(usage.find(">= 1"), std::string::npos);
}

TEST(Cli, EmptyStringValueIsAccepted) {
  CliFixture f;
  f.benchmark = "BT";
  ASSERT_EQ(f.parse({"--benchmark="}), Cli::Status::kOk);
  EXPECT_TRUE(f.benchmark.empty());
}

/// A Cli with the trace-frontend flag cluster registered, as the
/// bench/example binaries wire it.
struct ReplayCliFixture {
  ReplayCli replay;
  Cli cli{"fixture"};

  ReplayCliFixture() { replay.register_with(cli); }

  Cli::Status parse(std::vector<const char*> args) {
    args.insert(args.begin(), "fixture");
    return cli.parse(static_cast<int>(args.size()), args.data());
  }
};

TEST(Cli, ReplayFlagsParseAndApplyToTheRunConfig) {
  ReplayCliFixture f;
  ASSERT_EQ(f.parse({"--replay=/tmp/x.rtrc", "--pipeline"}),
            Cli::Status::kOk);
  EXPECT_EQ(f.replay.validate(), "");
  RunConfig config;
  f.replay.apply(config);
  EXPECT_EQ(config.replay, "/tmp/x.rtrc");
  EXPECT_TRUE(config.pipeline);
  EXPECT_TRUE(config.trace_out.empty());
}

TEST(Cli, ReplayTraceOutParsesAlone) {
  ReplayCliFixture f;
  ASSERT_EQ(f.parse({"--trace-out=/tmp/dump.rtrc"}), Cli::Status::kOk);
  EXPECT_EQ(f.replay.validate(), "");
  RunConfig config;
  f.replay.apply(config);
  EXPECT_EQ(config.trace_out, "/tmp/dump.rtrc");
  EXPECT_FALSE(config.pipeline);
}

TEST(Cli, ReplayConflictingFlagsFailValidation) {
  ReplayCliFixture f;
  ASSERT_EQ(f.parse({"--trace-out=/tmp/a.rtrc", "--replay=/tmp/b.rtrc"}),
            Cli::Status::kOk);
  EXPECT_NE(f.replay.validate().find("mutually exclusive"),
            std::string::npos);
}

TEST(Cli, ReplayPipelineWithoutReplayFailsValidation) {
  ReplayCliFixture f;
  ASSERT_EQ(f.parse({"--pipeline"}), Cli::Status::kOk);
  EXPECT_NE(f.replay.validate().find("requires --replay"),
            std::string::npos);
}

TEST(Cli, ReplayFlagsAreStrictlyParsed) {
  {
    ReplayCliFixture f;
    EXPECT_EQ(f.parse({"--replay"}), Cli::Status::kError);  // missing value
  }
  {
    ReplayCliFixture f;
    EXPECT_EQ(f.parse({"--pipeline=1"}), Cli::Status::kError);  // flag
  }
  {
    ReplayCliFixture f;
    const std::string usage = f.cli.usage();
    for (const char* name : {"--trace-out", "--replay", "--pipeline"}) {
      EXPECT_NE(usage.find(name), std::string::npos) << name;
    }
  }
}

TEST(Figures, MeanSlowdownAveragesAcrossBenchmarks) {
  RunResult base;
  base.label = "ft-base";
  base.total = kNsPerSec;
  RunResult slow;
  slow.label = "wc-base";
  slow.total = 2 * kNsPerSec;
  RunResult slower = slow;
  slower.total = 4 * kNsPerSec;
  const std::vector<std::vector<RunResult>> per_benchmark = {
      {base, slow}, {base, slower}};
  EXPECT_DOUBLE_EQ(mean_slowdown(per_benchmark, "wc-base", "ft-base"), 2.0);
}

}  // namespace
}  // namespace repro::harness
