// Harness tests: run configuration labels, the experiment driver and
// the figure plumbing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/harness/figures.hpp"
#include "repro/harness/run.hpp"

namespace repro::harness {
namespace {

RunConfig tiny_config(const std::string& benchmark) {
  RunConfig config;
  config.benchmark = benchmark;
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  return config;
}

TEST(RunConfig, PaperStyleLabels) {
  RunConfig config;
  config.placement = "rr";
  EXPECT_EQ(config.label(), "rr-base");
  config.kernel_migration = true;
  EXPECT_EQ(config.label(), "rr-IRIXmig");
  config.kernel_migration = false;
  config.upm_mode = nas::UpmMode::kDistribution;
  EXPECT_EQ(config.label(), "rr-upmlib");
  config.upm_mode = nas::UpmMode::kRecordReplay;
  config.placement = "ft";
  EXPECT_EQ(config.label(), "ft-recrep");
}

TEST(RunBenchmark, SmokeEveryBenchmark) {
  for (const auto& name : nas::workload_names()) {
    const RunResult result = run_benchmark(tiny_config(name));
    EXPECT_EQ(result.benchmark, name);
    EXPECT_GT(result.total, 0u) << name;
    EXPECT_EQ(result.iteration_times.size(), 2u);
    EXPECT_FALSE(result.records.empty());
  }
}

TEST(RunBenchmark, RejectsKernelMigrationPlusUpmlib) {
  RunConfig config = tiny_config("BT");
  config.kernel_migration = true;
  config.upm_mode = nas::UpmMode::kDistribution;
  EXPECT_THROW(run_benchmark(config), ContractViolation);
}

TEST(RunBenchmark, RejectsRecordReplayWithoutSupport) {
  RunConfig config = tiny_config("CG");
  config.upm_mode = nas::UpmMode::kRecordReplay;
  EXPECT_THROW(run_benchmark(config), ContractViolation);
}

TEST(RunBenchmark, DeterministicAcrossRuns) {
  const RunResult a = run_benchmark(tiny_config("CG"));
  const RunResult b = run_benchmark(tiny_config("CG"));
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.iteration_times, b.iteration_times);
}

TEST(RunBenchmark, SeedChangesRandomPlacement) {
  RunConfig config = tiny_config("CG");
  config.placement = "rand";
  const RunResult a = run_benchmark(config);
  config.seed = 999;
  const RunResult b = run_benchmark(config);
  EXPECT_NE(a.total, b.total);
}

TEST(RunResult, MeanIterationLastFraction) {
  RunResult result;
  result.iteration_times = {100, 10, 10, 10};
  EXPECT_EQ(result.mean_iteration_last(0.75), 10u);
  EXPECT_EQ(result.mean_iteration_last(1.0), 32u);  // (130)/4
  EXPECT_THROW(result.mean_iteration_last(0.0), ContractViolation);
  EXPECT_EQ(RunResult{}.mean_iteration_last(0.5), 0u);
}

TEST(RunResult, PhaseTimeMatchesBySuffix) {
  RunResult result;
  result.records = {{"BT.z_solve", 0, 100, 1.0},
                    {"BT.x_solve", 100, 250, 1.0},
                    {"BT.z_solve", 250, 300, 1.0}};
  EXPECT_EQ(result.phase_time("z_solve"), 150u);
  EXPECT_EQ(result.phase_time("x_solve"), 150u);
  EXPECT_EQ(result.phase_time("nothing"), 0u);
}

TEST(Figures, EffectiveIterationsHonoursFastMode) {
  FigureOptions options;
  {
    ScopedEnv fast("REPRO_FAST", "1");
    EXPECT_EQ(effective_iterations("BT", options), 20u);
    EXPECT_EQ(effective_iterations("SP", options), 40u);
    EXPECT_EQ(effective_iterations("CG", options), 40u);
    EXPECT_EQ(effective_iterations("MG", options), 0u);  // paper default
  }
  {
    ScopedEnv slow("REPRO_FAST", "0");
    EXPECT_EQ(effective_iterations("BT", options), 0u);
  }
  options.iterations_override = 7;
  ScopedEnv fast("REPRO_FAST", "1");
  EXPECT_EQ(effective_iterations("BT", options), 7u);
}

TEST(Figures, ResultsTableAndFindResult) {
  RunResult a;
  a.label = "ft-base";
  a.total = kNsPerSec;
  RunResult b;
  b.label = "wc-base";
  b.total = 2 * kNsPerSec;
  const std::vector<RunResult> results = {a, b};
  EXPECT_EQ(&find_result(results, "wc-base"), &results[1]);
  EXPECT_THROW(find_result(results, "missing"), ContractViolation);

  const TextTable table = results_table(results);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("+100.0%"), std::string::npos);

  std::ostringstream chart;
  print_figure(chart, "demo", results);
  EXPECT_NE(chart.str().find("ft-base"), std::string::npos);
}

TEST(Figures, AppendCsvWritesHeaderOnceAndRows) {
  const std::string path = ::testing::TempDir() + "/repro_results.csv";
  std::filesystem::remove(path);
  RunResult base;
  base.label = "ft-base";
  base.total = kNsPerSec;
  RunResult slow;
  slow.label = "wc-base";
  slow.total = 2 * kNsPerSec;
  append_csv(path, "BT", {base, slow});
  append_csv(path, "SP", {base, slow});
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);  // header + 2x2 rows
  EXPECT_NE(lines[0].find("benchmark,scheme"), std::string::npos);
  EXPECT_NE(lines[1].find("BT,ft-base,1"), std::string::npos);
  EXPECT_NE(lines[4].find("SP,wc-base,2"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Figures, MeanSlowdownAveragesAcrossBenchmarks) {
  RunResult base;
  base.label = "ft-base";
  base.total = kNsPerSec;
  RunResult slow;
  slow.label = "wc-base";
  slow.total = 2 * kNsPerSec;
  RunResult slower = slow;
  slower.total = 4 * kNsPerSec;
  const std::vector<std::vector<RunResult>> per_benchmark = {
      {base, slow}, {base, slower}};
  EXPECT_DOUBLE_EQ(mean_slowdown(per_benchmark, "wc-base", "ft-base"), 2.0);
}

}  // namespace
}  // namespace repro::harness
