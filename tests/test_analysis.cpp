// Static-analysis tests: the diagnostic sink, each rule of the race /
// locality / protocol passes on crafted programs, and silence (no
// errors) over every real workload in the repository.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <unordered_map>

#include "repro/analysis/analyzer.hpp"
#include "repro/analysis/diagnostic.hpp"
#include "repro/analysis/session.hpp"
#include "repro/harness/run.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/machine.hpp"

namespace repro::analysis {
namespace {

using upm::UpmCall;
using Kind = upm::UpmCall::Kind;

constexpr std::uint32_t kLpp = 128;

/// A 4-node, 4-proc machine view with an explicit page->home map;
/// unlisted pages are unmapped.
struct FakeMachine {
  std::shared_ptr<std::unordered_map<std::uint64_t, std::uint32_t>> homes =
      std::make_shared<std::unordered_map<std::uint64_t, std::uint32_t>>();

  [[nodiscard]] MachineView view() const {
    MachineView v;
    v.lines_per_page = kLpp;
    v.num_procs = 4;
    v.num_nodes = 4;
    v.node_of_proc = [](ProcId p) { return NodeId(p.value()); };
    v.home_of = [homes = homes](VPage p) -> std::optional<NodeId> {
      const auto it = homes->find(p.value());
      if (it == homes->end()) {
        return std::nullopt;
      }
      return NodeId(it->second);
    };
    return v;
  }
};

Diagnostic make_diag(const std::string& rule, std::uint64_t page) {
  // Aggregate-constructed (not member-assigned): GCC 12's -Wrestrict
  // false-positives on char* assignment into a returned local here.
  return Diagnostic{Severity::kWarning, rule,         "r",          VPage(page),
                    std::nullopt,       std::nullopt, std::nullopt, "m",
                    ""};
}

sim::ThreadProgram accesses(
    std::initializer_list<std::pair<std::uint64_t, std::uint32_t>> writes,
    std::initializer_list<std::pair<std::uint64_t, std::uint32_t>> reads =
        {}) {
  sim::ThreadProgram prog;
  for (const auto& [page, lines] : writes) {
    prog.push_back(sim::Op::access(VPage(page), lines, /*write=*/true));
  }
  for (const auto& [page, lines] : reads) {
    prog.push_back(sim::Op::access(VPage(page), lines, /*write=*/false));
  }
  return prog;
}

TEST(DiagnosticSink, DeduplicatesRepeatedFindings) {
  CollectingSink sink;
  sink.report(make_diag("race.ww-lines", 7));
  sink.report(make_diag("race.ww-lines", 7));  // same rule+region+location
  sink.report(make_diag("race.ww-lines", 8));
  sink.report(make_diag("numa.remote-page", 7));
  EXPECT_EQ(sink.diagnostics().size(), 3u);
  EXPECT_EQ(sink.duplicates(), 1u);
  EXPECT_EQ(sink.count_rule("race.ww-lines"), 2u);
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.duplicates(), 0u);
}

TEST(DiagnosticSink, SeverityCountsAndCleanliness) {
  CollectingSink sink;
  EXPECT_TRUE(sink.clean());
  Diagnostic note = make_diag("a", 1);
  note.severity = Severity::kNote;
  sink.report(note);
  EXPECT_TRUE(sink.clean());  // notes keep the bill clean
  Diagnostic err = make_diag("b", 2);
  err.severity = Severity::kError;
  sink.report(err);
  EXPECT_FALSE(sink.clean());
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_EQ(sink.count(Severity::kNote), 1u);
  EXPECT_EQ(sink.count(Severity::kWarning), 0u);
}

TEST(Diagnostic, LocationRendering) {
  Diagnostic d;
  EXPECT_EQ(d.location(), "");
  d.page = VPage(42);
  EXPECT_EQ(d.location(), "page 42");
  d.thread = ThreadId(3);
  d.other = ThreadId(5);
  EXPECT_EQ(d.location(), "page 42, thread 3/5");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
}

TEST(Diagnostic, PrintedTableAndSummary) {
  CollectingSink sink;
  std::ostringstream os;
  print_diagnostics(os, sink);
  EXPECT_NE(os.str().find("no findings"), std::string::npos);

  Diagnostic err = make_diag("race.ww-lines", 1);
  err.severity = Severity::kError;
  sink.report(err);
  sink.report(make_diag("race.ww-lines", 1));  // duplicate
  std::ostringstream os2;
  print_diagnostics(os2, sink);
  EXPECT_NE(os2.str().find("race.ww-lines"), std::string::npos);
  EXPECT_NE(os2.str().find("1 error(s)"), std::string::npos);
  EXPECT_NE(os2.str().find("1 duplicate finding(s)"), std::string::npos);
}

TEST(RacePass, ProvableWriteWriteOverlapIsAnError) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // 100 + 100 > 128: the two write sets must intersect.
  analyzer.analyze_region("bad",
                          {accesses({{5, 100}}), accesses({{5, 100}})}, {},
                          sink);
  EXPECT_EQ(sink.count_rule("race.ww-lines"), 1u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
}

TEST(RacePass, ProvableReadWriteOverlapIsAWarning) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.analyze_region(
      "bad", {accesses({{5, 100}}), accesses({}, {{5, 100}})}, {}, sink);
  EXPECT_EQ(sink.count_rule("race.rw-lines"), 1u);
  EXPECT_EQ(sink.count(Severity::kError), 0u);
  EXPECT_EQ(sink.count(Severity::kWarning), 1u);
}

TEST(RacePass, UnprovableSharingIsAFalseSharingNote) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // 64 + 64 == lines_per_page: the halves can be disjoint, exactly the
  // boundary-page pattern of the FT transpose.
  analyzer.analyze_region("boundary",
                          {accesses({{5, 64}}), accesses({{5, 64}})}, {},
                          sink);
  EXPECT_EQ(sink.count_rule("race.page-share"), 1u);
  EXPECT_TRUE(sink.clean());
}

TEST(RacePass, ReadOnlySharingAndPrivatePagesAreSilent) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // All threads read page 5; each writes its own page.
  analyzer.analyze_region(
      "clean",
      {accesses({{1, kLpp}}, {{5, kLpp}}), accesses({{2, kLpp}}, {{5, kLpp}})},
      {}, sink);
  EXPECT_EQ(sink.count_rule("race.page-share"), 0u);
  EXPECT_EQ(sink.count_rule("race.ww-lines"), 0u);
  EXPECT_EQ(sink.count_rule("race.rw-lines"), 0u);
}

TEST(RacePass, PerRuleCapFoldsIntoSummaryNote) {
  FakeMachine fake;
  AnalyzerConfig config;
  config.max_diags_per_rule = 3;
  const Analyzer analyzer(config, fake.view());
  CollectingSink sink;
  sim::ThreadProgram a;
  sim::ThreadProgram b;
  for (std::uint64_t p = 0; p < 10; ++p) {
    a.push_back(sim::Op::access(VPage(p), 100, true));
    b.push_back(sim::Op::access(VPage(p), 100, true));
  }
  analyzer.analyze_region("capped", {a, b}, {}, sink);
  EXPECT_EQ(sink.count_rule("race.ww-lines"), 3u);
  EXPECT_EQ(sink.count_rule("race.summary"), 1u);
}

TEST(LocalityPass, FlagsRemoteHeavyMappedPages) {
  FakeMachine fake;
  (*fake.homes)[5] = 0;  // homed on node 0
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // Thread 1 (node 1) hammers the page; the home node never touches it.
  analyzer.analyze_region("remote", {{}, accesses({{5, kLpp}})}, {}, sink);
  EXPECT_EQ(sink.count_rule("numa.remote-page"), 1u);
  EXPECT_EQ(sink.diagnostics()[0].severity, Severity::kWarning);
}

TEST(LocalityPass, LocalUnmappedAndColdPagesAreSilent) {
  FakeMachine fake;
  (*fake.homes)[5] = 1;  // same node as the only accessor
  (*fake.homes)[6] = 0;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // Page 5: local. Page 6: remote but below min_page_lines. Page 7:
  // unmapped (first-touch home unknown before the region runs).
  analyzer.analyze_region(
      "ok", {{}, accesses({{5, kLpp}, {6, 8}, {7, kLpp}})}, {}, sink);
  EXPECT_TRUE(sink.empty());
}

TEST(LocalityPass, BindingRedirectsTheHistogram) {
  FakeMachine fake;
  (*fake.homes)[5] = 3;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // Thread 0 does the accesses but is bound to proc 3 = node 3, the
  // page's home: local despite the identity binding being remote.
  const std::vector<ProcId> binding{ProcId(3), ProcId(0)};
  analyzer.analyze_region("bound", {accesses({{5, kLpp}}), {}}, binding,
                          sink);
  EXPECT_EQ(sink.count_rule("numa.remote-page"), 0u);
}

TEST(BindingCheck, RejectsOutOfRangeDuplicateAndShortBindings) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_binding("r", 2, std::vector<ProcId>{ProcId(0), ProcId(9)},
                         sink);
  EXPECT_EQ(sink.count_rule("binding.range"), 1u);
  sink.clear();
  analyzer.check_binding("r", 2, std::vector<ProcId>{ProcId(1), ProcId(1)},
                         sink);
  EXPECT_EQ(sink.count_rule("binding.dup"), 1u);
  sink.clear();
  analyzer.check_binding("r", 3, std::vector<ProcId>{ProcId(0)}, sink);
  EXPECT_EQ(sink.count_rule("binding.short"), 1u);
  sink.clear();
  analyzer.check_binding("r", 9, {}, sink);
  EXPECT_EQ(sink.count_rule("binding.team-size"), 1u);
  sink.clear();
  analyzer.check_binding("r", 4, {}, sink);  // identity binding
  EXPECT_TRUE(sink.empty());
}

// --- UPMlib protocol checker ----------------------------------------------

std::vector<UpmCall> with_area(std::vector<UpmCall> tail) {
  std::vector<UpmCall> trace{{Kind::kMemRefCnt, {VPage(0), 16}, true}};
  trace.insert(trace.end(), tail.begin(), tail.end());
  return trace;
}

TEST(UpmProtocol, AcceptsTheRecordReplaySequence) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  // The ADI instrumentation (paper Fig. 3): record a full iteration,
  // compare, then replay/undo every subsequent iteration.
  analyzer.check_upm_trace(
      with_area({{Kind::kMigrateMemory, {}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kCompareCounters, {}, true},
                 {Kind::kReplay, {}, true},
                 {Kind::kUndo, {}, true},
                 {Kind::kReplay, {}, true},
                 {Kind::kUndo, {}, true}}),
      sink);
  EXPECT_TRUE(sink.empty())
      << diagnostics_table(sink.diagnostics()).to_string();
}

TEST(UpmProtocol, AcceptsTheDistributionLoop) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_upm_trace(with_area({{Kind::kResetCounters, {}, true},
                                      {Kind::kMigrateMemory, {}, true},
                                      {Kind::kMigrateMemory, {}, true}}),
                           sink);
  EXPECT_TRUE(sink.empty());
}

TEST(UpmProtocol, CompareWithoutTwoRecordsIsAnError) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_upm_trace(with_area({{Kind::kRecord, {}, true},
                                      {Kind::kCompareCounters, {}, true}}),
                           sink);
  EXPECT_EQ(sink.count_rule("upm.record-underflow"), 1u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
}

TEST(UpmProtocol, ReplayWithoutPlanAndOverrunAreFlagged) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_upm_trace(with_area({{Kind::kReplay, {}, true}}), sink);
  EXPECT_EQ(sink.count_rule("upm.replay-unplanned"), 1u);
  sink.clear();
  // Two records give a one-transition plan; the second replay without an
  // undo wraps the cursor.
  analyzer.check_upm_trace(
      with_area({{Kind::kRecord, {}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kCompareCounters, {}, true},
                 {Kind::kReplay, {}, true},
                 {Kind::kReplay, {}, true}}),
      sink);
  EXPECT_EQ(sink.count_rule("upm.replay-overrun"), 1u);
}

TEST(UpmProtocol, NotesAndWarningsOnMisuse) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_upm_trace(
      std::vector<UpmCall>{{Kind::kMigrateMemory, {}, true}}, sink);
  EXPECT_EQ(sink.count_rule("upm.no-hot-areas"), 1u);
  sink.clear();

  analyzer.check_upm_trace(with_area({{Kind::kMigrateMemory, {}, false}}),
                           sink);
  EXPECT_EQ(sink.count_rule("upm.migrate-inactive"), 1u);
  sink.clear();

  // Overlapping registration and one after counting started.
  analyzer.check_upm_trace(
      with_area({{Kind::kMemRefCnt, {VPage(8), 16}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kMemRefCnt, {VPage(100), 4}, true}}),
      sink);
  EXPECT_EQ(sink.count_rule("upm.dup-range"), 1u);
  EXPECT_EQ(sink.count_rule("upm.late-registration"), 1u);
  sink.clear();

  analyzer.check_upm_trace(
      with_area({{Kind::kRecord, {}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kCompareCounters, {}, true},
                 {Kind::kUndo, {}, true},
                 {Kind::kRecord, {}, true}}),
      sink);
  EXPECT_EQ(sink.count_rule("upm.undo-without-replay"), 1u);
  EXPECT_EQ(sink.count_rule("upm.record-after-compare"), 1u);
}

TEST(UpmProtocol, RebindingNotificationResetsTheStateMachine) {
  FakeMachine fake;
  const Analyzer analyzer({}, fake.view());
  CollectingSink sink;
  analyzer.check_upm_trace(
      with_area({{Kind::kRecord, {}, true},
                 {Kind::kRecord, {}, true},
                 {Kind::kCompareCounters, {}, true},
                 {Kind::kNotifyRebinding, {}, true},
                 {Kind::kReplay, {}, true}}),
      sink);
  // The plan was invalidated by the rebinding: the replay is unplanned.
  EXPECT_EQ(sink.count_rule("upm.replay-unplanned"), 1u);
}

// --- live-machine integration ---------------------------------------------

TEST(Session, ReportsRacesOnRegionsRunThroughTheRuntime) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  const vm::PageRange data =
      machine->address_space().allocate_pages("data", 4);
  AnalysisSession session(*machine);
  omp::Runtime& rt = machine->runtime();
  sim::RegionBuilder region = rt.make_region();
  region.access(ThreadId(0), data.page(0),
                machine->config().lines_per_page(), true);
  region.access(ThreadId(1), data.page(0),
                machine->config().lines_per_page(), true);
  rt.run("racy", std::move(region));
  EXPECT_EQ(session.sink().count_rule("race.ww-lines"), 1u);
  EXPECT_EQ(session.sink().diagnostics()[0].region, "racy");
}

TEST(Session, DetachesItsInspectorOnDestruction) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  const vm::PageRange data =
      machine->address_space().allocate_pages("data", 1);
  {
    const AnalysisSession session(*machine);
  }
  omp::Runtime& rt = machine->runtime();
  sim::RegionBuilder region = rt.make_region();
  region.access(ThreadId(0), data.page(0), 8, true);
  rt.run("after", std::move(region));  // must not touch the dead session
  SUCCEED();
}

TEST(Session, ChecksTheLiveUpmlibTrace) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  const vm::PageRange data =
      machine->address_space().allocate_pages("data", 64);
  upm::Upmlib upmlib(machine->mmci(), machine->runtime(), {});
  AnalysisSession session(*machine);
  session.attach_upm(upmlib);
  upmlib.memrefcnt(data);
  upmlib.record();  // one record only: compare_counters would abort
  session.finish();
  EXPECT_EQ(session.sink().count(Severity::kError), 0u);
  EXPECT_TRUE(upmlib.call_trace_enabled());
  EXPECT_EQ(upmlib.call_trace().size(), 2u);
}

// --- silence over the repository's real workloads -------------------------

harness::RunConfig tiny(const std::string& benchmark,
                        const std::string& placement) {
  harness::RunConfig config;
  config.benchmark = benchmark;
  config.placement = placement;
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  config.analyze = true;
  return config;
}

std::size_t error_count(const harness::RunResult& result) {
  std::size_t errors = 0;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity == Severity::kError) {
      ++errors;
    }
  }
  return errors;
}

TEST(WorkloadAudit, NoErrorsOnAnyBenchmarkUnderAnyPlacement) {
  for (const auto& name : nas::workload_names()) {
    for (const std::string placement : {"ft", "wc"}) {
      const harness::RunResult result =
          harness::run_benchmark(tiny(name, placement));
      EXPECT_EQ(error_count(result), 0u) << name << "/" << placement;
    }
  }
}

TEST(WorkloadAudit, RecordReplayProtocolIsCleanOnAdiSolvers) {
  for (const std::string name : {"BT", "SP"}) {
    harness::RunConfig config = tiny(name, "ft");
    config.upm_mode = nas::UpmMode::kRecordReplay;
    config.upm.max_critical_pages = 20;
    config.iterations = 4;
    const harness::RunResult result = harness::run_benchmark(config);
    EXPECT_EQ(error_count(result), 0u) << name;
    for (const Diagnostic& d : result.diagnostics) {
      EXPECT_NE(d.rule.substr(0, 4), "upm.") << name << ": " << d.message;
    }
  }
}

// Renders diagnostics exactly as a consumer would diff them.
std::string render_all(const std::vector<harness::RunResult>& results) {
  std::ostringstream os;
  for (const harness::RunResult& r : results) {
    os << r.benchmark << ' ' << r.label << '\n';
    for (const Diagnostic& d : r.diagnostics) {
      os << severity_name(d.severity) << '|' << d.rule << '|' << d.region
         << '|' << d.location() << '|' << d.message << '|' << d.hint << '\n';
    }
  }
  return os.str();
}

TEST(DiagnosticDeterminism, ByteIdenticalAcrossJobCountsAndReruns) {
  // The sweep scheduler runs analyzing cells on host threads; the
  // rendered findings must not depend on the job count or the rerun.
  std::vector<harness::RunConfig> configs;
  for (const std::string benchmark : {"BT", "CG", "MG"}) {
    configs.push_back(tiny(benchmark, "wc"));
  }
  const std::string serial =
      render_all(harness::run_experiments(configs, 1));
  const std::string parallel =
      render_all(harness::run_experiments(configs, 4));
  const std::string again =
      render_all(harness::run_experiments(configs, 4));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(parallel, again);
}

TEST(DiagnosticDeterminism, RunDiagnosticsAreCanonicallySorted) {
  const harness::RunResult wc = harness::run_benchmark(tiny("BT", "wc"));
  ASSERT_FALSE(wc.diagnostics.empty());
  std::vector<Diagnostic> sorted = wc.diagnostics;
  canonical_sort(sorted);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].rule, wc.diagnostics[i].rule) << i;
    EXPECT_EQ(sorted[i].region, wc.diagnostics[i].region) << i;
    EXPECT_EQ(sorted[i].message, wc.diagnostics[i].message) << i;
  }
}

TEST(WorkloadAudit, BadPlacementIsWhatTheLintFlags) {
  // Under worst-case placement the locality lint must fire: the paper's
  // premise is that wc placement is remote-heavy everywhere.
  const harness::RunResult wc = harness::run_benchmark(tiny("BT", "wc"));
  std::size_t remote = 0;
  for (const Diagnostic& d : wc.diagnostics) {
    remote += d.rule == "numa.remote-page" ? 1u : 0u;
  }
  EXPECT_GT(remote, 0u);
}

}  // namespace
}  // namespace repro::analysis
