// Deterministic task runtime (omp/task.hpp) and the task-parallel
// workload family (nas MGT/CGT).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "repro/harness/scheduler.hpp"
#include "repro/nas/task_workloads.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/task.hpp"
#include "repro/topology/topology.hpp"
#include "repro/trace/event.hpp"

namespace repro::omp {
namespace {

std::vector<NodeId> identity_nodes(std::size_t n) {
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return nodes;
}

std::vector<TaskDesc> noop_tasks(std::size_t count, std::uint32_t home_mod,
                                 Ns estimate) {
  std::vector<TaskDesc> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    TaskDesc t;
    t.home = ThreadId(static_cast<std::uint32_t>(i) % home_mod);
    t.estimate = estimate;
    t.body = [](ThreadId, sim::RegionBuilder&) {};
    tasks.push_back(std::move(t));
  }
  return tasks;
}

bool every_task_exactly_once(const std::vector<TaskAssignment>& schedule,
                             std::size_t num_tasks) {
  std::set<std::uint32_t> seen;
  for (const TaskAssignment& a : schedule) {
    seen.insert(a.task);
  }
  return schedule.size() == num_tasks && seen.size() == num_tasks;
}

TEST(TaskScheduler, BalancedWaveRunsEveryTaskAtHomeWithoutStealing) {
  const topo::FatHypercube topology(16);
  const TaskScheduler scheduler(topology, identity_nodes(16), /*seed=*/1);
  const std::vector<TaskDesc> tasks = noop_tasks(64, 16, 100);
  const std::vector<TaskAssignment> schedule = scheduler.schedule(tasks);
  ASSERT_TRUE(every_task_exactly_once(schedule, tasks.size()));
  for (const TaskAssignment& a : schedule) {
    EXPECT_FALSE(a.stolen);
    EXPECT_EQ(a.executor, tasks[a.task].home);
    EXPECT_EQ(a.victim, tasks[a.task].home);
  }
}

TEST(TaskScheduler, ScheduleIsAPureFunctionOfItsInputs) {
  const topo::FatHypercube topology(16);
  // Imbalanced homes and unequal estimates so stealing happens and the
  // order is nontrivial.
  std::vector<TaskDesc> tasks = noop_tasks(48, 3, 1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].estimate = 50 + 37 * (i % 7);
  }
  const TaskScheduler first(topology, identity_nodes(16), /*seed=*/42);
  const TaskScheduler second(topology, identity_nodes(16), /*seed=*/42);
  const std::vector<TaskAssignment> a = first.schedule(tasks);
  const std::vector<TaskAssignment> b = first.schedule(tasks);
  const std::vector<TaskAssignment> c = second.schedule(tasks);
  ASSERT_TRUE(every_task_exactly_once(a, tasks.size()));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].executor, b[i].executor);
    EXPECT_EQ(a[i].stolen, b[i].stolen);
    EXPECT_EQ(a[i].task, c[i].task);
    EXPECT_EQ(a[i].executor, c[i].executor);
    EXPECT_EQ(a[i].victim, c[i].victim);
    EXPECT_EQ(a[i].steal_count, c[i].steal_count);
  }
}

TEST(TaskScheduler, SeedChangesVictimChoicesButNotCoverage) {
  const topo::FatHypercube topology(16);
  const std::vector<TaskDesc> tasks = noop_tasks(64, 1, 10);
  const TaskScheduler s1(topology, identity_nodes(16), /*seed=*/7);
  const TaskScheduler s2(topology, identity_nodes(16), /*seed=*/8);
  const std::vector<TaskAssignment> a = s1.schedule(tasks);
  const std::vector<TaskAssignment> b = s2.schedule(tasks);
  EXPECT_TRUE(every_task_exactly_once(a, tasks.size()));
  EXPECT_TRUE(every_task_exactly_once(b, tasks.size()));
}

TEST(TaskScheduler, ImbalanceTriggersStealingFromTheLoadedThread) {
  const topo::FatHypercube topology(16);
  const TaskScheduler scheduler(topology, identity_nodes(16), /*seed=*/5);
  // Everything spawned on thread 0: every other executor must steal,
  // and the only possible victim is thread 0.
  const std::vector<TaskDesc> tasks = noop_tasks(64, 1, 10);
  const std::vector<TaskAssignment> schedule = scheduler.schedule(tasks);
  ASSERT_TRUE(every_task_exactly_once(schedule, tasks.size()));
  std::set<std::uint32_t> executors;
  std::size_t steals = 0;
  for (const TaskAssignment& a : schedule) {
    executors.insert(a.executor.value());
    if (a.stolen) {
      ++steals;
      EXPECT_EQ(a.victim.value(), 0u);
      EXPECT_NE(a.executor.value(), 0u);
    }
  }
  EXPECT_GT(steals, 0u);
  EXPECT_GT(executors.size(), 1u) << "work never spread off thread 0";
}

TEST(TaskScheduler, VictimGroupsAreNearestInHierarchyFirst) {
  // hier:4x4 -> 16 leaves; threads 0..3 share the outer group.
  const topo::HierarchicalTopology topology(
      {topo::HierarchicalTopology::Level{4, 1},
       topo::HierarchicalTopology::Level{4, 1}});
  const TaskScheduler scheduler(topology, identity_nodes(16), /*seed=*/0);
  const auto& groups = scheduler.victim_groups(ThreadId(0));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::uint32_t>{1, 2, 3}));
  ASSERT_EQ(groups[1].size(), 12u);
  EXPECT_EQ(groups[1].front(), 4u);
  // LIFO pop for the owner, FIFO steal for thieves: with all tasks on
  // thread 0, thread 0's first executed task is the newest (last
  // spawned) and the first steal takes the oldest (task 0).
  const std::vector<TaskDesc> tasks = noop_tasks(32, 1, 10);
  const std::vector<TaskAssignment> schedule = scheduler.schedule(tasks);
  ASSERT_FALSE(schedule.empty());
  for (const TaskAssignment& a : schedule) {
    if (a.executor.value() == 0 && !a.stolen) {
      EXPECT_EQ(a.task, 31u) << "owner must pop its deque LIFO";
      break;
    }
  }
  for (const TaskAssignment& a : schedule) {
    if (a.stolen) {
      EXPECT_EQ(a.task, 0u) << "first steal must take the oldest task";
      break;
    }
  }
}

TEST(TaskRuntime, RunTasksExecutesThroughTheEngineAndTracesTheProtocol) {
  memsys::MachineConfig config;
  auto machine = Machine::create(config);
  machine->set_placement("ft");
  trace::TraceSink& sink = machine->enable_tracing();
  Runtime& rt = machine->runtime();
  const vm::PageRange data =
      machine->address_space().allocate_pages("task.data", 64);

  const TaskScheduler scheduler(machine->topology(),
                                identity_nodes(rt.num_threads()),
                                /*seed=*/3);
  std::vector<TaskDesc> tasks;
  for (std::uint32_t i = 0; i < 32; ++i) {
    TaskDesc t;
    t.home = ThreadId(0);  // imbalanced on purpose: forces steals
    t.estimate = 100;
    t.body = [data, i](ThreadId executor, sim::RegionBuilder& region) {
      region.access(executor, data.page(2 * i), 8, /*write=*/true);
      region.access(executor, data.page(2 * i + 1), 8, /*write=*/false);
    };
    tasks.push_back(std::move(t));
  }
  const Ns before = rt.now();
  const sim::RegionResult result = run_tasks(rt, scheduler, "wave", tasks);
  EXPECT_GT(result.end, before);
  EXPECT_GT(rt.now(), before);
  ASSERT_FALSE(rt.records().empty());
  EXPECT_EQ(rt.records().back().name, "wave");

  std::size_t spawns = 0;
  std::size_t steals = 0;
  for (const trace::TraceEvent& ev : sink.canonical_events()) {
    spawns += ev.kind == trace::EventKind::kTaskSpawn ? 1 : 0;
    steals += ev.kind == trace::EventKind::kTaskSteal ? 1 : 0;
  }
  EXPECT_EQ(spawns, tasks.size());
  EXPECT_GT(steals, 0u);
}

TEST(TaskWorkloads, FactoryBuildsThemAndNamesStayOffTheGoldenGrid) {
  for (const std::string& name : nas::task_workload_names()) {
    const auto workload = nas::make_workload(name);
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->name(), name);
    for (const std::string& golden : nas::workload_names()) {
      EXPECT_NE(golden, name)
          << "task workloads must not join the golden matrix";
    }
  }
}

TEST(TaskWorkloads, MgtAndCgtDigestsIdenticalAcrossJobsAndReruns) {
  std::vector<harness::RunConfig> configs;
  for (const std::string& name : nas::task_workload_names()) {
    harness::RunConfig config;
    config.benchmark = name;
    config.placement = "ft";
    config.iterations = 2;
    config.workload.size_scale = 0.25;
    config.trace = true;
    configs.push_back(std::move(config));
  }
  const std::vector<harness::RunResult> parallel =
      harness::run_experiments(configs, 4);
  const std::vector<harness::RunResult> serial =
      harness::run_experiments(configs, 1);
  const std::vector<harness::RunResult> again =
      harness::run_experiments(configs, 1);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(serial[i].trace_digest.size(), 16u) << configs[i].benchmark;
    EXPECT_EQ(parallel[i].trace_digest, serial[i].trace_digest)
        << configs[i].benchmark << ": schedule depends on the job count";
    EXPECT_EQ(again[i].trace_digest, serial[i].trace_digest)
        << configs[i].benchmark << ": schedule not stable across reruns";
    EXPECT_GT(serial[i].total, 0u);
  }
}

// The largest sweep point: 512 logical nodes (hier:8x8x8), one task
// workload end to end. The kAuto backend must pick the sparse page
// structures here, or the dense O(pages x nodes) arrays would blow the
// test's memory and the suite's timeout (this is the cell the ctest
// TIMEOUT was raised for).
TEST(TaskWorkloads, TaskWorkloadsCompleteAt512Nodes) {
  harness::RunConfig config;
  config.benchmark = "MGT";
  config.placement = "rr";
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  config.machine.num_nodes = 512;
  config.machine.topology = "hier:8x8x8";
  config.machine.frames_per_node = 1024;
  ASSERT_TRUE(config.machine.sparse_tables());
  const harness::RunResult result = harness::run_benchmark(config);
  EXPECT_GT(result.total, 0u);
  EXPECT_EQ(result.iteration_times.size(), 2u);
}

TEST(TaskWorkloads, CgtRunsOnA64NodeHierarchyDeterministically) {
  harness::RunConfig config;
  config.benchmark = "CGT";
  config.placement = "ft";
  config.iterations = 2;
  config.workload.size_scale = 0.25;
  config.trace = true;
  config.machine.num_nodes = 64;
  config.machine.topology = "hier:4x4x4";
  config.machine.frames_per_node = 4096;
  const std::vector<harness::RunConfig> configs{config};
  const std::vector<harness::RunResult> parallel =
      harness::run_experiments(configs, 4);
  const std::vector<harness::RunResult> serial =
      harness::run_experiments(configs, 1);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(parallel[0].trace_digest, serial[0].trace_digest);
  EXPECT_GT(serial[0].total, 0u);
}

}  // namespace
}  // namespace repro::omp
