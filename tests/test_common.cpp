// Unit tests for the common utilities: contracts, strong ids, RNG,
// statistics, tables and the Env tunable store.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/rng.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/table.hpp"
#include "repro/common/units.hpp"

namespace repro {
namespace {

TEST(Assert, RequireThrowsOnViolation) {
  EXPECT_THROW(REPRO_REQUIRE(1 == 2), ContractViolation);
  EXPECT_NO_THROW(REPRO_REQUIRE(1 == 1));
}

TEST(Assert, MessageContainsLocation) {
  try {
    REPRO_REQUIRE_MSG(false, "custom message");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Assert, UnreachableThrows) {
  EXPECT_THROW(REPRO_UNREACHABLE("should not happen"), ContractViolation);
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_convertible_v<NodeId, ProcId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
  const NodeId a(3);
  const NodeId b(3);
  EXPECT_EQ(a, b);
  EXPECT_LT(NodeId(2), a);
}

TEST(StrongId, HashAndIncrement) {
  std::set<VPage> pages;
  VPage p(10);
  pages.insert(p);
  ++p;
  pages.insert(p);
  EXPECT_EQ(pages.size(), 2u);
  EXPECT_EQ(p.value(), 11u);
  EXPECT_EQ(std::hash<VPage>{}(VPage(7)), std::hash<VPage>{}(VPage(7)));
}

TEST(StrongId, IdRangeIteratesDensely) {
  std::uint32_t expected = 0;
  for (const NodeId n : id_range<NodeId>(5)) {
    EXPECT_EQ(n.value(), expected++);
  }
  EXPECT_EQ(expected, 5u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ns_to_seconds(kNsPerSec), 1.0);
  EXPECT_DOUBLE_EQ(ns_to_ms(kNsPerMs), 1.0);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.next_below(kBuckets)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat st;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    st.add(x);
  }
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe) {
  const RunningStat st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_THROW(percentile(xs, 1.5), ContractViolation);
}

TEST(Slowdown, SignConvention) {
  EXPECT_DOUBLE_EQ(slowdown(1.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(slowdown(0.5, 1.0), -0.5);
  EXPECT_THROW(slowdown(1.0, 0.0), ContractViolation);
}

TEST(Geomean, Basics) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_THROW(geomean({1.0, -1.0}), ContractViolation);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(BarChart, RendersBarsAndBaseline) {
  BarChart chart("demo", "s");
  chart.add("first", 1.0);
  chart.add("second", 2.0, 0.5);
  chart.set_baseline(1.0);
  const std::string s = chart.to_string(40);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('/'), std::string::npos);  // overhead stripe
  EXPECT_NE(s.find('!'), std::string::npos);  // baseline marker
}

TEST(BarChart, RejectsNegativeValues) {
  BarChart chart("demo");
  EXPECT_THROW(chart.add("bad", -1.0), ContractViolation);
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.248), "+24.8%");
  EXPECT_EQ(fmt_percent(-0.05), "-5.0%");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Env, OverrideAndUnset) {
  Env env;
  EXPECT_FALSE(env.get("REPRO_TEST_KEY").has_value());
  env.set("REPRO_TEST_KEY", "17");
  EXPECT_EQ(env.get_int("REPRO_TEST_KEY", 0), 17);
  env.unset("REPRO_TEST_KEY");
  EXPECT_EQ(env.get_int("REPRO_TEST_KEY", 5), 5);
}

TEST(Env, TypedAccessors) {
  Env env;
  env.set("K_INT", "42");
  env.set("K_DBL", "2.5");
  env.set("K_BOOL", "true");
  EXPECT_EQ(env.get_int("K_INT", 0), 42);
  EXPECT_DOUBLE_EQ(env.get_double("K_DBL", 0.0), 2.5);
  EXPECT_TRUE(env.get_bool("K_BOOL", false));
  EXPECT_EQ(env.get_string("K_MISSING", "dflt"), "dflt");
}

TEST(Env, MalformedValuesThrow) {
  Env env;
  env.set("K", "not-a-number");
  EXPECT_THROW(env.get_int("K", 0), ContractViolation);
  EXPECT_THROW(env.get_double("K", 0.0), ContractViolation);
  EXPECT_THROW(env.get_bool("K", false), ContractViolation);
}

TEST(Env, ScopedOverrideRestores) {
  Env& global = Env::global();
  global.set("SCOPED_KEY", "outer");
  {
    ScopedEnv guard("SCOPED_KEY", "inner");
    EXPECT_EQ(global.get_string("SCOPED_KEY", ""), "inner");
  }
  EXPECT_EQ(global.get_string("SCOPED_KEY", ""), "outer");
  global.unset("SCOPED_KEY");
}

}  // namespace
}  // namespace repro
