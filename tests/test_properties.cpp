// Property-based tests: deterministic pseudo-random workloads driven
// over the whole stack, asserting global invariants that must hold for
// ANY access pattern -- frame conservation, counter saturation, stats
// consistency, migration/replication safety and simulation determinism.
#include <gtest/gtest.h>

#include <map>

#include "repro/common/rng.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro {
namespace {

memsys::MachineConfig fuzz_config() {
  memsys::MachineConfig config;
  config.num_nodes = 8;
  config.procs_per_node = 1;
  config.frames_per_node = 256;  // headroom: pages + full replication
  config.l2_size = 8 * config.page_size;
  return config;
}

/// One pseudo-random step against the machine: access, migrate,
/// replicate or collapse, chosen by the seeded RNG.
class FuzzDriver {
 public:
  FuzzDriver(std::uint64_t seed, std::uint64_t pages)
      : rng_(seed), pages_(pages), machine_(omp::Machine::create(fuzz_config())) {}

  void step() {
    const VPage page(rng_.next_below(pages_));
    const ProcId proc(static_cast<std::uint32_t>(rng_.next_below(8)));
    const NodeId node(static_cast<std::uint32_t>(rng_.next_below(8)));
    switch (rng_.next_below(8)) {
      case 0:
      case 1:
      case 2:
      case 3:  // plain accesses dominate
      case 4: {
        const auto lines = static_cast<std::uint32_t>(
            1 + rng_.next_below(machine_->config().lines_per_page()));
        const bool write = rng_.next_below(2) == 0;
        const bool stream = rng_.next_below(4) == 0;
        const auto r = machine_->memory().access(
            now_, {proc, page, lines, write, stream});
        now_ += r.elapsed + 10;
        break;
      }
      case 5:
        if (machine_->kernel().is_mapped(page)) {
          machine_->kernel().migrate_page(page, node);
        }
        break;
      case 6:
        if (machine_->kernel().is_mapped(page)) {
          machine_->kernel().replicate_page(page, node);
        }
        break;
      default:
        if (machine_->kernel().is_mapped(page)) {
          machine_->kernel().collapse_replicas(page);
        }
        break;
    }
  }

  omp::Machine& machine() { return *machine_; }
  [[nodiscard]] std::uint64_t pages() const { return pages_; }
  [[nodiscard]] Ns now() const { return now_; }

 private:
  Rng rng_;
  std::uint64_t pages_;
  std::unique_ptr<omp::Machine> machine_;
  Ns now_ = 0;
};

class FuzzInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzInvariants, FrameAccountingBalances) {
  FuzzDriver driver(GetParam(), 200);
  for (int i = 0; i < 4000; ++i) {
    driver.step();
  }
  const os::Kernel& kernel = driver.machine().kernel();
  // Every allocated frame is either a primary or a replica; free +
  // used == total.
  std::uint64_t used = 0;
  for (const auto& [page, entry] : kernel.page_table().entries()) {
    used += 1 + entry.replicas.size();
  }
  EXPECT_EQ(kernel.physical_memory().total_free() + used,
            driver.machine().config().total_frames());
}

TEST_P(FuzzInvariants, NoFrameIsSharedBetweenPages) {
  FuzzDriver driver(GetParam() ^ 0x1234, 150);
  for (int i = 0; i < 4000; ++i) {
    driver.step();
  }
  std::map<std::uint64_t, VPage> owner_of_frame;
  for (const auto& [page, entry] :
       driver.machine().kernel().page_table().entries()) {
    auto claim = [&](FrameId frame) {
      const auto [it, inserted] =
          owner_of_frame.emplace(frame.value(), page);
      EXPECT_TRUE(inserted) << "frame " << frame.value()
                            << " owned by pages " << it->second.value()
                            << " and " << page.value();
    };
    claim(entry.frame);
    for (const FrameId replica : entry.replicas) {
      claim(replica);
    }
  }
}

TEST_P(FuzzInvariants, CountersNeverExceedHardwareWidth) {
  FuzzDriver driver(GetParam() ^ 0x5678, 100);
  for (int i = 0; i < 3000; ++i) {
    driver.step();
  }
  const os::Kernel& kernel = driver.machine().kernel();
  const std::uint32_t max = driver.machine().config().counter_max();
  for (const auto& [page, entry] : kernel.page_table().entries()) {
    for (const auto count : kernel.read_counters(page)) {
      EXPECT_LE(count, max);
    }
  }
}

TEST_P(FuzzInvariants, HomeNodeMatchesFrameNode) {
  FuzzDriver driver(GetParam() ^ 0x9abc, 150);
  for (int i = 0; i < 3000; ++i) {
    driver.step();
  }
  const os::Kernel& kernel = driver.machine().kernel();
  for (const auto& [page, entry] :
       kernel.page_table().entries()) {
    EXPECT_EQ(kernel.home_of(page),
              kernel.physical_memory().node_of(entry.frame));
  }
}

TEST_P(FuzzInvariants, StatsAccountForEveryLine) {
  FuzzDriver driver(GetParam() ^ 0xdef0, 100);
  std::uint64_t issued_lines = 0;
  // Re-drive accesses through a wrapper to count issued lines exactly.
  auto& machine = driver.machine();
  Rng rng(GetParam());
  Ns now = 0;
  for (int i = 0; i < 2000; ++i) {
    const VPage page(rng.next_below(100));
    const auto lines = static_cast<std::uint32_t>(1 + rng.next_below(128));
    const auto r = machine.memory().access(
        now, {ProcId(static_cast<std::uint32_t>(rng.next_below(8))), page,
              lines, rng.next_below(2) == 0});
    now += r.elapsed + 5;
    issued_lines += lines;
  }
  const memsys::ProcStats total = machine.memory().total_stats();
  EXPECT_EQ(total.hit_lines + total.miss_lines(), issued_lines);
}

TEST_P(FuzzInvariants, WholeRunIsDeterministic) {
  const auto run_digest = [&] {
    FuzzDriver driver(GetParam(), 128);
    for (int i = 0; i < 2500; ++i) {
      driver.step();
    }
    const auto total = driver.machine().memory().total_stats();
    return std::tuple(driver.now(), total.hit_lines,
                      total.remote_miss_lines, total.queue_wait,
                      driver.machine().kernel().stats().migrations);
  };
  EXPECT_EQ(run_digest(), run_digest());
}

TEST_P(FuzzInvariants, UpmlibPassesPreserveMappings) {
  FuzzDriver driver(GetParam() ^ 0x42, 120);
  auto& machine = driver.machine();
  const auto range = machine.address_space().allocate_pages("hot", 120);
  (void)range;
  upm::UpmConfig config;
  config.enable_replication = true;
  config.replication_min_nodes = 2;
  config.replication_min_count = 16;
  upm::Upmlib upmlib(machine.mmci(), machine.runtime(), config);
  upmlib.memrefcnt(range);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 600; ++i) {
      driver.step();
    }
    upmlib.migrate_memory();
    upmlib.notify_thread_rebinding();  // keep passes coming
    // Every hot page that was ever mapped stays mapped with a valid
    // home.
    for (std::uint64_t p = 0; p < range.count; ++p) {
      if (machine.kernel().is_mapped(range.page(p))) {
        EXPECT_LT(machine.kernel().home_of(range.page(p)).value(), 8u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariants,
                         ::testing::Values(1, 7, 42, 1999, 123456789));

}  // namespace
}  // namespace repro
