// Golden-trace regression suite.
//
// One tiny configuration per benchmark x placement x engine is run
// under tracing, and its canonical-trace digest plus its
// migrations-per-timed-iteration vector are compared against the
// checked-in goldens in tests/golden/trace_digests.txt. Any change to
// the simulated timeline -- placement, migration policy, cost model,
// event schema -- shows up as a digest mismatch here before it can
// silently shift the paper figures.
//
// Regenerate the goldens after an intentional change with:
//
//   REPRO_UPDATE_GOLDEN=1 ./build/tests/test_golden_trace
//
// and review the diff of tests/golden/trace_digests.txt like any other
// code change.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "repro/common/env.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/trace/metrics.hpp"

namespace repro::harness {
namespace {

constexpr const char* kGoldenFile = GOLDEN_DIR "/trace_digests.txt";

/// The golden matrix: every benchmark under the paper's three main
/// placements, base vs UPMlib distribution. Small enough to run in
/// seconds, large enough that every emitting subsystem is covered.
std::vector<RunConfig> golden_configs() {
  std::vector<RunConfig> configs;
  for (const auto& benchmark : nas::workload_names()) {
    for (const std::string placement : {"ft", "rr", "wc"}) {
      for (const bool upmlib : {false, true}) {
        RunConfig config;
        config.benchmark = benchmark;
        config.placement = placement;
        config.iterations = 3;
        config.workload.size_scale = 0.25;
        config.trace = true;
        if (upmlib) {
          config.upm_mode = nas::UpmMode::kDistribution;
        }
        configs.push_back(std::move(config));
      }
    }
  }
  return configs;
}

std::string key_of(const RunResult& result) {
  return result.benchmark + " " + result.label;
}

std::vector<std::uint64_t> migration_vector(const RunResult& result) {
  std::vector<std::uint64_t> out;
  for (const trace::IterationMetrics& m : result.iteration_metrics) {
    if (m.iteration >= 1) {
      out.push_back(m.migrations);
    }
  }
  return out;
}

std::string render_vector(const std::vector<std::uint64_t>& v) {
  if (v.empty()) {
    return "-";
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i];
  }
  return os.str();
}

struct GoldenEntry {
  std::string digest;
  std::string migrations;  // rendered vector
};

std::map<std::string, GoldenEntry> load_goldens() {
  std::map<std::string, GoldenEntry> goldens;
  std::ifstream in(kGoldenFile);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string benchmark;
    std::string label;
    GoldenEntry entry;
    fields >> benchmark >> label >> entry.digest >> entry.migrations;
    goldens[benchmark + " " + label] = entry;
  }
  return goldens;
}

void write_goldens(const std::vector<RunResult>& results) {
  std::ofstream out(kGoldenFile);
  ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
  out << "# Golden canonical-trace digests (FNV-1a 64 of the canonical "
         "dump)\n"
         "# for the tiny regression matrix: every benchmark x {ft, rr, "
         "wc}\n"
         "# x {base, upmlib}, iterations=3, size_scale=0.25.\n"
         "#\n"
         "# Regenerate: REPRO_UPDATE_GOLDEN=1 "
         "./build/tests/test_golden_trace\n"
         "#\n"
         "# benchmark label digest migrations_per_timed_iteration\n";
  for (const RunResult& r : results) {
    out << key_of(r) << ' ' << r.trace_digest << ' '
        << render_vector(migration_vector(r)) << '\n';
  }
}

// One TEST on purpose: the 30-cell matrix runs twice (jobs=4 and
// jobs=1) and every assertion below reuses those results.
TEST(GoldenTrace, DigestsStableAcrossJobsAndMatchCheckedInGoldens) {
  const std::vector<RunConfig> configs = golden_configs();
  const std::vector<RunResult> parallel = run_experiments(configs, 4);
  const std::vector<RunResult> serial = run_experiments(configs, 1);
  ASSERT_EQ(parallel.size(), configs.size());
  ASSERT_EQ(serial.size(), configs.size());

  // Acceptance gate: the digest of every golden cell is byte-identical
  // between --jobs=1 and --jobs=4.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(serial[i].trace_digest.size(), 16u) << key_of(serial[i]);
    EXPECT_EQ(parallel[i].trace_digest, serial[i].trace_digest)
        << key_of(serial[i]) << ": digest depends on the job count";
    EXPECT_EQ(migration_vector(parallel[i]), migration_vector(serial[i]))
        << key_of(serial[i]);
  }

  // Paper Table 2: with the UPMlib distribution engine, the bulk of
  // the migrations (78-100% in the paper) happen in the first outer
  // iteration; later iterations run on an already-tuned placement.
  for (const RunResult& r : serial) {
    if (r.label.find("upmlib") == std::string::npos) {
      continue;
    }
    const std::vector<std::uint64_t> migrations = migration_vector(r);
    ASSERT_FALSE(migrations.empty()) << key_of(r);
    std::uint64_t total = 0;
    for (const std::uint64_t m : migrations) {
      total += m;
    }
    if (total == 0) {
      continue;  // placement already optimal for this cell
    }
    const double first_fraction =
        static_cast<double>(migrations.front()) /
        static_cast<double>(total);
    EXPECT_GE(first_fraction, 0.75)
        << key_of(r) << ": migrations " << render_vector(migrations);
  }

  if (Env::global().get_bool("REPRO_UPDATE_GOLDEN", false)) {
    write_goldens(serial);
    std::cout << "[  UPDATED ] " << kGoldenFile << " ("
              << serial.size() << " entries)\n";
    return;
  }

  const std::map<std::string, GoldenEntry> goldens = load_goldens();
  ASSERT_FALSE(goldens.empty())
      << "no goldens at " << kGoldenFile
      << "; generate them with REPRO_UPDATE_GOLDEN=1";
  ASSERT_EQ(goldens.size(), configs.size())
      << "golden file entry count does not match the config matrix; "
         "regenerate with REPRO_UPDATE_GOLDEN=1";
  for (const RunResult& r : serial) {
    const auto it = goldens.find(key_of(r));
    ASSERT_NE(it, goldens.end()) << "no golden entry for " << key_of(r);
    EXPECT_EQ(r.trace_digest, it->second.digest)
        << key_of(r)
        << ": canonical trace changed; if intentional, regenerate with "
           "REPRO_UPDATE_GOLDEN=1 and review the diff";
    EXPECT_EQ(render_vector(migration_vector(r)), it->second.migrations)
        << key_of(r) << ": per-iteration migration counts changed";
  }
}

}  // namespace
}  // namespace repro::harness
