// Topology tests: metric properties of the fat hypercube, ring and
// crossbar, parameterized over machine sizes.
#include <gtest/gtest.h>

#include <set>

#include "repro/common/assert.hpp"
#include "repro/topology/topology.hpp"

namespace repro::topo {
namespace {

TEST(FatHypercube, RejectsBadSizes) {
  EXPECT_THROW(FatHypercube(0), ContractViolation);
  EXPECT_THROW(FatHypercube(1), ContractViolation);
  EXPECT_THROW(FatHypercube(12), ContractViolation);  // not a power of two
}

TEST(FatHypercube, SixteenNodesMatchesPaperTopology) {
  // The paper's machine: 16 nodes, two per router, 8 routers in a
  // 3-cube; remote distances range over 1..3 hops (Table 1).
  const FatHypercube topo(16);
  EXPECT_EQ(topo.dimension(), 3u);
  EXPECT_EQ(topo.max_hops(), 3u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(0)), 0u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(1)), 1u);  // same router
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(2)), 1u);  // adjacent router
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(14)), 3u);  // opposite corner
  // Every remote distance 1..3 is realized from node 0.
  std::set<unsigned> seen;
  for (std::uint32_t n = 1; n < 16; ++n) {
    seen.insert(topo.hops(NodeId(0), NodeId(n)));
  }
  EXPECT_EQ(seen, (std::set<unsigned>{1, 2, 3}));
}

TEST(FatHypercube, RouterPairsShareDistanceOne) {
  const FatHypercube topo(16);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(topo.router_of(NodeId(2 * r)), r);
    EXPECT_EQ(topo.router_of(NodeId(2 * r + 1)), r);
    EXPECT_EQ(topo.hops(NodeId(2 * r), NodeId(2 * r + 1)), 1u);
  }
}

class TopologyMetric : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyMetric, FatHypercubeIsAMetric) {
  const std::size_t n = GetParam();
  const FatHypercube topo(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    EXPECT_EQ(topo.hops(NodeId(a), NodeId(a)), 0u);
    for (std::uint32_t b = 0; b < n; ++b) {
      const unsigned d = topo.hops(NodeId(a), NodeId(b));
      // Symmetry.
      EXPECT_EQ(d, topo.hops(NodeId(b), NodeId(a)));
      if (a != b) {
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, topo.max_hops());
      }
    }
  }
}

TEST_P(TopologyMetric, RingIsAMetric) {
  const std::size_t n = GetParam();
  const Ring topo(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      const unsigned d = topo.hops(NodeId(a), NodeId(b));
      EXPECT_EQ(d, topo.hops(NodeId(b), NodeId(a)));
      EXPECT_LE(d, n / 2);
      EXPECT_EQ(d == 0, a == b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyMetric,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Ring, NeighbourAndAntipode) {
  const Ring topo(8);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(1)), 1u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(7)), 1u);  // wraps
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(4)), 4u);
  EXPECT_EQ(topo.max_hops(), 4u);
}

TEST(Crossbar, AllRemoteDistancesAreOne) {
  const Crossbar topo(16);
  EXPECT_EQ(topo.max_hops(), 1u);
  for (std::uint32_t n = 1; n < 16; ++n) {
    EXPECT_EQ(topo.hops(NodeId(0), NodeId(n)), 1u);
  }
}

TEST(Topology, BoundsChecked) {
  const FatHypercube topo(8);
  EXPECT_THROW(topo.hops(NodeId(8), NodeId(0)), ContractViolation);
  EXPECT_THROW(topo.hops(NodeId(0), NodeId(100)), ContractViolation);
}

TEST(Factory, CreatesByName) {
  EXPECT_EQ(make_topology("fat-hypercube", 16)->name(), "fat-hypercube");
  EXPECT_EQ(make_topology("ring", 16)->name(), "ring");
  EXPECT_EQ(make_topology("crossbar", 16)->name(), "crossbar");
  EXPECT_THROW(make_topology("torus", 16), ContractViolation);
}

TEST(FatHypercube, LargerMachineHasLargerDiameter) {
  // The paper argues placement would matter more on bigger machines;
  // the topology delivers the growing distance range.
  EXPECT_LT(FatHypercube(16).max_hops(), FatHypercube(128).max_hops());
}

}  // namespace
}  // namespace repro::topo
