// Topology tests: metric properties of the fat hypercube, ring,
// crossbar and hierarchical tree, parameterized over machine sizes,
// plus the --topology spec parser.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/omp/machine.hpp"
#include "repro/topology/topology.hpp"

namespace repro::topo {
namespace {

TEST(FatHypercube, RejectsBadSizes) {
  // Configuration errors are std::invalid_argument (CLI-reportable),
  // not contract violations.
  EXPECT_THROW(FatHypercube(0), std::invalid_argument);
  EXPECT_THROW(FatHypercube(1), std::invalid_argument);
  EXPECT_THROW(FatHypercube(12), std::invalid_argument);  // not a power of two
}

TEST(FatHypercube, SixteenNodesMatchesPaperTopology) {
  // The paper's machine: 16 nodes, two per router, 8 routers in a
  // 3-cube; remote distances range over 1..3 hops (Table 1).
  const FatHypercube topo(16);
  EXPECT_EQ(topo.dimension(), 3u);
  EXPECT_EQ(topo.max_hops(), 3u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(0)), 0u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(1)), 1u);  // same router
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(2)), 1u);  // adjacent router
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(14)), 3u);  // opposite corner
  // Every remote distance 1..3 is realized from node 0.
  std::set<unsigned> seen;
  for (std::uint32_t n = 1; n < 16; ++n) {
    seen.insert(topo.hops(NodeId(0), NodeId(n)));
  }
  EXPECT_EQ(seen, (std::set<unsigned>{1, 2, 3}));
}

TEST(FatHypercube, RouterPairsShareDistanceOne) {
  const FatHypercube topo(16);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(topo.router_of(NodeId(2 * r)), r);
    EXPECT_EQ(topo.router_of(NodeId(2 * r + 1)), r);
    EXPECT_EQ(topo.hops(NodeId(2 * r), NodeId(2 * r + 1)), 1u);
  }
}

class TopologyMetric : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyMetric, FatHypercubeIsAMetric) {
  const std::size_t n = GetParam();
  const FatHypercube topo(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    EXPECT_EQ(topo.hops(NodeId(a), NodeId(a)), 0u);
    for (std::uint32_t b = 0; b < n; ++b) {
      const unsigned d = topo.hops(NodeId(a), NodeId(b));
      // Symmetry.
      EXPECT_EQ(d, topo.hops(NodeId(b), NodeId(a)));
      if (a != b) {
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, topo.max_hops());
      }
    }
  }
}

TEST_P(TopologyMetric, RingIsAMetric) {
  const std::size_t n = GetParam();
  const Ring topo(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      const unsigned d = topo.hops(NodeId(a), NodeId(b));
      EXPECT_EQ(d, topo.hops(NodeId(b), NodeId(a)));
      EXPECT_LE(d, n / 2);
      EXPECT_EQ(d == 0, a == b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyMetric,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Ring, NeighbourAndAntipode) {
  const Ring topo(8);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(1)), 1u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(7)), 1u);  // wraps
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(4)), 4u);
  EXPECT_EQ(topo.max_hops(), 4u);
}

TEST(Crossbar, AllRemoteDistancesAreOne) {
  const Crossbar topo(16);
  EXPECT_EQ(topo.max_hops(), 1u);
  for (std::uint32_t n = 1; n < 16; ++n) {
    EXPECT_EQ(topo.hops(NodeId(0), NodeId(n)), 1u);
  }
}

TEST(Topology, BoundsChecked) {
  const FatHypercube topo(8);
  EXPECT_THROW(topo.hops(NodeId(8), NodeId(0)), ContractViolation);
  EXPECT_THROW(topo.hops(NodeId(0), NodeId(100)), ContractViolation);
}

TEST(Factory, CreatesByName) {
  EXPECT_EQ(make_topology("fat-hypercube", 16)->name(), "fat-hypercube");
  EXPECT_EQ(make_topology("ring", 16)->name(), "ring");
  EXPECT_EQ(make_topology("crossbar", 16)->name(), "crossbar");
  EXPECT_EQ(make_topology("hier:8x2x4", 64)->name(), "hier:8x2x4");
  EXPECT_THROW(make_topology("torus", 16), std::invalid_argument);
  // A hier spec whose arity product disagrees with the machine size
  // must fail at construction, not misroute accesses later.
  EXPECT_THROW(make_topology("hier:8x2x4", 16), std::invalid_argument);
}

TEST(FatHypercube, LargerMachineHasLargerDiameter) {
  // The paper argues placement would matter more on bigger machines;
  // the topology delivers the growing distance range.
  EXPECT_LT(FatHypercube(16).max_hops(), FatHypercube(128).max_hops());
}

// --- hierarchical topology -------------------------------------------------

TEST(Hierarchical, ExampleFromIssue) {
  // sockets=8, dies=2, nodes=4 -> 64 logical nodes, distances 1..3.
  const HierarchicalTopology topo({{8, 1}, {2, 1}, {4, 1}});
  EXPECT_EQ(topo.num_nodes(), 64u);
  EXPECT_EQ(topo.max_hops(), 3u);
  EXPECT_EQ(topo.name(), "hier:8x2x4");
  // Same die: one innermost crossing.
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(3)), 1u);
  // Same socket, different die.
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(4)), 2u);
  // Different socket.
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(8)), 3u);
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(63)), 3u);
}

TEST(Hierarchical, PerLevelCostsSumAlongLcaPath) {
  const HierarchicalTopology topo({{8, 4}, {2, 2}, {4, 1}});
  EXPECT_EQ(topo.name(), "hier:8x2x4@4,2,1");
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(3)), 1u);   // die crossing
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(4)), 3u);   // 2 + 1
  EXPECT_EQ(topo.hops(NodeId(0), NodeId(8)), 7u);   // 4 + 2 + 1
  EXPECT_EQ(topo.max_hops(), 7u);
}

TEST(Hierarchical, RejectsBadLevels) {
  EXPECT_THROW(HierarchicalTopology({}), std::invalid_argument);
  EXPECT_THROW(HierarchicalTopology({{1, 1}}), std::invalid_argument);
  EXPECT_THROW(HierarchicalTopology({{4, 0}}), std::invalid_argument);
}

/// The hierarchy specs the property grid runs over (mixed arities,
/// non-default costs, single level, deep trees).
std::vector<std::vector<HierarchicalTopology::Level>> hierarchy_grid() {
  return {
      {{2, 1}},
      {{4, 1}, {4, 1}},
      {{8, 1}, {2, 1}, {4, 1}},
      {{8, 4}, {2, 2}, {4, 1}},
      {{2, 3}, {2, 2}, {2, 2}, {2, 1}},
      {{3, 5}, {5, 1}},
  };
}

/// Every topology the suite knows, at representative sizes.
std::vector<std::unique_ptr<Topology>> property_topologies() {
  std::vector<std::unique_ptr<Topology>> out;
  for (const std::size_t n : {std::size_t{2}, std::size_t{16},
                              std::size_t{64}}) {
    out.push_back(std::make_unique<FatHypercube>(n));
    out.push_back(std::make_unique<Ring>(n));
    out.push_back(std::make_unique<Crossbar>(n));
  }
  for (const auto& levels : hierarchy_grid()) {
    out.push_back(std::make_unique<HierarchicalTopology>(levels));
  }
  return out;
}

TEST(TopologyProperties, SymmetryIdentityAndMaxHopsTightness) {
  for (const auto& topo : property_topologies()) {
    const std::size_t n = topo->num_nodes();
    unsigned seen_max = 0;
    for (std::uint32_t a = 0; a < n; ++a) {
      EXPECT_EQ(topo->hops(NodeId(a), NodeId(a)), 0u) << topo->name();
      for (std::uint32_t b = 0; b < n; ++b) {
        const unsigned d = topo->hops(NodeId(a), NodeId(b));
        EXPECT_EQ(d, topo->hops(NodeId(b), NodeId(a))) << topo->name();
        EXPECT_EQ(d == 0, a == b) << topo->name();
        EXPECT_LE(d, topo->max_hops()) << topo->name();
        seen_max = std::max(seen_max, d);
      }
    }
    // Tightness: max_hops() is realized, not just an upper bound.
    EXPECT_EQ(seen_max, topo->max_hops()) << topo->name();
  }
}

TEST(TopologyProperties, LcaPathCostIsMonotoneInDepth) {
  // A deeper (closer-to-the-leaves) common ancestor never costs more:
  // hop distance is strictly decreasing in LCA depth for distinct
  // leaves because every level's crossing cost is positive.
  for (const auto& levels : hierarchy_grid()) {
    const HierarchicalTopology topo(levels);
    const std::size_t n = topo.num_nodes();
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = 0; b < n; ++b) {
        for (std::uint32_t c = 0; c < n; ++c) {
          if (a == b || a == c) {
            continue;
          }
          const std::size_t db = topo.lca_depth(NodeId(a), NodeId(b));
          const std::size_t dc = topo.lca_depth(NodeId(a), NodeId(c));
          if (db > dc) {
            EXPECT_LT(topo.hops(NodeId(a), NodeId(b)),
                      topo.hops(NodeId(a), NodeId(c)))
                << topo.name();
          }
        }
      }
    }
  }
}

// --- spec parser -------------------------------------------------------------

TEST(ParseTopology, FlatSpecsWithAndWithoutSize) {
  EXPECT_EQ(parse_topology("fat-hypercube", 16).num_nodes, 16u);
  EXPECT_EQ(parse_topology("fat-hypercube:64", 16).num_nodes, 64u);
  EXPECT_EQ(parse_topology("ring:10", 16).name, "ring");
  EXPECT_EQ(parse_topology("crossbar:5", 16).num_nodes, 5u);
}

TEST(ParseTopology, HierSpecs) {
  const ParsedTopology p = parse_topology("hier:8x2x4", 16);
  EXPECT_EQ(p.name, "hier:8x2x4");
  EXPECT_EQ(p.num_nodes, 64u);
  // Labeled grammar normalizes to the numeric form.
  const ParsedTopology q = parse_topology("hier:sockets=8,dies=2,nodes=4", 16);
  EXPECT_EQ(q.name, "hier:8x2x4");
  EXPECT_EQ(q.num_nodes, 64u);
  const ParsedTopology c = parse_topology("hier:8x2x4@4,2,1", 16);
  EXPECT_EQ(c.name, "hier:8x2x4@4,2,1");
  // name round-trips through make_topology.
  EXPECT_EQ(make_topology(c.name, c.num_nodes)->max_hops(), 7u);
}

TEST(ParseTopology, MalformedSpecsFailFast) {
  EXPECT_THROW(parse_topology("torus", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("fat-hypercube:12", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("fat-hypercube:abc", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("fat-hypercube:", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:8x0x4", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:8x2x4@1,2", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:8x2x4@", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:sockets=", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("hier:=8", 16), std::invalid_argument);
  EXPECT_THROW(parse_topology("ring:-3", 16), std::invalid_argument);
}

// Machine construction accepts any spec the parser does (count-suffixed
// and labeled forms included) and reports node-count disagreements as
// configuration errors, not contract violations.
TEST(ParseTopology, MachineCreateNormalizesSpecs) {
  memsys::MachineConfig config;
  config.num_nodes = 16;
  config.topology = "fat-hypercube:16";
  EXPECT_EQ(omp::Machine::create(config)->topology().name(),
            "fat-hypercube");

  config.num_nodes = 64;
  config.topology = "hier:sockets=4,dies=4,nodes=4";
  EXPECT_EQ(omp::Machine::create(config)->topology().name(), "hier:4x4x4");

  config.num_nodes = 16;
  config.topology = "fat-hypercube:32";
  EXPECT_THROW(omp::Machine::create(config), std::invalid_argument);
  config.topology = "hier:4x4x4";
  EXPECT_THROW(omp::Machine::create(config), std::invalid_argument);
}

}  // namespace
}  // namespace repro::topo
