// Thread-to-processor binding tests: the runtime's rebinding support
// (the OS scheduler moving threads) and UPMlib's scheduler
// notification, which re-enables migration after the recorded traces
// become stale (the paper's footnote-3 scenario).
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::omp {
namespace {

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 256;
  return config;
}

TEST(Binding, IdentityByDefault) {
  auto machine = Machine::create(small_config());
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(machine->runtime().proc_of(ThreadId(t)), ProcId(t));
  }
}

TEST(Binding, RebindAndSwap) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  rt.swap_binding(ThreadId(0), ThreadId(3));
  EXPECT_EQ(rt.proc_of(ThreadId(0)), ProcId(3));
  EXPECT_EQ(rt.proc_of(ThreadId(3)), ProcId(0));
  // Rebinding onto an occupied processor is rejected.
  EXPECT_THROW(rt.rebind(ThreadId(1), ProcId(3)), ContractViolation);
  // Rebinding a thread onto its own processor is fine.
  EXPECT_NO_THROW(rt.rebind(ThreadId(1), ProcId(1)));
}

TEST(Binding, AccessesFollowTheBinding) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  rt.swap_binding(ThreadId(0), ThreadId(2));

  // Thread 0 (now on processor 2) first-touches a page: it must land
  // on node 2.
  sim::RegionBuilder region = rt.make_region();
  region.access(ThreadId(0), VPage(7), 1, true);
  rt.run("touch", std::move(region));
  EXPECT_EQ(machine->kernel().home_of(VPage(7)), NodeId(2));
  EXPECT_GT(machine->memory().stats(ProcId(2)).miss_lines(), 0u);
  EXPECT_EQ(machine->memory().stats(ProcId(0)).miss_lines(), 0u);
}

TEST(Binding, RebindingMakesLocalPagesRemote) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();

  const auto touch = [&](ThreadId t, VPage page) {
    machine->memory().flush_page(page);
    sim::RegionBuilder region = rt.make_region();
    region.access(t, page, 64, false);
    return rt.run("sweep", std::move(region)).duration();
  };
  touch(ThreadId(1), VPage(5));           // faults onto node 1
  const Ns local = touch(ThreadId(1), VPage(5));
  rt.swap_binding(ThreadId(1), ThreadId(3));
  const Ns remote = touch(ThreadId(1), VPage(5));
  EXPECT_GT(remote, local);
}

TEST(Binding, UpmlibNotificationReactivatesEngine) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  const auto range = machine->address_space().allocate_pages("hot", 4);
  upm::Upmlib upmlib(machine->mmci(), rt, {});
  upmlib.memrefcnt(range);

  const auto hammer = [&](ThreadId t, VPage page) {
    for (int i = 0; i < 2; ++i) {
      machine->memory().flush_page(page);
      sim::RegionBuilder region = rt.make_region();
      region.access(t, page, 128, false);
      rt.run("hammer", std::move(region));
    }
  };

  // Thread 1 owns the page; engine deactivates (nothing to move).
  hammer(ThreadId(1), range.page(0));
  EXPECT_EQ(upmlib.migrate_memory(), 0u);
  EXPECT_FALSE(upmlib.active());

  // Scheduler moves thread 1 to processor 3: its page is now remote,
  // but the deactivated engine ignores new traffic...
  rt.swap_binding(ThreadId(1), ThreadId(3));
  hammer(ThreadId(1), range.page(0));
  EXPECT_EQ(upmlib.migrate_memory(), 0u);
  EXPECT_EQ(machine->kernel().home_of(range.page(0)), NodeId(1));

  // ...until the scheduler notifies it.
  upmlib.notify_thread_rebinding();
  EXPECT_TRUE(upmlib.active());
  hammer(ThreadId(1), range.page(0));
  EXPECT_EQ(upmlib.migrate_memory(), 1u);
  EXPECT_EQ(machine->kernel().home_of(range.page(0)), NodeId(3));
}

TEST(Binding, NotificationClearsFreezeHistory) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  const auto range = machine->address_space().allocate_pages("hot", 1);
  upm::Upmlib upmlib(machine->mmci(), rt, {});
  upmlib.memrefcnt(range);
  machine->memory().access(0, {ProcId(0), range.page(0), 1, true});

  // Force a freeze via ping-pong.
  const auto miss = [&](ProcId p, std::uint32_t lines) {
    machine->memory().flush_page(range.page(0));
    machine->memory().access(0, {p, range.page(0), lines, false});
  };
  miss(ProcId(1), 100);
  upmlib.migrate_memory();
  miss(ProcId(0), 100);
  upmlib.migrate_memory();  // wants to bounce back -> frozen
  EXPECT_EQ(upmlib.stats().frozen_pages, 1u);

  upmlib.notify_thread_rebinding();
  EXPECT_EQ(upmlib.stats().frozen_pages, 0u);
  // The page can move again after the reset.
  miss(ProcId(2), 100);
  EXPECT_EQ(upmlib.migrate_memory(), 1u);
  EXPECT_EQ(machine->kernel().home_of(range.page(0)), NodeId(2));
}

TEST(Binding, NotificationDropsStaleReplayPlans) {
  auto machine = Machine::create(small_config());
  Runtime& rt = machine->runtime();
  const auto range = machine->address_space().allocate_pages("hot", 2);
  upm::Upmlib upmlib(machine->mmci(), rt, {});
  upmlib.memrefcnt(range);
  machine->memory().access(0, {ProcId(0), range.page(0), 64, true});
  upmlib.record();
  machine->memory().flush_page(range.page(0));
  machine->memory().access(0, {ProcId(3), range.page(0), 64, false});
  upmlib.record();
  upmlib.compare_counters();
  ASSERT_EQ(upmlib.num_transitions(), 1u);

  upmlib.notify_thread_rebinding();
  EXPECT_EQ(upmlib.num_transitions(), 0u);
  EXPECT_NO_THROW(upmlib.replay());  // no-op, not a stale migration
}

}  // namespace
}  // namespace repro::omp
