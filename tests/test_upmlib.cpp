// UPMlib tests: the competitive criterion, the iterative distribution
// mechanism (self-deactivation, freezing, critical-page cap, counter
// hygiene) and the record--replay redistribution protocol.
#include <gtest/gtest.h>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::upm {
namespace {

memsys::MachineConfig small_config() {
  memsys::MachineConfig config;
  config.num_nodes = 4;
  config.procs_per_node = 1;
  config.frames_per_node = 128;
  return config;
}

struct Fixture {
  std::unique_ptr<omp::Machine> machine = omp::Machine::create(small_config());
  vm::PageRange range;

  explicit Fixture(std::uint64_t pages = 8, UpmConfig config = {}) {
    range = machine->address_space().allocate_pages("hot", pages);
    upm = std::make_unique<Upmlib>(machine->mmci(), machine->runtime(),
                                   config);
    upm->memrefcnt(range);
  }

  /// Issues `lines` worth of misses from `proc` to `page` (flushing the
  /// cache before each batch so every line counts), in page-sized
  /// chunks.
  void miss(ProcId proc, VPage page, std::uint32_t lines) {
    const std::uint32_t max = machine->config().lines_per_page();
    while (lines > 0) {
      const std::uint32_t chunk = std::min(lines, max);
      machine->memory().flush_page(page);
      machine->memory().access(now, {proc, page, chunk, false});
      now += 1000;
      lines -= chunk;
    }
  }

  std::unique_ptr<Upmlib> upm;
  Ns now = 0;
};

TEST(UpmConfig, FromEnvOverrides) {
  ScopedEnv a("UPM_THRESHOLD", "3.5");
  ScopedEnv b("UPM_CRITICAL_PAGES", "7");
  ScopedEnv c("UPM_FREEZE", "off");
  const UpmConfig config = UpmConfig::from_env();
  EXPECT_DOUBLE_EQ(config.threshold, 3.5);
  EXPECT_EQ(config.max_critical_pages, 7u);
  EXPECT_FALSE(config.freeze_bouncing_pages);
}

TEST(Upmlib, MigratesPageToDominantAccessor) {
  Fixture f;
  // Page 0 of the range faults on proc 0's node, then proc 2 dominates.
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 10);
  f.miss(ProcId(2), page, 100);
  ASSERT_EQ(f.machine->kernel().home_of(page), NodeId(0));

  EXPECT_EQ(f.upm->migrate_memory(), 1u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(2));
  EXPECT_EQ(f.upm->stats().distribution_migrations, 1u);
  EXPECT_GT(f.upm->stats().distribution_cost, 0u);
}

TEST(Upmlib, CompetitiveCriterionProtectsBalancedPages) {
  // racc_max / lacc must exceed the threshold (default 2): a page with
  // comparable local and remote traffic stays put.
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 100);
  f.miss(ProcId(1), page, 150);  // ratio 1.5 < 2
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
}

TEST(Upmlib, NeverLocallyAccessedPageIsMaximallyEligible) {
  Fixture f;
  const VPage page = f.range.page(0);
  // Fault on node 0 with a single write, then only remote traffic.
  f.machine->memory().access(0, {ProcId(0), page, 1, true});
  f.machine->kernel().reset_counters(page);
  f.miss(ProcId(3), page, 3);  // tiny, but lacc == 0
  EXPECT_EQ(f.upm->migrate_memory(), 1u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(3));
}

TEST(Upmlib, SelfDeactivatesWhenNothingMoves) {
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 100);
  EXPECT_TRUE(f.upm->active());
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
  EXPECT_FALSE(f.upm->active());
  // Further invocations are no-ops even with new remote traffic.
  f.miss(ProcId(1), page, 1000);
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
}

TEST(Upmlib, CountersAreResetAfterEveryPass) {
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(1), page, 200);
  f.upm->migrate_memory();
  const auto counts = f.machine->mmci().read_counters(page);
  for (const auto c : counts) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(Upmlib, FreezesPingPongingPages) {
  // Page bounces: remote-dominant from node 1 in pass 1, then from the
  // original node 0 in pass 2 -> the page wants to go straight back:
  // freeze it (page-level false sharing control, paper Section 3.2).
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 10);
  f.miss(ProcId(1), page, 100);
  EXPECT_EQ(f.upm->migrate_memory(), 1u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(1));

  f.miss(ProcId(0), page, 100);  // now node 0 dominates again
  f.miss(ProcId(2), page, 10);
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(1));  // frozen
  EXPECT_EQ(f.upm->stats().frozen_pages, 1u);

  // Frozen stays frozen in later passes too... but deactivation kicked
  // in after the zero-migration pass, which is also correct behaviour.
  EXPECT_FALSE(f.upm->active());
}

TEST(Upmlib, FreezingCanBeDisabled) {
  UpmConfig config;
  config.freeze_bouncing_pages = false;
  Fixture f(8, config);
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 10);
  f.miss(ProcId(1), page, 100);
  f.upm->migrate_memory();
  f.miss(ProcId(0), page, 100);
  EXPECT_EQ(f.upm->migrate_memory(), 1u);
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
}

TEST(Upmlib, CriticalPageCapDoesNotLimitDistributionPass) {
  // The paper's n-most-critical-pages knob throttles the per-iteration
  // replay migrations; the one-time distribution pass moves everything
  // that qualifies.
  UpmConfig config;
  config.max_critical_pages = 2;
  Fixture f(8, config);
  f.miss(ProcId(0), f.range.page(0), 10);
  f.miss(ProcId(1), f.range.page(0), 200);
  f.miss(ProcId(0), f.range.page(1), 10);
  f.miss(ProcId(1), f.range.page(1), 100);
  f.miss(ProcId(0), f.range.page(2), 10);
  f.miss(ProcId(1), f.range.page(2), 50);
  EXPECT_EQ(f.upm->migrate_memory(), 3u);
  for (std::uint64_t p = 0; p < 3; ++p) {
    EXPECT_EQ(f.machine->kernel().home_of(f.range.page(p)), NodeId(1));
  }
}

TEST(Upmlib, ChargesMasterThreadTime) {
  Fixture f;
  f.miss(ProcId(0), f.range.page(0), 10);
  f.miss(ProcId(1), f.range.page(0), 100);
  const Ns before = f.machine->runtime().now();
  f.upm->migrate_memory();
  EXPECT_GT(f.machine->runtime().now(), before);
}

TEST(Upmlib, StatsTrackInvocations) {
  Fixture f;
  f.miss(ProcId(0), f.range.page(0), 10);
  f.miss(ProcId(1), f.range.page(0), 100);
  f.miss(ProcId(0), f.range.page(1), 10);
  f.miss(ProcId(2), f.range.page(1), 100);
  f.upm->migrate_memory();  // 2 migrations
  f.miss(ProcId(0), f.range.page(2), 10);   // homes page 2 on node 0
  f.miss(ProcId(3), f.range.page(2), 100);  // node 3 dominates
  f.upm->migrate_memory();  // 1 more
  const UpmStats& stats = f.upm->stats();
  ASSERT_EQ(stats.migrations_per_invocation.size(), 2u);
  EXPECT_EQ(stats.migrations_per_invocation[0], 2u);
  EXPECT_EQ(stats.migrations_per_invocation[1], 1u);
  EXPECT_NEAR(stats.first_invocation_fraction(), 2.0 / 3.0, 1e-12);
  ASSERT_EQ(stats.migrations_per_range.size(), 1u);
  EXPECT_EQ(stats.migrations_per_range[0], 3u);
}

TEST(Upmlib, UnmappedHotPagesAreSkipped) {
  Fixture f(8);
  // Nothing mapped at all: no candidates, engine deactivates cleanly.
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
}

// --- record--replay ---------------------------------------------------------

TEST(RecordReplay, RequiresTwoRecords) {
  Fixture f;
  f.upm->record();
  EXPECT_THROW(f.upm->compare_counters(), ContractViolation);
}

TEST(RecordReplay, IsolatesPhaseTraceAndReplays) {
  Fixture f;
  const VPage page = f.range.page(0);
  // Establish home on node 0 with heavy traffic (the xy pattern).
  f.miss(ProcId(0), page, 200);
  // Record V1, run the "phase" (node 3 dominates), record V2.
  f.upm->record();
  f.miss(ProcId(3), page, 150);
  f.upm->record();
  f.upm->compare_counters();
  ASSERT_EQ(f.upm->num_transitions(), 1u);
  const auto& list = f.upm->replay_list(0);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].page, page);
  EXPECT_EQ(list[0].target, NodeId(3));

  // Replay migrates to the phase-optimal node; undo restores.
  f.upm->replay();
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(3));
  f.upm->undo();
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
  EXPECT_EQ(f.upm->stats().replay_migrations, 1u);
  EXPECT_EQ(f.upm->stats().undo_migrations, 1u);
  EXPECT_GT(f.upm->stats().recrep_cost, 0u);
}

TEST(RecordReplay, WholeIterationTraceDoesNotQualify) {
  // The phase change is invisible in whole-iteration counters: home
  // traffic dominates overall, only the isolated phase trace flips.
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 400);
  f.upm->record();
  f.miss(ProcId(3), page, 150);
  f.upm->record();
  // Whole-trace criterion: 150 / 400 < 2 -> distribution pass skips it.
  EXPECT_EQ(f.upm->migrate_memory(), 0u);
  // Phase-isolated criterion: 150 / 0 -> replay list catches it.
  f.upm->compare_counters();
  EXPECT_EQ(f.upm->replay_list(0).size(), 1u);
}

TEST(RecordReplay, MultipleTransitions) {
  Fixture f;
  const VPage a = f.range.page(0);
  const VPage b = f.range.page(1);
  f.miss(ProcId(0), a, 100);
  f.miss(ProcId(0), b, 100);
  f.upm->record();
  f.miss(ProcId(1), a, 100);  // phase 1: node 1 takes page a
  f.upm->record();
  f.miss(ProcId(2), b, 100);  // phase 2: node 2 takes page b
  f.upm->record();
  f.upm->compare_counters();
  ASSERT_EQ(f.upm->num_transitions(), 2u);
  EXPECT_EQ(f.upm->replay_list(0)[0].page, a);
  EXPECT_EQ(f.upm->replay_list(1)[0].page, b);

  // The replay cursor cycles through the transitions.
  f.upm->replay();
  EXPECT_EQ(f.machine->kernel().home_of(a), NodeId(1));
  f.upm->replay();
  EXPECT_EQ(f.machine->kernel().home_of(b), NodeId(2));
  f.upm->undo();
  EXPECT_EQ(f.machine->kernel().home_of(a), NodeId(0));
  EXPECT_EQ(f.machine->kernel().home_of(b), NodeId(0));
}

TEST(RecordReplay, UndoIdempotentAndCursorResets) {
  Fixture f;
  const VPage page = f.range.page(0);
  f.miss(ProcId(0), page, 100);
  f.upm->record();
  f.miss(ProcId(2), page, 100);
  f.upm->record();
  f.upm->compare_counters();
  for (int iter = 0; iter < 3; ++iter) {
    f.upm->replay();
    EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(2));
    f.upm->undo();
    EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
  }
  f.upm->undo();  // undo with an empty log is a no-op
  EXPECT_EQ(f.machine->kernel().home_of(page), NodeId(0));
}

TEST(RecordReplay, ReplayWithoutPlanIsNoOp) {
  Fixture f;
  EXPECT_NO_THROW(f.upm->replay());
  EXPECT_NO_THROW(f.upm->undo());
  EXPECT_EQ(f.upm->stats().replay_migrations, 0u);
}

TEST(RecordReplay, CriticalPageCapAppliesPerTransition) {
  UpmConfig config;
  config.max_critical_pages = 1;
  Fixture f(8, config);
  f.miss(ProcId(0), f.range.page(0), 10);
  f.miss(ProcId(0), f.range.page(1), 10);
  f.upm->record();
  f.miss(ProcId(1), f.range.page(0), 50);
  f.miss(ProcId(1), f.range.page(1), 200);
  f.upm->record();
  f.upm->compare_counters();
  ASSERT_EQ(f.upm->replay_list(0).size(), 1u);
  // The higher-ratio page (page 1, 200/10) wins the single slot.
  EXPECT_EQ(f.upm->replay_list(0)[0].page, f.range.page(1));
}

}  // namespace
}  // namespace repro::upm
