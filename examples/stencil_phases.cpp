// A custom iterative application with a phase change, instrumented with
// UPMlib's record--replay mechanism (paper Section 3.3, Fig. 3).
//
// The app alternates two sweeps over a 2-D grid of pages every
// iteration: a row-partitioned relaxation and a column-partitioned
// transport step. No static placement satisfies both phases; the
// record--replay engine learns the column phase's reference trace in
// iteration 2 and thereafter migrates the most critical pages before
// each transport step, undoing the moves afterwards.
//
//   $ stencil_phases [critical_pages] [--analyze]
#include <cstdlib>
#include <iostream>
#include <string>

#include "repro/analysis/session.hpp"
#include "repro/common/table.hpp"
#include "repro/nas/pattern.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;

namespace {

struct App {
  App(std::size_t critical_pages, bool analyze) {
    machine = omp::Machine::create(memsys::MachineConfig{});
    machine->set_placement("ft");
    grid = nas::alloc_plane_array(machine->address_space(), "grid",
                                  /*planes=*/128, /*pages_per_plane=*/16);
    upm::UpmConfig config;
    config.max_critical_pages = critical_pages;
    upmlib = std::make_unique<upm::Upmlib>(machine->mmci(),
                                           machine->runtime(), config);
    if (analyze) {
      session = std::make_unique<analysis::AnalysisSession>(*machine);
      session->attach_upm(*upmlib);  // before memrefcnt: trace it all
    }
    upmlib->memrefcnt(grid.range);
  }

  void relax_rows(std::uint32_t repeats = 3) {
    omp::Runtime& rt = machine->runtime();
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      const nas::Emit e{region, ThreadId(t),
                        machine->config().lines_per_page()};
      const auto block =
          omp::static_block(ThreadId(t), rt.num_threads(), grid.planes);
      for (std::uint32_t r = 0; r < repeats; ++r) {
        e.sweep_planes(grid, block.begin, block.end, /*write=*/true,
                       /*compute=*/300.0);
      }
    }
    rt.run("relax_rows", std::move(region));
  }

  void transport_columns() {
    omp::Runtime& rt = machine->runtime();
    const std::uint32_t lines = machine->config().lines_per_page();
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      const nas::Emit e{region, ThreadId(t), lines};
      const auto slice = omp::static_block(
          ThreadId(t), rt.num_threads(), grid.lines_per_plane(lines));
      e.sweep_columns(grid, slice.begin, slice.end, /*write=*/true,
                      /*compute=*/300.0);
    }
    rt.run("transport_columns", std::move(region));
  }

  /// One iteration with the paper's Fig. 3 instrumentation.
  void iteration(std::uint32_t step, bool use_recrep) {
    relax_rows();
    if (use_recrep) {
      if (step == 2) {
        upmlib->record();
      } else if (step > 2) {
        upmlib->replay();
      }
    }
    transport_columns();
    if (use_recrep) {
      if (step == 1) {
        upmlib->migrate_memory();
      } else if (step == 2) {
        upmlib->record();
        upmlib->compare_counters();
      } else {
        upmlib->undo();
      }
    }
  }

  std::unique_ptr<omp::Machine> machine;
  nas::PlaneArray grid;
  std::unique_ptr<upm::Upmlib> upmlib;
  std::unique_ptr<analysis::AnalysisSession> session;
};

double run(std::size_t critical, bool use_recrep, bool analyze,
           Ns* transport_time) {
  App app(critical, analyze);
  // Cold start establishes first-touch placement for the row phase.
  app.iteration(0, false);
  app.machine->runtime().clear_records();
  const Ns t0 = app.machine->runtime().now();
  for (std::uint32_t step = 1; step <= 12; ++step) {
    app.iteration(step, use_recrep);
  }
  *transport_time =
      app.machine->runtime().total_time("transport_columns");
  if (app.session != nullptr) {
    app.session->print(std::cout);
  }
  return ns_to_ms(app.machine->runtime().now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t critical = 64;
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--analyze") {
      analyze = true;
    } else {
      critical = std::strtoul(arg.c_str(), nullptr, 10);
    }
  }
  std::cout << "Phase-changing stencil, 12 iterations, critical pages = "
            << critical << "\n\n";

  Ns transport_plain = 0;
  Ns transport_recrep = 0;
  const double plain = run(critical, false, analyze, &transport_plain);
  const double recrep = run(critical, true, analyze, &transport_recrep);

  TextTable table({"configuration", "total (ms)", "transport phase (ms)"});
  table.add_row({"first-touch only", fmt_double(plain, 1),
                 fmt_double(ns_to_ms(transport_plain), 1)});
  table.add_row({"with record-replay", fmt_double(recrep, 1),
                 fmt_double(ns_to_ms(transport_recrep), 1)});
  table.print(std::cout);
  std::cout << "\nThe transport phase itself accelerates (its pages are "
               "migrated to the\ncolumn owners just in time); whether "
               "the total wins depends on how the\nmigration overhead "
               "amortizes -- exactly the paper's Fig. 5/6 trade-off.\n";
  return 0;
}
