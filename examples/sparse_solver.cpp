// An irregular sparse-solver-like application built directly on the
// public API, swept over the paper's four page placement schemes, with
// and without UPMlib.
//
// The app streams a large matrix block per thread and gathers a shared
// vector from everywhere, the access structure that makes worst-case
// placement catastrophic (single-node contention) while balanced
// placements stay cheap.
//
//   $ sparse_solver [--analyze]
#include <iostream>
#include <memory>
#include <string>

#include "repro/analysis/session.hpp"
#include "repro/common/stats.hpp"
#include "repro/common/table.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;

namespace {

struct Result {
  double seconds = 0;
  double remote_fraction = 0;
  std::uint64_t migrations = 0;
};

Result run(const std::string& placement, bool with_upmlib, bool analyze) {
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement(placement, /*seed=*/7);
  omp::Runtime& rt = machine->runtime();
  const std::uint32_t lines = machine->config().lines_per_page();

  const vm::PageRange matrix =
      machine->address_space().allocate("matrix", 80 * kMiB);
  const vm::PageRange vector =
      machine->address_space().allocate("vector", 2 * kMiB);

  upm::Upmlib upmlib(machine->mmci(), machine->runtime(), {});
  std::unique_ptr<analysis::AnalysisSession> session;
  if (analyze) {
    session = std::make_unique<analysis::AnalysisSession>(*machine);
    session->attach_upm(upmlib);
  }
  upmlib.memrefcnt(matrix);
  upmlib.memrefcnt(vector);

  const auto sweep = [&] {
    // Stream the row block and gather the shared vector; the join
    // barrier orders the gathers before the owners overwrite the
    // vector in the next region (reading and writing the same pages in
    // one region would be a data race -- the analyzer's race.rw-lines).
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      const auto rows =
          omp::static_block(ThreadId(t), rt.num_threads(), matrix.count);
      for (std::uint64_t p = rows.begin; p < rows.end; ++p) {
        region.access(ThreadId(t), matrix.page(p), lines, false,
                      lines * 150, /*stream=*/true);
      }
      for (std::uint64_t p = 0; p < vector.count; ++p) {
        region.access(ThreadId(t), vector.page(p), 24, false, 24 * 50);
      }
    }
    rt.run("solve", std::move(region));

    sim::RegionBuilder update = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      const auto own =
          omp::static_block(ThreadId(t), rt.num_threads(), vector.count);
      for (std::uint64_t p = own.begin; p < own.end; ++p) {
        update.access(ThreadId(t), vector.page(p), lines, true,
                      lines * 50);
      }
    }
    rt.run("vector_update", std::move(update));
  };

  sweep();  // cold start (placement)
  upmlib.reset_hot_counters();
  machine->memory().reset_stats();
  const Ns t0 = rt.now();
  std::size_t migrations = 1;
  for (int step = 1; step <= 20; ++step) {
    sweep();
    if (with_upmlib && (step == 1 || migrations > 0)) {
      migrations = upmlib.migrate_memory();
    }
  }
  Result out;
  out.seconds = ns_to_seconds(rt.now() - t0);
  out.remote_fraction = machine->memory().total_stats().remote_fraction();
  out.migrations = upmlib.stats().distribution_migrations;
  if (session != nullptr) {
    std::cout << "[" << placement << (with_upmlib ? "+upmlib" : "")
              << "] ";
    session->print(std::cout);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    analyze |= std::string(argv[i]) == "--analyze";
  }
  std::cout << "Sparse solver: 20 iterations on the simulated 16-proc "
               "Origin2000\n\n";
  TextTable table({"placement", "time (s)", "vs ft", "remote frac",
                   "upmlib migrations"});
  const Result ft = run("ft", false, analyze);
  for (const std::string placement : {"ft", "rr", "rand", "wc"}) {
    for (const bool upm : {false, true}) {
      const Result r = run(placement, upm, analyze);
      table.add_row({placement + (upm ? "+upmlib" : ""),
                     fmt_double(r.seconds, 3),
                     fmt_percent(slowdown(r.seconds, ft.seconds)),
                     fmt_double(r.remote_fraction, 3),
                     std::to_string(r.migrations)});
    }
  }
  table.print(std::cout);
  std::cout << "\nWith UPMlib the placement column stops mattering: the "
               "answer to the\npaper's title question.\n";
  return 0;
}
