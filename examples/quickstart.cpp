// Quickstart: build the simulated ccNUMA machine, run a simple
// OpenMP-style parallel loop under a bad page placement, and let UPMlib
// fix the placement after the first iteration -- the paper's core idea
// in ~80 lines.
//
//   $ quickstart
//
// The program allocates one shared array, runs 8 iterations of a
// block-partitioned sweep with round-robin page placement, and prints
// the per-iteration times with and without the user-level migration
// engine.
#include <iostream>
#include <memory>
#include <string>

#include "repro/analysis/session.hpp"
#include "repro/common/table.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;

namespace {

/// One parallel sweep: every thread reads and writes its block of the
/// array (the canonical OpenMP PARALLEL DO).
void run_sweep(omp::Machine& machine, const vm::PageRange& data) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lines = machine.config().lines_per_page();
  rt.parallel_for(
      "sweep", data.count, omp::Schedule::make_static(),
      [&](ThreadId t, omp::ChunkRange chunk, sim::RegionBuilder& region) {
        for (std::uint64_t p = chunk.begin; p < chunk.end; ++p) {
          region.access(t, data.page(p), lines, /*write=*/true,
                        /*compute=*/lines * 200);
        }
      });
}

std::vector<double> run_once(bool with_upmlib, bool analyze) {
  // A 16-node Origin2000-like machine with round-robin page placement
  // (DSM_PLACEMENT=ROUNDROBIN): pages land all over the machine.
  auto machine = omp::Machine::create(memsys::MachineConfig{});
  machine->set_placement("rr");

  // One shared array of 144 MiB (9216 pages): each thread's block
  // exceeds its 4 MiB L2, so every sweep goes to memory.
  const vm::PageRange data =
      machine->address_space().allocate("data", 144 * kMiB);

  upm::Upmlib upmlib(machine->mmci(), machine->runtime(),
                     upm::UpmConfig::from_env());

  // --analyze: check every region and the UPMlib call sequence before
  // the engine runs them.
  std::unique_ptr<analysis::AnalysisSession> session;
  if (analyze) {
    session = std::make_unique<analysis::AnalysisSession>(*machine);
    session->attach_upm(upmlib);
  }

  upmlib.memrefcnt(data);  // upmlib_memrefcnt(data, size)

  std::vector<double> iteration_ms;
  std::size_t migrations = 1;
  for (int step = 1; step <= 8; ++step) {
    const Ns before = machine->runtime().now();
    run_sweep(*machine, data);
    if (with_upmlib && (step == 1 || migrations > 0)) {
      migrations = upmlib.migrate_memory();  // upmlib_migrate_memory()
    }
    iteration_ms.push_back(ns_to_ms(machine->runtime().now() - before));
  }
  if (with_upmlib) {
    std::cout << "UPMlib migrated " << upmlib.stats().distribution_migrations
              << " pages ("
              << fmt_double(upmlib.stats().first_invocation_fraction() * 100,
                            0)
              << "% in the first pass)\n";
  }
  if (session != nullptr) {
    session->print(std::cout);
  }
  return iteration_ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    analyze |= std::string(argv[i]) == "--analyze";
  }
  std::cout << "Quickstart: round-robin placement, 16 simulated "
               "processors\n\n";
  const std::vector<double> plain = run_once(false, analyze);
  const std::vector<double> with_upm = run_once(true, analyze);

  TextTable table({"iteration", "rr (ms)", "rr + UPMlib (ms)"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    table.add_row({std::to_string(i + 1), fmt_double(plain[i], 2),
                   fmt_double(with_upm[i], 2)});
  }
  table.print(std::cout);
  std::cout << "\nAfter the first iteration UPMlib has relocated every "
               "poorly placed page;\nsteady-state iterations run at "
               "first-touch speed without any data-distribution\n"
               "directives in the program.\n";
  return 0;
}
