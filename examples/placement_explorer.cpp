// CLI for exploring any benchmark under any placement/engine
// combination on a configurable machine.
//
//   $ placement_explorer --benchmark=MG --placement=wc --kernel-mig
//   $ placement_explorer --benchmark=BT --placement=rand --upmlib
//         --iterations=40 --nodes=32
//   $ placement_explorer --benchmark=SP --placement=ft --recrep
#include <cstdlib>
#include <iostream>
#include <string>

#include "repro/analysis/diagnostic.hpp"
#include "repro/common/env.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/run.hpp"

using namespace repro;
using namespace repro::harness;

namespace {

void usage() {
  std::cout <<
      R"(placement_explorer -- run one experiment configuration

options:
  --benchmark=NAME    BT | SP | CG | MG | FT            (default BT)
  --placement=NAME    ft | rr | rand | wc               (default ft)
  --kernel-mig        enable the IRIX-style kernel daemon
  --upmlib            enable UPMlib distribution mode
  --recrep            enable UPMlib record-replay (BT/SP only)
  --iterations=N      override the benchmark's iteration count
  --nodes=N           machine size (power of two, default 16)
  --topology=NAME     fat-hypercube | ring | crossbar
  --class=C           problem class W | A | B (presets for --scale)
  --scale=X           problem-size multiplier
  --seed=N            placement seed (random placement)
  --analyze           run the static analyzer (repro::analysis) and
                      print its diagnostics (also: REPRO_ANALYZE=1)
)";
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::size_t prefix) {
      return arg.substr(prefix);
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--benchmark=", 0) == 0) {
      config.benchmark = value(12);
    } else if (arg.rfind("--placement=", 0) == 0) {
      config.placement = value(12);
    } else if (arg == "--kernel-mig") {
      config.kernel_migration = true;
    } else if (arg == "--upmlib") {
      config.upm_mode = nas::UpmMode::kDistribution;
    } else if (arg == "--recrep") {
      config.upm_mode = nas::UpmMode::kRecordReplay;
      config.upm.max_critical_pages = 20;
    } else if (arg.rfind("--iterations=", 0) == 0) {
      config.iterations =
          static_cast<std::uint32_t>(std::stoul(value(13)));
    } else if (arg.rfind("--nodes=", 0) == 0) {
      config.machine.num_nodes = std::stoul(value(8));
    } else if (arg.rfind("--topology=", 0) == 0) {
      config.machine.topology = value(11);
    } else if (arg.rfind("--class=", 0) == 0) {
      config.workload = nas::params_for_class(value(8).at(0));
    } else if (arg.rfind("--scale=", 0) == 0) {
      config.workload.size_scale = std::stod(value(8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value(7));
    } else if (arg == "--analyze") {
      config.analyze = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 1;
    }
  }

  const RunResult result = run_benchmark(config);

  std::cout << "NAS " << result.benchmark << ", " << result.label << ", "
            << config.machine.num_nodes << " nodes ("
            << config.machine.topology << ")\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"execution time (s)", fmt_double(result.seconds(), 3)});
  table.add_row({"iterations",
                 std::to_string(result.iteration_times.size())});
  table.add_row(
      {"mean iteration, last 75% (ms)",
       fmt_double(ns_to_ms(result.mean_iteration_last(0.75)), 2)});
  table.add_row({"remote miss fraction",
                 fmt_double(result.memory_totals.remote_fraction(), 3)});
  table.add_row({"queue wait total (ms)",
                 fmt_double(ns_to_ms(result.memory_totals.queue_wait), 1)});
  table.add_row({"kernel daemon migrations",
                 std::to_string(result.daemon_stats.migrations)});
  table.add_row({"upmlib distribution migrations",
                 std::to_string(result.upm_stats.distribution_migrations)});
  table.add_row({"upmlib replay+undo migrations",
                 std::to_string(result.upm_stats.replay_migrations +
                                result.upm_stats.undo_migrations)});
  table.add_row(
      {"upmlib cost (ms)",
       fmt_double(ns_to_ms(result.upm_stats.distribution_cost +
                           result.upm_stats.recrep_cost),
                  2)});
  table.print(std::cout);

  const bool analyzed =
      config.analyze || Env::global().get_bool("REPRO_ANALYZE", false);
  if (analyzed) {
    std::cout << '\n';
    if (result.diagnostics.empty()) {
      std::cout << "analysis: no findings\n";
    } else {
      std::size_t errors = 0;
      std::size_t warnings = 0;
      std::size_t notes = 0;
      for (const analysis::Diagnostic& d : result.diagnostics) {
        (d.severity == analysis::Severity::kError     ? errors
         : d.severity == analysis::Severity::kWarning ? warnings
                                                      : notes)++;
      }
      analysis::diagnostics_table(result.diagnostics).print(std::cout);
      std::cout << "analysis: " << errors << " error(s), " << warnings
                << " warning(s), " << notes << " note(s)\n";
    }
  }
  return 0;
}
