// CLI for exploring any benchmark under any placement/engine
// combination on a configurable machine.
//
//   $ placement_explorer --benchmark=MG --placement=wc --kernel-mig
//   $ placement_explorer --benchmark=BT --placement=rand --upmlib
//         --iterations=40 --nodes=32
//   $ placement_explorer --benchmark=SP --placement=ft --recrep
//   $ placement_explorer --benchmark=BT --advise --sarif=advisor.sarif
//         --analyze-fail-on=warning
#include <cstdlib>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "repro/analysis/diagnostic.hpp"
#include "repro/analysis/sarif.hpp"
#include "repro/coherence/config.hpp"
#include "repro/common/env.hpp"
#include "repro/common/table.hpp"
#include "repro/harness/advise.hpp"
#include "repro/harness/cli.hpp"
#include "repro/harness/scheduler.hpp"
#include "repro/harness/run.hpp"
#include "repro/topology/topology.hpp"

using namespace repro;
using namespace repro::harness;

int main(int argc, char** argv) {
  RunConfig config;
  bool upmlib = false;
  bool recrep = false;
  bool advise = false;
  std::string problem_class;
  std::string fail_on;
  std::string sarif_path;
  std::string advisor_json;
  ReplayCli replay_cli;
  Cli cli("placement_explorer");
  cli.add_string("benchmark", &config.benchmark,
                 "BT | SP | CG | MG | FT (default BT)");
  cli.add_string("placement", &config.placement,
                 "ft | rr | rand | wc (default ft)");
  cli.add_flag("kernel-mig", &config.kernel_migration,
               "enable the IRIX-style kernel daemon");
  cli.add_flag("upmlib", &upmlib, "enable UPMlib distribution mode");
  cli.add_flag("recrep", &recrep,
               "enable UPMlib record-replay (BT/SP only)");
  cli.add_uint("iterations", &config.iterations,
               "override the benchmark's iteration count", /*min=*/1);
  cli.add_uint("nodes", &config.machine.num_nodes,
               "machine size (power of two, default 16)", /*min=*/1);
  cli.add_string("topology", &config.machine.topology,
                 "fat-hypercube | ring | crossbar");
  cli.add_string("class", &problem_class,
                 "problem class W | A | B (presets for --scale)");
  cli.add_double("scale", &config.workload.size_scale,
                 "problem-size multiplier");
  cli.add_uint("seed", &config.seed, "placement seed (random placement)");
  cli.add_flag("analyze", &config.analyze,
               "run the static analyzer and print its diagnostics "
               "(also: REPRO_ANALYZE=1)");
  cli.add_flag("advise", &advise,
               "run the static placement advisor (no simulation needed) "
               "and print its per-placement verdict before the run");
  cli.add_string("analyze-fail-on", &fail_on,
                 "note | warning | error: exit 3 when --analyze/--advise "
                 "found a diagnostic at or above this severity");
  cli.add_string("sarif", &sarif_path,
                 "write all analyzer + advisor diagnostics as SARIF 2.1.0 "
                 "to this path (CI annotation)");
  cli.add_string("advisor-json", &advisor_json,
                 "write the advisor verdict as JSON to this path");
  cli.add_string("coherence", &config.coherence,
                 "msi | mesi: enable the line-grain coherence model "
                 "(default off = page-grain classification)");
  cli.add_string("trace", &config.trace_dir,
                 "record the event trace and export the canonical dump + "
                 "Chrome trace here (also: REPRO_TRACE=DIR)");
  cli.add_flag("no-fast-forward", &config.no_fast_forward,
               "simulate every iteration in full (disable the "
               "steady-state fast-forward)");
  cli.add_uint("cell-timeout-ms", &config.cell_timeout_ms,
               "abort the run past this wall-clock budget (ms; env "
               "REPRO_CELL_TIMEOUT_MS)",
               /*min=*/1);
  replay_cli.register_with(cli);
  const double default_scale = config.workload.size_scale;
  switch (cli.parse(argc, argv)) {
    case Cli::Status::kHelp:
      std::cout << cli.usage();
      return 0;
    case Cli::Status::kError:
      std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
      return 2;
    case Cli::Status::kOk:
      break;
  }
  // Validate the topology spec at flag-parse time: a malformed or
  // mismatched spec is a CLI error (exit 2), not a crash mid-run.
  try {
    const topo::ParsedTopology parsed = topo::parse_topology(
        config.machine.topology, config.machine.num_nodes);
    if (parsed.num_nodes != config.machine.num_nodes) {
      std::cerr << "error: topology \"" << config.machine.topology
                << "\" has " << parsed.num_nodes
                << " nodes but --nodes=" << config.machine.num_nodes
                << '\n';
      return 2;
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  if (!config.coherence.empty() &&
      !coherence::parse_policy(config.coherence).has_value()) {
    std::cerr << "error: --coherence expects msi | mesi\n";
    return 2;
  }
  if (const std::string replay_err = replay_cli.validate();
      !replay_err.empty()) {
    std::cerr << "error: " << replay_err << "\n\n" << cli.usage();
    return 2;
  }
  replay_cli.apply(config);
  std::optional<analysis::Severity> fail_threshold;
  if (!fail_on.empty()) {
    fail_threshold = analysis::parse_severity(fail_on);
    if (!fail_threshold.has_value()) {
      std::cerr << "error: --analyze-fail-on expects note | warning | "
                   "error\n";
      return 2;
    }
  }
  if (upmlib) {
    config.upm_mode = nas::UpmMode::kDistribution;
  }
  if (recrep) {
    config.upm_mode = nas::UpmMode::kRecordReplay;
    config.upm.max_critical_pages = 20;
  }
  if (!problem_class.empty()) {
    if (problem_class.size() != 1) {
      std::cerr << "error: --class expects a single letter (W | A | B)\n";
      return 2;
    }
    const double explicit_scale = config.workload.size_scale;
    config.workload = nas::params_for_class(problem_class.front());
    if (explicit_scale != default_scale) {
      // --scale given alongside --class overrides the preset.
      config.workload.size_scale = explicit_scale;
    }
  }

  // Everything the gate and the SARIF export see, in emission order:
  // advisor verdict diagnostics first, then the per-run analyzer's.
  std::vector<analysis::Diagnostic> all_diagnostics;

  if (advise) {
    const analysis::AdvisorReport report = advise_benchmark(config);
    print_advisor_report(std::cout, report);
    if (!report.diagnostics.empty()) {
      std::cout << '\n';
      analysis::diagnostics_table(report.diagnostics).print(std::cout);
    }
    std::cout << '\n';
    if (!advisor_json.empty()) {
      write_advisor_json(advisor_json, {report});
      std::cout << "advisor verdict written to " << advisor_json << "\n\n";
    }
    all_diagnostics.insert(all_diagnostics.end(), report.diagnostics.begin(),
                           report.diagnostics.end());
  }

  config.cell_timeout_ms = effective_cell_timeout_ms(config.cell_timeout_ms);
  const RunResult result = run_benchmark(config);

  std::cout << "NAS " << result.benchmark << ", " << result.label << ", "
            << config.machine.num_nodes << " nodes ("
            << config.machine.topology << ")\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"execution time (s)", fmt_double(result.seconds(), 3)});
  table.add_row({"iterations",
                 std::to_string(result.iteration_times.size())});
  table.add_row(
      {"mean iteration, last 75% (ms)",
       fmt_double(ns_to_ms(result.mean_iteration_last(0.75)), 2)});
  table.add_row({"remote miss fraction",
                 fmt_double(result.memory_totals.remote_fraction(), 3)});
  table.add_row({"queue wait total (ms)",
                 fmt_double(ns_to_ms(result.memory_totals.queue_wait), 1)});
  table.add_row({"kernel daemon migrations",
                 std::to_string(result.daemon_stats.migrations)});
  table.add_row({"upmlib distribution migrations",
                 std::to_string(result.upm_stats.distribution_migrations)});
  table.add_row({"upmlib replay+undo migrations",
                 std::to_string(result.upm_stats.replay_migrations +
                                result.upm_stats.undo_migrations)});
  table.add_row(
      {"upmlib cost (ms)",
       fmt_double(ns_to_ms(result.upm_stats.distribution_cost +
                           result.upm_stats.recrep_cost),
                  2)});
  if (result.coherence_enabled) {
    const coherence::CoherenceStats& c = result.coherence_totals;
    table.add_row({"coherence miss rate",
                   fmt_double(c.coherence_miss_rate(), 4)});
    table.add_row({"coherence invalidations",
                   std::to_string(c.invalidations_sent)});
    table.add_row({"coherence upgrades", std::to_string(c.upgrades)});
    table.add_row({"coherence writebacks", std::to_string(c.writebacks)});
  }
  if (!result.trace_digest.empty()) {
    table.add_row({"trace events", std::to_string(result.trace->size())});
    table.add_row({"trace digest", result.trace_digest});
  }
  table.print(std::cout);

  const bool analyzed =
      config.analyze || Env::global().get_bool("REPRO_ANALYZE", false);
  if (analyzed) {
    std::cout << '\n';
    if (result.diagnostics.empty()) {
      std::cout << "analysis: no findings\n";
    } else {
      std::size_t errors = 0;
      std::size_t warnings = 0;
      std::size_t notes = 0;
      for (const analysis::Diagnostic& d : result.diagnostics) {
        (d.severity == analysis::Severity::kError     ? errors
         : d.severity == analysis::Severity::kWarning ? warnings
                                                      : notes)++;
      }
      analysis::diagnostics_table(result.diagnostics).print(std::cout);
      std::cout << "analysis: " << errors << " error(s), " << warnings
                << " warning(s), " << notes << " note(s)\n";
    }
    all_diagnostics.insert(all_diagnostics.end(), result.diagnostics.begin(),
                           result.diagnostics.end());
  }

  if (!sarif_path.empty()) {
    analysis::write_sarif(sarif_path, "repro-placement-analysis", "1.0",
                          all_diagnostics);
    std::cout << "\nSARIF report written to " << sarif_path << "\n";
  }
  if (fail_threshold.has_value() &&
      analysis::any_at_or_above(all_diagnostics, *fail_threshold)) {
    std::cout << "\nanalysis gate: findings at or above '" << fail_on
              << "' => exit 3\n";
    return 3;
  }
  return 0;
}
