// A read-mostly "lookup service": every thread consults a shared
// routing/translation table on each request batch while streaming its
// private request log. Migration cannot help the table (every node
// reads it equally), but the replication extension (paper Section 1.2:
// "read-only pages can be replicated in multiple nodes") gives each
// node a local copy -- and a periodic table update shows the coherence
// side: the first write collapses every replica, and the engine
// re-replicates on the next pass.
//
//   $ lookup_service [iterations] [--analyze]
#include <cstdlib>
#include <iostream>
#include <string>

#include "repro/analysis/session.hpp"
#include "repro/common/table.hpp"
#include "repro/omp/machine.hpp"
#include "repro/omp/schedule.hpp"
#include "repro/upmlib/upmlib.hpp"

using namespace repro;

namespace {

struct Service {
  Service(bool replicate, bool analyze) {
    machine = omp::Machine::create(memsys::MachineConfig{});
    machine->set_placement("ft");
    table = machine->address_space().allocate("table", 6 * kMiB);
    logs = machine->address_space().allocate("logs", 160 * kMiB);
    upm::UpmConfig config;
    config.enable_replication = replicate;
    config.replication_min_nodes = 4;
    config.replication_min_count = 64;
    config.max_replicas = 15;
    upmlib = std::make_unique<upm::Upmlib>(machine->mmci(),
                                           machine->runtime(), config);
    if (analyze) {
      session = std::make_unique<analysis::AnalysisSession>(*machine);
      session->attach_upm(*upmlib);
    }
    upmlib->memrefcnt(table);
  }

  /// One request batch: look up the whole table, stream own log slice.
  void serve_batch() {
    omp::Runtime& rt = machine->runtime();
    const std::uint32_t lines = machine->config().lines_per_page();
    sim::RegionBuilder region = rt.make_region();
    for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
      const auto slice =
          omp::static_block(ThreadId(t), rt.num_threads(), logs.count);
      for (std::uint64_t p = 0; p < table.count; ++p) {
        region.access(ThreadId(t), table.page(p), lines, false,
                      lines * 80);
      }
      for (std::uint64_t p = slice.begin; p < slice.end; ++p) {
        region.access(ThreadId(t), logs.page(p), lines, true, lines * 40,
                      /*stream=*/true);
      }
    }
    rt.run("serve", std::move(region));
  }

  /// The master refreshes a slice of the table (rare reconfiguration).
  void update_table() {
    omp::Runtime& rt = machine->runtime();
    sim::RegionBuilder region = rt.make_region();
    for (std::uint64_t p = 0; p < table.count / 4; ++p) {
      region.access(ThreadId(0), table.page(p),
                    machine->config().lines_per_page(), /*write=*/true);
    }
    rt.run("update", std::move(region));
  }

  std::unique_ptr<omp::Machine> machine;
  vm::PageRange table;
  vm::PageRange logs;
  std::unique_ptr<upm::Upmlib> upmlib;
  std::unique_ptr<analysis::AnalysisSession> session;
};

}  // namespace

int main(int argc, char** argv) {
  int iterations = 16;
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--analyze") {
      analyze = true;
    } else {
      iterations = std::atoi(arg.c_str());
    }
  }
  std::cout << "Lookup service: " << iterations
            << " request batches, table update after batch "
            << iterations / 2 << "\n\n";

  TextTable table({"configuration", "total (s)", "replications",
                   "collapses", "remote frac"});
  for (const bool replicate : {false, true}) {
    Service service(replicate, analyze);
    service.serve_batch();  // cold start
    service.upmlib->reset_hot_counters();
    service.machine->memory().reset_stats();
    omp::Runtime& rt = service.machine->runtime();
    const Ns t0 = rt.now();
    for (int batch = 1; batch <= iterations; ++batch) {
      service.serve_batch();
      if (batch == iterations / 2) {
        service.update_table();  // collapses all replicas
      }
      // The service invokes the engine after every batch: a long-lived
      // server cannot rely on a one-shot pass (contrast with the
      // iterative-benchmark protocol of the paper's Fig. 2), so it
      // re-arms the engine after each pass.
      service.upmlib->migrate_memory();
      service.upmlib->notify_thread_rebinding();  // keep the engine live
    }
    table.add_row(
        {replicate ? "with replication" : "migration only",
         fmt_double(ns_to_seconds(rt.now() - t0), 3),
         std::to_string(service.upmlib->stats().replications),
         std::to_string(
             service.machine->kernel().stats().replica_collapses),
         fmt_double(
             service.machine->memory().total_stats().remote_fraction(),
             3)});
    if (service.session != nullptr) {
      std::cout << "[" << (replicate ? "replication" : "migration")
                << "] ";
      service.session->print(std::cout);
    }
  }
  table.print(std::cout);
  std::cout << "\nThe table is re-replicated after the reconfiguration "
               "write collapses the copies; the migration-only engine "
               "can never satisfy an all-readers page.\n";
  return 0;
}
