#include "repro/coherence/config.hpp"

#include "repro/common/assert.hpp"

namespace repro::coherence {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kMsi:
      return "msi";
    case Policy::kMesi:
      return "mesi";
  }
  return "?";
}

std::optional<Policy> parse_policy(std::string_view name) {
  if (name == "msi") {
    return Policy::kMsi;
  }
  if (name == "mesi") {
    return Policy::kMesi;
  }
  return std::nullopt;
}

void CoherenceConfig::validate() const {
  REPRO_REQUIRE_MSG(sets >= 1, "coherence cache needs at least one set");
  REPRO_REQUIRE_MSG(ways >= 1, "coherence cache needs at least one way");
  REPRO_REQUIRE_MSG(upgrade_ns >= 0.0, "negative upgrade cost");
  REPRO_REQUIRE_MSG(intervention_ns >= 0.0, "negative intervention cost");
}

}  // namespace repro::coherence
