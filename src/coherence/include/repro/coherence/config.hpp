// Line-grain coherence model configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "repro/common/units.hpp"

namespace repro::coherence {

/// Invalidation-based protocol run over the line-grain sharer
/// directory. MESI differs from MSI in exactly two transitions: a read
/// miss with no other cached copy fills Exclusive instead of Shared,
/// and a write hit on an Exclusive copy upgrades to Modified silently
/// (no directory round trip, no upgrade charge). MESI may therefore
/// only *reduce* upgrade traffic relative to MSI -- never change
/// values, sharer sets or miss classification (the differential test
/// in tests/test_coherence.cpp holds the model to that).
enum class Policy : std::uint8_t { kMsi, kMesi };

[[nodiscard]] const char* policy_name(Policy policy);

/// Parses "msi" / "mesi"; nullopt on anything else.
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name);

struct CoherenceConfig {
  Policy policy = Policy::kMsi;

  /// Coherence line size in bytes; 0 means "the machine's cache_line"
  /// (the default, which keeps the model's line units identical to the
  /// page-grain model's). When set, it must divide or be a multiple of
  /// the machine cache line and divide the page size.
  Bytes line_size = 0;

  /// Private per-processor cache geometry: `sets` x `ways` lines.
  /// 64 x 8 x 128 B = a 64 KiB L1-class cache, small enough that the
  /// NAS working sets exercise capacity evictions.
  std::size_t sets = 64;
  std::size_t ways = 8;

  /// Directory round trip charged to a writer upgrading a Shared copy
  /// (per upgraded line, on top of invalidation_ns per victim copy).
  double upgrade_ns = 180.0;

  /// Extra charge when a fill must intervene at a dirty remote copy
  /// (cache-to-cache transfer + implicit writeback), per line.
  double intervention_ns = 220.0;

  /// Validates internal consistency; throws ContractViolation
  /// otherwise. Geometry against the machine (line_size vs cache_line
  /// and page_size) is validated by the model constructor, which sees
  /// both configs.
  void validate() const;
};

}  // namespace repro::coherence
