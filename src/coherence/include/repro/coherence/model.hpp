// Line-granularity MSI/MESI coherence model.
//
// Implements memsys::LineModel: per-processor set-associative LRU line
// caches over a line-grain sharer directory, replacing the page-grain
// hit/miss classification when attached (Machine::enable_coherence).
// The division of labour is in memsys/line_model.hpp -- this model
// decides *which* lines hit, fill, upgrade or write back; the memory
// system keeps charging the Table-1 ladder and the per-node queues.
//
// Everything here is a pure function of the access stream: no host
// state, no addresses, no wall-clock reads. That is what lets traced
// runs with coherence enabled stay byte-identical across --jobs counts
// and reruns (each simulated machine is single-threaded; the scheduler
// parallelism is across machines).
//
// Value/ordering oracle: every write stamps the line with a fresh
// version from a monotone counter; a read observes its cached copy's
// version, or memory's after a fill. The protocol invariant that makes
// the oracle work -- a write invalidates every other copy before the
// writer proceeds (SWMR) -- means no stale version can ever be
// observed; tests/test_coherence.cpp checks exactly that against an
// independent flat-memory oracle, plus the structural audit() below.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/coherence/config.hpp"
#include "repro/common/flat_map.hpp"
#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/memsys/config.hpp"
#include "repro/memsys/line_model.hpp"
#include "repro/trace/sink.hpp"

namespace repro::coherence {

/// Per-processor cumulative protocol statistics. "Lines" are coherence
/// lines (identical to machine cache lines at the default line_size).
struct CoherenceStats {
  std::uint64_t hit_lines = 0;
  std::uint64_t cold_miss_lines = 0;
  std::uint64_t capacity_miss_lines = 0;
  std::uint64_t coherence_miss_lines = 0;
  std::uint64_t upgrades = 0;             ///< S->M directory round trips
  std::uint64_t invalidations_sent = 0;   ///< remote copies this proc killed
  std::uint64_t invalidations_received = 0;
  std::uint64_t writebacks = 0;           ///< dirty lines evicted
  std::uint64_t dirty_fetches = 0;        ///< fills served by a dirty copy

  [[nodiscard]] std::uint64_t miss_lines() const {
    return cold_miss_lines + capacity_miss_lines + coherence_miss_lines;
  }
  /// Coherence misses as a fraction of all line touches; 0 when idle.
  [[nodiscard]] double coherence_miss_rate() const;
};

class CoherenceModel final : public memsys::LineModel {
 public:
  /// Copy of a cached line's protocol state (introspection for tests;
  /// kInvalid means "not cached").
  enum class LineState : std::uint8_t {
    kInvalid = 0,
    kShared,
    kExclusive,  // MESI only: clean, sole copy
    kModified,
  };

  CoherenceModel(const memsys::MachineConfig& machine,
                 const CoherenceConfig& config);

  // --- memsys::LineModel ----------------------------------------------
  memsys::LineOutcome on_access(Ns now,
                                const memsys::LineAccess& access) override;
  void flush_page(VPage page) override;
  void clear() override;
  void reset_stats() override;
  void digest(StateHash& hash) const override;

  /// Routes coherence events into `lane` (null sink to detach).
  void set_trace(trace::TraceSink* sink, std::uint16_t lane);

  [[nodiscard]] const CoherenceConfig& config() const { return config_; }
  [[nodiscard]] const CoherenceStats& stats(ProcId proc) const;
  [[nodiscard]] CoherenceStats total_stats() const;

  /// Coherence lines per page (page_size / line_size).
  [[nodiscard]] std::uint32_t lines_per_page() const { return clpp_; }

  // --- introspection (tests) ------------------------------------------
  /// Global coherence line id of line `index` within `page`.
  [[nodiscard]] std::uint64_t line_id(VPage page, std::uint32_t index) const {
    return page.value() * clpp_ + index;
  }
  [[nodiscard]] LineState state_of(ProcId proc, std::uint64_t line) const;
  /// Procs currently holding a cached copy of `line`, ascending.
  [[nodiscard]] std::vector<std::uint32_t> sharers_of(
      std::uint64_t line) const;
  /// The version `proc` would observe reading `line` right now: its
  /// cached copy's version, else memory's (0 = never written).
  [[nodiscard]] std::uint64_t probe_version(ProcId proc,
                                            std::uint64_t line) const;

  /// Structural invariant audit; throws ContractViolation on any
  /// violation. Checks SWMR (an M or E copy is the only copy), cache /
  /// directory sharer-set agreement, owner consistency, and that E
  /// states never appear under MSI.
  void audit() const;

 private:
  struct Way {
    std::uint64_t line = 0;
    std::uint64_t version = 0;
    std::uint64_t lru = 0;  ///< last-touch stamp (per-proc counter)
    LineState state = LineState::kInvalid;
  };

  /// Directory entry; entries persist once created so the "ever filled"
  /// and "invalidated" bitmaps survive eviction (miss classification).
  struct Entry {
    std::uint64_t memory_version = 0;
    std::uint32_t owner = kNoOwner;  ///< proc holding E or M, if any
    bool dirty = false;              ///< owner's copy is M
  };
  static constexpr std::uint32_t kNoOwner = ~0u;

  struct Touch {
    bool miss = false;
  };

  [[nodiscard]] Way* find_way(std::uint32_t proc, std::uint64_t line);
  [[nodiscard]] const Way* find_way(std::uint32_t proc,
                                    std::uint64_t line) const;
  [[nodiscard]] std::uint32_t entry_slot(std::uint64_t line);
  /// Touches one coherence line for `proc`; classifies, mutates cache +
  /// directory state, accumulates into `out` and the stats, and emits
  /// per-line events. `page` and `index` locate the line for events.
  void touch_line(Ns now, std::uint32_t proc, VPage page,
                  std::uint32_t index, bool write, memsys::LineOutcome& out);
  /// Invalidates every cached copy of `line` except `keeper`; marks the
  /// victims' inv-pending bits (their next miss is a coherence miss).
  /// Returns the victim count.
  [[nodiscard]] std::uint32_t invalidate_others(std::uint32_t slot,
                                                std::uint64_t line,
                                                std::uint32_t keeper);
  /// Inserts `line` for `proc` (choosing an invalid or LRU way),
  /// evicting the victim: dirty victims write back (memory version
  /// update + posted occupancy at their home). Returns the way.
  Way& fill_line(std::uint32_t proc, std::uint64_t line, LineState state,
                 std::uint64_t version, memsys::LineOutcome& out);

  // Sharer-word helpers (words-per-entry scales past 64 procs).
  [[nodiscard]] bool test_bit(const std::uint64_t* words,
                              std::uint32_t proc) const;
  void set_bit(std::uint64_t* words, std::uint32_t proc);
  void clear_bit(std::uint64_t* words, std::uint32_t proc);

  [[nodiscard]] std::uint64_t* sharer_words(std::uint32_t slot) {
    return words_.data() + static_cast<std::size_t>(slot) * 3 * wpe_;
  }
  [[nodiscard]] const std::uint64_t* sharer_words(std::uint32_t slot) const {
    return words_.data() + static_cast<std::size_t>(slot) * 3 * wpe_;
  }
  [[nodiscard]] std::uint64_t* ever_words(std::uint32_t slot) {
    return sharer_words(slot) + wpe_;
  }
  [[nodiscard]] std::uint64_t* inv_words(std::uint32_t slot) {
    return sharer_words(slot) + 2 * wpe_;
  }

  CoherenceConfig config_;
  std::uint32_t num_procs_ = 0;
  std::uint32_t lpp_ = 0;     ///< machine (cache_line) lines per page
  std::uint32_t clpp_ = 0;    ///< coherence lines per page
  std::uint32_t fine_ = 1;    ///< coherence lines per machine line (>=1)
  std::uint32_t coarse_ = 1;  ///< machine lines per coherence line (>=1)
  std::uint32_t wpe_ = 1;     ///< sharer words per directory entry

  std::vector<Way> ways_;          // [proc][set][way], flat
  std::vector<std::uint64_t> lru_clock_;  // per proc
  FlatMap<std::uint32_t> index_;   // global line -> slot
  std::vector<Entry> entries_;     // by slot
  std::vector<std::uint64_t> words_;  // 3 * wpe_ per slot
  std::vector<CoherenceStats> stats_;
  std::uint64_t next_version_ = 0;
  std::vector<std::uint64_t> writeback_scratch_;

  trace::TraceSink* sink_ = nullptr;
  std::uint16_t lane_ = 0;
};

}  // namespace repro::coherence
