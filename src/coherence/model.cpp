#include "repro/coherence/model.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"

namespace repro::coherence {

double CoherenceStats::coherence_miss_rate() const {
  const std::uint64_t total = hit_lines + miss_lines();
  return total == 0 ? 0.0
                    : static_cast<double>(coherence_miss_lines) /
                          static_cast<double>(total);
}

CoherenceModel::CoherenceModel(const memsys::MachineConfig& machine,
                               const CoherenceConfig& config)
    : config_(config) {
  config_.validate();
  if (config_.line_size == 0) {
    config_.line_size = machine.cache_line;
  }
  REPRO_REQUIRE_MSG(config_.line_size > 0, "zero coherence line size");
  REPRO_REQUIRE_MSG(config_.line_size % machine.cache_line == 0 ||
                        machine.cache_line % config_.line_size == 0,
                    "coherence line size must divide or be a multiple of "
                    "the machine cache line");
  REPRO_REQUIRE_MSG(machine.page_size % config_.line_size == 0,
                    "coherence line size must divide the page size");
  num_procs_ = static_cast<std::uint32_t>(machine.num_procs());
  lpp_ = machine.lines_per_page();
  clpp_ = static_cast<std::uint32_t>(machine.page_size / config_.line_size);
  if (config_.line_size < machine.cache_line) {
    fine_ = static_cast<std::uint32_t>(machine.cache_line / config_.line_size);
  } else {
    coarse_ =
        static_cast<std::uint32_t>(config_.line_size / machine.cache_line);
  }
  wpe_ = (num_procs_ + 63) / 64;
  ways_.resize(static_cast<std::size_t>(num_procs_) * config_.sets *
               config_.ways);
  lru_clock_.resize(num_procs_, 0);
  stats_.resize(num_procs_);
}

void CoherenceModel::set_trace(trace::TraceSink* sink, std::uint16_t lane) {
  sink_ = sink;
  lane_ = lane;
}

const CoherenceStats& CoherenceModel::stats(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < num_procs_);
  return stats_[proc.value()];
}

CoherenceStats CoherenceModel::total_stats() const {
  CoherenceStats total;
  for (const CoherenceStats& st : stats_) {
    total.hit_lines += st.hit_lines;
    total.cold_miss_lines += st.cold_miss_lines;
    total.capacity_miss_lines += st.capacity_miss_lines;
    total.coherence_miss_lines += st.coherence_miss_lines;
    total.upgrades += st.upgrades;
    total.invalidations_sent += st.invalidations_sent;
    total.invalidations_received += st.invalidations_received;
    total.writebacks += st.writebacks;
    total.dirty_fetches += st.dirty_fetches;
  }
  return total;
}

bool CoherenceModel::test_bit(const std::uint64_t* words,
                              std::uint32_t proc) const {
  return ((words[proc / 64] >> (proc % 64)) & 1u) != 0;
}

void CoherenceModel::set_bit(std::uint64_t* words, std::uint32_t proc) {
  words[proc / 64] |= std::uint64_t{1} << (proc % 64);
}

void CoherenceModel::clear_bit(std::uint64_t* words, std::uint32_t proc) {
  words[proc / 64] &= ~(std::uint64_t{1} << (proc % 64));
}

CoherenceModel::Way* CoherenceModel::find_way(std::uint32_t proc,
                                              std::uint64_t line) {
  return const_cast<Way*>(std::as_const(*this).find_way(proc, line));
}

const CoherenceModel::Way* CoherenceModel::find_way(
    std::uint32_t proc, std::uint64_t line) const {
  const std::size_t set = line % config_.sets;
  const Way* base =
      ways_.data() + (proc * config_.sets + set) * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].state != LineState::kInvalid && base[w].line == line) {
      return base + w;
    }
  }
  return nullptr;
}

std::uint32_t CoherenceModel::entry_slot(std::uint64_t line) {
  if (const std::uint32_t* slot = index_.find(line)) {
    return *slot;
  }
  const auto slot = static_cast<std::uint32_t>(entries_.size());
  index_[line] = slot;
  entries_.emplace_back();
  words_.resize(words_.size() + 3 * static_cast<std::size_t>(wpe_), 0);
  return slot;
}

std::uint32_t CoherenceModel::invalidate_others(std::uint32_t slot,
                                                std::uint64_t line,
                                                std::uint32_t keeper) {
  std::uint64_t* sharers = sharer_words(slot);
  std::uint64_t* inv = inv_words(slot);
  std::uint32_t victims = 0;
  for (std::uint32_t w = 0; w < wpe_; ++w) {
    std::uint64_t word = sharers[w];
    while (word != 0) {
      const auto bit =
          static_cast<std::uint32_t>(__builtin_ctzll(word));
      word &= word - 1;
      const std::uint32_t q = 64 * w + bit;
      if (q == keeper) {
        continue;
      }
      Way* way = find_way(q, line);
      REPRO_ASSERT(way != nullptr);
      way->state = LineState::kInvalid;
      clear_bit(sharers, q);
      set_bit(inv, q);
      ++stats_[q].invalidations_received;
      ++victims;
    }
  }
  Entry& e = entries_[slot];
  if (e.owner != kNoOwner && e.owner != keeper) {
    e.owner = kNoOwner;
    e.dirty = false;
  }
  return victims;
}

CoherenceModel::Way& CoherenceModel::fill_line(std::uint32_t proc,
                                               std::uint64_t line,
                                               LineState state,
                                               std::uint64_t version,
                                               memsys::LineOutcome& out) {
  (void)out;
  const std::size_t set = line % config_.sets;
  Way* base = ways_.data() + (proc * config_.sets + set) * config_.ways;
  Way* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].state == LineState::kInvalid) {
      victim = base + w;
      break;
    }
    if (base[w].lru < victim->lru) {
      victim = base + w;
    }
  }
  if (victim->state != LineState::kInvalid) {
    // Capacity/conflict eviction: silent for clean copies, an
    // asynchronous writeback for dirty ones. The victim's inv-pending
    // bit stays clear -- refetching it later is a capacity miss, not a
    // coherence miss.
    const std::uint64_t vline = victim->line;
    const std::uint32_t* vslot = index_.find(vline);
    REPRO_ASSERT(vslot != nullptr);
    Entry& ve = entries_[*vslot];
    clear_bit(sharer_words(*vslot), proc);
    if (victim->state == LineState::kModified) {
      ve.memory_version = victim->version;
      ve.owner = kNoOwner;
      ve.dirty = false;
      writeback_scratch_.push_back(vline / clpp_);
      ++stats_[proc].writebacks;
    } else if (ve.owner == proc) {
      ve.owner = kNoOwner;
      ve.dirty = false;
    }
  }
  victim->line = line;
  victim->version = version;
  victim->state = state;
  victim->lru = ++lru_clock_[proc];
  return *victim;
}

void CoherenceModel::touch_line(Ns now, std::uint32_t proc, VPage page,
                                std::uint32_t index, bool write,
                                memsys::LineOutcome& out) {
  const std::uint64_t line = line_id(page, index);
  CoherenceStats& st = stats_[proc];
  Way* way = find_way(proc, line);
  if (way != nullptr) {
    way->lru = ++lru_clock_[proc];
    if (write && way->state != LineState::kModified) {
      if (way->state == LineState::kExclusive) {
        // MESI's reason to exist: the sole clean copy upgrades without
        // a directory round trip (this transition is what makes MSI
        // and MESI digests differ while results stay identical).
        way->state = LineState::kModified;
        way->version = ++next_version_;
        entries_[*index_.find(line)].dirty = true;
      } else {
        // S -> M upgrade: a directory round trip that invalidates
        // every other copy before the write proceeds (SWMR).
        const std::uint32_t slot = *index_.find(line);
        const std::uint32_t victims = invalidate_others(slot, line, proc);
        out.invalidation_copies += victims;
        st.invalidations_sent += victims;
        ++st.upgrades;
        out.extra_ns += config_.upgrade_ns;
        if (sink_ != nullptr && victims != 0) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kLineInvalidate;
          ev.time = now;
          ev.page = page.value();
          ev.a = index;
          ev.b = victims;
          ev.node = static_cast<std::int32_t>(proc);
          sink_->emit(lane_, ev);
        }
        way->state = LineState::kModified;
        way->version = ++next_version_;
        Entry& e = entries_[slot];
        e.owner = proc;
        e.dirty = true;
      }
    } else if (write) {
      way->version = ++next_version_;  // write hit on M
    }
    ++out.hit_lines;
    ++st.hit_lines;
    return;
  }

  // Miss: classify against the line's history with this processor.
  const std::uint32_t slot = entry_slot(line);
  if (test_bit(inv_words(slot), proc)) {
    clear_bit(inv_words(slot), proc);
    ++st.coherence_miss_lines;
  } else if (test_bit(ever_words(slot), proc)) {
    ++st.capacity_miss_lines;
  } else {
    set_bit(ever_words(slot), proc);
    ++st.cold_miss_lines;
  }
  ++out.miss_lines;

  if (write) {
    // Read-for-ownership: a dirty copy is fetched by intervention (and
    // implicitly written back), then every other copy is invalidated.
    Entry& e = entries_[slot];
    if (e.owner != kNoOwner && e.dirty) {
      const Way* owner_way = find_way(e.owner, line);
      REPRO_ASSERT(owner_way != nullptr);
      e.memory_version = owner_way->version;
      ++st.dirty_fetches;
      out.extra_ns += config_.intervention_ns;
    }
    const std::uint32_t victims = invalidate_others(slot, line, proc);
    out.invalidation_copies += victims;
    st.invalidations_sent += victims;
    if (sink_ != nullptr && victims != 0) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kLineInvalidate;
      ev.time = now;
      ev.page = page.value();
      ev.a = index;
      ev.b = victims;
      ev.node = static_cast<std::int32_t>(proc);
      sink_->emit(lane_, ev);
    }
    const std::uint64_t version = ++next_version_;
    fill_line(proc, line, LineState::kModified, version, out);
    Entry& after = entries_[slot];
    after.owner = proc;
    after.dirty = true;
    set_bit(sharer_words(slot), proc);
    return;
  }

  // Read miss: downgrade any exclusive owner (a dirty one writes back
  // by intervention), then fill Shared -- or Exclusive under MESI when
  // no other copy remains.
  Entry& e = entries_[slot];
  if (e.owner != kNoOwner) {
    Way* owner_way = find_way(e.owner, line);
    REPRO_ASSERT(owner_way != nullptr);
    if (e.dirty) {
      e.memory_version = owner_way->version;
      ++st.dirty_fetches;
      out.extra_ns += config_.intervention_ns;
    }
    owner_way->state = LineState::kShared;
    e.owner = kNoOwner;
    e.dirty = false;
  }
  std::uint32_t copies = 0;
  for (std::uint32_t w = 0; w < wpe_; ++w) {
    copies += static_cast<std::uint32_t>(
        __builtin_popcountll(sharer_words(slot)[w]));
  }
  const LineState fill_state =
      config_.policy == Policy::kMesi && copies == 0 ? LineState::kExclusive
                                                     : LineState::kShared;
  const std::uint64_t version = e.memory_version;
  fill_line(proc, line, fill_state, version, out);
  Entry& after = entries_[slot];
  if (fill_state == LineState::kExclusive) {
    after.owner = proc;
    after.dirty = false;
  }
  set_bit(sharer_words(slot), proc);
}

memsys::LineOutcome CoherenceModel::on_access(
    Ns now, const memsys::LineAccess& access) {
  const std::uint32_t proc = access.proc.value();
  REPRO_REQUIRE(proc < num_procs_);
  REPRO_REQUIRE(access.lines >= 1);
  REPRO_REQUIRE(access.line_begin < lpp_);
  writeback_scratch_.clear();
  memsys::LineOutcome out;
  const CoherenceStats before = stats_[proc];
  for (std::uint32_t i = 0; i < access.lines; ++i) {
    // Coalesced read runs wrap: touches past the first lap of the page
    // are repeats of already-filled lines and classify as hits, which
    // keeps cost linear in the line count exactly like the page model.
    const std::uint32_t m = (access.line_begin + i) % lpp_;
    if (fine_ > 1) {
      for (std::uint32_t f = 0; f < fine_; ++f) {
        touch_line(now, proc, access.page, m * fine_ + f, access.write, out);
      }
    } else {
      touch_line(now, proc, access.page, m / coarse_, access.write, out);
    }
  }
  if (sink_ != nullptr) {
    const CoherenceStats& after = stats_[proc];
    if (out.miss_lines != 0) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kLineFill;
      ev.time = now;
      ev.page = access.page.value();
      ev.node = static_cast<std::int32_t>(proc);
      ev.a = out.miss_lines;
      ev.b = (after.cold_miss_lines - before.cold_miss_lines) |
             (after.capacity_miss_lines - before.capacity_miss_lines) << 16 |
             (after.coherence_miss_lines - before.coherence_miss_lines)
                 << 32 |
             (after.dirty_fetches - before.dirty_fetches) << 48;
      sink_->emit(lane_, ev);
    }
    if (after.upgrades != before.upgrades) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kLineUpgrade;
      ev.time = now;
      ev.page = access.page.value();
      ev.node = static_cast<std::int32_t>(proc);
      ev.a = after.upgrades - before.upgrades;
      sink_->emit(lane_, ev);
    }
    if (after.writebacks != before.writebacks) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kLineWriteback;
      ev.time = now;
      ev.page = access.page.value();
      ev.node = static_cast<std::int32_t>(proc);
      ev.a = after.writebacks - before.writebacks;
      sink_->emit(lane_, ev);
    }
  }
  out.writeback_pages = writeback_scratch_;
  return out;
}

void CoherenceModel::flush_page(VPage page) {
  for (std::uint32_t idx = 0; idx < clpp_; ++idx) {
    const std::uint64_t line = line_id(page, idx);
    const std::uint32_t* slot = index_.find(line);
    if (slot == nullptr) {
      continue;
    }
    Entry& e = entries_[*slot];
    std::uint64_t* sharers = sharer_words(*slot);
    for (std::uint32_t w = 0; w < wpe_; ++w) {
      std::uint64_t word = sharers[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(word));
        word &= word - 1;
        const std::uint32_t q = 64 * w + bit;
        Way* way = find_way(q, line);
        REPRO_ASSERT(way != nullptr);
        if (way->state == LineState::kModified) {
          e.memory_version = way->version;  // preserve the value
        }
        way->state = LineState::kInvalid;
      }
      sharers[w] = 0;
    }
    e.owner = kNoOwner;
    e.dirty = false;
    // Forget the access history too: a flushed page's next touch is a
    // cold miss, matching the page-grain flush semantics tests rely on.
    for (std::uint32_t w = 0; w < wpe_; ++w) {
      ever_words(*slot)[w] = 0;
      inv_words(*slot)[w] = 0;
    }
  }
}

void CoherenceModel::clear() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  std::fill(lru_clock_.begin(), lru_clock_.end(), 0);
  index_.clear();
  entries_.clear();
  words_.clear();
  next_version_ = 0;
  writeback_scratch_.clear();
}

void CoherenceModel::reset_stats() {
  for (CoherenceStats& st : stats_) {
    st = CoherenceStats{};
  }
}

void CoherenceModel::digest(StateHash& hash) const {
  hash.mix(static_cast<std::uint64_t>(config_.policy));
  hash.mix(next_version_);
  for (std::uint32_t p = 0; p < num_procs_; ++p) {
    hash.mix(lru_clock_[p]);
    const Way* base = ways_.data() +
                      static_cast<std::size_t>(p) * config_.sets *
                          config_.ways;
    for (std::size_t i = 0; i < config_.sets * config_.ways; ++i) {
      if (base[i].state == LineState::kInvalid) {
        continue;
      }
      hash.mix(i);
      hash.mix(base[i].line);
      hash.mix(base[i].version);
      hash.mix(base[i].lru);
      hash.mix(static_cast<std::uint64_t>(base[i].state));
    }
  }
  // FlatMap iteration order is unspecified; digest in sorted-key order.
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  index_.for_each(
      [&keys](std::uint64_t key, std::uint32_t) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const std::uint32_t slot = *index_.find(key);
    const Entry& e = entries_[slot];
    hash.mix(key);
    hash.mix(e.memory_version);
    hash.mix(e.owner);
    hash.mix(static_cast<std::uint64_t>(e.dirty));
    const std::uint64_t* words = sharer_words(slot);
    for (std::uint32_t w = 0; w < 3 * wpe_; ++w) {
      hash.mix(words[w]);
    }
  }
}

CoherenceModel::LineState CoherenceModel::state_of(ProcId proc,
                                                   std::uint64_t line) const {
  REPRO_REQUIRE(proc.value() < num_procs_);
  const Way* way = find_way(proc.value(), line);
  return way == nullptr ? LineState::kInvalid : way->state;
}

std::vector<std::uint32_t> CoherenceModel::sharers_of(
    std::uint64_t line) const {
  std::vector<std::uint32_t> procs;
  const std::uint32_t* slot = index_.find(line);
  if (slot == nullptr) {
    return procs;
  }
  const std::uint64_t* words = sharer_words(*slot);
  for (std::uint32_t w = 0; w < wpe_; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(word));
      word &= word - 1;
      procs.push_back(64 * w + bit);
    }
  }
  return procs;
}

std::uint64_t CoherenceModel::probe_version(ProcId proc,
                                            std::uint64_t line) const {
  REPRO_REQUIRE(proc.value() < num_procs_);
  if (const Way* way = find_way(proc.value(), line)) {
    return way->version;
  }
  const std::uint32_t* slot = index_.find(line);
  return slot == nullptr ? 0 : entries_[*slot].memory_version;
}

void CoherenceModel::audit() const {
  // Cache side: every valid way is registered in the directory, and
  // exclusive states are consistent with the entry.
  for (std::uint32_t p = 0; p < num_procs_; ++p) {
    const Way* base = ways_.data() +
                      static_cast<std::size_t>(p) * config_.sets *
                          config_.ways;
    for (std::size_t i = 0; i < config_.sets * config_.ways; ++i) {
      const Way& way = base[i];
      if (way.state == LineState::kInvalid) {
        continue;
      }
      REPRO_REQUIRE_MSG(way.line % config_.sets == i / config_.ways,
                        "cached line in the wrong set");
      const std::uint32_t* slot = index_.find(way.line);
      REPRO_REQUIRE_MSG(slot != nullptr, "cached line unknown to directory");
      const Entry& e = entries_[*slot];
      REPRO_REQUIRE_MSG(test_bit(sharer_words(*slot), p),
                        "cached line missing its sharer bit");
      if (way.state == LineState::kModified) {
        REPRO_REQUIRE_MSG(e.owner == p && e.dirty,
                          "modified copy without directory ownership");
      }
      if (way.state == LineState::kExclusive) {
        REPRO_REQUIRE_MSG(config_.policy == Policy::kMesi,
                          "exclusive state under MSI");
        REPRO_REQUIRE_MSG(e.owner == p && !e.dirty,
                          "exclusive copy without clean ownership");
      }
    }
  }
  // Directory side: sharer bits point at real copies, and any M or E
  // copy is the line's only copy (single-writer, multiple-reader).
  index_.for_each([this](std::uint64_t line, std::uint32_t slot) {
    const Entry& e = entries_[slot];
    const std::uint64_t* words = sharer_words(slot);
    std::uint32_t copies = 0;
    bool exclusive_copy = false;
    for (std::uint32_t w = 0; w < wpe_; ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(word));
        word &= word - 1;
        const std::uint32_t q = 64 * w + bit;
        const Way* way = find_way(q, line);
        REPRO_REQUIRE_MSG(way != nullptr,
                          "directory sharer bit without a cached copy");
        if (way->state != LineState::kShared) {
          exclusive_copy = true;
        }
        ++copies;
      }
    }
    if (exclusive_copy) {
      REPRO_REQUIRE_MSG(copies == 1,
                        "SWMR violated: exclusive copy is not the only copy");
    }
    if (e.owner != kNoOwner) {
      REPRO_REQUIRE_MSG(test_bit(words, e.owner),
                        "directory owner without a sharer bit");
      const Way* way = find_way(e.owner, line);
      REPRO_REQUIRE_MSG(
          way != nullptr &&
              way->state == (e.dirty ? LineState::kModified
                                     : LineState::kExclusive),
          "directory owner state disagrees with the cached copy");
    } else {
      REPRO_REQUIRE_MSG(!e.dirty, "dirty line without an owner");
    }
  });
}

}  // namespace repro::coherence
