#include "repro/sim/engine.hpp"

#include <limits>
#include <queue>

#include "repro/common/assert.hpp"

namespace repro::sim {

double RegionResult::imbalance() const {
  if (thread_end.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  Ns max_busy = 0;
  for (Ns t : thread_end) {
    const Ns busy = t - start;
    sum += static_cast<double>(busy);
    max_busy = std::max(max_busy, busy);
  }
  const double avg = sum / static_cast<double>(thread_end.size());
  return avg <= 0.0 ? 1.0 : static_cast<double>(max_busy) / avg;
}

Engine::Engine(memsys::MemorySystem& memory) : memory_(&memory) {}

RegionResult Engine::run(Ns start, const RegionProgram& program,
                         std::span<const ProcId> binding) {
  REPRO_REQUIRE(!program.empty());
  REPRO_REQUIRE(program.num_threads() <= memory_->config().num_procs());
  REPRO_REQUIRE(binding.empty() || binding.size() >= program.num_threads());

  struct Pending {
    Ns clock;
    std::uint32_t thread;
    bool operator>(const Pending& o) const {
      // Tie-break on thread id for determinism.
      return clock != o.clock ? clock > o.clock : thread > o.thread;
    }
  };

  const auto num_threads = static_cast<std::uint32_t>(program.num_threads());
  RegionResult result;
  result.start = start;
  result.end = start;
  result.thread_end.assign(num_threads, start);

  std::vector<std::uint32_t> cursor(num_threads);
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    cursor[t] = program.thread_begin(t);
    if (program.thread_begin(t) != program.thread_end(t)) {
      queue.push({start, t});
    }
  }

  while (!queue.empty()) {
    const Pending cur = queue.top();
    queue.pop();

    // The popped thread holds the earliest event. Its ops cannot be
    // overtaken by any other thread until its clock reaches the next
    // queued event, so that whole run executes as one batch. At an
    // exact tie the scalar schedule pops the lower thread id first,
    // hence `run_at_limit` when this thread wins that tie-break. The
    // limit is invariant during the batch: only this thread's clock
    // moves.
    Ns limit = std::numeric_limits<Ns>::max();
    bool run_at_limit = true;
    if (!queue.empty()) {
      limit = queue.top().clock;
      run_at_limit = cur.thread < queue.top().thread;
    }

    const ProcId proc =
        binding.empty() ? ProcId(cur.thread) : binding[cur.thread];
    const memsys::MemorySystem::BatchResult batch = memory_->access_batch(
        proc, program.slice(cur.thread, cursor[cur.thread]), cur.clock, limit,
        run_at_limit);
    cursor[cur.thread] += batch.executed;
    ops_executed_ += batch.executed;

    if (cursor[cur.thread] < program.thread_end(cur.thread)) {
      queue.push({batch.clock, cur.thread});
    } else {
      result.thread_end[cur.thread] = batch.clock;
      result.end = std::max(result.end, batch.clock);
    }
  }
  return result;
}

RegionResult Engine::run(Ns start,
                         const std::vector<ThreadProgram>& programs,
                         std::span<const ProcId> binding) {
  return run(start, RegionProgram(programs), binding);
}

}  // namespace repro::sim
