#include "repro/sim/engine.hpp"

#include <queue>

#include "repro/common/assert.hpp"

namespace repro::sim {

double RegionResult::imbalance() const {
  if (thread_end.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  Ns max_busy = 0;
  for (Ns t : thread_end) {
    const Ns busy = t - start;
    sum += static_cast<double>(busy);
    max_busy = std::max(max_busy, busy);
  }
  const double avg = sum / static_cast<double>(thread_end.size());
  return avg <= 0.0 ? 1.0 : static_cast<double>(max_busy) / avg;
}

Engine::Engine(memsys::MemorySystem& memory) : memory_(&memory) {}

RegionResult Engine::run(Ns start,
                         const std::vector<ThreadProgram>& programs,
                         std::span<const ProcId> binding) {
  REPRO_REQUIRE(!programs.empty());
  REPRO_REQUIRE(programs.size() <= memory_->config().num_procs());
  REPRO_REQUIRE(binding.empty() || binding.size() >= programs.size());

  struct Pending {
    Ns clock;
    std::uint32_t thread;
    bool operator>(const Pending& o) const {
      // Tie-break on thread id for determinism.
      return clock != o.clock ? clock > o.clock : thread > o.thread;
    }
  };

  RegionResult result;
  result.start = start;
  result.end = start;
  result.thread_end.assign(programs.size(), start);

  std::vector<std::size_t> cursor(programs.size(), 0);
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (std::uint32_t t = 0; t < programs.size(); ++t) {
    if (!programs[t].empty()) {
      queue.push({start, t});
    }
  }

  while (!queue.empty()) {
    const Pending cur = queue.top();
    queue.pop();
    const ThreadProgram& prog = programs[cur.thread];
    const Op& op = prog[cursor[cur.thread]++];
    Ns clock = cur.clock;

    switch (op.kind) {
      case Op::Kind::kCompute:
        clock += op.compute;
        break;
      case Op::Kind::kAccess: {
        const ProcId proc =
            binding.empty() ? ProcId(cur.thread) : binding[cur.thread];
        const memsys::MemorySystem::AccessResult r = memory_->access(
            clock, {proc, op.page, op.lines, op.write, op.stream});
        clock += r.elapsed + op.compute;
        break;
      }
    }
    ++ops_executed_;

    if (cursor[cur.thread] < prog.size()) {
      queue.push({clock, cur.thread});
    } else {
      result.thread_end[cur.thread] = clock;
      result.end = std::max(result.end, clock);
    }
  }
  return result;
}

}  // namespace repro::sim
