#include "repro/sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::sim {

double RegionResult::imbalance() const {
  if (thread_end.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  Ns max_busy = 0;
  for (Ns t : thread_end) {
    const Ns busy = t - start;
    sum += static_cast<double>(busy);
    max_busy = std::max(max_busy, busy);
  }
  const double avg = sum / static_cast<double>(thread_end.size());
  return avg <= 0.0 ? 1.0 : static_cast<double>(max_busy) / avg;
}

Engine::Engine(memsys::MemorySystem& memory) : memory_(&memory) {}

void Engine::heap_push(Pending pending) {
  heap_.push_back(pending);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::Pending Engine::heap_pop() {
  const Pending top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t best = i;
    if (left < n && earlier(heap_[left], heap_[best])) {
      best = left;
    }
    if (right < n && earlier(heap_[right], heap_[best])) {
      best = right;
    }
    if (best == i) {
      break;
    }
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

RegionResult Engine::run(Ns start, const RegionProgram& program,
                         std::span<const ProcId> binding) {
  REPRO_REQUIRE(!program.empty());
  REPRO_REQUIRE(program.num_threads() <= memory_->config().num_procs());
  REPRO_REQUIRE(binding.empty() || binding.size() >= program.num_threads());
  // Once per run, instead of once per op on the batch hot path.
  REPRO_REQUIRE_MSG(
      program.max_access_lines() <= memory_->config().lines_per_page(),
      "access op exceeds lines per page");
  REPRO_REQUIRE_MSG(
      program.max_line_begin() < memory_->config().lines_per_page(),
      "access op line_begin exceeds lines per page");

  const auto num_threads = static_cast<std::uint32_t>(program.num_threads());
  RegionResult result;
  result.start = start;
  result.end = start;
  result.thread_end.assign(num_threads, start);

  cursor_.assign(num_threads, 0);
  heap_.clear();
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    cursor_[t] = program.thread_begin(t);
    if (program.thread_begin(t) != program.thread_end(t)) {
      heap_push({start, t});
    }
  }

  while (!heap_.empty()) {
    const Pending cur = heap_pop();

    // The popped thread holds the earliest event. Its ops cannot be
    // overtaken by any other thread until its clock reaches the next
    // queued event, so that whole run executes as one batch. At an
    // exact tie the scalar schedule pops the lower thread id first,
    // hence `run_at_limit` when this thread wins that tie-break. The
    // limit is invariant during the batch: only this thread's clock
    // moves.
    Ns limit = std::numeric_limits<Ns>::max();
    bool run_at_limit = true;
    if (!heap_.empty()) {
      limit = heap_.front().clock;
      run_at_limit = cur.thread < heap_.front().thread;
    }

    const ProcId proc =
        binding.empty() ? ProcId(cur.thread) : binding[cur.thread];
    const memsys::MemorySystem::BatchResult batch = memory_->access_batch(
        proc, program.slice(cur.thread, cursor_[cur.thread]), cur.clock,
        limit, run_at_limit);
    cursor_[cur.thread] += batch.executed;
    ops_executed_ += batch.executed;

    if (cursor_[cur.thread] < program.thread_end(cur.thread)) {
      heap_push({batch.clock, cur.thread});
    } else {
      result.thread_end[cur.thread] = batch.clock;
      result.end = std::max(result.end, batch.clock);
    }
  }
  return result;
}

RegionResult Engine::run(Ns start,
                         const std::vector<ThreadProgram>& programs,
                         std::span<const ProcId> binding) {
  return run(start, RegionProgram(programs), binding);
}

}  // namespace repro::sim
