#include "repro/sim/program.hpp"

#include <algorithm>
#include <limits>

#include "repro/common/assert.hpp"

namespace repro::sim {

RegionProgram::RegionProgram(const std::vector<ThreadProgram>& programs) {
  REPRO_REQUIRE(!programs.empty());
  std::size_t total = 0;
  for (const ThreadProgram& p : programs) {
    total += p.size();
  }
  REPRO_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max());
  num_threads_ = programs.size();
  size_ = static_cast<std::uint32_t>(total);

  // Columns in decreasing alignment order so natural alignment holds
  // without padding between them.
  const std::size_t bytes = total * (sizeof(std::uint64_t) + sizeof(Ns) +
                                     2 * sizeof(std::uint32_t) +
                                     sizeof(std::uint8_t)) +
                            (num_threads_ + 1) * sizeof(std::uint32_t);
  arena_ = std::make_unique<std::byte[]>(bytes);
  std::byte* cursor = arena_.get();
  const auto claim = [&cursor](std::size_t n) {
    std::byte* start = cursor;
    cursor += n;
    return start;
  };
  pages_ = reinterpret_cast<std::uint64_t*>(
      claim(total * sizeof(std::uint64_t)));
  compute_ = reinterpret_cast<Ns*>(claim(total * sizeof(Ns)));
  lines_ = reinterpret_cast<std::uint32_t*>(
      claim(total * sizeof(std::uint32_t)));
  line_begin_ = reinterpret_cast<std::uint32_t*>(
      claim(total * sizeof(std::uint32_t)));
  offsets_ = reinterpret_cast<std::uint32_t*>(
      claim((num_threads_ + 1) * sizeof(std::uint32_t)));
  flags_ = reinterpret_cast<std::uint8_t*>(
      claim(total * sizeof(std::uint8_t)));

  std::uint32_t at = 0;
  for (std::size_t t = 0; t < num_threads_; ++t) {
    offsets_[t] = at;
    // Run state for read coalescing: index of the previous compiled op
    // when it is a read access, and whether it is the head of its run
    // (heads stay intact; only ops 2..k of a run accumulate).
    std::uint32_t prev = 0;
    bool prev_is_read = false;
    bool prev_is_head = false;
    for (const Op& op : programs[t]) {
      std::uint8_t f = 0;
      if (op.kind == Op::Kind::kAccess) {
        REPRO_REQUIRE_MSG(op.lines >= 1, "access op with zero lines");
        max_access_lines_ = std::max(max_access_lines_, op.lines);
        max_line_begin_ = std::max(max_line_begin_, op.line_begin);
        f |= memsys::kOpAccess;
      }
      if (op.write) {
        f |= memsys::kOpWrite;
      }
      if (op.stream) {
        f |= memsys::kOpStream;
      }
      if (op.positioned) {
        f |= memsys::kOpPositioned;
      }
      const bool is_read =
          op.kind == Op::Kind::kAccess && !op.write;
      // Positioned accesses never coalesce: folding would lose the
      // per-op line placement the coherence model and the line-granular
      // analysis need. (The flags comparison rejects mixed runs; the
      // explicit checks reject positioned-with-positioned.)
      if (prev_is_read && is_read && flags_[prev] == f && !op.positioned &&
          pages_[prev] == op.page.value() && op.line_begin == 0 &&
          line_begin_[prev] == 0) {
        if (prev_is_head) {
          // Second op of a run: open the accumulator op.
          prev_is_head = false;
        } else {
          // Fold into the run's accumulator.
          lines_[prev] += op.lines;
          compute_[prev] += op.compute;
          continue;
        }
      } else {
        prev_is_head = true;
      }
      pages_[at] = op.page.value();
      compute_[at] = op.compute;
      lines_[at] = op.lines;
      line_begin_[at] = op.line_begin;
      flags_[at] = f;
      prev = at;
      prev_is_read = is_read;
      ++at;
    }
  }
  offsets_[num_threads_] = at;
  size_ = at;
}

RegionProgram RegionProgram::from_columns(const ColumnView& view) {
  REPRO_REQUIRE(view.num_threads >= 1 && view.offsets != nullptr);
  REPRO_REQUIRE(view.offsets[0] == 0 &&
                view.offsets[view.num_threads] == view.size);
  for (std::uint32_t t = 0; t < view.num_threads; ++t) {
    REPRO_REQUIRE_MSG(view.offsets[t] <= view.offsets[t + 1],
                      "non-monotone thread offsets");
  }
  RegionProgram p;
  p.num_threads_ = view.num_threads;
  p.size_ = view.size;
  p.max_access_lines_ = view.max_access_lines;
  p.max_line_begin_ = view.max_line_begin;
  const std::size_t total = view.size;
  const std::size_t bytes = total * (sizeof(std::uint64_t) + sizeof(Ns) +
                                     2 * sizeof(std::uint32_t) +
                                     sizeof(std::uint8_t)) +
                            (p.num_threads_ + 1) * sizeof(std::uint32_t);
  p.arena_ = std::make_unique<std::byte[]>(bytes);
  std::byte* cursor = p.arena_.get();
  const auto claim = [&cursor](std::size_t n) {
    std::byte* start = cursor;
    cursor += n;
    return start;
  };
  p.pages_ =
      reinterpret_cast<std::uint64_t*>(claim(total * sizeof(std::uint64_t)));
  p.compute_ = reinterpret_cast<Ns*>(claim(total * sizeof(Ns)));
  p.lines_ =
      reinterpret_cast<std::uint32_t*>(claim(total * sizeof(std::uint32_t)));
  p.line_begin_ =
      reinterpret_cast<std::uint32_t*>(claim(total * sizeof(std::uint32_t)));
  p.offsets_ = reinterpret_cast<std::uint32_t*>(
      claim((p.num_threads_ + 1) * sizeof(std::uint32_t)));
  p.flags_ =
      reinterpret_cast<std::uint8_t*>(claim(total * sizeof(std::uint8_t)));
  std::copy_n(view.pages, total, p.pages_);
  std::copy_n(view.compute, total, p.compute_);
  std::copy_n(view.lines, total, p.lines_);
  std::copy_n(view.line_begin, total, p.line_begin_);
  std::copy_n(view.flags, total, p.flags_);
  std::copy_n(view.offsets, p.num_threads_ + 1, p.offsets_);
  return p;
}

Op RegionProgram::op(std::uint32_t i) const {
  REPRO_REQUIRE(i < size_);
  if (!is_access(i)) {
    return Op::compute_for(compute_[i]);
  }
  Op op = Op::access_at(VPage(pages_[i]), line_begin_[i], lines_[i],
                        is_write(i), compute_[i], is_stream(i));
  op.positioned = (flags_[i] & memsys::kOpPositioned) != 0;
  return op;
}

}  // namespace repro::sim
