#include "repro/sim/program.hpp"

#include <limits>

#include "repro/common/assert.hpp"

namespace repro::sim {

RegionProgram::RegionProgram(const std::vector<ThreadProgram>& programs) {
  REPRO_REQUIRE(!programs.empty());
  std::size_t total = 0;
  for (const ThreadProgram& p : programs) {
    total += p.size();
  }
  REPRO_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max());
  num_threads_ = programs.size();
  size_ = static_cast<std::uint32_t>(total);

  // Columns in decreasing alignment order so natural alignment holds
  // without padding between them.
  const std::size_t bytes = total * (sizeof(std::uint64_t) + sizeof(Ns) +
                                     sizeof(std::uint32_t) +
                                     sizeof(std::uint8_t)) +
                            (num_threads_ + 1) * sizeof(std::uint32_t);
  arena_ = std::make_unique<std::byte[]>(bytes);
  std::byte* cursor = arena_.get();
  const auto claim = [&cursor](std::size_t n) {
    std::byte* start = cursor;
    cursor += n;
    return start;
  };
  pages_ = reinterpret_cast<std::uint64_t*>(
      claim(total * sizeof(std::uint64_t)));
  compute_ = reinterpret_cast<Ns*>(claim(total * sizeof(Ns)));
  lines_ = reinterpret_cast<std::uint32_t*>(
      claim(total * sizeof(std::uint32_t)));
  offsets_ = reinterpret_cast<std::uint32_t*>(
      claim((num_threads_ + 1) * sizeof(std::uint32_t)));
  flags_ = reinterpret_cast<std::uint8_t*>(
      claim(total * sizeof(std::uint8_t)));

  std::uint32_t at = 0;
  for (std::size_t t = 0; t < num_threads_; ++t) {
    offsets_[t] = at;
    for (const Op& op : programs[t]) {
      pages_[at] = op.page.value();
      compute_[at] = op.compute;
      lines_[at] = op.lines;
      std::uint8_t f = 0;
      if (op.kind == Op::Kind::kAccess) {
        f |= memsys::kOpAccess;
      }
      if (op.write) {
        f |= memsys::kOpWrite;
      }
      if (op.stream) {
        f |= memsys::kOpStream;
      }
      flags_[at] = f;
      ++at;
    }
  }
  offsets_[num_threads_] = at;
}

Op RegionProgram::op(std::uint32_t i) const {
  REPRO_REQUIRE(i < size_);
  if (!is_access(i)) {
    return Op::compute_for(compute_[i]);
  }
  return Op::access(VPage(pages_[i]), lines_[i], is_write(i), compute_[i],
                    is_stream(i));
}

}  // namespace repro::sim
