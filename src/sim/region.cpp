#include "repro/sim/region.hpp"

#include "repro/common/assert.hpp"

namespace repro::sim {

Op Op::access(VPage page, std::uint32_t lines, bool write, Ns compute,
               bool stream) {
  REPRO_REQUIRE(lines >= 1);
  Op op;
  op.kind = Kind::kAccess;
  op.page = page;
  op.lines = lines;
  op.write = write;
  op.compute = compute;
  op.stream = stream;
  return op;
}

Op Op::access_at(VPage page, std::uint32_t line_begin, std::uint32_t lines,
                 bool write, Ns compute, bool stream) {
  Op op = Op::access(page, lines, write, compute, stream);
  op.line_begin = line_begin;
  op.positioned = true;
  return op;
}

Op Op::compute_for(Ns duration) {
  Op op;
  op.kind = Kind::kCompute;
  op.compute = duration;
  return op;
}

RegionBuilder::RegionBuilder(std::size_t num_threads)
    : programs_(num_threads) {
  REPRO_REQUIRE(num_threads >= 1);
}

ThreadProgram& RegionBuilder::prog(ThreadId t) {
  REPRO_REQUIRE(t.value() < programs_.size());
  return programs_[t.value()];
}

void RegionBuilder::access(ThreadId t, VPage page, std::uint32_t lines,
                           bool write, Ns compute, bool stream) {
  prog(t).push_back(Op::access(page, lines, write, compute, stream));
}

void RegionBuilder::access_at(ThreadId t, VPage page,
                              std::uint32_t line_begin, std::uint32_t lines,
                              bool write, Ns compute) {
  prog(t).push_back(Op::access_at(page, line_begin, lines, write, compute));
}

void RegionBuilder::compute(ThreadId t, Ns duration) {
  if (duration == 0) {
    return;
  }
  prog(t).push_back(Op::compute_for(duration));
}

void RegionBuilder::access_pages(ThreadId t, VPage first,
                                 std::uint64_t count,
                                 std::uint32_t lines_per_page, bool write) {
  ThreadProgram& p = prog(t);
  p.reserve(p.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    p.push_back(Op::access(VPage(first.value() + i), lines_per_page, write));
  }
}

const ThreadProgram& RegionBuilder::program(ThreadId t) const {
  REPRO_REQUIRE(t.value() < programs_.size());
  return programs_[t.value()];
}

std::vector<ThreadProgram> RegionBuilder::take() && {
  return std::move(programs_);
}

std::size_t RegionBuilder::total_ops() const {
  std::size_t total = 0;
  for (const auto& p : programs_) {
    total += p.size();
  }
  return total;
}

}  // namespace repro::sim
