#include "repro/sim/trace_replayer.hpp"

#include "repro/common/assert.hpp"

namespace repro::sim {

TraceReplayer::TraceReplayer(const std::string& path, const Options& options)
    : reader_(path) {
  if (options.pipeline) {
    ring_ = std::make_unique<RingBuffer<ReplayItem>>(options.ring_capacity);
    producer_ = std::thread([this] { producer_loop(); });
  }
}

TraceReplayer::~TraceReplayer() {
  if (producer_.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    // Drain so a blocked producer can observe stop_ and exit.
    ReplayItem sink;
    while (!done_.load(std::memory_order_acquire)) {
      while (ring_->try_pop(sink)) {
      }
      std::this_thread::yield();
    }
    producer_.join();
  }
}

bool TraceReplayer::to_item(tracefmt::Record& record, ReplayItem& out) {
  switch (record.kind) {
    case tracefmt::RecordKind::kDefineName:
      return false;  // names resolve through the reader's footer table
    case tracefmt::RecordKind::kColdBegin:
      out.kind = ReplayItem::Kind::kColdBegin;
      return true;
    case tracefmt::RecordKind::kIterationBegin:
      out.kind = ReplayItem::Kind::kIterationBegin;
      out.step = record.step;
      return true;
    case tracefmt::RecordKind::kAdvance:
      out.kind = ReplayItem::Kind::kAdvance;
      out.ns = record.ns;
      return true;
    case tracefmt::RecordKind::kRegion: {
      tracefmt::RegionData& region = record.region;
      out.kind = ReplayItem::Kind::kRegion;
      out.name_id = region.name_id;
      out.binding = std::move(region.binding);
      RegionProgram::ColumnView view;
      view.pages = region.pages.data();
      view.compute = region.compute.data();
      view.lines = region.lines.data();
      view.line_begin = region.line_begin.data();
      view.flags = region.flags.data();
      view.offsets = region.offsets.data();
      view.num_threads = region.num_threads();
      view.size = region.size();
      view.max_access_lines = region.max_access_lines;
      view.max_line_begin = region.max_line_begin;
      out.program = RegionProgram::from_columns(view);
      return true;
    }
  }
  REPRO_UNREACHABLE("unhandled record kind");
}

bool TraceReplayer::decode_next_serial(ReplayItem& out) {
  for (;;) {
    while (buffer_at_ >= buffer_.size()) {
      if (chunk_ >= reader_.num_chunks()) {
        return false;
      }
      reader_.decode_chunk(chunk_++, buffer_);
      buffer_at_ = 0;
    }
    tracefmt::Record& record = buffer_[buffer_at_++];
    out = ReplayItem{};
    if (to_item(record, out)) {
      return true;
    }
  }
}

void TraceReplayer::producer_loop() {
  try {
    std::vector<tracefmt::Record> records;
    for (std::size_t c = 0; c < reader_.num_chunks(); ++c) {
      if (stop_.load(std::memory_order_relaxed)) {
        break;
      }
      reader_.decode_chunk(c, records);
      for (tracefmt::Record& record : records) {
        ReplayItem item;
        if (!to_item(record, item)) {
          continue;
        }
        while (!ring_->try_push(item)) {
          if (stop_.load(std::memory_order_relaxed)) {
            done_.store(true, std::memory_order_release);
            return;
          }
          std::this_thread::yield();
        }
      }
    }
  } catch (...) {
    error_ = std::current_exception();
  }
  done_.store(true, std::memory_order_release);
}

bool TraceReplayer::next(ReplayItem& out) {
  if (ring_ == nullptr) {
    return decode_next_serial(out);
  }
  for (;;) {
    if (ring_->try_pop(out)) {
      return true;
    }
    if (done_.load(std::memory_order_acquire)) {
      // Producer finished (or died): drain the residue, then report
      // its error or the clean end of the stream.
      if (ring_->try_pop(out)) {
        return true;
      }
      if (error_ != nullptr) {
        std::rethrow_exception(error_);
      }
      return false;
    }
    std::this_thread::yield();
  }
}

}  // namespace repro::sim
