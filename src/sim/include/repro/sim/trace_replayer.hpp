// Trace replay frontend: decodes an RTRC trace back into the item
// stream the workload originally dispatched -- phase markers, compiled
// region programs (rebuilt verbatim via RegionProgram::from_columns),
// thread bindings and sequential advances.
//
// Two execution modes behind one next() interface:
//   - serial: chunks decode lazily on the caller's thread;
//   - pipelined: a producer thread decodes chunks ahead of the
//     consumer over a bounded lock-free SPSC ring buffer
//     (common/ring_buffer.hpp), overlapping decode with the timing
//     backend. The consumed item sequence is identical either way --
//     the ring preserves order and the producer is deterministic -- so
//     pipelined replay is byte-identical to serial replay by
//     construction (and tested to be, see tests/test_tracefmt.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "repro/common/ring_buffer.hpp"
#include "repro/sim/program.hpp"
#include "repro/tracefmt/reader.hpp"

namespace repro::sim {

/// One decoded frontend event, in dispatch order.
struct ReplayItem {
  enum class Kind : std::uint8_t {
    kNone,            ///< default-constructed / moved-from slot
    kColdBegin,       ///< cold-start phase marker
    kIterationBegin,  ///< timed-iteration phase marker (`step`)
    kRegion,          ///< parallel region (`name_id`, `binding`, `program`)
    kAdvance,         ///< sequential-time advance (`ns`)
  };
  Kind kind = Kind::kNone;
  std::uint32_t step = 0;
  Ns ns = 0;
  std::uint32_t name_id = 0;
  std::vector<std::uint32_t> binding;  // empty = identity
  RegionProgram program;
};

class TraceReplayer {
 public:
  struct Options {
    bool pipeline = false;
    /// Ring capacity in items (rounded up to a power of two). Sized to
    /// absorb decode burstiness: regions are hundreds of ops, so 256
    /// in-flight items is megabytes, not gigabytes.
    std::size_t ring_capacity = 256;
  };

  explicit TraceReplayer(const std::string& path)
      : TraceReplayer(path, Options{}) {}
  TraceReplayer(const std::string& path, const Options& options);
  ~TraceReplayer();

  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  [[nodiscard]] const tracefmt::TraceMeta& meta() const {
    return reader_.meta();
  }
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return reader_.name(id);
  }
  [[nodiscard]] const tracefmt::TraceReader& reader() const {
    return reader_;
  }

  /// Moves the next item into `out`; false at end of trace. In
  /// pipelined mode a producer-side decode error is rethrown here.
  bool next(ReplayItem& out);

 private:
  [[nodiscard]] bool decode_next_serial(ReplayItem& out);
  void producer_loop();
  static bool to_item(tracefmt::Record& record, ReplayItem& out);

  tracefmt::TraceReader reader_;
  // Serial-mode state.
  std::size_t chunk_ = 0;
  std::vector<tracefmt::Record> buffer_;
  std::size_t buffer_at_ = 0;
  // Pipelined-mode state. `error_` is written by the producer before
  // the release store to `done_`; the consumer reads it only after an
  // acquire load of `done_` returns true.
  std::unique_ptr<RingBuffer<ReplayItem>> ring_;
  std::thread producer_;
  std::atomic<bool> done_{false};
  std::atomic<bool> stop_{false};
  std::exception_ptr error_;
};

}  // namespace repro::sim
