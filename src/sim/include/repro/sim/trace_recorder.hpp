// Trace-dump recorder: adapts the runtime's region/advance observer
// hooks onto a tracefmt::TraceWriter.
//
// The recorder is phase-gated: records are appended only between a
// begin_cold_start()/begin_iteration() marker and the matching
// end_phase(). Everything the harness itself drives between phases --
// UPMlib migration passes, counter resets -- is deliberately *not*
// recorded, because replay runs under a live machine where those same
// engines re-execute for real; recording them too would double-count.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "repro/common/strong_id.hpp"
#include "repro/sim/program.hpp"
#include "repro/tracefmt/writer.hpp"

namespace repro::sim {

class TraceRecorder {
 public:
  TraceRecorder(const std::string& path, const tracefmt::TraceMeta& meta);

  /// Phase markers (harness-driven; see run_benchmark / dump_trace).
  void begin_cold_start();
  void begin_iteration(std::uint32_t step);
  void end_phase() { in_phase_ = false; }

  /// Runtime hook targets (wired via omp::Runtime::set_region_recorder
  /// and set_advance_observer). No-ops outside a phase.
  void on_region(const std::string& name, const RegionProgram& program,
                 std::span<const ProcId> binding);
  void on_advance(Ns duration);

  /// Flushes and atomically lands the file; call exactly once.
  tracefmt::WriterStats finish() { return writer_.finish(); }

 private:
  tracefmt::TraceWriter writer_;
  std::vector<std::uint32_t> binding_scratch_;
  bool in_phase_ = false;
};

}  // namespace repro::sim
