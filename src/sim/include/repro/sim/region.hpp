// Parallel-region programs.
//
// A simulated thread's work inside one parallel region is a sequence of
// operations: page-grain memory accesses and pure-compute intervals.
// Workload models build these per-thread programs declaratively; the
// engine interleaves them in virtual time.
#pragma once

#include <cstdint>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"

namespace repro::sim {

struct Op {
  enum class Kind : std::uint8_t { kAccess, kCompute };

  Kind kind = Kind::kCompute;
  bool write = false;
  /// Streaming (unit-stride, prefetchable) access: misses pay the hop
  /// latency once plus a pipelined per-line service rate instead of the
  /// full latency per line. Streams are what makes balanced placements
  /// cheap while single-node contention stays expensive.
  bool stream = false;
  std::uint32_t lines = 0;  ///< distinct cache lines touched (kAccess)
  /// First line index within the page (kAccess). The page-grain memory
  /// system ignores it; the optional line-grain coherence model (see
  /// repro::coherence) interprets the op as touching lines
  /// [line_begin, line_begin + lines), wrapped modulo lines-per-page.
  /// Zero everywhere an access does not care about its sub-page
  /// position (Op::access).
  std::uint32_t line_begin = 0;
  /// True for Op::access_at: line_begin is an exact placement. Exact
  /// ops never coalesce during compilation, and the line-granular
  /// analysis passes may treat their line interval as certain (a
  /// default op's lines could sit anywhere in the page).
  bool positioned = false;
  VPage page;               ///< target page (kAccess)
  /// kCompute: interval duration. kAccess: additional computation
  /// attached to the access (the work done on the touched lines).
  Ns compute = 0;

  [[nodiscard]] static Op access(VPage page, std::uint32_t lines, bool write,
                                 Ns compute = 0, bool stream = false);
  /// Access with an explicit first-line position (false-sharing
  /// workloads place distinct threads on distinct lines of one page).
  [[nodiscard]] static Op access_at(VPage page, std::uint32_t line_begin,
                                    std::uint32_t lines, bool write,
                                    Ns compute = 0, bool stream = false);
  [[nodiscard]] static Op compute_for(Ns duration);
};

using ThreadProgram = std::vector<Op>;

/// Builds the per-thread programs of one parallel region.
class RegionBuilder {
 public:
  explicit RegionBuilder(std::size_t num_threads);

  [[nodiscard]] std::size_t num_threads() const { return programs_.size(); }

  /// Appends a memory access to thread `t`'s program, optionally with
  /// attached compute time.
  void access(ThreadId t, VPage page, std::uint32_t lines, bool write,
              Ns compute = 0, bool stream = false);

  /// Appends a memory access at an explicit first-line position within
  /// the page (see Op::access_at).
  void access_at(ThreadId t, VPage page, std::uint32_t line_begin,
                 std::uint32_t lines, bool write, Ns compute = 0);

  /// Appends a pure-compute interval to thread `t`'s program.
  void compute(ThreadId t, Ns duration);

  /// Appends an access to `count` consecutive pages starting at `first`,
  /// each touching `lines_per_page` lines.
  void access_pages(ThreadId t, VPage first, std::uint64_t count,
                    std::uint32_t lines_per_page, bool write);

  [[nodiscard]] const ThreadProgram& program(ThreadId t) const;
  /// Read-only view of every thread's program (introspection for the
  /// static analysis passes; see repro::analysis).
  [[nodiscard]] const std::vector<ThreadProgram>& programs() const {
    return programs_;
  }
  [[nodiscard]] std::vector<ThreadProgram> take() &&;

  /// Total op count across all threads (sizing / test assertions).
  [[nodiscard]] std::size_t total_ops() const;

 private:
  std::vector<ThreadProgram> programs_;

  ThreadProgram& prog(ThreadId t);
};

}  // namespace repro::sim
