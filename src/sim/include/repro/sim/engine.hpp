// Discrete-event execution of parallel regions.
//
// All threads of a region start together (fork), the engine interleaves
// their operations in virtual-time order (so contention at the memory
// nodes is resolved causally), and the region ends when the slowest
// thread finishes (join barrier).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/sim/region.hpp"

namespace repro::sim {

struct RegionResult {
  Ns start = 0;
  Ns end = 0;  ///< max over thread completion times
  std::vector<Ns> thread_end;

  [[nodiscard]] Ns duration() const { return end - start; }
  /// Load imbalance: slowest / average busy time (1.0 = perfectly
  /// balanced).
  [[nodiscard]] double imbalance() const;
};

class Engine {
 public:
  /// `memory` must outlive the engine.
  explicit Engine(memsys::MemorySystem& memory);

  /// Executes the region's programs starting at `start`. Programs with
  /// fewer threads than processors leave the remaining processors idle.
  /// `binding` maps thread index to processor; empty = identity (thread
  /// t runs on processor t). Bindings must be distinct.
  RegionResult run(Ns start, const std::vector<ThreadProgram>& programs,
                   std::span<const ProcId> binding = {});

  [[nodiscard]] memsys::MemorySystem& memory() { return *memory_; }

  /// Ops executed since construction (sanity / perf reporting).
  [[nodiscard]] std::uint64_t ops_executed() const { return ops_executed_; }

 private:
  memsys::MemorySystem* memory_;
  std::uint64_t ops_executed_ = 0;
};

}  // namespace repro::sim
