// Discrete-event execution of parallel regions.
//
// All threads of a region start together (fork), the engine interleaves
// their operations in virtual-time order (so contention at the memory
// nodes is resolved causally), and the region ends when the slowest
// thread finishes (join barrier).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/sim/program.hpp"
#include "repro/sim/region.hpp"

namespace repro::sim {

struct RegionResult {
  Ns start = 0;
  Ns end = 0;  ///< max over thread completion times
  std::vector<Ns> thread_end;

  [[nodiscard]] Ns duration() const { return end - start; }
  /// Load imbalance: slowest / average busy time (1.0 = perfectly
  /// balanced).
  [[nodiscard]] double imbalance() const;
};

class Engine {
 public:
  /// `memory` must outlive the engine.
  explicit Engine(memsys::MemorySystem& memory);

  /// Executes a compiled region program starting at `start`. Programs
  /// with fewer threads than processors leave the remaining processors
  /// idle. `binding` maps thread index to processor; empty = identity
  /// (thread t runs on processor t). Bindings must be distinct.
  ///
  /// Execution is event-ordered across threads, but runs of consecutive
  /// ops belonging to the earliest thread are batched into one
  /// `MemorySystem::access_batch` call bounded by the next thread's
  /// clock, so the per-op priority-queue traffic of a naive
  /// discrete-event loop disappears while the access order (and thus
  /// every stat and sub-ns carry) stays bit-identical.
  RegionResult run(Ns start, const RegionProgram& program,
                   std::span<const ProcId> binding = {});

  /// Compiles and executes builder-side programs (tests and one-shot
  /// regions; the hot path compiles once and uses the overload above).
  RegionResult run(Ns start, const std::vector<ThreadProgram>& programs,
                   std::span<const ProcId> binding = {});

  [[nodiscard]] memsys::MemorySystem& memory() { return *memory_; }

  /// Ops executed since construction (sanity / perf reporting).
  [[nodiscard]] std::uint64_t ops_executed() const { return ops_executed_; }

 private:
  struct Pending {
    Ns clock;
    std::uint32_t thread;
  };

  /// Strict weak order of the schedule: earliest clock first, lower
  /// thread id on ties (the order is total, so pop order is identical
  /// to the std::priority_queue this heap replaced).
  [[nodiscard]] static bool earlier(const Pending& a, const Pending& b) {
    return a.clock != b.clock ? a.clock < b.clock : a.thread < b.thread;
  }

  void heap_push(Pending pending);
  Pending heap_pop();

  memsys::MemorySystem* memory_;
  std::uint64_t ops_executed_ = 0;
  /// Reusable run state: the pending-event min-heap and per-thread op
  /// cursors keep their capacity across region runs, so the steady
  /// state allocates nothing per region.
  std::vector<Pending> heap_;
  std::vector<std::uint32_t> cursor_;
};

}  // namespace repro::sim
