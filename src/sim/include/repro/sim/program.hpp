// Compiled parallel-region programs.
//
// A RegionProgram is the immutable, executable form of a region: every
// thread's op stream laid out structure-of-arrays in one arena
// allocation, with per-thread [begin, end) index ranges. The NAS
// pattern generators compile each benchmark phase once and reuse the
// program across all iterations -- only page placement, cache state and
// the thread binding vary between runs -- so the per-iteration
// allocation and pointer-chasing cost of rebuilding `std::vector<Op>`
// streams disappears from the simulator's hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/memsys/op_batch.hpp"
#include "repro/sim/region.hpp"

namespace repro::sim {

class RegionProgram {
 public:
  /// Empty program of zero threads (placeholder; not runnable).
  RegionProgram() = default;

  /// Compiles per-thread op streams into the arena. The builder-side
  /// representation can be discarded afterwards.
  ///
  /// Compilation validates every access op (at least one line) and
  /// coalesces runs of consecutive same-page reads with identical
  /// flags: the head of a run keeps its own op (it may miss, and a
  /// miss's cost and stats depend on its exact line count), while ops
  /// 2..k -- guaranteed hits when nothing intervenes -- collapse into
  /// one op whose lines and attached compute are the run's sums. Hit
  /// cost, coherence bookkeeping and statistics are linear in the line
  /// count, so the batch executes identically with fewer ops.
  explicit RegionProgram(const std::vector<ThreadProgram>& programs);

  /// Compiles a builder (convenience for one-shot regions).
  [[nodiscard]] static RegionProgram compile(RegionBuilder&& builder) {
    return RegionProgram(std::move(builder).take());
  }

  RegionProgram(RegionProgram&&) noexcept = default;
  RegionProgram& operator=(RegionProgram&&) noexcept = default;
  RegionProgram(const RegionProgram&) = delete;
  RegionProgram& operator=(const RegionProgram&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return num_threads_ == 0; }

  /// Largest line count of any *source* access op (before coalescing).
  /// The engine checks this against the machine's lines-per-page once
  /// per region run, replacing the old per-op bound check on the access
  /// hot path. Coalesced ops may legitimately exceed it: they stand for
  /// several touches of the same page.
  [[nodiscard]] std::uint32_t max_access_lines() const {
    return max_access_lines_;
  }

  /// Largest first-line position of any access op. Like
  /// max_access_lines(), checked once per region run: the coherence
  /// model requires line_begin < lines-per-page.
  [[nodiscard]] std::uint32_t max_line_begin() const {
    return max_line_begin_;
  }

  /// Index range of thread `t`'s ops within the columns.
  [[nodiscard]] std::uint32_t thread_begin(std::uint32_t t) const {
    return offsets_[t];
  }
  [[nodiscard]] std::uint32_t thread_end(std::uint32_t t) const {
    return offsets_[t + 1];
  }

  /// Column slice of thread `t`'s ops starting at absolute index `at`
  /// (callers resume mid-stream); `at` must be in
  /// [thread_begin(t), thread_end(t)].
  [[nodiscard]] memsys::OpSlice slice(std::uint32_t t,
                                      std::uint32_t at) const {
    return {pages_ + at,   lines_ + at, line_begin_ + at,
            compute_ + at, flags_ + at, offsets_[t + 1] - at};
  }

  // Per-op accessors (analysis passes and tests; the engine uses
  // slices).
  [[nodiscard]] bool is_access(std::uint32_t i) const {
    return (flags_[i] & memsys::kOpAccess) != 0;
  }
  [[nodiscard]] bool is_write(std::uint32_t i) const {
    return (flags_[i] & memsys::kOpWrite) != 0;
  }
  [[nodiscard]] bool is_stream(std::uint32_t i) const {
    return (flags_[i] & memsys::kOpStream) != 0;
  }
  [[nodiscard]] bool is_positioned(std::uint32_t i) const {
    return (flags_[i] & memsys::kOpPositioned) != 0;
  }
  [[nodiscard]] VPage page(std::uint32_t i) const { return VPage(pages_[i]); }
  [[nodiscard]] std::uint32_t lines(std::uint32_t i) const {
    return lines_[i];
  }
  [[nodiscard]] std::uint32_t line_begin(std::uint32_t i) const {
    return line_begin_[i];
  }
  [[nodiscard]] Ns compute(std::uint32_t i) const { return compute_[i]; }

  /// Materializes op `i` (round-trips exactly what was compiled).
  [[nodiscard]] Op op(std::uint32_t i) const;

  /// Borrowed structure-of-arrays view of the compiled columns (the
  /// trace writer serializes programs through this; pointers stay
  /// valid while the program lives).
  struct ColumnView {
    const std::uint64_t* pages = nullptr;
    const Ns* compute = nullptr;
    const std::uint32_t* lines = nullptr;
    const std::uint32_t* line_begin = nullptr;
    const std::uint8_t* flags = nullptr;
    const std::uint32_t* offsets = nullptr;  // num_threads + 1 entries
    std::uint32_t num_threads = 0;
    std::uint32_t size = 0;
    std::uint32_t max_access_lines = 0;
    std::uint32_t max_line_begin = 0;
  };
  [[nodiscard]] ColumnView columns() const {
    return {pages_,
            compute_,
            lines_,
            line_begin_,
            flags_,
            offsets_,
            static_cast<std::uint32_t>(num_threads_),
            size_,
            max_access_lines_,
            max_line_begin_};
  }

  /// Rebuilds a program verbatim from serialized columns (the trace
  /// replayer's constructor). No validation or read coalescing is
  /// re-run: the columns are already compiled output, and coalesced
  /// accumulator ops may legitimately carry more lines than any source
  /// op, so the recorded max_access_lines / max_line_begin -- which the
  /// engine's once-per-run bound check relies on -- are restored as-is.
  [[nodiscard]] static RegionProgram from_columns(const ColumnView& view);

 private:
  // One arena allocation; the column pointers alias it.
  std::unique_ptr<std::byte[]> arena_;
  std::uint64_t* pages_ = nullptr;
  Ns* compute_ = nullptr;
  std::uint32_t* lines_ = nullptr;
  std::uint32_t* line_begin_ = nullptr;
  std::uint32_t* offsets_ = nullptr;  // num_threads_ + 1 entries
  std::uint8_t* flags_ = nullptr;
  std::size_t num_threads_ = 0;
  std::uint32_t size_ = 0;
  std::uint32_t max_access_lines_ = 0;
  std::uint32_t max_line_begin_ = 0;
};

}  // namespace repro::sim
