#include "repro/sim/trace_recorder.hpp"

#include "repro/memsys/op_batch.hpp"

namespace repro::sim {

// The on-disk flag bits are defined independently of memsys (tracefmt
// sits below it); they must agree bit for bit.
static_assert(tracefmt::kFlagAccess == memsys::kOpAccess);
static_assert(tracefmt::kFlagWrite == memsys::kOpWrite);
static_assert(tracefmt::kFlagStream == memsys::kOpStream);
static_assert(tracefmt::kFlagPositioned == memsys::kOpPositioned);

TraceRecorder::TraceRecorder(const std::string& path,
                             const tracefmt::TraceMeta& meta)
    : writer_(path, meta) {}

void TraceRecorder::begin_cold_start() {
  writer_.cold_begin();
  in_phase_ = true;
}

void TraceRecorder::begin_iteration(std::uint32_t step) {
  writer_.iteration_begin(step);
  in_phase_ = true;
}

void TraceRecorder::on_region(const std::string& name,
                              const RegionProgram& program,
                              std::span<const ProcId> binding) {
  if (!in_phase_) {
    return;
  }
  const RegionProgram::ColumnView view = program.columns();
  bool identity = true;
  for (std::size_t t = 0; t < binding.size(); ++t) {
    identity = identity && binding[t].value() == t;
  }
  binding_scratch_.clear();
  if (!identity) {
    binding_scratch_.reserve(binding.size());
    for (const ProcId proc : binding) {
      binding_scratch_.push_back(proc.value());
    }
  }
  tracefmt::RegionColumns columns;
  columns.pages = view.pages;
  columns.compute = view.compute;
  columns.lines = view.lines;
  columns.line_begin = view.line_begin;
  columns.flags = view.flags;
  columns.offsets = view.offsets;
  columns.num_threads = view.num_threads;
  columns.size = view.size;
  columns.max_access_lines = view.max_access_lines;
  columns.max_line_begin = view.max_line_begin;
  writer_.region(name, binding_scratch_, columns);
}

void TraceRecorder::on_advance(Ns duration) {
  if (!in_phase_ || duration == 0) {
    return;
  }
  writer_.advance(duration);
}

}  // namespace repro::sim
