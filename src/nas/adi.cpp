#include "repro/nas/adi.hpp"

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {

namespace {

/// Plane block owned by thread t (k-loop parallelization).
omp::ChunkRange plane_block(ThreadId t, std::size_t threads,
                            std::uint64_t planes) {
  return omp::static_block(t, threads, planes);
}

}  // namespace

AdiParams bt_params() {
  AdiParams p;
  p.name = "BT";
  p.default_iterations = 200;
  p.rhs_ns_per_line = 240.0;
  p.solve_ns_per_line = 5200.0;
  p.add_ns_per_line = 120.0;
  p.forcing_lines = 96;
  return p;
}

AdiParams sp_params() {
  AdiParams p;
  p.name = "SP";
  p.default_iterations = 400;
  p.rhs_ns_per_line = 150.0;
  p.solve_ns_per_line = 2000.0;
  p.forcing_lines = 48;
  p.add_ns_per_line = 60.0;
  p.bc_passes_xy = 12;
  p.bc_passes_z = 18;
  return p;
}

AdiSolverWorkload::AdiSolverWorkload(AdiParams adi,
                                     const WorkloadParams& params)
    : adi_(std::move(adi)), params_(params) {
  if (params_.size_scale != 1.0) {
    adi_.planes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(adi_.planes) *
                                      params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    adi_.serial_init_u = params_.serial_init_fraction;
    adi_.serial_init_forcing = params_.serial_init_fraction;
  }
}

void AdiSolverWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  u_ = alloc_plane_array(space, adi_.name + ".u", adi_.planes,
                         adi_.pages_per_plane);
  rhs_ = alloc_plane_array(space, adi_.name + ".rhs", adi_.planes,
                           adi_.pages_per_plane);
  forcing_ = alloc_plane_array(space, adi_.name + ".forcing", adi_.planes,
                               adi_.pages_per_plane);
  const std::size_t threads = machine.runtime().num_threads();
  bc_ = space.allocate_pages(adi_.name + ".bc",
                             adi_.bc_pages_per_thread * threads);
}

void AdiSolverWorkload::register_hot(upm::Upmlib& upm) const {
  // The compiler identifies u, rhs and forcing as hot memory areas
  // (paper Fig. 2); the interface-plane array is read and written in
  // disjoint parallel constructs too.
  upm.memrefcnt(u_.range);
  upm.memrefcnt(rhs_.range);
  upm.memrefcnt(forcing_.range);
  upm.memrefcnt(bc_);
}

std::uint64_t AdiSolverWorkload::hot_page_count() const {
  return u_.total_pages() + rhs_.total_pages() + forcing_.total_pages() +
         bc_.count;
}

omp::ChunkRange AdiSolverWorkload::bc_block_xy(ThreadId t,
                                               std::size_t /*threads*/) const {
  const std::uint64_t bpt = adi_.bc_pages_per_thread;
  const std::uint64_t begin = t.value() * bpt;
  return {begin, begin + bpt};
}

omp::ChunkRange AdiSolverWorkload::bc_block_z(ThreadId t,
                                              std::size_t threads) const {
  const std::uint64_t bpt = adi_.bc_pages_per_thread;
  const std::uint64_t owner = (t.value() + 1) % threads;
  const std::uint64_t begin = owner * bpt;
  return {begin, begin + bpt};
}

void AdiSolverWorkload::cold_start(omp::Machine& machine) {
  // Serial initialization sections touch a scattered subset of the
  // arrays first (under first-touch those pages land on the master's
  // node, making the cold-start placement slightly suboptimal -- as in
  // the real codes).
  master_fault_scattered(machine, u_.range, adi_.serial_init_u);
  master_fault_scattered(machine, forcing_.range, adi_.serial_init_forcing);
  // One discarded iteration of the complete parallel computation (no
  // UPMlib instrumentation).
  iteration(machine, IterationContext{}, 0);
}

void AdiSolverWorkload::phase_rhs(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::string name = adi_.name + ".compute_rhs";
  const sim::RegionProgram& program = programs_.get(
      name, rt.num_threads(), [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block = plane_block(ThreadId(t), rt.num_threads(),
                                         adi_.planes);
          e.sweep_planes(u_, block.begin, block.end, /*write=*/false,
                         adi_.rhs_ns_per_line, /*stream=*/true);
          e.sweep_planes(forcing_, block.begin, block.end, /*write=*/false,
                         adi_.rhs_ns_per_line * 0.3, /*stream=*/true,
                         adi_.forcing_lines);
          e.sweep_planes(rhs_, block.begin, block.end, /*write=*/true,
                         adi_.rhs_ns_per_line * 0.5, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(name, program);
  }
}

void AdiSolverWorkload::phase_xy_solve(omp::Machine& machine,
                                       const std::string& name) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const std::string region_name = adi_.name + "." + name;
  const sim::RegionProgram& program = programs_.get(
      region_name, threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block = plane_block(ThreadId(t), threads, adi_.planes);
          const auto bc = bc_block_xy(ThreadId(t), threads);
          // The line solves interleave substitution passes over the
          // interface planes with the main sweep: split the plane block
          // into bc_passes_xy segments and revisit the bc pages after
          // each (the revisits miss again because the phase working set
          // exceeds the L2 capacity).
          const std::uint32_t passes = std::max(1u, adi_.bc_passes_xy);
          const std::uint64_t span = block.end - block.begin;
          for (std::uint32_t s = 0; s < passes; ++s) {
            const std::uint64_t seg_b = block.begin + span * s / passes;
            const std::uint64_t seg_e =
                block.begin + span * (s + 1) / passes;
            e.sweep_planes(u_, seg_b, seg_e, /*write=*/false,
                           adi_.solve_ns_per_line * 0.4, /*stream=*/true);
            e.sweep_planes(rhs_, seg_b, seg_e, /*write=*/true,
                           adi_.solve_ns_per_line * 0.6, /*stream=*/true);
            e.sweep_range(bc_, bc.begin, bc.end, /*write=*/true,
                          adi_.bc_ns_per_line);
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(region_name, program);
  }
}

void AdiSolverWorkload::phase_z_solve(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const std::uint64_t plane_lines = u_.lines_per_plane(lpp);
  const std::string name = adi_.name + ".z_solve";
  const sim::RegionProgram& program = programs_.get(
      name, threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          // z_solve parallelizes the j loop: thread t owns a j-slice of
          // every plane (transposed pattern; page-aligned for BT/SP),
          // and its interface-plane block is the *rotated* one:
          // ownership of the bc pages flips at this phase.
          const auto slice =
              omp::static_block(ThreadId(t), threads, plane_lines);
          const auto bc = bc_block_z(ThreadId(t), threads);
          const std::uint32_t passes = std::max(1u, adi_.bc_passes_z);
          const std::uint64_t span = slice.end - slice.begin;
          for (std::uint32_t s = 0; s < passes; ++s) {
            const std::uint64_t seg_b = slice.begin + span * s / passes;
            const std::uint64_t seg_e =
                slice.begin + span * (s + 1) / passes;
            e.sweep_columns(u_, seg_b, seg_e, /*write=*/false,
                            adi_.solve_ns_per_line * 0.4);
            e.sweep_columns(rhs_, seg_b, seg_e, /*write=*/true,
                            adi_.solve_ns_per_line * 0.6);
            e.sweep_range(bc_, bc.begin, bc.end, /*write=*/true,
                          adi_.bc_ns_per_line);
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(name, program);
  }
}

void AdiSolverWorkload::phase_add(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::string name = adi_.name + ".add";
  const sim::RegionProgram& program = programs_.get(
      name, rt.num_threads(), [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < rt.num_threads(); ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block = plane_block(ThreadId(t), rt.num_threads(),
                                         adi_.planes);
          e.sweep_planes(rhs_, block.begin, block.end, /*write=*/false,
                         adi_.add_ns_per_line, /*stream=*/true);
          e.sweep_planes(u_, block.begin, block.end, /*write=*/true,
                         adi_.add_ns_per_line, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(name, program);
  }
}

void AdiSolverWorkload::iteration(omp::Machine& machine,
                                  const IterationContext& ctx,
                                  std::uint32_t step) {
  const bool recrep = ctx.mode == UpmMode::kRecordReplay && ctx.upm != nullptr;

  phase_rhs(machine);
  phase_xy_solve(machine, "x_solve");
  phase_xy_solve(machine, "y_solve");

  // Paper Fig. 3: record the counters immediately before z_solve in the
  // recording iteration; replay the phase migrations in later ones.
  if (recrep) {
    if (step == 2) {
      ctx.upm->record();
    } else if (step > 2) {
      ctx.upm->replay();
    }
  }

  phase_z_solve(machine);

  if (recrep) {
    if (step == 1) {
      ctx.upm->migrate_memory();
    } else if (step == 2) {
      ctx.upm->record();
      ctx.upm->compare_counters();
    } else if (step > 2) {
      ctx.upm->undo();
    }
  }

  phase_add(machine);
}

}  // namespace repro::nas
