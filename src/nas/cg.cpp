#include "repro/nas/cg.hpp"

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {

CgWorkload::CgWorkload(CgParams cg, const WorkloadParams& params)
    : cg_(cg), params_(params) {
  if (params_.size_scale != 1.0) {
    cg_.a_pages = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(cg_.a_pages) *
                                       params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    cg_.serial_init_fraction = params_.serial_init_fraction;
  }
}

void CgWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  a_ = space.allocate_pages("CG.a", cg_.a_pages);
  p_ = space.allocate_pages("CG.p", cg_.vec_pages);
  q_ = space.allocate_pages("CG.q", cg_.vec_pages);
  r_ = space.allocate_pages("CG.r", cg_.vec_pages);
  x_ = space.allocate_pages("CG.x", cg_.vec_pages);
}

void CgWorkload::register_hot(upm::Upmlib& upm) const {
  upm.memrefcnt(a_);
  upm.memrefcnt(p_);
  upm.memrefcnt(q_);
  upm.memrefcnt(r_);
  upm.memrefcnt(x_);
}

std::uint64_t CgWorkload::hot_page_count() const {
  return a_.count + 4 * cg_.vec_pages;
}

void CgWorkload::cold_start(omp::Machine& machine) {
  master_fault_scattered(machine, a_, cg_.serial_init_fraction);
  // The vectors are initialized by a parallel loop with the same block
  // partition the solver uses (as in the real code), so first-touch
  // distributes them before the gather in the first matvec can fault
  // them onto whichever thread reads first.
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  sim::RegionBuilder region = rt.make_region();
  for (std::uint32_t t = 0; t < threads; ++t) {
    const Emit e{region, ThreadId(t), lpp};
    const auto slice = omp::static_block(ThreadId(t), threads, p_.count);
    for (const vm::PageRange* vec : {&p_, &q_, &r_, &x_}) {
      e.sweep_range(*vec, slice.begin, slice.end, /*write=*/true,
                    cg_.vec_ns_per_line);
    }
  }
  rt.run("CG.init", std::move(region));
  iteration(machine, IterationContext{}, 0);
}

void CgWorkload::phase_matvec(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "CG.matvec", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto rows = omp::static_block(ThreadId(t), threads, a_.count);
          const auto slice =
              omp::static_block(ThreadId(t), threads, q_.count);
          // Stream the row block of A; gather p from everywhere; write
          // the owned slice of q.
          e.sweep_range(a_, rows.begin, rows.end, /*write=*/false,
                        cg_.matvec_ns_per_line, /*stream=*/true);
          e.gather(p_, cg_.gather_lines, /*write=*/false,
                   cg_.matvec_ns_per_line * 0.5);
          e.sweep_range(q_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("CG.matvec", program);
  }
}

void CgWorkload::phase_vector_ops(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "CG.vector_ops", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto slice =
              omp::static_block(ThreadId(t), threads, q_.count);
          // alpha = rho / (p,q); x += alpha p; r -= alpha q;
          // rho' = (r,r).
          e.sweep_range(q_, slice.begin, slice.end, /*write=*/false,
                        cg_.vec_ns_per_line);
          e.sweep_range(x_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
          e.sweep_range(r_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("CG.vector_ops", program);
    // The dot products (p,q) and (r,r) end in OpenMP reductions.
    rt.advance(2 * 4 * 200);  // two log-tree combines over 16 threads
  }
}

void CgWorkload::phase_p_update(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "CG.p_update", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto slice =
              omp::static_block(ThreadId(t), threads, p_.count);
          // p = r + beta p: the owner writes its p slice every
          // iteration, which keeps each p page's local count ahead of
          // the remote gather counts (p stays put under the competitive
          // criterion).
          e.sweep_range(r_, slice.begin, slice.end, /*write=*/false,
                        cg_.vec_ns_per_line);
          e.sweep_range(p_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("CG.p_update", program);
  }
}

void CgWorkload::iteration(omp::Machine& machine,
                           const IterationContext& /*ctx*/,
                           std::uint32_t /*step*/) {
  phase_matvec(machine);
  phase_vector_ops(machine);
  phase_p_update(machine);
}

}  // namespace repro::nas
