#include "repro/nas/pattern.hpp"

#include <cmath>

#include "repro/common/assert.hpp"

namespace repro::nas {

VPage PlaneArray::page_at(std::uint64_t plane, std::uint64_t index) const {
  REPRO_REQUIRE(plane < planes);
  REPRO_REQUIRE(index < pages_per_plane);
  return VPage(range.first.value() + plane * pages_per_plane + index);
}

PlaneArray alloc_plane_array(vm::AddressSpace& space, const std::string& name,
                             std::uint64_t planes,
                             std::uint64_t pages_per_plane) {
  REPRO_REQUIRE(planes >= 1 && pages_per_plane >= 1);
  PlaneArray a;
  a.range = space.allocate_pages(name, planes * pages_per_plane);
  a.planes = planes;
  a.pages_per_plane = pages_per_plane;
  return a;
}

void Emit::one(VPage page, std::uint32_t lines, bool write,
               double compute_ns_per_line, bool stream) const {
  const auto compute = static_cast<Ns>(
      std::llround(compute_ns_per_line * static_cast<double>(lines)));
  region.access(thread, page, lines, write, compute, stream);
}

void Emit::sweep_planes(const PlaneArray& a, std::uint64_t begin,
                        std::uint64_t end, bool write,
                        double compute_ns_per_line, bool stream,
                        std::uint32_t lines) const {
  REPRO_REQUIRE(begin <= end && end <= a.planes);
  const std::uint32_t n = lines == 0 ? lines_per_page : lines;
  for (std::uint64_t p = begin; p < end; ++p) {
    for (std::uint64_t i = 0; i < a.pages_per_plane; ++i) {
      one(a.page_at(p, i), n, write, compute_ns_per_line, stream);
    }
  }
}

void Emit::sweep_columns(const PlaneArray& a, std::uint64_t line_begin,
                         std::uint64_t line_end, bool write,
                         double compute_ns_per_line) const {
  REPRO_REQUIRE(line_begin <= line_end);
  REPRO_REQUIRE(line_end <= a.lines_per_plane(lines_per_page));
  if (line_begin == line_end) {
    return;
  }
  const std::uint64_t first_page = line_begin / lines_per_page;
  const std::uint64_t last_page = (line_end - 1) / lines_per_page;
  for (std::uint64_t p = 0; p < a.planes; ++p) {
    for (std::uint64_t i = first_page; i <= last_page; ++i) {
      const std::uint64_t page_lo = i * lines_per_page;
      const std::uint64_t page_hi = page_lo + lines_per_page;
      const std::uint64_t lo = std::max<std::uint64_t>(line_begin, page_lo);
      const std::uint64_t hi = std::min<std::uint64_t>(line_end, page_hi);
      one(a.page_at(p, i), static_cast<std::uint32_t>(hi - lo), write,
          compute_ns_per_line);
    }
  }
}

void Emit::gather(const vm::PageRange& range,
                  std::uint32_t lines_per_page_touched, bool write,
                  double compute_ns_per_line) const {
  REPRO_REQUIRE(lines_per_page_touched >= 1);
  for (std::uint64_t i = 0; i < range.count; ++i) {
    one(range.page(i), lines_per_page_touched, write, compute_ns_per_line);
  }
}

void Emit::sweep_range(const vm::PageRange& range, std::uint64_t page_begin,
                       std::uint64_t page_end, bool write,
                       double compute_ns_per_line, bool stream) const {
  REPRO_REQUIRE(page_begin <= page_end && page_end <= range.count);
  for (std::uint64_t i = page_begin; i < page_end; ++i) {
    one(range.page(i), lines_per_page, write, compute_ns_per_line, stream);
  }
}

void Emit::fault_pages(const vm::PageRange& range, std::uint64_t begin,
                       std::uint64_t end) const {
  REPRO_REQUIRE(begin <= end && end <= range.count);
  for (std::uint64_t i = begin; i < end; ++i) {
    one(range.page(i), 1, /*write=*/true, 0.0);
  }
}

const sim::RegionProgram& RegionCache::get(
    const std::string& key, std::size_t num_threads,
    const std::function<void(sim::RegionBuilder&)>& build) {
  const auto it = programs_.find(key);
  if (it != programs_.end()) {
    return it->second;
  }
  sim::RegionBuilder builder{num_threads};
  build(builder);
  return programs_
      .emplace(key, sim::RegionProgram::compile(std::move(builder)))
      .first->second;
}

}  // namespace repro::nas
