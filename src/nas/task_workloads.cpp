#include "repro/nas/task_workloads.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {
namespace {

/// Home node of every team thread under the machine's 1:1 binding
/// (proc p lives on node p / procs_per_node).
std::vector<NodeId> team_nodes(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::size_t per_node = machine.config().procs_per_node;
  std::vector<NodeId> nodes;
  nodes.reserve(rt.num_threads());
  for (std::size_t t = 0; t < rt.num_threads(); ++t) {
    const std::size_t proc =
        rt.proc_of(ThreadId(static_cast<std::uint32_t>(t))).value();
    nodes.push_back(NodeId(static_cast<std::uint32_t>(proc / per_node)));
  }
  return nodes;
}

/// Owner of iteration `i` under the static block partition -- the
/// thread whose data a task touches, hence its home deque.
ThreadId block_owner(std::uint64_t i, std::size_t num_threads,
                     std::uint64_t n) {
  return omp::Schedule::make_static().owner_of(i, num_threads, n);
}

}  // namespace

// ---------------------------------------------------------------- MGT

MgtWorkload::MgtWorkload(MgParams mg, TaskFamilyParams task_params,
                         const WorkloadParams& params)
    : mg_(mg), task_params_(task_params), params_(params) {
  REPRO_REQUIRE(task_params_.tasks_per_thread >= 1);
  if (params_.size_scale != 1.0) {
    mg_.finest_planes = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(
               static_cast<double>(mg_.finest_planes) * params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    mg_.serial_init_fraction = params_.serial_init_fraction;
  }
}

void MgtWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  u_ = alloc_plane_array(space, "MGT.u", mg_.finest_planes,
                         mg_.finest_pages_per_plane);
  r_ = alloc_plane_array(space, "MGT.r", mg_.finest_planes,
                         mg_.finest_pages_per_plane);

  omp::Runtime& rt = machine.runtime();
  const std::size_t threads = rt.num_threads();
  const std::uint32_t lpp = machine.config().lines_per_page();
  scheduler_ = std::make_unique<omp::TaskScheduler>(
      machine.topology(), team_nodes(machine), task_params_.steal_seed);

  // Recursive bisection down to ~tasks_per_thread leaves per thread.
  const std::uint64_t leaf_planes = std::max<std::uint64_t>(
      1, u_.planes / (static_cast<std::uint64_t>(threads) *
                      task_params_.tasks_per_thread));
  smooth_tasks_.clear();
  residual_tasks_.clear();
  spawn_stencil_tasks(residual_tasks_, u_, &r_, mg_.smooth_ns_per_line,
                      threads, 0, u_.planes, leaf_planes, lpp);
  spawn_stencil_tasks(smooth_tasks_, r_, &u_, mg_.smooth_ns_per_line,
                      threads, 0, r_.planes, leaf_planes, lpp);
  residual_assignments_ = scheduler_->schedule(residual_tasks_);
  smooth_assignments_ = scheduler_->schedule(smooth_tasks_);
}

void MgtWorkload::spawn_stencil_tasks(
    std::vector<omp::TaskDesc>& tasks, const PlaneArray& read,
    const PlaneArray* write, double ns_per_line, std::size_t num_threads,
    std::uint64_t begin, std::uint64_t end, std::uint64_t leaf_planes,
    std::uint32_t lines_per_page) {
  if (end - begin > leaf_planes) {
    // Spawn order is the task-recursive order of the equivalent OpenMP
    // code: the left half's whole subtree, then the right half's.
    const std::uint64_t mid = begin + (end - begin) / 2;
    spawn_stencil_tasks(tasks, read, write, ns_per_line, num_threads, begin,
                        mid, leaf_planes, lines_per_page);
    spawn_stencil_tasks(tasks, read, write, ns_per_line, num_threads, mid,
                        end, leaf_planes, lines_per_page);
    return;
  }
  omp::TaskDesc task;
  task.home = block_owner(begin, num_threads, read.planes);
  task.estimate = static_cast<Ns>(
      static_cast<double>((end - begin) * read.lines_per_plane(
                                              lines_per_page)) *
      ns_per_line);
  const MgParams mg = mg_;  // capture the params, not `this`
  const PlaneArray rd = read;
  task.body = [rd, write_arr = write == nullptr ? PlaneArray{} : *write,
               has_write = write != nullptr, begin, end, ns_per_line, mg,
               lines_per_page](ThreadId executor,
                               sim::RegionBuilder& region) {
    const Emit e{region, executor, lines_per_page};
    e.sweep_planes(rd, begin, end, /*write=*/false, ns_per_line,
                   /*stream=*/true);
    if (has_write) {
      e.sweep_planes(write_arr, begin, end, /*write=*/true,
                     ns_per_line * 0.5, /*stream=*/true);
    }
    // Ghost planes at the leaf boundaries, as in the loop-parallel
    // stencil: the stencil reads one neighbouring plane on each side.
    if (begin > 0) {
      for (std::uint64_t i = 0; i < rd.pages_per_plane; ++i) {
        region.access(executor, rd.page_at(begin - 1, i), mg.boundary_lines,
                      /*write=*/false);
      }
    }
    if (end < rd.planes) {
      for (std::uint64_t i = 0; i < rd.pages_per_plane; ++i) {
        region.access(executor, rd.page_at(end, i), mg.boundary_lines,
                      /*write=*/false);
      }
    }
  };
  tasks.push_back(std::move(task));
}

void MgtWorkload::run_wave(omp::Machine& machine, const std::string& name,
                           std::span<const omp::TaskDesc> tasks,
                           std::span<const omp::TaskAssignment> assignments) {
  omp::Runtime& rt = machine.runtime();
  const sim::RegionProgram& program = programs_.get(
      name, rt.num_threads(), [&](sim::RegionBuilder& region) {
        omp::build_task_region(region, assignments, tasks);
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    omp::emit_task_events(rt, assignments, tasks);
    rt.run(name, program);
  }
}

void MgtWorkload::register_hot(upm::Upmlib& upm) const {
  upm.memrefcnt(u_.range);
  upm.memrefcnt(r_.range);
}

std::uint64_t MgtWorkload::hot_page_count() const {
  return u_.total_pages() + r_.total_pages();
}

void MgtWorkload::cold_start(omp::Machine& machine) {
  master_fault_scattered(machine, u_.range, mg_.serial_init_fraction);
  master_fault_scattered(machine, r_.range, mg_.serial_init_fraction);
  iteration(machine, IterationContext{}, 0);
}

void MgtWorkload::iteration(omp::Machine& machine,
                            const IterationContext& /*ctx*/,
                            std::uint32_t /*step*/) {
  run_wave(machine, "MGT.residual", residual_tasks_, residual_assignments_);
  for (std::uint32_t s = 0; s < mg_.smooth_passes; ++s) {
    run_wave(machine, "MGT.smooth", smooth_tasks_, smooth_assignments_);
  }
}

// ---------------------------------------------------------------- CGT

CgtWorkload::CgtWorkload(CgParams cg, TaskFamilyParams task_params,
                         const WorkloadParams& params)
    : cg_(cg), task_params_(task_params), params_(params) {
  REPRO_REQUIRE(task_params_.tasks_per_thread >= 1);
  if (params_.size_scale != 1.0) {
    cg_.a_pages = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(cg_.a_pages) *
                                       params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    cg_.serial_init_fraction = params_.serial_init_fraction;
  }
}

void CgtWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  a_ = space.allocate_pages("CGT.a", cg_.a_pages);
  p_ = space.allocate_pages("CGT.p", cg_.vec_pages);
  q_ = space.allocate_pages("CGT.q", cg_.vec_pages);
  r_ = space.allocate_pages("CGT.r", cg_.vec_pages);
  x_ = space.allocate_pages("CGT.x", cg_.vec_pages);

  omp::Runtime& rt = machine.runtime();
  const std::size_t threads = rt.num_threads();
  const std::uint32_t lpp = machine.config().lines_per_page();
  scheduler_ = std::make_unique<omp::TaskScheduler>(
      machine.topology(), team_nodes(machine), task_params_.steal_seed);

  // One matvec task per row block, tasks_per_thread blocks per thread,
  // spawned in row order. Block b's home is the owner of its rows under
  // the solver's static partition, so an unstolen schedule reproduces
  // CG.matvec exactly.
  const std::uint64_t num_blocks =
      std::min<std::uint64_t>(a_.count, static_cast<std::uint64_t>(threads) *
                                            task_params_.tasks_per_thread);
  const std::uint32_t gather_lines = std::max<std::uint32_t>(
      1, cg_.gather_lines / task_params_.tasks_per_thread);
  matvec_tasks_.clear();
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    const auto rows = omp::static_block(
        ThreadId(static_cast<std::uint32_t>(b)),
        static_cast<std::size_t>(num_blocks), a_.count);
    const auto slice = omp::static_block(
        ThreadId(static_cast<std::uint32_t>(b)),
        static_cast<std::size_t>(num_blocks), q_.count);
    omp::TaskDesc task;
    task.home = block_owner(rows.begin, threads, a_.count);
    task.estimate = static_cast<Ns>(
        static_cast<double>(rows.size() * lpp) * cg_.matvec_ns_per_line);
    const CgParams cg = cg_;  // capture params, not `this`
    task.body = [a = a_, p = p_, q = q_, rows, slice, gather_lines, cg,
                 lpp](ThreadId executor, sim::RegionBuilder& region) {
      const Emit e{region, executor, lpp};
      // Stream the row block of A; gather the block's share of p; write
      // the matching slice of q.
      e.sweep_range(a, rows.begin, rows.end, /*write=*/false,
                    cg.matvec_ns_per_line, /*stream=*/true);
      e.gather(p, gather_lines, /*write=*/false, cg.matvec_ns_per_line * 0.5);
      e.sweep_range(q, slice.begin, slice.end, /*write=*/true,
                    cg.vec_ns_per_line, /*stream=*/true);
    };
    matvec_tasks_.push_back(std::move(task));
  }
  matvec_assignments_ = scheduler_->schedule(matvec_tasks_);
}

void CgtWorkload::register_hot(upm::Upmlib& upm) const {
  upm.memrefcnt(a_);
  upm.memrefcnt(p_);
  upm.memrefcnt(q_);
  upm.memrefcnt(r_);
  upm.memrefcnt(x_);
}

std::uint64_t CgtWorkload::hot_page_count() const {
  return a_.count + 4 * cg_.vec_pages;
}

void CgtWorkload::cold_start(omp::Machine& machine) {
  master_fault_scattered(machine, a_, cg_.serial_init_fraction);
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  sim::RegionBuilder region = rt.make_region();
  for (std::uint32_t t = 0; t < threads; ++t) {
    const Emit e{region, ThreadId(t), lpp};
    const auto slice = omp::static_block(ThreadId(t), threads, p_.count);
    for (const vm::PageRange* vec : {&p_, &q_, &r_, &x_}) {
      e.sweep_range(*vec, slice.begin, slice.end, /*write=*/true,
                    cg_.vec_ns_per_line);
    }
  }
  rt.run("CGT.init", std::move(region));
  iteration(machine, IterationContext{}, 0);
}

void CgtWorkload::phase_matvec(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const sim::RegionProgram& program = programs_.get(
      "CGT.matvec", rt.num_threads(), [&](sim::RegionBuilder& region) {
        omp::build_task_region(region, matvec_assignments_, matvec_tasks_);
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    omp::emit_task_events(rt, matvec_assignments_, matvec_tasks_);
    rt.run("CGT.matvec", program);
  }
}

void CgtWorkload::phase_vector_ops(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "CGT.vector_ops", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto slice =
              omp::static_block(ThreadId(t), threads, q_.count);
          e.sweep_range(q_, slice.begin, slice.end, /*write=*/false,
                        cg_.vec_ns_per_line);
          e.sweep_range(x_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
          e.sweep_range(r_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("CGT.vector_ops", program);
    rt.advance(2 * 4 * 200);  // the two dot-product reductions
  }
}

void CgtWorkload::phase_p_update(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "CGT.p_update", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto slice =
              omp::static_block(ThreadId(t), threads, p_.count);
          e.sweep_range(r_, slice.begin, slice.end, /*write=*/false,
                        cg_.vec_ns_per_line);
          e.sweep_range(p_, slice.begin, slice.end, /*write=*/true,
                        cg_.vec_ns_per_line);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("CGT.p_update", program);
  }
}

void CgtWorkload::iteration(omp::Machine& machine,
                            const IterationContext& /*ctx*/,
                            std::uint32_t /*step*/) {
  phase_matvec(machine);
  phase_vector_ops(machine);
  phase_p_update(machine);
}

const std::vector<std::string>& task_workload_names() {
  static const std::vector<std::string> names = {"MGT", "CGT"};
  return names;
}

}  // namespace repro::nas
