#include "repro/nas/mg.hpp"

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {

MgWorkload::MgWorkload(MgParams mg, const WorkloadParams& params)
    : mg_(mg), params_(params) {
  REPRO_REQUIRE(mg_.num_levels >= 2);
  if (params_.size_scale != 1.0) {
    mg_.finest_planes = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(
               static_cast<double>(mg_.finest_planes) * params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    mg_.serial_init_fraction = params_.serial_init_fraction;
  }
}

void MgWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  std::uint64_t planes = mg_.finest_planes;
  std::uint64_t ppp = mg_.finest_pages_per_plane;
  for (std::uint32_t l = 0; l < mg_.num_levels; ++l) {
    u_.push_back(alloc_plane_array(space, "MG.u" + std::to_string(l),
                                   planes, ppp));
    r_.push_back(alloc_plane_array(space, "MG.r" + std::to_string(l),
                                   planes, ppp));
    // Each coarser level halves every dimension: planes halve, pages
    // per plane drop by 4x (down to one page).
    planes = std::max<std::uint64_t>(1, planes / 2);
    ppp = std::max<std::uint64_t>(1, ppp / 4);
  }
}

const PlaneArray& MgWorkload::u_level(std::size_t l) const {
  REPRO_REQUIRE(l < u_.size());
  return u_[l];
}

const PlaneArray& MgWorkload::r_level(std::size_t l) const {
  REPRO_REQUIRE(l < r_.size());
  return r_[l];
}

void MgWorkload::register_hot(upm::Upmlib& upm) const {
  for (const PlaneArray& a : u_) {
    upm.memrefcnt(a.range);
  }
  for (const PlaneArray& a : r_) {
    upm.memrefcnt(a.range);
  }
}

std::uint64_t MgWorkload::hot_page_count() const {
  std::uint64_t total = 0;
  for (const PlaneArray& a : u_) {
    total += a.total_pages();
  }
  for (const PlaneArray& a : r_) {
    total += a.total_pages();
  }
  return total;
}

void MgWorkload::cold_start(omp::Machine& machine) {
  master_fault_scattered(machine, u_[0].range, mg_.serial_init_fraction);
  master_fault_scattered(machine, r_[0].range, mg_.serial_init_fraction);
  iteration(machine, IterationContext{}, 0);
}

void MgWorkload::stencil_sweep(omp::Machine& machine,
                               const std::string& name,
                               const PlaneArray& read,
                               const PlaneArray* write,
                               double ns_per_line) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      name, threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block =
              omp::static_block(ThreadId(t), threads, read.planes);
          if (block.size() == 0) {
            continue;  // coarse level with fewer planes than threads
          }
          e.sweep_planes(read, block.begin, block.end, /*write=*/false,
                         ns_per_line, /*stream=*/true);
          if (write != nullptr) {
            e.sweep_planes(*write, block.begin, block.end, /*write=*/true,
                           ns_per_line * 0.5, /*stream=*/true);
          }
          // Ghost planes: read a fraction of the neighbouring
          // partitions' boundary planes. Emitted after the main sweep
          // (the stencil reaches the partition boundary last), which
          // also means the owner -- whose sweep starts earlier --
          // faults its own boundary planes first under first-touch.
          if (block.begin > 0) {
            for (std::uint64_t i = 0; i < read.pages_per_plane; ++i) {
              region.access(ThreadId(t), read.page_at(block.begin - 1, i),
                            mg_.boundary_lines, /*write=*/false);
            }
          }
          if (block.end < read.planes) {
            for (std::uint64_t i = 0; i < read.pages_per_plane; ++i) {
              region.access(ThreadId(t), read.page_at(block.end, i),
                            mg_.boundary_lines, /*write=*/false);
            }
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(name, program);
  }
}

void MgWorkload::transfer(omp::Machine& machine, const std::string& name,
                          const PlaneArray& from, const PlaneArray& to) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      name, threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          // Partition on the *destination* grid; each destination plane
          // reads the corresponding source planes.
          const auto dst =
              omp::static_block(ThreadId(t), threads, to.planes);
          if (dst.size() == 0) {
            continue;
          }
          // Map destination planes to source planes in either
          // direction: restriction reads `ratio` source planes per
          // destination plane, prolongation reads one source plane per
          // `ratio` destinations.
          std::uint64_t src_b = 0;
          std::uint64_t src_e = 0;
          if (from.planes >= to.planes) {
            const std::uint64_t ratio = from.planes / to.planes;
            src_b = std::min(dst.begin * ratio, from.planes);
            src_e = std::min(dst.end * ratio, from.planes);
          } else {
            const std::uint64_t ratio = to.planes / from.planes;
            src_b = std::min(dst.begin / ratio, from.planes);
            src_e = std::min((dst.end + ratio - 1) / ratio, from.planes);
          }
          e.sweep_planes(from, src_b, src_e, /*write=*/false,
                         mg_.transfer_ns_per_line, /*stream=*/true);
          e.sweep_planes(to, dst.begin, dst.end, /*write=*/true,
                         mg_.transfer_ns_per_line, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run(name, program);
  }
}

void MgWorkload::iteration(omp::Machine& machine,
                           const IterationContext& /*ctx*/,
                           std::uint32_t /*step*/) {
  const std::size_t levels = u_.size();
  // Down sweep: residual + restriction.
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const std::string suffix = std::to_string(l);
    stencil_sweep(machine, "MG.residual" + suffix, u_[l], &r_[l],
                  mg_.smooth_ns_per_line);
    transfer(machine, "MG.restrict" + suffix, r_[l], r_[l + 1]);
  }
  // Coarse solve.
  stencil_sweep(machine, "MG.coarse", r_[levels - 1], &u_[levels - 1],
                mg_.smooth_ns_per_line);
  // Up sweep: prolongation + smoothing.
  for (std::size_t l = levels - 1; l-- > 0;) {
    const std::string suffix = std::to_string(l);
    transfer(machine, "MG.prolong" + suffix, u_[l + 1], u_[l]);
    for (std::uint32_t s = 0; s < mg_.smooth_passes; ++s) {
      stencil_sweep(machine, "MG.smooth" + suffix, r_[l], &u_[l],
                    mg_.smooth_ns_per_line);
    }
  }
}

}  // namespace repro::nas
