#include "repro/nas/trace_workload.hpp"

#include <optional>
#include <utility>

#include "repro/common/assert.hpp"
#include "repro/sim/trace_replayer.hpp"

namespace repro::nas {

namespace {

/// Re-establishes a recorded thread-to-processor binding on the live
/// runtime. Rebinding one thread at a time can transiently violate the
/// runtime's two-threads-one-processor guard, so occupied targets are
/// resolved by swapping with the occupant first (every permutation is
/// reachable by swaps alone; rebind covers processors outside the
/// team's current image).
void restore_binding(omp::Runtime& rt,
                     const std::vector<std::uint32_t>& target) {
  const auto num_threads = static_cast<std::uint32_t>(rt.num_threads());
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    const std::uint32_t desired = target.empty() ? t : target[t];
    if (rt.proc_of(ThreadId(t)).value() == desired) {
      continue;
    }
    bool swapped = false;
    for (std::uint32_t u = 0; u < num_threads; ++u) {
      if (rt.proc_of(ThreadId(u)).value() == desired) {
        rt.swap_binding(ThreadId(t), ThreadId(u));
        swapped = true;
        break;
      }
    }
    if (!swapped) {
      rt.rebind(ThreadId(t), ProcId(desired));
    }
  }
}

class TraceWorkload final : public Workload {
 public:
  TraceWorkload(const std::string& path, const TraceWorkloadOptions& options)
      : replayer_(path, sim::TraceReplayer::Options{options.pipeline, 256}) {}

  [[nodiscard]] std::string name() const override {
    return replayer_.meta().benchmark;
  }

  [[nodiscard]] std::uint32_t default_iterations() const override {
    return replayer_.meta().iterations;
  }

  void setup(omp::Machine& machine) override {
    const tracefmt::TraceMeta& meta = replayer_.meta();
    REPRO_REQUIRE_MSG(
        machine.config().num_procs() == meta.num_procs &&
            machine.runtime().num_threads() == meta.num_threads,
        "trace was recorded on a different machine geometry");
    REPRO_REQUIRE_MSG(machine.config().page_size == meta.page_size,
                      "trace was recorded with a different page size");
    // Replay the allocation sequence verbatim: page numbers inside the
    // recorded op streams are offsets into this exact layout.
    for (const tracefmt::TraceAllocation& a : meta.allocations) {
      const vm::PageRange range =
          machine.address_space().allocate_pages(a.name, a.pages);
      REPRO_REQUIRE_MSG(range.first.value() == a.first_page,
                        "trace allocation layout diverged on replay");
    }
  }

  void register_hot(upm::Upmlib& upm) const override {
    for (const tracefmt::TraceRange& r : replayer_.meta().hot_ranges) {
      upm.memrefcnt(vm::PageRange{VPage(r.first_page), r.pages});
    }
  }

  void cold_start(omp::Machine& machine) override {
    sim::ReplayItem item;
    const bool have = replayer_.next(item);
    REPRO_REQUIRE_MSG(have &&
                          item.kind == sim::ReplayItem::Kind::kColdBegin,
                      "trace does not start with a cold-start marker");
    replay_phase(machine);
  }

  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override {
    (void)ctx;  // record-replay instrumentation is not replayable
    REPRO_REQUIRE_MSG(pending_.has_value(),
                      "trace exhausted: more iterations requested than "
                      "were recorded");
    REPRO_REQUIRE_MSG(pending_->kind ==
                              sim::ReplayItem::Kind::kIterationBegin &&
                          pending_->step == step,
                      "trace iteration markers out of sequence");
    pending_.reset();
    replay_phase(machine);
  }

  [[nodiscard]] std::uint64_t hot_page_count() const override {
    std::uint64_t pages = 0;
    for (const tracefmt::TraceRange& r : replayer_.meta().hot_ranges) {
      pages += r.pages;
    }
    return pages;
  }

 private:
  /// Dispatches items until the next phase marker (stashed in
  /// pending_) or the end of the trace.
  void replay_phase(omp::Machine& machine) {
    omp::Runtime& rt = machine.runtime();
    sim::ReplayItem item;
    while (replayer_.next(item)) {
      switch (item.kind) {
        case sim::ReplayItem::Kind::kRegion:
          restore_binding(rt, item.binding);
          rt.run(replayer_.name(item.name_id), item.program);
          break;
        case sim::ReplayItem::Kind::kAdvance:
          rt.advance(item.ns);
          break;
        case sim::ReplayItem::Kind::kColdBegin:
        case sim::ReplayItem::Kind::kIterationBegin:
          pending_ = std::move(item);
          return;
        case sim::ReplayItem::Kind::kNone:
          REPRO_UNREACHABLE("empty replay item");
      }
    }
  }

  sim::TraceReplayer replayer_;
  std::optional<sim::ReplayItem> pending_;
};

}  // namespace

std::unique_ptr<Workload> make_trace_workload(
    const std::string& path, const TraceWorkloadOptions& options) {
  return std::make_unique<TraceWorkload>(path, options);
}

}  // namespace repro::nas
