// Workload model interface.
//
// Each NAS benchmark is modelled as an iterative parallel code: a
// cold-start iteration (the providers' first-touch tuning trick -- its
// results are discarded but it faults every shared page in), followed
// by `iterations` identical timed iterations. The UPMlib instrumentation
// the paper's compiler inserts (Figs. 2 and 3) lives inside the models,
// driven by the UpmMode of the run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::nas {

enum class UpmMode : std::uint8_t {
  kOff,           ///< no UPMlib calls
  kDistribution,  ///< Fig. 2: migrate_memory() at iteration boundaries
  kRecordReplay,  ///< Fig. 3: distribution + record--replay around phases
};

struct WorkloadParams {
  /// 0 = the benchmark's default iteration count (paper: BT 200, SP 15,
  /// CG 400, MG 4, FT 6).
  std::uint32_t iterations = 0;
  /// Fig. 6 synthetic scaling: each solver function body is enclosed in
  /// a sequential loop with this many repetitions.
  std::uint32_t compute_scale = 1;
  /// Fraction of each hot array's pages first-touched by the master
  /// thread during initialization (the serial init sections of the real
  /// codes, which make first-touch slightly suboptimal -- the source of
  /// the paper's 6-22% ft-upmlib gains). Negative = benchmark default.
  double serial_init_fraction = -1.0;
  /// Problem-size multiplier applied to plane counts (1.0 = default).
  double size_scale = 1.0;
};

struct IterationContext {
  upm::Upmlib* upm = nullptr;
  UpmMode mode = UpmMode::kOff;
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t default_iterations() const = 0;

  /// Allocates the shared arrays in the machine's address space.
  virtual void setup(omp::Machine& machine) = 0;

  /// Registers the hot memory areas (what the compiler identifies as
  /// shared arrays read and written across disjoint parallel
  /// constructs).
  virtual void register_hot(upm::Upmlib& upm) const = 0;

  /// Runs the untimed cold-start iteration (establishes first-touch
  /// placement; results discarded).
  virtual void cold_start(omp::Machine& machine) = 0;

  /// Runs one timed iteration. `step` is 1-based, matching the paper's
  /// step variable. Record-replay instrumentation (where supported)
  /// fires inside, exactly as in the paper's Fig. 3.
  virtual void iteration(omp::Machine& machine, const IterationContext& ctx,
                         std::uint32_t step) = 0;

  /// True if the benchmark has a phase change and implements the
  /// record--replay protocol (BT and SP).
  [[nodiscard]] virtual bool supports_record_replay() const { return false; }

  /// Hot page count (after setup), for sizing assertions in tests.
  [[nodiscard]] virtual std::uint64_t hot_page_count() const = 0;

 protected:
  /// Emits the "serial initialization" cold-start region: the master
  /// thread faults every stride-th page of `range` (fraction ~= 1/stride
  /// of the array), which first-touch then places on the master's node.
  static void master_fault_scattered(omp::Machine& machine,
                                     const vm::PageRange& range,
                                     double fraction);
};

/// Benchmark names in paper order: BT, SP, CG, MG, FT.
[[nodiscard]] const std::vector<std::string>& workload_names();

/// NPB-style problem classes as size presets. The paper uses Class A
/// (our calibration baseline, size_scale 1); W halves and B doubles
/// the grids. Classes scale *footprints*, not iteration counts.
[[nodiscard]] WorkloadParams params_for_class(char problem_class);

/// Factory by benchmark name (case-sensitive, e.g. "BT").
[[nodiscard]] std::unique_ptr<Workload> make_workload(
    const std::string& name, const WorkloadParams& params = {});

}  // namespace repro::nas
