// MG: V-cycle multigrid solver for a 3-D Poisson equation.
//
// Each iteration runs one V-cycle over a hierarchy of grids: residual
// and restriction sweeps going down, the coarse solve, prolongation and
// smoothing going up. Every level is plane-partitioned; the stencils
// read one neighbouring boundary plane on each side (nearest-neighbour
// communication). Coarse levels have fewer planes than threads, so part
// of the team idles there and the coarse arrays are shared among few
// pages -- MG's placement sensitivity comes mostly from the huge finest
// level.
#pragma once

#include <vector>

#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {

struct MgParams {
  std::uint64_t finest_planes = 256;
  std::uint64_t finest_pages_per_plane = 32;
  std::uint32_t num_levels = 5;
  std::uint32_t default_iterations = 4;
  /// Smoothing sweeps per level on the way up the V-cycle.
  std::uint32_t smooth_passes = 3;
  double smooth_ns_per_line = 380.0;
  double transfer_ns_per_line = 200.0;
  /// Lines read from each boundary-plane page of the neighbouring
  /// partition (ghost exchange).
  std::uint32_t boundary_lines = 32;
  double serial_init_fraction = 0.05;
};

class MgWorkload final : public Workload {
 public:
  MgWorkload(MgParams mg, const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return "MG"; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return mg_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] std::size_t levels() const { return u_.size(); }
  [[nodiscard]] const PlaneArray& u_level(std::size_t l) const;
  [[nodiscard]] const PlaneArray& r_level(std::size_t l) const;

 private:
  MgParams mg_;
  WorkloadParams params_;
  std::vector<PlaneArray> u_;
  std::vector<PlaneArray> r_;
  RegionCache programs_;

  /// Stencil sweep over one level: main block plane sweep plus the two
  /// ghost boundary planes.
  void stencil_sweep(omp::Machine& machine, const std::string& name,
                     const PlaneArray& read, const PlaneArray* write,
                     double ns_per_line);
  /// Grid transfer between adjacent levels (restrict / prolongate).
  void transfer(omp::Machine& machine, const std::string& name,
                const PlaneArray& from, const PlaneArray& to);
};

}  // namespace repro::nas
