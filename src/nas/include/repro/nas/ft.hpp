// FT: 3-D Fast Fourier Transform kernel.
//
// Each iteration evolves the spectral array and runs a 3-D FFT: the x/y
// butterfly passes work on whole planes (k partition), then the data is
// transposed into a second array so the z passes can work unit-stride
// (j/column partition), followed by a checksum reduction over planes.
//
// Two properties matter for the paper's results:
//  * the transpose is an all-to-all: every thread writes a slice of
//    every plane of u1, so placement quality strongly affects FT (the
//    paper's worst random-placement slowdown, 45%, is FT's);
//  * the per-thread column slice of u1 is NOT page aligned
//    (pages_per_plane is not divisible by the thread count), so the
//    slice-boundary pages are written by two threads every iteration --
//    page-level false sharing, which is why the paper finds the IRIX
//    kernel migration engine *harmful* for FT and why UPMlib freezes
//    bouncing pages.
#pragma once

#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {

struct FtParams {
  std::uint64_t planes = 128;
  /// Deliberately not divisible by 16 threads: column-slice boundary
  /// pages are false-shared.
  std::uint64_t pages_per_plane = 40;
  std::uint32_t default_iterations = 6;
  std::uint32_t fft_passes = 8;
  double fft_ns_per_line = 520.0;
  double transpose_ns_per_line = 60.0;
  double evolve_ns_per_line = 80.0;
  double checksum_ns_per_line = 40.0;
  double serial_init_fraction = 0.0;
};

class FtWorkload final : public Workload {
 public:
  FtWorkload(FtParams ft, const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return "FT"; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return ft_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] const PlaneArray& u0() const { return u0_; }
  [[nodiscard]] const PlaneArray& u1() const { return u1_; }

 private:
  FtParams ft_;
  WorkloadParams params_;
  PlaneArray u0_;
  PlaneArray u1_;
  RegionCache programs_;

  void phase_evolve(omp::Machine& machine);
  void phase_fft_xy(omp::Machine& machine);
  void phase_transpose(omp::Machine& machine);
  void phase_fft_z(omp::Machine& machine);
  void phase_checksum(omp::Machine& machine);
};

}  // namespace repro::nas
