// Task-parallel workload family (MGT / CGT).
//
// The paper's codes are loop-parallel: every phase is a PARALLEL DO
// whose iteration->thread map is a static schedule. These two models
// re-express the MG stencil and the CG sparse matvec as explicit task
// graphs scheduled by the deterministic work-stealing TaskScheduler
// (omp/task.hpp) -- the programming model the scale sweeps contrast
// against static scheduling past 16 nodes:
//
//  * MGT -- the MG finest-level stencil decomposed by recursive
//    bisection over planes into leaf tasks (task-recursive spawning,
//    the canonical OpenMP-task idiom). A leaf's home thread is the
//    owner of its planes under the static block partition, so an
//    unstolen schedule touches exactly the pages static MG would.
//  * CGT -- the CG matvec decomposed into row-block tasks (several per
//    thread); vector phases stay block-partitioned like CG, so the two
//    CG variants differ only in how the dominant phase is scheduled.
//
// Both compile through the same RegionCache / Runtime::run path as the
// loop-parallel models, so the analyzer, advisor, tracer, fault
// injector and steady-state fast-forward see task regions with no
// special cases. The schedule is computed once at setup (it is a pure
// function); every iteration replays it and emits the
// kTaskSpawn/kTaskSteal protocol events.
#pragma once

#include <memory>
#include <vector>

#include "repro/nas/cg.hpp"
#include "repro/nas/mg.hpp"
#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/task.hpp"

namespace repro::nas {

/// Shared tunables of the task decompositions.
struct TaskFamilyParams {
  /// Leaf tasks per thread the bisection/blocking aims for (> 1 keeps
  /// the steal machinery exercised even on balanced inputs).
  std::uint32_t tasks_per_thread = 4;
  /// Victim-selection seed of the deterministic work stealer.
  std::uint64_t steal_seed = 0x9e3779b97f4a7c15ull;
};

class MgtWorkload final : public Workload {
 public:
  MgtWorkload(MgParams mg, TaskFamilyParams task_params,
              const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return "MGT"; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return mg_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  /// The computed steal schedule of the smoothing wave (tests).
  [[nodiscard]] const std::vector<omp::TaskAssignment>& smooth_schedule()
      const {
    return smooth_assignments_;
  }

 private:
  MgParams mg_;
  TaskFamilyParams task_params_;
  WorkloadParams params_;
  PlaneArray u_;
  PlaneArray r_;
  RegionCache programs_;

  std::unique_ptr<omp::TaskScheduler> scheduler_;
  std::vector<omp::TaskDesc> smooth_tasks_;     // u <- smooth(u, r)
  std::vector<omp::TaskDesc> residual_tasks_;   // r <- residual(u)
  std::vector<omp::TaskAssignment> smooth_assignments_;
  std::vector<omp::TaskAssignment> residual_assignments_;

  /// Recursive bisection of planes [begin, end) into leaf tasks.
  void spawn_stencil_tasks(std::vector<omp::TaskDesc>& tasks,
                           const PlaneArray& read, const PlaneArray* write,
                           double ns_per_line, std::size_t num_threads,
                           std::uint64_t begin, std::uint64_t end,
                           std::uint64_t leaf_planes,
                           std::uint32_t lines_per_page);
  void run_wave(omp::Machine& machine, const std::string& name,
                std::span<const omp::TaskDesc> tasks,
                std::span<const omp::TaskAssignment> assignments);
};

class CgtWorkload final : public Workload {
 public:
  CgtWorkload(CgParams cg, TaskFamilyParams task_params,
              const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return "CGT"; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return cg_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] const std::vector<omp::TaskAssignment>& matvec_schedule()
      const {
    return matvec_assignments_;
  }

 private:
  CgParams cg_;
  TaskFamilyParams task_params_;
  WorkloadParams params_;
  vm::PageRange a_;
  vm::PageRange p_;
  vm::PageRange q_;
  vm::PageRange r_;
  vm::PageRange x_;
  RegionCache programs_;

  std::unique_ptr<omp::TaskScheduler> scheduler_;
  std::vector<omp::TaskDesc> matvec_tasks_;
  std::vector<omp::TaskAssignment> matvec_assignments_;

  void phase_matvec(omp::Machine& machine);
  void phase_vector_ops(omp::Machine& machine);
  void phase_p_update(omp::Machine& machine);
};

/// The task-family benchmark names ("MGT", "CGT"). Not part of
/// workload_names(): the paper's Table-2/3 grids -- and the golden
/// trace set -- stay the five loop-parallel codes.
[[nodiscard]] const std::vector<std::string>& task_workload_names();

}  // namespace repro::nas
