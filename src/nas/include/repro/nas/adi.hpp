// BT and SP: simulated-CFD ADI solvers.
//
// Both codes factor the 3-D Navier-Stokes system and sweep the grid
// along each dimension per time step:
//
//   compute_rhs  -> x_solve -> y_solve -> [phase change] z_solve -> add
//
// compute_rhs, x_solve, y_solve and add parallelize the k (z) loop:
// thread t owns a contiguous block of k-planes of u, rhs and forcing.
// z_solve parallelizes the j (y) loop: thread t owns a j-slice of every
// plane -- the transposed access pattern that motivates the paper's
// record--replay redistribution. The arrays are aligned so one j-slice
// is a whole number of pages (the paper notes BT/SP arrays are aligned
// in memory to improve x/y locality).
//
// BT and SP differ in the factorization (block-tridiagonal 5x5 systems
// vs scalar pentadiagonal): BT does much more computation per grid
// point, which is why the paper finds BT the least sensitive benchmark
// to page placement. The model expresses this as per-line compute costs.
#pragma once

#include <array>

#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {

struct AdiParams {
  std::string name = "BT";
  std::uint64_t planes = 128;
  std::uint64_t pages_per_plane = 16;
  std::uint32_t default_iterations = 200;
  double rhs_ns_per_line = 60.0;
  /// Lines of each forcing page read per iteration (the solver only
  /// interpolates the forcing terms; 0 = whole page).
  std::uint32_t forcing_lines = 0;
  double solve_ns_per_line = 1100.0;
  double add_ns_per_line = 30.0;
  /// Fractions of each array first-touched by the master thread during
  /// serial initialization. `forcing` is the cold array (read once per
  /// iteration): its misplacement is invisible to the kernel daemon's
  /// windowed counter view but plainly visible to UPMlib's per-iteration
  /// traces -- the source of the paper's ft-upmlib gains.
  double serial_init_u = 0.0;
  double serial_init_forcing = 0.6;

  // Interface-plane working array ("bc"): holds the per-direction
  // interface fluxes the line solves recompute on every substitution
  // pass. In x/y solves it is partitioned like the grid (by k); in
  // z_solve it is partitioned by j -- its pages are the ones whose
  // dominant accessor genuinely flips at the phase change, i.e. the
  // paper's "most critical pages" for record--replay.
  /// One interface page per thread: the paper's critical-page cap
  /// (n = 20) must cover every thread's flip pages for the replay gain
  /// to move the join barrier.
  std::uint64_t bc_pages_per_thread = 1;
  /// Interleaved passes over the bc pages per x/y solve (each).
  std::uint32_t bc_passes_xy = 16;
  /// Interleaved passes over the (re-partitioned) bc pages in z_solve.
  std::uint32_t bc_passes_z = 24;
  double bc_ns_per_line = 40.0;
};

[[nodiscard]] AdiParams bt_params();
[[nodiscard]] AdiParams sp_params();

class AdiSolverWorkload final : public Workload {
 public:
  AdiSolverWorkload(AdiParams adi, const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return adi_.name; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return adi_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] bool supports_record_replay() const override { return true; }
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] const PlaneArray& u() const { return u_; }
  [[nodiscard]] const PlaneArray& rhs() const { return rhs_; }
  [[nodiscard]] const PlaneArray& forcing() const { return forcing_; }
  [[nodiscard]] const vm::PageRange& bc() const { return bc_; }

 private:
  AdiParams adi_;
  WorkloadParams params_;
  PlaneArray u_;
  PlaneArray rhs_;
  PlaneArray forcing_;
  vm::PageRange bc_;
  RegionCache programs_;

  /// bc pages owned by thread t under the x/y (k) partition.
  [[nodiscard]] omp::ChunkRange bc_block_xy(ThreadId t,
                                            std::size_t threads) const;
  /// bc pages owned by thread t under the z (j) partition: the x/y
  /// assignment rotated by one thread, so ownership flips at z_solve.
  [[nodiscard]] omp::ChunkRange bc_block_z(ThreadId t,
                                           std::size_t threads) const;

  void phase_rhs(omp::Machine& machine);
  void phase_xy_solve(omp::Machine& machine, const std::string& name);
  void phase_z_solve(omp::Machine& machine);
  void phase_add(omp::Machine& machine);
};

}  // namespace repro::nas
