// Trace replay as a Workload: an RTRC trace file (see src/tracefmt)
// stands in for a NAS model, re-dispatching the recorded region /
// advance stream through the live runtime. Every harness feature --
// placements, UPMlib distribution, the kernel daemon, coherence,
// tracing -- composes unchanged, because the timing backend cannot
// tell a replayed region from a compiled one.
#pragma once

#include <memory>
#include <string>

#include "repro/nas/workload.hpp"

namespace repro::nas {

struct TraceWorkloadOptions {
  /// Decode on a producer thread over the SPSC ring buffer instead of
  /// inline on the simulation thread (see sim::TraceReplayer).
  bool pipeline = false;
};

/// Opens `path` (throws tracefmt::TraceError on malformed input) and
/// wraps it as a replayable workload. The returned workload's name()
/// is the recorded benchmark's name, and default_iterations() is the
/// recorded iteration count; requesting more iterations than were
/// recorded fails with a clear contract violation.
[[nodiscard]] std::unique_ptr<Workload> make_trace_workload(
    const std::string& path, const TraceWorkloadOptions& options = {});

}  // namespace repro::nas
