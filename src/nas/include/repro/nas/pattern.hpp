// Access-pattern building blocks for the NAS workload models.
//
// The models describe each benchmark's per-phase page-level access
// pattern, derived from the published algorithm structure. The central
// abstraction is a PlaneArray: a 3-D array laid out plane-major (the
// Fortran layout of u(5,i,j,k) pages out as: pages_per_plane pages for
// k=0, then k=1, ...). Two partitions matter:
//
//  * plane partition: thread t owns a contiguous k-range -- the pattern
//    of compute_rhs / x_solve / y_solve (k-loop parallelization);
//  * column partition: thread t owns a contiguous slice of every plane's
//    line space (j-loop parallelization) -- the pattern of z_solve and
//    FFT transposes. When the per-thread slice is not page-aligned, the
//    boundary pages are genuinely written by two threads: page-level
//    false sharing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/sim/program.hpp"
#include "repro/sim/region.hpp"
#include "repro/vm/address_space.hpp"

namespace repro::nas {

/// A shared 3-D array as a plane-major page grid.
struct PlaneArray {
  vm::PageRange range;
  std::uint64_t planes = 0;
  std::uint64_t pages_per_plane = 0;

  [[nodiscard]] VPage page_at(std::uint64_t plane, std::uint64_t index) const;
  [[nodiscard]] std::uint64_t total_pages() const {
    return planes * pages_per_plane;
  }
  /// Lines in one plane's line space.
  [[nodiscard]] std::uint64_t lines_per_plane(
      std::uint32_t lines_per_page) const {
    return pages_per_plane * lines_per_page;
  }
};

/// Allocates a plane array in the address space under `name`.
[[nodiscard]] PlaneArray alloc_plane_array(vm::AddressSpace& space,
                                           const std::string& name,
                                           std::uint64_t planes,
                                           std::uint64_t pages_per_plane);

/// Emission context: the region being built, the emitting thread and
/// the machine's line geometry.
struct Emit {
  sim::RegionBuilder& region;
  ThreadId thread;
  std::uint32_t lines_per_page;

  /// Full-page accesses to every page of planes [begin, end), with
  /// `compute_ns_per_line` of attached work. `stream` marks the sweep
  /// as unit-stride/prefetchable.
  /// `lines` overrides the lines touched per page (0 = whole page).
  void sweep_planes(const PlaneArray& a, std::uint64_t begin,
                    std::uint64_t end, bool write,
                    double compute_ns_per_line, bool stream = false,
                    std::uint32_t lines = 0) const;

  /// Column sweep: for every plane, touches the pages covering lines
  /// [line_begin, line_end) of the plane's line space (partial pages at
  /// the slice boundaries get partial-line accesses).
  void sweep_columns(const PlaneArray& a, std::uint64_t line_begin,
                     std::uint64_t line_end, bool write,
                     double compute_ns_per_line) const;  // never streams

  /// Gather: touches `lines_per_page_touched` lines of every page of
  /// `range` (the CG p-vector / irregular read pattern).
  void gather(const vm::PageRange& range, std::uint32_t lines_per_page_touched,
              bool write, double compute_ns_per_line) const;

  /// Full sweep over an unstructured page range.
  void sweep_range(const vm::PageRange& range, std::uint64_t page_begin,
                   std::uint64_t page_end, bool write,
                   double compute_ns_per_line, bool stream = false) const;

  /// Touches the first line of pages [begin, end) of `range` -- used by
  /// cold-start code to fault pages in without charging a full sweep.
  void fault_pages(const vm::PageRange& range, std::uint64_t begin,
                   std::uint64_t end) const;

 private:
  void one(VPage page, std::uint32_t lines, bool write,
           double compute_ns_per_line, bool stream = false) const;
};

/// Memoizes compiled region programs by region name. A benchmark's
/// phase patterns depend only on the array geometry, the team size and
/// the line geometry -- all fixed after setup -- so each phase compiles
/// its op streams once and replays the same immutable program every
/// iteration (placement, caches and bindings are the per-run state, and
/// they live in the machine, not the program).
class RegionCache {
 public:
  /// Returns the program compiled for `key`, building it on first use:
  /// `build` fills a fresh RegionBuilder sized for `num_threads`.
  const sim::RegionProgram& get(
      const std::string& key, std::size_t num_threads,
      const std::function<void(sim::RegionBuilder&)>& build);

  void clear() { programs_.clear(); }

 private:
  std::unordered_map<std::string, sim::RegionProgram> programs_;
};

}  // namespace repro::nas
