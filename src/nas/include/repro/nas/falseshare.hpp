// FS / FSP: the false-sharing scenario family for the line-grain
// coherence model (not a NAS code -- a synthetic microkernel in NAS
// clothing, modelled on the classic per-thread-counter anti-pattern).
//
// Every thread owns a private block of "work" pages it sweeps each
// iteration (ordinary, cache-friendly traffic), plus one field in a
// shared "flags" array it read-modify-writes `flag_updates` times per
// iteration:
//
//  * FS  ("falseshare"): `threads_per_line` consecutive threads' fields
//    share one coherence line, so every RMW invalidates the other
//    writers' copies -- the line ping-pongs and the coherence-miss rate
//    explodes, with *zero* page-grain locality difference;
//  * FSP ("padded"):     the padded twin -- one field per line, same
//    access counts, no sharing, so line ping-pong disappears.
//
// The pair is the ground truth for analysis.false-sharing and for the
// bench/coherence_sweep acceptance ratio (FS coherence-miss rate must
// be >= 5x FSP's).
#pragma once

#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {

struct FalseShareParams {
  /// Private work pages swept by each thread per iteration.
  std::uint64_t work_pages_per_thread = 8;
  /// Read-modify-write rounds on the thread's flag field per iteration.
  std::uint32_t flag_updates = 16;
  /// Threads whose fields share one coherence line in FS (FSP always
  /// pads to one field per line).
  std::uint32_t threads_per_line = 4;
  std::uint32_t default_iterations = 12;
  double work_ns_per_line = 40.0;
  /// Compute attached to each flag access (ns).
  Ns flag_compute_ns = 20;
};

class FalseShareWorkload final : public Workload {
 public:
  /// `padded` selects the FSP twin (one flag field per line).
  FalseShareWorkload(bool padded, FalseShareParams fs,
                     const WorkloadParams& params);

  [[nodiscard]] std::string name() const override {
    return padded_ ? "FSP" : "FS";
  }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return fs_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] const vm::PageRange& flags() const { return flags_; }
  /// The flag line (index into the flags range's line space) thread `t`
  /// writes; under FS, `threads_per_line` threads map to one line.
  [[nodiscard]] std::uint64_t flag_line_of(std::uint32_t thread) const {
    return padded_ ? thread : thread / fs_.threads_per_line;
  }

 private:
  bool padded_;
  FalseShareParams fs_;
  WorkloadParams params_;
  std::uint32_t threads_ = 0;
  vm::PageRange work_;
  vm::PageRange flags_;
  RegionCache programs_;

  void phase_update(omp::Machine& machine);
};

}  // namespace repro::nas
