// CG: conjugate-gradient kernel (smallest eigenvalue of a large sparse
// matrix via inverse power iteration).
//
// Per iteration the dominant work is the sparse matrix-vector product
// q = A*p: thread t streams its block of A's rows (huge, no reuse) and
// gathers entries of p from everywhere (the irregular access of the
// sparse structure). The vectors are block-partitioned for the axpy /
// dot-product phases.
//
// CG's pattern is why the paper sees it as the extremes on both sides:
// it is the most memory-bound code (worst-case placement of A is
// catastrophic), and its cold-start iteration touches A exactly like
// the main loop does, so first-touch is already optimal and UPMlib has
// nothing to gain under ft.
#pragma once

#include "repro/nas/pattern.hpp"
#include "repro/nas/workload.hpp"

namespace repro::nas {

struct CgParams {
  std::uint64_t a_pages = 5120;
  std::uint64_t vec_pages = 160;
  /// Lines of each p page gathered per thread during the matvec.
  std::uint32_t gather_lines = 32;
  std::uint32_t default_iterations = 400;
  double matvec_ns_per_line = 320.0;
  double vec_ns_per_line = 40.0;
  /// CG has no serial init sections: first-touch is optimal.
  double serial_init_fraction = 0.0;
};

class CgWorkload final : public Workload {
 public:
  CgWorkload(CgParams cg, const WorkloadParams& params);

  [[nodiscard]] std::string name() const override { return "CG"; }
  [[nodiscard]] std::uint32_t default_iterations() const override {
    return cg_.default_iterations;
  }
  void setup(omp::Machine& machine) override;
  void register_hot(upm::Upmlib& upm) const override;
  void cold_start(omp::Machine& machine) override;
  void iteration(omp::Machine& machine, const IterationContext& ctx,
                 std::uint32_t step) override;
  [[nodiscard]] std::uint64_t hot_page_count() const override;

  [[nodiscard]] const vm::PageRange& a() const { return a_; }
  [[nodiscard]] const vm::PageRange& p() const { return p_; }

 private:
  CgParams cg_;
  WorkloadParams params_;
  vm::PageRange a_;
  vm::PageRange p_;
  vm::PageRange q_;
  vm::PageRange r_;
  vm::PageRange x_;
  RegionCache programs_;

  void phase_matvec(omp::Machine& machine);
  void phase_vector_ops(omp::Machine& machine);
  void phase_p_update(omp::Machine& machine);
};

}  // namespace repro::nas
