#include "repro/nas/workload.hpp"

#include <cmath>

#include "repro/common/assert.hpp"
#include "repro/nas/adi.hpp"
#include "repro/nas/cg.hpp"
#include "repro/nas/falseshare.hpp"
#include "repro/nas/ft.hpp"
#include "repro/nas/mg.hpp"
#include "repro/nas/pattern.hpp"
#include "repro/nas/task_workloads.hpp"

namespace repro::nas {

void Workload::master_fault_scattered(omp::Machine& machine,
                                      const vm::PageRange& range,
                                      double fraction) {
  if (fraction <= 0.0) {
    return;
  }
  REPRO_REQUIRE(fraction <= 1.0);
  const auto stride = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / fraction)));
  omp::Runtime& rt = machine.runtime();
  sim::RegionBuilder region = rt.make_region();
  for (std::uint64_t i = 0; i < range.count; i += stride) {
    region.access(ThreadId(0), range.page(i), 1, /*write=*/true);
  }
  rt.run("serial_init", std::move(region));
}

WorkloadParams params_for_class(char problem_class) {
  WorkloadParams params;
  switch (problem_class) {
    case 'W':
    case 'w':
      params.size_scale = 0.5;
      break;
    case 'A':
    case 'a':
      params.size_scale = 1.0;
      break;
    case 'B':
    case 'b':
      params.size_scale = 2.0;
      break;
    default:
      REPRO_UNREACHABLE("unknown problem class (use W, A or B)");
  }
  return params;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {"BT", "SP", "CG", "MG",
                                                 "FT"};
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadParams& params) {
  if (name == "BT") {
    return std::make_unique<AdiSolverWorkload>(bt_params(), params);
  }
  if (name == "SP") {
    return std::make_unique<AdiSolverWorkload>(sp_params(), params);
  }
  if (name == "CG") {
    return std::make_unique<CgWorkload>(CgParams{}, params);
  }
  if (name == "MG") {
    return std::make_unique<MgWorkload>(MgParams{}, params);
  }
  if (name == "FT") {
    return std::make_unique<FtWorkload>(FtParams{}, params);
  }
  // Task-parallel variants (not in workload_names(): the Table-2/3 and
  // golden-trace grids stay the five loop-parallel codes).
  if (name == "MGT") {
    return std::make_unique<MgtWorkload>(MgParams{}, TaskFamilyParams{},
                                         params);
  }
  if (name == "CGT") {
    return std::make_unique<CgtWorkload>(CgParams{}, TaskFamilyParams{},
                                         params);
  }
  // False-sharing scenario family (coherence-model workloads; also not
  // in workload_names()).
  if (name == "FS") {
    return std::make_unique<FalseShareWorkload>(/*padded=*/false,
                                                FalseShareParams{}, params);
  }
  if (name == "FSP") {
    return std::make_unique<FalseShareWorkload>(/*padded=*/true,
                                                FalseShareParams{}, params);
  }
  REPRO_UNREACHABLE("unknown benchmark name");
}

}  // namespace repro::nas
