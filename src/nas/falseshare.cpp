#include "repro/nas/falseshare.hpp"

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {

FalseShareWorkload::FalseShareWorkload(bool padded, FalseShareParams fs,
                                       const WorkloadParams& params)
    : padded_(padded), fs_(fs), params_(params) {
  REPRO_REQUIRE(fs_.threads_per_line >= 1);
  if (params_.size_scale != 1.0) {
    fs_.work_pages_per_thread = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(fs_.work_pages_per_thread) *
               params_.size_scale));
  }
}

void FalseShareWorkload::setup(omp::Machine& machine) {
  threads_ = static_cast<std::uint32_t>(machine.config().num_procs());
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::uint64_t flag_lines =
      padded_ ? threads_
              : (threads_ + fs_.threads_per_line - 1) / fs_.threads_per_line;
  const std::uint64_t flag_pages = (flag_lines + lpp - 1) / lpp;
  vm::AddressSpace& space = machine.address_space();
  work_ = space.allocate_pages("FS.work",
                               threads_ * fs_.work_pages_per_thread);
  flags_ = space.allocate_pages("FS.flags", flag_pages);
}

void FalseShareWorkload::register_hot(upm::Upmlib& upm) const {
  upm.memrefcnt(work_);
  upm.memrefcnt(flags_);
}

std::uint64_t FalseShareWorkload::hot_page_count() const {
  return work_.count + flags_.count;
}

void FalseShareWorkload::cold_start(omp::Machine& machine) {
  // The flags array is initialized serially (memset-style), so the
  // whole page lands on the master's node -- like the real codes'
  // serial init sections, and deliberately: false sharing is a *line*
  // pathology, and a single-node page keeps the page-grain picture
  // identical between FS and FSP.
  master_fault_scattered(machine, flags_, 1.0);
  // Each thread first-touches its own work block (perfect first-touch
  // placement -- the work arrays are not the interesting part).
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  sim::RegionBuilder region = rt.make_region();
  for (std::uint32_t t = 0; t < threads_; ++t) {
    const Emit e{region, ThreadId(t), lpp};
    e.sweep_range(work_, t * fs_.work_pages_per_thread,
                  (t + 1) * fs_.work_pages_per_thread, /*write=*/true,
                  fs_.work_ns_per_line);
  }
  rt.run("FS.init", std::move(region));
  iteration(machine, IterationContext{}, 0);
}

void FalseShareWorkload::phase_update(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "FS.update", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          // Private sweep: ordinary traffic that keeps the caches busy
          // and gives the miss *rate* a denominator.
          e.sweep_range(work_, t * fs_.work_pages_per_thread,
                        (t + 1) * fs_.work_pages_per_thread, /*write=*/true,
                        fs_.work_ns_per_line);
          // Flag RMW rounds: read-then-write the thread's own field.
          // Under FS the field shares its line with the neighbours'
          // fields, so each write invalidates their copies (the
          // ping-pong); under FSP the line is private and the rounds
          // after the first all hit.
          const std::uint64_t line = flag_line_of(t);
          const VPage page = flags_.page(line / lpp);
          const auto index = static_cast<std::uint32_t>(line % lpp);
          for (std::uint32_t u = 0; u < fs_.flag_updates; ++u) {
            region.access_at(ThreadId(t), page, index, 1, /*write=*/false,
                             fs_.flag_compute_ns);
            region.access_at(ThreadId(t), page, index, 1, /*write=*/true,
                             fs_.flag_compute_ns);
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FS.update", program);
  }
}

void FalseShareWorkload::iteration(omp::Machine& machine,
                                   const IterationContext& /*ctx*/,
                                   std::uint32_t /*step*/) {
  phase_update(machine);
}

}  // namespace repro::nas
