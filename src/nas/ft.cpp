#include "repro/nas/ft.hpp"

#include "repro/common/assert.hpp"
#include "repro/omp/schedule.hpp"

namespace repro::nas {

FtWorkload::FtWorkload(FtParams ft, const WorkloadParams& params)
    : ft_(ft), params_(params) {
  if (params_.size_scale != 1.0) {
    ft_.planes = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(static_cast<double>(ft_.planes) *
                                      params_.size_scale));
  }
  if (params_.serial_init_fraction >= 0.0) {
    ft_.serial_init_fraction = params_.serial_init_fraction;
  }
}

void FtWorkload::setup(omp::Machine& machine) {
  vm::AddressSpace& space = machine.address_space();
  u0_ = alloc_plane_array(space, "FT.u0", ft_.planes, ft_.pages_per_plane);
  u1_ = alloc_plane_array(space, "FT.u1", ft_.planes, ft_.pages_per_plane);
}

void FtWorkload::register_hot(upm::Upmlib& upm) const {
  upm.memrefcnt(u0_.range);
  upm.memrefcnt(u1_.range);
}

std::uint64_t FtWorkload::hot_page_count() const {
  return u0_.total_pages() + u1_.total_pages();
}

void FtWorkload::cold_start(omp::Machine& machine) {
  master_fault_scattered(machine, u0_.range, ft_.serial_init_fraction);
  iteration(machine, IterationContext{}, 0);
}

void FtWorkload::phase_evolve(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "FT.evolve", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block =
              omp::static_block(ThreadId(t), threads, u0_.planes);
          e.sweep_planes(u0_, block.begin, block.end, /*write=*/true,
                         ft_.evolve_ns_per_line, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FT.evolve", program);
  }
}

void FtWorkload::phase_fft_xy(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "FT.fft_xy", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block =
              omp::static_block(ThreadId(t), threads, u0_.planes);
          for (std::uint32_t pass = 0; pass < ft_.fft_passes; ++pass) {
            e.sweep_planes(u0_, block.begin, block.end, /*write=*/true,
                           ft_.fft_ns_per_line, /*stream=*/true);
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FT.fft_xy", program);
  }
}

void FtWorkload::phase_transpose(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const std::uint64_t plane_lines = u1_.lines_per_plane(lpp);
  const sim::RegionProgram& program = programs_.get(
      "FT.transpose", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          // Read own planes of u0, write own column slice of every
          // plane of u1 (the all-to-all). The slice is not page
          // aligned.
          const auto src =
              omp::static_block(ThreadId(t), threads, u0_.planes);
          const auto dst =
              omp::static_block(ThreadId(t), threads, plane_lines);
          e.sweep_planes(u0_, src.begin, src.end, /*write=*/false,
                         ft_.transpose_ns_per_line);
          e.sweep_columns(u1_, dst.begin, dst.end, /*write=*/true,
                          ft_.transpose_ns_per_line);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FT.transpose", program);
  }
}

void FtWorkload::phase_fft_z(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const std::uint64_t plane_lines = u1_.lines_per_plane(lpp);
  const sim::RegionProgram& program = programs_.get(
      "FT.fft_z", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto slice =
              omp::static_block(ThreadId(t), threads, plane_lines);
          for (std::uint32_t pass = 0; pass < ft_.fft_passes; ++pass) {
            e.sweep_columns(u1_, slice.begin, slice.end, /*write=*/true,
                            ft_.fft_ns_per_line);
          }
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FT.fft_z", program);
  }
}

void FtWorkload::phase_checksum(omp::Machine& machine) {
  omp::Runtime& rt = machine.runtime();
  const std::uint32_t lpp = machine.config().lines_per_page();
  const std::size_t threads = rt.num_threads();
  const sim::RegionProgram& program = programs_.get(
      "FT.checksum", threads, [&](sim::RegionBuilder& region) {
        for (std::uint32_t t = 0; t < threads; ++t) {
          const Emit e{region, ThreadId(t), lpp};
          const auto block =
              omp::static_block(ThreadId(t), threads, u1_.planes);
          e.sweep_planes(u1_, block.begin, block.end, /*write=*/false,
                         ft_.checksum_ns_per_line, /*stream=*/true);
        }
      });
  for (std::uint32_t rep = 0; rep < params_.compute_scale; ++rep) {
    rt.run("FT.checksum", program);
  }
}

void FtWorkload::iteration(omp::Machine& machine,
                           const IterationContext& /*ctx*/,
                           std::uint32_t /*step*/) {
  phase_evolve(machine);
  phase_fft_xy(machine);
  phase_transpose(machine);
  phase_fft_z(machine);
  phase_checksum(machine);
}

}  // namespace repro::nas
