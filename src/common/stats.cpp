#include "repro/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/assert.hpp"

namespace repro {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }
double RunningStat::max() const { return max_; }

double percentile(std::vector<double> samples, double q) {
  REPRO_REQUIRE(q >= 0.0 && q <= 1.0);
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double slowdown(double t, double base) {
  REPRO_REQUIRE(base > 0.0);
  return (t - base) / base;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    REPRO_REQUIRE(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace repro
