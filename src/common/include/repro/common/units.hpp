// Time and size units used by the machine model.
//
// All simulated time is kept in nanoseconds as unsigned 64-bit integers;
// a 64-bit nanosecond clock wraps after ~584 years of simulated time,
// which is unreachable for these workloads.
#pragma once

#include <cstdint>

namespace repro {

/// Simulated time in nanoseconds.
using Ns = std::uint64_t;

/// Memory sizes in bytes.
using Bytes = std::uint64_t;

constexpr Ns kNsPerUs = 1'000;
constexpr Ns kNsPerMs = 1'000'000;
constexpr Ns kNsPerSec = 1'000'000'000;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/// Convert a nanosecond count to floating-point seconds (for reporting).
[[nodiscard]] constexpr double ns_to_seconds(Ns ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}

/// Convert a nanosecond count to floating-point milliseconds.
[[nodiscard]] constexpr double ns_to_ms(Ns ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}

}  // namespace repro
