// Small statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace repro {

/// Online mean / variance (Welford) plus min and max.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation over a copy of the samples.
/// `q` in [0, 1]. Returns 0 for an empty sample set.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Relative slowdown of `t` versus baseline `base`, as a fraction
/// (0.25 == 25% slower). Negative values mean `t` is faster.
[[nodiscard]] double slowdown(double t, double base);

/// Geometric mean; returns 0 for an empty input. Requires all positive.
[[nodiscard]] double geomean(const std::vector<double>& xs);

}  // namespace repro
