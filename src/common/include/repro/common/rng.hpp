// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs: random page
// placement, synthetic access jitter and workload shuffles all derive
// from an explicitly seeded xoshiro256** stream. std::mt19937 is avoided
// because its distributions are not specified portably.
#pragma once

#include <array>
#include <cstdint>

namespace repro {

/// SplitMix64 -- used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fork an independent stream (for per-thread determinism regardless of
  /// interleaving). The child is seeded from this stream's output.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace repro
