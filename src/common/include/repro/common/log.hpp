// Minimal leveled logging. Off by default; the REPRO_LOG environment
// variable (or Env override) selects the level: error, warn, info, debug.
#pragma once

#include <sstream>
#include <string>

namespace repro {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current log level (cached from Env on first use; refresh() re-reads).
[[nodiscard]] LogLevel log_level();

/// Re-reads the level from the environment (tests use this after
/// overriding REPRO_LOG).
void refresh_log_level();

/// Emits one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace repro

#define REPRO_LOG(level, ...)                                        \
  do {                                                               \
    if (static_cast<int>(level) <=                                   \
        static_cast<int>(::repro::log_level())) {                    \
      ::repro::log_line(level, ::repro::detail::concat(__VA_ARGS__)); \
    }                                                                \
  } while (false)

#define REPRO_LOG_INFO(...) REPRO_LOG(::repro::LogLevel::kInfo, __VA_ARGS__)
#define REPRO_LOG_WARN(...) REPRO_LOG(::repro::LogLevel::kWarn, __VA_ARGS__)
#define REPRO_LOG_DEBUG(...) REPRO_LOG(::repro::LogLevel::kDebug, __VA_ARGS__)
