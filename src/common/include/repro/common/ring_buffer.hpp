// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The pipelined trace replay (see sim::TraceReplayer) decodes chunks on
// a producer thread while the timing backend consumes decoded regions
// on the caller's thread; this is the channel between them. Classic
// Lamport queue with cached peer indices so the uncontended fast path
// touches only the owner's cache line:
//
//   - `tail_` is written by the producer only, `head_` by the consumer
//     only; each is read by the other side under std::memory_order_
//     acquire after the owner published it with release.
//   - try_push writes the slot *before* the release store to `tail_`,
//     so a consumer that observes the new tail (acquire) also observes
//     the completed slot write (release/acquire pairing on `tail_`).
//   - try_pop moves the slot out and resets it *before* the release
//     store to `head_`, so a producer that observes the new head
//     (acquire) may safely overwrite the slot (pairing on `head_`).
//
// The full memory-ordering argument is written out in DESIGN.md §16.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "repro/common/assert.hpp"

namespace repro {

template <typename T>
class RingBuffer {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (index
  /// arithmetic is a mask, not a modulo).
  explicit RingBuffer(std::size_t min_capacity) {
    REPRO_REQUIRE(min_capacity >= 1);
    std::size_t cap = 1;
    while (cap < min_capacity) {
      cap *= 2;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side: moves `item` into the queue. Returns false (item
  /// untouched) when the buffer is full.
  bool try_push(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) {
        return false;
      }
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves the oldest item into `out`. Returns false
  /// when the buffer is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        return false;
      }
    }
    T& slot = slots_[head & mask_];
    out = std::move(slot);
    // Reset the slot now so resources (heap-owning T) are released at
    // pop time, not when the producer laps the ring.
    slot = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Owner-separated cache lines: producer writes tail_ and reads its
  // cached view of head_; consumer mirrors that. 64 is the line size
  // of every machine this targets; over-aligning is harmless.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t cached_head_ = 0;  // producer-private
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::size_t cached_tail_ = 0;  // consumer-private
};

}  // namespace repro
