// Runtime tunables in the style of the IRIX environment variables the
// paper uses (DSM_PLACEMENT, DSM_MIGRATION, and UPMlib's critical-page
// knob). Values come from real process environment variables but can be
// overridden programmatically, which is what the tests and the
// experiment harness do.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace repro {

/// Key/value tunable store with environment-variable fallback.
/// Reads and writes of the override map are mutex-guarded so the
/// parallel experiment scheduler's workers can consult tunables
/// concurrently (overrides should still be set before runs start:
/// a mid-run set() is applied, not synchronized with, in-flight cells).
class Env {
 public:
  /// Process-wide instance (reads the real environment on lookup miss).
  static Env& global();

  /// Programmatic override; takes precedence over the process env.
  void set(const std::string& key, std::string value);

  /// Removes a programmatic override (the process env becomes visible
  /// again).
  void unset(const std::string& key);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed accessors with defaults. Malformed values throw
  /// ContractViolation (a silently ignored tunable is worse than a
  /// crash).
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string def) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> overrides_;
};

/// RAII guard that sets an override for the duration of a scope.
class ScopedEnv {
 public:
  ScopedEnv(std::string key, std::string value);
  ~ScopedEnv();

  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string key_;
  std::optional<std::string> previous_;
};

}  // namespace repro
