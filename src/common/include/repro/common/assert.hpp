// Contract-checking macros used throughout the library.
//
// REPRO_REQUIRE  -- precondition on a public API (always checked).
// REPRO_ASSERT   -- internal invariant (checked unless NDEBUG).
// REPRO_UNREACHABLE -- marks a control-flow path that must never execute.
//
// Violations throw repro::ContractViolation so tests can assert on them;
// aborting would make property tests on failure paths impossible.
#pragma once

#include <stdexcept>
#include <string>

namespace repro {

/// Thrown when a REPRO_REQUIRE / REPRO_ASSERT contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace repro

#define REPRO_REQUIRE(expr)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::repro::detail::contract_fail("precondition", #expr, __FILE__,     \
                                     __LINE__);                           \
    }                                                                     \
  } while (false)

#define REPRO_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::repro::detail::contract_fail("precondition", msg, __FILE__,       \
                                     __LINE__);                           \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define REPRO_ASSERT(expr) \
  do {                     \
  } while (false)
#else
#define REPRO_ASSERT(expr)                                                \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::repro::detail::contract_fail("invariant", #expr, __FILE__,        \
                                     __LINE__);                           \
    }                                                                     \
  } while (false)
#endif

#define REPRO_UNREACHABLE(msg) \
  ::repro::detail::contract_fail("unreachable", msg, __FILE__, __LINE__)
