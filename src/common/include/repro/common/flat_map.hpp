// Open-addressed hash map for the sparse page-structure backends.
//
// The dense PageTable / Directory / PageCache indices are O(pages) (and
// O(pages x nodes) for the directory's sharer words) regardless of how
// many pages are live -- fine at the paper's 16 nodes, ruinous at 512.
// The sparse backends keep only live keys, at the cost of one hash
// probe per lookup. Requirements that shaped this map:
//
//  * determinism: iteration order is never exposed (callers that digest
//    must collect keys and sort), and the map itself allocates nothing
//    until first insert;
//  * erase-heavy workloads (directory entries die when their sharer set
//    empties), so deletion uses backward-shift instead of tombstones --
//    probe chains never grow stale;
//  * u64 keys (virtual pages / frames), small trivially-copyable values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "repro/common/assert.hpp"
#include "repro/common/hash.hpp"

namespace repro {

template <typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const Value* find(std::uint64_t key) const {
    if (size_ == 0) {
      return nullptr;
    }
    for (std::size_t i = bucket_of(key);; i = next(i)) {
      if (!used_[i]) {
        return nullptr;
      }
      if (slots_[i].key == key) {
        return &slots_[i].value;
      }
    }
  }

  [[nodiscard]] Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Inserts `key` with a default value when absent; returns the value.
  Value& operator[](std::uint64_t key) {
    reserve_one();
    for (std::size_t i = bucket_of(key);; i = next(i)) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = Value{};
        ++size_;
        return slots_[i].value;
      }
      if (slots_[i].key == key) {
        return slots_[i].value;
      }
    }
  }

  /// Removes `key`; returns true when it was present. Backward-shift
  /// deletion keeps every surviving key reachable without tombstones.
  bool erase(std::uint64_t key) {
    if (size_ == 0) {
      return false;
    }
    std::size_t i = bucket_of(key);
    while (true) {
      if (!used_[i]) {
        return false;
      }
      if (slots_[i].key == key) {
        break;
      }
      i = next(i);
    }
    std::size_t hole = i;
    for (std::size_t j = next(hole);; j = next(j)) {
      if (!used_[j]) {
        break;
      }
      // Move j into the hole iff the hole lies on j's probe path
      // (cyclic distance test).
      const std::size_t home = bucket_of(slots_[j].key);
      const std::size_t mask = slots_.size() - 1;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    used_[hole] = 0;
    --size_;
    return true;
  }

  void clear() {
    used_.assign(used_.size(), 0);
    size_ = 0;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
  };

  [[nodiscard]] std::size_t bucket_of(std::uint64_t key) const {
    return static_cast<std::size_t>(avalanche64(key)) & (slots_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  void reserve_one() {
    // Max load factor 0.7; power-of-two capacity keeps the probe and
    // distance arithmetic mask-based.
    if (slots_.empty()) {
      rehash(16);
    } else if ((size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(capacity, Slot{});
    used_.assign(capacity, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) {
        continue;
      }
      for (std::size_t j = bucket_of(old_slots[i].key);; j = next(j)) {
        if (!used_[j]) {
          used_[j] = 1;
          slots_[j] = old_slots[i];
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace repro
