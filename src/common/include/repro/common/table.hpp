// ASCII table and horizontal bar-chart rendering for the experiment
// harness. The bench binaries print the paper's tables and figures in a
// terminal-friendly form; CSV output feeds external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace repro {

/// A simple left/right-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator and column padding.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  /// Renders the table as CSV (no quoting of separators; cells must not
  /// contain commas or newlines).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A labelled horizontal bar chart, mirroring the paper's per-benchmark
/// execution-time figures. An optional "overhead" segment is rendered as
/// a striped suffix (the paper's Fig. 5 striped bars).
class BarChart {
 public:
  struct Bar {
    std::string label;
    double value = 0.0;
    double overhead = 0.0;  ///< extra striped segment appended to the bar
  };

  explicit BarChart(std::string title, std::string unit = "s");

  void add(std::string label, double value, double overhead = 0.0);

  /// Draws a horizontal reference line value (the paper's first-touch
  /// baseline line) as a marker column in every bar.
  void set_baseline(double value);

  void print(std::ostream& os, std::size_t width = 60) const;

  [[nodiscard]] std::string to_string(std::size_t width = 60) const;

 private:
  std::string title_;
  std::string unit_;
  std::vector<Bar> bars_;
  double baseline_ = -1.0;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

/// Formats a fraction as a signed percentage, e.g. 0.248 -> "+24.8%".
[[nodiscard]] std::string fmt_percent(double frac, int digits = 1);

}  // namespace repro
