// Strongly-typed integer identifiers.
//
// The simulator juggles several integer id spaces (nodes, processors,
// virtual pages, physical frames, threads). Mixing them up is the classic
// silent bug in machine simulators, so each id space gets its own type.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace repro {

/// A transparent wrapper around an integer that participates only in its
/// own id space. Distinct `Tag` types produce incompatible ids.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const StrongId&) const = default;

  /// Pre-increment, for iterating over dense id ranges.
  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value();
  }

 private:
  Rep value_ = 0;
};

struct NodeTag {};
struct ProcTag {};
struct VPageTag {};
struct FrameTag {};
struct ThreadTag {};

/// A NUMA node (memory + directory + router port).
using NodeId = StrongId<NodeTag>;
/// A processor (each node hosts `procs_per_node` of them).
using ProcId = StrongId<ProcTag>;
/// A virtual page number within the simulated address space.
using VPage = StrongId<VPageTag, std::uint64_t>;
/// A physical frame number (dense across all nodes).
using FrameId = StrongId<FrameTag, std::uint64_t>;
/// A simulated OpenMP thread.
using ThreadId = StrongId<ThreadTag>;

/// Iterate a dense id range: `for (auto n : id_range<NodeId>(count))`.
template <typename Id>
class IdRange {
 public:
  class iterator {
   public:
    constexpr explicit iterator(typename Id::rep_type v) : v_(v) {}
    constexpr Id operator*() const { return Id(v_); }
    constexpr iterator& operator++() {
      ++v_;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const { return v_ != o.v_; }

   private:
    typename Id::rep_type v_;
  };

  constexpr explicit IdRange(std::size_t count)
      : count_(static_cast<typename Id::rep_type>(count)) {}
  [[nodiscard]] constexpr iterator begin() const { return iterator(0); }
  [[nodiscard]] constexpr iterator end() const { return iterator(count_); }

 private:
  typename Id::rep_type count_;
};

template <typename Id>
[[nodiscard]] constexpr IdRange<Id> id_range(std::size_t count) {
  return IdRange<Id>(count);
}

}  // namespace repro

namespace std {
template <typename Tag, typename Rep>
struct hash<repro::StrongId<Tag, Rep>> {
  size_t operator()(repro::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
