// Incremental 64-bit state hashing for simulation-state digests.
//
// Two combiners with different algebra:
//  * StateHash -- order-DEPENDENT FNV-1a style mixing, for state whose
//    sequence matters (LRU stacks, replica lists, op streams);
//  * mix independent contributions with operator^= / += on the caller
//    side for state stored in unordered containers, where the digest
//    must not depend on hash-table iteration order.
//
// These digests gate the harness's steady-state fast-forward: equality
// must imply "behaviourally identical state" up to hash collision, so
// every contributor hashes *values*, never addresses or iterator
// positions.
#pragma once

#include <cstdint>

namespace repro {

class StateHash {
 public:
  /// FNV-1a offset basis; `seed` lets callers chain digests.
  explicit StateHash(std::uint64_t seed = 0xcbf29ce484222325ull)
      : hash_(seed) {}

  /// Mixes one 64-bit value, byte by byte (FNV-1a), order-dependent.
  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffu;
      hash_ *= 0x00000100000001b3ull;
    }
  }

  /// Mixes a double through its bit pattern (digests must be exact, so
  /// fractional-ns carries hash their representation, not a rounding).
  void mix_double(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_;
};

/// One-shot avalanche of a 64-bit key (splitmix64 finalizer): used to
/// hash the *elements* of unordered containers before combining them
/// with a commutative operation, so that different (key, value) sets
/// do not cancel out under XOR/addition.
[[nodiscard]] inline std::uint64_t avalanche64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace repro
