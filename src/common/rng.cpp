#include "repro/common/rng.hpp"

#include "repro/common/assert.hpp"

namespace repro {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  REPRO_REQUIRE(bound > 0);
  // Lemire's method: multiply into a 128-bit product and reject the small
  // biased band at the bottom of each residue class.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 top bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace repro
