#include "repro/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "repro/common/assert.hpp"

namespace repro {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  REPRO_REQUIRE(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  REPRO_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

BarChart::BarChart(std::string title, std::string unit)
    : title_(std::move(title)), unit_(std::move(unit)) {}

void BarChart::add(std::string label, double value, double overhead) {
  REPRO_REQUIRE(value >= 0.0 && overhead >= 0.0);
  bars_.push_back(Bar{std::move(label), value, overhead});
}

void BarChart::set_baseline(double value) {
  REPRO_REQUIRE(value >= 0.0);
  baseline_ = value;
}

void BarChart::print(std::ostream& os, std::size_t width) const {
  os << to_string(width);
}

std::string BarChart::to_string(std::size_t width) const {
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (bars_.empty()) {
    return out.str();
  }
  double max_total = 0.0;
  std::size_t label_w = 0;
  for (const auto& bar : bars_) {
    max_total = std::max(max_total, bar.value + bar.overhead);
    label_w = std::max(label_w, bar.label.size());
  }
  max_total = std::max(max_total, baseline_);
  if (max_total <= 0.0) {
    max_total = 1.0;
  }
  const auto scale = [&](double v) {
    return static_cast<std::size_t>(v / max_total *
                                    static_cast<double>(width));
  };
  const std::size_t baseline_col =
      baseline_ >= 0.0 ? scale(baseline_) : width + 2;
  for (const auto& bar : bars_) {
    out << "  " << bar.label
        << std::string(label_w - bar.label.size(), ' ') << " |";
    const std::size_t solid = scale(bar.value);
    const std::size_t striped = scale(bar.value + bar.overhead) - solid;
    std::string line(width + 1, ' ');
    for (std::size_t i = 0; i < solid; ++i) {
      line[i] = '#';
    }
    for (std::size_t i = solid; i < solid + striped; ++i) {
      line[i] = '/';
    }
    if (baseline_col <= width) {
      line[baseline_col] = line[baseline_col] == ' ' ? '!' : '+';
    }
    out << line << ' ' << fmt_double(bar.value, 3);
    if (bar.overhead > 0.0) {
      out << " (+" << fmt_double(bar.overhead, 3) << " ovh)";
    }
    out << ' ' << unit_ << '\n';
  }
  if (baseline_ >= 0.0) {
    out << "  ('!' marks baseline " << fmt_double(baseline_, 3) << ' '
        << unit_ << ")\n";
  }
  return out.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double frac, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", digits, frac * 100.0);
  return buf;
}

}  // namespace repro
