#include "repro/common/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "repro/common/assert.hpp"

namespace repro {

Env& Env::global() {
  static Env instance;
  return instance;
}

void Env::set(const std::string& key, std::string value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  overrides_[key] = std::move(value);
}

void Env::unset(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  overrides_.erase(key);
}

std::optional<std::string> Env::get(const std::string& key) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = overrides_.find(key); it != overrides_.end()) {
      return it->second;
    }
  }
  if (const char* v = std::getenv(key.c_str())) {
    return std::string(v);
  }
  return std::nullopt;
}

std::int64_t Env::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  REPRO_REQUIRE_MSG(errno == 0 && end != v->c_str() && *end == '\0',
                    "malformed integer tunable");
  return parsed;
}

double Env::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  REPRO_REQUIRE_MSG(errno == 0 && end != v->c_str() && *end == '\0',
                    "malformed double tunable");
  return parsed;
}

bool Env::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) {
    return def;
  }
  if (*v == "1" || *v == "true" || *v == "on" || *v == "yes") {
    return true;
  }
  if (*v == "0" || *v == "false" || *v == "off" || *v == "no") {
    return false;
  }
  REPRO_UNREACHABLE("malformed boolean tunable");
}

std::string Env::get_string(const std::string& key, std::string def) const {
  return get(key).value_or(std::move(def));
}

ScopedEnv::ScopedEnv(std::string key, std::string value)
    : key_(std::move(key)) {
  previous_ = Env::global().get(key_);
  Env::global().set(key_, std::move(value));
}

ScopedEnv::~ScopedEnv() {
  if (previous_) {
    Env::global().set(key_, *previous_);
  } else {
    Env::global().unset(key_);
  }
}

}  // namespace repro
