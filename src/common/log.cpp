#include "repro/common/log.hpp"

#include <iostream>
#include <mutex>

#include "repro/common/env.hpp"

namespace repro {

namespace {

LogLevel parse_level(const std::string& s) {
  if (s == "debug") {
    return LogLevel::kDebug;
  }
  if (s == "info") {
    return LogLevel::kInfo;
  }
  if (s == "warn") {
    return LogLevel::kWarn;
  }
  return LogLevel::kError;
}

LogLevel& cached_level() {
  static LogLevel level =
      parse_level(Env::global().get_string("REPRO_LOG", "error"));
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return cached_level(); }

void refresh_log_level() {
  cached_level() = parse_level(Env::global().get_string("REPRO_LOG", "error"));
}

void log_line(LogLevel level, const std::string& msg) {
  // One preformatted write under a lock: lines from concurrent
  // scheduler workers never interleave mid-line.
  static std::mutex mutex;
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr << line << std::flush;
}

}  // namespace repro
