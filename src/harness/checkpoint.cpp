#include "repro/harness/checkpoint.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "repro/common/hash.hpp"
#include "repro/harness/atomic_file.hpp"

namespace repro::harness {

namespace {

void mix_string(StateHash& h, const std::string& s) {
  h.mix(s.size());
  for (const char c : s) {
    h.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
}

constexpr std::uint64_t kFormatVersion = 4;

std::string join(const std::vector<Ns>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i == 0 ? "" : " ") << values[i];
  }
  return os.str();
}

/// "fence=<16-hex FNV-1a of body>\n" -- fixed width, so the reader can
/// split it off the end of the file without scanning.
std::string fence_line(std::string_view body) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : body) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001b3ull;
  }
  std::ostringstream os;
  os << "fence=" << std::hex << std::setw(16) << std::setfill('0') << h
     << "\n";
  return os.str();
}

bool split_u64(const std::string& s, std::vector<std::uint64_t>* out) {
  out->clear();
  std::istringstream is(s);
  std::uint64_t v = 0;
  while (is >> v) {
    out->push_back(v);
  }
  return is.eof();
}

}  // namespace

std::uint64_t config_identity(const RunConfig& config) {
  StateHash h(0x9e3779b97f4a7c15ull + kFormatVersion);
  mix_string(h, config.benchmark);
  mix_string(h, config.placement);
  h.mix(config.kernel_migration ? 1 : 0);
  h.mix(static_cast<std::uint64_t>(config.upm_mode));
  h.mix(config.iterations);
  h.mix(config.compute_scale);
  h.mix(config.seed);
  h.mix(config.analyze ? 1 : 0);
  h.mix(config.trace ? 1 : 0);
  // The trace frontend changes what a cell computes (a dump writes a
  // file; a replay substitutes the workload), so replayed cells must
  // never alias their direct twins in the checkpoint store.
  mix_string(h, config.trace_out);
  mix_string(h, config.replay);
  h.mix(config.pipeline ? 1 : 0);

  const memsys::MachineConfig& m = config.machine;
  h.mix(m.num_nodes);
  h.mix(m.procs_per_node);
  mix_string(h, m.topology);
  h.mix(m.page_size);
  h.mix(m.cache_line);
  h.mix(m.l2_size);
  h.mix(m.frames_per_node);
  h.mix_double(m.l1_latency_ns);
  h.mix_double(m.l2_latency_ns);
  h.mix(m.mem_latency_ns.size());
  for (const double lat : m.mem_latency_ns) {
    h.mix_double(lat);
  }
  h.mix_double(m.extra_hop_latency_ns);
  h.mix_double(m.cache_hit_ns);
  h.mix_double(m.mem_occupancy_ns);
  h.mix_double(m.stream_hide_factor);
  h.mix_double(m.invalidation_ns);
  h.mix_double(m.page_copy_ns);
  h.mix_double(m.tlb_local_flush_ns);
  h.mix_double(m.tlb_shootdown_ns);
  h.mix(m.tlb_entries);
  h.mix_double(m.tlb_refill_ns);
  h.mix(m.counter_bits);

  const os::DaemonConfig& d = config.daemon;
  h.mix(d.threshold);
  h.mix(d.window_ns);
  h.mix(d.page_cooloff_ns);
  h.mix(d.max_migrations_per_page);
  h.mix(d.global_min_interval_ns);

  const upm::UpmConfig& u = config.upm;
  h.mix_double(u.threshold);
  h.mix(u.max_critical_pages);
  h.mix(u.freeze_bouncing_pages ? 1 : 0);
  h.mix(u.enable_replication ? 1 : 0);
  h.mix(u.replication_min_nodes);
  h.mix(u.replication_min_count);
  h.mix(u.max_replicas);
  h.mix(u.busy_retry_limit);
  h.mix(u.busy_backoff_ns);
  h.mix(u.give_up_freeze_limit);
  h.mix(u.hysteresis_passes);

  const nas::WorkloadParams& w = config.workload;
  h.mix(w.iterations);
  h.mix(w.compute_scale);
  h.mix_double(w.serial_init_fraction);
  h.mix_double(w.size_scale);

  // Hash the plan run_benchmark will actually use: REPRO_FAULT_*
  // overrides must invalidate checkpoints written without them.
  const fault::FaultPlan f = fault::FaultPlan::from_env(config.fault);
  h.mix(f.seed);
  h.mix_double(f.counter_rate);
  h.mix_double(f.migration_busy_rate);
  h.mix_double(f.slowdown_rate);
  h.mix_double(f.preemption_rate);
  h.mix(f.counter_scale_percent);
  h.mix(f.busy_pin_attempts);
  h.mix(f.slowdown_ns);
  h.mix(f.spike_lines);
  h.mix(f.preemption_ns);
  h.mix(f.active_from_iteration);
  h.mix(f.active_until_iteration);
  return h.value();
}

std::uint64_t sweep_identity(const std::vector<RunConfig>& configs) {
  StateHash h(0x5feeb1de + kFormatVersion);
  h.mix(configs.size());
  for (const RunConfig& config : configs) {
    h.mix(config_identity(config));
  }
  // 0 is the "no sweep identity" sentinel of load_checkpoint.
  return h.value() == 0 ? 1 : h.value();
}

std::string checkpoint_path(const std::string& dir, const RunConfig& config) {
  std::ostringstream os;
  os << dir << "/CELL_" << config.benchmark << "_" << config.label() << "_"
     << std::hex << config_identity(config) << ".ckpt";
  return os.str();
}

std::string encode_result(std::uint64_t identity, const RunResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "version=" << kFormatVersion << "\n";
  os << "identity=" << identity << "\n";
  os << "label=" << result.label << "\n";
  os << "benchmark=" << result.benchmark << "\n";
  os << "total=" << result.total << "\n";
  os << "iteration_times=" << join(result.iteration_times) << "\n";
  os << "iterations_simulated=" << result.iterations_simulated << "\n";
  os << "iterations_replayed=" << result.iterations_replayed << "\n";
  os << "fault_rate=" << result.fault_rate << "\n";
  os << "trace_digest=" << result.trace_digest << "\n";

  const memsys::ProcStats& mem = result.memory_totals;
  os << "mem=" << mem.hit_lines << ' ' << mem.local_miss_lines << ' '
     << mem.remote_miss_lines << ' ' << mem.queue_wait << ' '
     << mem.invalidations_sent << ' ' << mem.tlb_misses << "\n";
  const os::KernelStats& k = result.kernel_stats;
  os << "kernel=" << k.page_faults << ' ' << k.migrations << ' '
     << k.rejected_migrations << ' ' << k.busy_migrations << ' '
     << k.redirected_migrations << ' ' << k.migration_cost << ' '
     << k.replications << ' ' << k.replica_collapses << "\n";
  const os::DaemonStats& d = result.daemon_stats;
  os << "daemon=" << d.interrupts << ' ' << d.migrations << ' '
     << d.window_resets << ' ' << d.suppressed_cooloff << ' '
     << d.suppressed_frozen << ' ' << d.suppressed_global << ' '
     << d.deferred_busy << ' ' << d.cost << "\n";
  const upm::UpmStats& u = result.upm_stats;
  os << "upm=" << u.distribution_migrations << ' ' << u.replications << ' '
     << u.replication_cost << ' ' << u.replay_migrations << ' '
     << u.undo_migrations << ' ' << u.frozen_pages << ' ' << u.busy_retries
     << ' ' << u.give_ups << ' ' << u.hysteresis_deferrals << ' '
     << u.distribution_cost << ' ' << u.recrep_cost << "\n";
  os << "upm_migrations_per_invocation=" << join(u.migrations_per_invocation)
     << "\n";
  const fault::FaultStats& f = result.fault_stats;
  os << "fault=" << f.counter_corruptions << ' ' << f.busy_rejections << ' '
     << f.slowdowns << ' ' << f.preemptions << ' ' << f.spike_lines << ' '
     << f.slowdown_ns_total << ' ' << f.preemption_ns_total << "\n";

  // Per-iteration trace metrics: one line of columns per metric the
  // JSON writer serializes (iteration index, migrations, queue p95,
  // injected faults).
  os << "metric_iteration=";
  for (std::size_t i = 0; i < result.iteration_metrics.size(); ++i) {
    os << (i == 0 ? "" : " ") << result.iteration_metrics[i].iteration;
  }
  os << "\nmetric_migrations=";
  for (std::size_t i = 0; i < result.iteration_metrics.size(); ++i) {
    os << (i == 0 ? "" : " ") << result.iteration_metrics[i].migrations;
  }
  os << "\nmetric_queue_p95=";
  for (std::size_t i = 0; i < result.iteration_metrics.size(); ++i) {
    os << (i == 0 ? "" : " ") << result.iteration_metrics[i].queue_backlog_p95;
  }
  os << "\nmetric_faults=";
  for (std::size_t i = 0; i < result.iteration_metrics.size(); ++i) {
    os << (i == 0 ? "" : " ") << result.iteration_metrics[i].faults_injected;
  }
  os << "\n";
  return os.str();
}

bool decode_result(const std::string& text, std::uint64_t expected_identity,
                   RunResult* out, std::uint64_t* sweep_out) {
  std::istringstream in(text);
  std::unordered_map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  const auto get = [&](const char* key) -> const std::string* {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  };
  const std::string* version = get("version");
  const std::string* identity = get("identity");
  if (version == nullptr || identity == nullptr ||
      *version != std::to_string(kFormatVersion) ||
      *identity != std::to_string(expected_identity)) {
    return false;
  }
  if (sweep_out != nullptr) {
    *sweep_out = 0;
    std::vector<std::uint64_t> sv;
    const std::string* sweep = get("sweep");
    if (sweep != nullptr) {
      if (!split_u64(*sweep, &sv) || sv.size() != 1) {
        return false;
      }
      *sweep_out = sv[0];
    }
  }

  RunResult r;
  std::vector<std::uint64_t> v;
  const auto want = [&](const char* key, std::size_t n) {
    const std::string* s = get(key);
    return s != nullptr && split_u64(*s, &v) && v.size() == n;
  };
  const std::string* s = nullptr;
  if ((s = get("label")) == nullptr) {
    return false;
  }
  r.label = *s;
  if ((s = get("benchmark")) == nullptr) {
    return false;
  }
  r.benchmark = *s;
  if (!want("total", 1)) {
    return false;
  }
  r.total = v[0];
  if ((s = get("iteration_times")) == nullptr || !split_u64(*s, &v)) {
    return false;
  }
  r.iteration_times = v;
  if (!want("iterations_simulated", 1)) {
    return false;
  }
  r.iterations_simulated = static_cast<std::uint32_t>(v[0]);
  if (!want("iterations_replayed", 1)) {
    return false;
  }
  r.iterations_replayed = static_cast<std::uint32_t>(v[0]);
  if ((s = get("fault_rate")) == nullptr) {
    return false;
  }
  try {
    r.fault_rate = std::stod(*s);
  } catch (const std::exception&) {
    return false;
  }
  if ((s = get("trace_digest")) == nullptr) {
    return false;
  }
  r.trace_digest = *s;

  if (!want("mem", 6)) {
    return false;
  }
  r.memory_totals = {v[0], v[1], v[2], v[3], v[4], v[5]};
  if (!want("kernel", 8)) {
    return false;
  }
  r.kernel_stats = {v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]};
  if (!want("daemon", 8)) {
    return false;
  }
  r.daemon_stats = {v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]};
  if (!want("upm", 11)) {
    return false;
  }
  r.upm_stats.distribution_migrations = v[0];
  r.upm_stats.replications = v[1];
  r.upm_stats.replication_cost = v[2];
  r.upm_stats.replay_migrations = v[3];
  r.upm_stats.undo_migrations = v[4];
  r.upm_stats.frozen_pages = v[5];
  r.upm_stats.busy_retries = v[6];
  r.upm_stats.give_ups = v[7];
  r.upm_stats.hysteresis_deferrals = v[8];
  r.upm_stats.distribution_cost = v[9];
  r.upm_stats.recrep_cost = v[10];
  if ((s = get("upm_migrations_per_invocation")) == nullptr ||
      !split_u64(*s, &v)) {
    return false;
  }
  r.upm_stats.migrations_per_invocation = v;
  if (!want("fault", 7)) {
    return false;
  }
  r.fault_stats = {v[0], v[1], v[2], v[3], v[4], v[5], v[6]};

  std::vector<std::uint64_t> iters;
  std::vector<std::uint64_t> migrations;
  std::vector<std::uint64_t> p95;
  std::vector<std::uint64_t> faults;
  if ((s = get("metric_iteration")) == nullptr || !split_u64(*s, &iters) ||
      (s = get("metric_migrations")) == nullptr ||
      !split_u64(*s, &migrations) ||
      (s = get("metric_queue_p95")) == nullptr || !split_u64(*s, &p95) ||
      (s = get("metric_faults")) == nullptr || !split_u64(*s, &faults) ||
      migrations.size() != iters.size() || p95.size() != iters.size() ||
      faults.size() != iters.size()) {
    return false;
  }
  r.iteration_metrics.resize(iters.size());
  for (std::size_t i = 0; i < iters.size(); ++i) {
    r.iteration_metrics[i].iteration =
        static_cast<std::uint32_t>(iters[i]);
    r.iteration_metrics[i].migrations = migrations[i];
    r.iteration_metrics[i].queue_backlog_p95 = p95[i];
    r.iteration_metrics[i].faults_injected = faults[i];
  }

  *out = std::move(r);
  return true;
}

void save_checkpoint(const std::string& dir, const RunConfig& config,
                     const RunResult& result, std::uint64_t sweep) {
  std::string body = encode_result(config_identity(config), result);
  body += "sweep=" + std::to_string(sweep) + "\n";
  // Fence line last: atomic_write_file already prevents torn files on
  // this host, but checkpoints also travel (scp, shared filesystems,
  // object stores) where truncation is possible again. The key=value
  // body alone cannot detect every tear -- dropping just the final
  // newline, or a digit of the sweep id, still parses -- so the digest
  // fence makes "truncated anywhere" equal "rejected".
  body += fence_line(body);
  atomic_write_file(checkpoint_path(dir, config), body);
}

bool load_checkpoint(const std::string& dir, const RunConfig& config,
                     RunResult* out, std::uint64_t expected_sweep) {
  const std::string path = checkpoint_path(dir, config);
  std::ifstream in(path);
  if (!in.good()) {
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  std::string body = content.str();
  // Split off and verify the trailing fence line; a file without an
  // intact fence over everything before it is torn, not a checkpoint.
  const std::string fence = fence_line("");
  const std::size_t fence_bytes = fence.size();  // fixed-width digest
  if (body.size() < fence_bytes) {
    return false;
  }
  const std::string tail = body.substr(body.size() - fence_bytes);
  body.resize(body.size() - fence_bytes);
  if (tail != fence_line(body)) {
    return false;
  }
  RunResult r;
  std::uint64_t file_sweep = 0;
  if (!decode_result(body, config_identity(config), &r, &file_sweep)) {
    return false;
  }
  if (expected_sweep != 0 && file_sweep != expected_sweep) {
    throw CheckpointMismatchError(
        "checkpoint " + path + " was written by a different sweep (identity " +
        std::to_string(file_sweep) + ", this sweep is " +
        std::to_string(expected_sweep) +
        "): refusing to mix cells across sweeps -- delete the checkpoint "
        "directory or point --checkpoint-dir at a fresh one");
  }
  *out = std::move(r);
  return true;
}

}  // namespace repro::harness
