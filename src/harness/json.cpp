#include "repro/harness/json.hpp"

#include <sstream>

#include "repro/harness/atomic_file.hpp"

namespace repro::harness {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

void append_field(std::ostringstream& os, const char* key, double value,
                  bool last = false) {
  os << '"' << key << "\": " << value << (last ? "" : ", ");
}

void append_field(std::ostringstream& os, const char* key,
                  std::uint64_t value, bool last = false) {
  os << '"' << key << "\": " << value << (last ? "" : ", ");
}

}  // namespace

std::string results_to_json(const std::vector<RunResult>& results) {
  std::ostringstream os;
  os.precision(17);  // round-trip doubles
  os << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << (i == 0 ? "\n" : ",\n") << "  {";
    os << "\"label\": \"" << escape(r.label) << "\", ";
    os << "\"benchmark\": \"" << escape(r.benchmark) << "\", ";
    append_field(os, "seconds", r.seconds());
    append_field(os, "total_ns", r.total);
    append_field(os, "iterations",
                 static_cast<std::uint64_t>(r.iteration_times.size()));
    append_field(os, "iterations_simulated",
                 static_cast<std::uint64_t>(r.iterations_simulated));
    append_field(os, "iterations_replayed",
                 static_cast<std::uint64_t>(r.iterations_replayed));
    append_field(os, "mean_iteration_last75_ns", r.mean_iteration_last(0.75));
    append_field(os, "remote_fraction",
                 r.memory_totals.remote_fraction());
    append_field(os, "queue_wait_ns", r.memory_totals.queue_wait);
    append_field(os, "hit_lines", r.memory_totals.hit_lines);
    append_field(os, "local_miss_lines", r.memory_totals.local_miss_lines);
    append_field(os, "remote_miss_lines", r.memory_totals.remote_miss_lines);
    append_field(os, "daemon_migrations", r.daemon_stats.migrations);
    append_field(os, "upm_distribution_migrations",
                 r.upm_stats.distribution_migrations);
    append_field(os, "upm_replay_migrations", r.upm_stats.replay_migrations);
    append_field(os, "upm_undo_migrations", r.upm_stats.undo_migrations);
    append_field(os, "upm_cost_ns",
                 r.upm_stats.distribution_cost + r.upm_stats.recrep_cost);
    append_field(os, "upm_busy_retries", r.upm_stats.busy_retries);
    append_field(os, "upm_give_ups", r.upm_stats.give_ups);
    append_field(os, "upm_hysteresis_deferrals",
                 r.upm_stats.hysteresis_deferrals);
    append_field(os, "kernel_busy_migrations",
                 r.kernel_stats.busy_migrations);
    append_field(os, "daemon_deferred_busy", r.daemon_stats.deferred_busy);
    append_field(os, "fault_rate", r.fault_rate);
    append_field(os, "fault_counter_corruptions",
                 r.fault_stats.counter_corruptions);
    append_field(os, "fault_busy_rejections", r.fault_stats.busy_rejections);
    append_field(os, "fault_slowdowns", r.fault_stats.slowdowns);
    append_field(os, "fault_preemptions", r.fault_stats.preemptions);
    append_field(os, "fault_injected_total", r.fault_stats.injected_total(),
                 /*last=*/!r.coherence_enabled && r.trace_digest.empty());
    if (r.coherence_enabled) {
      // Emitted only for coherence cells: page-grain rows (and every
      // pre-coherence baseline JSON) stay byte-identical.
      const coherence::CoherenceStats& c = r.coherence_totals;
      append_field(os, "coherence_hit_lines", c.hit_lines);
      append_field(os, "coherence_cold_miss_lines", c.cold_miss_lines);
      append_field(os, "coherence_capacity_miss_lines",
                   c.capacity_miss_lines);
      append_field(os, "coherence_miss_lines", c.coherence_miss_lines);
      append_field(os, "coherence_miss_rate", c.coherence_miss_rate());
      append_field(os, "coherence_upgrades", c.upgrades);
      append_field(os, "coherence_invalidations", c.invalidations_sent);
      append_field(os, "coherence_writebacks", c.writebacks,
                   /*last=*/r.trace_digest.empty());
    }
    if (!r.trace_digest.empty()) {
      os << "\"trace_digest\": \"" << escape(r.trace_digest) << "\", ";
      os << "\"trace_migrations_per_iteration\": [";
      for (std::size_t m = 0; m < r.iteration_metrics.size(); ++m) {
        os << (m == 0 ? "" : ", ") << r.iteration_metrics[m].migrations;
      }
      os << "], \"trace_queue_p95_ns\": [";
      for (std::size_t m = 0; m < r.iteration_metrics.size(); ++m) {
        os << (m == 0 ? "" : ", ")
           << r.iteration_metrics[m].queue_backlog_p95;
      }
      os << "], \"trace_faults_per_iteration\": [";
      for (std::size_t m = 0; m < r.iteration_metrics.size(); ++m) {
        os << (m == 0 ? "" : ", ")
           << r.iteration_metrics[m].faults_injected;
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n]";
  return os.str();
}

void write_results_json(const std::string& path, const std::string& bench,
                        const std::vector<RunResult>& results) {
  // Render in memory and land atomically (tmp + fsync + rename): a
  // killed sweep leaves either no BENCH_*.json or a complete one,
  // never a truncated file. atomic_write_file creates the output
  // directory if missing.
  std::ostringstream os;
  os << "{\"bench\": \"" << escape(bench)
     << "\", \"results\": " << results_to_json(results) << "}\n";
  atomic_write_file(path, os.str());
}

}  // namespace repro::harness
