// Experiment driver: builds a machine, instantiates a workload, runs
// the cold-start plus timed iterations under a given placement scheme
// and migration engine, and collects everything the paper's tables and
// figures need.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "repro/analysis/diagnostic.hpp"
#include "repro/coherence/config.hpp"
#include "repro/coherence/model.hpp"
#include "repro/fault/injector.hpp"
#include "repro/fault/plan.hpp"
#include "repro/memsys/config.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/os/daemon.hpp"
#include "repro/os/kernel.hpp"
#include "repro/trace/metrics.hpp"
#include "repro/trace/sink.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::harness {

struct RunConfig {
  std::string benchmark = "BT";
  /// "ft" | "rr" | "rand" | "wc" (paper Section 2).
  std::string placement = "ft";
  /// DSM_MIGRATION: the IRIX kernel migration daemon.
  bool kernel_migration = false;
  /// UPMlib mode (off / distribution / record-replay).
  nas::UpmMode upm_mode = nas::UpmMode::kOff;
  /// 0 = the benchmark's paper-default iteration count.
  std::uint32_t iterations = 0;
  /// Fig. 6 synthetic phase scaling.
  std::uint32_t compute_scale = 1;
  std::uint64_t seed = 12345;
  /// Run the static analyzer (repro::analysis) over every timed-phase
  /// region and the UPMlib call trace, log the findings through the
  /// leveled logger and return them in RunResult::diagnostics. Also
  /// enabled by REPRO_ANALYZE=1 in the environment.
  bool analyze = false;
  /// Record a structured event trace of the timed iterations (see
  /// repro::trace). The result then carries the sink, its canonical
  /// digest and the per-iteration metrics derived from the stream.
  /// Implied by a non-empty trace_dir or the REPRO_TRACE environment
  /// variable. Off (a null pointer everywhere) by default.
  bool trace = false;
  /// Directory to export TRACE_<benchmark>_<label>.trace (canonical
  /// dump) and .chrome.json (chrome://tracing / Perfetto) into; created
  /// if missing. Empty = keep the trace in memory only.
  std::string trace_dir;
  /// Disables the steady-state fast-forward (see
  /// repro::harness::FastForward): every timed iteration is simulated
  /// in full. Results are byte-identical either way -- this exists for
  /// A/B validation and timing honesty checks. Also forced off by
  /// REPRO_FAST_FORWARD=0 in the environment, and implicitly when
  /// `analyze` is set (the analyzer inspects each executed region).
  bool no_fast_forward = false;
  /// Deterministic fault-injection plan (see repro::fault). The
  /// default (all rates zero) attaches no injector at all, so the run
  /// is byte-identical to a build without the fault subsystem. A
  /// non-empty plan also declines the fast-forward by construction
  /// (the injector's digest is aperiodic while faults can fire).
  fault::FaultPlan fault;
  /// Host-side watchdog: abort this cell with CellTimeoutError when
  /// its wall-clock run time exceeds this many milliseconds (checked
  /// at iteration boundaries, so the simulation state is never torn).
  /// 0 disables the watchdog.
  std::uint32_t cell_timeout_ms = 0;
  /// Dump the workload's frontend stream (regions, bindings, advances)
  /// to this RTRC trace file while running (see src/tracefmt and
  /// DESIGN.md §16). Live dumps record the cold start and every timed
  /// iteration; harness-driven UPMlib activity between phases is not
  /// recorded (replay re-simulates it). Mutually exclusive with
  /// `replay`; rejected for record-replay cells (their UPMlib calls
  /// fire *inside* iterations and are not replayable). Forces the
  /// fast-forward off (a skipped iteration would be missing from the
  /// dump).
  std::string trace_out;
  /// Replay this RTRC trace file instead of instantiating `benchmark`
  /// (which is then ignored -- the workload's name comes from the
  /// trace). Placement, UPMlib distribution, the kernel daemon,
  /// coherence and tracing all compose unchanged; replaying a cell's
  /// dump under the cell's own config is byte-identical to simulating
  /// it directly. Forces the fast-forward off (replay must consume the
  /// trace cursor for every iteration).
  std::string replay;
  /// With `replay`: decode trace chunks on a producer thread and feed
  /// the timing backend over a bounded lock-free SPSC ring buffer
  /// (byte-identical to single-threaded replay; see
  /// sim::TraceReplayer).
  bool pipeline = false;
  /// Line-grain coherence protocol: "" (off, the page-grain default --
  /// byte-identical to builds without repro::coherence), "msi" or
  /// "mesi". When set, the memory system classifies hits and misses
  /// through per-processor private caches and a line-grain sharer
  /// directory (see repro::coherence), the label gains a "-msi"/"-mesi"
  /// suffix, and the steady-state fast-forward is declined (the
  /// cache/directory digest is not periodic in general).
  std::string coherence;
  /// Geometry/cost overrides for the coherence model; ignored unless
  /// `coherence` is non-empty (the policy field is overwritten from the
  /// string above).
  coherence::CoherenceConfig coherence_config;

  memsys::MachineConfig machine;
  os::DaemonConfig daemon;
  upm::UpmConfig upm;
  nas::WorkloadParams workload;

  /// Paper-style label, e.g. "ft-base", "rr-IRIXmig", "wc-upmlib",
  /// "ft-recrep" ("base" = no migration engine at all).
  [[nodiscard]] std::string label() const;
};

/// Thrown by run_benchmark when a cell exceeds its wall-clock
/// watchdog deadline (RunConfig::cell_timeout_ms). The sweep scheduler
/// reports it in the aggregated error without retrying the cell.
class CellTimeoutError : public std::runtime_error {
 public:
  explicit CellTimeoutError(const std::string& what)
      : std::runtime_error(what) {}
};

struct RunResult {
  std::string label;
  std::string benchmark;
  /// Total simulated time of the timed iterations (cold start excluded).
  Ns total = 0;
  std::vector<Ns> iteration_times;
  std::vector<omp::RegionRecord> records;
  upm::UpmStats upm_stats;
  os::KernelStats kernel_stats;
  os::DaemonStats daemon_stats;
  memsys::ProcStats memory_totals;
  /// Static-analysis findings (empty unless RunConfig::analyze or
  /// REPRO_ANALYZE=1).
  std::vector<analysis::Diagnostic> diagnostics;
  /// The event trace of the timed iterations (null unless tracing was
  /// requested); shared so results stay copyable.
  std::shared_ptr<const trace::TraceSink> trace;
  /// FNV-1a digest of the canonical dump (16 hex chars; empty when
  /// tracing was off). Byte-identical across --jobs counts and reruns.
  std::string trace_digest;
  /// Per-iteration counters derived from the trace (same condition).
  std::vector<trace::IterationMetrics> iteration_metrics;
  /// How the timed iterations were produced: simulated in full versus
  /// synthesized by the steady-state fast-forward (they always sum to
  /// the requested iteration count).
  std::uint32_t iterations_simulated = 0;
  std::uint32_t iterations_replayed = 0;
  /// Injected-fault accounting (all zero when the plan was empty).
  fault::FaultStats fault_stats;
  /// Largest class rate of the cell's plan (0 = faults disabled);
  /// carried into BENCH_*.json so sweep rows are self-describing.
  double fault_rate = 0.0;
  /// Aggregate line-grain coherence counters over the timed iterations
  /// (all zero when RunConfig::coherence was empty).
  coherence::CoherenceStats coherence_totals;
  /// Whether the run executed under the line-grain coherence model.
  bool coherence_enabled = false;

  [[nodiscard]] double seconds() const { return ns_to_seconds(total); }

  /// Mean time of the last `fraction` of the iterations (paper Table 2
  /// reports slowdown over the last 75%).
  [[nodiscard]] Ns mean_iteration_last(double fraction) const;

  /// Sum of the durations of all regions whose name ends with `suffix`.
  [[nodiscard]] Ns phase_time(const std::string& suffix) const;
};

/// Runs one experiment configuration end to end.
[[nodiscard]] RunResult run_benchmark(const RunConfig& config);

/// Aggregate counters of a finished trace dump.
struct TraceDumpStats {
  std::uint64_t records = 0;
  std::uint64_t ops = 0;
  std::uint64_t regions = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;
  std::uint32_t iterations = 0;
};

/// Dumps `config`'s workload to an RTRC trace at `path` without
/// simulating: the machine is built, the workload set up, and the cold
/// start plus every timed iteration dispatched in the runtime's
/// dry-run mode. The recorded stream is identical to what a live run
/// under the same config would dump -- the declarative workloads'
/// region streams are pure functions of the workload parameters, never
/// of simulated machine state -- so one dry dump replays under any
/// placement/engine configuration. Record-replay cells are rejected.
TraceDumpStats dump_trace(const RunConfig& config, const std::string& path);

}  // namespace repro::harness
