// Crash-safe file writes for experiment outputs.
//
// Every BENCH_*.json, trace dump and sweep checkpoint is written
// tmp + fsync + rename: a killed or OOM'd sweep leaves either the old
// complete file or the new complete file, never a truncated one for
// tools/perf_compare.py to choke on.
#pragma once

#include <string>

namespace repro::harness {

/// Writes `content` to `path` atomically: the data lands in
/// `path.tmp`, is fsync'd, and is renamed over `path` (POSIX rename is
/// atomic within a filesystem). Parent directories are created as
/// needed. Throws ContractViolation on any I/O failure, leaving
/// `path` untouched.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace repro::harness
