// Declarative command-line parsing for the bench/example binaries.
//
// Every binary used to hand-roll an argv loop around std::stoul, which
// silently accepted "--jobs=0" and parsed "--jobs=-3" into 2^64-3. This
// parser is strict: unknown flags, missing or malformed values, and
// out-of-range numbers all fail fast with a one-line error, and every
// binary gets --help for free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace repro::harness {

/// Parses `--flag` / `--name=VALUE` style argument lists.
///
///   Cli cli("fig1_placement");
///   cli.add_flag("fast", &fast, "trim long benchmarks");
///   cli.add_uint("jobs", &jobs, "worker threads", /*min=*/1);
///   switch (cli.parse(argc, argv)) {
///     case Cli::Status::kHelp: std::cout << cli.usage(); return 0;
///     case Cli::Status::kError:
///       std::cerr << "error: " << cli.error() << "\n\n" << cli.usage();
///       return 2;
///     case Cli::Status::kOk: break;
///   }
///
/// parse() never prints; the caller owns the streams (tests parse
/// argument vectors directly and assert on error()).
class Cli {
 public:
  enum class Status { kOk, kHelp, kError };

  explicit Cli(std::string program);

  /// Boolean `--name` (no value allowed).
  void add_flag(const std::string& name, bool* target, std::string help);

  /// `--name=STRING` (any value, including empty).
  void add_string(const std::string& name, std::string* target,
                  std::string help);

  /// `--name=N`: strictly decimal, no sign, within [min, max] and the
  /// target's range. "--jobs=0" and "--jobs=-3" are errors, not 0 and
  /// 2^64-3.
  template <typename T>
  void add_uint(const std::string& name, T* target, std::string help,
                std::uint64_t min = 0,
                std::uint64_t max = UINT64_MAX) {
    add_uint_impl(
        name, std::move(help), min, max,
        [target](std::uint64_t v) { *target = static_cast<T>(v); },
        static_cast<std::uint64_t>(static_cast<T>(~T{0})));
  }

  /// `--name=X`: decimal floating point, strictly greater than `gt`.
  void add_double(const std::string& name, double* target, std::string help,
                  double gt = 0.0);

  /// Parses argv[1..argc). kHelp when --help/-h was seen (other
  /// arguments are still validated up to that point).
  [[nodiscard]] Status parse(int argc, const char* const* argv);

  /// The failure message of the last kError parse.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Multi-line usage text (program, one line per option).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kUint, kDouble };

  struct Option {
    std::string name;
    std::string help;
    Kind kind = Kind::kFlag;
    bool* flag_target = nullptr;
    std::string* string_target = nullptr;
    double* double_target = nullptr;
    std::function<void(std::uint64_t)> uint_store;
    std::uint64_t min = 0;
    std::uint64_t max = UINT64_MAX;
    double gt = 0.0;
  };

  void add_uint_impl(const std::string& name, std::string help,
                     std::uint64_t min, std::uint64_t max,
                     std::function<void(std::uint64_t)> store,
                     std::uint64_t type_max);
  [[nodiscard]] Option* find(const std::string& name);

  std::string program_;
  std::vector<Option> options_;
  std::string error_;
};

struct RunConfig;

/// The trace-frontend flag cluster shared by the bench/example
/// binaries: --trace-out=FILE, --replay=FILE, --pipeline (see
/// DESIGN.md §16). register_with() adds the flags to a Cli; after a
/// successful parse, validate() returns a one-line error for
/// inconsistent combinations (dump and replay at once, pipeline
/// without replay) or "" when consistent; apply() copies the values
/// into a RunConfig.
struct ReplayCli {
  std::string trace_out;
  std::string replay;
  bool pipeline = false;

  void register_with(Cli& cli);
  [[nodiscard]] std::string validate() const;
  void apply(RunConfig& config) const;
};

}  // namespace repro::harness
