// Parallel experiment scheduler.
//
// Every cell of a run matrix is an independent simulation: it builds
// its own Machine from its RunConfig (own memory system, address space,
// RNG seeded from the config), so cells share no mutable state and can
// run on host threads concurrently. The scheduler hands cells to a
// thread pool and stores each result at its config's index, so the
// returned vector is in input order regardless of which worker finished
// first -- with deterministic per-cell simulations this makes the whole
// sweep's output independent of the job count.
#pragma once

#include <cstddef>
#include <vector>

#include "repro/harness/run.hpp"

namespace repro::harness {

/// Resolves a requested job count: 0 means "pick for me" -- the
/// REPRO_JOBS environment variable if set, else the hardware
/// concurrency. Always at least 1.
[[nodiscard]] std::size_t effective_jobs(std::size_t requested);

/// Runs every config through run_benchmark on `jobs` worker threads
/// (resolved via effective_jobs) and returns the results in input
/// order. jobs=1 runs inline on the calling thread -- the bit-exact
/// serial mode. If any cell throws, the first exception (in input
/// order) is rethrown after all workers have stopped.
[[nodiscard]] std::vector<RunResult> run_experiments(
    const std::vector<RunConfig>& configs, std::size_t jobs = 0);

}  // namespace repro::harness
