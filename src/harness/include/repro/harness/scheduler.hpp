// Parallel experiment scheduler with failure aggregation and resume.
//
// Every cell of a run matrix is an independent simulation: it builds
// its own Machine from its RunConfig (own memory system, address space,
// RNG seeded from the config), so cells share no mutable state and can
// run on host threads concurrently. The scheduler hands cells to a
// thread pool and stores each result at its config's index, so the
// returned vector is in input order regardless of which worker finished
// first -- with deterministic per-cell simulations this makes the whole
// sweep's output independent of the job count.
//
// Resilience (see DESIGN.md "Fault injection & graceful degradation"):
// a failing cell no longer aborts the sweep. Every cell runs to a
// verdict; failures are collected into CellFailure records (input
// order) and either returned alongside the successes (run_sweep) or
// raised as one SweepError that lists *every* failed cell
// (run_experiments). Optional per-cell retries, a wall-clock watchdog
// and checkpoint/resume make long sweeps survivable: a killed sweep
// rerun with the same checkpoint directory skips completed cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "repro/harness/run.hpp"

namespace repro::harness {

/// Resolves a requested job count: 0 means "pick for me" -- the
/// REPRO_JOBS environment variable if set, else the hardware
/// concurrency. Always at least 1.
[[nodiscard]] std::size_t effective_jobs(std::size_t requested);

/// Resolves a cell watchdog budget: a nonzero `requested` wins;
/// otherwise the strictly parsed REPRO_CELL_TIMEOUT_MS environment
/// variable (garbage or out-of-range values throw ContractViolation --
/// a silently ignored watchdog is worse than a crash); 0 = no
/// watchdog. Consulted by run_sweep, so the watchdog is reachable on
/// every sweep-driving binary even without the --cell-timeout-ms flag.
[[nodiscard]] std::uint32_t effective_cell_timeout_ms(
    std::uint32_t requested);

/// Why a cell ultimately failed. The numeric order is the severity
/// order exit_code() reports (higher = reported when classes mix);
/// each class maps to its own process exit code so callers and CI can
/// tell a deterministic simulation fault from a blown deadline from a
/// dead worker without parsing stderr.
enum class FailureClass : std::uint8_t {
  /// The simulation itself threw (contract violation, bad config, ...).
  kFault = 0,
  /// The wall-clock watchdog fired (CellTimeoutError); never retried.
  kTimeout = 1,
  /// A nonzero retry budget was exhausted without a success.
  kRetryExhausted = 2,
  /// The process computing the cell died (service worker pool; an
  /// in-process sweep never produces this class).
  kCrash = 3,
};

/// Stable lowercase identifier ("fault", "timeout", "retry-exhausted",
/// "crash").
[[nodiscard]] const char* failure_class_name(FailureClass cls);

/// Process exit code for a failure class: fault=3, timeout=4,
/// retry-exhausted=5, crash=6 (0 = success, 1 = generic, 2 = usage
/// error by convention).
[[nodiscard]] int failure_exit_code(FailureClass cls);

/// One failed cell of a sweep, after its retry budget was exhausted.
struct CellFailure {
  /// Index into the sweep's config vector.
  std::size_t index = 0;
  std::string benchmark;
  /// RunConfig::label() of the cell ("ft-upmlib", ...).
  std::string label;
  /// what() of the final exception.
  std::string message;
  /// The failure was a CellTimeoutError (watchdog); never retried.
  bool timeout = false;
  /// Failure classification (see FailureClass); `timeout` above is
  /// kept in sync for existing callers.
  FailureClass cls = FailureClass::kFault;

  /// "BT ft-upmlib [timeout]: <message>" -- the line
  /// SweepError::format joins.
  [[nodiscard]] std::string describe() const;
};

/// Host-side sweep supervision knobs (per sweep, not per cell).
struct SweepOptions {
  /// Worker threads; 0 = effective_jobs default.
  std::size_t jobs = 0;
  /// Default wall-clock watchdog applied to every cell whose own
  /// RunConfig::cell_timeout_ms is 0 (a per-cell value wins). 0 = no
  /// default watchdog.
  std::uint32_t cell_timeout_ms = 0;
  /// Extra attempts per failed cell. Timeouts are never retried: a
  /// deterministic simulation that blew its deadline once will blow it
  /// again.
  std::uint32_t cell_retries = 0;
  /// Directory for per-cell checkpoint files (see checkpoint.hpp).
  /// Empty = no checkpointing. Completed cells found here are loaded
  /// instead of re-simulated; successful cells are saved here.
  std::string checkpoint_dir;
};

/// What the sweep did, for reporting and the JSON metadata block.
struct SweepStats {
  std::size_t cells_total = 0;
  std::size_t cells_ok = 0;
  std::size_t cells_failed = 0;
  /// Cells satisfied from a checkpoint instead of simulation.
  std::size_t cells_resumed = 0;
  /// Retry attempts performed (not cells: one cell can retry twice).
  std::size_t cells_retried = 0;
  /// Cells aborted by the wall-clock watchdog.
  std::size_t watchdog_fires = 0;
};

struct SweepOutcome {
  /// One entry per config, in input order. A failed cell's entry is a
  /// default-constructed RunResult; check `failures` for its indices.
  std::vector<RunResult> results;
  /// Every failed cell, in input order (empty on full success).
  std::vector<CellFailure> failures;
  SweepStats stats;

  [[nodiscard]] bool ok() const { return failures.empty(); }

  /// 0 on full success; otherwise failure_exit_code() of the
  /// most-severe failure class present (crash > retry-exhausted >
  /// timeout > fault), so a bench's exit status names what went wrong.
  [[nodiscard]] int exit_code() const;
};

/// Aggregated sweep failure: lists every failed cell, not just the
/// first. Thrown by run_experiments; built from run_sweep's failures.
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(std::vector<CellFailure> failures)
      : std::runtime_error(format(failures)), failures_(std::move(failures)) {}

  [[nodiscard]] const std::vector<CellFailure>& failures() const {
    return failures_;
  }

  /// "3 of 12 cells failed:" + one describe() line per failure.
  [[nodiscard]] static std::string format(
      const std::vector<CellFailure>& failures);

 private:
  std::vector<CellFailure> failures_;
};

/// Runs every config through run_benchmark on options.jobs worker
/// threads and returns all results, all failures and the sweep
/// statistics without throwing on cell failures (option parsing /
/// contract violations in the scheduler itself still throw). A cell
/// that fails is retried up to options.cell_retries times (except
/// watchdog timeouts) and the remaining cells always run.
[[nodiscard]] SweepOutcome run_sweep(const std::vector<RunConfig>& configs,
                                     const SweepOptions& options);

/// Throwing wrappers: return the results in input order on full
/// success, raise one SweepError describing *every* failed cell
/// otherwise. jobs=1 runs inline on the calling thread -- the
/// bit-exact serial mode.
[[nodiscard]] std::vector<RunResult> run_experiments(
    const std::vector<RunConfig>& configs, std::size_t jobs = 0);
[[nodiscard]] std::vector<RunResult> run_experiments(
    const std::vector<RunConfig>& configs, const SweepOptions& options);

}  // namespace repro::harness
