// Harness entry point of the static placement advisor: capture a
// benchmark's phase sequence in dry-run mode (no simulation) and run
// the cross-phase locality dataflow over it, producing the per-
// benchmark placement verdict plus JSON/SARIF artifacts for CI.
#pragma once

#include <string>

#include "repro/analysis/advisor.hpp"
#include "repro/analysis/capture.hpp"
#include "repro/harness/run.hpp"

namespace repro::harness {

/// Captures `config.benchmark`'s cold start plus one timed iteration
/// without simulating (dry-run regions fire the recorder only), then
/// predicts all six standard (placement x engine) cells. Honors the
/// config's machine geometry, workload params, UPM threshold and
/// iteration count; config.placement is irrelevant (every scheme is
/// predicted) and nothing about the config's machine state changes.
[[nodiscard]] analysis::AdvisorReport advise_benchmark(
    const RunConfig& config);

/// Captures the workload exactly as advise_benchmark does and returns
/// the capture (tests and tools that want the raw phases).
[[nodiscard]] analysis::CapturedProgram capture_benchmark(
    const RunConfig& config);

/// The verdict as JSON: per-cell predictions, migrated page counts,
/// remote fractions, predicted ranking and diagnostics.
[[nodiscard]] std::string advisor_report_to_json(
    const analysis::AdvisorReport& report);

/// Writes `{"advisor": ..., "reports": [...]}` atomically.
void write_advisor_json(const std::string& path,
                        const std::vector<analysis::AdvisorReport>& reports);

/// Human-readable verdict table (one row per cell).
void print_advisor_report(std::ostream& os,
                          const analysis::AdvisorReport& report);

}  // namespace repro::harness
