// Structured JSON emission of experiment results, so bench runs leave
// a machine-readable trajectory (BENCH_<name>.json) next to the human
// tables. Hand-rolled serialization: the schema is small and the
// container has no JSON library.
#pragma once

#include <string>
#include <vector>

#include "repro/harness/run.hpp"

namespace repro::harness {

/// Renders results as a JSON array of per-run objects (label,
/// benchmark, seconds, iteration statistics, memory totals, migration
/// counts). Deterministic: depends only on the results' values.
[[nodiscard]] std::string results_to_json(
    const std::vector<RunResult>& results);

/// Writes `{"bench": <name>, "results": [...]}` to `path`.
void write_results_json(const std::string& path, const std::string& bench,
                        const std::vector<RunResult>& results);

}  // namespace repro::harness
