// Steady-state fast-forward for the experiment harness.
//
// Iterative NAS workloads reach a fixed point after their warm-up
// transient: placement stops changing, caches and TLBs cycle through
// the same content, the migration engines are quiescent, and every
// further timed iteration repeats the previous one exactly (shifted in
// absolute time). Simulating those iterations one by one is pure
// overhead -- the paper-default iteration counts (BT 200, SP 400, ...)
// exist to amortize real-machine noise, not to exercise new simulator
// state.
//
// The FastForward watcher snapshots a cheap digest of all
// behaviour-relevant mutable state at the top of every timed iteration
// (see DESIGN.md "Steady-state fast-forward" for the exact coverage).
// The fixed point need not be a single state: cache/TLB eviction phase
// can settle into a short cycle instead (SP under random placement
// alternates between two states forever), so the watcher looks for the
// smallest period p <= kMaxPeriod such that the last 2p+1 snapshots
// are (a) digest-periodic with period p and (b) produced identical
// per-sub-iteration deltas across the two p-iteration blocks --
// iteration times, per-processor memory statistics, zero
// kernel/daemon/UPMlib migration activity, matching region records and
// trace-event streams shifted by one block period. Determinism then
// guarantees every remaining iteration repeats the cached block, so
// the harness replays whole blocks instead of simulating: the cached
// block's trace events are re-stamped (time += c * period, iteration
// += c * p, cumulative payloads extrapolated by their per-block
// deltas), region records are shifted, statistics advance by delta *
// blocks and the memory queues' horizons move with the clock. The
// fewer-than-p leftover iterations are then simulated for real from
// the time-shifted steady state. Results are byte-identical to the
// full simulation, including the canonical trace dump and its digest.
//
// Cells that never reach a fixed point never fast-forward, by
// construction rather than by special-casing: the kernel daemon's
// counter windows reset on a cadence set by wall-window length, not
// the iteration period, so its digest drifts phase and repeats (if
// ever) only with periods far above kMaxPeriod; record--replay
// iterations perform real migrations every iteration (nonzero deltas
// fail the entry rule).
//
// Opt-out: RunConfig::no_fast_forward, --no-fast-forward on the bench
// drivers, or REPRO_FAST_FORWARD=0 in the environment.
#pragma once

#include <cstdint>
#include <vector>

#include "repro/common/units.hpp"
#include "repro/memsys/memory_system.hpp"
#include "repro/omp/machine.hpp"
#include "repro/os/daemon.hpp"
#include "repro/os/kernel.hpp"
#include "repro/trace/sink.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::harness {

class FastForward {
 public:
  /// `machine` (and `upmlib` / `sink`, when given) must outlive the
  /// watcher. `upmlib` and `sink` may be null.
  FastForward(omp::Machine& machine, const upm::Upmlib* upmlib,
              trace::TraceSink* sink);

  /// Captures the pre-iteration snapshot at the top of the timed loop
  /// -- before the iteration's first trace event is emitted -- and
  /// re-evaluates the entry rule.
  void probe();

  /// A migration pass (UPMlib migrate_memory) ran inside the current
  /// iteration; the iterations it brackets can never be replayed.
  void note_migration_pass() { migration_pass_ = true; }

  /// True when the last probe() established the fixed point (or
  /// fixed cycle): remaining iterations can be synthesized.
  [[nodiscard]] bool ready() const { return ready_; }

  /// Synthesizes as many whole steady-state blocks as fit in
  /// [next_step, iterations] from the cached block and returns how
  /// many iterations were replayed -- a multiple of the detected
  /// period, so fewer than one period short of everything. The runtime
  /// clock, statistics, queue horizons, daemon timers, region records
  /// and trace advance exactly as a full simulation would have; the
  /// caller resumes *simulating* at step next_step + returned, which
  /// reproduces the leftover sub-block iterations for real from the
  /// time-shifted steady state. The watcher retires: later probe()
  /// calls are no-ops. Requires ready().
  std::uint32_t replay(std::uint32_t next_step, std::uint32_t iterations,
                       std::vector<Ns>& iteration_times);

  /// Longest steady-state cycle the entry gate searches for. Base and
  /// UPMlib cells settle to period 1 or 2 in practice; 4 buys margin
  /// at the cost of a 9-snapshot window, nothing per probe.
  static constexpr std::uint32_t kMaxPeriod = 4;

 private:
  struct UpmScalars {
    std::uint64_t distribution_migrations = 0;
    std::uint64_t replay_migrations = 0;
    std::uint64_t undo_migrations = 0;
    std::uint64_t replications = 0;
    std::uint64_t frozen_pages = 0;
    std::uint64_t busy_retries = 0;
    std::uint64_t give_ups = 0;
    std::uint64_t hysteresis_deferrals = 0;
    std::uint64_t invocations = 0;
    Ns distribution_cost = 0;
    Ns recrep_cost = 0;
    Ns replication_cost = 0;

    friend bool operator==(const UpmScalars&, const UpmScalars&) = default;
  };

  struct QueueTotals {
    std::uint64_t lines = 0;
    Ns wait = 0;
  };

  /// Pre-iteration snapshot. The digest covers behavioural state; the
  /// rest are cumulative counters used to form (and later replay) the
  /// per-iteration deltas.
  struct Snapshot {
    std::uint64_t digest = 0;
    Ns now = 0;
    /// migrate_memory() ran during the iteration ending here.
    bool migration_pass = false;
    std::vector<memsys::ProcStats> proc_stats;  // by processor
    os::KernelStats kernel;
    os::DaemonStats daemon;
    UpmScalars upm;
    std::vector<QueueTotals> queues;  // by node
    std::vector<std::size_t> lane_sizes;
    std::size_t record_count = 0;
  };

  [[nodiscard]] Snapshot capture();
  /// Entry gate over the last 2 * period + 1 snapshots.
  [[nodiscard]] bool entry_rule_holds(std::uint32_t period) const;

  /// Default give-up threshold (REPRO_FF_PROBE_LIMIT overrides; 0
  /// disables the give-up): engines that converge do so within tens of
  /// iterations -- base placements after 2-6 probes (period-2 cells
  /// need a 5-snapshot window), UPMlib distribution once its
  /// migrate_memory passes settle (~6) -- while record--replay
  /// migrates and the kernel daemon resets counter windows every
  /// iteration, so neither ever converges. After this many consecutive
  /// unready probes the watcher retires so the long tail of a
  /// non-converging run does not pay the per-iteration digest cost.
  static constexpr std::uint32_t kMaxUnreadyProbes = 32;

  omp::Machine* machine_;
  const upm::Upmlib* upmlib_;
  trace::TraceSink* sink_;
  bool migration_pass_ = false;
  bool ready_ = false;
  bool retired_ = false;
  std::uint32_t unready_probes_ = 0;
  std::uint32_t probe_limit_ = kMaxUnreadyProbes;
  /// Detected steady-state cycle length, valid while ready().
  std::uint32_t period_iters_ = 0;
  /// Rolling window of the last 2 * kMaxPeriod + 1 pre-iteration
  /// snapshots. For a candidate period p the last 2p+1 entries split
  /// into block A ([n-2p] .. [n-p]) and block B ([n-p] .. [n]).
  std::vector<Snapshot> snapshots_;
};

}  // namespace repro::harness
