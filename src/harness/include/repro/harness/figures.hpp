// Shared plumbing for the bench binaries that regenerate the paper's
// figures and tables: run matrices, slowdown computation and the
// paper-style chart/table rendering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "repro/common/table.hpp"
#include "repro/harness/run.hpp"
#include "repro/harness/scheduler.hpp"

namespace repro::harness {

struct FigureOptions {
  /// 0 = the paper's iteration counts (BT 200, SP 15, CG 400, MG 4,
  /// FT 6); the REPRO_FAST environment variable trims the two long
  /// benchmarks for quick runs.
  std::uint32_t iterations_override = 0;
  std::uint64_t seed = 12345;
  /// Worker threads for the run matrix (see scheduler.hpp): 0 = auto
  /// (REPRO_JOBS, else hardware concurrency); 1 = serial.
  std::size_t jobs = 0;
  /// Non-empty: record an event trace of every run and export the
  /// canonical dump + Chrome trace into this directory (--trace=DIR).
  std::string trace_dir;
  /// Simulate every timed iteration in full instead of fast-forwarding
  /// once a steady state is detected (--no-fast-forward).
  bool no_fast_forward = false;
  /// Fault-injection plan applied to every cell (--fault-seed /
  /// --fault-rate; empty = no injector, byte-identical to a build
  /// without the fault subsystem).
  fault::FaultPlan fault;
  /// Per-cell wall-clock watchdog in milliseconds (--cell-timeout);
  /// 0 disables it. See SweepOptions.
  std::uint32_t cell_timeout_ms = 0;
  /// Extra attempts per failed cell (--cell-retries).
  std::uint32_t cell_retries = 0;
  /// Checkpoint/resume directory (--checkpoint-dir); empty = off.
  std::string checkpoint_dir;
  memsys::MachineConfig machine;

  /// The SweepOptions these figure options imply.
  [[nodiscard]] SweepOptions sweep() const;
};

/// Iterations to run for `benchmark` under `options` (honours
/// REPRO_FAST).
[[nodiscard]] std::uint32_t effective_iterations(
    const std::string& benchmark, const FigureOptions& options);

/// Builds the RunConfig shared by all figure benches.
[[nodiscard]] RunConfig base_config(const std::string& benchmark,
                                    const FigureOptions& options);

/// Figure 1 row for one benchmark: {ft,rr,rand,wc} x {-, IRIXmig}.
[[nodiscard]] std::vector<RunResult> run_placement_matrix(
    const std::string& benchmark, const FigureOptions& options);

/// Figure 4 additions: {ft,rr,rand,wc}-upmlib.
[[nodiscard]] std::vector<RunResult> run_upmlib_row(
    const std::string& benchmark, const FigureOptions& options);

/// Renders one benchmark's results as a paper-style horizontal bar
/// chart; the bar whose label equals `baseline_label` becomes the
/// baseline line.
void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<RunResult>& results,
                  const std::string& baseline_label = "ft-base");

/// Summary table: label, execution time, slowdown vs. baseline, remote
/// miss fraction.
[[nodiscard]] TextTable results_table(const std::vector<RunResult>& results,
                                      const std::string& baseline_label =
                                          "ft-base");

/// Finds a result by label; throws if absent.
[[nodiscard]] const RunResult& find_result(
    const std::vector<RunResult>& results, const std::string& label);

/// Appends one benchmark's results to a CSV file (creating it with a
/// header on first use). Columns: benchmark, scheme, seconds, slowdown
/// vs baseline, remote fraction, migrations.
void append_csv(const std::string& path, const std::string& benchmark,
                const std::vector<RunResult>& results,
                const std::string& baseline_label = "ft-base");

/// Mean slowdown (fraction) of the labelled scheme vs. baseline across
/// several benchmarks' result vectors.
[[nodiscard]] double mean_slowdown(
    const std::vector<std::vector<RunResult>>& per_benchmark,
    const std::string& label, const std::string& baseline_label);

}  // namespace repro::harness
