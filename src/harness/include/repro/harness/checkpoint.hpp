// Sweep checkpoint/resume and the result wire/cache encoding.
//
// A sweep with checkpointing saves each completed cell's RunResult to
// one small key=value file (written atomically), keyed by a hash of
// every behaviour-relevant field of the cell's RunConfig. A restarted
// sweep loads the file instead of re-simulating the cell -- but only
// when the identity hash still matches, so an edited configuration
// can never resurrect a stale result.
//
// The same key=value text is the service layer's result encoding: a
// worker process replies with encode_result() over its pipe, the sweep
// daemon's memoized cache journals it verbatim, and a cache hit decodes
// through the same decode_result() a resumed checkpoint does -- one
// serializer, three transports (see src/service and DESIGN.md §17).
//
// The encoding carries everything results_to_json() serializes
// (totals, per-iteration times, engine statistics, fault statistics,
// trace digest and the per-iteration trace metrics); it does NOT carry
// the event trace itself or the region records, so a decoded cell's
// RunResult is JSON-identical to the original but not trace-complete.
//
// Checkpoint files additionally embed the *sweep-level* identity (a
// hash over every cell of the sweep that wrote them): resuming against
// a checkpoint directory populated by a different binary or sweep grid
// refuses with CheckpointMismatchError instead of silently mixing
// cells whose per-cell identities happen to coincide.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "repro/harness/run.hpp"

namespace repro::harness {

/// Hash of every RunConfig field that can influence the simulation's
/// result (placement, engines, iterations, machine geometry, fault
/// plan, ...). Host-side knobs (cell_timeout_ms, trace_dir) are
/// excluded: they change how a run is supervised, not what it
/// computes.
[[nodiscard]] std::uint64_t config_identity(const RunConfig& config);

/// Hash of a whole sweep: every cell's config_identity, in input
/// order. Never returns 0 (0 means "no sweep identity" to
/// load_checkpoint).
[[nodiscard]] std::uint64_t sweep_identity(
    const std::vector<RunConfig>& configs);

/// A checkpoint directory holds cells of a *different* sweep (the
/// sweep-level identity embedded in a matching cell file disagrees
/// with the running sweep's). Raised instead of resuming: silently
/// mixing cells across sweeps is exactly the staleness bug the
/// identity scheme exists to prevent.
class CheckpointMismatchError : public std::runtime_error {
 public:
  explicit CheckpointMismatchError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Serializes one completed cell as versioned key=value text, fenced
/// by `identity` (= config_identity of the cell's config). This is
/// the checkpoint file body, the worker->daemon reply payload and the
/// result-cache journal payload.
[[nodiscard]] std::string encode_result(std::uint64_t identity,
                                        const RunResult& result);

/// Parses encode_result() text. Returns false (leaving `out`
/// untouched) when the text is malformed, of a different format
/// version, or fenced with an identity other than `expected_identity`.
/// When `sweep_out` is non-null it receives the embedded sweep-level
/// identity (0 when the text carries none, e.g. a worker reply).
[[nodiscard]] bool decode_result(const std::string& text,
                                 std::uint64_t expected_identity,
                                 RunResult* out,
                                 std::uint64_t* sweep_out = nullptr);

/// The cell's checkpoint file inside `dir`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          const RunConfig& config);

/// Loads a previously saved result. Returns false (leaving `out`
/// untouched) when the file is missing, unreadable, malformed, or was
/// written for a different config identity. When `expected_sweep` is
/// nonzero and the file's embedded sweep identity differs, throws
/// CheckpointMismatchError -- a readable cell from a *different* sweep
/// is refused loudly, never resumed and never silently recomputed
/// over.
[[nodiscard]] bool load_checkpoint(const std::string& dir,
                                   const RunConfig& config, RunResult* out,
                                   std::uint64_t expected_sweep = 0);

/// Saves `result` atomically; a killed process leaves either no
/// checkpoint or a complete one. `sweep` is the sweep-level identity
/// embedded in the file (0 = written outside a sweep).
void save_checkpoint(const std::string& dir, const RunConfig& config,
                     const RunResult& result, std::uint64_t sweep = 0);

}  // namespace repro::harness
