// Sweep checkpoint/resume.
//
// A sweep with checkpointing saves each completed cell's RunResult to
// one small key=value file (written atomically), keyed by a hash of
// every behaviour-relevant field of the cell's RunConfig. A restarted
// sweep loads the file instead of re-simulating the cell -- but only
// when the identity hash still matches, so an edited configuration
// can never resurrect a stale result.
//
// The checkpoint carries everything results_to_json() serializes
// (totals, per-iteration times, engine statistics, fault statistics,
// trace digest and the per-iteration trace metrics); it does NOT carry
// the event trace itself or the region records, so a resumed cell's
// RunResult is JSON-identical to the original but not trace-complete.
#pragma once

#include <cstdint>
#include <string>

#include "repro/harness/run.hpp"

namespace repro::harness {

/// Hash of every RunConfig field that can influence the simulation's
/// result (placement, engines, iterations, machine geometry, fault
/// plan, ...). Host-side knobs (cell_timeout_ms, trace_dir) are
/// excluded: they change how a run is supervised, not what it
/// computes.
[[nodiscard]] std::uint64_t config_identity(const RunConfig& config);

/// The cell's checkpoint file inside `dir`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          const RunConfig& config);

/// Loads a previously saved result. Returns false (leaving `out`
/// untouched) when the file is missing, unreadable, malformed, or was
/// written for a different config identity.
[[nodiscard]] bool load_checkpoint(const std::string& dir,
                                   const RunConfig& config, RunResult* out);

/// Saves `result` atomically; a killed process leaves either no
/// checkpoint or a complete one.
void save_checkpoint(const std::string& dir, const RunConfig& config,
                     const RunResult& result);

}  // namespace repro::harness
