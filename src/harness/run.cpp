#include "repro/harness/run.hpp"

#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>

#include "repro/analysis/session.hpp"
#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/log.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/harness/fast_forward.hpp"
#include "repro/nas/trace_workload.hpp"
#include "repro/omp/machine.hpp"
#include "repro/sim/trace_recorder.hpp"
#include "repro/trace/export.hpp"

namespace repro::harness {

namespace {

/// Assembles the RTRC metadata of a dump: machine geometry, the
/// address-space layout after workload setup, and the hot ranges the
/// workload would register with UPMlib.
tracefmt::TraceMeta dump_meta(omp::Machine& machine, const RunConfig& config,
                              const std::string& benchmark,
                              std::uint32_t iterations,
                              const std::vector<vm::PageRange>& hot_ranges) {
  tracefmt::TraceMeta meta;
  meta.benchmark = benchmark;
  meta.source_label = config.label();
  meta.num_procs = static_cast<std::uint32_t>(machine.config().num_procs());
  meta.num_threads =
      static_cast<std::uint32_t>(machine.runtime().num_threads());
  meta.iterations = iterations;
  meta.page_size = machine.config().page_size;
  for (const auto& [name, range] : machine.address_space().arrays()) {
    meta.allocations.push_back(
        tracefmt::TraceAllocation{name, range.first.value(), range.count});
  }
  for (const vm::PageRange& r : hot_ranges) {
    meta.hot_ranges.push_back(tracefmt::TraceRange{r.first.value(), r.count});
  }
  return meta;
}

/// The hot ranges `workload` registers, observed without touching the
/// machine: a throwaway UPMlib instance (no trace sink, no call trace)
/// only accumulates the ranges.
std::vector<vm::PageRange> probe_hot_ranges(omp::Machine& machine,
                                            const nas::Workload& workload,
                                            const upm::UpmConfig& config) {
  upm::Upmlib probe(machine.mmci(), machine.runtime(), config);
  workload.register_hot(probe);
  return probe.hot_ranges();
}

void attach_recorder(omp::Runtime& rt, sim::TraceRecorder* recorder) {
  rt.set_region_recorder([recorder](const std::string& name,
                                    const sim::RegionProgram& program,
                                    std::span<const ProcId> binding) {
    recorder->on_region(name, program, binding);
  });
  rt.set_advance_observer([recorder](Ns d) { recorder->on_advance(d); });
}

void detach_recorder(omp::Runtime& rt) {
  rt.set_region_recorder({});
  rt.set_advance_observer({});
}

void check_frontend_config(const RunConfig& config) {
  REPRO_REQUIRE_MSG(config.trace_out.empty() || config.replay.empty(),
                    "trace_out and replay are mutually exclusive");
  REPRO_REQUIRE_MSG(!config.pipeline || !config.replay.empty(),
                    "pipeline requires replay");
  REPRO_REQUIRE_MSG((config.trace_out.empty() && config.replay.empty()) ||
                        config.upm_mode != nas::UpmMode::kRecordReplay,
                    "record-replay cells drive UPMlib from inside "
                    "iterations and cannot be dumped or replayed");
}

}  // namespace

std::string RunConfig::label() const {
  // Plain runs use IRIX's default first-touch kernel with *no* special
  // engine, so they are "base"; "IRIXmig" is reserved for the actual
  // kernel migration daemon.
  std::string engine = "base";
  if (upm_mode == nas::UpmMode::kDistribution) {
    engine = "upmlib";
  } else if (upm_mode == nas::UpmMode::kRecordReplay) {
    engine = "recrep";
  } else if (kernel_migration) {
    engine = "IRIXmig";
  }
  std::string name = placement + "-" + engine;
  if (!coherence.empty()) {
    // Coherence cells get their own label family ("ft-base-msi") so
    // sweep rows, trace dumps and golden digests never collide with
    // the page-grain baseline.
    name += "-" + coherence;
  }
  return name;
}

Ns RunResult::mean_iteration_last(double fraction) const {
  REPRO_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  if (iteration_times.empty()) {
    return 0;
  }
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(iteration_times.size()) * fraction));
  const std::size_t first = iteration_times.size() - count;
  Ns sum = 0;
  for (std::size_t i = first; i < iteration_times.size(); ++i) {
    sum += iteration_times[i];
  }
  return sum / count;
}

Ns RunResult::phase_time(const std::string& suffix) const {
  Ns total_time = 0;
  for (const omp::RegionRecord& r : records) {
    if (r.name.size() >= suffix.size() &&
        r.name.compare(r.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      total_time += r.duration();
    }
  }
  return total_time;
}

RunResult run_benchmark(const RunConfig& config) {
  REPRO_REQUIRE(config.upm_mode == nas::UpmMode::kOff ||
                !config.kernel_migration);
  check_frontend_config(config);
  const bool analyze =
      config.analyze || Env::global().get_bool("REPRO_ANALYZE", false);
  std::string trace_dir = config.trace_dir;
  if (trace_dir.empty()) {
    trace_dir = Env::global().get_string("REPRO_TRACE", "");
  }
  const bool tracing = config.trace || !trace_dir.empty();

  auto machine = omp::Machine::create(config.machine);
  machine->set_placement(config.placement, config.seed);
  coherence::CoherenceModel* coh = nullptr;
  if (!config.coherence.empty()) {
    const auto policy = coherence::parse_policy(config.coherence);
    REPRO_REQUIRE_MSG(policy.has_value(),
                      "unknown coherence policy (want \"msi\" or \"mesi\")");
    coherence::CoherenceConfig cc = config.coherence_config;
    cc.policy = *policy;
    // Before enable_tracing, so the "coherence" lane lands in the
    // canonical slot between "upmlib" and "daemon"/"harness".
    coh = &machine->enable_coherence(cc);
  }
  trace::TraceSink* sink = nullptr;
  std::uint16_t harness_lane = 0;
  if (tracing) {
    // Before enable_kernel_daemon, so the lane order (and with it the
    // canonical dump) is the same for every run of one configuration.
    sink = &machine->enable_tracing();
    harness_lane = sink->register_lane("harness");
  }
  if (config.kernel_migration) {
    machine->enable_kernel_daemon(config.daemon);
  }
  // REPRO_FAULT_* environment overrides land on top of the config's
  // plan, like REPRO_ANALYZE / REPRO_TRACE above.
  const fault::FaultPlan fault_plan = fault::FaultPlan::from_env(config.fault);
  fault::FaultInjector* injector = nullptr;
  if (!fault_plan.empty()) {
    // After the daemon, so the "fault" lane lands after "daemon" and
    // fault-free configurations keep their exact lane layout.
    injector = &machine->enable_fault_injection(fault_plan);
  }

  std::unique_ptr<nas::Workload> workload;
  if (!config.replay.empty()) {
    workload = nas::make_trace_workload(
        config.replay, nas::TraceWorkloadOptions{config.pipeline});
  } else {
    nas::WorkloadParams wparams = config.workload;
    wparams.compute_scale = config.compute_scale;
    workload = nas::make_workload(config.benchmark, wparams);
  }
  // Under replay, the benchmark name comes from the trace metadata
  // (config.benchmark is ignored); everywhere else they coincide.
  const std::string benchmark = workload->name();
  workload->setup(*machine);
  const std::uint32_t iterations = config.iterations != 0
                                       ? config.iterations
                                       : workload->default_iterations();

  std::unique_ptr<upm::Upmlib> upmlib;
  nas::IterationContext ctx;
  ctx.mode = config.upm_mode;
  if (config.upm_mode != nas::UpmMode::kOff) {
    REPRO_REQUIRE_MSG(config.upm_mode != nas::UpmMode::kRecordReplay ||
                          workload->supports_record_replay(),
                      "benchmark has no record-replay instrumentation");
    upmlib = std::make_unique<upm::Upmlib>(machine->mmci(),
                                           machine->runtime(), config.upm);
    if (sink != nullptr) {
      upmlib->set_trace(sink, machine->upm_trace_lane());
    }
    if (analyze) {
      // Trace from before register_hot so the protocol checker sees the
      // memrefcnt() registrations.
      upmlib->enable_call_trace();
    }
    workload->register_hot(*upmlib);
    ctx.upm = upmlib.get();
  }

  std::unique_ptr<sim::TraceRecorder> recorder;
  if (!config.trace_out.empty()) {
    const std::vector<vm::PageRange> hot =
        upmlib != nullptr
            ? upmlib->hot_ranges()
            : probe_hot_ranges(*machine, *workload, config.upm);
    recorder = std::make_unique<sim::TraceRecorder>(
        config.trace_out,
        dump_meta(*machine, config, benchmark, iterations, hot));
    attach_recorder(machine->runtime(), recorder.get());
  }

  // Cold-start iteration: establishes first-touch placement; results
  // and statistics are discarded.
  if (recorder != nullptr) {
    recorder->begin_cold_start();
  }
  workload->cold_start(*machine);
  if (recorder != nullptr) {
    recorder->end_phase();
  }
  if (upmlib != nullptr) {
    upmlib->reset_hot_counters();
  }
  machine->memory().reset_stats();
  machine->runtime().clear_records();
  if (sink != nullptr) {
    // The trace covers the timed iterations only, like every other
    // statistic (cold-start placement noise would swamp it).
    sink->clear();
  }

  // Analyze the timed phases only: by now first-touch placement is
  // established, so the locality lint judges the placement the timed
  // iterations actually run under.
  std::unique_ptr<analysis::AnalysisSession> session;
  if (analyze) {
    session = std::make_unique<analysis::AnalysisSession>(*machine);
    if (upmlib != nullptr) {
      session->attach_upm(*upmlib);
    }
  }

  RunResult result;
  result.label = config.label();
  result.benchmark = benchmark;
  result.iteration_times.reserve(iterations);

  // Steady-state fast-forward: on unless opted out, and off under the
  // analyzer (it inspects every *executed* region, so synthesized
  // iterations would change its input), the coherence model (cache
  // and directory state is not periodic in general, so a replayed
  // block would misreport the line-grain counters), a trace dump (a
  // skipped iteration would be missing from the file) or trace replay
  // (every iteration must consume its slice of the trace cursor).
  const bool fast_forward =
      !config.no_fast_forward && !analyze && coh == nullptr &&
      config.trace_out.empty() && config.replay.empty() &&
      Env::global().get_bool("REPRO_FAST_FORWARD", true);
  std::unique_ptr<FastForward> ff;
  if (fast_forward) {
    ff = std::make_unique<FastForward>(*machine, upmlib.get(), sink);
  }

  omp::Runtime& rt = machine->runtime();
  const Ns t0 = rt.now();
  std::uint64_t seen_remote_lines = 0;
  std::uint64_t seen_local_lines = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint32_t step = 1; step <= iterations; ++step) {
    if (config.cell_timeout_ms != 0) {
      // Cooperative watchdog: host wall-clock, checked only at outer
      // iteration boundaries so an aborted cell never leaves torn
      // simulation state (and the check never perturbs simulated time).
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
      if (elapsed >= static_cast<std::int64_t>(config.cell_timeout_ms)) {
        throw CellTimeoutError(benchmark + " " + config.label() +
                               ": exceeded cell timeout of " +
                               std::to_string(config.cell_timeout_ms) +
                               " ms at iteration " + std::to_string(step));
      }
    }
    if (injector != nullptr) {
      injector->set_iteration(step);
    }
    if (ff != nullptr) {
      ff->probe();
      if (ff->ready()) {
        result.iterations_replayed =
            ff->replay(step, iterations, result.iteration_times);
        step += result.iterations_replayed;
        if (step > iterations) {
          break;
        }
        // A steady state with period > 1 replays whole blocks only;
        // the (< period) leftover iterations are simulated for real
        // from the time-shifted steady state. Resync the baselines the
        // iteration-end events difference against, since the replay
        // advanced the cumulative counters underneath them.
        const memsys::ProcStats totals = machine->memory().total_stats();
        seen_remote_lines = totals.remote_miss_lines;
        seen_local_lines = totals.local_miss_lines;
      }
    }
    ++result.iterations_simulated;
    const Ns iter_start = rt.now();
    if (sink != nullptr) {
      sink->set_iteration(step);
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kIterationBegin;
      ev.time = iter_start;
      sink->emit(harness_lane, ev);
    }
    if (recorder != nullptr) {
      recorder->begin_iteration(step);
    }
    workload->iteration(*machine, ctx, step);
    if (recorder != nullptr) {
      // Close the phase before the migration pass below: replay runs
      // under a live UPMlib that re-executes it for real, so recording
      // its advances too would double-charge them.
      recorder->end_phase();
    }
    if (config.upm_mode == nas::UpmMode::kDistribution &&
        (step == 1 || upmlib->active())) {
      // Paper Fig. 2: invoke the engine after the first iteration and
      // keep invoking it while it is still active. Equivalent to the
      // classic "while the last pass migrated" loop in fault-free runs
      // (a zero-migration pass deactivates the engine in the same
      // step), but under faults a pass can defer candidates without
      // migrating -- activity, not migration count, is the signal.
      upmlib->migrate_memory();
      if (ff != nullptr) {
        ff->note_migration_pass();
      }
    }
    if (sink != nullptr) {
      const memsys::ProcStats totals = machine->memory().total_stats();
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kIterationEnd;
      ev.time = rt.now();
      ev.a = totals.remote_miss_lines - seen_remote_lines;
      ev.b = totals.local_miss_lines - seen_local_lines;
      seen_remote_lines = totals.remote_miss_lines;
      seen_local_lines = totals.local_miss_lines;
      sink->emit(harness_lane, ev);
    }
    result.iteration_times.push_back(rt.now() - iter_start);
  }
  result.total = rt.now() - t0;
  if (recorder != nullptr) {
    detach_recorder(rt);
    const tracefmt::WriterStats ws = recorder->finish();
    REPRO_LOG_INFO("trace-out ", benchmark, " ", result.label, ": ",
                   ws.regions, " regions, ", ws.ops, " ops, ", ws.chunks,
                   " chunks -> ", config.trace_out);
  }
  if (result.iterations_replayed > 0) {
    REPRO_LOG_INFO(benchmark, " ", result.label,
                   ": steady state after ", result.iterations_simulated,
                   " iterations, replayed ", result.iterations_replayed);
  }
  result.records = rt.records();
  if (upmlib != nullptr) {
    result.upm_stats = upmlib->stats();
  }
  result.kernel_stats = machine->kernel().stats();
  if (machine->kernel().daemon() != nullptr) {
    result.daemon_stats = machine->kernel().daemon()->stats();
  }
  result.memory_totals = machine->memory().total_stats();
  if (coh != nullptr) {
    result.coherence_totals = coh->total_stats();
    result.coherence_enabled = true;
  }
  if (injector != nullptr) {
    result.fault_stats = injector->stats();
    result.fault_rate = fault_plan.max_rate();
  }
  if (session != nullptr) {
    session->finish();
    result.diagnostics = session->sink().diagnostics();
    // Canonical order: the rendered findings are byte-identical across
    // --jobs counts and reruns whatever order the passes emitted in.
    analysis::canonical_sort(result.diagnostics);
    // Through the leveled logger (one atomic line per finding) rather
    // than std::cout: concurrent scheduler cells must not interleave
    // mid-table. Callers wanting the ASCII table render it from
    // RunResult::diagnostics (placement_explorer --analyze does).
    for (const analysis::Diagnostic& d : result.diagnostics) {
      const LogLevel level =
          d.severity == analysis::Severity::kError     ? LogLevel::kError
          : d.severity == analysis::Severity::kWarning ? LogLevel::kWarn
                                                       : LogLevel::kInfo;
      const std::string loc = d.location();
      REPRO_LOG(level, "analysis ", benchmark, " ", result.label,
                " ", d.rule, " [", d.region, loc.empty() ? "" : ", ", loc,
                "]: ", d.message);
    }
  }
  if (sink != nullptr) {
    result.trace_digest = trace::digest(*sink);
    result.iteration_metrics =
        trace::MetricsRegistry(*sink).per_iteration();
    if (!trace_dir.empty()) {
      const std::string stem =
          trace_dir + "/TRACE_" + benchmark + "_" + result.label;
      // Render in memory, land atomically: a killed run leaves either
      // no dump or a complete one, never a truncated file.
      std::ostringstream canonical;
      trace::write_canonical(canonical, *sink);
      atomic_write_file(stem + ".trace", canonical.str());
      std::ostringstream chrome;
      trace::write_chrome_trace(chrome, *sink);
      atomic_write_file(stem + ".chrome.json", chrome.str());
      REPRO_LOG_INFO("trace ", benchmark, " ", result.label,
                     " digest ", result.trace_digest, " -> ", stem,
                     ".{trace,chrome.json}");
    }
    result.trace = machine->take_trace_sink();
  }
  REPRO_LOG_INFO(benchmark, " ", result.label, ": ",
                 ns_to_seconds(result.total), " s, remote fraction ",
                 result.memory_totals.remote_fraction());
  return result;
}

TraceDumpStats dump_trace(const RunConfig& config, const std::string& path) {
  REPRO_REQUIRE_MSG(config.upm_mode != nas::UpmMode::kRecordReplay,
                    "record-replay cells drive UPMlib from inside "
                    "iterations and cannot be dumped or replayed");
  REPRO_REQUIRE_MSG(config.replay.empty(),
                    "dump_trace dumps a compiled workload, not a replay");
  auto machine = omp::Machine::create(config.machine);
  nas::WorkloadParams wparams = config.workload;
  wparams.compute_scale = config.compute_scale;
  const auto workload = nas::make_workload(config.benchmark, wparams);
  workload->setup(*machine);
  const std::uint32_t iterations = config.iterations != 0
                                       ? config.iterations
                                       : workload->default_iterations();
  sim::TraceRecorder recorder(
      path, dump_meta(*machine, config, workload->name(), iterations,
                      probe_hot_ranges(*machine, *workload, config.upm)));
  omp::Runtime& rt = machine->runtime();
  // Dry-run dispatch: the recorder observes the exact region/advance
  // stream a live run would execute -- the declarative workloads'
  // streams are pure functions of the workload parameters -- without
  // simulating a single access.
  rt.set_dry_run(true);
  attach_recorder(rt, &recorder);
  recorder.begin_cold_start();
  workload->cold_start(*machine);
  recorder.end_phase();
  const nas::IterationContext ctx;  // mode kOff: no UPMlib calls
  for (std::uint32_t step = 1; step <= iterations; ++step) {
    recorder.begin_iteration(step);
    workload->iteration(*machine, ctx, step);
    recorder.end_phase();
  }
  detach_recorder(rt);
  const tracefmt::WriterStats ws = recorder.finish();
  REPRO_LOG_INFO("trace-dump ", config.benchmark, ": ", ws.regions,
                 " regions, ", ws.ops, " ops, ", ws.chunks, " chunks -> ",
                 path);
  TraceDumpStats stats;
  stats.records = ws.records;
  stats.ops = ws.ops;
  stats.regions = ws.regions;
  stats.chunks = ws.chunks;
  stats.bytes = ws.bytes;
  stats.iterations = iterations;
  return stats;
}

}  // namespace repro::harness
