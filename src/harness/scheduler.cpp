#include "repro/harness/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/log.hpp"
#include "repro/harness/checkpoint.hpp"

namespace repro::harness {

namespace {

struct CellVerdict {
  RunResult result;
  bool ok = false;
  bool resumed = false;
  bool timeout = false;
  FailureClass cls = FailureClass::kFault;
  std::uint32_t retries = 0;
  std::string message;
};

/// Runs one cell to a verdict: checkpoint load, then simulate with up
/// to options.cell_retries extra attempts. Never throws on simulation
/// failure -- every exception becomes part of the verdict so the
/// remaining cells always run.
CellVerdict run_cell(const RunConfig& input, const SweepOptions& options,
                     std::uint64_t sweep_id) {
  CellVerdict v;
  RunConfig config = input;
  if (config.cell_timeout_ms == 0) {
    config.cell_timeout_ms = options.cell_timeout_ms;
  }
  if (!options.checkpoint_dir.empty()) {
    try {
      if (load_checkpoint(options.checkpoint_dir, config, &v.result,
                          sweep_id)) {
        v.ok = true;
        v.resumed = true;
        return v;
      }
    } catch (const CheckpointMismatchError& e) {
      // A readable cell from a *different* sweep: refuse loudly, never
      // recompute over it -- the operator pointed two sweeps at one
      // checkpoint directory and must untangle that first.
      v.cls = FailureClass::kFault;
      v.message = e.what();
      return v;
    }
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      v.result = run_benchmark(config);
      v.ok = true;
      if (!options.checkpoint_dir.empty()) {
        save_checkpoint(options.checkpoint_dir, config, v.result, sweep_id);
      }
      return v;
    } catch (const CellTimeoutError& e) {
      // Deterministic simulation: a cell that blew its deadline once
      // will blow it again, so a retry only doubles the damage.
      v.timeout = true;
      v.cls = FailureClass::kTimeout;
      v.message = e.what();
      return v;
    } catch (const std::exception& e) {
      v.message = e.what();
    } catch (...) {
      v.message = "unknown exception";
    }
    if (attempt >= options.cell_retries) {
      v.cls = options.cell_retries > 0 ? FailureClass::kRetryExhausted
                                       : FailureClass::kFault;
      return v;
    }
    ++v.retries;
    REPRO_LOG_WARN(config.benchmark, " ", config.label(), ": retry ",
                   v.retries, "/", options.cell_retries, " after: ",
                   v.message);
  }
}

}  // namespace

std::size_t effective_jobs(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const std::int64_t from_env = Env::global().get_int("REPRO_JOBS", 0);
  if (from_env > 0) {
    return static_cast<std::size_t>(from_env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint32_t effective_cell_timeout_ms(std::uint32_t requested) {
  if (requested != 0) {
    return requested;
  }
  // get_int throws ContractViolation on malformed values (the strict
  // parse); range errors get the same treatment here.
  const std::int64_t from_env =
      Env::global().get_int("REPRO_CELL_TIMEOUT_MS", 0);
  REPRO_REQUIRE_MSG(from_env >= 0 && from_env <= INT64_C(0xffffffff),
                    "REPRO_CELL_TIMEOUT_MS out of range [0, 2^32)");
  return static_cast<std::uint32_t>(from_env);
}

const char* failure_class_name(FailureClass cls) {
  switch (cls) {
    case FailureClass::kFault:
      return "fault";
    case FailureClass::kTimeout:
      return "timeout";
    case FailureClass::kRetryExhausted:
      return "retry-exhausted";
    case FailureClass::kCrash:
      return "crash";
  }
  REPRO_UNREACHABLE("unknown FailureClass");
}

int failure_exit_code(FailureClass cls) {
  return 3 + static_cast<int>(cls);
}

int SweepOutcome::exit_code() const {
  if (failures.empty()) {
    return 0;
  }
  FailureClass worst = FailureClass::kFault;
  for (const CellFailure& f : failures) {
    if (static_cast<int>(f.cls) > static_cast<int>(worst)) {
      worst = f.cls;
    }
  }
  return failure_exit_code(worst);
}

std::string CellFailure::describe() const {
  return benchmark + " " + label + " [" + failure_class_name(cls) +
         "]: " + message;
}

std::string SweepError::format(const std::vector<CellFailure>& failures) {
  std::ostringstream os;
  os << failures.size() << (failures.size() == 1 ? " cell" : " cells")
     << " failed:";
  for (const CellFailure& f : failures) {
    os << "\n  [" << f.index << "] " << f.describe();
  }
  return os.str();
}

SweepOutcome run_sweep(const std::vector<RunConfig>& configs,
                       const SweepOptions& options) {
  SweepOutcome out;
  out.results.resize(configs.size());
  out.stats.cells_total = configs.size();
  if (configs.empty()) {
    return out;
  }
  SweepOptions effective = options;
  effective.cell_timeout_ms =
      effective_cell_timeout_ms(options.cell_timeout_ms);
  const std::size_t workers =
      std::min(effective_jobs(effective.jobs), configs.size());
  const std::uint64_t sweep_id = sweep_identity(configs);

  std::vector<CellVerdict> verdicts(configs.size());
  if (workers == 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      verdicts[i] = run_cell(configs[i], effective, sweep_id);
    }
  } else {
    // Work-stealing by atomic counter: cells vary widely in cost (BT
    // 200 iterations vs FT 6), so static striping would leave workers
    // idle. Verdicts land at their input index; nothing escapes a
    // worker, so one bad cell never tears down the pool.
    std::atomic<std::size_t> next{0};
    REPRO_LOG_DEBUG("scheduler: ", configs.size(), " cells on ", workers,
                    " workers");
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= configs.size()) {
            return;
          }
          verdicts[i] = run_cell(configs[i], effective, sweep_id);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  for (std::size_t i = 0; i < configs.size(); ++i) {
    CellVerdict& v = verdicts[i];
    out.stats.cells_retried += v.retries;
    if (v.resumed) {
      ++out.stats.cells_resumed;
    }
    if (v.timeout) {
      ++out.stats.watchdog_fires;
    }
    if (v.ok) {
      ++out.stats.cells_ok;
      out.results[i] = std::move(v.result);
    } else {
      ++out.stats.cells_failed;
      CellFailure f;
      f.index = i;
      f.benchmark = configs[i].benchmark;
      f.label = configs[i].label();
      f.message = v.message;
      f.timeout = v.timeout;
      f.cls = v.cls;
      out.failures.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<RunResult> run_experiments(const std::vector<RunConfig>& configs,
                                       const SweepOptions& options) {
  SweepOutcome out = run_sweep(configs, options);
  if (!out.ok()) {
    throw SweepError(std::move(out.failures));
  }
  return std::move(out.results);
}

std::vector<RunResult> run_experiments(const std::vector<RunConfig>& configs,
                                       std::size_t jobs) {
  SweepOptions options;
  options.jobs = jobs;
  return run_experiments(configs, options);
}

}  // namespace repro::harness
