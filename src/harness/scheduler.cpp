#include "repro/harness/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "repro/common/env.hpp"
#include "repro/common/log.hpp"

namespace repro::harness {

std::size_t effective_jobs(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const std::int64_t from_env = Env::global().get_int("REPRO_JOBS", 0);
  if (from_env > 0) {
    return static_cast<std::size_t>(from_env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<RunResult> run_experiments(const std::vector<RunConfig>& configs,
                                       std::size_t jobs) {
  std::vector<RunResult> results(configs.size());
  if (configs.empty()) {
    return results;
  }
  const std::size_t workers =
      std::min(effective_jobs(jobs), configs.size());

  if (workers == 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_benchmark(configs[i]);
    }
    return results;
  }

  // Work-stealing by atomic counter: cells vary widely in cost (BT 200
  // iterations vs FT 6), so static striping would leave workers idle.
  // Results land at their input index; exceptions are kept per-cell and
  // the earliest one rethrown once every worker has drained.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(configs.size());
  REPRO_LOG_DEBUG("scheduler: ", configs.size(), " cells on ", workers,
                  " workers");
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= configs.size()) {
          return;
        }
        try {
          results[i] = run_benchmark(configs[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  return results;
}

}  // namespace repro::harness
