#include "repro/harness/figures.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/stats.hpp"
#include "repro/harness/scheduler.hpp"

namespace repro::harness {

std::uint32_t effective_iterations(const std::string& benchmark,
                                   const FigureOptions& options) {
  if (options.iterations_override != 0) {
    return options.iterations_override;
  }
  if (Env::global().get_bool("REPRO_FAST", false)) {
    // Trim the two long benchmarks; the short ones already match the
    // paper's counts.
    if (benchmark == "BT") {
      return 20;
    }
    if (benchmark == "SP" || benchmark == "CG") {
      return 40;
    }
  }
  return 0;  // benchmark default
}

RunConfig base_config(const std::string& benchmark,
                      const FigureOptions& options) {
  RunConfig config;
  config.benchmark = benchmark;
  config.machine = options.machine;
  config.seed = options.seed;
  config.iterations = effective_iterations(benchmark, options);
  config.trace_dir = options.trace_dir;
  config.no_fast_forward = options.no_fast_forward;
  config.fault = options.fault;
  return config;
}

SweepOptions FigureOptions::sweep() const {
  SweepOptions s;
  s.jobs = jobs;
  s.cell_timeout_ms = cell_timeout_ms;
  s.cell_retries = cell_retries;
  s.checkpoint_dir = checkpoint_dir;
  return s;
}

std::vector<RunResult> run_placement_matrix(const std::string& benchmark,
                                            const FigureOptions& options) {
  std::vector<RunConfig> configs;
  for (const std::string placement : {"ft", "rr", "rand", "wc"}) {
    for (const bool kernel_mig : {false, true}) {
      RunConfig config = base_config(benchmark, options);
      config.placement = placement;
      config.kernel_migration = kernel_mig;
      configs.push_back(std::move(config));
    }
  }
  return run_experiments(configs, options.sweep());
}

std::vector<RunResult> run_upmlib_row(const std::string& benchmark,
                                      const FigureOptions& options) {
  std::vector<RunConfig> configs;
  for (const std::string placement : {"ft", "rr", "rand", "wc"}) {
    RunConfig config = base_config(benchmark, options);
    config.placement = placement;
    config.upm_mode = nas::UpmMode::kDistribution;
    configs.push_back(std::move(config));
  }
  return run_experiments(configs, options.sweep());
}

void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<RunResult>& results,
                  const std::string& baseline_label) {
  BarChart chart(title, "s");
  for (const RunResult& r : results) {
    chart.add(r.label, r.seconds(),
              ns_to_seconds(r.upm_stats.recrep_cost));
    if (r.label == baseline_label) {
      chart.set_baseline(r.seconds());
    }
  }
  chart.print(os);
}

TextTable results_table(const std::vector<RunResult>& results,
                        const std::string& baseline_label) {
  const RunResult& base = find_result(results, baseline_label);
  TextTable table({"scheme", "time (s)", "vs " + baseline_label,
                   "remote miss frac", "migrations"});
  for (const RunResult& r : results) {
    const std::uint64_t migrations = r.upm_stats.distribution_migrations +
                                     r.upm_stats.replay_migrations +
                                     r.upm_stats.undo_migrations +
                                     r.daemon_stats.migrations;
    table.add_row({r.label, fmt_double(r.seconds(), 3),
                   fmt_percent(slowdown(r.seconds(), base.seconds())),
                   fmt_double(r.memory_totals.remote_fraction(), 3),
                   std::to_string(migrations)});
  }
  return table;
}

void append_csv(const std::string& path, const std::string& benchmark,
                const std::vector<RunResult>& results,
                const std::string& baseline_label) {
  const bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::app);
  REPRO_REQUIRE_MSG(out.good(), "cannot open CSV output file");
  if (fresh) {
    out << "benchmark,scheme,seconds,slowdown_vs_baseline,"
           "remote_fraction,migrations\n";
  }
  const RunResult& base = find_result(results, baseline_label);
  for (const RunResult& r : results) {
    const std::uint64_t migrations = r.upm_stats.distribution_migrations +
                                     r.upm_stats.replay_migrations +
                                     r.upm_stats.undo_migrations +
                                     r.daemon_stats.migrations;
    out << benchmark << ',' << r.label << ',' << r.seconds() << ','
        << slowdown(r.seconds(), base.seconds()) << ','
        << r.memory_totals.remote_fraction() << ',' << migrations
        << '\n';
  }
}

const RunResult& find_result(const std::vector<RunResult>& results,
                             const std::string& label) {
  for (const RunResult& r : results) {
    if (r.label == label) {
      return r;
    }
  }
  REPRO_UNREACHABLE("result label not found");
}

double mean_slowdown(const std::vector<std::vector<RunResult>>& per_benchmark,
                     const std::string& label,
                     const std::string& baseline_label) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& results : per_benchmark) {
    const RunResult& r = find_result(results, label);
    const RunResult& base = find_result(results, baseline_label);
    sum += slowdown(r.seconds(), base.seconds());
    ++count;
  }
  REPRO_REQUIRE(count > 0);
  return sum / static_cast<double>(count);
}

}  // namespace repro::harness
