#include "repro/harness/advise.hpp"

#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "repro/common/table.hpp"
#include "repro/harness/atomic_file.hpp"
#include "repro/nas/workload.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::harness {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string percent(double fraction) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace

analysis::CapturedProgram capture_benchmark(const RunConfig& config) {
  auto machine = omp::Machine::create(config.machine);
  // Dry-run regions never fault a page, so the placement policy is
  // inert; installed anyway so the machine is fully assembled.
  machine->set_placement("ft", config.seed);

  nas::WorkloadParams wparams = config.workload;
  wparams.compute_scale = config.compute_scale;
  auto workload = nas::make_workload(config.benchmark, wparams);
  workload->setup(*machine);

  // The hot memory areas come from the same registration call the real
  // runs use; the call trace records each memrefcnt() range without
  // touching any counter state.
  upm::Upmlib upmlib(machine->mmci(), machine->runtime(), config.upm);
  upmlib.enable_call_trace();
  workload->register_hot(upmlib);

  analysis::CapturedProgram captured;
  {
    analysis::PhaseRecorder recorder(machine->runtime());
    workload->cold_start(*machine);
    recorder.begin_timed();
    // One steady iteration, UPM mode off: the advisor models the
    // migration engine itself, so the capture must be the plain
    // iteration body.
    nas::IterationContext ctx;
    workload->iteration(*machine, ctx, 1);
    captured = recorder.take();
  }
  for (const upm::UpmCall& call : upmlib.call_trace()) {
    if (call.kind == upm::UpmCall::Kind::kMemRefCnt) {
      captured.hot_ranges.push_back(call.range);
    }
  }
  analysis::finalize_page_bound(captured);
  return captured;
}

analysis::AdvisorReport advise_benchmark(const RunConfig& config) {
  const analysis::CapturedProgram captured = capture_benchmark(config);

  analysis::AdvisorConfig acfg;
  acfg.threshold = config.upm.threshold;
  acfg.freeze_bouncing_pages = config.upm.freeze_bouncing_pages;
  std::uint32_t iterations = config.iterations;
  if (iterations == 0) {
    iterations = nas::make_workload(config.benchmark, config.workload)
                     ->default_iterations();
  }
  acfg.iterations = iterations;

  analysis::Advisor advisor(acfg,
                            analysis::AdvisorView::from_config(config.machine));
  return advisor.advise(config.benchmark, captured);
}

std::string advisor_report_to_json(const analysis::AdvisorReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"benchmark\": \"" << escape(report.benchmark) << "\", ";
  os << "\"predicted_best\": \"" << escape(report.predicted_best) << "\", ";
  os << "\"ft_gap\": " << report.ft_gap << ", ";
  os << "\"distribution_unnecessary\": "
     << (report.distribution_unnecessary ? "true" : "false") << ", ";
  os << "\"timed_phases\": "
     << report.dataflow.phases.size() << ", ";
  os << "\"cells\": [";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const analysis::PlacementPrediction& cell = report.cells[i];
    os << (i == 0 ? "" : ", ") << "{";
    os << "\"label\": \"" << escape(cell.label) << "\", ";
    os << "\"placement\": \"" << escape(cell.placement) << "\", ";
    os << "\"upmlib\": " << (cell.upmlib ? "true" : "false") << ", ";
    os << "\"migrated_pages\": " << cell.migrated_pages.size() << ", ";
    os << "\"frozen_pages\": " << cell.frozen_pages.size() << ", ";
    os << "\"migrations_per_iteration\": [";
    for (std::size_t m = 0; m < cell.migrations_per_iteration.size(); ++m) {
      os << (m == 0 ? "" : ", ") << cell.migrations_per_iteration[m];
    }
    os << "], ";
    os << "\"initial_remote_fraction\": " << cell.initial_remote_fraction
       << ", ";
    os << "\"steady_remote_fraction\": " << cell.steady_remote_fraction
       << ", ";
    os << "\"predicted_cost\": " << cell.predicted_cost << "}";
  }
  os << "], \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const analysis::Diagnostic& diag = report.diagnostics[i];
    os << (i == 0 ? "" : ", ") << "{";
    os << "\"severity\": \"" << analysis::severity_name(diag.severity)
       << "\", ";
    os << "\"rule\": \"" << escape(diag.rule) << "\", ";
    os << "\"region\": \"" << escape(diag.region) << "\", ";
    if (diag.page.has_value()) {
      os << "\"page\": " << diag.page->value() << ", ";
    }
    os << "\"message\": \"" << escape(diag.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

void write_advisor_json(const std::string& path,
                        const std::vector<analysis::AdvisorReport>& reports) {
  std::ostringstream os;
  os << "{\"advisor\": \"static-placement\", \"reports\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << (i == 0 ? "\n  " : ",\n  ") << advisor_report_to_json(reports[i]);
  }
  os << "\n]}\n";
  atomic_write_file(path, os.str());
}

void print_advisor_report(std::ostream& os,
                          const analysis::AdvisorReport& report) {
  os << "advisor: " << report.benchmark << " ("
     << report.dataflow.phases.size() << " timed phases, "
     << report.dataflow.page_bound << " pages)\n";
  TextTable table({"cell", "migrations", "frozen", "remote(iter1)",
                   "remote(steady)", "predicted cost"});
  for (const analysis::PlacementPrediction& cell : report.cells) {
    std::ostringstream cost;
    cost.precision(2);
    cost << std::fixed << cell.predicted_cost / 1e6 << " Mns(model)";
    table.add_row({cell.label, std::to_string(cell.migrated_pages.size()),
                   std::to_string(cell.frozen_pages.size()),
                   percent(cell.initial_remote_fraction),
                   percent(cell.steady_remote_fraction), cost.str()});
  }
  table.print(os);
  os << "predicted best: " << report.predicted_best << "; ft-base gap "
     << percent(report.ft_gap) << " => data distribution "
     << (report.distribution_unnecessary ? "unnecessary" : "beneficial")
     << "\n";
}

}  // namespace repro::harness
