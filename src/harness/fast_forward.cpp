#include "repro/harness/fast_forward.hpp"

#include <utility>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/hash.hpp"
#include "repro/common/log.hpp"

namespace repro::harness {

namespace {

bool same_kernel(const os::KernelStats& a, const os::KernelStats& b) {
  return a.page_faults == b.page_faults && a.migrations == b.migrations &&
         a.rejected_migrations == b.rejected_migrations &&
         a.busy_migrations == b.busy_migrations &&
         a.redirected_migrations == b.redirected_migrations &&
         a.migration_cost == b.migration_cost &&
         a.replications == b.replications &&
         a.replica_collapses == b.replica_collapses;
}

bool same_daemon(const os::DaemonStats& a, const os::DaemonStats& b) {
  return a.interrupts == b.interrupts && a.migrations == b.migrations &&
         a.window_resets == b.window_resets &&
         a.suppressed_cooloff == b.suppressed_cooloff &&
         a.suppressed_frozen == b.suppressed_frozen &&
         a.suppressed_global == b.suppressed_global &&
         a.deferred_busy == b.deferred_busy && a.cost == b.cost;
}

/// delta(a0 -> a1) == delta(b0 -> b1), field-wise.
bool same_proc_delta(const memsys::ProcStats& a0, const memsys::ProcStats& a1,
                     const memsys::ProcStats& b0,
                     const memsys::ProcStats& b1) {
  return a1.hit_lines - a0.hit_lines == b1.hit_lines - b0.hit_lines &&
         a1.local_miss_lines - a0.local_miss_lines ==
             b1.local_miss_lines - b0.local_miss_lines &&
         a1.remote_miss_lines - a0.remote_miss_lines ==
             b1.remote_miss_lines - b0.remote_miss_lines &&
         a1.queue_wait - a0.queue_wait == b1.queue_wait - b0.queue_wait &&
         a1.invalidations_sent - a0.invalidations_sent ==
             b1.invalidations_sent - b0.invalidations_sent &&
         a1.tlb_misses - a0.tlb_misses == b1.tlb_misses - b0.tlb_misses;
}

}  // namespace

FastForward::FastForward(omp::Machine& machine, const upm::Upmlib* upmlib,
                         trace::TraceSink* sink)
    : machine_(&machine), upmlib_(upmlib), sink_(sink) {
  probe_limit_ = static_cast<std::uint32_t>(Env::global().get_int(
      "REPRO_FF_PROBE_LIMIT", kMaxUnreadyProbes));
}

FastForward::Snapshot FastForward::capture() {
  Snapshot s;
  omp::Runtime& rt = machine_->runtime();
  s.now = rt.now();

  StateHash hash;
  hash.mix(machine_->memory().digest(s.now));
  hash.mix(machine_->kernel().digest(s.now));
  hash.mix(rt.digest());
  hash.mix(upmlib_ != nullptr ? 1 : 0);
  if (upmlib_ != nullptr) {
    hash.mix(upmlib_->digest());
  }
  // An attached fault injector keeps the gate shut by construction:
  // its digest mixes the current iteration while the plan's schedule
  // can still fire, so the window is never digest-periodic and no
  // scheduled draw is ever skipped by a replayed block.
  fault::FaultInjector* fault = machine_->fault_injector();
  hash.mix(fault != nullptr ? 1 : 0);
  if (fault != nullptr) {
    hash.mix(fault->digest());
  }
  s.digest = hash.value();

  const std::size_t procs = machine_->config().num_procs();
  s.proc_stats.reserve(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    s.proc_stats.push_back(
        machine_->memory().stats(ProcId(static_cast<std::uint32_t>(p))));
  }
  s.kernel = machine_->kernel().stats();
  if (machine_->kernel().daemon() != nullptr) {
    s.daemon = machine_->kernel().daemon()->stats();
  }
  if (upmlib_ != nullptr) {
    const upm::UpmStats& u = upmlib_->stats();
    s.upm = UpmScalars{u.distribution_migrations,
                       u.replay_migrations,
                       u.undo_migrations,
                       u.replications,
                       u.frozen_pages,
                       u.busy_retries,
                       u.give_ups,
                       u.hysteresis_deferrals,
                       u.migrations_per_invocation.size(),
                       u.distribution_cost,
                       u.recrep_cost,
                       u.replication_cost};
  }
  const std::size_t nodes = machine_->config().num_nodes;
  s.queues.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    const memsys::MemQueue& q =
        machine_->memory().queue(NodeId(static_cast<std::uint32_t>(n)));
    s.queues.push_back({q.lines_served(), q.total_wait()});
  }
  if (sink_ != nullptr) {
    const auto lanes = static_cast<std::uint16_t>(sink_->num_lanes());
    s.lane_sizes.reserve(lanes);
    for (std::uint16_t l = 0; l < lanes; ++l) {
      s.lane_sizes.push_back(sink_->lane_events(l).size());
    }
  }
  s.record_count = rt.records().size();
  return s;
}

void FastForward::probe() {
  if (retired_) {
    return;
  }
  Snapshot s = capture();
  REPRO_LOG_DEBUG("ff digest ", s.digest, " at ", s.now);
  s.migration_pass = migration_pass_;
  migration_pass_ = false;
  snapshots_.push_back(std::move(s));
  if (snapshots_.size() > 2 * kMaxPeriod + 1) {
    snapshots_.erase(snapshots_.begin());
  }
  // Smallest period first: a period-1 fixed point also satisfies every
  // larger candidate, and shorter periods replay with less leftover.
  for (std::uint32_t p = 1; p <= kMaxPeriod; ++p) {
    if (snapshots_.size() >= 2 * p + 1 && entry_rule_holds(p)) {
      ready_ = true;
      period_iters_ = p;
      return;
    }
  }
  if (probe_limit_ != 0 && ++unready_probes_ >= probe_limit_) {
    retired_ = true;
    snapshots_.clear();
    snapshots_.shrink_to_fit();
  }
}

bool FastForward::entry_rule_holds(std::uint32_t period) const {
  // The last 2p+1 snapshots s[0..n] bracket two p-iteration blocks:
  // A = s[0]..s[p], B = s[p]..s[n].
  const auto p = static_cast<std::size_t>(period);
  const std::size_t n = 2 * p;
  const Snapshot* s = snapshots_.data() + (snapshots_.size() - n - 1);

  // Every pair of probes p iterations apart saw the same behavioural
  // state: the window is digest-periodic (and, as a determinism
  // cross-check, block B left the state exactly where block A did).
  for (std::size_t i = 0; i + p <= n; ++i) {
    if (s[i].digest != s[i + p].digest) {
      return false;
    }
  }
  // Matching per-sub-iteration times; their sums make the two block
  // periods equal automatically.
  const Ns block_ns = s[n].now - s[p].now;
  if (block_ns == 0) {
    return false;
  }
  for (std::size_t i = 0; i < p; ++i) {
    if (s[i + 1].now - s[i].now != s[i + p + 1].now - s[i + p].now) {
      return false;
    }
  }
  // No migration engine did anything across either block. The counters
  // are monotone, so end == start means zero activity in between.
  for (std::size_t i = 1; i <= n; ++i) {
    if (s[i].migration_pass) {
      return false;
    }
  }
  if (!same_kernel(s[0].kernel, s[n].kernel) ||
      !same_daemon(s[0].daemon, s[n].daemon) || !(s[0].upm == s[n].upm)) {
    return false;
  }
  // Identical per-processor statistics deltas, sub-iteration by
  // sub-iteration.
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t q = 0; q < s[0].proc_stats.size(); ++q) {
      if (!same_proc_delta(s[i].proc_stats[q], s[i + 1].proc_stats[q],
                           s[i + p].proc_stats[q],
                           s[i + p + 1].proc_stats[q])) {
        return false;
      }
    }
    // Identical per-node queue throughput deltas.
    for (std::size_t q = 0; q < s[0].queues.size(); ++q) {
      if (s[i + 1].queues[q].lines - s[i].queues[q].lines !=
              s[i + p + 1].queues[q].lines - s[i + p].queues[q].lines ||
          s[i + 1].queues[q].wait - s[i].queues[q].wait !=
              s[i + p + 1].queues[q].wait - s[i + p].queues[q].wait) {
        return false;
      }
    }
  }
  // Identical region records, shifted by exactly one block period
  // (with the sub-iteration boundaries lining up too).
  const auto& records = machine_->runtime().records();
  for (std::size_t i = 0; i <= p; ++i) {
    if (s[i].record_count - s[0].record_count !=
        s[i + p].record_count - s[p].record_count) {
      return false;
    }
  }
  for (std::size_t i = 0; i < s[n].record_count - s[p].record_count; ++i) {
    const omp::RegionRecord& prev = records[s[0].record_count + i];
    const omp::RegionRecord& cur = records[s[p].record_count + i];
    if (prev.name != cur.name || prev.imbalance != cur.imbalance ||
        cur.start - prev.start != block_ns ||
        cur.end - prev.end != block_ns) {
      return false;
    }
  }
  // Identical trace-event streams: same shape, times shifted by one
  // block period, iteration stamps advanced by the period. The a/b
  // payloads may advance by a per-event constant (cumulative counters
  // such as the queue samples' lines-served); replay extrapolates them
  // affinely.
  if (sink_ != nullptr) {
    const auto lanes = static_cast<std::uint16_t>(sink_->num_lanes());
    for (std::uint16_t l = 0; l < lanes; ++l) {
      for (std::size_t i = 0; i <= p; ++i) {
        if (s[i].lane_sizes[l] - s[0].lane_sizes[l] !=
            s[i + p].lane_sizes[l] - s[p].lane_sizes[l]) {
          return false;
        }
      }
      const auto& events = sink_->lane_events(l);
      const std::size_t a0 = s[0].lane_sizes[l];
      const std::size_t b0 = s[p].lane_sizes[l];
      for (std::size_t j = 0; j < s[n].lane_sizes[l] - b0; ++j) {
        const trace::TraceEvent& prev = events[a0 + j];
        const trace::TraceEvent& cur = events[b0 + j];
        if (prev.kind != cur.kind || prev.node != cur.node ||
            prev.src != cur.src || prev.dst != cur.dst ||
            prev.page != cur.page || prev.cost != cur.cost ||
            prev.phase != cur.phase || cur.time - prev.time != block_ns ||
            cur.iteration != prev.iteration + period) {
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t FastForward::replay(std::uint32_t next_step,
                                  std::uint32_t iterations,
                                  std::vector<Ns>& iteration_times) {
  REPRO_REQUIRE(ready_);
  // One replay per watcher: the caller simulates whatever sub-block
  // tail remains, so probing must not re-arm.
  ready_ = false;
  retired_ = true;
  const auto p = static_cast<std::size_t>(period_iters_);
  const std::size_t n = 2 * p;
  const Snapshot* s = snapshots_.data() + (snapshots_.size() - n - 1);
  const Ns block_ns = s[n].now - s[p].now;
  const std::uint32_t remaining =
      next_step <= iterations ? iterations - next_step + 1 : 0;
  const std::uint32_t blocks = remaining / period_iters_;
  const std::uint32_t count = blocks * period_iters_;
  if (count == 0) {
    snapshots_.clear();
    snapshots_.shrink_to_fit();
    return 0;
  }
  omp::Runtime& rt = machine_->runtime();

  // Re-stamp the cached block's trace events. Copy the source ranges
  // first: appending grows the very vectors they live in.
  if (sink_ != nullptr) {
    const auto lanes = static_cast<std::uint16_t>(sink_->num_lanes());
    for (std::uint16_t l = 0; l < lanes; ++l) {
      const auto& events = sink_->lane_events(l);
      const std::size_t prev_begin = s[0].lane_sizes[l];
      const std::size_t cur_begin = s[p].lane_sizes[l];
      const std::size_t len = s[n].lane_sizes[l] - cur_begin;
      std::vector<trace::TraceEvent> cached(
          events.begin() + static_cast<std::ptrdiff_t>(cur_begin),
          events.begin() + static_cast<std::ptrdiff_t>(cur_begin + len));
      // Per-event payload deltas between the two probed blocks
      // (modular arithmetic, so decreasing payloads extrapolate too).
      std::vector<std::pair<std::uint64_t, std::uint64_t>> deltas;
      deltas.reserve(len);
      for (std::size_t j = 0; j < len; ++j) {
        deltas.emplace_back(cached[j].a - events[prev_begin + j].a,
                            cached[j].b - events[prev_begin + j].b);
      }
      for (std::uint32_t c = 1; c <= blocks; ++c) {
        for (std::size_t j = 0; j < len; ++j) {
          trace::TraceEvent out = cached[j];
          out.time += static_cast<Ns>(c) * block_ns;
          out.iteration += c * period_iters_;
          out.a += static_cast<std::uint64_t>(c) * deltas[j].first;
          out.b += static_cast<std::uint64_t>(c) * deltas[j].second;
          sink_->append_replayed(l, out);
        }
      }
    }
  }

  // Shifted copies of the cached block's region records.
  {
    const auto& records = rt.records();
    const std::vector<omp::RegionRecord> cached(
        records.begin() + static_cast<std::ptrdiff_t>(s[p].record_count),
        records.begin() + static_cast<std::ptrdiff_t>(s[n].record_count));
    for (std::uint32_t c = 1; c <= blocks; ++c) {
      for (const omp::RegionRecord& r : cached) {
        omp::RegionRecord out = r;
        out.start += static_cast<Ns>(c) * block_ns;
        out.end += static_cast<Ns>(c) * block_ns;
        rt.append_record(std::move(out));
      }
    }
  }

  // Statistics and clocks advance delta-by-block.
  std::vector<memsys::ProcStats> delta(s[p].proc_stats.size());
  for (std::size_t q = 0; q < delta.size(); ++q) {
    const memsys::ProcStats& a = s[p].proc_stats[q];
    const memsys::ProcStats& b = s[n].proc_stats[q];
    delta[q].hit_lines = b.hit_lines - a.hit_lines;
    delta[q].local_miss_lines = b.local_miss_lines - a.local_miss_lines;
    delta[q].remote_miss_lines = b.remote_miss_lines - a.remote_miss_lines;
    delta[q].queue_wait = b.queue_wait - a.queue_wait;
    delta[q].invalidations_sent =
        b.invalidations_sent - a.invalidations_sent;
    delta[q].tlb_misses = b.tlb_misses - a.tlb_misses;
  }
  machine_->memory().apply_stats_delta(delta, blocks);
  for (std::size_t q = 0; q < s[p].queues.size(); ++q) {
    machine_->memory().advance_queue_replayed(
        NodeId(static_cast<std::uint32_t>(q)), blocks,
        s[n].queues[q].lines - s[p].queues[q].lines,
        s[n].queues[q].wait - s[p].queues[q].wait, block_ns);
  }
  rt.advance(static_cast<Ns>(blocks) * block_ns);
  // The daemon's timers are absolute; shift them so a simulated
  // sub-block tail ages windows exactly as a full run would. (A
  // quiescent-but-installed daemon passes the gate only with no
  // tracked-page misses in the window, but the shift keeps the state
  // consistent either way.)
  if (machine_->kernel().daemon() != nullptr) {
    machine_->kernel().daemon()->advance_replayed(
        static_cast<Ns>(blocks) * block_ns);
  }
  for (std::uint32_t c = 0; c < blocks; ++c) {
    for (std::size_t i = 0; i < p; ++i) {
      iteration_times.push_back(s[p + i + 1].now - s[p + i].now);
    }
  }
  if (sink_ != nullptr) {
    sink_->set_now(rt.now());
    sink_->set_iteration(next_step + count - 1);
  }
  snapshots_.clear();
  snapshots_.shrink_to_fit();
  return count;
}

}  // namespace repro::harness
