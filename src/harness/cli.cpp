#include "repro/harness/cli.hpp"

#include <charconv>
#include <sstream>
#include <utility>

#include "repro/common/assert.hpp"
#include "repro/harness/run.hpp"

namespace repro::harness {

Cli::Cli(std::string program) : program_(std::move(program)) {}

void Cli::add_flag(const std::string& name, bool* target, std::string help) {
  REPRO_REQUIRE(target != nullptr && find(name) == nullptr);
  Option opt;
  opt.name = name;
  opt.help = std::move(help);
  opt.kind = Kind::kFlag;
  opt.flag_target = target;
  options_.push_back(std::move(opt));
}

void Cli::add_string(const std::string& name, std::string* target,
                     std::string help) {
  REPRO_REQUIRE(target != nullptr && find(name) == nullptr);
  Option opt;
  opt.name = name;
  opt.help = std::move(help);
  opt.kind = Kind::kString;
  opt.string_target = target;
  options_.push_back(std::move(opt));
}

void Cli::add_uint_impl(const std::string& name, std::string help,
                        std::uint64_t min, std::uint64_t max,
                        std::function<void(std::uint64_t)> store,
                        std::uint64_t type_max) {
  REPRO_REQUIRE(find(name) == nullptr);
  Option opt;
  opt.name = name;
  opt.help = std::move(help);
  opt.kind = Kind::kUint;
  opt.uint_store = std::move(store);
  opt.min = min;
  opt.max = max < type_max ? max : type_max;
  options_.push_back(std::move(opt));
}

void Cli::add_double(const std::string& name, double* target,
                     std::string help, double gt) {
  REPRO_REQUIRE(target != nullptr && find(name) == nullptr);
  Option opt;
  opt.name = name;
  opt.help = std::move(help);
  opt.kind = Kind::kDouble;
  opt.double_target = target;
  opt.gt = gt;
  options_.push_back(std::move(opt));
}

Cli::Option* Cli::find(const std::string& name) {
  for (Option& opt : options_) {
    if (opt.name == name) {
      return &opt;
    }
  }
  return nullptr;
}

Cli::Status Cli::parse(int argc, const char* const* argv) {
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Status::kHelp;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return Status::kError;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    Option* opt = find(name);
    if (opt == nullptr) {
      error_ = "unknown flag: " + arg;
      return Status::kError;
    }
    if (opt->kind == Kind::kFlag) {
      if (eq != std::string::npos) {
        error_ = "--" + name + " takes no value";
        return Status::kError;
      }
      *opt->flag_target = true;
      continue;
    }
    if (eq == std::string::npos) {
      error_ = "--" + name + " needs a value (--" + name + "=...)";
      return Status::kError;
    }
    const std::string value = arg.substr(eq + 1);
    if (opt->kind == Kind::kString) {
      *opt->string_target = value;
      continue;
    }
    if (opt->kind == Kind::kDouble) {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (value.empty() || ptr != value.data() + value.size() ||
          ec != std::errc{}) {
        error_ = "--" + name + " expects a number, got \"" + value + "\"";
        return Status::kError;
      }
      if (!(parsed > opt->gt)) {
        error_ = "--" + name + "=" + value +
                 " must be greater than " + std::to_string(opt->gt);
        return Status::kError;
      }
      *opt->double_target = parsed;
      continue;
    }
    // kUint: strictly decimal digits, no sign/space/suffix, in range.
    std::uint64_t parsed = 0;
    const char* first = value.data();
    const char* last = first + value.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed, 10);
    if (value.empty() || ptr != last || ec == std::errc::invalid_argument ||
        value.front() == '+') {
      error_ = "--" + name + " expects a non-negative integer, got \"" +
               value + "\"";
      return Status::kError;
    }
    if (ec == std::errc::result_out_of_range || parsed > opt->max) {
      error_ = "--" + name + "=" + value + " is out of range (max " +
               std::to_string(opt->max) + ")";
      return Status::kError;
    }
    if (parsed < opt->min) {
      error_ = "--" + name + "=" + value + " is below the minimum of " +
               std::to_string(opt->min);
      return Status::kError;
    }
    opt->uint_store(parsed);
  }
  return Status::kOk;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const Option& opt : options_) {
    os << " [--" << opt.name
       << (opt.kind == Kind::kFlag     ? ""
           : opt.kind == Kind::kString ? "=STR"
           : opt.kind == Kind::kDouble ? "=X"
                                       : "=N")
       << "]";
  }
  os << "\n";
  for (const Option& opt : options_) {
    os << "  --" << opt.name;
    if (opt.kind == Kind::kUint && opt.min > 0) {
      os << " (>= " << opt.min << ")";
    }
    os << ": " << opt.help << "\n";
  }
  return os.str();
}

void ReplayCli::register_with(Cli& cli) {
  cli.add_string("trace-out", &trace_out,
                 "dump the workload's frontend stream to this RTRC trace "
                 "file while running (excludes --replay)");
  cli.add_string("replay", &replay,
                 "replay an RTRC trace file instead of instantiating the "
                 "benchmark (--benchmark is then ignored)");
  cli.add_flag("pipeline", &pipeline,
               "decode the replayed trace on a producer thread over the "
               "SPSC ring buffer (requires --replay)");
}

std::string ReplayCli::validate() const {
  if (!trace_out.empty() && !replay.empty()) {
    return "--trace-out and --replay are mutually exclusive";
  }
  if (pipeline && replay.empty()) {
    return "--pipeline requires --replay";
  }
  return "";
}

void ReplayCli::apply(RunConfig& config) const {
  config.trace_out = trace_out;
  config.replay = replay;
  config.pipeline = pipeline;
}

}  // namespace repro::harness
