#include "repro/harness/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "repro/common/assert.hpp"

namespace repro::harness {

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  // POSIX I/O rather than std::ofstream: the durability step needs
  // fsync on the descriptor, which iostreams cannot express.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  REPRO_REQUIRE_MSG(fd >= 0, "cannot open temporary output file");
  const char* data = content.data();
  std::size_t left = content.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ok = false;
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    ::remove(tmp.c_str());
    REPRO_REQUIRE_MSG(false, "short write on output file");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::remove(tmp.c_str());
    REPRO_REQUIRE_MSG(false, "cannot rename output file into place");
  }
}

}  // namespace repro::harness
