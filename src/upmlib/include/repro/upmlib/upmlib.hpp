// UPMlib -- the paper's user-level page migration engine.
//
// Implements both mechanisms of Sections 3.2 / 3.3:
//
//  * Emulated data DISTRIBUTION: after the first outer iteration of an
//    iterative parallel code, `migrate_memory()` scans the hardware
//    reference counters of the registered hot memory areas, applies a
//    competitive criterion (racc_max / lacc > threshold) to every page,
//    and migrates each eligible page to its most-frequent accessor.
//    The engine self-deactivates on the first invocation that performs
//    no migrations, and freezes pages that bounce between two nodes in
//    consecutive invocations (page-level false sharing).
//
//  * Emulated data REDISTRIBUTION (record--replay): during one recording
//    iteration the program calls `record()` at every phase-transition
//    point; `compare_counters()` then isolates each phase's reference
//    trace as the difference of consecutive counter snapshots and
//    derives, per transition, the list of pages whose phase-local trace
//    satisfies the competitive criterion (capped to the n most critical
//    pages, ranked by racc_max / lacc). In later iterations `replay()`
//    performs those migrations at the same transition points and
//    `undo()` restores the pre-phase placement at the iteration
//    boundary.
//
// Everything here runs at user level: the only OS surface used is the
// MemoryControlInterface (MLDs + /proc counters + counter reset), and
// every migration cost is charged to the calling (master) thread via
// the OpenMP runtime -- migrations are on the critical path, which is
// exactly the overhead the paper's Fig. 5 exposes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/os/mmci.hpp"
#include "repro/trace/sink.hpp"
#include "repro/vm/address_space.hpp"

namespace repro::upm {

struct UpmConfig {
  /// Competitive criterion threshold `thr`: a page is eligible when
  /// racc_max / lacc > thr (lacc == 0 counts as maximally eligible).
  double threshold = 2.0;
  /// Cap on migrations per replay transition (the paper's "n most
  /// critical pages, in each iteration" environment knob for the
  /// record--replay mechanism; its Fig. 5 experiments use 20). Applies
  /// only to the replay lists -- the one-time distribution pass always
  /// moves every qualifying page. 0 means unlimited.
  std::size_t max_critical_pages = 0;
  /// A page whose migration would return it to the node it occupied
  /// before its previous migration, in consecutive invocations, is
  /// frozen (ping-pong control).
  bool freeze_bouncing_pages = true;

  /// Extension (paper Section 1.2): replicate read-only pages that are
  /// read from several nodes instead of migrating them. Off by default
  /// (the paper's UPMlib migrates only); see bench/ablation_upmlib.
  bool enable_replication = false;
  /// A clean page qualifies for replication when at least this many
  /// remote nodes each accumulated replication_min_count references.
  std::uint32_t replication_min_nodes = 3;
  std::uint32_t replication_min_count = 64;
  /// Replicas created per page per pass.
  std::uint32_t max_replicas = 3;

  // --- graceful degradation under faults ----------------------------------
  /// Total attempts per migration request when the kernel reports the
  /// page transiently pinned (BUSY): the first attempt plus up to
  /// limit-1 retries, each preceded by a doubling backoff charged to
  /// the master thread. After the last BUSY the engine gives up on the
  /// page for this pass.
  std::uint32_t busy_retry_limit = 3;
  /// First backoff interval; doubles per retry.
  Ns busy_backoff_ns = 2000;
  /// A page whose migration was given up on (retries exhausted) this
  /// many times is frozen like a ping-ponging page.
  std::uint32_t give_up_freeze_limit = 2;
  /// A page must satisfy the competitive criterion in this many
  /// *consecutive* migrate_memory() passes before it is moved. 1 (the
  /// default, and the paper's behaviour) migrates immediately; raise
  /// it when counter reads may be corrupted, so one garbled read
  /// cannot trigger a migration storm.
  std::uint32_t hysteresis_passes = 1;

  /// Reads UPM_THRESHOLD / UPM_CRITICAL_PAGES / UPM_BUSY_RETRIES /
  /// UPM_HYSTERESIS overrides from Env on top of `defaults` (or the
  /// built-in defaults).
  [[nodiscard]] static UpmConfig from_env();
  [[nodiscard]] static UpmConfig from_env(UpmConfig defaults);
};

struct UpmStats {
  /// Migrations performed by each migrate_memory() invocation, in order.
  std::vector<std::uint64_t> migrations_per_invocation;
  /// Distribution migrations per registered hot range, in registration
  /// order (diagnostics: which array moved).
  std::vector<std::uint64_t> migrations_per_range;
  std::uint64_t distribution_migrations = 0;
  std::uint64_t replications = 0;
  Ns replication_cost = 0;
  std::uint64_t replay_migrations = 0;
  std::uint64_t undo_migrations = 0;
  std::uint64_t frozen_pages = 0;
  /// Retries performed after BUSY migration responses (all entry
  /// points); the backoff time is charged into the usual cost fields.
  std::uint64_t busy_retries = 0;
  /// Migration requests abandoned after exhausting the retry budget.
  std::uint64_t give_ups = 0;
  /// Candidates whose migration was deferred by the hysteresis filter
  /// (not yet qualified in enough consecutive passes).
  std::uint64_t hysteresis_deferrals = 0;
  /// Time charged to the master thread by migrate_memory().
  Ns distribution_cost = 0;
  /// Time charged by replay() + undo() (the striped bars of Fig. 5).
  Ns recrep_cost = 0;

  /// Fraction of distribution migrations performed by the first
  /// invocation (paper Table 2, "migrations in the first iteration").
  [[nodiscard]] double first_invocation_fraction() const;
};

/// One entry of the public-API call trace: which UPMlib entry point ran,
/// in program order, with the payload the static protocol checker
/// (repro::analysis) needs. Recording is off by default; see
/// Upmlib::enable_call_trace().
struct UpmCall {
  enum class Kind : std::uint8_t {
    kMemRefCnt,
    kResetCounters,
    kMigrateMemory,
    kRecord,
    kCompareCounters,
    kReplay,
    kUndo,
    kNotifyRebinding,
  };

  Kind kind = Kind::kRecord;
  /// kMemRefCnt: the registered range.
  vm::PageRange range{};
  /// kMigrateMemory: whether the engine was still active when invoked.
  bool was_active = true;
};

/// Entry-point name for diagnostics ("memrefcnt", "record", ...).
[[nodiscard]] const char* upm_call_name(UpmCall::Kind kind);

class Upmlib {
 public:
  /// `mmci` and `runtime` must outlive the library instance.
  Upmlib(os::MemoryControlInterface& mmci, omp::Runtime& runtime,
         UpmConfig config = {});

  // --- upmlib_memrefcnt(addr, size) ---------------------------------------
  /// Registers a hot memory area for reference counting. The compiler
  /// identifies shared arrays read and written in disjoint parallel
  /// constructs; the workload models call this explicitly.
  void memrefcnt(const vm::PageRange& range);

  /// The hot memory areas registered so far, in registration order
  /// (the trace dumper records them so replay can re-register the
  /// exact same ranges).
  [[nodiscard]] const std::vector<vm::PageRange>& hot_ranges() const {
    return hot_ranges_;
  }

  /// Zeroes the counters of every (mapped) hot page. Called between the
  /// cold-start iteration and the first timed iteration so migration
  /// decisions see a clean one-iteration trace.
  void reset_hot_counters();

  // --- upmlib_migrate_memory() ---------------------------------------------
  /// One distribution pass. Returns the number of migrations performed
  /// (0 both when nothing qualified and when already deactivated).
  std::size_t migrate_memory();

  /// False once a migrate_memory() invocation performed no migrations.
  [[nodiscard]] bool active() const { return active_; }

  /// The OS scheduler preempted or rebound threads: the recorded
  /// reference traces no longer describe the running configuration.
  /// Reactivates the engine and forgets the bounce/freeze history so
  /// the next migrate_memory() pass can re-distribute from the new
  /// traces (the mechanism of the authors' companion work on
  /// multiprogrammed systems, which the paper's footnote 3 cites).
  void notify_thread_rebinding();

  // --- record--replay --------------------------------------------------------
  /// Snapshots the counters of all hot pages (one call per phase
  /// transition point during the recording iteration).
  void record();

  /// Derives the per-transition migration lists from the recorded
  /// snapshots. Requires at least two record() calls.
  void compare_counters();

  /// Executes the migration list of the next transition point (cycling
  /// through the lists in recording order).
  void replay();

  /// Migrates every replayed page back to its pre-replay home and
  /// resets the transition cursor (end of iteration).
  void undo();

  [[nodiscard]] const UpmStats& stats() const { return stats_; }
  [[nodiscard]] const UpmConfig& config() const { return config_; }
  [[nodiscard]] std::size_t hot_pages() const { return hot_pages_.size(); }
  [[nodiscard]] std::size_t num_transitions() const {
    return replay_lists_.size();
  }

  // --- call-sequence tracing --------------------------------------------------
  /// Starts recording every public entry-point call into an in-memory
  /// trace (the input of the repro::analysis protocol checker). Cheap:
  /// one small struct per API call, nothing per page.
  void enable_call_trace() { trace_enabled_ = true; }

  /// Attaches the structured event sink (null to detach): every entry
  /// point emits one kUpmCall event (payload: call kind, migrations
  /// performed, cost charged to the master thread) and ping-pong
  /// freezes emit kPageFreeze. record/replay/undo events are the
  /// record--replay phase-transition markers of the trace timeline.
  void set_trace(trace::TraceSink* sink, std::uint16_t lane) {
    sink_ = sink;
    sink_lane_ = lane;
  }
  [[nodiscard]] bool call_trace_enabled() const { return trace_enabled_; }
  [[nodiscard]] const std::vector<UpmCall>& call_trace() const {
    return trace_;
  }

  /// The migration list computed for one transition (tests/inspection).
  struct PlannedMigration {
    VPage page;
    NodeId target;
    double ratio = 0.0;
  };
  [[nodiscard]] const std::vector<PlannedMigration>& replay_list(
      std::size_t transition) const;

  /// Behavioural state digest: activation, invocation count, the
  /// bounce/freeze history, the record--replay lists, the transition
  /// cursor and the undo log. Cumulative statistics and the diagnostic
  /// call trace are excluded (they never feed migration decisions).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct PageHistory {
    /// Invocation index of the page's last distribution migration.
    std::uint64_t last_invocation = 0;
    /// Home before the last migration (for bounce detection).
    NodeId prior_home;
    /// Times the retry budget was exhausted on this page; at
    /// give_up_freeze_limit the page is frozen.
    std::uint32_t give_ups = 0;
    bool has_prior = false;
    bool frozen = false;
  };

  /// Consecutive-qualification tracking for the hysteresis filter
  /// (only populated when config.hysteresis_passes > 1, so the default
  /// configuration's state digest stays iteration-independent).
  struct QualifyStreak {
    std::uint64_t last_invocation = 0;
    std::uint32_t count = 0;
  };

  os::MemoryControlInterface* mmci_;
  omp::Runtime* runtime_;
  UpmConfig config_;
  UpmStats stats_;

  std::vector<VPage> hot_pages_;
  std::vector<vm::PageRange> hot_ranges_;
  bool trace_enabled_ = false;
  std::vector<UpmCall> trace_;
  trace::TraceSink* sink_ = nullptr;
  std::uint16_t sink_lane_ = 0;
  bool active_ = true;
  std::uint64_t invocation_ = 0;

  std::unordered_map<VPage, PageHistory> history_;
  std::unordered_map<VPage, QualifyStreak> streaks_;

  // record--replay state
  std::vector<std::vector<std::vector<std::uint32_t>>> snapshots_;
  std::vector<std::vector<PlannedMigration>> replay_lists_;
  std::size_t replay_cursor_ = 0;
  std::vector<std::pair<VPage, NodeId>> undo_log_;
  std::vector<os::MldHandle> mlds_;

  /// Candidate selection shared by migrate_memory and compare_counters.
  struct Candidate {
    VPage page;
    NodeId target;
    double ratio;
  };
  [[nodiscard]] static std::optional<Candidate> evaluate(
      VPage page, NodeId home, std::span<const std::uint32_t> counts,
      double threshold);

  void trace(UpmCall call);
  /// Emits the kUpmCall event for one completed entry point. `at` is
  /// the master-thread time the call started (kernel sub-events were
  /// stamped there too).
  void emit_call(UpmCall::Kind kind, Ns at, std::uint64_t migrations,
                 Ns cost);
  /// Brings the sink's clock to the master thread's and returns that
  /// time (entry hook of every traced call).
  Ns sync_clock();
  void ensure_mlds();
  /// One migration request with bounded retry-with-backoff on BUSY.
  /// `gave_up` (optional) is set when the retry budget was exhausted;
  /// the returned cost includes the backoff waits.
  Ns do_migrate(VPage page, NodeId target, bool* migrated,
                bool* gave_up = nullptr);
  /// Replicates a clean multi-reader page; returns true if the page is
  /// now replicated (and should not be migrated).
  bool try_replicate(VPage page, Ns* cost);
};

}  // namespace repro::upm
