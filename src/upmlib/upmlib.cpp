#include "repro/upmlib/upmlib.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"
#include "repro/common/env.hpp"
#include "repro/common/log.hpp"

namespace repro::upm {

UpmConfig UpmConfig::from_env() { return from_env(UpmConfig{}); }

UpmConfig UpmConfig::from_env(UpmConfig defaults) {
  const Env& env = Env::global();
  defaults.threshold = env.get_double("UPM_THRESHOLD", defaults.threshold);
  defaults.max_critical_pages = static_cast<std::size_t>(env.get_int(
      "UPM_CRITICAL_PAGES",
      static_cast<std::int64_t>(defaults.max_critical_pages)));
  defaults.freeze_bouncing_pages =
      env.get_bool("UPM_FREEZE", defaults.freeze_bouncing_pages);
  defaults.enable_replication =
      env.get_bool("UPM_REPLICATE", defaults.enable_replication);
  defaults.busy_retry_limit = static_cast<std::uint32_t>(env.get_int(
      "UPM_BUSY_RETRIES", static_cast<std::int64_t>(defaults.busy_retry_limit)));
  defaults.hysteresis_passes = static_cast<std::uint32_t>(env.get_int(
      "UPM_HYSTERESIS", static_cast<std::int64_t>(defaults.hysteresis_passes)));
  return defaults;
}

const char* upm_call_name(UpmCall::Kind kind) {
  switch (kind) {
    case UpmCall::Kind::kMemRefCnt:
      return "memrefcnt";
    case UpmCall::Kind::kResetCounters:
      return "reset_hot_counters";
    case UpmCall::Kind::kMigrateMemory:
      return "migrate_memory";
    case UpmCall::Kind::kRecord:
      return "record";
    case UpmCall::Kind::kCompareCounters:
      return "compare_counters";
    case UpmCall::Kind::kReplay:
      return "replay";
    case UpmCall::Kind::kUndo:
      return "undo";
    case UpmCall::Kind::kNotifyRebinding:
      return "notify_thread_rebinding";
  }
  return "?";
}

double UpmStats::first_invocation_fraction() const {
  if (distribution_migrations == 0 || migrations_per_invocation.empty()) {
    return 1.0;
  }
  return static_cast<double>(migrations_per_invocation.front()) /
         static_cast<double>(distribution_migrations);
}

Upmlib::Upmlib(os::MemoryControlInterface& mmci, omp::Runtime& runtime,
               UpmConfig config)
    : mmci_(&mmci), runtime_(&runtime), config_(config) {
  REPRO_REQUIRE(config.threshold > 0.0);
  REPRO_REQUIRE(config.busy_retry_limit >= 1);
  REPRO_REQUIRE(config.hysteresis_passes >= 1);
}

void Upmlib::trace(UpmCall call) {
  if (trace_enabled_) {
    trace_.push_back(call);
  }
}

Ns Upmlib::sync_clock() {
  const Ns at = runtime_->now();
  if (sink_ != nullptr) {
    sink_->set_now(at);
  }
  return at;
}

void Upmlib::emit_call(UpmCall::Kind kind, Ns at, std::uint64_t migrations,
                       Ns cost) {
  if (sink_ == nullptr) {
    return;
  }
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kUpmCall;
  ev.time = at;
  ev.a = static_cast<std::uint64_t>(kind);
  ev.b = migrations;
  ev.cost = cost;
  sink_->emit(sink_lane_, ev);
}

void Upmlib::memrefcnt(const vm::PageRange& range) {
  REPRO_REQUIRE(range.count >= 1);
  trace({UpmCall::Kind::kMemRefCnt, range, true});
  emit_call(UpmCall::Kind::kMemRefCnt, sync_clock(), range.count, 0);
  hot_ranges_.push_back(range);
  stats_.migrations_per_range.push_back(0);
  hot_pages_.reserve(hot_pages_.size() + range.count);
  for (std::uint64_t i = 0; i < range.count; ++i) {
    hot_pages_.push_back(range.page(i));
  }
}

void Upmlib::reset_hot_counters() {
  trace({UpmCall::Kind::kResetCounters, {}, true});
  emit_call(UpmCall::Kind::kResetCounters, sync_clock(), 0, 0);
  for (VPage page : hot_pages_) {
    if (mmci_->is_mapped(page)) {
      mmci_->reset_counters(page);
      if (config_.enable_replication) {
        mmci_->clear_dirty(page);
      }
    }
  }
}

bool Upmlib::try_replicate(VPage page, Ns* cost) {
  if (mmci_->is_dirty(page) || mmci_->replica_count(page) > 0) {
    return false;
  }
  const auto counts = mmci_->read_counters(page);
  const NodeId home = mmci_->home_of(page);
  // Rank remote reader nodes by reference count.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> readers;  // (count, node)
  for (std::uint32_t n = 0; n < counts.size(); ++n) {
    if (n != home.value() && counts[n] >= config_.replication_min_count) {
      readers.emplace_back(counts[n], n);
    }
  }
  if (readers.size() < config_.replication_min_nodes) {
    return false;
  }
  std::sort(readers.rbegin(), readers.rend());
  ensure_mlds();
  std::uint32_t made = 0;
  for (const auto& [count, node] : readers) {
    if (made == config_.max_replicas) {
      break;
    }
    const auto outcome = mmci_->replicate(page, mlds_[node]);
    if (outcome.replicated) {
      *cost += outcome.cost;
      ++made;
    }
  }
  stats_.replications += made;
  return made > 0;
}

void Upmlib::ensure_mlds() {
  if (mlds_.empty()) {
    mlds_.reserve(mmci_->num_nodes());
    for (std::uint32_t n = 0; n < mmci_->num_nodes(); ++n) {
      mlds_.push_back(mmci_->create_mld(NodeId(n)));
    }
  }
}

std::optional<Upmlib::Candidate> Upmlib::evaluate(
    VPage page, NodeId home, std::span<const std::uint32_t> counts,
    double threshold) {
  const std::uint32_t lacc = counts[home.value()];
  std::uint32_t racc_max = 0;
  std::uint32_t arg = 0;
  for (std::uint32_t n = 0; n < counts.size(); ++n) {
    if (n != home.value() && counts[n] > racc_max) {
      racc_max = counts[n];
      arg = n;
    }
  }
  if (racc_max == 0) {
    return std::nullopt;
  }
  // A page never referenced locally is maximally eligible; avoid the
  // division by zero by treating lacc as 1 in that case.
  const double ratio = static_cast<double>(racc_max) /
                       static_cast<double>(std::max(lacc, 1u));
  if (ratio <= threshold) {
    return std::nullopt;
  }
  return Candidate{page, NodeId(arg), ratio};
}

Ns Upmlib::do_migrate(VPage page, NodeId target, bool* migrated,
                      bool* gave_up) {
  ensure_mlds();
  Ns cost = 0;
  Ns backoff = config_.busy_backoff_ns;
  for (std::uint32_t attempt = 1;; ++attempt) {
    const auto outcome = mmci_->migrate(page, mlds_[target.value()]);
    cost += outcome.cost;
    if (!outcome.busy) {
      *migrated = outcome.migrated;
      return cost;
    }
    if (attempt >= config_.busy_retry_limit) {
      // Retry budget exhausted: leave the page where it is rather than
      // spin on a pinned page (the next pass may still move it).
      ++stats_.give_ups;
      if (gave_up != nullptr) {
        *gave_up = true;
      }
      *migrated = false;
      return cost;
    }
    // Back off before retrying; the wait is master-thread time and
    // doubles per attempt, so a persistently pinned page costs
    // O(limit) bounded time, never a livelock.
    ++stats_.busy_retries;
    cost += backoff;
    backoff *= 2;
  }
}

std::size_t Upmlib::migrate_memory() {
  trace({UpmCall::Kind::kMigrateMemory, {}, active_});
  const Ns at = sync_clock();
  if (!active_) {
    emit_call(UpmCall::Kind::kMigrateMemory, at, 0, 0);
    return 0;
  }
  ++invocation_;

  Ns replication_cost = 0;
  std::vector<Candidate> candidates;
  for (VPage page : hot_pages_) {
    if (!mmci_->is_mapped(page)) {
      continue;
    }
    if (config_.enable_replication && try_replicate(page,
                                                    &replication_cost)) {
      continue;  // replicated pages are not migration candidates
    }
    const NodeId home = mmci_->home_of(page);
    if (auto cand =
            evaluate(page, home, mmci_->read_counters(page),
                     config_.threshold)) {
      candidates.push_back(*cand);
    }
  }
  stats_.replication_cost += replication_cost;
  runtime_->advance(replication_cost);
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.ratio != b.ratio ? a.ratio > b.ratio
                                        : a.page < b.page;
            });

  std::size_t migrations = 0;
  std::size_t deferred = 0;
  Ns cost = 0;
  for (const Candidate& cand : candidates) {
    PageHistory& hist = history_[cand.page];
    if (hist.frozen) {
      continue;
    }
    if (config_.hysteresis_passes > 1) {
      // Hysteresis against corrupted counter reads: one qualifying
      // pass is not enough evidence to move a page; it must qualify in
      // consecutive passes. (Guarded so the default configuration
      // keeps streaks_ empty and its digest iteration-independent.)
      QualifyStreak& streak = streaks_[cand.page];
      streak.count =
          streak.last_invocation + 1 == invocation_ ? streak.count + 1 : 1;
      streak.last_invocation = invocation_;
      if (streak.count < config_.hysteresis_passes) {
        ++deferred;
        ++stats_.hysteresis_deferrals;
        continue;
      }
    }
    if (config_.freeze_bouncing_pages && hist.has_prior &&
        hist.prior_home == cand.target &&
        hist.last_invocation + 1 == invocation_) {
      // The page wants to go back where it came from one invocation
      // ago: page-level false sharing. Freeze it in place.
      hist.frozen = true;
      ++stats_.frozen_pages;
      if (sink_ != nullptr) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::kPageFreeze;
        ev.time = at;
        ev.page = cand.page.value();
        ev.node =
            static_cast<std::int32_t>(mmci_->home_of(cand.page).value());
        ev.src = static_cast<std::int32_t>(cand.target.value());
        sink_->emit(sink_lane_, ev);
      }
      continue;
    }
    const NodeId old_home = mmci_->home_of(cand.page);
    bool migrated = false;
    bool gave_up = false;
    cost += do_migrate(cand.page, cand.target, &migrated, &gave_up);
    if (gave_up) {
      // Exhausted the retry budget on a pinned page. Treat repeated
      // give-ups like ping-ponging: the page is not worth fighting for.
      if (++hist.give_ups >= config_.give_up_freeze_limit &&
          !hist.frozen) {
        hist.frozen = true;
        ++stats_.frozen_pages;
        if (sink_ != nullptr) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kPageFreeze;
          ev.time = at;
          ev.page = cand.page.value();
          ev.node =
              static_cast<std::int32_t>(mmci_->home_of(cand.page).value());
          ev.a = 1;  // frozen by give-up, not by bounce
          sink_->emit(sink_lane_, ev);
        }
      }
      if (!hist.frozen) {
        ++deferred;  // still wants to move; keep the engine alive
      }
      continue;
    }
    if (migrated) {
      hist.prior_home = old_home;
      hist.has_prior = true;
      hist.last_invocation = invocation_;
      ++migrations;
      for (std::size_t i = 0; i < hot_ranges_.size(); ++i) {
        if (hot_ranges_[i].contains(cand.page)) {
          ++stats_.migrations_per_range[i];
          break;
        }
      }
    }
  }

  // Counters are reset after every pass so the next invocation sees a
  // clean per-iteration reference trace (and dirty bits restart, so a
  // page must stay clean for a whole iteration to replicate).
  reset_hot_counters();

  stats_.migrations_per_invocation.push_back(migrations);
  stats_.distribution_migrations += migrations;
  stats_.distribution_cost += cost;
  runtime_->advance(cost);
  emit_call(UpmCall::Kind::kMigrateMemory, at, migrations,
            replication_cost + cost);

  if (migrations == 0 && deferred == 0) {
    // A pass with deferred candidates (hysteresis or give-up) must not
    // deactivate the engine: those pages still want to move and the
    // next pass may complete them.
    active_ = false;
  }
  REPRO_LOG_INFO("upmlib migrate_memory: invocation ", invocation_, ", ",
                 migrations, " migrations, cost ", cost, " ns");
  return migrations;
}

void Upmlib::notify_thread_rebinding() {
  trace({UpmCall::Kind::kNotifyRebinding, {}, true});
  emit_call(UpmCall::Kind::kNotifyRebinding, sync_clock(), 0, 0);
  active_ = true;
  history_.clear();
  streaks_.clear();
  stats_.frozen_pages = 0;
  // Stale per-phase plans would replay migrations toward the wrong
  // processors; drop them (the program must re-record).
  snapshots_.clear();
  replay_lists_.clear();
  undo_log_.clear();
  replay_cursor_ = 0;
  reset_hot_counters();
}

void Upmlib::record() {
  trace({UpmCall::Kind::kRecord, {}, true});
  emit_call(UpmCall::Kind::kRecord, sync_clock(), snapshots_.size() + 1, 0);
  std::vector<std::vector<std::uint32_t>> snap;
  snap.reserve(hot_pages_.size());
  for (VPage page : hot_pages_) {
    if (mmci_->is_mapped(page)) {
      const auto counts = mmci_->read_counters(page);
      snap.emplace_back(counts.begin(), counts.end());
    } else {
      snap.emplace_back(mmci_->num_nodes(), 0u);
    }
  }
  snapshots_.push_back(std::move(snap));
}

void Upmlib::compare_counters() {
  trace({UpmCall::Kind::kCompareCounters, {}, true});
  REPRO_REQUIRE_MSG(snapshots_.size() >= 2,
                    "compare_counters needs at least two record() calls");
  replay_lists_.clear();
  replay_lists_.resize(snapshots_.size() - 1);
  std::vector<std::uint32_t> diff(mmci_->num_nodes(), 0u);

  for (std::size_t j = 1; j < snapshots_.size(); ++j) {
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < hot_pages_.size(); ++i) {
      const VPage page = hot_pages_[i];
      if (!mmci_->is_mapped(page)) {
        continue;
      }
      const auto& before = snapshots_[j - 1][i];
      const auto& after = snapshots_[j][i];
      for (std::size_t n = 0; n < diff.size(); ++n) {
        // Saturated counters clamp the difference at zero.
        diff[n] = after[n] >= before[n] ? after[n] - before[n] : 0u;
      }
      const NodeId home = mmci_->home_of(page);
      if (auto cand = evaluate(page, home, diff, config_.threshold)) {
        candidates.push_back(*cand);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.ratio != b.ratio ? a.ratio > b.ratio
                                          : a.page < b.page;
              });
    if (config_.max_critical_pages > 0 &&
        candidates.size() > config_.max_critical_pages) {
      candidates.resize(config_.max_critical_pages);
    }
    auto& list = replay_lists_[j - 1];
    list.reserve(candidates.size());
    for (const Candidate& cand : candidates) {
      list.push_back(PlannedMigration{cand.page, cand.target, cand.ratio});
    }
  }
  REPRO_LOG_INFO("upmlib compare_counters: ", replay_lists_.size(),
                 " transition(s) planned");
  emit_call(UpmCall::Kind::kCompareCounters, sync_clock(),
            replay_lists_.size(), 0);
}

const std::vector<Upmlib::PlannedMigration>& Upmlib::replay_list(
    std::size_t transition) const {
  REPRO_REQUIRE(transition < replay_lists_.size());
  return replay_lists_[transition];
}

std::uint64_t Upmlib::digest() const {
  StateHash hash;
  hash.mix(active_ ? 1 : 0);
  hash.mix(invocation_);
  hash.mix(hot_pages_.size());
  hash.mix(mlds_.size());
  hash.mix(snapshots_.size());
  // history_ is an unordered map: avalanche each entry, combine
  // commutatively.
  std::uint64_t history = history_.size();
  for (const auto& [page, h] : history_) {
    StateHash entry_hash(avalanche64(page.value()));
    entry_hash.mix(h.last_invocation);
    entry_hash.mix(h.has_prior ? h.prior_home.value() + 1 : 0);
    entry_hash.mix(h.give_ups);
    entry_hash.mix(h.frozen ? 1 : 0);
    history += avalanche64(entry_hash.value());
  }
  hash.mix(history);
  // streaks_ is empty unless hysteresis is on (see migrate_memory).
  std::uint64_t streaks = streaks_.size();
  for (const auto& [page, s] : streaks_) {
    StateHash entry_hash(avalanche64(page.value()));
    entry_hash.mix(s.last_invocation);
    entry_hash.mix(s.count);
    streaks += avalanche64(entry_hash.value());
  }
  hash.mix(streaks);
  hash.mix(replay_lists_.size());
  for (const auto& list : replay_lists_) {
    hash.mix(list.size());
    for (const PlannedMigration& m : list) {
      hash.mix(m.page.value());
      hash.mix(m.target.value());
      hash.mix_double(m.ratio);
    }
  }
  hash.mix(replay_cursor_);
  hash.mix(undo_log_.size());
  for (const auto& [page, home] : undo_log_) {
    hash.mix(page.value());
    hash.mix(home.value());
  }
  return hash.value();
}

void Upmlib::replay() {
  trace({UpmCall::Kind::kReplay, {}, true});
  const Ns at = sync_clock();
  if (replay_lists_.empty()) {
    emit_call(UpmCall::Kind::kReplay, at, 0, 0);
    return;
  }
  const auto& list = replay_lists_[replay_cursor_];
  replay_cursor_ = (replay_cursor_ + 1) % replay_lists_.size();

  Ns cost = 0;
  std::size_t migrations = 0;
  for (const PlannedMigration& pm : list) {
    const NodeId home = mmci_->home_of(pm.page);
    if (home == pm.target) {
      continue;
    }
    const bool already_logged =
        std::any_of(undo_log_.begin(), undo_log_.end(),
                    [&](const auto& e) { return e.first == pm.page; });
    bool migrated = false;
    cost += do_migrate(pm.page, pm.target, &migrated);
    if (migrated) {
      if (!already_logged) {
        undo_log_.emplace_back(pm.page, home);
      }
      ++migrations;
    }
  }
  stats_.replay_migrations += migrations;
  stats_.recrep_cost += cost;
  runtime_->advance(cost);
  emit_call(UpmCall::Kind::kReplay, at, migrations, cost);
}

void Upmlib::undo() {
  trace({UpmCall::Kind::kUndo, {}, true});
  const Ns at = sync_clock();
  Ns cost = 0;
  std::size_t migrations = 0;
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    if (mmci_->home_of(it->first) == it->second) {
      continue;
    }
    bool migrated = false;
    cost += do_migrate(it->first, it->second, &migrated);
    if (migrated) {
      ++migrations;
    }
  }
  undo_log_.clear();
  replay_cursor_ = 0;
  stats_.undo_migrations += migrations;
  stats_.recrep_cost += cost;
  runtime_->advance(cost);
  emit_call(UpmCall::Kind::kUndo, at, migrations, cost);
}

}  // namespace repro::upm
