#include "repro/tracefmt/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

namespace repro::tracefmt {

namespace {

std::string read_string(Cursor& c) {
  const std::uint64_t n = c.varint();
  return c.bytes(n);
}

template <typename T>
T read_struct(const std::uint8_t* data, std::uint64_t size,
              std::uint64_t offset, const char* what) {
  if (offset > size || size - offset < sizeof(T)) {
    throw TraceError(std::string("trace truncated reading ") + what);
  }
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

void check_header(const FileHeader& header) {
  if (header.magic != kFileMagic) {
    throw TraceError("not a trace file (bad magic)");
  }
  if (header.version != kFormatVersion) {
    throw TraceError("unsupported trace version " +
                     std::to_string(header.version));
  }
}

}  // namespace

TraceMeta decode_meta(const std::uint8_t* data, std::size_t size) {
  Cursor c{data, size, 0};
  TraceMeta meta;
  meta.num_procs = static_cast<std::uint32_t>(c.varint());
  meta.num_threads = static_cast<std::uint32_t>(c.varint());
  meta.iterations = static_cast<std::uint32_t>(c.varint());
  meta.page_size = c.varint();
  meta.benchmark = read_string(c);
  meta.source_label = read_string(c);
  const std::uint64_t allocs = c.varint();
  meta.allocations.reserve(allocs);
  for (std::uint64_t i = 0; i < allocs; ++i) {
    TraceAllocation a;
    a.name = read_string(c);
    a.first_page = c.varint();
    a.pages = c.varint();
    meta.allocations.push_back(std::move(a));
  }
  const std::uint64_t hots = c.varint();
  meta.hot_ranges.reserve(hots);
  for (std::uint64_t i = 0; i < hots; ++i) {
    TraceRange r;
    r.first_page = c.varint();
    r.pages = c.varint();
    meta.hot_ranges.push_back(r);
  }
  if (!c.done()) {
    throw TraceError("trace meta has trailing bytes");
  }
  return meta;
}

void decode_payload(const ChunkHeader& header, const std::uint8_t* payload,
                    std::vector<Record>& out) {
  Cursor c{payload, header.payload_bytes, 0};
  std::uint64_t ops = 0;
  for (std::uint64_t r = 0; r < header.record_count; ++r) {
    Record record;
    const std::uint8_t kind = c.u8();
    switch (kind) {
      case static_cast<std::uint8_t>(RecordKind::kDefineName): {
        record.kind = RecordKind::kDefineName;
        record.name_id = static_cast<std::uint32_t>(c.varint());
        record.name = read_string(c);
        break;
      }
      case static_cast<std::uint8_t>(RecordKind::kColdBegin):
        record.kind = RecordKind::kColdBegin;
        break;
      case static_cast<std::uint8_t>(RecordKind::kIterationBegin):
        record.kind = RecordKind::kIterationBegin;
        record.step = static_cast<std::uint32_t>(c.varint());
        break;
      case static_cast<std::uint8_t>(RecordKind::kAdvance):
        record.kind = RecordKind::kAdvance;
        record.ns = c.varint();
        break;
      case static_cast<std::uint8_t>(RecordKind::kRegion): {
        record.kind = RecordKind::kRegion;
        RegionData& region = record.region;
        region.name_id = static_cast<std::uint32_t>(c.varint());
        const auto num_threads = static_cast<std::uint32_t>(c.varint());
        if (num_threads == 0) {
          throw TraceError("region record with zero threads");
        }
        const std::uint8_t binding_kind = c.u8();
        if (binding_kind == 1) {
          region.binding.reserve(num_threads);
          for (std::uint32_t t = 0; t < num_threads; ++t) {
            region.binding.push_back(static_cast<std::uint32_t>(c.varint()));
          }
        } else if (binding_kind != 0) {
          throw TraceError("region record with unknown binding kind");
        }
        region.max_access_lines = static_cast<std::uint32_t>(c.varint());
        region.max_line_begin = static_cast<std::uint32_t>(c.varint());
        region.offsets.reserve(num_threads + 1);
        region.offsets.push_back(0);
        for (std::uint32_t t = 0; t < num_threads; ++t) {
          const auto count = static_cast<std::uint32_t>(c.varint());
          std::uint64_t prev_page = 0;
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint8_t flags = c.u8();
            if ((flags & ~kFlagMask) != 0) {
              throw TraceError("op record with unknown flag bits");
            }
            region.flags.push_back(flags);
            if ((flags & kFlagAccess) != 0) {
              const std::int64_t delta = c.svarint();
              const std::uint64_t page =
                  static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(prev_page) + delta);
              region.pages.push_back(page);
              prev_page = page;
              region.lines.push_back(static_cast<std::uint32_t>(c.varint()));
              region.line_begin.push_back(
                  static_cast<std::uint32_t>(c.varint()));
            } else {
              region.pages.push_back(0);
              region.lines.push_back(0);
              region.line_begin.push_back(0);
            }
            region.compute.push_back(c.varint());
          }
          region.offsets.push_back(region.offsets.back() + count);
        }
        ops += region.size();
        break;
      }
      default:
        throw TraceError("unknown record kind " + std::to_string(kind));
    }
    out.push_back(std::move(record));
  }
  if (!c.done()) {
    throw TraceError("chunk payload has trailing bytes");
  }
  if (ops != header.op_count) {
    throw TraceError("chunk op count mismatch (header says " +
                     std::to_string(header.op_count) + ", decoded " +
                     std::to_string(ops) + ")");
  }
}

TraceReader::TraceReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    throw TraceError("cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw TraceError("cannot stat " + path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      map_ = map;
      data_ = static_cast<const std::uint8_t*>(map);
    }
  }
  if (data_ == nullptr) {
    // mmap unavailable (exotic filesystem, zero-length file): fall
    // back to an in-memory copy so the reader still works everywhere.
    std::ifstream in(path, std::ios::binary);
    fallback_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    data_ = fallback_.data();
    size_ = fallback_.size();
  }
  ::close(fd);

  const auto header = read_struct<FileHeader>(data_, size_, 0, "header");
  check_header(header);
  const std::uint64_t meta_offset = sizeof(FileHeader);
  if (size_ - meta_offset < header.meta_bytes) {
    throw TraceError("trace truncated reading metadata");
  }
  if (fnv1a(data_ + meta_offset, header.meta_bytes) != header.meta_digest) {
    throw TraceError("trace metadata digest mismatch");
  }
  meta_ = decode_meta(data_ + meta_offset, header.meta_bytes);

  if (size_ < sizeof(FileFooter)) {
    throw TraceError("trace truncated (no footer)");
  }
  const auto footer = read_struct<FileFooter>(
      data_, size_, size_ - sizeof(FileFooter), "footer");
  if (footer.magic != kFooterMagic || footer.version != kFormatVersion) {
    throw TraceError("trace footer missing or corrupt (truncated file?)");
  }
  total_records_ = footer.total_records;
  total_ops_ = footer.total_ops;

  const auto table_magic = read_struct<std::uint32_t>(
      data_, size_, footer.chunk_table_offset, "chunk table");
  if (table_magic != kTableMagic) {
    throw TraceError("chunk table marker missing");
  }
  Cursor table{data_, size_ - sizeof(FileFooter),
               footer.chunk_table_offset + sizeof(kTableMagic)};
  chunks_.reserve(footer.chunk_count);
  for (std::uint64_t i = 0; i < footer.chunk_count; ++i) {
    ChunkInfo info;
    info.offset = table.varint();
    info.payload_bytes = table.varint();
    info.record_count = table.varint();
    info.op_count = table.varint();
    const std::string digest = table.bytes(sizeof(std::uint64_t));
    std::memcpy(&info.payload_digest, digest.data(), sizeof(std::uint64_t));
    if (info.offset + sizeof(ChunkHeader) + info.payload_bytes > size_) {
      throw TraceError("chunk " + std::to_string(i) + " extends past EOF");
    }
    chunks_.push_back(info);
  }

  Cursor names{data_, size_ - sizeof(FileFooter), footer.name_table_offset};
  const std::uint64_t name_count = names.varint();
  names_.reserve(name_count);
  for (std::uint64_t i = 0; i < name_count; ++i) {
    names_.push_back(read_string(names));
  }
}

TraceReader::~TraceReader() {
  if (map_ != nullptr) {
    ::munmap(map_, size_);
  }
}

void TraceReader::decode_chunk(std::size_t i, std::vector<Record>& out) const {
  out.clear();
  const ChunkInfo& info = chunks_.at(i);
  const auto header =
      read_struct<ChunkHeader>(data_, size_, info.offset, "chunk header");
  if (header.magic != kChunkMagic) {
    throw TraceError("chunk " + std::to_string(i) + " has bad magic");
  }
  if (header.payload_bytes != info.payload_bytes ||
      header.record_count != info.record_count ||
      header.op_count != info.op_count ||
      header.payload_digest != info.payload_digest) {
    throw TraceError("chunk " + std::to_string(i) +
                     " header disagrees with chunk table");
  }
  const std::uint8_t* payload = data_ + info.offset + sizeof(ChunkHeader);
  if (fnv1a(payload, header.payload_bytes) != header.payload_digest) {
    throw TraceError("chunk " + std::to_string(i) + " digest mismatch");
  }
  decode_payload(header, payload, out);
}

StreamReader::StreamReader(std::istream& in) : in_(&in) {
  FileHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (in.gcount() != sizeof(header)) {
    throw TraceError("stream truncated reading header");
  }
  check_header(header);
  std::vector<std::uint8_t> meta_bytes(header.meta_bytes);
  in.read(reinterpret_cast<char*>(meta_bytes.data()),
          static_cast<std::streamsize>(meta_bytes.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != header.meta_bytes) {
    throw TraceError("stream truncated reading metadata");
  }
  if (fnv1a(meta_bytes.data(), meta_bytes.size()) != header.meta_digest) {
    throw TraceError("stream metadata digest mismatch");
  }
  meta_ = decode_meta(meta_bytes.data(), meta_bytes.size());
}

bool StreamReader::next_chunk(std::vector<Record>& out) {
  out.clear();
  if (done_) {
    return false;
  }
  std::uint32_t magic = 0;
  in_->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in_->gcount() != sizeof(magic)) {
    throw TraceError("stream truncated reading chunk magic");
  }
  if (magic == kTableMagic) {
    // End of the record section; the chunk/name tables and footer that
    // follow exist for seekable readers only.
    done_ = true;
    return false;
  }
  if (magic != kChunkMagic) {
    throw TraceError("stream chunk has bad magic");
  }
  ChunkHeader header;
  header.magic = magic;
  in_->read(reinterpret_cast<char*>(&header) + sizeof(magic),
            sizeof(header) - sizeof(magic));
  if (static_cast<std::size_t>(in_->gcount()) !=
      sizeof(header) - sizeof(magic)) {
    throw TraceError("stream truncated reading chunk header");
  }
  std::vector<std::uint8_t> payload(header.payload_bytes);
  in_->read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (static_cast<std::uint64_t>(in_->gcount()) != header.payload_bytes) {
    throw TraceError("stream truncated reading chunk payload");
  }
  if (fnv1a(payload.data(), payload.size()) != header.payload_digest) {
    throw TraceError("stream chunk digest mismatch");
  }
  decode_payload(header, payload.data(), out);
  for (const Record& r : out) {
    if (r.kind == RecordKind::kDefineName) {
      if (r.name_id != names_.size()) {
        throw TraceError("stream name ids out of order");
      }
      names_.push_back(r.name);
    }
  }
  return true;
}

}  // namespace repro::tracefmt
