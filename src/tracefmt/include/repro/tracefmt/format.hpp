// The RTRC binary trace format (version 1).
//
// A trace file is the serialized frontend of one benchmark cell: the
// exact sequence of compiled parallel regions, thread bindings and
// sequential-time advances the workload dispatched, with enough
// metadata (array allocations, hot ranges, team geometry) to rebuild
// the address space and replay the stream through any timing backend
// configuration. Layout:
//
//   FileHeader | meta payload | Chunk* | kTableMagic | chunk table
//              | name table | FileFooter
//
// Every multi-byte integer is little-endian; variable-length integers
// are LEB128 (`varint`), signed deltas zigzag-coded (`svarint`). Each
// chunk is self-contained -- delta state resets at record boundaries
// and records never span chunks -- carries its own FNV-1a digest, and
// is addressable through the footer's chunk table, so readers can mmap
// the file and decode any chunk without touching the others, while a
// pipe consumer can stream header + chunks sequentially (inline
// kDefineName records precede every first use of a region name).
// The full spec lives in DESIGN.md §16.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace repro::tracefmt {

/// Any structural problem with a trace file: bad magic, unsupported
/// version, truncation, digest mismatch, malformed varint, record
/// overrun. Reported with the file offset or chunk index where known.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kFileMagic = 0x43525452;   // "RTRC"
inline constexpr std::uint32_t kChunkMagic = 0x4b435452;  // "RTCK"
inline constexpr std::uint32_t kTableMagic = 0x42545452;  // "RTTB"
inline constexpr std::uint32_t kFooterMagic = 0x4e455452; // "RTEN"
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed-size file header (immediately followed by `meta_bytes` of
/// varint-encoded metadata whose FNV-1a digest is `meta_digest`).
struct FileHeader {
  std::uint32_t magic = kFileMagic;
  std::uint32_t version = kFormatVersion;
  std::uint64_t meta_bytes = 0;
  std::uint64_t meta_digest = 0;
  std::uint64_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 32);

/// Fixed-size header preceding every chunk payload.
struct ChunkHeader {
  std::uint32_t magic = kChunkMagic;
  std::uint32_t reserved = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t record_count = 0;
  std::uint64_t op_count = 0;
  std::uint64_t payload_digest = 0;  // FNV-1a over the payload bytes
};
static_assert(sizeof(ChunkHeader) == 40);

/// Fixed-size footer at EOF; readers seek here for random access.
struct FileFooter {
  std::uint32_t magic = kFooterMagic;
  std::uint32_t version = kFormatVersion;
  std::uint64_t chunk_count = 0;
  std::uint64_t chunk_table_offset = 0;  // of kTableMagic
  std::uint64_t name_table_offset = 0;
  std::uint64_t total_records = 0;
  std::uint64_t total_ops = 0;
};
static_assert(sizeof(FileFooter) == 48);

/// One row of the footer's chunk table.
struct ChunkInfo {
  std::uint64_t offset = 0;  // file offset of the ChunkHeader
  std::uint64_t payload_bytes = 0;
  std::uint64_t record_count = 0;
  std::uint64_t op_count = 0;
  std::uint64_t payload_digest = 0;
};

/// A named array allocation of the dumped address space (replay
/// re-allocates these in order, reproducing the page numbering).
struct TraceAllocation {
  std::string name;
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
};

/// A hot memory area the workload registered with UPMlib.
struct TraceRange {
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
};

/// Trace-wide metadata: what was dumped and the machine-independent
/// preconditions replay must re-establish.
struct TraceMeta {
  std::string benchmark;     // workload name, e.g. "CG"
  std::string source_label;  // config label of the dumping run
  std::uint32_t num_procs = 0;
  std::uint32_t num_threads = 0;
  std::uint32_t iterations = 0;  // recorded timed iterations
  std::uint64_t page_size = 0;
  std::vector<TraceAllocation> allocations;
  std::vector<TraceRange> hot_ranges;
};

/// Record kinds within a chunk payload.
enum class RecordKind : std::uint8_t {
  kDefineName = 0,      // varint id, varint length, bytes
  kColdBegin = 1,       // (no payload)
  kIterationBegin = 2,  // varint step
  kRegion = 3,          // see RegionData
  kAdvance = 4,         // varint nanoseconds
};

/// Op flag bits, mirroring memsys::kOp* (the on-disk format must not
/// depend on memsys headers; equality is asserted where both are
/// visible, in sim/trace_recorder.cpp).
inline constexpr std::uint8_t kFlagAccess = 1U << 0U;
inline constexpr std::uint8_t kFlagWrite = 1U << 1U;
inline constexpr std::uint8_t kFlagStream = 1U << 2U;
inline constexpr std::uint8_t kFlagPositioned = 1U << 3U;
inline constexpr std::uint8_t kFlagMask =
    kFlagAccess | kFlagWrite | kFlagStream | kFlagPositioned;

/// Borrowed structure-of-arrays view of one region's compiled op
/// columns (the writer's input; pointers are not owned).
struct RegionColumns {
  const std::uint64_t* pages = nullptr;
  const std::uint64_t* compute = nullptr;
  const std::uint32_t* lines = nullptr;
  const std::uint32_t* line_begin = nullptr;
  const std::uint8_t* flags = nullptr;
  const std::uint32_t* offsets = nullptr;  // num_threads + 1 entries
  std::uint32_t num_threads = 0;
  std::uint32_t size = 0;
  std::uint32_t max_access_lines = 0;
  std::uint32_t max_line_begin = 0;
};

/// Decoded kRegion payload: owned columns in the same layout.
struct RegionData {
  std::uint32_t name_id = 0;
  std::vector<std::uint32_t> binding;  // empty = identity binding
  std::uint32_t max_access_lines = 0;
  std::uint32_t max_line_begin = 0;
  std::vector<std::uint64_t> pages;
  std::vector<std::uint64_t> compute;
  std::vector<std::uint32_t> lines;
  std::vector<std::uint32_t> line_begin;
  std::vector<std::uint8_t> flags;
  std::vector<std::uint32_t> offsets;  // num_threads + 1 entries

  [[nodiscard]] std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(offsets.empty() ? 0
                                                      : offsets.size() - 1);
  }
  [[nodiscard]] std::uint32_t size() const {
    return offsets.empty() ? 0 : offsets.back();
  }
};

/// One decoded record.
struct Record {
  RecordKind kind = RecordKind::kColdBegin;
  std::uint32_t step = 0;      // kIterationBegin
  std::uint64_t ns = 0;        // kAdvance
  std::uint32_t name_id = 0;   // kDefineName
  std::string name;            // kDefineName
  RegionData region;           // kRegion
};

// ---------------------------------------------------------------------------
// FNV-1a 64 over raw bytes (same constants as common/hash.hpp, applied
// per byte -- the digest of record these files carry on disk).

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

[[nodiscard]] inline std::uint64_t fnv1a(const std::uint8_t* data,
                                         std::size_t size,
                                         std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

// ---------------------------------------------------------------------------
// LEB128 varints + zigzag. Append-style encoders, bounds-checked
// cursor decoders (a malformed stream throws TraceError rather than
// reading past the buffer).

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80U);
    v >>= 7U;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1U) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1U) ^
         -static_cast<std::int64_t>(v & 1U);
}

inline void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Bounds-checked read cursor over a byte buffer.
struct Cursor {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t at = 0;

  [[nodiscard]] bool done() const { return at >= size; }

  [[nodiscard]] std::uint8_t u8() {
    if (at >= size) {
      throw TraceError("trace payload truncated (u8 past end)");
    }
    return data[at++];
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (std::uint32_t shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
      if ((byte & 0x80U) == 0) {
        return v;
      }
    }
    throw TraceError("trace payload malformed (varint over 64 bits)");
  }

  [[nodiscard]] std::int64_t svarint() { return unzigzag(varint()); }

  [[nodiscard]] std::string bytes(std::size_t n) {
    if (size - at < n) {
      throw TraceError("trace payload truncated (string past end)");
    }
    std::string s(reinterpret_cast<const char*>(data + at), n);
    at += n;
    return s;
  }
};

}  // namespace repro::tracefmt
