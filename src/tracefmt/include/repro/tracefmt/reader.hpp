// Trace readers.
//
// TraceReader mmaps a finished file, validates header/footer, and
// decodes any chunk independently (digest-verified). StreamReader
// decodes the same format sequentially from any std::istream -- no
// seeking, so it works on pipes; region names resolve through the
// inline kDefineName records instead of the footer's table.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "repro/tracefmt/format.hpp"

namespace repro::tracefmt {

class TraceReader {
 public:
  /// Maps `path` read-only and validates header, meta digest, footer
  /// and chunk table. Throws TraceError on any structural problem.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] const ChunkInfo& chunk(std::size_t i) const {
    return chunks_.at(i);
  }
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }
  [[nodiscard]] std::uint64_t total_ops() const { return total_ops_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return size_; }

  [[nodiscard]] std::size_t num_names() const { return names_.size(); }
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return names_.at(id);
  }

  /// Decodes chunk `i` into `out` (cleared first). Verifies the
  /// payload digest against the chunk header before decoding; a
  /// mismatch or malformed payload throws TraceError.
  void decode_chunk(std::size_t i, std::vector<Record>& out) const;

 private:
  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  void* map_ = nullptr;          // non-null when mmapped
  std::vector<std::uint8_t> fallback_;  // used when mmap failed
  TraceMeta meta_;
  std::vector<ChunkInfo> chunks_;
  std::vector<std::string> names_;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_ops_ = 0;
};

/// Sequential decoder over an unseekable stream (pipes). Reads the
/// header + meta at construction; next_chunk() yields chunks in order
/// until the chunk-table marker terminates the record section.
class StreamReader {
 public:
  explicit StreamReader(std::istream& in);

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }

  /// Decodes the next chunk into `out` (cleared first); false once the
  /// record section ends. Names resolve via name() as they stream in.
  bool next_chunk(std::vector<Record>& out);

  /// Names defined by the records decoded so far.
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return names_.at(id);
  }

 private:
  std::istream* in_;
  TraceMeta meta_;
  std::vector<std::string> names_;
  bool done_ = false;
};

/// Shared payload decoder (used by both readers and fuzz tests):
/// decodes exactly `header.record_count` records from `payload`,
/// appending to `out` and cross-checking the op count.
void decode_payload(const ChunkHeader& header, const std::uint8_t* payload,
                    std::vector<Record>& out);

/// Decodes a meta payload (header-validated bytes).
[[nodiscard]] TraceMeta decode_meta(const std::uint8_t* data,
                                    std::size_t size);

}  // namespace repro::tracefmt
