// Streaming trace writer: encodes records into chunked payloads and
// lands the finished file atomically (tmp + rename, like the harness's
// atomic_write_file -- a killed dump leaves no partial trace).
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "repro/tracefmt/format.hpp"

namespace repro::tracefmt {

/// Aggregate counters of a finished dump (logged by the tracer and
/// reported by bench/replay_sweep).
struct WriterStats {
  std::uint64_t records = 0;
  std::uint64_t ops = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;  // final file size
  std::uint64_t regions = 0;
};

class TraceWriter {
 public:
  /// Opens `path` for writing (via `path + ".tmp"`) and writes the
  /// header + metadata immediately. `chunk_target_bytes` bounds the
  /// payload size at which an open chunk is cut (records never split,
  /// so a single giant region may exceed it).
  TraceWriter(std::string path, const TraceMeta& meta,
              std::size_t chunk_target_bytes = 256 * 1024);

  /// Abandons the temporary file when finish() was never reached.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void cold_begin();
  void iteration_begin(std::uint32_t step);
  /// Appends one region record. `binding` is thread-to-processor
  /// (empty = identity); `columns` is a borrowed view of the compiled
  /// program. Page addresses are delta-encoded within each thread's
  /// stream; the delta baseline resets per record, keeping chunks
  /// independently decodable.
  void region(const std::string& name, std::span<const std::uint32_t> binding,
              const RegionColumns& columns);
  void advance(std::uint64_t ns);

  /// Flushes the open chunk, writes chunk table + name table + footer,
  /// closes and renames the temporary into place. Must be called
  /// exactly once; any stream failure throws TraceError.
  WriterStats finish();

 private:
  void begin_record();
  void end_record(std::uint64_t ops_in_record);
  void flush_chunk();
  [[nodiscard]] std::uint32_t intern(const std::string& name);

  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  std::size_t chunk_target_;
  std::uint64_t offset_ = 0;  // bytes written so far
  std::vector<std::uint8_t> payload_;
  std::uint64_t chunk_records_ = 0;
  std::uint64_t chunk_ops_ = 0;
  std::vector<ChunkInfo> chunks_;
  std::vector<std::string> names_;  // id = index
  WriterStats stats_;
  bool finished_ = false;
};

}  // namespace repro::tracefmt
