#include "repro/tracefmt/writer.hpp"

#include <cstdio>
#include <cstring>

#include "repro/common/assert.hpp"

namespace repro::tracefmt {

namespace {

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> encode_meta(const TraceMeta& meta) {
  std::vector<std::uint8_t> out;
  put_varint(out, meta.num_procs);
  put_varint(out, meta.num_threads);
  put_varint(out, meta.iterations);
  put_varint(out, meta.page_size);
  put_string(out, meta.benchmark);
  put_string(out, meta.source_label);
  put_varint(out, meta.allocations.size());
  for (const TraceAllocation& a : meta.allocations) {
    put_string(out, a.name);
    put_varint(out, a.first_page);
    put_varint(out, a.pages);
  }
  put_varint(out, meta.hot_ranges.size());
  for (const TraceRange& r : meta.hot_ranges) {
    put_varint(out, r.first_page);
    put_varint(out, r.pages);
  }
  return out;
}

}  // namespace

TraceWriter::TraceWriter(std::string path, const TraceMeta& meta,
                         std::size_t chunk_target_bytes)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      chunk_target_(chunk_target_bytes) {
  REPRO_REQUIRE(chunk_target_ >= 1);
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_.good()) {
    throw TraceError("cannot open " + tmp_path_ + " for writing");
  }
  const std::vector<std::uint8_t> meta_bytes = encode_meta(meta);
  FileHeader header;
  header.meta_bytes = meta_bytes.size();
  header.meta_digest = fnv1a(meta_bytes.data(), meta_bytes.size());
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.write(reinterpret_cast<const char*>(meta_bytes.data()),
             static_cast<std::streamsize>(meta_bytes.size()));
  offset_ = sizeof(header) + meta_bytes.size();
}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

std::uint32_t TraceWriter::intern(const std::string& name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<std::uint32_t>(i);
    }
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  // Inline definition before first use, so a sequential (pipe) reader
  // can resolve names without the footer's table.
  payload_.push_back(static_cast<std::uint8_t>(RecordKind::kDefineName));
  put_varint(payload_, id);
  put_string(payload_, name);
  ++chunk_records_;
  ++stats_.records;
  return id;
}

void TraceWriter::end_record(std::uint64_t ops_in_record) {
  ++chunk_records_;
  ++stats_.records;
  chunk_ops_ += ops_in_record;
  stats_.ops += ops_in_record;
  if (payload_.size() >= chunk_target_) {
    flush_chunk();
  }
}

void TraceWriter::cold_begin() {
  payload_.push_back(static_cast<std::uint8_t>(RecordKind::kColdBegin));
  end_record(0);
}

void TraceWriter::iteration_begin(std::uint32_t step) {
  payload_.push_back(static_cast<std::uint8_t>(RecordKind::kIterationBegin));
  put_varint(payload_, step);
  end_record(0);
}

void TraceWriter::advance(std::uint64_t ns) {
  payload_.push_back(static_cast<std::uint8_t>(RecordKind::kAdvance));
  put_varint(payload_, ns);
  end_record(0);
}

void TraceWriter::region(const std::string& name,
                         std::span<const std::uint32_t> binding,
                         const RegionColumns& columns) {
  REPRO_REQUIRE(columns.offsets != nullptr && columns.num_threads >= 1);
  REPRO_REQUIRE(binding.empty() || binding.size() == columns.num_threads);
  const std::uint32_t name_id = intern(name);
  payload_.push_back(static_cast<std::uint8_t>(RecordKind::kRegion));
  put_varint(payload_, name_id);
  put_varint(payload_, columns.num_threads);
  bool identity = true;
  for (std::size_t t = 0; t < binding.size(); ++t) {
    identity = identity && binding[t] == t;
  }
  if (identity) {
    payload_.push_back(0);
  } else {
    payload_.push_back(1);
    for (const std::uint32_t proc : binding) {
      put_varint(payload_, proc);
    }
  }
  put_varint(payload_, columns.max_access_lines);
  put_varint(payload_, columns.max_line_begin);
  for (std::uint32_t t = 0; t < columns.num_threads; ++t) {
    const std::uint32_t begin = columns.offsets[t];
    const std::uint32_t end = columns.offsets[t + 1];
    put_varint(payload_, end - begin);
    // Per-thread delta baseline, reset every record: chunks stay
    // independently decodable and the first op costs one extra byte at
    // most per thread.
    std::uint64_t prev_page = 0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint8_t flags = columns.flags[i];
      REPRO_REQUIRE((flags & ~kFlagMask) == 0);
      payload_.push_back(flags);
      if ((flags & kFlagAccess) != 0) {
        put_svarint(payload_, static_cast<std::int64_t>(columns.pages[i]) -
                                  static_cast<std::int64_t>(prev_page));
        prev_page = columns.pages[i];
        put_varint(payload_, columns.lines[i]);
        put_varint(payload_, columns.line_begin[i]);
      }
      put_varint(payload_, columns.compute[i]);
    }
  }
  ++stats_.regions;
  end_record(columns.size);
}

void TraceWriter::flush_chunk() {
  if (chunk_records_ == 0) {
    return;
  }
  ChunkHeader header;
  header.payload_bytes = payload_.size();
  header.record_count = chunk_records_;
  header.op_count = chunk_ops_;
  header.payload_digest = fnv1a(payload_.data(), payload_.size());
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  chunks_.push_back(ChunkInfo{offset_, header.payload_bytes,
                              header.record_count, header.op_count,
                              header.payload_digest});
  offset_ += sizeof(header) + payload_.size();
  payload_.clear();
  chunk_records_ = 0;
  chunk_ops_ = 0;
  ++stats_.chunks;
}

WriterStats TraceWriter::finish() {
  REPRO_REQUIRE(!finished_);
  flush_chunk();
  const std::uint64_t table_offset = offset_;
  out_.write(reinterpret_cast<const char*>(&kTableMagic),
             sizeof(kTableMagic));
  std::vector<std::uint8_t> table;
  for (const ChunkInfo& c : chunks_) {
    put_varint(table, c.offset);
    put_varint(table, c.payload_bytes);
    put_varint(table, c.record_count);
    put_varint(table, c.op_count);
    // Digests are not varint-compressible (high entropy); fixed width.
    table.resize(table.size() + sizeof(std::uint64_t));
    std::memcpy(table.data() + table.size() - sizeof(std::uint64_t),
                &c.payload_digest, sizeof(std::uint64_t));
  }
  out_.write(reinterpret_cast<const char*>(table.data()),
             static_cast<std::streamsize>(table.size()));
  const std::uint64_t names_offset =
      table_offset + sizeof(kTableMagic) + table.size();
  std::vector<std::uint8_t> names;
  put_varint(names, names_.size());
  for (const std::string& name : names_) {
    put_string(names, name);
  }
  out_.write(reinterpret_cast<const char*>(names.data()),
             static_cast<std::streamsize>(names.size()));

  FileFooter footer;
  footer.chunk_count = chunks_.size();
  footer.chunk_table_offset = table_offset;
  footer.name_table_offset = names_offset;
  footer.total_records = stats_.records;
  footer.total_ops = stats_.ops;
  out_.write(reinterpret_cast<const char*>(&footer), sizeof(footer));
  out_.flush();
  if (!out_.good()) {
    throw TraceError("write failure on " + tmp_path_);
  }
  out_.close();
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw TraceError("cannot rename " + tmp_path_ + " to " + path_);
  }
  finished_ = true;
  stats_.bytes = names_offset + names.size() + sizeof(footer);
  return stats_;
}

}  // namespace repro::tracefmt
