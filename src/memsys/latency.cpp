#include "repro/memsys/latency.hpp"

#include "repro/common/assert.hpp"

namespace repro::memsys {

LatencyModel::LatencyModel(const MachineConfig& config,
                           const topo::Topology& topology)
    : topology_(&topology),
      ladder_(config.mem_latency_ns),
      extra_hop_(config.extra_hop_latency_ns),
      l1_(config.l1_latency_ns),
      l2_(config.l2_latency_ns) {
  REPRO_REQUIRE(!ladder_.empty());
}

double LatencyModel::latency_for_hops(unsigned hops) const {
  if (hops < ladder_.size()) {
    return ladder_[hops];
  }
  const auto extra = static_cast<double>(hops - (ladder_.size() - 1));
  return ladder_.back() + extra * extra_hop_;
}

double LatencyModel::memory_latency(NodeId from, NodeId to) const {
  return latency_for_hops(topology_->hops(from, to));
}

double LatencyModel::worst_remote_to_local_ratio() const {
  return latency_for_hops(topology_->max_hops()) / ladder_.front();
}

}  // namespace repro::memsys
