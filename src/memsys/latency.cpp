#include "repro/memsys/latency.hpp"

#include "repro/common/assert.hpp"

namespace repro::memsys {

LatencyModel::LatencyModel(const MachineConfig& config,
                           const topo::Topology& topology)
    : topology_(&topology),
      ladder_(config.mem_latency_ns),
      extra_hop_(config.extra_hop_latency_ns),
      l1_(config.l1_latency_ns),
      l2_(config.l2_latency_ns),
      num_nodes_(topology.num_nodes()) {
  REPRO_REQUIRE(!ladder_.empty());
  pair_latency_.resize(num_nodes_ * num_nodes_);
  pair_stream_line_.resize(num_nodes_ * num_nodes_);
  for (std::size_t from = 0; from < num_nodes_; ++from) {
    for (std::size_t to = 0; to < num_nodes_; ++to) {
      const double lat = latency_for_hops(
          topology.hops(NodeId(static_cast<std::uint32_t>(from)),
                        NodeId(static_cast<std::uint32_t>(to))));
      pair_latency_[from * num_nodes_ + to] = lat;
      pair_stream_line_[from * num_nodes_ + to] =
          config.mem_occupancy_ns +
          (lat - ladder_.front()) / config.stream_hide_factor;
    }
  }
}

double LatencyModel::latency_for_hops(unsigned hops) const {
  if (hops < ladder_.size()) {
    return ladder_[hops];
  }
  const auto extra = static_cast<double>(hops - (ladder_.size() - 1));
  return ladder_.back() + extra * extra_hop_;
}

double LatencyModel::worst_remote_to_local_ratio() const {
  return latency_for_hops(topology_->max_hops()) / ladder_.front();
}

}  // namespace repro::memsys
