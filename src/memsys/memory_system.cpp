#include "repro/memsys/memory_system.hpp"

#include <cmath>

#include "repro/common/assert.hpp"

namespace repro::memsys {

double ProcStats::remote_fraction() const {
  const std::uint64_t total = miss_lines();
  return total == 0
             ? 0.0
             : static_cast<double>(remote_miss_lines) /
                   static_cast<double>(total);
}

MemorySystem::MemorySystem(const MachineConfig& config,
                           const topo::Topology& topology,
                           MemoryBackend& backend)
    : config_(config),
      topology_(&topology),
      backend_(&backend),
      latency_(config_, topology),
      directory_(config_.num_procs()) {
  config_.validate();
  REPRO_REQUIRE(topology.num_nodes() == config_.num_nodes);
  caches_.reserve(config_.num_procs());
  for (std::size_t p = 0; p < config_.num_procs(); ++p) {
    caches_.emplace_back(config_.cache_capacity_pages());
  }
  if (config_.tlb_entries > 0) {
    tlbs_.reserve(config_.num_procs());
    for (std::size_t p = 0; p < config_.num_procs(); ++p) {
      tlbs_.emplace_back(config_.tlb_entries);
    }
  }
  queues_.reserve(config_.num_nodes);
  for (std::size_t n = 0; n < config_.num_nodes; ++n) {
    queues_.emplace_back(config_.mem_occupancy_ns);
  }
  stats_.resize(config_.num_procs());
}

NodeId MemorySystem::node_of(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  return NodeId(proc.value() / static_cast<std::uint32_t>(
                                   config_.procs_per_node));
}

MemorySystem::AccessResult MemorySystem::access(Ns now, const Access& a) {
  REPRO_REQUIRE(a.proc.value() < config_.num_procs());
  REPRO_REQUIRE(a.lines >= 1 && a.lines <= config_.lines_per_page());

  AccessResult out;
  double tlb_penalty = 0.0;
  if (!tlbs_.empty() && !tlbs_[a.proc.value()].touch(a.page).hit) {
    tlb_penalty = config_.tlb_refill_ns;
    ++stats_[a.proc.value()].tlb_misses;
  }
  PageCache& cache = caches_[a.proc.value()];
  const auto touch = cache.touch(a.page);
  if (touch.evicted) {
    directory_.on_evict(a.proc, *touch.evicted);
  }

  // Coherence bookkeeping; a write invalidates every other cached copy
  // (page-grain upgrade), which is how page-level false sharing shows up.
  const Directory::AccessOutcome coherence =
      a.write ? directory_.on_write(a.proc, a.page)
              : directory_.on_read(a.proc, a.page);
  if (coherence.invalidate_mask != 0) {
    for (std::uint32_t p = 0; p < config_.num_procs(); ++p) {
      if ((coherence.invalidate_mask >> p) & 1u) {
        caches_[p].invalidate(VPage(a.page));
      }
    }
    out.invalidations = coherence.invalidations();
    stats_[a.proc.value()].invalidations_sent += out.invalidations;
  }

  double elapsed = tlb_penalty + static_cast<double>(out.invalidations) *
                                     config_.invalidation_ns;
  if (touch.hit) {
    elapsed += static_cast<double>(a.lines) * config_.cache_hit_ns;
    stats_[a.proc.value()].hit_lines += a.lines;
    if (a.write) {
      elapsed += static_cast<double>(backend_->on_write_hit(a.proc, a.page));
    }
  } else {
    out.misses = a.lines;
    const HomeInfo home = backend_->resolve(a.proc, a.page, a.write);
    out.home = home.node;
    const NodeId from = node_of(a.proc);
    out.remote = from != home.node;

    const MemQueue::Service svc =
        queues_[home.node.value()].serve(now, a.lines);
    out.queue_wait = svc.wait;
    const double lat = latency_.memory_latency(from, home.node);
    if (a.stream) {
      // Pipelined fetch: one full-latency line, the rest at a rate
      // limited by the memory module locally and additionally by the
      // network when remote (prefetching hides most, not all, of the
      // extra hop latency).
      const double extra =
          (lat - latency_.latency_for_hops(0)) / config_.stream_hide_factor;
      elapsed += static_cast<double>(svc.wait) + lat +
                 static_cast<double>(a.lines - 1) *
                     (config_.mem_occupancy_ns + extra);
    } else {
      elapsed += static_cast<double>(svc.wait) +
                 static_cast<double>(a.lines) * lat;
    }

    ProcStats& st = stats_[a.proc.value()];
    st.queue_wait += svc.wait;
    if (out.remote) {
      st.remote_miss_lines += a.lines;
    } else {
      st.local_miss_lines += a.lines;
    }
    const Ns penalty = backend_->on_miss(a.proc, a.page, home, a.lines, now);
    elapsed += static_cast<double>(penalty);
  }

  elapsed += elapsed_frac_;
  const auto whole = static_cast<Ns>(elapsed);
  elapsed_frac_ = elapsed - static_cast<double>(whole);
  out.elapsed = whole;
  return out;
}

void MemorySystem::invalidate_tlb_entries(VPage page) {
  for (PageCache& tlb : tlbs_) {
    tlb.invalidate(page);
  }
}

void MemorySystem::flush_page(VPage page) {
  for (std::uint32_t p = 0; p < config_.num_procs(); ++p) {
    if (caches_[p].invalidate(page)) {
      directory_.on_evict(ProcId(p), page);
    }
  }
}

void MemorySystem::flush_all() {
  for (std::uint32_t p = 0; p < config_.num_procs(); ++p) {
    caches_[p].clear();
  }
  directory_ = Directory(config_.num_procs());
}

const ProcStats& MemorySystem::stats(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  return stats_[proc.value()];
}

ProcStats MemorySystem::total_stats() const {
  ProcStats total;
  for (const ProcStats& st : stats_) {
    total.hit_lines += st.hit_lines;
    total.local_miss_lines += st.local_miss_lines;
    total.remote_miss_lines += st.remote_miss_lines;
    total.queue_wait += st.queue_wait;
    total.invalidations_sent += st.invalidations_sent;
    total.tlb_misses += st.tlb_misses;
  }
  return total;
}

void MemorySystem::reset_stats() {
  for (ProcStats& st : stats_) {
    st = ProcStats{};
  }
  for (MemQueue& q : queues_) {
    q.reset();
  }
}

const MemQueue& MemorySystem::queue(NodeId node) const {
  REPRO_REQUIRE(node.value() < config_.num_nodes);
  return queues_[node.value()];
}

}  // namespace repro::memsys
