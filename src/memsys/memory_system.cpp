#include "repro/memsys/memory_system.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/assert.hpp"

namespace repro::memsys {

double ProcStats::remote_fraction() const {
  const std::uint64_t total = miss_lines();
  return total == 0
             ? 0.0
             : static_cast<double>(remote_miss_lines) /
                   static_cast<double>(total);
}

MemorySystem::MemorySystem(const MachineConfig& config,
                           const topo::Topology& topology,
                           MemoryBackend& backend)
    : config_(config),
      topology_(&topology),
      backend_(&backend),
      latency_(config_, topology),
      directory_(config_.num_procs(), config_.sparse_tables()) {
  config_.validate();
  REPRO_REQUIRE(topology.num_nodes() == config_.num_nodes);
  caches_.reserve(config_.num_procs());
  for (std::size_t p = 0; p < config_.num_procs(); ++p) {
    caches_.emplace_back(config_.cache_capacity_pages(),
                         config_.sparse_tables());
  }
  if (config_.tlb_entries > 0) {
    tlbs_.reserve(config_.num_procs());
    for (std::size_t p = 0; p < config_.num_procs(); ++p) {
      tlbs_.emplace_back(config_.tlb_entries, config_.sparse_tables());
    }
  }
  queues_.reserve(config_.num_nodes);
  for (std::size_t n = 0; n < config_.num_nodes; ++n) {
    queues_.emplace_back(config_.mem_occupancy_ns);
  }
  stats_.resize(config_.num_procs());
}

NodeId MemorySystem::node_of(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  return NodeId(proc.value() / static_cast<std::uint32_t>(
                                   config_.procs_per_node));
}

MemorySystem::AccessResult MemorySystem::access(Ns now, const Access& a) {
  REPRO_REQUIRE(a.proc.value() < config_.num_procs());
  REPRO_REQUIRE(a.lines >= 1 && a.lines <= config_.lines_per_page());
  REPRO_REQUIRE(a.line_begin < config_.lines_per_page());
  return access_impl(now, a.proc, a.page, a.lines, a.line_begin, a.write,
                     a.stream);
}

void MemorySystem::charge_miss(AccessResult& out, double& elapsed, Ns now,
                               ProcId proc, VPage page, std::uint32_t lines,
                               bool write, bool stream) {
  out.misses = lines;
  const HomeInfo home = backend_->resolve(proc, page, write);
  out.home = home.node;
  const NodeId from = node_of(proc);
  out.remote = from != home.node;

  const MemQueue::Service svc = queues_[home.node.value()].serve(now, lines);
  out.queue_wait = svc.wait;
  const double lat = latency_.memory_latency(from, home.node);
  if (stream) {
    // Pipelined fetch: one full-latency line, the rest at a rate
    // limited by the memory module locally and additionally by the
    // network when remote (prefetching hides most, not all, of the
    // extra hop latency). Both the latency and the per-line stream
    // cost are table loads precomputed by the LatencyModel.
    elapsed += static_cast<double>(svc.wait) + lat +
               static_cast<double>(lines - 1) *
                   latency_.stream_line_cost(from, home.node);
  } else {
    elapsed += static_cast<double>(svc.wait) +
               static_cast<double>(lines) * lat;
  }

  ProcStats& st = stats_[proc.value()];
  st.queue_wait += svc.wait;
  if (out.remote) {
    st.remote_miss_lines += lines;
  } else {
    st.local_miss_lines += lines;
  }
  const Ns penalty = backend_->on_miss(proc, page, home, lines, now);
  elapsed += static_cast<double>(penalty);

  if (fault_ != nullptr) {
    const auto injected = fault_->on_miss(home.node, lines, now);
    if (injected.extra_ns != 0 || injected.extra_lines != 0) {
      // The spike's phantom lines occupy the home module (later
      // accesses queue behind them); their own wait is nobody's --
      // the interfering traffic is not a simulated thread.
      queues_[home.node.value()].serve(now, injected.extra_lines);
      elapsed += static_cast<double>(injected.extra_ns);
    }
  }
}

MemorySystem::AccessResult MemorySystem::access_impl(
    Ns now, ProcId proc, VPage page, std::uint32_t lines,
    std::uint32_t line_begin, bool write, bool stream) {
  AccessResult out;
  double tlb_penalty = 0.0;
  if (!tlbs_.empty() && !tlbs_[proc.value()].touch(page).hit) {
    tlb_penalty = config_.tlb_refill_ns;
    ++stats_[proc.value()].tlb_misses;
  }

  if (line_model_ != nullptr) {
    // Line-grain path: the model classifies which lines hit, which
    // need a memory fill and what protocol traffic the access
    // generates; the page-grain caches and directory are bypassed.
    const LineOutcome c =
        line_model_->on_access(now, {proc, page, line_begin, lines, write});
    out.invalidations = c.invalidation_copies;
    double elapsed = tlb_penalty +
                     static_cast<double>(c.invalidation_copies) *
                         config_.invalidation_ns;
    elapsed += static_cast<double>(c.hit_lines) * config_.cache_hit_ns +
               c.extra_ns;
    ProcStats& st = stats_[proc.value()];
    st.hit_lines += c.hit_lines;
    st.invalidations_sent += c.invalidation_copies;
    if (c.miss_lines == 0) {
      if (write) {
        elapsed += static_cast<double>(backend_->on_write_hit(proc, page));
      }
    } else {
      charge_miss(out, elapsed, now, proc, page, c.miss_lines, write, stream);
    }
    for (const std::uint64_t wb : c.writeback_pages) {
      // Posted writeback: the dirty victim occupies its home module,
      // but the evicting processor does not wait for it to retire
      // (the fault-spike phantom-line treatment).
      const HomeInfo wb_home = backend_->resolve(proc, VPage(wb), false);
      queues_[wb_home.node.value()].serve(now, 1);
    }
    elapsed += elapsed_frac_;
    const auto whole = static_cast<Ns>(elapsed);
    elapsed_frac_ = elapsed - static_cast<double>(whole);
    out.elapsed = whole;
    return out;
  }

  PageCache& cache = caches_[proc.value()];
  const auto touch = cache.touch(page);
  if (touch.evicted) {
    directory_.on_evict(proc, *touch.evicted);
  }

  // Coherence bookkeeping; a write invalidates every other cached copy
  // (page-grain upgrade), which is how page-level false sharing shows up.
  const Directory::AccessOutcome coherence =
      write ? directory_.on_write(proc, page) : directory_.on_read(proc, page);
  out.invalidations = coherence.invalidations();
  if (out.invalidations != 0) {
    const auto low = static_cast<std::uint32_t>(
        std::min<std::size_t>(64, config_.num_procs()));
    for (std::uint32_t p = 0; p < low; ++p) {
      if ((coherence.invalidate_mask >> p) & 1u) {
        caches_[p].invalidate(page);
      }
    }
    // Sharer words beyond the first exist only on > 64-proc machines.
    for (std::size_t w = 0; w < coherence.invalidate_high.size(); ++w) {
      const std::uint64_t word = coherence.invalidate_high[w];
      for (std::uint32_t bit = 0; bit < 64; ++bit) {
        if ((word >> bit) & 1u) {
          caches_[64 * (w + 1) + bit].invalidate(page);
        }
      }
    }
    stats_[proc.value()].invalidations_sent += out.invalidations;
  }

  double elapsed = tlb_penalty + static_cast<double>(out.invalidations) *
                                     config_.invalidation_ns;
  if (touch.hit) {
    elapsed += static_cast<double>(lines) * config_.cache_hit_ns;
    stats_[proc.value()].hit_lines += lines;
    if (write) {
      elapsed += static_cast<double>(backend_->on_write_hit(proc, page));
    }
  } else {
    charge_miss(out, elapsed, now, proc, page, lines, write, stream);
  }

  elapsed += elapsed_frac_;
  const auto whole = static_cast<Ns>(elapsed);
  elapsed_frac_ = elapsed - static_cast<double>(whole);
  out.elapsed = whole;
  return out;
}

MemorySystem::BatchResult MemorySystem::access_batch(ProcId proc,
                                                     const OpSlice& ops,
                                                     Ns clock, Ns limit_clock,
                                                     bool run_at_limit) {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  BatchResult out;
  out.clock = clock;
  // The first op always runs: the caller scheduled this thread because
  // it is the earliest event, so `clock` cannot exceed the limit.
  while (out.executed < ops.count) {
    if (out.clock > limit_clock ||
        (out.clock == limit_clock && !run_at_limit)) {
      break;
    }
    const std::uint32_t i = out.executed;
    if ((ops.flags[i] & kOpAccess) != 0) {
      // Line counts are validated once at RegionProgram compile time
      // and re-checked per region run by the engine, so the per-op
      // bound check is gone from this loop.
      const AccessResult r = access_impl(
          out.clock, proc, VPage(ops.pages[i]), ops.lines[i],
          ops.line_begin != nullptr ? ops.line_begin[i] : 0,
          (ops.flags[i] & kOpWrite) != 0, (ops.flags[i] & kOpStream) != 0);
      out.clock += r.elapsed + ops.compute[i];
    } else {
      out.clock += ops.compute[i];
    }
    ++out.executed;
  }
  return out;
}

void MemorySystem::invalidate_tlb_entries(VPage page) {
  for (PageCache& tlb : tlbs_) {
    tlb.invalidate(page);
  }
}

void MemorySystem::flush_page(VPage page) {
  for (std::uint32_t p = 0; p < config_.num_procs(); ++p) {
    if (caches_[p].invalidate(page)) {
      directory_.on_evict(ProcId(p), page);
    }
  }
  if (line_model_ != nullptr) {
    line_model_->flush_page(page);
  }
}

void MemorySystem::flush_tlbs() {
  for (PageCache& tlb : tlbs_) {
    tlb.clear();
  }
}

void MemorySystem::flush_all() {
  for (std::uint32_t p = 0; p < config_.num_procs(); ++p) {
    caches_[p].clear();
  }
  directory_ = Directory(config_.num_procs(), config_.sparse_tables());
  if (line_model_ != nullptr) {
    line_model_->clear();
  }
  // A flushed machine is fully cold: stale translations would let the
  // next access skip the TLB refill a real post-flush access pays.
  flush_tlbs();
}

const ProcStats& MemorySystem::stats(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  return stats_[proc.value()];
}

ProcStats MemorySystem::total_stats() const {
  ProcStats total;
  for (const ProcStats& st : stats_) {
    total.hit_lines += st.hit_lines;
    total.local_miss_lines += st.local_miss_lines;
    total.remote_miss_lines += st.remote_miss_lines;
    total.queue_wait += st.queue_wait;
    total.invalidations_sent += st.invalidations_sent;
    total.tlb_misses += st.tlb_misses;
  }
  return total;
}

std::uint64_t MemorySystem::digest(Ns now) const {
  StateHash hash;
  for (const PageCache& cache : caches_) {
    cache.digest(hash);
  }
  hash.mix(tlbs_.size());
  for (const PageCache& tlb : tlbs_) {
    tlb.digest(hash);
  }
  hash.mix(directory_.digest());
  if (line_model_ != nullptr) {
    line_model_->digest(hash);
  }
  for (const MemQueue& queue : queues_) {
    queue.digest_phase(hash, now);
  }
  hash.mix_double(elapsed_frac_);
  return hash.value();
}

void MemorySystem::apply_stats_delta(std::span<const ProcStats> delta,
                                     std::uint64_t count) {
  REPRO_REQUIRE(delta.size() == stats_.size());
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    ProcStats& st = stats_[p];
    const ProcStats& d = delta[p];
    st.hit_lines += d.hit_lines * count;
    st.local_miss_lines += d.local_miss_lines * count;
    st.remote_miss_lines += d.remote_miss_lines * count;
    st.queue_wait += d.queue_wait * static_cast<Ns>(count);
    st.invalidations_sent += d.invalidations_sent * count;
    st.tlb_misses += d.tlb_misses * count;
  }
}

void MemorySystem::advance_queue_replayed(NodeId node, std::uint64_t count,
                                          std::uint64_t lines, Ns wait,
                                          Ns period) {
  REPRO_REQUIRE(node.value() < queues_.size());
  queues_[node.value()].advance_replayed(count, lines, wait, period);
}

void MemorySystem::reset_stats() {
  for (ProcStats& st : stats_) {
    st = ProcStats{};
  }
  for (MemQueue& q : queues_) {
    q.reset();
  }
  if (line_model_ != nullptr) {
    line_model_->reset_stats();
  }
}

const MemQueue& MemorySystem::queue(NodeId node) const {
  REPRO_REQUIRE(node.value() < config_.num_nodes);
  return queues_[node.value()];
}

void MemorySystem::sample_queues(trace::TraceSink& sink, std::uint16_t lane,
                                 Ns now) const {
  for (std::uint32_t n = 0; n < queues_.size(); ++n) {
    const MemQueue& q = queues_[n];
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kQueueSample;
    ev.time = now;
    ev.node = static_cast<std::int32_t>(n);
    ev.a = q.busy_until() > now ? q.busy_until() - now : 0;
    ev.b = q.lines_served();
    sink.emit(lane, ev);
  }
}

}  // namespace repro::memsys
