// Structure-of-arrays operation batches.
//
// The simulation engine stores compiled region programs column-wise
// (one array per op field) and hands the memory system contiguous
// slices of one thread's op stream. The memory system executes a slice
// run-length style -- op after op with the thread's clock advancing --
// until the thread's clock would pass the next cross-thread interaction
// point, amortizing the per-op dispatch the scalar `access` entry point
// pays. The column encoding is defined here, below both layers.
#pragma once

#include <cstdint>

#include "repro/common/units.hpp"

namespace repro::memsys {

/// Op flag bits of the `flags` column. An op with `kOpAccess` clear is
/// a pure-compute interval (only the `compute` column is meaningful).
inline constexpr std::uint8_t kOpAccess = 1u << 0;
inline constexpr std::uint8_t kOpWrite = 1u << 1;
inline constexpr std::uint8_t kOpStream = 1u << 2;
/// The op's line_begin is an explicit position (Op::access_at), not the
/// default zero: such ops never coalesce, and line-granular analysis
/// (analysis.false-sharing) may treat their line interval as exact.
inline constexpr std::uint8_t kOpPositioned = 1u << 3;

/// A borrowed, read-only slice of one thread's op columns. The pointers
/// alias the owning program's arena; the slice must not outlive it.
struct OpSlice {
  const std::uint64_t* pages = nullptr;  ///< target VPage values
  const std::uint32_t* lines = nullptr;  ///< lines touched (access ops)
  /// First line within the page (access ops); only the line-grain
  /// coherence model reads it, the page-grain path ignores it.
  const std::uint32_t* line_begin = nullptr;
  const Ns* compute = nullptr;           ///< attached / interval compute
  const std::uint8_t* flags = nullptr;   ///< kOp* bits
  std::uint32_t count = 0;
};

}  // namespace repro::memsys
