// Line-granularity cache-model hook.
//
// The page-grain memory system optionally delegates hit/miss
// classification to a line-grain private-cache model (see
// repro::coherence, which implements MSI/MESI over a line-level sharer
// directory). The dependency points downward only: memsys defines the
// interface, the coherence library implements it, and the Machine wires
// the two together. When a model is attached the per-processor
// page-grain caches and the page-grain directory are bypassed -- the
// model decides which lines hit, which lines need a memory fill and
// what protocol traffic (upgrades, invalidations, interventions) the
// access generates -- while the memory system keeps charging the
// Table-1 latency ladder, the per-node memory queues, the TLBs, the
// backend (first-touch, UPMlib counters, kernel daemon) and the fault
// hooks exactly as before, so simulated time stays deterministic.
#pragma once

#include <cstdint>
#include <span>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"

namespace repro::memsys {

/// One access as seen by the line model: `lines` lines starting at
/// `line_begin` within `page`, wrapped modulo lines-per-page (coalesced
/// read runs legitimately exceed one page's worth of lines; the extra
/// touches are guaranteed hits).
struct LineAccess {
  ProcId proc;
  VPage page;
  std::uint32_t line_begin = 0;
  std::uint32_t lines = 1;
  bool write = false;
};

/// The model's classification of one access. Counts are in the model's
/// line units; hit_lines + miss_lines equals the access's line count.
struct LineOutcome {
  std::uint32_t hit_lines = 0;
  std::uint32_t miss_lines = 0;  ///< lines requiring a memory fill
  /// Remote cached copies invalidated by this access (write upgrades
  /// and write misses); each is charged the machine's invalidation_ns.
  std::uint32_t invalidation_copies = 0;
  /// Protocol charges owned by the model (upgrade round trips, dirty
  /// remote interventions), added to the processor's blocked time.
  double extra_ns = 0.0;
  /// Home pages of dirty lines evicted by this access's fills, one
  /// entry per line. The memory system posts each as one line of
  /// occupancy at the page's home module -- the writeback retires
  /// asynchronously, so its queue wait is charged to nobody (the same
  /// treatment as fault-injected phantom traffic). The span aliases
  /// model-owned scratch storage valid until the next call.
  std::span<const std::uint64_t> writeback_pages;
};

class LineModel {
 public:
  virtual ~LineModel() = default;

  /// Classifies one access at simulated time `now`, mutating the
  /// model's caches and directory.
  virtual LineOutcome on_access(Ns now, const LineAccess& access) = 0;

  /// Drops every cached copy of the page's lines (no writeback events;
  /// mirrors MemorySystem::flush_page forcing cold misses for tests).
  virtual void flush_page(VPage page) = 0;

  /// Drops all model state (MemorySystem::flush_all).
  virtual void clear() = 0;

  /// Resets cumulative statistics without touching cache state
  /// (MemorySystem::reset_stats, after cold start).
  virtual void reset_stats() = 0;

  /// Mixes all behaviour-relevant state into the memory system digest.
  virtual void digest(StateHash& hash) const = 0;
};

}  // namespace repro::memsys
