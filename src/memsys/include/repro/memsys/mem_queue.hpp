// Per-node memory-module queue.
//
// Each NUMA node's memory serves misses at a fixed per-line occupancy.
// When the aggregate miss rate directed at one node exceeds its service
// rate the queue backs up and accesses see growing waits -- this is the
// contention effect that makes the paper's worst-case (single-node/buddy)
// placement so much worse than its (n-1)/n remote-access fraction alone
// would predict.
#pragma once

#include <cstdint>

#include "repro/common/hash.hpp"
#include "repro/common/units.hpp"

namespace repro::memsys {

class MemQueue {
 public:
  /// `occupancy_ns` is the service time per line transfer.
  explicit MemQueue(double occupancy_ns);

  struct Service {
    Ns wait = 0;  ///< queueing delay experienced by this batch
  };

  /// Enqueues a batch of `lines` misses arriving at time `now` and
  /// returns the wait the issuing processor experiences.
  Service serve(Ns now, std::uint32_t lines);

  /// Time at which the module becomes idle again.
  [[nodiscard]] Ns busy_until() const { return busy_until_; }

  /// Total lines served and cumulative wait (for utilization reports).
  [[nodiscard]] std::uint64_t lines_served() const { return lines_served_; }
  [[nodiscard]] Ns total_wait() const { return total_wait_; }

  void reset();

  /// Mixes the queue's behavioural phase *relative to `now`* into
  /// `hash`: the backlog (how far busy_until_ extends past now) and the
  /// sub-ns service carry. Absolute busy_until_ values and the
  /// cumulative counters are deliberately excluded -- steady-state
  /// iterations shift absolute time but repeat the relative phase.
  void digest_phase(StateHash& hash, Ns now) const;

  /// Fast-forward replay: accounts for `count` synthesized steady-state
  /// iterations, each serving `lines` lines with `wait` total queueing
  /// delay, and shifts the busy horizon by `count * period` so post-run
  /// inspection sees the same state a full simulation would leave.
  void advance_replayed(std::uint64_t count, std::uint64_t lines, Ns wait,
                        Ns period);

 private:
  double occupancy_ns_;
  double busy_frac_ = 0.0;  ///< sub-ns carry so occupancy is not truncated
  Ns busy_until_ = 0;
  std::uint64_t lines_served_ = 0;
  Ns total_wait_ = 0;
};

}  // namespace repro::memsys
