// The memory system: per-processor page-grain caches, a page-grain
// coherence directory, per-node memory queues and the Table-1 latency
// ladder, glued together behind a single `access` entry point used by
// the simulated threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "repro/common/hash.hpp"

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/fault/injector.hpp"
#include "repro/memsys/backend.hpp"
#include "repro/memsys/config.hpp"
#include "repro/memsys/directory.hpp"
#include "repro/memsys/latency.hpp"
#include "repro/memsys/line_model.hpp"
#include "repro/memsys/mem_queue.hpp"
#include "repro/memsys/op_batch.hpp"
#include "repro/memsys/page_cache.hpp"
#include "repro/topology/topology.hpp"
#include "repro/trace/sink.hpp"

namespace repro::memsys {

/// Per-processor access statistics (cumulative until reset).
struct ProcStats {
  std::uint64_t hit_lines = 0;
  std::uint64_t local_miss_lines = 0;
  std::uint64_t remote_miss_lines = 0;
  Ns queue_wait = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t tlb_misses = 0;

  [[nodiscard]] std::uint64_t miss_lines() const {
    return local_miss_lines + remote_miss_lines;
  }
  /// Fraction of miss lines served from remote memory; 0 if no misses.
  [[nodiscard]] double remote_fraction() const;
};

class MemorySystem final : public TlbInvalidator {
 public:
  /// `backend` must outlive the memory system; `config` is copied.
  MemorySystem(const MachineConfig& config, const topo::Topology& topology,
               MemoryBackend& backend);

  struct Access {
    ProcId proc;
    VPage page;
    std::uint32_t lines = 1;
    bool write = false;
    /// Streaming (prefetchable unit-stride) access: the processor
    /// overlaps successive line fetches, so a miss batch pays the hop
    /// latency once plus the memory module's per-line service rate --
    /// remote *latency* is hidden but *contention* is not.
    bool stream = false;
    /// First line within the page; only the line-grain coherence model
    /// reads it (must be < lines_per_page). Last on purpose: existing
    /// positional initializers predate the field.
    std::uint32_t line_begin = 0;
  };

  struct AccessResult {
    Ns elapsed = 0;           ///< time the issuing processor is blocked
    std::uint32_t misses = 0; ///< L2 miss lines (0 on a cache hit)
    Ns queue_wait = 0;
    unsigned invalidations = 0;
    bool remote = false;
    NodeId home;              ///< valid only when misses > 0
  };

  /// Performs one page-grain access at simulated time `now`.
  /// `lines` is the number of distinct cache lines touched within the
  /// page and must be in [1, lines_per_page].
  AccessResult access(Ns now, const Access& a);

  struct BatchResult {
    std::uint32_t executed = 0;  ///< ops consumed from the slice
    Ns clock = 0;                ///< the thread's clock afterwards
  };

  /// Run-length executes ops from one thread's slice, advancing `clock`
  /// exactly as the scalar entry point would (compute ops add their
  /// interval; access ops add elapsed + attached compute). Stops before
  /// the first op whose start time would violate the engine's event
  /// order: an op runs only while `clock < limit_clock`, or at
  /// `clock == limit_clock` when `run_at_limit` (the batching thread
  /// wins the engine's tie-break at the limit). At least the first op
  /// always runs -- the caller popped this thread as the schedule's
  /// minimum. Statistics and coherence state mutate identically to an
  /// equivalent sequence of `access` calls.
  BatchResult access_batch(ProcId proc, const OpSlice& ops, Ns clock,
                           Ns limit_clock, bool run_at_limit);

  /// TlbInvalidator: drops the page's translation from every TLB (page
  /// migration shootdown). No-op when TLB modelling is disabled.
  void invalidate_tlb_entries(VPage page) override;

  /// Drops a page from every cache (page migration does NOT require
  /// this -- Origin caches are physical and keep their data -- but the
  /// tests and the Table-1 probe use it to force cold misses).
  void flush_page(VPage page);

  /// Drops every TLB's translations (the caches keep their data).
  void flush_tlbs();

  /// Drops all cached state -- caches, directory AND TLBs -- so a
  /// flushed machine is fully cold (between experiment repetitions).
  void flush_all();

  [[nodiscard]] const ProcStats& stats(ProcId proc) const;
  [[nodiscard]] ProcStats total_stats() const;
  void reset_stats();

  /// Behavioural state digest at simulated time `now`: per-processor
  /// cache and TLB content in LRU order, the coherence directory, each
  /// memory queue's phase relative to `now`, and the sub-ns latency
  /// carry. Pure statistics are excluded. Equal digests (with equal
  /// backend state) mean the memory system will time future accesses
  /// identically -- the harness's fast-forward gate builds on this.
  [[nodiscard]] std::uint64_t digest(Ns now) const;

  /// Fast-forward replay: applies `count` copies of the per-processor
  /// stats delta of one steady-state iteration (`delta` has one entry
  /// per processor).
  void apply_stats_delta(std::span<const ProcStats> delta,
                         std::uint64_t count);

  /// Fast-forward replay: accounts for `count` synthesized iterations
  /// at `node`'s queue (see MemQueue::advance_replayed).
  void advance_queue_replayed(NodeId node, std::uint64_t count,
                              std::uint64_t lines, Ns wait, Ns period);

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }
  [[nodiscard]] NodeId node_of(ProcId proc) const;

  /// Cumulative queueing wait observed at a node's memory module.
  [[nodiscard]] const MemQueue& queue(NodeId node) const;

  /// Emits one kQueueSample event per node into `lane`: the backlog
  /// (how far each module's busy horizon extends past `now`) and the
  /// cumulative lines served. Called at region joins by the OpenMP
  /// runtime when tracing is on -- never on the access hot path.
  void sample_queues(trace::TraceSink& sink, std::uint16_t lane,
                     Ns now) const;

  /// Attaches the fault injector's node-slowdown hook to the miss path
  /// (null to detach). The injector must outlive the memory system.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Attaches a line-grain cache model (null to detach); see
  /// line_model.hpp for the division of labour. The model must outlive
  /// the memory system (the Machine owns both).
  void set_line_model(LineModel* model) { line_model_ = model; }
  [[nodiscard]] LineModel* line_model() const { return line_model_; }

 private:
  AccessResult access_impl(Ns now, ProcId proc, VPage page,
                           std::uint32_t lines, std::uint32_t line_begin,
                           bool write, bool stream);

  /// Shared miss path: backend resolve, home-queue service, Table-1
  /// ladder, miss stats, backend and fault hooks. `lines` is the miss
  /// line count (the full access on the page path, the model's
  /// miss_lines on the line path). Mutates `elapsed` with the same
  /// statement-by-statement addition order both paths always used --
  /// floating-point association is part of the digest contract.
  void charge_miss(AccessResult& out, double& elapsed, Ns now, ProcId proc,
                   VPage page, std::uint32_t lines, bool write, bool stream);

  MachineConfig config_;
  const topo::Topology* topology_;
  MemoryBackend* backend_;
  LatencyModel latency_;
  std::vector<PageCache> caches_;   // by processor
  std::vector<PageCache> tlbs_;     // by processor (empty when disabled)
  Directory directory_;
  std::vector<MemQueue> queues_;    // by node
  std::vector<ProcStats> stats_;    // by processor
  fault::FaultInjector* fault_ = nullptr;
  LineModel* line_model_ = nullptr;
  double elapsed_frac_ = 0.0;       // sub-ns carry for latency charges
};

}  // namespace repro::memsys
