// Machine configuration.
//
// Defaults model the paper's experimental platform: a 16-node SGI
// Origin2000 with one R10000 processor considered per node (the paper
// runs on "16 idle processors" and reports the 16-node latency ladder of
// its Table 1), 16 KiB pages, 128-byte cache lines, 4 MiB of unified L2
// per processor, and per-frame 11-bit per-node reference counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "repro/common/units.hpp"

namespace repro::memsys {

/// Backing store for the page-grain bookkeeping structures (page table,
/// directory, page caches, reference-counter rows). Dense arrays are
/// O(pages) / O(pages x nodes) regardless of how many pages are live;
/// the sparse open-addressed backends track only live entries. kAuto
/// picks dense at the paper's scale (<= 64 procs) and sparse beyond,
/// where the dense footprint would dominate the simulation.
enum class TableBackend : std::uint8_t { kAuto, kDense, kSparse };

struct MachineConfig {
  // --- structure -------------------------------------------------------
  std::size_t num_nodes = 16;
  std::size_t procs_per_node = 1;
  std::string topology = "fat-hypercube";
  TableBackend table_backend = TableBackend::kAuto;

  // --- memory geometry --------------------------------------------------
  Bytes page_size = 16 * kKiB;
  Bytes cache_line = 128;
  Bytes l2_size = 4 * kMiB;            ///< unified L2 per processor
  std::size_t frames_per_node = 32768;  ///< 512 MiB per node at 16 KiB pages (8 GB machine, as the paper reports)

  // --- latency ladder (paper Table 1, contented latencies in ns) --------
  double l1_latency_ns = 5.5;
  double l2_latency_ns = 56.9;
  /// Memory latency by hop distance: index 0 = local, 1..3 = remote.
  std::vector<double> mem_latency_ns = {329.0, 564.0, 759.0, 862.0};
  /// Extrapolation step for hop counts beyond the ladder (paper: "100 to
  /// 200 ns" per additional hop).
  double extra_hop_latency_ns = 150.0;

  // --- dynamic behaviour -------------------------------------------------
  /// Blended per-line cost of an L1/L2 cache hit, charged by the
  /// page-grain cache model instead of simulating the L1 separately.
  double cache_hit_ns = 16.0;
  /// Memory-module service occupancy per line; determines how quickly a
  /// node's memory saturates under contention (the worst-case-placement
  /// effect). Origin2000 per-node bandwidth ~1 GB/s => ~125 ns / 128 B.
  double mem_occupancy_ns = 100.0;
  /// How much of the *extra* remote latency a streaming access hides per
  /// line (prefetch depth): the per-line rate of a remote stream is
  /// occupancy + (remote - local latency) / this factor. Remote streams
  /// are cheaper than blocking remote loads but still slower than local
  /// streams (network-limited bandwidth).
  double stream_hide_factor = 2.0;
  /// Cost charged to a writer per remote sharer invalidated (page-grain
  /// coherence upgrade).
  double invalidation_ns = 120.0;

  // --- page migration costs ---------------------------------------------
  /// Copying one page between nodes (DMA): 16 KiB at ~700 MB/s.
  double page_copy_ns = 15'000.0;
  /// TLB coherence: fixed remap bookkeeping plus one directed
  /// interprocessor interrupt per processor holding a live mapping.
  /// The paper's Fig. 4 implies relocating thousands of single-owner
  /// pages costs only tens of microseconds each (FT moves ~15k pages
  /// within a 5.5 s run); widely-mapped pages cost proportionally more.
  double tlb_local_flush_ns = 5'000.0;
  double tlb_shootdown_ns = 8'000.0;  ///< per mapping processor

  // --- TLB ------------------------------------------------------------------
  /// Per-processor TLB capacity in entries (pages). 0 disables TLB
  /// modelling (the default: the baseline calibration matches the
  /// paper's Table-1 latencies, which already include address
  /// translation). When enabled, every access consults the TLB and a
  /// miss charges tlb_refill_ns (R10000: software-managed refill).
  std::size_t tlb_entries = 0;
  double tlb_refill_ns = 800.0;

  // --- reference counters -------------------------------------------------
  /// Width of the per-frame per-node hardware counters (Origin2000: 11).
  unsigned counter_bits = 11;

  // --- derived -------------------------------------------------------------
  [[nodiscard]] std::size_t num_procs() const {
    return num_nodes * procs_per_node;
  }
  [[nodiscard]] std::uint32_t lines_per_page() const {
    return static_cast<std::uint32_t>(page_size / cache_line);
  }
  [[nodiscard]] std::size_t cache_capacity_pages() const {
    return static_cast<std::size_t>(l2_size / page_size);
  }
  [[nodiscard]] std::size_t total_frames() const {
    return num_nodes * frames_per_node;
  }
  [[nodiscard]] std::uint32_t counter_max() const {
    return (1u << counter_bits) - 1u;
  }
  /// Whether the page structures should use their sparse backends.
  [[nodiscard]] bool sparse_tables() const {
    return table_backend == TableBackend::kSparse ||
           (table_backend == TableBackend::kAuto && num_procs() > 64);
  }

  /// Validates internal consistency; throws ContractViolation otherwise.
  void validate() const;
};

}  // namespace repro::memsys
