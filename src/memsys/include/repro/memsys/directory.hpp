// Page-grain coherence directory.
//
// Tracks, for every virtual page with at least one cached copy, the set
// of processors caching it and whether one of them holds it exclusively
// (has written it). The memory system consults the directory on every
// access to decide which remote copies a write must invalidate; this is
// what makes page-level false sharing (the paper's FT observation)
// emerge from access patterns instead of being hard-coded.
#pragma once

#include <cstdint>
#include <vector>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::memsys {

class Directory {
 public:
  /// `num_procs` bounds the sharer bitmask width (<= 64).
  explicit Directory(std::size_t num_procs);

  struct AccessOutcome {
    /// Processors whose cached copy must be invalidated (excludes the
    /// accessor).
    std::uint64_t invalidate_mask = 0;
    [[nodiscard]] unsigned invalidations() const;
  };

  /// Registers a read by `proc`; never invalidates, but a previous
  /// exclusive holder is downgraded to sharer.
  AccessOutcome on_read(ProcId proc, VPage page);

  /// Registers a write by `proc`; all other sharers must invalidate.
  AccessOutcome on_write(ProcId proc, VPage page);

  /// Removes `proc` from the sharer set (its cache evicted the page).
  void on_evict(ProcId proc, VPage page);

  /// Current sharers of a page (bitmask by processor id).
  [[nodiscard]] std::uint64_t sharers(VPage page) const;

  /// True if `proc` holds the page exclusively (last writer, no other
  /// sharers since).
  [[nodiscard]] bool is_exclusive(ProcId proc, VPage page) const;

  [[nodiscard]] std::size_t tracked_pages() const { return tracked_; }

  /// Digest of every live entry (page, sharer set, exclusive owner),
  /// in page order.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  /// A slot with an empty sharer set is dead (has_owner implies the
  /// owner is a sharer, so sharers == 0 also means no owner).
  struct Entry {
    std::uint64_t sharers = 0;
    /// Valid only when `has_owner`; identifies the exclusive writer.
    std::uint32_t owner = 0;
    bool has_owner = false;
  };

  Entry& slot(VPage page);

  std::size_t num_procs_;
  /// Dense array over the (compact) virtual page space -- the
  /// directory is consulted on every access, so lookups must be an
  /// indexed load, not a hash probe.
  std::vector<Entry> entries_;
  std::size_t tracked_ = 0;
};

}  // namespace repro::memsys
