// Page-grain coherence directory.
//
// Tracks, for every virtual page with at least one cached copy, the set
// of processors caching it and whether one of them holds it exclusively
// (has written it). The memory system consults the directory on every
// access to decide which remote copies a write must invalidate; this is
// what makes page-level false sharing (the paper's FT observation)
// emerge from access patterns instead of being hard-coded.
//
// Sharer sets are multi-word bitmaps (ceil(num_procs / 64) words per
// entry), so machines beyond 64 processors are representable. Entries
// live either in a dense array over the virtual page space (indexed
// load per access; the default at the paper's scale) or in a sparse
// open-addressed index keyed by page (one hash probe per access; picked
// for the 128/512-node scale sweeps, where the dense array's
// O(pages x nodes) footprint is the problem being avoided). Digests are
// backend-independent: both enumerate live entries in page order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/flat_map.hpp"
#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::memsys {

class Directory {
 public:
  explicit Directory(std::size_t num_procs, bool sparse = false);

  struct AccessOutcome {
    /// Processors 0..63 whose cached copy must be invalidated (excludes
    /// the accessor).
    std::uint64_t invalidate_mask = 0;
    /// Invalidation words for processors >= 64 (word w covers
    /// processors 64*(w+1)..). Empty on <= 64-proc machines. Points
    /// into directory-owned scratch: valid until the next on_write.
    std::span<const std::uint64_t> invalidate_high;
    [[nodiscard]] unsigned invalidations() const;
  };

  /// Registers a read by `proc`; never invalidates, but a previous
  /// exclusive holder is downgraded to sharer.
  AccessOutcome on_read(ProcId proc, VPage page);

  /// Registers a write by `proc`; all other sharers must invalidate.
  AccessOutcome on_write(ProcId proc, VPage page);

  /// Removes `proc` from the sharer set (its cache evicted the page).
  void on_evict(ProcId proc, VPage page);

  /// Sharers among processors 0..63 (bitmask by processor id); the
  /// word-0 view is exact on <= 64-proc machines.
  [[nodiscard]] std::uint64_t sharers(VPage page) const;

  /// True if `proc` holds the page exclusively (last writer, no other
  /// sharers since).
  [[nodiscard]] bool is_exclusive(ProcId proc, VPage page) const;

  [[nodiscard]] std::size_t tracked_pages() const { return tracked_; }

  /// Digest of every live entry (page, sharer set, exclusive owner),
  /// in page order; identical across backends.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  /// Sharer words live in `words_` at slot * words_per_entry_; a slot
  /// whose words are all zero is dead (has_owner implies the owner is a
  /// sharer, so an empty set also means no owner).
  struct Meta {
    /// Valid only when `has_owner`; identifies the exclusive writer.
    std::uint32_t owner = 0;
    bool has_owner = false;
  };

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  [[nodiscard]] std::uint64_t* words(std::uint32_t slot) {
    return &words_[static_cast<std::size_t>(slot) * words_per_entry_];
  }
  [[nodiscard]] const std::uint64_t* words(std::uint32_t slot) const {
    return &words_[static_cast<std::size_t>(slot) * words_per_entry_];
  }
  [[nodiscard]] bool live(std::uint32_t slot) const;

  /// Slot of `page`, or kNoSlot when the page has no live entry.
  [[nodiscard]] std::uint32_t find_slot(VPage page) const;
  /// Slot of `page`, allocating an empty entry when absent.
  std::uint32_t ensure_slot(VPage page);
  /// Releases a slot whose sharer set emptied (sparse reclamation).
  void release_slot(VPage page, std::uint32_t slot);

  std::size_t num_procs_;
  std::size_t words_per_entry_;
  bool sparse_;

  std::vector<Meta> meta_;
  std::vector<std::uint64_t> words_;
  /// Sparse backend: page -> slot, plus recycled slots.
  FlatMap<std::uint32_t> index_;
  std::vector<std::uint32_t> free_slots_;
  /// Scratch backing AccessOutcome::invalidate_high (reused per write).
  std::vector<std::uint64_t> scratch_high_;

  std::size_t tracked_ = 0;
};

}  // namespace repro::memsys
