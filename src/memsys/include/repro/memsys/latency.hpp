// Latency model: maps a hop distance to a memory access latency using
// the paper's Table 1 ladder, extrapolating beyond the measured range.
#pragma once

#include "repro/common/strong_id.hpp"
#include "repro/memsys/config.hpp"
#include "repro/topology/topology.hpp"

namespace repro::memsys {

class LatencyModel {
 public:
  LatencyModel(const MachineConfig& config, const topo::Topology& topology);

  /// Uncontended memory latency (ns) for an access from `from` to memory
  /// on `to`. One array load: the full (from, to) table is precomputed
  /// at construction (the topology's hop matrix is immutable).
  [[nodiscard]] double memory_latency(NodeId from, NodeId to) const {
    return pair_latency_[from.value() * num_nodes_ + to.value()];
  }

  /// Per-line cost of the pipelined portion of a streaming miss from
  /// `from` to `to`: mem_occupancy + (latency - local latency) /
  /// stream_hide_factor, precomputed per pair so the miss path does two
  /// array loads instead of re-deriving the ladder arithmetic.
  [[nodiscard]] double stream_line_cost(NodeId from, NodeId to) const {
    return pair_stream_line_[from.value() * num_nodes_ + to.value()];
  }

  /// Latency for a given hop count (ns).
  [[nodiscard]] double latency_for_hops(unsigned hops) const;

  [[nodiscard]] double l1_latency() const { return l1_; }
  [[nodiscard]] double l2_latency() const { return l2_; }

  /// Remote-to-local latency ratio at the machine's maximum hop distance.
  /// The paper's central architectural argument is that this ratio is
  /// only ~2:1 on a 16-node Origin2000.
  [[nodiscard]] double worst_remote_to_local_ratio() const;

 private:
  const topo::Topology* topology_;
  std::vector<double> ladder_;
  double extra_hop_;
  double l1_;
  double l2_;
  std::size_t num_nodes_ = 0;
  std::vector<double> pair_latency_;      // [from * num_nodes_ + to]
  std::vector<double> pair_stream_line_;  // same indexing
};

}  // namespace repro::memsys
