// The boundary between the memory system and the OS/VM layer.
//
// The memory system knows about caches, queues and latencies; it asks
// the backend (implemented by the OS layer) where a virtual page lives.
// Resolution is allowed to have side effects: an unmapped page is
// faulted in by the active placement policy (this is where first-touch
// happens), and every miss batch feeds the per-frame reference counters
// and the kernel's migration daemon.
#pragma once

#include <cstdint>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"

namespace repro::memsys {

struct HomeInfo {
  NodeId node;
  FrameId frame;
};

/// Lets the OS reach into the processors' TLBs: a page migration must
/// invalidate every live translation of the page (the shootdown whose
/// cost the kernel charges).
class TlbInvalidator {
 public:
  virtual ~TlbInvalidator() = default;
  virtual void invalidate_tlb_entries(VPage page) = 0;
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// Resolves a virtual page to its home, faulting it in if unmapped.
  virtual HomeInfo resolve(ProcId accessor, VPage page, bool write) = 0;

  /// Reports a batch of `lines` L2 misses by `accessor` against `page`
  /// (currently homed as `home`) at simulated time `now`. The return
  /// value is an extra delay charged to the accessor -- the kernel
  /// migration daemon runs in the threshold-interrupt handler on the
  /// faulting processor, so its migration cost lands here.
  virtual Ns on_miss(ProcId accessor, VPage page, const HomeInfo& home,
                     std::uint32_t lines, Ns now) = 0;

  /// Reports a write that hit in the processor's cache. The OS needs
  /// this for page-grain coherence bookkeeping that is independent of
  /// misses (dirty tracking, collapsing read-only replicas). Returns an
  /// extra delay charged to the writer. Default: nothing to do.
  virtual Ns on_write_hit(ProcId accessor, VPage page) {
    (void)accessor;
    (void)page;
    return 0;
  }
};

}  // namespace repro::memsys
