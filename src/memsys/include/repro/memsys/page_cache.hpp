// Page-grain processor cache model.
//
// The simulator models caching at the granularity of whole pages rather
// than individual lines: a page is either resident in a processor's L2
// or not, and residency is managed with true LRU. This is the standard
// coarsening for page-placement studies -- what the experiments need is
// the *rate of L2 misses per page per node*, which drives both the
// latency charged to threads and the per-frame reference counters. The
// line-level structure inside a page only scales the number of misses
// (lines touched), which callers pass explicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "repro/common/flat_map.hpp"
#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"

namespace repro::memsys {

class PageCache {
 public:
  /// `capacity_pages` == L2 size / page size; must be >= 1. `sparse`
  /// swaps the dense page -> slot index (O(max page id), one per
  /// processor) for an open-addressed map over resident pages only --
  /// the 512-node scale sweeps would otherwise pay that array 512
  /// times. The LRU list itself is identical either way, so digests
  /// (which walk the list in recency order) never depend on the
  /// backend.
  explicit PageCache(std::size_t capacity_pages, bool sparse = false);

  struct TouchResult {
    bool hit = false;
    /// Set when inserting required evicting the LRU page; the caller
    /// must notify the coherence directory.
    std::optional<VPage> evicted;
  };

  /// True if the page is currently resident (does not touch LRU order).
  [[nodiscard]] bool contains(VPage page) const {
    return slot_of(page) >= 0;
  }

  /// Makes the page most-recently-used, inserting it if absent.
  TouchResult touch(VPage page);

  /// Drops a page (coherence invalidation). Returns true if it was
  /// resident.
  bool invalidate(VPage page);

  /// Drops everything (used when a simulated thread is migrated).
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Identity of the page that would be evicted next (LRU); only valid
  /// when size() > 0. Exposed for tests.
  [[nodiscard]] VPage lru_page() const;

  /// Mixes the cache's full content *in recency order* into `hash`.
  /// Residency alone is not enough for a behavioural digest: the LRU
  /// order decides every future eviction, so two caches with the same
  /// page set but different stack orders must hash differently.
  void digest(StateHash& hash) const;

 private:
  /// Touched on every simulated access, so the LRU is an intrusive
  /// doubly-linked list over a fixed node pool (indices, no
  /// allocation) with a dense page -> node index (virtual pages are
  /// compact, see vm::AddressSpace): one indexed load per lookup
  /// instead of a hash probe and list-node churn.
  struct Node {
    std::uint64_t page = 0;
    std::int32_t prev = -1;
    std::int32_t next = -1;
  };

  void unlink(std::int32_t n);
  void push_front(std::int32_t n);

  /// Node index holding `page`, -1 when absent.
  [[nodiscard]] std::int32_t slot_of(VPage page) const {
    if (sparse_) {
      const std::int32_t* slot = index_.find(page.value());
      return slot == nullptr ? -1 : *slot;
    }
    return page.value() < where_.size() ? where_[page.value()] : -1;
  }
  void set_slot(VPage page, std::int32_t n);
  void drop_slot(VPage page);

  std::size_t capacity_;
  bool sparse_;
  std::size_t size_ = 0;
  std::vector<Node> nodes_;           // fixed pool, one per cache slot
  std::vector<std::int32_t> where_;   // dense: page id -> node, -1 absent
  FlatMap<std::int32_t> index_;       // sparse: resident pages only
  std::int32_t head_ = -1;            // most recent
  std::int32_t tail_ = -1;            // next eviction victim
  std::int32_t free_ = -1;            // free-slot chain through `next`
};

}  // namespace repro::memsys
