// Page-grain processor cache model.
//
// The simulator models caching at the granularity of whole pages rather
// than individual lines: a page is either resident in a processor's L2
// or not, and residency is managed with true LRU. This is the standard
// coarsening for page-placement studies -- what the experiments need is
// the *rate of L2 misses per page per node*, which drives both the
// latency charged to threads and the per-frame reference counters. The
// line-level structure inside a page only scales the number of misses
// (lines touched), which callers pass explicitly.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "repro/common/strong_id.hpp"

namespace repro::memsys {

class PageCache {
 public:
  /// `capacity_pages` == L2 size / page size; must be >= 1.
  explicit PageCache(std::size_t capacity_pages);

  struct TouchResult {
    bool hit = false;
    /// Set when inserting required evicting the LRU page; the caller
    /// must notify the coherence directory.
    std::optional<VPage> evicted;
  };

  /// True if the page is currently resident (does not touch LRU order).
  [[nodiscard]] bool contains(VPage page) const;

  /// Makes the page most-recently-used, inserting it if absent.
  TouchResult touch(VPage page);

  /// Drops a page (coherence invalidation). Returns true if it was
  /// resident.
  bool invalidate(VPage page);

  /// Drops everything (used when a simulated thread is migrated).
  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Identity of the page that would be evicted next (LRU); only valid
  /// when size() > 0. Exposed for tests.
  [[nodiscard]] VPage lru_page() const;

 private:
  std::size_t capacity_;
  std::list<VPage> lru_;  // front = most recent
  std::unordered_map<VPage, std::list<VPage>::iterator> map_;
};

}  // namespace repro::memsys
