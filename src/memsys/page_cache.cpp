#include "repro/memsys/page_cache.hpp"

#include <algorithm>

#include "repro/common/assert.hpp"

namespace repro::memsys {

PageCache::PageCache(std::size_t capacity_pages, bool sparse)
    : capacity_(capacity_pages), sparse_(sparse) {
  REPRO_REQUIRE(capacity_pages >= 1);
  REPRO_REQUIRE(capacity_pages <= static_cast<std::size_t>(INT32_MAX));
  nodes_.resize(capacity_pages);
  for (std::size_t i = 0; i + 1 < capacity_pages; ++i) {
    nodes_[i].next = static_cast<std::int32_t>(i + 1);
  }
  free_ = 0;
}

void PageCache::set_slot(VPage page, std::int32_t n) {
  if (sparse_) {
    index_[page.value()] = n;
    return;
  }
  if (page.value() >= where_.size()) {
    where_.resize(
        std::max<std::size_t>(page.value() + 1, where_.size() * 2), -1);
  }
  where_[page.value()] = n;
}

void PageCache::drop_slot(VPage page) {
  if (sparse_) {
    index_.erase(page.value());
  } else {
    where_[page.value()] = -1;
  }
}

void PageCache::unlink(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  if (node.prev >= 0) {
    nodes_[static_cast<std::size_t>(node.prev)].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next >= 0) {
    nodes_[static_cast<std::size_t>(node.next)].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
}

void PageCache::push_front(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.prev = -1;
  node.next = head_;
  if (head_ >= 0) {
    nodes_[static_cast<std::size_t>(head_)].prev = n;
  } else {
    tail_ = n;
  }
  head_ = n;
}

PageCache::TouchResult PageCache::touch(VPage page) {
  TouchResult out;
  const std::int32_t n = slot_of(page);
  if (n >= 0) {
    out.hit = true;
    if (n != head_) {
      unlink(n);
      push_front(n);
    }
    return out;
  }
  std::int32_t slot;
  if (size_ == capacity_) {
    slot = tail_;
    const VPage victim = VPage(nodes_[static_cast<std::size_t>(slot)].page);
    unlink(slot);
    drop_slot(victim);
    out.evicted = victim;
  } else {
    slot = free_;
    free_ = nodes_[static_cast<std::size_t>(slot)].next;
    ++size_;
  }
  nodes_[static_cast<std::size_t>(slot)].page = page.value();
  push_front(slot);
  set_slot(page, slot);
  return out;
}

bool PageCache::invalidate(VPage page) {
  const std::int32_t n = slot_of(page);
  if (n < 0) {
    return false;
  }
  unlink(n);
  drop_slot(page);
  nodes_[static_cast<std::size_t>(n)].next = free_;
  free_ = n;
  --size_;
  return true;
}

void PageCache::clear() {
  for (std::int32_t n = head_; n >= 0;) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    if (!sparse_) {
      where_[node.page] = -1;
    }
    const std::int32_t next = node.next;
    node.next = free_;
    free_ = n;
    n = next;
  }
  if (sparse_) {
    index_.clear();
  }
  head_ = -1;
  tail_ = -1;
  size_ = 0;
}

VPage PageCache::lru_page() const {
  REPRO_REQUIRE(size_ > 0);
  return VPage(nodes_[static_cast<std::size_t>(tail_)].page);
}

void PageCache::digest(StateHash& hash) const {
  hash.mix(size_);
  for (std::int32_t n = head_; n >= 0;
       n = nodes_[static_cast<std::size_t>(n)].next) {
    hash.mix(nodes_[static_cast<std::size_t>(n)].page);
  }
}

}  // namespace repro::memsys
