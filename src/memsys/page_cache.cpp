#include "repro/memsys/page_cache.hpp"

#include "repro/common/assert.hpp"

namespace repro::memsys {

PageCache::PageCache(std::size_t capacity_pages) : capacity_(capacity_pages) {
  REPRO_REQUIRE(capacity_pages >= 1);
}

bool PageCache::contains(VPage page) const { return map_.contains(page); }

PageCache::TouchResult PageCache::touch(VPage page) {
  TouchResult out;
  if (auto it = map_.find(page); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    out.hit = true;
    return out;
  }
  if (map_.size() == capacity_) {
    const VPage victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    out.evicted = victim;
  }
  lru_.push_front(page);
  map_.emplace(page, lru_.begin());
  return out;
}

bool PageCache::invalidate(VPage page) {
  auto it = map_.find(page);
  if (it == map_.end()) {
    return false;
  }
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
}

VPage PageCache::lru_page() const {
  REPRO_REQUIRE(!lru_.empty());
  return lru_.back();
}

}  // namespace repro::memsys
