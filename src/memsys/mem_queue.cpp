#include "repro/memsys/mem_queue.hpp"

#include <cmath>

#include "repro/common/assert.hpp"

namespace repro::memsys {

MemQueue::MemQueue(double occupancy_ns) : occupancy_ns_(occupancy_ns) {
  REPRO_REQUIRE(occupancy_ns >= 0.0);
}

MemQueue::Service MemQueue::serve(Ns now, std::uint32_t lines) {
  Service out;
  if (busy_until_ > now) {
    out.wait = busy_until_ - now;
  }
  const Ns start = busy_until_ > now ? busy_until_ : now;
  const double busy =
      occupancy_ns_ * static_cast<double>(lines) + busy_frac_;
  const auto whole = static_cast<Ns>(busy);
  busy_frac_ = busy - static_cast<double>(whole);
  busy_until_ = start + whole;
  lines_served_ += lines;
  total_wait_ += out.wait;
  return out;
}

void MemQueue::digest_phase(StateHash& hash, Ns now) const {
  hash.mix(busy_until_ > now ? static_cast<std::uint64_t>(busy_until_ - now)
                             : 0u);
  hash.mix_double(busy_frac_);
}

void MemQueue::advance_replayed(std::uint64_t count, std::uint64_t lines,
                                Ns wait, Ns period) {
  lines_served_ += lines * count;
  total_wait_ += wait * static_cast<Ns>(count);
  busy_until_ += period * static_cast<Ns>(count);
}

void MemQueue::reset() {
  busy_until_ = 0;
  busy_frac_ = 0.0;
  lines_served_ = 0;
  total_wait_ = 0;
}

}  // namespace repro::memsys
