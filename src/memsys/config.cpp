#include "repro/memsys/config.hpp"

#include <bit>

#include "repro/common/assert.hpp"

namespace repro::memsys {

void MachineConfig::validate() const {
  REPRO_REQUIRE(num_nodes >= 2);
  REPRO_REQUIRE(procs_per_node >= 1);
  // Sharer/mapper sets are multi-word bitmaps; the ceiling is only a
  // sanity bound against misconfiguration, not a representation limit.
  REPRO_REQUIRE(num_procs() <= 65536);
  REPRO_REQUIRE(std::has_single_bit(page_size));
  REPRO_REQUIRE(std::has_single_bit(cache_line));
  REPRO_REQUIRE(cache_line <= page_size);
  REPRO_REQUIRE(l2_size >= page_size);
  REPRO_REQUIRE(frames_per_node >= 1);
  REPRO_REQUIRE(!mem_latency_ns.empty());
  REPRO_REQUIRE(l1_latency_ns > 0.0 && l2_latency_ns > l1_latency_ns);
  REPRO_REQUIRE(mem_latency_ns.front() > l2_latency_ns);
  for (std::size_t i = 1; i < mem_latency_ns.size(); ++i) {
    REPRO_REQUIRE_MSG(mem_latency_ns[i] >= mem_latency_ns[i - 1],
                      "latency ladder must be non-decreasing");
  }
  REPRO_REQUIRE(cache_hit_ns > 0.0);
  REPRO_REQUIRE(mem_occupancy_ns >= 0.0);
  REPRO_REQUIRE(stream_hide_factor >= 1.0);
  REPRO_REQUIRE(invalidation_ns >= 0.0);
  REPRO_REQUIRE(page_copy_ns >= 0.0 && tlb_shootdown_ns >= 0.0);
  REPRO_REQUIRE(tlb_local_flush_ns >= 0.0);
  REPRO_REQUIRE(counter_bits >= 1 && counter_bits <= 31);
  REPRO_REQUIRE(tlb_refill_ns >= 0.0);
}

}  // namespace repro::memsys
