#include "repro/memsys/directory.hpp"

#include <algorithm>
#include <bit>

#include "repro/common/assert.hpp"

namespace repro::memsys {

Directory::Directory(std::size_t num_procs, bool sparse)
    : num_procs_(num_procs),
      words_per_entry_((num_procs + 63) / 64),
      sparse_(sparse) {
  REPRO_REQUIRE(num_procs >= 1 && num_procs <= 65536);
  if (words_per_entry_ > 1) {
    scratch_high_.resize(words_per_entry_ - 1);
  }
}

unsigned Directory::AccessOutcome::invalidations() const {
  auto count = static_cast<unsigned>(std::popcount(invalidate_mask));
  for (const std::uint64_t word : invalidate_high) {
    count += static_cast<unsigned>(std::popcount(word));
  }
  return count;
}

bool Directory::live(std::uint32_t slot) const {
  const std::uint64_t* w = words(slot);
  for (std::size_t i = 0; i < words_per_entry_; ++i) {
    if (w[i] != 0) {
      return true;
    }
  }
  return false;
}

std::uint32_t Directory::find_slot(VPage page) const {
  if (sparse_) {
    const std::uint32_t* slot = index_.find(page.value());
    return slot == nullptr ? kNoSlot : *slot;
  }
  return page.value() < meta_.size()
             ? static_cast<std::uint32_t>(page.value())
             : kNoSlot;
}

std::uint32_t Directory::ensure_slot(VPage page) {
  if (!sparse_) {
    if (page.value() >= meta_.size()) {
      const std::size_t size =
          std::max<std::size_t>(page.value() + 1, meta_.size() * 2);
      meta_.resize(size);
      words_.resize(size * words_per_entry_, 0);
    }
    return static_cast<std::uint32_t>(page.value());
  }
  if (const std::uint32_t* slot = index_.find(page.value())) {
    return *slot;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(meta_.size());
    meta_.emplace_back();
    words_.resize(words_.size() + words_per_entry_, 0);
  }
  index_[page.value()] = slot;
  return slot;
}

void Directory::release_slot(VPage page, std::uint32_t slot) {
  // Dense slots stay in place (the array is the index); sparse slots
  // are recycled so the pool tracks the live-entry high-water mark.
  if (sparse_) {
    index_.erase(page.value());
    free_slots_.push_back(slot);
  }
}

Directory::AccessOutcome Directory::on_read(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  const std::uint32_t slot = ensure_slot(page);
  if (!live(slot)) {
    ++tracked_;
  }
  words(slot)[proc.value() / 64] |= 1ULL << (proc.value() % 64);
  Meta& m = meta_[slot];
  if (m.has_owner && m.owner != proc.value()) {
    // A reader joins: the writer loses exclusivity but keeps its copy.
    m.has_owner = false;
  }
  return {};
}

Directory::AccessOutcome Directory::on_write(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  const std::uint32_t slot = ensure_slot(page);
  if (!live(slot)) {
    ++tracked_;
  }
  std::uint64_t* w = words(slot);
  const std::size_t self_word = proc.value() / 64;
  const std::uint64_t self_bit = 1ULL << (proc.value() % 64);
  AccessOutcome out;
  out.invalidate_mask = w[0] & (self_word == 0 ? ~self_bit : ~0ULL);
  if (words_per_entry_ > 1) {
    for (std::size_t i = 1; i < words_per_entry_; ++i) {
      scratch_high_[i - 1] = w[i] & (self_word == i ? ~self_bit : ~0ULL);
    }
    out.invalidate_high = scratch_high_;
  }
  std::fill(w, w + words_per_entry_, 0);
  w[self_word] = self_bit;
  meta_[slot].owner = proc.value();
  meta_[slot].has_owner = true;
  return out;
}

void Directory::on_evict(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  const std::uint32_t slot = find_slot(page);
  if (slot == kNoSlot || !live(slot)) {
    return;
  }
  words(slot)[proc.value() / 64] &= ~(1ULL << (proc.value() % 64));
  Meta& m = meta_[slot];
  if (m.has_owner && m.owner == proc.value()) {
    m.has_owner = false;
  }
  if (!live(slot)) {
    meta_[slot] = Meta{};
    --tracked_;
    release_slot(page, slot);
  }
}

std::uint64_t Directory::digest() const {
  // Slots whose sharer set emptied are reset, so live entries are
  // exactly the behaviourally relevant ones; page order is
  // deterministic. High words are mixed only on > 64-proc machines,
  // keeping 16-node digests byte-identical to the single-word layout.
  StateHash hash;
  hash.mix(tracked_);
  const auto mix_entry = [&](std::uint64_t page, std::uint32_t slot) {
    const std::uint64_t* w = words(slot);
    hash.mix(page);
    hash.mix(w[0]);
    for (std::size_t i = 1; i < words_per_entry_; ++i) {
      hash.mix(w[i]);
    }
    const Meta& m = meta_[slot];
    hash.mix(m.has_owner ? m.owner + 1ull : 0ull);
  };
  if (sparse_) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> live_pages;
    live_pages.reserve(tracked_);
    index_.for_each([&](std::uint64_t page, std::uint32_t slot) {
      live_pages.emplace_back(page, slot);
    });
    std::sort(live_pages.begin(), live_pages.end());
    for (const auto& [page, slot] : live_pages) {
      mix_entry(page, slot);
    }
  } else {
    for (std::size_t p = 0; p < meta_.size(); ++p) {
      const auto slot = static_cast<std::uint32_t>(p);
      if (live(slot)) {
        mix_entry(p, slot);
      }
    }
  }
  return hash.value();
}

std::uint64_t Directory::sharers(VPage page) const {
  const std::uint32_t slot = find_slot(page);
  return slot == kNoSlot ? 0 : words(slot)[0];
}

bool Directory::is_exclusive(ProcId proc, VPage page) const {
  const std::uint32_t slot = find_slot(page);
  if (slot == kNoSlot) {
    return false;
  }
  const Meta& m = meta_[slot];
  if (!m.has_owner || m.owner != proc.value()) {
    return false;
  }
  const std::uint64_t* w = words(slot);
  for (std::size_t i = 0; i < words_per_entry_; ++i) {
    const std::uint64_t expected =
        i == proc.value() / 64 ? 1ULL << (proc.value() % 64) : 0;
    if (w[i] != expected) {
      return false;
    }
  }
  return true;
}

}  // namespace repro::memsys
