#include "repro/memsys/directory.hpp"

#include <bit>

#include "repro/common/assert.hpp"

namespace repro::memsys {

Directory::Directory(std::size_t num_procs) : num_procs_(num_procs) {
  REPRO_REQUIRE(num_procs >= 1 && num_procs <= 64);
}

unsigned Directory::AccessOutcome::invalidations() const {
  return static_cast<unsigned>(std::popcount(invalidate_mask));
}

Directory::AccessOutcome Directory::on_read(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  Entry& e = entries_[page];
  e.sharers |= 1ULL << proc.value();
  if (e.has_owner && e.owner != proc.value()) {
    // A reader joins: the writer loses exclusivity but keeps its copy.
    e.has_owner = false;
  }
  return {};
}

Directory::AccessOutcome Directory::on_write(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  Entry& e = entries_[page];
  const std::uint64_t self = 1ULL << proc.value();
  AccessOutcome out;
  out.invalidate_mask = e.sharers & ~self;
  e.sharers = self;
  e.owner = proc.value();
  e.has_owner = true;
  return out;
}

void Directory::on_evict(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    return;
  }
  Entry& e = it->second;
  e.sharers &= ~(1ULL << proc.value());
  if (e.has_owner && e.owner == proc.value()) {
    e.has_owner = false;
  }
  if (e.sharers == 0) {
    entries_.erase(it);
  }
}

std::uint64_t Directory::sharers(VPage page) const {
  auto it = entries_.find(page);
  return it == entries_.end() ? 0 : it->second.sharers;
}

bool Directory::is_exclusive(ProcId proc, VPage page) const {
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    return false;
  }
  const Entry& e = it->second;
  return e.has_owner && e.owner == proc.value() &&
         e.sharers == (1ULL << proc.value());
}

}  // namespace repro::memsys
