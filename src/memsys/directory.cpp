#include "repro/memsys/directory.hpp"

#include <algorithm>
#include <bit>

#include "repro/common/assert.hpp"

namespace repro::memsys {

Directory::Directory(std::size_t num_procs) : num_procs_(num_procs) {
  REPRO_REQUIRE(num_procs >= 1 && num_procs <= 64);
}

unsigned Directory::AccessOutcome::invalidations() const {
  return static_cast<unsigned>(std::popcount(invalidate_mask));
}

Directory::Entry& Directory::slot(VPage page) {
  if (page.value() >= entries_.size()) {
    entries_.resize(std::max<std::size_t>(page.value() + 1,
                                          entries_.size() * 2));
  }
  return entries_[page.value()];
}

Directory::AccessOutcome Directory::on_read(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  Entry& e = slot(page);
  if (e.sharers == 0) {
    ++tracked_;
  }
  e.sharers |= 1ULL << proc.value();
  if (e.has_owner && e.owner != proc.value()) {
    // A reader joins: the writer loses exclusivity but keeps its copy.
    e.has_owner = false;
  }
  return {};
}

Directory::AccessOutcome Directory::on_write(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  Entry& e = slot(page);
  if (e.sharers == 0) {
    ++tracked_;
  }
  const std::uint64_t self = 1ULL << proc.value();
  AccessOutcome out;
  out.invalidate_mask = e.sharers & ~self;
  e.sharers = self;
  e.owner = proc.value();
  e.has_owner = true;
  return out;
}

void Directory::on_evict(ProcId proc, VPage page) {
  REPRO_REQUIRE(proc.value() < num_procs_);
  if (page.value() >= entries_.size()) {
    return;
  }
  Entry& e = entries_[page.value()];
  if (e.sharers == 0) {
    return;
  }
  e.sharers &= ~(1ULL << proc.value());
  if (e.has_owner && e.owner == proc.value()) {
    e.has_owner = false;
  }
  if (e.sharers == 0) {
    e = Entry{};
    --tracked_;
  }
}

std::uint64_t Directory::digest() const {
  // Slots whose sharer set emptied are reset, so live entries are
  // exactly the behaviourally relevant ones; page order is
  // deterministic.
  StateHash hash;
  hash.mix(tracked_);
  for (std::size_t p = 0; p < entries_.size(); ++p) {
    const Entry& e = entries_[p];
    if (e.sharers == 0) {
      continue;
    }
    hash.mix(p);
    hash.mix(e.sharers);
    hash.mix(e.has_owner ? e.owner + 1ull : 0ull);
  }
  return hash.value();
}

std::uint64_t Directory::sharers(VPage page) const {
  return page.value() < entries_.size() ? entries_[page.value()].sharers
                                        : 0;
}

bool Directory::is_exclusive(ProcId proc, VPage page) const {
  if (page.value() >= entries_.size()) {
    return false;
  }
  const Entry& e = entries_[page.value()];
  return e.has_owner && e.owner == proc.value() &&
         e.sharers == (1ULL << proc.value());
}

}  // namespace repro::memsys
