#include "repro/os/mmci.hpp"

#include "repro/common/assert.hpp"

namespace repro::os {

MemoryControlInterface::MemoryControlInterface(Kernel& kernel)
    : kernel_(&kernel) {}

MldHandle MemoryControlInterface::create_mld(NodeId node) {
  REPRO_REQUIRE(node.value() < kernel_->config().num_nodes);
  mlds_.push_back(node);
  return MldHandle(static_cast<std::uint32_t>(mlds_.size() - 1));
}

NodeId MemoryControlInterface::mld_node(MldHandle mld) const {
  REPRO_REQUIRE(mld.value() < mlds_.size());
  return mlds_[mld.value()];
}

std::vector<MldHandle> MemoryControlInterface::create_mld_per_node() {
  std::vector<MldHandle> handles;
  handles.reserve(kernel_->config().num_nodes);
  for (std::uint32_t n = 0; n < kernel_->config().num_nodes; ++n) {
    handles.push_back(create_mld(NodeId(n)));
  }
  return handles;
}

MemoryControlInterface::MigrateOutcome MemoryControlInterface::migrate(
    VPage page, MldHandle target) {
  const MigrationResult res = kernel_->migrate_page(page, mld_node(target));
  return {res.migrated, res.busy, res.actual, res.cost};
}

MemoryControlInterface::ReplicateOutcome MemoryControlInterface::replicate(
    VPage page, MldHandle target) {
  const ReplicationResult res =
      kernel_->replicate_page(page, mld_node(target));
  return {res.replicated, res.cost};
}

bool MemoryControlInterface::is_dirty(VPage page) const {
  return kernel_->is_dirty(page);
}

void MemoryControlInterface::clear_dirty(VPage page) {
  kernel_->clear_dirty(page);
}

std::size_t MemoryControlInterface::replica_count(VPage page) const {
  return kernel_->replica_count(page);
}

std::span<const std::uint32_t> MemoryControlInterface::read_counters(
    VPage page) const {
  const auto counts = kernel_->read_counters(page);
  if (fault_ != nullptr) {
    // Corruption happens at the /proc boundary: the hardware counters
    // themselves stay correct (the kernel daemon reads them directly),
    // only this user-level read may come back garbled.
    return fault_->filter_counters(page, counts);
  }
  return counts;
}

void MemoryControlInterface::reset_counters(VPage page) {
  kernel_->reset_counters(page);
}

NodeId MemoryControlInterface::home_of(VPage page) const {
  return kernel_->home_of(page);
}

bool MemoryControlInterface::is_mapped(VPage page) const {
  return kernel_->is_mapped(page);
}

NodeId MemoryControlInterface::node_of_proc(ProcId proc) const {
  return kernel_->node_of(proc);
}

std::size_t MemoryControlInterface::num_nodes() const {
  return kernel_->config().num_nodes;
}

}  // namespace repro::os
