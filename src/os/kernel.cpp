#include "repro/os/kernel.hpp"

#include <cmath>

#include "repro/common/assert.hpp"
#include "repro/common/log.hpp"
#include "repro/os/daemon.hpp"

namespace repro::os {

Kernel::Kernel(const memsys::MachineConfig& config,
               const topo::Topology& topology)
    : config_(config),
      topology_(&topology),
      phys_(config.num_nodes, config.frames_per_node, topology),
      table_(config.sparse_tables()),
      counters_(config.total_frames(), config.num_nodes,
                config.counter_bits, config.sparse_tables()),
      policy_(std::make_unique<vm::FirstTouchPlacement>(
          config.num_nodes, config.procs_per_node)) {
  config_.validate();
}

Kernel::~Kernel() = default;

void Kernel::set_policy(std::unique_ptr<vm::PlacementPolicy> policy) {
  REPRO_REQUIRE(policy != nullptr);
  policy_ = std::move(policy);
}

void Kernel::set_daemon(std::unique_ptr<KernelMigrationDaemon> daemon) {
  daemon_ = std::move(daemon);
}

vm::PlacementPolicy& Kernel::policy() { return *policy_; }

NodeId Kernel::node_of(ProcId proc) const {
  REPRO_REQUIRE(proc.value() < config_.num_procs());
  return NodeId(proc.value() /
                static_cast<std::uint32_t>(config_.procs_per_node));
}

memsys::HomeInfo Kernel::resolve(ProcId accessor, VPage page, bool write) {
  if (const auto frame = table_.lookup(page)) {
    table_.note_mapper(page, accessor);
    if (write) {
      table_.mark_dirty(page);
      if (!table_.entry(page).replicas.empty()) {
        // Writing a replicated page collapses every replica (the
        // page-grain coherence action); the cost lands on the writer.
        pending_penalty_ += collapse_replicas(page);
      }
      return {phys_.node_of(*frame), *frame};
    }
    // Reads are served from the closest copy; the reference counters
    // stay aggregated on the primary frame.
    const vm::PageTable::Entry& entry = table_.entry(page);
    NodeId best = phys_.node_of(*frame);
    unsigned best_hops = topology_->hops(node_of(accessor), best);
    for (const FrameId replica : entry.replicas) {
      const NodeId node = phys_.node_of(replica);
      const unsigned h = topology_->hops(node_of(accessor), node);
      if (h < best_hops) {
        best_hops = h;
        best = node;
      }
    }
    return {best, *frame};
  }
  // Page fault: the active placement policy chooses the home node.
  ++stats_.page_faults;
  const NodeId preferred = policy_->place(page, accessor);
  const auto frame = phys_.allocate(preferred);
  REPRO_REQUIRE_MSG(frame.has_value(), "machine out of physical memory");
  table_.map(page, *frame);
  table_.note_mapper(page, accessor);
  if (write) {
    table_.mark_dirty(page);
  }
  return {phys_.node_of(*frame), *frame};
}

Ns Kernel::on_miss(ProcId accessor, VPage page, const memsys::HomeInfo& home,
                   std::uint32_t lines, Ns now) {
  counters_.increment(home.frame, node_of(accessor), lines);
  Ns penalty = pending_penalty_;
  pending_penalty_ = 0;
  if (daemon_ != nullptr) {
    penalty += daemon_->on_miss(*this, accessor, page, home.node, now);
  }
  return penalty;
}

Ns Kernel::migration_cost_for(VPage page) const {
  const unsigned mappers = table_.mapper_count(page);
  double cost = config_.page_copy_ns + config_.tlb_local_flush_ns;
  // One directed interprocessor interrupt per processor holding a live
  // mapping of the page.
  cost += static_cast<double>(mappers) * config_.tlb_shootdown_ns;
  return static_cast<Ns>(std::llround(cost));
}

MigrationResult Kernel::migrate_page(VPage page, NodeId target) {
  REPRO_REQUIRE(target.value() < config_.num_nodes);
  REPRO_REQUIRE_MSG(table_.is_mapped(page), "migrating an unmapped page");

  MigrationResult out;
  // Injected transient pin: reject before touching any state so the
  // request is cleanly retryable.
  if (fault_ != nullptr && fault_->migration_busy(page)) {
    ++stats_.busy_migrations;
    out.busy = true;
    out.actual = home_of(page);
    return out;
  }

  // A replicated page must be coherent before it can move.
  out.cost += collapse_replicas(page);
  const FrameId old_frame = *table_.lookup(page);
  const NodeId old_node = phys_.node_of(old_frame);
  if (old_node == target) {
    out.actual = old_node;
    return out;
  }

  // The source node is excluded from best-effort redirection: landing
  // "back home" would be a pointless copy.
  auto new_frame = phys_.allocate(target, old_node);
  if (!new_frame) {
    ++stats_.rejected_migrations;
    out.actual = old_node;
    return out;
  }
  const NodeId actual = phys_.node_of(*new_frame);
  if (actual != target) {
    ++stats_.redirected_migrations;
  }

  out.cost += migration_cost_for(page);
  if (tlb_invalidator_ != nullptr) {
    tlb_invalidator_->invalidate_tlb_entries(page);
  }
  table_.remap(page, *new_frame);
  phys_.free(old_frame);
  // Hardware counters belong to the physical frame; the new frame
  // starts clean (and the old frame's counters are stale garbage for
  // its next tenant, so clear them on free).
  counters_.reset(old_frame);
  counters_.reset(*new_frame);

  out.migrated = true;
  out.actual = actual;
  ++stats_.migrations;
  stats_.migration_cost += out.cost;
  if (trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kPageMigration;
    ev.page = page.value();
    ev.src = static_cast<std::int32_t>(old_node.value());
    ev.dst = static_cast<std::int32_t>(actual.value());
    ev.node = ev.dst;
    ev.a = actual != target ? 1 : 0;
    ev.cost = out.cost;
    trace_->emit_now(trace_lane_, ev);
  }
  REPRO_LOG_DEBUG("migrated page ", page.value(), " node ",
                  old_node.value(), " -> ", actual.value(), " cost ",
                  out.cost, "ns");
  return out;
}

Ns Kernel::on_write_hit(ProcId /*accessor*/, VPage page) {
  if (!table_.is_mapped(page)) {
    return 0;
  }
  table_.mark_dirty(page);
  if (table_.entry(page).replicas.empty()) {
    return 0;
  }
  return collapse_replicas(page);
}

ReplicationResult Kernel::replicate_page(VPage page, NodeId target) {
  REPRO_REQUIRE(target.value() < config_.num_nodes);
  REPRO_REQUIRE_MSG(table_.is_mapped(page), "replicating an unmapped page");
  ReplicationResult out;
  // Refuse when a copy already lives on the target node.
  if (home_of(page) == target) {
    return out;
  }
  for (const FrameId replica : table_.entry(page).replicas) {
    if (phys_.node_of(replica) == target) {
      return out;
    }
  }
  const auto frame = phys_.allocate_strict(target);
  if (!frame) {
    return out;  // replication is best-effort: a full node just declines
  }
  table_.add_replica(page, *frame);
  out.replicated = true;
  out.cost = static_cast<Ns>(std::llround(config_.page_copy_ns));
  ++stats_.replications;
  if (trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kPageReplication;
    ev.page = page.value();
    ev.src = static_cast<std::int32_t>(home_of(page).value());
    ev.dst = static_cast<std::int32_t>(target.value());
    ev.node = ev.dst;
    ev.cost = out.cost;
    trace_->emit_now(trace_lane_, ev);
  }
  return out;
}

Ns Kernel::collapse_replicas(VPage page) {
  const std::vector<FrameId> replicas = table_.take_replicas(page);
  if (replicas.empty()) {
    return 0;
  }
  for (const FrameId frame : replicas) {
    counters_.reset(frame);
    phys_.free(frame);
  }
  ++stats_.replica_collapses;
  // Every processor that may hold a stale replica translation takes a
  // shootdown, like a migration.
  if (tlb_invalidator_ != nullptr) {
    tlb_invalidator_->invalidate_tlb_entries(page);
  }
  const Ns cost = migration_cost_for(page);
  if (trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kReplicaCollapse;
    ev.page = page.value();
    ev.node = static_cast<std::int32_t>(home_of(page).value());
    ev.a = replicas.size();
    ev.cost = cost;
    trace_->emit_now(trace_lane_, ev);
  }
  return cost;
}

std::size_t Kernel::replica_count(VPage page) const {
  return table_.entry(page).replicas.size();
}

bool Kernel::is_dirty(VPage page) const { return table_.is_dirty(page); }

void Kernel::clear_dirty(VPage page) { table_.clear_dirty(page); }

NodeId Kernel::home_of(VPage page) const {
  const auto frame = table_.lookup(page);
  REPRO_REQUIRE_MSG(frame.has_value(), "page not mapped");
  return phys_.node_of(*frame);
}

bool Kernel::is_mapped(VPage page) const { return table_.is_mapped(page); }

std::span<const std::uint32_t> Kernel::read_counters(VPage page) const {
  const auto frame = table_.lookup(page);
  REPRO_REQUIRE_MSG(frame.has_value(), "page not mapped");
  return counters_.read(*frame);
}

void Kernel::reset_counters(VPage page) {
  const auto frame = table_.lookup(page);
  REPRO_REQUIRE_MSG(frame.has_value(), "page not mapped");
  counters_.reset(*frame);
}

std::uint64_t Kernel::digest(Ns now) const {
  StateHash hash;
  hash.mix(table_.digest());
  hash.mix(static_cast<std::uint64_t>(pending_penalty_));
  hash.mix(daemon_ != nullptr ? 1 : 0);
  if (daemon_ != nullptr) {
    hash.mix(daemon_->digest(now));
    // The reference counters feed the daemon's comparator, so they are
    // behavioural state here. Without a daemon nothing reads them on
    // the simulated path and they stay excluded (they grow
    // monotonically and would keep an otherwise periodic state from
    // ever matching).
    hash.mix(counters_.digest());
  }
  return hash.value();
}

}  // namespace repro::os
