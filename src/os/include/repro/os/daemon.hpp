// Kernel-level competitive page-migration daemon.
//
// Models the IRIX engine, which follows the Stanford FLASH scheme
// (Verghese et al., ASPLOS'96): per-frame hardware counters compare the
// access count of each remote node against the home node's count; when
// the difference crosses a threshold the hardware raises an interrupt
// and the handler runs a migration policy subject to resource
// constraints, dampening and per-page freezing.
//
// Two deliberate weaknesses distinguish it from UPMlib (this is the
// paper's point):
//  * it is not iteration-aware: it evaluates counters over fixed time
//    windows (the kernel periodically resets a page's counters to age
//    its view), so pages whose remote traffic is modest *per window* --
//    however persistent across a long run -- never trip the threshold;
//  * its migrations run mid-computation in the interrupt handler, are
//    rate-limited globally and per page, and pages that keep migrating
//    are frozen.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "repro/common/hash.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/trace/sink.hpp"

namespace repro::os {

class Kernel;

struct DaemonConfig {
  /// Counter difference (remote - home) within one window that raises
  /// the interrupt.
  std::uint32_t threshold = 200;
  /// Counter-aging window: a page's counters are reset when first
  /// accessed after this much time has passed since its window opened.
  Ns window_ns = 500 * kNsPerMs;
  /// Minimum simulated time between two migrations of the same page.
  Ns page_cooloff_ns = 5 * kNsPerMs;
  /// A page that migrates more than this many times is frozen for the
  /// rest of the run (IRIX bounce control).
  std::uint32_t max_migrations_per_page = 4;
  /// Global dampening: minimum time between any two daemon migrations.
  Ns global_min_interval_ns = 300 * kNsPerUs;
};

struct DaemonStats {
  std::uint64_t interrupts = 0;
  std::uint64_t migrations = 0;
  std::uint64_t window_resets = 0;
  std::uint64_t suppressed_cooloff = 0;
  std::uint64_t suppressed_frozen = 0;
  std::uint64_t suppressed_global = 0;
  /// Moves deferred because the page was transiently pinned (injected
  /// fault); the next comparator interrupt simply retries.
  std::uint64_t deferred_busy = 0;
  Ns cost = 0;
};

class KernelMigrationDaemon {
 public:
  explicit KernelMigrationDaemon(DaemonConfig config);

  /// Called by the kernel on every miss batch, after the counters were
  /// incremented. Returns the interrupt-handler cost to charge to the
  /// faulting processor (0 when nothing fires).
  Ns on_miss(Kernel& kernel, ProcId accessor, VPage page, NodeId home,
             Ns now);

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }

  /// Behavioural state digest at simulated time `now`. Per-page
  /// window/cooloff state holds *absolute* simulated times, but every
  /// one of them only influences behaviour through a single comparison
  /// against `now` with a fixed threshold from the config -- so the
  /// digest mixes the *saturated relative* age min(now - t, threshold)
  /// instead of t. Two states with equal digests therefore behave
  /// identically under any common time shift, which is exactly the
  /// property the harness fast-forward needs: once the daemon is
  /// quiescent (all interesting pages frozen or settled) its digest
  /// becomes periodic with the workload and the remaining iterations
  /// can be replayed; while it is actively migrating, per-page
  /// migration counts and fresh window/cooloff ages keep the digest
  /// changing and the gate stays shut.
  [[nodiscard]] std::uint64_t digest(Ns now) const;

  /// Shifts every stored absolute time forward by `dt`. Called by the
  /// harness fast-forward after synthesizing `dt` worth of iterations,
  /// so a subsequent simulated iteration observes exactly the state a
  /// full simulation would have reached (the replayed span is
  /// time-periodic, so a pure translation is exact).
  void advance_replayed(Ns dt);

  /// Attaches an event sink (null to detach): every comparator
  /// interrupt's handler decision becomes one kDaemonScan event, and
  /// bounce-control freezes become kPageFreeze.
  void set_trace(trace::TraceSink* sink, std::uint16_t lane) {
    trace_ = sink;
    trace_lane_ = lane;
  }

 private:
  struct PageState {
    Ns window_start = 0;
    bool window_open = false;
    Ns last_migration = 0;
    std::uint32_t migrations = 0;
    bool frozen = false;
  };

  DaemonConfig config_;
  DaemonStats stats_;
  std::unordered_map<VPage, PageState> pages_;
  Ns last_any_migration_ = 0;
  bool any_migration_yet_ = false;
  trace::TraceSink* trace_ = nullptr;
  std::uint16_t trace_lane_ = 0;
};

}  // namespace repro::os
