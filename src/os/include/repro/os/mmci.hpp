// User-level Memory Management Control Interface (IRIX "mmci").
//
// This is the *entire* OS surface available to UPMlib; keeping it as a
// separate narrow class enforces the paper's claim that the migration
// engine is implementable purely at user level with "only a few
// operating system services":
//   - Memory Locality Domains (MLDs): a user namespace for node memory,
//     used as handles for placing/migrating virtual address ranges;
//   - the /proc interface to the per-frame hardware reference counters;
//   - a counter-reset service.
// Migrations through this interface are subject to the kernel's
// resource-management constraints (best-effort redirection when the
// target node is full), exactly as the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/os/kernel.hpp"

namespace repro::os {

struct MldTag {};
/// Handle to a Memory Locality Domain created by the user process.
using MldHandle = StrongId<MldTag>;

class MemoryControlInterface {
 public:
  /// `kernel` must outlive the interface.
  explicit MemoryControlInterface(Kernel& kernel);

  // --- MLD namespace -------------------------------------------------------
  /// Creates an MLD and associates it with a node's physical memory.
  [[nodiscard]] MldHandle create_mld(NodeId node);
  [[nodiscard]] NodeId mld_node(MldHandle mld) const;
  [[nodiscard]] std::size_t num_mlds() const { return mlds_.size(); }

  /// Convenience: one MLD per node, in node order.
  [[nodiscard]] std::vector<MldHandle> create_mld_per_node();

  // --- page operations -------------------------------------------------------
  struct MigrateOutcome {
    bool migrated = false;
    bool busy = false;  ///< page transiently pinned; retryable
    NodeId actual;      ///< where the page ended up
    Ns cost = 0;        ///< charged to the calling thread by the runtime
  };

  /// Requests migration of `page` into `target`'s node. May be redirected
  /// or rejected by the kernel.
  MigrateOutcome migrate(VPage page, MldHandle target);

  struct ReplicateOutcome {
    bool replicated = false;
    Ns cost = 0;
  };

  /// Requests a read-only replica of `page` on `target`'s node
  /// (best-effort; the kernel declines full nodes and duplicates).
  ReplicateOutcome replicate(VPage page, MldHandle target);

  /// True if the page was written since the last clear_dirty().
  [[nodiscard]] bool is_dirty(VPage page) const;
  void clear_dirty(VPage page);
  [[nodiscard]] std::size_t replica_count(VPage page) const;

  /// Reads the page's hardware reference counters via /proc (one value
  /// per node).
  [[nodiscard]] std::span<const std::uint32_t> read_counters(VPage page) const;

  /// Zeroes the page's counters.
  void reset_counters(VPage page);

  [[nodiscard]] NodeId home_of(VPage page) const;
  [[nodiscard]] bool is_mapped(VPage page) const;
  [[nodiscard]] NodeId node_of_proc(ProcId proc) const;
  [[nodiscard]] std::size_t num_nodes() const;

  /// Attaches the fault injector's counter-corruption hook to the
  /// /proc counter reads (null to detach). The busy-migration hook
  /// lives in the kernel itself, so requests through any path -- MMCI
  /// or daemon -- see the same pin.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  Kernel* kernel_;
  fault::FaultInjector* fault_ = nullptr;
  std::vector<NodeId> mlds_;
};

}  // namespace repro::os
