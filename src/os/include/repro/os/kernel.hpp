// The operating-system kernel facade (cellular-IRIX stand-in).
//
// Owns physical memory, the page table, the per-frame hardware
// reference counters and the active page-placement policy; implements
// the memory system's backend (page faults resolve here, misses feed
// the counters and the kernel migration daemon). Exposes the page
// migration primitive used both by its own daemon and -- through the
// user-level MMCI -- by UPMlib.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/fault/injector.hpp"
#include "repro/memsys/backend.hpp"
#include "repro/memsys/config.hpp"
#include "repro/topology/topology.hpp"
#include "repro/trace/sink.hpp"
#include "repro/vm/counters.hpp"
#include "repro/vm/page_table.hpp"
#include "repro/vm/physical_memory.hpp"
#include "repro/vm/placement.hpp"

namespace repro::os {

class KernelMigrationDaemon;

struct MigrationResult {
  bool migrated = false;
  /// The page is transiently pinned (injected fault): the request was
  /// rejected before any state changed and may be retried.
  bool busy = false;
  /// Where the page actually landed (may differ from the request when
  /// the target node was full and the kernel redirected best-effort).
  NodeId actual;
  /// Cost of the migration: page copy + one TLB shootdown per processor
  /// holding a live mapping.
  Ns cost = 0;
};

struct ReplicationResult {
  bool replicated = false;
  /// Cost (page copy); charged to the requesting thread.
  Ns cost = 0;
};

/// Cumulative kernel-side accounting.
struct KernelStats {
  std::uint64_t page_faults = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rejected_migrations = 0;  ///< no frame anywhere
  std::uint64_t busy_migrations = 0;      ///< transient pin (injected fault)
  std::uint64_t redirected_migrations = 0;
  Ns migration_cost = 0;
  std::uint64_t replications = 0;
  std::uint64_t replica_collapses = 0;  ///< pages whose replicas died on write
};

class Kernel final : public memsys::MemoryBackend {
 public:
  /// `topology` must outlive the kernel. The placement policy defaults
  /// to first-touch (the IRIX default) unless replaced via set_policy.
  Kernel(const memsys::MachineConfig& config,
         const topo::Topology& topology);
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Replaces the placement policy (DSM_PLACEMENT equivalent).
  void set_policy(std::unique_ptr<vm::PlacementPolicy> policy);

  /// Installs / removes the kernel migration daemon (DSM_MIGRATION).
  void set_daemon(std::unique_ptr<KernelMigrationDaemon> daemon);

  /// Registers the processors' TLBs so migrations can shoot down live
  /// translations (wired by omp::Machine; optional).
  void set_tlb_invalidator(memsys::TlbInvalidator* invalidator) {
    tlb_invalidator_ = invalidator;
  }
  [[nodiscard]] KernelMigrationDaemon* daemon() { return daemon_.get(); }

  /// Attaches an event sink (null to detach): migrations, replications
  /// and replica collapses are traced into `lane`, stamped at the
  /// sink's current simulated time (the kernel has no clock of its
  /// own; whoever drives it -- daemon, UPMlib, engine -- keeps the
  /// sink's now() current).
  void set_trace(trace::TraceSink* sink, std::uint16_t lane) {
    trace_ = sink;
    trace_lane_ = lane;
  }
  [[nodiscard]] trace::TraceSink* trace_sink() { return trace_; }

  /// Attaches the fault injector's busy-migration hook (null to
  /// detach). The injector must outlive the kernel.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  // --- MemoryBackend ------------------------------------------------------
  memsys::HomeInfo resolve(ProcId accessor, VPage page, bool write) override;
  Ns on_miss(ProcId accessor, VPage page, const memsys::HomeInfo& home,
             std::uint32_t lines, Ns now) override;
  Ns on_write_hit(ProcId accessor, VPage page) override;

  // --- migration primitive -------------------------------------------------
  /// Moves a page to `target` (best-effort: a full target redirects to
  /// the nearest node with a free frame). The new frame's hardware
  /// counters start at zero. No-op (migrated=false, cost=0) when the
  /// page already lives on `target`.
  MigrationResult migrate_page(VPage page, NodeId target);

  // --- replication (paper Section 1.2: read-only pages can be
  // --- replicated; the page-grain analogue of cache coherence) -------------
  /// Copies the page to `target` as a read-only replica; subsequent
  /// reads are served from the closest copy. Fails (replicated=false)
  /// when the page already has a copy on `target` or the node is full.
  ReplicationResult replicate_page(VPage page, NodeId target);

  /// Destroys all replicas (done automatically when the page is written
  /// or migrated). Returns the TLB-coherence cost.
  Ns collapse_replicas(VPage page);

  [[nodiscard]] std::size_t replica_count(VPage page) const;
  [[nodiscard]] bool is_dirty(VPage page) const;
  void clear_dirty(VPage page);

  // --- services used by MMCI / tools ---------------------------------------
  [[nodiscard]] NodeId home_of(VPage page) const;
  [[nodiscard]] bool is_mapped(VPage page) const;
  [[nodiscard]] std::span<const std::uint32_t> read_counters(VPage page) const;
  void reset_counters(VPage page);
  [[nodiscard]] NodeId node_of(ProcId proc) const;

  [[nodiscard]] const KernelStats& stats() const { return stats_; }
  [[nodiscard]] const memsys::MachineConfig& config() const { return config_; }
  [[nodiscard]] const vm::PageTable& page_table() const { return table_; }
  [[nodiscard]] const vm::RefCounters& counters() const { return counters_; }
  [[nodiscard]] const vm::PhysicalMemory& physical_memory() const {
    return phys_;
  }
  [[nodiscard]] vm::PlacementPolicy& policy();

  /// Migration cost for a page if it were migrated now (used by tools
  /// to report overhead without performing the move).
  [[nodiscard]] Ns migration_cost_for(VPage page) const;

  /// Behavioural state digest at simulated time `now`: page-table
  /// placement, the deferred write-collapse penalty, and -- when a
  /// migration daemon is installed -- the daemon's saturated-relative
  /// state plus the per-frame reference counters that feed its
  /// comparator. Without a daemon the counters are pure statistics and
  /// stay excluded, as do the physical free lists in either case: they
  /// only influence behaviour through fault / explicit-migration
  /// paths, which the fast-forward entry gate rules out for replayed
  /// iterations.
  [[nodiscard]] std::uint64_t digest(Ns now) const;

 private:
  memsys::MachineConfig config_;
  const topo::Topology* topology_;
  vm::PhysicalMemory phys_;
  vm::PageTable table_;
  vm::RefCounters counters_;
  std::unique_ptr<vm::PlacementPolicy> policy_;
  std::unique_ptr<KernelMigrationDaemon> daemon_;
  KernelStats stats_;
  /// Cost of work resolve() had to do as a side effect (collapsing
  /// replicas on a write); charged to the accessor by the next on_miss.
  Ns pending_penalty_ = 0;
  memsys::TlbInvalidator* tlb_invalidator_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
  std::uint16_t trace_lane_ = 0;
};

}  // namespace repro::os
