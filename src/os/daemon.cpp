#include "repro/os/daemon.hpp"

#include "repro/common/assert.hpp"
#include "repro/os/kernel.hpp"

namespace repro::os {

KernelMigrationDaemon::KernelMigrationDaemon(DaemonConfig config)
    : config_(config) {
  REPRO_REQUIRE(config.threshold >= 1);
  REPRO_REQUIRE(config.window_ns >= 1);
}

Ns KernelMigrationDaemon::on_miss(Kernel& kernel, ProcId accessor,
                                  VPage page, NodeId home, Ns now) {
  PageState& st = pages_[page];

  // Counter aging: the kernel evaluates reference counters over fixed
  // windows; a page first touched after its window expired gets a fresh
  // window (counters reset). This is what makes the daemon blind to
  // pages with modest per-window remote traffic.
  if (!st.window_open || now - st.window_start > config_.window_ns) {
    kernel.reset_counters(page);
    st.window_start = now;
    st.window_open = true;
    ++stats_.window_resets;
    return 0;
  }

  const NodeId accessor_node = kernel.node_of(accessor);
  if (accessor_node == home) {
    return 0;
  }
  const auto counts = kernel.read_counters(page);
  const std::uint32_t remote = counts[accessor_node.value()];
  const std::uint32_t local = counts[home.value()];
  if (remote <= local || remote - local <= config_.threshold) {
    return 0;
  }

  // The comparator hardware raises the threshold interrupt; from here on
  // everything is the handler's migration policy.
  ++stats_.interrupts;
  if (st.frozen) {
    ++stats_.suppressed_frozen;
    return 0;
  }
  if (st.migrations > 0 &&
      now - st.last_migration < config_.page_cooloff_ns) {
    ++stats_.suppressed_cooloff;
    return 0;
  }
  if (any_migration_yet_ &&
      now - last_any_migration_ < config_.global_min_interval_ns) {
    ++stats_.suppressed_global;
    return 0;
  }

  const MigrationResult res = kernel.migrate_page(page, accessor_node);
  if (!res.migrated) {
    return 0;
  }
  st.last_migration = now;
  st.window_open = false;  // fresh window on the new frame
  ++st.migrations;
  if (st.migrations >= config_.max_migrations_per_page) {
    st.frozen = true;
  }
  last_any_migration_ = now;
  any_migration_yet_ = true;
  ++stats_.migrations;
  stats_.cost += res.cost;
  return res.cost;
}

}  // namespace repro::os
