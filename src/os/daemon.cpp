#include "repro/os/daemon.hpp"

#include "repro/common/assert.hpp"
#include "repro/os/kernel.hpp"

namespace repro::os {

KernelMigrationDaemon::KernelMigrationDaemon(DaemonConfig config)
    : config_(config) {
  REPRO_REQUIRE(config.threshold >= 1);
  REPRO_REQUIRE(config.window_ns >= 1);
}

Ns KernelMigrationDaemon::on_miss(Kernel& kernel, ProcId accessor,
                                  VPage page, NodeId home, Ns now) {
  PageState& st = pages_[page];

  // Counter aging: the kernel evaluates reference counters over fixed
  // windows; a page first touched after its window expired gets a fresh
  // window (counters reset). This is what makes the daemon blind to
  // pages with modest per-window remote traffic.
  if (!st.window_open || now - st.window_start > config_.window_ns) {
    kernel.reset_counters(page);
    st.window_start = now;
    st.window_open = true;
    ++stats_.window_resets;
    return 0;
  }

  const NodeId accessor_node = kernel.node_of(accessor);
  if (accessor_node == home) {
    return 0;
  }
  const auto counts = kernel.read_counters(page);
  const std::uint32_t remote = counts[accessor_node.value()];
  const std::uint32_t local = counts[home.value()];
  if (remote <= local || remote - local <= config_.threshold) {
    return 0;
  }

  // The comparator hardware raises the threshold interrupt; from here on
  // everything is the handler's migration policy.
  ++stats_.interrupts;
  const auto scan = [&](trace::DaemonDecision decision, Ns cost) {
    if (trace_ == nullptr) {
      return;
    }
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kDaemonScan;
    ev.time = now;
    ev.page = page.value();
    ev.node = static_cast<std::int32_t>(accessor_node.value());
    ev.src = static_cast<std::int32_t>(home.value());
    ev.a = static_cast<std::uint64_t>(decision);
    ev.cost = cost;
    trace_->emit(trace_lane_, ev);
  };
  if (st.frozen) {
    ++stats_.suppressed_frozen;
    scan(trace::DaemonDecision::kSuppressedFrozen, 0);
    return 0;
  }
  if (st.migrations > 0 &&
      now - st.last_migration < config_.page_cooloff_ns) {
    ++stats_.suppressed_cooloff;
    scan(trace::DaemonDecision::kSuppressedCooloff, 0);
    return 0;
  }
  if (any_migration_yet_ &&
      now - last_any_migration_ < config_.global_min_interval_ns) {
    ++stats_.suppressed_global;
    scan(trace::DaemonDecision::kSuppressedGlobal, 0);
    return 0;
  }

  if (trace_ != nullptr) {
    // The kernel's migration event is stamped at the sink's clock;
    // bring it up to the miss batch time before the handler runs.
    trace_->set_now(now);
  }
  const MigrationResult res = kernel.migrate_page(page, accessor_node);
  if (res.busy) {
    // Transient pin: defer rather than reject -- counters stay hot, so
    // the comparator will re-trigger and the move retries naturally.
    ++stats_.deferred_busy;
    scan(trace::DaemonDecision::kDeferredBusy, 0);
    return 0;
  }
  if (!res.migrated) {
    scan(trace::DaemonDecision::kRejected, 0);
    return 0;
  }
  scan(trace::DaemonDecision::kMigrated, res.cost);
  st.last_migration = now;
  st.window_open = false;  // fresh window on the new frame
  ++st.migrations;
  if (st.migrations >= config_.max_migrations_per_page) {
    st.frozen = true;
    if (trace_ != nullptr) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kPageFreeze;
      ev.time = now;
      ev.page = page.value();
      ev.node = static_cast<std::int32_t>(res.actual.value());
      trace_->emit(trace_lane_, ev);
    }
  }
  last_any_migration_ = now;
  any_migration_yet_ = true;
  ++stats_.migrations;
  stats_.cost += res.cost;
  return res.cost;
}

std::uint64_t KernelMigrationDaemon::digest(Ns now) const {
  // Saturated relative ages (see the header): each absolute time is
  // digested as min(now - t, limit + 1) where `limit` is the only
  // threshold it is ever compared against. Ages at or beyond the limit
  // are behaviourally indistinguishable -- the comparisons are
  // monotone in `now` -- so saturating them lets a quiescent daemon's
  // digest repeat.
  const auto rel = [now](Ns t, Ns limit) {
    const Ns age = now - t;
    return static_cast<std::uint64_t>(age > limit ? limit + 1 : age);
  };
  std::uint64_t combined = pages_.size();
  for (const auto& [page, st] : pages_) {
    StateHash entry_hash(avalanche64(page.value()));
    entry_hash.mix(st.window_open ? rel(st.window_start, config_.window_ns)
                                  : ~std::uint64_t{0});
    entry_hash.mix(st.window_open ? 1 : 0);
    // last_migration only gates the cooloff check, and only once the
    // page has migrated at all.
    entry_hash.mix(st.migrations > 0
                       ? rel(st.last_migration, config_.page_cooloff_ns)
                       : ~std::uint64_t{0});
    entry_hash.mix(st.migrations);
    entry_hash.mix(st.frozen ? 1 : 0);
    combined += avalanche64(entry_hash.value());
  }
  StateHash hash;
  hash.mix(combined);
  hash.mix(any_migration_yet_
               ? rel(last_any_migration_, config_.global_min_interval_ns)
               : ~std::uint64_t{0});
  hash.mix(any_migration_yet_ ? 1 : 0);
  return hash.value();
}

void KernelMigrationDaemon::advance_replayed(Ns dt) {
  for (auto& [page, st] : pages_) {
    st.window_start += dt;
    st.last_migration += dt;
  }
  last_any_migration_ += dt;
}

}  // namespace repro::os
