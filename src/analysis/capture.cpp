#include "repro/analysis/capture.hpp"

#include <algorithm>
#include <utility>

namespace repro::analysis {

std::size_t CapturedProgram::num_timed_phases() const {
  std::size_t n = 0;
  for (const CapturedPhase& phase : phases) {
    if (phase.timed) {
      ++n;
    }
  }
  return n;
}

CapturedPhase capture_phase(const std::string& name,
                            const sim::RegionProgram& program,
                            std::span<const ProcId> binding, bool timed) {
  CapturedPhase phase;
  phase.name = name;
  phase.timed = timed;
  const std::size_t threads = program.num_threads();
  if (binding.empty()) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      phase.binding.emplace_back(t);
    }
  } else {
    phase.binding.assign(binding.begin(), binding.end());
  }
  const std::uint32_t size = program.size();
  phase.pages.reserve(size);
  phase.lines.reserve(size);
  phase.is_access.reserve(size);
  phase.is_write.reserve(size);
  phase.is_stream.reserve(size);
  phase.compute.reserve(size);
  phase.offsets.reserve(threads + 1);
  phase.offsets.push_back(0);
  for (std::uint32_t t = 0; t < threads; ++t) {
    for (std::uint32_t i = program.thread_begin(t); i < program.thread_end(t);
         ++i) {
      phase.pages.push_back(program.page(i).value());
      phase.lines.push_back(program.lines(i));
      phase.is_access.push_back(program.is_access(i) ? 1 : 0);
      phase.is_write.push_back(program.is_write(i) ? 1 : 0);
      phase.is_stream.push_back(program.is_stream(i) ? 1 : 0);
      phase.compute.push_back(program.compute(i));
    }
    phase.offsets.push_back(static_cast<std::uint32_t>(phase.pages.size()));
  }
  return phase;
}

void finalize_page_bound(CapturedProgram& captured) {
  std::uint64_t bound = 0;
  for (const CapturedPhase& phase : captured.phases) {
    for (std::uint32_t i = 0; i < phase.size(); ++i) {
      if (phase.is_access[i] != 0) {
        bound = std::max(bound, phase.pages[i] + 1);
      }
    }
  }
  for (const vm::PageRange& range : captured.hot_ranges) {
    bound = std::max(bound, range.end().value());
  }
  captured.page_bound = bound;
}

PhaseRecorder::PhaseRecorder(omp::Runtime& runtime) : runtime_(&runtime) {
  runtime_->set_dry_run(true);
  runtime_->set_region_inspector(
      [this](const std::string& name, const sim::RegionProgram& program,
             std::span<const ProcId> binding) {
        captured_.phases.push_back(
            capture_phase(name, program, binding, timed_));
      });
}

PhaseRecorder::~PhaseRecorder() {
  runtime_->set_region_inspector({});
  runtime_->set_dry_run(false);
}

CapturedProgram PhaseRecorder::take() {
  CapturedProgram out = std::move(captured_);
  captured_ = CapturedProgram{};
  return out;
}

}  // namespace repro::analysis
