#include "repro/analysis/advisor.hpp"

#include <algorithm>
#include <bit>
#include <list>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "repro/common/assert.hpp"

namespace repro::analysis {

namespace {

/// Per-processor page-grain true-LRU cache, mirroring the memory
/// system's PageCache: capacity in whole pages, most-recently-touched
/// at the front.
class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool touch(std::uint64_t page) {
    auto it = index_.find(page);
    if (it == index_.end()) {
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  /// Inserts a missing page; returns the evicted page, if any.
  std::optional<std::uint64_t> insert(std::uint64_t page) {
    std::optional<std::uint64_t> evicted;
    if (capacity_ == 0) {
      return evicted;
    }
    if (lru_.size() >= capacity_) {
      evicted = lru_.back();
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(page);
    index_[page] = lru_.begin();
    return evicted;
  }

  void invalidate(std::uint64_t page) {
    auto it = index_.find(page);
    if (it == index_.end()) {
      return;
    }
    lru_.erase(it->second);
    index_.erase(it);
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      index_;
};

struct PendingThread {
  Ns clock = 0;
  std::uint32_t thread = 0;
  std::uint32_t op = 0;

  /// Min-heap on clock; the engine breaks clock ties in favour of the
  /// lower thread id, and so does the model.
  [[nodiscard]] bool operator>(const PendingThread& other) const {
    if (clock != other.clock) {
      return clock > other.clock;
    }
    return thread > other.thread;
  }
};

std::string format_fraction(double value) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << value * 100.0 << "%";
  return os.str();
}

}  // namespace

AdvisorView AdvisorView::from_config(const memsys::MachineConfig& config) {
  AdvisorView view;
  view.num_nodes = config.num_nodes;
  view.procs_per_node = config.procs_per_node;
  view.lines_per_page = config.lines_per_page();
  view.counter_max = config.counter_max();
  view.cache_capacity_pages = config.cache_capacity_pages();
  view.cache_hit_ns = config.cache_hit_ns;
  view.local_latency_ns = config.mem_latency_ns.empty()
                              ? 329.0
                              : config.mem_latency_ns.front();
  if (config.mem_latency_ns.size() > 1) {
    double sum = 0.0;
    for (std::size_t i = 1; i < config.mem_latency_ns.size(); ++i) {
      sum += config.mem_latency_ns[i];
    }
    view.remote_latency_ns =
        sum / static_cast<double>(config.mem_latency_ns.size() - 1);
  } else {
    view.remote_latency_ns = view.local_latency_ns;
  }
  view.mem_occupancy_ns = config.mem_occupancy_ns;
  view.page_move_ns = config.page_copy_ns + config.tlb_local_flush_ns +
                      config.tlb_shootdown_ns;
  return view;
}

AccessMatrix::AccessMatrix(std::uint64_t num_pages, std::size_t num_nodes)
    : num_pages_(num_pages),
      num_nodes_(num_nodes),
      cells_(num_pages * num_nodes, 0) {}

void AccessMatrix::add(std::uint64_t page, std::size_t node,
                       std::uint64_t lines) {
  REPRO_REQUIRE(page < num_pages_ && node < num_nodes_);
  cells_[page * num_nodes_ + node] += lines;
}

std::uint64_t AccessMatrix::at(std::uint64_t page, std::size_t node) const {
  REPRO_REQUIRE(page < num_pages_ && node < num_nodes_);
  return cells_[page * num_nodes_ + node];
}

std::uint64_t AccessMatrix::page_total(std::uint64_t page) const {
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    total += at(page, n);
  }
  return total;
}

std::optional<std::size_t> AccessMatrix::dominant_node(
    std::uint64_t page) const {
  std::uint64_t best = 0;
  std::size_t best_node = 0;
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    const std::uint64_t c = at(page, n);
    if (c > best) {
      best = c;
      best_node = n;
    }
  }
  if (best == 0) {
    return std::nullopt;
  }
  return best_node;
}

AccessMatrix& AccessMatrix::operator+=(const AccessMatrix& other) {
  REPRO_REQUIRE(num_pages_ == other.num_pages_ &&
                num_nodes_ == other.num_nodes_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  return *this;
}

Advisor::Advisor(AdvisorConfig config, AdvisorView view)
    : config_(config), view_(view) {
  REPRO_REQUIRE(view_.num_nodes >= 1 && view_.procs_per_node >= 1);
  REPRO_REQUIRE_MSG(view_.num_procs() <= 64,
                    "advisor sharer masks model at most 64 processors");
}

LocalityDataflow Advisor::analyze(const CapturedProgram& captured) const {
  LocalityDataflow flow;
  flow.page_bound = captured.page_bound;
  flow.first_touch_node.assign(captured.page_bound, -1);
  flow.first_touch_thread.assign(captured.page_bound, -1);
  flow.cold_first_touch.assign(captured.page_bound, 0);
  flow.first_touch_phase.assign(captured.page_bound, 0);
  flow.iteration = AccessMatrix(captured.page_bound, view_.num_nodes);
  flow.phase_names.push_back("");

  std::vector<ModelCache> caches;
  caches.reserve(view_.num_procs());
  for (std::size_t p = 0; p < view_.num_procs(); ++p) {
    caches.emplace_back(view_.cache_capacity_pages);
  }
  // Which processors hold each page (the directory's sharer masks).
  std::vector<std::uint64_t> sharers(captured.page_bound, 0);

  for (const CapturedPhase& phase : captured.phases) {
    const std::uint32_t phase_id =
        static_cast<std::uint32_t>(flow.phase_names.size());
    flow.phase_names.push_back(phase.name);
    AccessMatrix* matrix = nullptr;
    if (phase.timed) {
      flow.phases.push_back(
          PhaseMatrix{phase.name,
                      AccessMatrix(captured.page_bound, view_.num_nodes)});
      matrix = &flow.phases.back().matrix;
    }

    // Event-ordered interleave of the per-thread streams, like the
    // engine (op costs are estimates: they only decide the relative
    // order in which threads reach shared pages, never miss counts of
    // private ones).
    std::priority_queue<PendingThread, std::vector<PendingThread>,
                        std::greater<>>
        heap;
    for (std::uint32_t t = 0; t < phase.num_threads(); ++t) {
      if (phase.offsets[t] < phase.offsets[t + 1]) {
        heap.push(PendingThread{0, t, phase.offsets[t]});
      }
    }
    while (!heap.empty()) {
      PendingThread cur = heap.top();
      heap.pop();
      const std::uint32_t i = cur.op;
      const std::size_t proc = phase.binding[cur.thread].value();
      const std::size_t node = proc / view_.procs_per_node;
      Ns cost = phase.compute[i];
      if (phase.is_access[i] != 0) {
        const std::uint64_t page = phase.pages[i];
        const std::uint64_t lines = phase.lines[i];
        const bool hit = caches[proc].touch(page);
        if (hit) {
          cost += static_cast<Ns>(static_cast<double>(lines) *
                                  view_.cache_hit_ns);
        } else {
          if (flow.first_touch_node[page] < 0) {
            flow.first_touch_node[page] = static_cast<std::int32_t>(node);
            flow.first_touch_thread[page] =
                static_cast<std::int32_t>(cur.thread);
            flow.cold_first_touch[page] = phase.timed ? 0 : 1;
            flow.first_touch_phase[page] = phase_id;
          }
          const bool local =
              flow.first_touch_node[page] == static_cast<std::int32_t>(node);
          const double latency =
              local ? view_.local_latency_ns : view_.remote_latency_ns;
          cost += static_cast<Ns>(
              latency + static_cast<double>(lines) * view_.mem_occupancy_ns);
          if (matrix != nullptr) {
            matrix->add(page, node, lines);
          }
          if (const auto evicted = caches[proc].insert(page)) {
            sharers[*evicted] &= ~(std::uint64_t{1} << proc);
          }
          sharers[page] |= std::uint64_t{1} << proc;
        }
        if (phase.is_write[i] != 0) {
          // A write invalidates every other processor's cached copy
          // (page-grain coherence), which is what makes producer/
          // consumer pages miss -- and count -- every iteration.
          std::uint64_t others =
              sharers[page] & ~(std::uint64_t{1} << proc);
          while (others != 0) {
            const auto victim =
                static_cast<std::size_t>(std::countr_zero(others));
            others &= others - 1;
            caches[victim].invalidate(page);
          }
          sharers[page] = std::uint64_t{1} << proc;
        }
      }
      cur.clock += cost;
      ++cur.op;
      if (cur.op < phase.offsets[cur.thread + 1]) {
        heap.push(cur);
      }
    }
  }

  for (const PhaseMatrix& phase : flow.phases) {
    flow.iteration += phase.matrix;
  }
  return flow;
}

MigrationPrediction predict_migrations(
    const AdvisorConfig& config, std::span<const std::uint64_t> hot_pages,
    std::span<const std::int32_t> initial_home, const PassMatrixFn& matrix) {
  struct History {
    std::uint32_t last_pass = 0;
    std::int32_t prior_home = -1;
    bool has_prior = false;
    bool frozen = false;
  };
  MigrationPrediction out;
  out.final_home.assign(initial_home.begin(), initial_home.end());
  std::unordered_map<std::uint64_t, History> history;
  std::unordered_map<std::uint64_t, std::int32_t> moved;

  struct Candidate {
    std::uint64_t page;
    std::size_t target;
    double ratio;
  };
  for (std::uint32_t pass = 1; pass <= config.max_passes; ++pass) {
    const AccessMatrix& counts = matrix(pass);
    std::vector<Candidate> candidates;
    for (const std::uint64_t page : hot_pages) {
      if (page >= out.final_home.size() || out.final_home[page] < 0) {
        continue;  // unmapped: the engine skips pages without a frame
      }
      const auto home = static_cast<std::size_t>(out.final_home[page]);
      // Upmlib::evaluate, verbatim: strict-greater keeps the lowest
      // remote node on ties, lacc == 0 counts as 1, and the ratio must
      // *exceed* the threshold.
      const std::uint64_t lacc = counts.at(page, home);
      std::uint64_t racc_max = 0;
      std::size_t target = home;
      for (std::size_t n = 0; n < counts.num_nodes(); ++n) {
        if (n == home) {
          continue;
        }
        const std::uint64_t c = counts.at(page, n);
        if (c > racc_max) {
          racc_max = c;
          target = n;
        }
      }
      if (racc_max == 0) {
        continue;
      }
      const double ratio = static_cast<double>(racc_max) /
                           static_cast<double>(std::max<std::uint64_t>(lacc, 1));
      if (ratio > config.threshold) {
        candidates.push_back(Candidate{page, target, ratio});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.ratio != b.ratio) {
                  return a.ratio > b.ratio;
                }
                return a.page < b.page;
              });
    std::uint64_t migrations = 0;
    for (const Candidate& cand : candidates) {
      History& hist = history[cand.page];
      if (hist.frozen) {
        continue;
      }
      if (config.freeze_bouncing_pages && hist.has_prior &&
          hist.prior_home == static_cast<std::int32_t>(cand.target) &&
          hist.last_pass + 1 == pass) {
        hist.frozen = true;
        out.frozen_pages.push_back(cand.page);
        continue;
      }
      hist.prior_home = out.final_home[cand.page];
      hist.has_prior = true;
      hist.last_pass = pass;
      out.final_home[cand.page] = static_cast<std::int32_t>(cand.target);
      moved[cand.page] = static_cast<std::int32_t>(cand.target);
      ++migrations;
    }
    out.migrations_per_pass.push_back(migrations);
    if (migrations == 0) {
      break;  // the engine deactivates itself
    }
  }

  out.migrated_pages.reserve(moved.size());
  for (const auto& [page, target] : moved) {
    out.migrated_pages.push_back(page);
  }
  std::sort(out.migrated_pages.begin(), out.migrated_pages.end());
  out.migrated_targets.reserve(out.migrated_pages.size());
  for (const std::uint64_t page : out.migrated_pages) {
    out.migrated_targets.push_back(out.final_home[page]);
  }
  std::sort(out.frozen_pages.begin(), out.frozen_pages.end());
  return out;
}

std::vector<std::int32_t> Advisor::initial_homes(
    const LocalityDataflow& dataflow, const std::string& placement) const {
  REPRO_REQUIRE_MSG(
      placement != "rand",
      "random placement depends on the engine's fault arrival order and "
      "is statically undecidable");
  REPRO_REQUIRE_MSG(placement == "ft" || placement == "rr" ||
                        placement == "wc",
                    "unknown placement scheme");
  std::vector<std::int32_t> home(dataflow.page_bound, -1);
  for (std::uint64_t page = 0; page < dataflow.page_bound; ++page) {
    if (dataflow.first_touch_node[page] < 0) {
      continue;
    }
    if (placement == "ft") {
      home[page] = dataflow.first_touch_node[page];
    } else if (placement == "rr") {
      home[page] = static_cast<std::int32_t>(page % view_.num_nodes);
    } else {
      home[page] = 0;
    }
  }
  return home;
}

double Advisor::remote_fraction(const AccessMatrix& iteration,
                                std::span<const std::int32_t> home) const {
  std::uint64_t remote = 0;
  std::uint64_t total = 0;
  for (std::uint64_t page = 0; page < iteration.num_pages(); ++page) {
    if (home[page] < 0) {
      continue;
    }
    for (std::size_t n = 0; n < iteration.num_nodes(); ++n) {
      const std::uint64_t c = iteration.at(page, n);
      total += c;
      if (static_cast<std::int32_t>(n) != home[page]) {
        remote += c;
      }
    }
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(remote) / static_cast<double>(total);
}

double Advisor::iteration_cost(const AccessMatrix& iteration,
                               std::span<const std::int32_t> home) const {
  // Requesters run in parallel (one per node here), so the latency the
  // run actually feels is the busiest node's, plus the serialization at
  // the busiest memory module -- the worst-case-placement effect.
  std::vector<double> request(view_.num_nodes, 0.0);
  std::vector<double> service(view_.num_nodes, 0.0);
  for (std::uint64_t page = 0; page < iteration.num_pages(); ++page) {
    if (home[page] < 0) {
      continue;
    }
    const auto h = static_cast<std::size_t>(home[page]);
    for (std::size_t n = 0; n < iteration.num_nodes(); ++n) {
      const std::uint64_t c = iteration.at(page, n);
      if (c == 0) {
        continue;
      }
      const double latency =
          (n == h) ? view_.local_latency_ns : view_.remote_latency_ns;
      request[n] += static_cast<double>(c) * latency;
      service[h] += static_cast<double>(c) * view_.mem_occupancy_ns;
    }
  }
  const double busiest_requester =
      *std::max_element(request.begin(), request.end());
  const double busiest_module =
      *std::max_element(service.begin(), service.end());
  return busiest_requester + busiest_module;
}

PlacementPrediction Advisor::predict(
    const LocalityDataflow& dataflow,
    std::span<const vm::PageRange> hot_ranges, const std::string& placement,
    bool upmlib) const {
  PlacementPrediction cell;
  cell.placement = placement;
  cell.upmlib = upmlib;
  cell.label = placement + (upmlib ? "-upmlib" : "-base");
  cell.initial_home = initial_homes(dataflow, placement);

  const std::uint32_t iterations = std::max<std::uint32_t>(config_.iterations, 1);
  cell.migrations_per_iteration.assign(iterations, 0);

  if (upmlib) {
    std::vector<std::uint64_t> hot_pages;
    for (const vm::PageRange& range : hot_ranges) {
      for (std::uint64_t i = 0; i < range.count; ++i) {
        hot_pages.push_back(range.page(i).value());
      }
    }
    std::sort(hot_pages.begin(), hot_pages.end());
    hot_pages.erase(std::unique(hot_pages.begin(), hot_pages.end()),
                    hot_pages.end());

    // The 11-bit hardware counters saturate within one iteration; the
    // per-iteration image UPMlib sees is the same every steady pass
    // (counters reset after each migrate_memory), so the fixed point
    // replays one saturated matrix.
    AccessMatrix saturated(dataflow.page_bound, view_.num_nodes);
    for (std::uint64_t page = 0; page < dataflow.page_bound; ++page) {
      for (std::size_t n = 0; n < view_.num_nodes; ++n) {
        const std::uint64_t c = dataflow.iteration.at(page, n);
        if (c != 0) {
          saturated.add(page, n,
                        std::min<std::uint64_t>(c, view_.counter_max));
        }
      }
    }
    AdvisorConfig fp = config_;
    fp.max_passes = std::min(fp.max_passes, iterations);
    const MigrationPrediction migration = predict_migrations(
        fp, hot_pages, cell.initial_home,
        [&saturated](std::uint32_t) -> const AccessMatrix& {
          return saturated;
        });
    cell.final_home = migration.final_home;
    cell.migrated_pages = migration.migrated_pages;
    cell.migrated_targets = migration.migrated_targets;
    cell.frozen_pages = migration.frozen_pages;
    for (std::size_t pass = 0;
         pass < migration.migrations_per_pass.size() && pass < iterations;
         ++pass) {
      cell.migrations_per_iteration[pass] =
          migration.migrations_per_pass[pass];
    }
  } else {
    cell.final_home = cell.initial_home;
  }

  cell.initial_remote_fraction =
      remote_fraction(dataflow.iteration, cell.initial_home);
  cell.steady_remote_fraction =
      remote_fraction(dataflow.iteration, cell.final_home);
  const double first_iteration =
      iteration_cost(dataflow.iteration, cell.initial_home);
  const double steady_iteration =
      iteration_cost(dataflow.iteration, cell.final_home);
  cell.predicted_cost =
      first_iteration +
      static_cast<double>(iterations - 1) * steady_iteration +
      static_cast<double>(cell.migrated_pages.size()) * view_.page_move_ns;
  return cell;
}

AdvisorReport Advisor::advise(const std::string& benchmark,
                              const CapturedProgram& captured) const {
  AdvisorReport report;
  report.benchmark = benchmark;
  report.dataflow = analyze(captured);
  for (const char* placement : {"ft", "rr", "wc"}) {
    for (const bool upmlib : {false, true}) {
      report.cells.push_back(predict(report.dataflow, captured.hot_ranges,
                                     placement, upmlib));
    }
  }

  const PlacementPrediction* best = &report.cells.front();
  const PlacementPrediction* ft_base = nullptr;
  for (const PlacementPrediction& cell : report.cells) {
    if (cell.predicted_cost < best->predicted_cost) {
      best = &cell;
    }
    if (cell.label == "ft-base") {
      ft_base = &cell;
    }
  }
  report.predicted_best = best->label;
  if (ft_base != nullptr && best->predicted_cost > 0.0) {
    report.ft_gap =
        (ft_base->predicted_cost - best->predicted_cost) /
        best->predicted_cost;
  }
  report.distribution_unnecessary = report.ft_gap <= config_.unnecessary_margin;
  emit_diagnostics(report);
  return report;
}

void Advisor::emit_diagnostics(AdvisorReport& report) const {
  const LocalityDataflow& flow = report.dataflow;
  const PlacementPrediction* ft_upm = nullptr;
  for (const PlacementPrediction& cell : report.cells) {
    if (cell.label == "ft-upmlib") {
      ft_upm = &cell;
    }
  }

  // advisor.cold-home: pages whose cold-start first touch (serial
  // initialization or the discarded warm-up iteration) homes them away
  // from the node that dominates the steady iterations -- the exact
  // population the paper's 6-22% ft-upmlib gains come from.
  std::size_t cold_total = 0;
  std::size_t cold_shown = 0;
  if (ft_upm != nullptr) {
    for (const std::uint64_t page : ft_upm->migrated_pages) {
      if (flow.cold_first_touch[page] == 0) {
        continue;
      }
      if (flow.iteration.page_total(page) < config_.min_page_lines) {
        continue;
      }
      ++cold_total;
      if (cold_shown >= config_.max_diags_per_rule) {
        continue;
      }
      ++cold_shown;
      const auto dominant = flow.iteration.dominant_node(page);
      Diagnostic diag;
      diag.severity = Severity::kWarning;
      diag.rule = "advisor.cold-home";
      diag.region = flow.phase_names[flow.first_touch_phase[page]];
      diag.page = VPage(page);
      diag.thread = ThreadId(static_cast<std::uint32_t>(
          std::max<std::int32_t>(0, flow.first_touch_thread[page])));
      std::ostringstream msg;
      msg << "cold-start first touch (thread " << flow.first_touch_thread[page]
          << ") homes this page on node " << flow.first_touch_node[page]
          << "; steady iterations reference it "
          << flow.iteration.page_total(page) << " lines/iter, mostly from node "
          << (dominant ? static_cast<std::int64_t>(*dominant) : -1);
      diag.message = msg.str();
      diag.hint =
          "distribute the initialization across the team or let UPMlib's "
          "distribution pass move it after the first iteration";
      report.diagnostics.push_back(std::move(diag));
    }
    if (cold_total > cold_shown) {
      Diagnostic diag;
      diag.severity = Severity::kNote;
      diag.rule = "advisor.summary";
      diag.region = "advisor";
      std::ostringstream msg;
      msg << "advisor.cold-home: " << (cold_total - cold_shown)
          << " further cold-touched pages suppressed";
      diag.message = msg.str();
      report.diagnostics.push_back(std::move(diag));
    }
  }

  // advisor.needs-migration: the benchmark-level fig1 claim.
  if (ft_upm != nullptr && !ft_upm->migrated_pages.empty()) {
    Diagnostic diag;
    diag.severity = Severity::kWarning;
    diag.rule = "advisor.needs-migration";
    diag.region = "advisor";
    std::ostringstream msg;
    msg << "under first-touch, UPMlib would migrate "
        << ft_upm->migrated_pages.size()
        << " pages after the first iteration (predicted remote fraction "
        << format_fraction(ft_upm->initial_remote_fraction) << " -> "
        << format_fraction(ft_upm->steady_remote_fraction) << ")";
    diag.message = msg.str();
    diag.hint = "enable the distribution engine (upm=distribution) to get "
                "the paper's ft-upmlib behaviour";
    report.diagnostics.push_back(std::move(diag));
  }

  // advisor.ping-pong: pages predicted to bounce-freeze under any cell.
  std::vector<std::pair<std::uint64_t, std::string>> frozen;
  for (const PlacementPrediction& cell : report.cells) {
    for (const std::uint64_t page : cell.frozen_pages) {
      frozen.emplace_back(page, cell.label);
    }
  }
  std::sort(frozen.begin(), frozen.end());
  std::size_t frozen_shown = 0;
  for (const auto& [page, label] : frozen) {
    if (frozen_shown >= config_.max_diags_per_rule) {
      break;
    }
    ++frozen_shown;
    Diagnostic diag;
    diag.severity = Severity::kWarning;
    diag.rule = "advisor.ping-pong";
    diag.region = "advisor";
    diag.page = VPage(page);
    std::ostringstream msg;
    msg << "page is predicted to bounce between nodes under " << label
        << "; UPMlib would freeze it (page-level false sharing)";
    diag.message = msg.str();
    diag.hint = "pad or split the shared structure so one node dominates "
                "the page";
    report.diagnostics.push_back(std::move(diag));
  }
  if (frozen.size() > frozen_shown) {
    Diagnostic diag;
    diag.severity = Severity::kNote;
    diag.rule = "advisor.summary";
    diag.region = "advisor";
    std::ostringstream msg;
    msg << "advisor.ping-pong: " << (frozen.size() - frozen_shown)
        << " further bouncing pages suppressed";
    diag.message = msg.str();
    report.diagnostics.push_back(std::move(diag));
  }

  // advisor.distribution-unnecessary: the paper's headline conclusion,
  // stated per benchmark when the prediction supports it.
  if (report.distribution_unnecessary) {
    Diagnostic diag;
    diag.severity = Severity::kNote;
    diag.rule = "advisor.distribution-unnecessary";
    diag.region = "advisor";
    std::ostringstream msg;
    msg << "first-touch placement is predicted within "
        << format_fraction(report.ft_gap) << " of the best cell ("
        << report.predicted_best
        << "): explicit data distribution is unnecessary";
    diag.message = msg.str();
    diag.hint = "first-touch plus dynamic migration recovers the rest "
                "(the paper's thesis)";
    report.diagnostics.push_back(std::move(diag));
  }

  // Canonical order: byte-identical reports regardless of the emission
  // order above (the determinism suite diffs the rendered output).
  canonical_sort(report.diagnostics);
}

}  // namespace repro::analysis
