// Turn-key wiring of the static analyzer into a running machine.
//
// An AnalysisSession installs a region inspector on the machine's
// OpenMP runtime so every parallel region is analyzed just before the
// engine executes it, optionally records a UPMlib call trace, and
// collects everything into one deduplicating sink:
//
//   analysis::AnalysisSession session(*machine);
//   session.attach_upm(upm);
//   ... run the workload ...
//   session.finish();                 // runs the UPM protocol check
//   session.print(std::cout);         // diagnostics table
//
// The session detaches its inspector on destruction; the machine (and
// the attached Upmlib, if any) must outlive it.
#pragma once

#include <iosfwd>

#include "repro/analysis/analyzer.hpp"
#include "repro/analysis/diagnostic.hpp"
#include "repro/omp/machine.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::analysis {

/// Builds the analyzer's machine abstraction from a live machine. The
/// returned view holds references into `machine`; it must not outlive
/// it. Unmapped pages report nullopt homes, so the locality lint only
/// judges pages whose placement is already decided.
[[nodiscard]] MachineView make_machine_view(omp::Machine& machine);

class AnalysisSession {
 public:
  explicit AnalysisSession(omp::Machine& machine, AnalyzerConfig config = {});
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// Starts tracing `upm`'s calls; finish() will run the protocol
  /// checker over the trace.
  void attach_upm(upm::Upmlib& upm);

  /// Runs the trailing checks (currently the UPMlib protocol pass over
  /// the recorded trace). Idempotent; print() calls it.
  void finish();

  /// finish() + diagnostics table with a summary line.
  void print(std::ostream& os);

  [[nodiscard]] const CollectingSink& sink() const { return sink_; }
  [[nodiscard]] const Analyzer& analyzer() const { return analyzer_; }

 private:
  omp::Machine* machine_;
  Analyzer analyzer_;
  CollectingSink sink_;
  upm::Upmlib* upm_ = nullptr;
  bool finished_ = false;
};

}  // namespace repro::analysis
