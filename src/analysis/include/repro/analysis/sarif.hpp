// SARIF 2.1.0 emission of analysis diagnostics, so CI can annotate
// findings (GitHub code-scanning ingests SARIF directly). Minimal
// dialect: one run, one driver, logical locations only -- the
// diagnostics describe simulated pages and regions, not source files.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "repro/analysis/diagnostic.hpp"

namespace repro::analysis {

/// Renders diagnostics as one SARIF 2.1.0 document. Deterministic:
/// results keep `diags` order, the rule table is sorted by id.
[[nodiscard]] std::string diagnostics_to_sarif(
    std::string_view tool_name, std::string_view tool_version,
    std::span<const Diagnostic> diags);

/// Writes the SARIF document to `path` (atomic rename like the JSON
/// emitters).
void write_sarif(const std::string& path, std::string_view tool_name,
                 std::string_view tool_version,
                 std::span<const Diagnostic> diags);

}  // namespace repro::analysis
