// Structured diagnostics for the static analysis passes.
//
// Every finding carries a severity, a stable rule id (documented in
// DESIGN.md), the region or protocol context it was found in, an
// optional page/thread location, a message and a fix hint. Passes write
// into a DiagnosticSink so callers choose the policy (collect, print,
// count, fail-fast).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/table.hpp"

namespace repro::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// "note" | "warning" | "error".
[[nodiscard]] const char* severity_name(Severity severity);

/// Inverse of severity_name; nullopt for anything else. Parses the
/// --analyze-fail-on=<note|warning|error> CLI gate.
[[nodiscard]] std::optional<Severity> parse_severity(std::string_view name);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Stable rule id, e.g. "race.ww-lines" (see DESIGN.md §8).
  std::string rule;
  /// Region name the finding is located in, or a protocol context such
  /// as "upmlib" / "binding".
  std::string region;
  std::optional<VPage> page;
  /// Line index within `page` for line-granular rules
  /// (analysis.false-sharing); meaningless without `page`.
  std::optional<std::uint32_t> line;
  std::optional<ThreadId> thread;
  std::optional<ThreadId> other;  ///< second thread involved, if any
  std::string message;
  std::string hint;  ///< how to fix or what the engine would do

  /// "page 123, threads 0/5" (empty when no location is attached).
  [[nodiscard]] std::string location() const;
};

class DiagnosticSink {
 public:
  virtual ~DiagnosticSink() = default;

  DiagnosticSink() = default;
  DiagnosticSink(const DiagnosticSink&) = default;
  DiagnosticSink& operator=(const DiagnosticSink&) = default;

  virtual void report(Diagnostic diag) = 0;
};

/// Collects diagnostics, deduplicating exact repeats of an earlier
/// finding (same rule, region, location and message -- analysis runs
/// once per region *execution*, so an iterative code would otherwise
/// repeat every finding per iteration).
class CollectingSink final : public DiagnosticSink {
 public:
  void report(Diagnostic diag) override;

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const;
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  /// True when nothing above kNote was reported.
  [[nodiscard]] bool clean() const;
  /// Reports dropped as duplicates of an earlier finding.
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::unordered_set<std::string> seen_;
  std::uint64_t duplicates_ = 0;
};

/// True when any diagnostic is at or above `threshold` (the CI gate
/// behind --analyze-fail-on).
[[nodiscard]] bool any_at_or_above(std::span<const Diagnostic> diags,
                                   Severity threshold);

/// Canonical order for rendering and digesting: (region, rule, page,
/// thread, other, severity, message, hint), stable for exact ties.
/// Analysis passes already emit deterministically within one run, but
/// callers that merge several sinks (per-cell sweeps) sort before
/// comparing output across job counts.
void canonical_sort(std::vector<Diagnostic>& diags);

/// Renders diagnostics as a severity / rule / region / location /
/// message / hint table (paper-style ASCII via common/table).
[[nodiscard]] TextTable diagnostics_table(std::span<const Diagnostic> diags);

/// Table plus a summary line ("N errors, M warnings, K notes; D
/// duplicate findings suppressed"), or a clean-bill one-liner.
void print_diagnostics(std::ostream& os, const CollectingSink& sink);

}  // namespace repro::analysis
