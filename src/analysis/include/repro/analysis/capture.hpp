// Whole-program phase capture for the static placement advisor.
//
// The advisor needs the *sequence* of compiled region programs a
// workload executes -- cold-start faulting order first, then one steady
// timed iteration -- without running the simulator. A PhaseRecorder
// switches the OpenMP runtime into dry-run mode (see
// omp::Runtime::set_dry_run) and installs itself as the region
// inspector; every region the workload issues is copied out of its
// compiled SoA arena into an owning CapturedPhase. Copying matters:
// serial-init and one-shot regions compile *temporary* RegionPrograms
// that die at the end of the run() call.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "repro/common/strong_id.hpp"
#include "repro/common/units.hpp"
#include "repro/omp/runtime.hpp"
#include "repro/sim/program.hpp"
#include "repro/vm/address_space.hpp"

namespace repro::analysis {

/// One executed parallel region, owned: per-thread op streams flattened
/// into columns with [offsets[t], offsets[t+1]) index ranges, exactly
/// mirroring the compiled program's layout, plus a binding snapshot.
struct CapturedPhase {
  std::string name;
  /// Captured after PhaseRecorder::begin_timed() (i.e. part of the
  /// steady-state iteration rather than setup / cold start).
  bool timed = false;
  std::vector<ProcId> binding;  ///< thread -> processor at execution
  std::vector<std::uint64_t> pages;
  std::vector<std::uint32_t> lines;
  std::vector<std::uint8_t> is_access;
  std::vector<std::uint8_t> is_write;
  std::vector<std::uint8_t> is_stream;
  std::vector<Ns> compute;
  std::vector<std::uint32_t> offsets;  ///< num_threads + 1 entries

  [[nodiscard]] std::size_t num_threads() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::uint32_t size() const {
    return offsets.empty() ? 0 : offsets.back();
  }
};

/// A captured workload: every phase in execution order (cold phases
/// first, then the phases of one timed iteration) plus the hot memory
/// areas the workload registers with UPMlib.
struct CapturedProgram {
  std::vector<CapturedPhase> phases;
  std::vector<vm::PageRange> hot_ranges;
  /// Exclusive upper bound of every page id referenced by any phase or
  /// hot range (sizes the advisor's dense page tables).
  std::uint64_t page_bound = 0;

  [[nodiscard]] std::size_t num_timed_phases() const;
  [[nodiscard]] std::size_t num_cold_phases() const {
    return phases.size() - num_timed_phases();
  }
};

/// Captures every region a runtime executes while alive. Construction
/// enables dry-run mode and installs the inspector; destruction
/// restores both (any previous inspector is detached, matching the
/// at-most-one contract of Runtime::set_region_inspector).
class PhaseRecorder {
 public:
  explicit PhaseRecorder(omp::Runtime& runtime);
  ~PhaseRecorder();

  PhaseRecorder(const PhaseRecorder&) = delete;
  PhaseRecorder& operator=(const PhaseRecorder&) = delete;

  /// Marks the cold-start / timed-iteration boundary: phases captured
  /// from now on carry timed = true.
  void begin_timed() { timed_ = true; }

  /// Moves the capture out (hot ranges and page bound still unset; see
  /// harness::advise_benchmark). The recorder stays installed.
  [[nodiscard]] CapturedProgram take();

 private:
  omp::Runtime* runtime_;
  bool timed_ = false;
  CapturedProgram captured_;
};

/// Copies one compiled program into an owning phase (exposed for
/// tests; PhaseRecorder uses it internally).
[[nodiscard]] CapturedPhase capture_phase(const std::string& name,
                                          const sim::RegionProgram& program,
                                          std::span<const ProcId> binding,
                                          bool timed);

/// Recomputes `page_bound` from the phases and hot ranges.
void finalize_page_bound(CapturedProgram& captured);

}  // namespace repro::analysis
