// The static placement advisor: cross-phase locality dataflow over a
// captured workload (see capture.hpp), predicting -- without running
// the simulator -- what the paper measures dynamically.
//
// Pipeline (DESIGN.md §13):
//
//  1. Dataflow. One forward pass over the captured phase sequence
//     replays every thread's op stream through a model of the per-
//     processor page-grain LRU caches (capacity l2/page, write
//     invalidates other processors' copies, exactly the MemorySystem
//     rules). Cold phases warm the caches and fix the first-touch
//     order; timed phases contribute per-page x per-node *miss-line*
//     matrices -- the static analogue of the Origin2000's per-frame
//     reference counters. Miss sets are placement-independent (homes
//     never influence caching), so one dataflow serves every placement.
//
//  2. Placement prediction. Per placement scheme the initial homes are
//     decided statically (ft from the dataflow's first-touch order, rr
//     from page % nodes, wc node 0; "rand" depends on the engine's
//     fault arrival order and is honestly refused). With UPMlib
//     enabled, migrate_memory() is abstractly interpreted to a fixed
//     point: per pass the saturated counter matrix is scored with the
//     exact competitive criterion, candidates sort (ratio desc, page
//     asc), bounce-freeze and deactivation rules apply verbatim.
//
//  3. Verdict. Every (placement x engine) cell gets a predicted cost
//     (latency-weighted remote traffic plus the per-node service
//     bottleneck, plus migration overhead), yielding a per-benchmark
//     ranking -- the static fig1/fig4 -- and the advisor.* diagnostics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "repro/analysis/capture.hpp"
#include "repro/analysis/diagnostic.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/memsys/config.hpp"

namespace repro::analysis {

/// The machine facts the advisor models, derived from a MachineConfig
/// (tests can fabricate small ones).
struct AdvisorView {
  std::size_t num_nodes = 16;
  std::size_t procs_per_node = 1;
  std::uint32_t lines_per_page = 128;
  std::uint32_t counter_max = 2047;
  std::size_t cache_capacity_pages = 256;
  double cache_hit_ns = 16.0;
  double local_latency_ns = 329.0;
  /// Flat stand-in for the hop ladder (mean of the remote entries).
  double remote_latency_ns = 728.0;
  double mem_occupancy_ns = 100.0;
  /// Cost of moving one page (copy + TLB coherence), for the verdict's
  /// migration-overhead term.
  double page_move_ns = 28'000.0;

  [[nodiscard]] static AdvisorView from_config(
      const memsys::MachineConfig& config);
  [[nodiscard]] std::size_t num_procs() const {
    return num_nodes * procs_per_node;
  }
  [[nodiscard]] std::size_t node_of_proc(ProcId proc) const {
    return proc.value() / procs_per_node;
  }
};

struct AdvisorConfig {
  /// Competitive criterion threshold (same default as UpmConfig).
  double threshold = 2.0;
  bool freeze_bouncing_pages = true;
  /// Timed iterations the verdict models (the run being advised).
  std::uint32_t iterations = 3;
  /// Upper bound on abstract migrate_memory() passes (the engine
  /// deactivates itself long before; this is a divergence backstop).
  std::uint32_t max_passes = 16;
  /// Noise floor: page-level rules skip pages with fewer predicted
  /// miss lines per iteration. Steady-state miss totals are small
  /// (caches absorb most references), so the floor is in single-digit
  /// lines.
  std::uint64_t min_page_lines = 2;
  /// Per-rule cap on located diagnostics; excess folds into a summary.
  std::size_t max_diags_per_rule = 8;
  /// ft-base within this fraction of the best cell's predicted cost
  /// => data distribution is unnecessary (the paper's thesis).
  double unnecessary_margin = 0.08;
};

/// Dense page x node matrix of predicted miss lines.
class AccessMatrix {
 public:
  AccessMatrix() = default;
  AccessMatrix(std::uint64_t num_pages, std::size_t num_nodes);

  void add(std::uint64_t page, std::size_t node, std::uint64_t lines);
  [[nodiscard]] std::uint64_t at(std::uint64_t page, std::size_t node) const;
  /// Sum over nodes.
  [[nodiscard]] std::uint64_t page_total(std::uint64_t page) const;
  /// Node with the largest count (lowest id wins ties), or nullopt for
  /// an untouched page.
  [[nodiscard]] std::optional<std::size_t> dominant_node(
      std::uint64_t page) const;
  [[nodiscard]] std::uint64_t num_pages() const { return num_pages_; }
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  AccessMatrix& operator+=(const AccessMatrix& other);

 private:
  std::uint64_t num_pages_ = 0;
  std::size_t num_nodes_ = 0;
  std::vector<std::uint64_t> cells_;  // page-major
};

/// One timed phase's miss matrix, in phase order.
struct PhaseMatrix {
  std::string phase;
  AccessMatrix matrix;
};

/// The placement-independent analysis result.
struct LocalityDataflow {
  std::uint64_t page_bound = 0;
  /// Per page: node of the first-missing processor (-1 = untouched) --
  /// the predicted first-touch home.
  std::vector<std::int32_t> first_touch_node;
  /// Thread that first missed the page (-1 = untouched).
  std::vector<std::int32_t> first_touch_thread;
  /// Page first touched during a cold (untimed) phase.
  std::vector<std::uint8_t> cold_first_touch;
  /// Name of the phase that first touched the page ("" = untouched).
  std::vector<std::uint32_t> first_touch_phase;
  /// Per-timed-phase miss matrices, in captured order.
  std::vector<PhaseMatrix> phases;
  /// Sum of the timed phase matrices: one iteration's counter image
  /// (unsaturated; saturate() gives the 11-bit hardware view).
  AccessMatrix iteration;
  /// Phase names, indexed by first_touch_phase.
  std::vector<std::string> phase_names;

  [[nodiscard]] bool touched(std::uint64_t page) const {
    return page < first_touch_node.size() && first_touch_node[page] >= 0;
  }
};

/// Abstract interpretation of Upmlib::migrate_memory() to fixed point.
struct MigrationPrediction {
  std::vector<std::uint64_t> migrated_pages;  ///< ascending
  std::vector<std::int32_t> migrated_targets;  ///< parallel, final target
  std::vector<std::uint64_t> frozen_pages;  ///< bounce-frozen, ascending
  std::vector<std::uint64_t> migrations_per_pass;
  std::vector<std::int32_t> final_home;  ///< per page, -1 untouched
};

/// Per-pass counter matrices for the fixed point. Pass indices are
/// 1-based like Upmlib::invocation_; steady-state callers return the
/// same saturated matrix every pass.
using PassMatrixFn = std::function<const AccessMatrix&(std::uint32_t pass)>;

[[nodiscard]] MigrationPrediction predict_migrations(
    const AdvisorConfig& config, std::span<const std::uint64_t> hot_pages,
    std::span<const std::int32_t> initial_home, const PassMatrixFn& matrix);

/// One (placement x engine) cell of the verdict.
struct PlacementPrediction {
  std::string placement;
  bool upmlib = false;
  std::string label;  ///< "ft-upmlib" style (matches RunConfig::label)
  std::vector<std::int32_t> initial_home;  ///< per page, -1 untouched
  std::vector<std::int32_t> final_home;    ///< after predicted migrations
  std::vector<std::uint64_t> migrated_pages;
  std::vector<std::int32_t> migrated_targets;
  std::vector<std::uint64_t> frozen_pages;
  std::vector<std::uint64_t> migrations_per_iteration;  ///< length iterations
  /// Fraction of one iteration's miss lines served remotely, before
  /// and after the predicted migrations.
  double initial_remote_fraction = 0.0;
  double steady_remote_fraction = 0.0;
  /// Ranking score over the whole run (not calibrated seconds).
  double predicted_cost = 0.0;
};

/// The per-benchmark verdict: the static analogue of one fig1 group.
struct AdvisorReport {
  std::string benchmark;
  LocalityDataflow dataflow;
  std::vector<PlacementPrediction> cells;
  std::string predicted_best;  ///< label of the lowest predicted cost
  /// (ft-base cost - best cost) / best cost.
  double ft_gap = 0.0;
  bool distribution_unnecessary = false;
  std::vector<Diagnostic> diagnostics;  ///< advisor.* findings
};

class Advisor {
 public:
  Advisor(AdvisorConfig config, AdvisorView view);

  /// Phase-ordered dataflow pass (placement-independent).
  [[nodiscard]] LocalityDataflow analyze(
      const CapturedProgram& captured) const;

  /// Predicts one cell. `placement` is "ft" | "rr" | "wc" ("rand" is
  /// statically undecidable and rejected with ContractViolation).
  [[nodiscard]] PlacementPrediction predict(
      const LocalityDataflow& dataflow,
      std::span<const vm::PageRange> hot_ranges,
      const std::string& placement, bool upmlib) const;

  /// Full verdict: dataflow + the six standard cells + diagnostics.
  [[nodiscard]] AdvisorReport advise(const std::string& benchmark,
                                     const CapturedProgram& captured) const;

  [[nodiscard]] const AdvisorConfig& config() const { return config_; }
  [[nodiscard]] const AdvisorView& view() const { return view_; }

 private:
  AdvisorConfig config_;
  AdvisorView view_;

  [[nodiscard]] std::vector<std::int32_t> initial_homes(
      const LocalityDataflow& dataflow, const std::string& placement) const;
  [[nodiscard]] double remote_fraction(
      const AccessMatrix& iteration,
      std::span<const std::int32_t> home) const;
  [[nodiscard]] double iteration_cost(
      const AccessMatrix& iteration,
      std::span<const std::int32_t> home) const;
  void emit_diagnostics(AdvisorReport& report) const;
};

}  // namespace repro::analysis
