// Static checks over parallel-region programs, run *before* the engine
// executes them.
//
// Three passes (DESIGN.md §8):
//
//  1. Page-grain race detection: the engine interleaves the per-thread
//     op streams of one region in virtual time with no intra-region
//     ordering, so two threads touching the same page with at least one
//     writer is a hazard. At page grain the analyzer only knows how many
//     lines each op touches, not which; it therefore splits findings by
//     the pigeonhole argument: if two ops' line counts sum past the page
//     size their line sets *must* intersect (a definite data race),
//     otherwise the sharing may be page-level false sharing -- a real
//     phenomenon the NAS models reproduce on purpose (FT transposes) --
//     reported as a note.
//
//  2. NUMA-locality lint: predicts each page's per-node access histogram
//     from the op stream and the thread binding, and flags pages whose
//     remote-to-local ratio under the *current* placement exceeds the
//     competitive threshold -- a static prediction of exactly what
//     UPMlib's migrate_memory() would later derive from the hardware
//     counters.
//
//  3. Protocol checks: thread-binding validity (what Engine::run would
//     abort on) and the UPMlib record/compare/replay/undo call-sequence
//     contract, checked over a recorded call trace.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "repro/analysis/diagnostic.hpp"
#include "repro/common/strong_id.hpp"
#include "repro/sim/program.hpp"
#include "repro/sim/region.hpp"
#include "repro/upmlib/upmlib.hpp"

namespace repro::analysis {

struct AnalyzerConfig {
  /// Competitive threshold of the locality lint: a page is flagged when
  /// predicted racc_max / lacc exceeds it (same default as
  /// upm::UpmConfig::threshold, so the lint predicts the engine).
  double remote_threshold = 2.0;
  /// Minimum predicted line references before the locality rule
  /// considers a page (drops noise from single-touch pages).
  std::uint64_t min_page_lines = 64;
  /// Per-rule cap on located diagnostics per region; the excess is
  /// folded into one summary note.
  std::size_t max_diags_per_rule = 8;
  bool race_pass = true;
  bool locality_pass = true;
  /// Line-granular false-sharing prediction (analysis.false-sharing):
  /// flags coherence lines written by >= 2 threads, using only
  /// position-certain evidence (Op::access_at ops). Validated against
  /// the coherence model's traced invalidation ping-pongs.
  bool false_sharing_pass = true;
};

/// The machine facts the passes need, decoupled from the concrete
/// machine classes (tests can fake them).
struct MachineView {
  std::uint32_t lines_per_page = 0;
  std::size_t num_procs = 0;
  std::size_t num_nodes = 0;
  std::function<NodeId(ProcId)> node_of_proc;
  /// Home node of a page, or nullopt while the page is unmapped (the
  /// locality lint skips unmapped pages: their first-touch home depends
  /// on the engine's interleaving).
  std::function<std::optional<NodeId>(VPage)> home_of;
};

class Analyzer {
 public:
  Analyzer(AnalyzerConfig config, MachineView view);

  /// Races + locality over one region's compiled program, plus the
  /// binding protocol check. `binding` empty means identity.
  void analyze_region(const std::string& name,
                      const sim::RegionProgram& program,
                      std::span<const ProcId> binding,
                      DiagnosticSink& sink) const;

  /// Convenience for builder-side programs (tests): compiles, then
  /// analyzes.
  void analyze_region(const std::string& name,
                      const std::vector<sim::ThreadProgram>& programs,
                      std::span<const ProcId> binding,
                      DiagnosticSink& sink) const;

  /// The binding contract Engine::run aborts on, as diagnostics:
  /// in-range, distinct, and covering every program.
  void check_binding(const std::string& region, std::size_t num_programs,
                     std::span<const ProcId> binding,
                     DiagnosticSink& sink) const;

  /// UPMlib call-sequence contract over a recorded trace (see
  /// upm::Upmlib::enable_call_trace()).
  void check_upm_trace(std::span<const upm::UpmCall> trace,
                       DiagnosticSink& sink) const;

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
  MachineView view_;

  void race_pass(const std::string& name, const sim::RegionProgram& program,
                 DiagnosticSink& sink) const;
  void false_sharing_pass(const std::string& name,
                          const sim::RegionProgram& program,
                          DiagnosticSink& sink) const;
  void locality_pass(const std::string& name,
                     const sim::RegionProgram& program,
                     std::span<const ProcId> binding,
                     DiagnosticSink& sink) const;
};

}  // namespace repro::analysis
