#include "repro/analysis/sarif.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "repro/common/assert.hpp"

namespace repro::analysis {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view text) {
  std::string out = "\"";
  append_escaped(out, text);
  out += '"';
  return out;
}

/// SARIF result levels: "note" | "warning" | "error" -- conveniently
/// the same names the diagnostics already use.
const char* sarif_level(Severity severity) { return severity_name(severity); }

}  // namespace

std::string diagnostics_to_sarif(std::string_view tool_name,
                                 std::string_view tool_version,
                                 std::span<const Diagnostic> diags) {
  std::set<std::string> rules;
  for (const Diagnostic& diag : diags) {
    rules.insert(diag.rule);
  }

  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": " + quoted(tool_name) + ",\n";
  out += "          \"version\": " + quoted(tool_version) + ",\n";
  out += "          \"informationUri\": "
         "\"https://github.com/\",\n";
  out += "          \"rules\": [\n";
  bool first = true;
  for (const std::string& rule : rules) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "            {\"id\": " + quoted(rule) + "}";
  }
  out += "\n          ]\n        }\n      },\n";
  out += "      \"results\": [\n";
  first = true;
  for (const Diagnostic& diag : diags) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    std::string message;
    append_escaped(message, diag.message);
    if (!diag.hint.empty()) {
      message += " (hint: ";
      append_escaped(message, diag.hint);
      message += ")";
    }
    std::string location = diag.region;
    const std::string where = diag.location();
    if (!where.empty()) {
      location += " [" + where + "]";
    }
    out += "        {\"ruleId\": " + quoted(diag.rule) +
           ", \"level\": \"" + sarif_level(diag.severity) +
           "\", \"message\": {\"text\": \"" + message +
           "\"}, \"locations\": [{\"logicalLocations\": "
           "[{\"fullyQualifiedName\": " +
           quoted(location) + "}]}]}";
  }
  out += "\n      ]\n    }\n  ]\n}\n";
  return out;
}

void write_sarif(const std::string& path, std::string_view tool_name,
                 std::string_view tool_version,
                 std::span<const Diagnostic> diags) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    REPRO_REQUIRE_MSG(os.good(), "cannot open SARIF output file");
    os << diagnostics_to_sarif(tool_name, tool_version, diags);
    REPRO_REQUIRE_MSG(os.good(), "SARIF write failed");
  }
  REPRO_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                    "SARIF rename failed");
}

}  // namespace repro::analysis
