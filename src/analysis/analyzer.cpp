#include "repro/analysis/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "repro/common/assert.hpp"
#include "repro/common/table.hpp"

namespace repro::analysis {

namespace {

/// One thread's use of one page within a region: the largest single-op
/// line counts (per-op maxima make the pigeonhole argument sound even
/// when a thread revisits the page).
struct ThreadUse {
  std::uint32_t thread = 0;
  std::uint32_t read_lines = 0;   ///< max lines of one read op
  std::uint32_t write_lines = 0;  ///< max lines of one write op
};

struct PageUse {
  VPage page;
  std::vector<ThreadUse> threads;

  ThreadUse& use(std::uint32_t thread) {
    for (ThreadUse& u : threads) {
      if (u.thread == thread) {
        return u;
      }
    }
    threads.push_back(ThreadUse{thread, 0, 0});
    return threads.back();
  }
};

/// Emits up to `cap` located findings, then one summary note counting
/// the suppressed remainder.
class CappedEmitter {
 public:
  CappedEmitter(DiagnosticSink& sink, std::size_t cap) : sink_(&sink),
                                                         cap_(cap) {}

  void emit(Diagnostic diag) {
    if (emitted_ < cap_) {
      sink_->report(std::move(diag));
      ++emitted_;
    } else {
      ++suppressed_;
    }
  }

  void summarize(const std::string& rule, const std::string& region,
                 const std::string& what) {
    if (suppressed_ == 0) {
      return;
    }
    Diagnostic d;
    d.severity = Severity::kNote;
    d.rule = rule;
    d.region = region;
    d.message = std::to_string(suppressed_) + " further " + what +
                " finding(s) in this region suppressed";
    d.hint = "raise AnalyzerConfig::max_diags_per_rule for the full list";
    sink_->report(std::move(d));
  }

 private:
  DiagnosticSink* sink_;
  std::size_t cap_;
  std::size_t emitted_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace

Analyzer::Analyzer(AnalyzerConfig config, MachineView view)
    : config_(config), view_(std::move(view)) {
  REPRO_REQUIRE(view_.lines_per_page >= 1);
  REPRO_REQUIRE(view_.num_procs >= 1 && view_.num_nodes >= 1);
  REPRO_REQUIRE(config_.remote_threshold > 0.0);
}

void Analyzer::analyze_region(const std::string& name,
                              const sim::RegionProgram& program,
                              std::span<const ProcId> binding,
                              DiagnosticSink& sink) const {
  check_binding(name, program.num_threads(), binding, sink);
  if (config_.race_pass) {
    race_pass(name, program, sink);
  }
  if (config_.false_sharing_pass) {
    false_sharing_pass(name, program, sink);
  }
  if (config_.locality_pass) {
    locality_pass(name, program, binding, sink);
  }
}

void Analyzer::analyze_region(const std::string& name,
                              const std::vector<sim::ThreadProgram>& programs,
                              std::span<const ProcId> binding,
                              DiagnosticSink& sink) const {
  analyze_region(name, sim::RegionProgram(programs), binding, sink);
}

void Analyzer::race_pass(const std::string& name,
                         const sim::RegionProgram& program,
                         DiagnosticSink& sink) const {
  std::unordered_map<VPage, PageUse> pages;
  for (std::uint32_t t = 0; t < program.num_threads(); ++t) {
    for (std::uint32_t i = program.thread_begin(t);
         i < program.thread_end(t); ++i) {
      if (!program.is_access(i) || program.lines(i) == 0) {
        continue;
      }
      PageUse& pu = pages[program.page(i)];
      pu.page = program.page(i);
      ThreadUse& use = pu.use(t);
      if (program.is_write(i)) {
        use.write_lines = std::max(use.write_lines, program.lines(i));
      } else {
        use.read_lines = std::max(use.read_lines, program.lines(i));
      }
    }
  }

  // Deterministic report order (the map iterates in hash order).
  std::vector<const PageUse*> shared;
  for (const auto& [page, pu] : pages) {
    bool written = false;
    for (const ThreadUse& u : pu.threads) {
      written |= u.write_lines > 0;
    }
    if (written && pu.threads.size() >= 2) {
      shared.push_back(&pu);
    }
  }
  std::sort(shared.begin(), shared.end(),
            [](const PageUse* a, const PageUse* b) { return a->page < b->page; });

  const std::uint32_t lpp = view_.lines_per_page;
  CappedEmitter ww(sink, config_.max_diags_per_rule);
  CappedEmitter rw(sink, config_.max_diags_per_rule);
  CappedEmitter share(sink, config_.max_diags_per_rule);
  for (const PageUse* pu : shared) {
    // Top two single-op write line counts by distinct threads, and the
    // best writer/reader pairing across distinct threads.
    const ThreadUse* w1 = nullptr;
    const ThreadUse* w2 = nullptr;
    for (const ThreadUse& u : pu->threads) {
      if (u.write_lines == 0) {
        continue;
      }
      if (w1 == nullptr || u.write_lines > w1->write_lines) {
        w2 = w1;
        w1 = &u;
      } else if (w2 == nullptr || u.write_lines > w2->write_lines) {
        w2 = &u;
      }
    }
    const ThreadUse* reader = nullptr;
    for (const ThreadUse& u : pu->threads) {
      if (u.read_lines == 0 || &u == w1) {
        continue;
      }
      if (reader == nullptr || u.read_lines > reader->read_lines) {
        reader = &u;
      }
    }

    if (w1 != nullptr && w2 != nullptr &&
        w1->write_lines + w2->write_lines > lpp) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.rule = "race.ww-lines";
      d.region = name;
      d.page = pu->page;
      d.thread = ThreadId(w1->thread);
      d.other = ThreadId(w2->thread);
      d.message = "definite write/write race: the threads write " +
                  std::to_string(w1->write_lines) + " and " +
                  std::to_string(w2->write_lines) + " of " +
                  std::to_string(lpp) +
                  " lines in one region, so some line is written twice "
                  "with no ordering between the writes";
      d.hint = "split the writers into separate regions (fork/join is the "
               "engine's only ordering) or partition the page";
      ww.emit(std::move(d));
      continue;
    }
    if (w1 != nullptr && reader != nullptr &&
        w1->write_lines + reader->read_lines > lpp) {
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.rule = "race.rw-lines";
      d.region = name;
      d.page = pu->page;
      d.thread = ThreadId(w1->thread);
      d.other = ThreadId(reader->thread);
      d.message = "read/write overlap: thread " +
                  std::to_string(w1->thread) + " writes " +
                  std::to_string(w1->write_lines) + " lines while thread " +
                  std::to_string(reader->thread) + " reads " +
                  std::to_string(reader->read_lines) + " of " +
                  std::to_string(lpp) + " -- some line is both";
      d.hint = "move the reads into a region after the join barrier";
      rw.emit(std::move(d));
      continue;
    }
    Diagnostic d;
    d.severity = Severity::kNote;
    d.rule = "race.page-share";
    d.region = name;
    d.page = pu->page;
    d.thread = ThreadId(w1->thread);
    d.message = "page touched by " + std::to_string(pu->threads.size()) +
                " threads with at least one writer; the line sets may be "
                "disjoint (page-level false sharing)";
    d.hint = "expected at non-page-aligned slice boundaries (transposes); "
             "costs invalidations and can ping-pong under migration";
    share.emit(std::move(d));
  }
  ww.summarize("race.summary", name, "write/write race");
  rw.summarize("race.summary", name, "read/write overlap");
  share.summarize("race.summary", name, "page-sharing");
}

void Analyzer::false_sharing_pass(const std::string& name,
                                  const sim::RegionProgram& program,
                                  DiagnosticSink& sink) const {
  const std::uint32_t lpp = view_.lines_per_page;
  // Writer sets per (page, line), from position-certain evidence only:
  // Op::access_at places its lines exactly, so two threads positioned on
  // one line *will* ping-pong that line under the coherence model. A
  // default-position write could sit anywhere in the page -- that
  // uncertainty is race.page-share / race.ww-lines territory, and
  // claiming specific lines from it would wreck the rule's precision
  // against the traced ground truth.
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::vector<std::uint32_t>>
      writers;
  for (std::uint32_t t = 0; t < program.num_threads(); ++t) {
    for (std::uint32_t i = program.thread_begin(t);
         i < program.thread_end(t); ++i) {
      if (!program.is_access(i) || !program.is_write(i) ||
          !program.is_positioned(i) || program.lines(i) == 0) {
        continue;
      }
      const std::uint32_t covered = std::min(program.lines(i), lpp);
      for (std::uint32_t k = 0; k < covered; ++k) {
        const std::uint32_t line = (program.line_begin(i) + k) % lpp;
        std::vector<std::uint32_t>& ws =
            writers[{program.page(i).value(), line}];
        // Threads arrive in ascending order, so the back check dedups.
        if (ws.empty() || ws.back() != t) {
          ws.push_back(t);
        }
      }
    }
  }

  CappedEmitter emitter(sink, config_.max_diags_per_rule);
  for (const auto& [key, ws] : writers) {
    if (ws.size() < 2) {
      continue;
    }
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = "analysis.false-sharing";
    d.region = name;
    d.page = VPage(key.first);
    d.line = key.second;
    d.thread = ThreadId(ws[0]);
    d.other = ThreadId(ws[1]);
    d.message = "predicted false sharing: " + std::to_string(ws.size()) +
                " threads write fields of this line in one region; under "
                "the line-grain coherence model every write invalidates "
                "the other writers' copies (line ping-pong)";
    d.hint = "pad or align the per-thread fields to the coherence line "
             "size (one writer per line)";
    emitter.emit(std::move(d));
  }
  emitter.summarize("analysis.summary", name, "false-sharing");
}

void Analyzer::locality_pass(const std::string& name,
                             const sim::RegionProgram& program,
                             std::span<const ProcId> binding,
                             DiagnosticSink& sink) const {
  std::unordered_map<VPage, std::vector<std::uint64_t>> hist;
  for (std::uint32_t t = 0; t < program.num_threads(); ++t) {
    const ProcId proc = binding.empty() || t >= binding.size()
                            ? ProcId(t)
                            : binding[t];
    if (proc.value() >= view_.num_procs) {
      continue;  // check_binding already reported it
    }
    const NodeId node = view_.node_of_proc(proc);
    for (std::uint32_t i = program.thread_begin(t);
         i < program.thread_end(t); ++i) {
      if (!program.is_access(i) || program.lines(i) == 0) {
        continue;
      }
      auto& counts = hist[program.page(i)];
      if (counts.empty()) {
        counts.assign(view_.num_nodes, 0);
      }
      counts[node.value()] += program.lines(i);
    }
  }

  struct Finding {
    VPage page;
    NodeId target;
    double ratio;
  };
  std::vector<Finding> findings;
  std::size_t considered = 0;
  for (const auto& [page, counts] : hist) {
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) {
      total += c;
    }
    if (total < config_.min_page_lines) {
      continue;
    }
    const std::optional<NodeId> home = view_.home_of(page);
    if (!home.has_value()) {
      continue;  // unmapped: first-touch home depends on interleaving
    }
    ++considered;
    const std::uint64_t lacc = counts[home->value()];
    std::uint64_t racc_max = 0;
    std::uint32_t arg = 0;
    for (std::uint32_t n = 0; n < counts.size(); ++n) {
      if (n != home->value() && counts[n] > racc_max) {
        racc_max = counts[n];
        arg = n;
      }
    }
    if (racc_max == 0) {
      continue;
    }
    const double ratio = static_cast<double>(racc_max) /
                         static_cast<double>(std::max<std::uint64_t>(lacc, 1));
    if (ratio > config_.remote_threshold) {
      findings.push_back(Finding{page, NodeId(arg), ratio});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.ratio != b.ratio ? a.ratio > b.ratio : a.page < b.page;
            });

  CappedEmitter remote(sink, config_.max_diags_per_rule);
  for (const Finding& f : findings) {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = "numa.remote-page";
    d.region = name;
    d.page = f.page;
    d.message = "predicted remote-heavy page: racc_max/lacc = " +
                fmt_double(f.ratio, 1) + " toward node " +
                std::to_string(f.target.value()) +
                " exceeds the competitive threshold " +
                fmt_double(config_.remote_threshold, 1);
    d.hint = "migrate_memory() would move it to node " +
             std::to_string(f.target.value()) +
             "; fix the placement/binding to avoid one iteration of "
             "remote misses first";
    remote.emit(std::move(d));
  }
  remote.summarize("numa.summary", name, "remote-heavy page");

  if (!findings.empty() && considered > 0) {
    Diagnostic d;
    d.severity = Severity::kNote;
    d.rule = "numa.region-share";
    d.region = name;
    d.message = std::to_string(findings.size()) + " of " +
                std::to_string(considered) +
                " analyzed pages predicted remote-heavy in this region";
    d.hint = "a high fraction means the placement scheme, not a few "
             "stragglers, is wrong for this phase";
    sink.report(std::move(d));
  }
}

void Analyzer::check_binding(const std::string& region,
                             std::size_t num_programs,
                             std::span<const ProcId> binding,
                             DiagnosticSink& sink) const {
  if (num_programs > view_.num_procs) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = "binding.team-size";
    d.region = region;
    d.message = "region has " + std::to_string(num_programs) +
                " thread programs but the machine has only " +
                std::to_string(view_.num_procs) + " processors";
    d.hint = "shrink the team or grow the machine";
    sink.report(std::move(d));
    return;
  }
  if (binding.empty()) {
    return;  // identity binding is always valid here
  }
  if (binding.size() < num_programs) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = "binding.short";
    d.region = region;
    d.message = "binding names " + std::to_string(binding.size()) +
                " processors for " + std::to_string(num_programs) +
                " thread programs";
    d.hint = "bind every thread of the team (Engine::run aborts on this)";
    sink.report(std::move(d));
  }
  const std::size_t checked = std::min(binding.size(),
                                       static_cast<std::size_t>(num_programs));
  std::vector<std::uint32_t> owner(view_.num_procs,
                                   std::numeric_limits<std::uint32_t>::max());
  CappedEmitter range(sink, config_.max_diags_per_rule);
  CappedEmitter dup(sink, config_.max_diags_per_rule);
  for (std::uint32_t t = 0; t < checked; ++t) {
    const ProcId proc = binding[t];
    if (proc.value() >= view_.num_procs) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.rule = "binding.range";
      d.region = region;
      d.thread = ThreadId(t);
      d.message = "thread bound to processor " +
                  std::to_string(proc.value()) + " but the machine has " +
                  std::to_string(view_.num_procs) + " processors";
      d.hint = "processor ids are dense in [0, num_procs)";
      range.emit(std::move(d));
      continue;
    }
    if (owner[proc.value()] !=
        std::numeric_limits<std::uint32_t>::max()) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.rule = "binding.dup";
      d.region = region;
      d.thread = ThreadId(owner[proc.value()]);
      d.other = ThreadId(t);
      d.message = "two threads bound to processor " +
                  std::to_string(proc.value()) +
                  ": their ops would serialize on one cache and the "
                  "timing model double-counts the processor";
      d.hint = "bindings must be distinct (Runtime::rebind enforces this)";
      dup.emit(std::move(d));
      continue;
    }
    owner[proc.value()] = t;
  }
  range.summarize("binding.summary", region, "out-of-range binding");
  dup.summarize("binding.summary", region, "duplicate binding");
}

void Analyzer::check_upm_trace(std::span<const upm::UpmCall> trace,
                               DiagnosticSink& sink) const {
  static const std::string kContext = "upmlib";
  std::vector<vm::PageRange> ranges;
  std::size_t records = 0;        // record() calls since start/rebinding
  bool has_plan = false;          // compare_counters() succeeded
  std::size_t transitions = 0;    // plan length (records - 1 at compare)
  std::size_t replays = 0;        // replay() calls since last undo()
  bool counting_started = false;  // first migrate/record happened

  const auto report = [&](Severity severity, const std::string& rule,
                          std::string message, std::string hint) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.region = kContext;
    d.message = std::move(message);
    d.hint = std::move(hint);
    sink.report(std::move(d));
  };

  for (const upm::UpmCall& call : trace) {
    switch (call.kind) {
      case upm::UpmCall::Kind::kMemRefCnt: {
        for (const vm::PageRange& r : ranges) {
          const bool disjoint = call.range.first >= r.end() ||
                                r.first >= call.range.end();
          if (!disjoint) {
            report(Severity::kWarning, "upm.dup-range",
                   "memrefcnt() range [" +
                       std::to_string(call.range.first.value()) + ", " +
                       std::to_string(call.range.end().value()) +
                       ") overlaps an earlier hot-area registration",
                   "double-registered pages are scanned and reset twice "
                   "per pass, skewing stats and costs");
            break;
          }
        }
        if (counting_started) {
          report(Severity::kNote, "upm.late-registration",
                 "memrefcnt() after the engine already started counting; "
                 "the new range's counters miss earlier references",
                 "register every hot area before the first "
                 "migrate_memory()/record()");
        }
        ranges.push_back(call.range);
        break;
      }
      case upm::UpmCall::Kind::kResetCounters:
        break;  // neutral: legal at any point
      case upm::UpmCall::Kind::kMigrateMemory:
        counting_started = true;
        if (ranges.empty()) {
          report(Severity::kWarning, "upm.no-hot-areas",
                 "migrate_memory() with no registered hot areas is a no-op",
                 "call memrefcnt() for each shared array first");
        }
        if (!call.was_active) {
          report(Severity::kNote, "upm.migrate-inactive",
                 "migrate_memory() after the engine self-deactivated",
                 "stop invoking once a pass returns 0 migrations (the "
                 "paper's Fig. 2 loop)");
        }
        break;
      case upm::UpmCall::Kind::kRecord:
        counting_started = true;
        if (ranges.empty()) {
          report(Severity::kWarning, "upm.no-hot-areas",
                 "record() with no registered hot areas snapshots nothing",
                 "call memrefcnt() for each shared array first");
        }
        if (has_plan) {
          report(Severity::kWarning, "upm.record-after-compare",
                 "record() after compare_counters() extends the snapshot "
                 "list without re-deriving the plan",
                 "either re-record a full iteration and call "
                 "compare_counters() again, or drop the extra record()");
        }
        ++records;
        break;
      case upm::UpmCall::Kind::kCompareCounters:
        if (records < 2) {
          report(Severity::kError, "upm.record-underflow",
                 "compare_counters() with " + std::to_string(records) +
                     " record() call(s); the protocol needs at least two "
                     "(REPRO_REQUIRE aborts at runtime)",
                 "call record() at every phase-transition point of one "
                 "full recording iteration first");
        } else {
          has_plan = true;
          transitions = records - 1;
        }
        break;
      case upm::UpmCall::Kind::kReplay:
        if (!has_plan) {
          report(Severity::kWarning, "upm.replay-unplanned",
                 "replay() before any successful compare_counters() is a "
                 "silent no-op",
                 "record one iteration and derive the plan first");
          break;
        }
        ++replays;
        if (replays > transitions) {
          report(Severity::kWarning, "upm.replay-overrun",
                 std::to_string(replays) +
                     " replay() calls since the last undo() but the plan "
                     "has only " +
                     std::to_string(transitions) +
                     " transition(s); the cursor wraps to transition 0",
                 "call undo() at the iteration boundary (paper Fig. 3)");
        }
        break;
      case upm::UpmCall::Kind::kUndo:
        if (has_plan && replays == 0) {
          report(Severity::kNote, "upm.undo-without-replay",
                 "undo() with no replay() since the last undo() is a no-op",
                 "undo() belongs at the end of an iteration that replayed");
        }
        replays = 0;
        break;
      case upm::UpmCall::Kind::kNotifyRebinding:
        records = 0;
        has_plan = false;
        transitions = 0;
        replays = 0;
        break;
    }
  }
}

}  // namespace repro::analysis
