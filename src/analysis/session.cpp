#include "repro/analysis/session.hpp"

#include <optional>
#include <utility>
#include <vector>

namespace repro::analysis {

MachineView make_machine_view(omp::Machine& machine) {
  MachineView view;
  view.lines_per_page = machine.config().lines_per_page();
  view.num_procs = machine.config().num_procs();
  view.num_nodes = machine.config().num_nodes;
  os::MemoryControlInterface& mmci = machine.mmci();
  view.node_of_proc = [&mmci](ProcId proc) { return mmci.node_of_proc(proc); };
  view.home_of = [&mmci](VPage page) -> std::optional<NodeId> {
    if (!mmci.is_mapped(page)) {
      return std::nullopt;
    }
    return mmci.home_of(page);
  };
  return view;
}

AnalysisSession::AnalysisSession(omp::Machine& machine, AnalyzerConfig config)
    : machine_(&machine), analyzer_(config, make_machine_view(machine)) {
  machine_->runtime().set_region_inspector(
      [this](const std::string& name, const sim::RegionProgram& program,
             std::span<const ProcId> binding) {
        analyzer_.analyze_region(name, program, binding, sink_);
      });
}

AnalysisSession::~AnalysisSession() {
  machine_->runtime().set_region_inspector({});
}

void AnalysisSession::attach_upm(upm::Upmlib& upm) {
  upm_ = &upm;
  upm.enable_call_trace();
}

void AnalysisSession::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (upm_ != nullptr) {
    analyzer_.check_upm_trace(upm_->call_trace(), sink_);
  }
}

void AnalysisSession::print(std::ostream& os) {
  finish();
  print_diagnostics(os, sink_);
}

}  // namespace repro::analysis
