#include "repro/analysis/diagnostic.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <tuple>

namespace repro::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::optional<Severity> parse_severity(std::string_view name) {
  if (name == "note") {
    return Severity::kNote;
  }
  if (name == "warning") {
    return Severity::kWarning;
  }
  if (name == "error") {
    return Severity::kError;
  }
  return std::nullopt;
}

bool any_at_or_above(std::span<const Diagnostic> diags, Severity threshold) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.severity >= threshold;
  });
}

void canonical_sort(std::vector<Diagnostic>& diags) {
  const auto key = [](const Diagnostic& d) {
    return std::make_tuple(
        d.region, d.rule,
        d.page.has_value() ? static_cast<std::int64_t>(d.page->value()) : -1,
        d.line.has_value() ? static_cast<std::int64_t>(*d.line) : -1,
        d.thread.has_value() ? static_cast<std::int64_t>(d.thread->value())
                             : -1,
        d.other.has_value() ? static_cast<std::int64_t>(d.other->value()) : -1,
        static_cast<int>(d.severity), d.message, d.hint);
  };
  std::stable_sort(diags.begin(), diags.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
}

std::string Diagnostic::location() const {
  std::ostringstream os;
  if (page.has_value()) {
    os << "page " << *page;
    if (line.has_value()) {
      os << " line " << *line;
    }
  }
  if (thread.has_value()) {
    os << (page.has_value() ? ", " : "") << "thread " << *thread;
    if (other.has_value()) {
      os << "/" << *other;
    }
  }
  return os.str();
}

void CollectingSink::report(Diagnostic diag) {
  std::ostringstream key;
  key << diag.rule << '|' << diag.region << '|' << diag.location() << '|'
      << diag.message;
  if (!seen_.insert(key.str()).second) {
    ++duplicates_;
    return;
  }
  diags_.push_back(std::move(diag));
}

std::size_t CollectingSink::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

std::size_t CollectingSink::count_rule(std::string_view rule) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.rule == rule;
      }));
}

bool CollectingSink::clean() const {
  return count(Severity::kWarning) == 0 && count(Severity::kError) == 0;
}

void CollectingSink::clear() {
  diags_.clear();
  seen_.clear();
  duplicates_ = 0;
}

TextTable diagnostics_table(std::span<const Diagnostic> diags) {
  TextTable table({"severity", "rule", "region", "location", "message",
                   "hint"});
  for (const Diagnostic& d : diags) {
    table.add_row({severity_name(d.severity), d.rule, d.region, d.location(),
                   d.message, d.hint});
  }
  return table;
}

void print_diagnostics(std::ostream& os, const CollectingSink& sink) {
  if (sink.empty()) {
    os << "analysis: no findings\n";
    return;
  }
  diagnostics_table(sink.diagnostics()).print(os);
  os << "analysis: " << sink.count(Severity::kError) << " error(s), "
     << sink.count(Severity::kWarning) << " warning(s), "
     << sink.count(Severity::kNote) << " note(s)";
  if (sink.duplicates() > 0) {
    os << "; " << sink.duplicates() << " duplicate finding(s) suppressed";
  }
  os << "\n";
}

}  // namespace repro::analysis
