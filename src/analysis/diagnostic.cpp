#include "repro/analysis/diagnostic.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace repro::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::location() const {
  std::ostringstream os;
  if (page.has_value()) {
    os << "page " << *page;
  }
  if (thread.has_value()) {
    os << (page.has_value() ? ", " : "") << "thread " << *thread;
    if (other.has_value()) {
      os << "/" << *other;
    }
  }
  return os.str();
}

void CollectingSink::report(Diagnostic diag) {
  std::ostringstream key;
  key << diag.rule << '|' << diag.region << '|' << diag.location() << '|'
      << diag.message;
  if (!seen_.insert(key.str()).second) {
    ++duplicates_;
    return;
  }
  diags_.push_back(std::move(diag));
}

std::size_t CollectingSink::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

std::size_t CollectingSink::count_rule(std::string_view rule) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
        return d.rule == rule;
      }));
}

bool CollectingSink::clean() const {
  return count(Severity::kWarning) == 0 && count(Severity::kError) == 0;
}

void CollectingSink::clear() {
  diags_.clear();
  seen_.clear();
  duplicates_ = 0;
}

TextTable diagnostics_table(std::span<const Diagnostic> diags) {
  TextTable table({"severity", "rule", "region", "location", "message",
                   "hint"});
  for (const Diagnostic& d : diags) {
    table.add_row({severity_name(d.severity), d.rule, d.region, d.location(),
                   d.message, d.hint});
  }
  return table;
}

void print_diagnostics(std::ostream& os, const CollectingSink& sink) {
  if (sink.empty()) {
    os << "analysis: no findings\n";
    return;
  }
  diagnostics_table(sink.diagnostics()).print(os);
  os << "analysis: " << sink.count(Severity::kError) << " error(s), "
     << sink.count(Severity::kWarning) << " warning(s), "
     << sink.count(Severity::kNote) << " note(s)";
  if (sink.duplicates() > 0) {
    os << "; " << sink.duplicates() << " duplicate finding(s) suppressed";
  }
  os << "\n";
}

}  // namespace repro::analysis
